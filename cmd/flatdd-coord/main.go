// Command flatdd-coord fronts a fleet of flatdd-serve replicas with the
// fault-tolerant cluster coordinator: consistent-hash routing on the
// canonical circuit hash (cache locality per replica), health-checked
// membership (alive → suspect → dead), per-replica circuit breakers,
// capped-backoff retries, and failover re-submission of unacknowledged
// jobs under idempotency keys when a replica dies.
//
//	flatdd-serve -listen 127.0.0.1:8081 &
//	flatdd-serve -listen 127.0.0.1:8082 &
//	flatdd-coord -listen :8080 -replicas a=http://127.0.0.1:8081,b=http://127.0.0.1:8082
//
//	curl -s localhost:8080/v1/jobs -d '{"circuit":"ghz","n":20}'
//	curl -s localhost:8080/v1/jobs/cj-000001
//	curl -s localhost:8080/healthz
//
// The coordinator exposes the same v1 job API as a single replica, so
// clients switch between them by changing the base URL only.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flatdd/internal/cluster"
	"flatdd/internal/obs"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "HTTP listen address (e.g. :8080, 127.0.0.1:0)")
		replicas     = flag.String("replicas", "", "comma-separated replica fleet, name=url pairs (e.g. a=http://127.0.0.1:8081,b=http://127.0.0.1:8082)")
		vnodes       = flag.Int("vnodes", 64, "consistent-hash virtual nodes per replica")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "health-probe period")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "per-probe round-trip bound")
		suspectAfter = flag.Int("suspect-after", 1, "consecutive probe failures before a replica is suspect")
		deadAfter    = flag.Int("dead-after", 3, "consecutive probe failures before a replica is dead (triggers failover)")
		rpcTimeout   = flag.Duration("rpc-timeout", 10*time.Second, "per-attempt bound on coordinator→replica calls")
		retries      = flag.Int("rpc-retries", 3, "retry budget per call for replica-level failures")
		brThreshold  = flag.Int("breaker-threshold", 5, "consecutive failures that open a replica's circuit breaker")
		brCooldown   = flag.Duration("breaker-cooldown", 5*time.Second, "open → half-open breaker delay")
		logFormat    = flag.String("log-format", "text", "log format on stderr: text, json, or off")
	)
	flag.Parse()

	fleet, err := parseReplicas(*replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-coord:", err)
		os.Exit(2)
	}
	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = slog.New(slog.DiscardHandler)
	default:
		fmt.Fprintf(os.Stderr, "flatdd-coord: unknown -log-format %q (want text, json, or off)\n", *logFormat)
		os.Exit(2)
	}

	coord, err := cluster.New(cluster.Config{
		Replicas:         fleet,
		VNodes:           *vnodes,
		ProbeInterval:    *probeEvery,
		ProbeTimeout:     *probeTimeout,
		SuspectAfter:     *suspectAfter,
		DeadAfter:        *deadAfter,
		RPCTimeout:       *rpcTimeout,
		MaxRetries:       *retries,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		Metrics:          obs.New(),
		Logger:           logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-coord:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-coord:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	fmt.Printf("flatdd-coord listening on http://%s (%d replicas, probe %s, dead after %d)\n",
		ln.Addr(), len(fleet), *probeEvery, *deadAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("flatdd-coord: stopping...")
	coord.Shutdown()
	httpSrv.Close() //nolint:errcheck // process is exiting
	fmt.Println("flatdd-coord: stopped, exiting")
}

// parseReplicas parses "a=http://h1,b=http://h2" into the fleet spec.
func parseReplicas(s string) ([]cluster.ReplicaSpec, error) {
	if s == "" {
		return nil, fmt.Errorf("-replicas is required (name=url pairs, comma-separated)")
	}
	var out []cluster.ReplicaSpec
	for _, pair := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -replicas entry %q (want name=url)", pair)
		}
		out = append(out, cluster.ReplicaSpec{Name: name, URL: url})
	}
	return out, nil
}
