package main

import (
	"bufio"
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// TestCoordSmoke builds flatdd-serve and flatdd-coord (race-enabled) and
// drives a two-replica cluster end to end through the coordinator's v1
// API: routed job completion, result-cache locality on resubmit, the
// fleet-merged tenant view, a replica kill surfacing in /healthz
// membership, and a SIGTERM drain to exit 0. It is part of the
// `make serve-smoke` target.
func TestCoordSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs three binaries")
	}
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "flatdd-serve")
	coordBin := filepath.Join(dir, "flatdd-coord")
	for bin, pkg := range map[string]string{serveBin: "../flatdd-serve", coordBin: "."} {
		build := exec.Command("go", "build", "-race", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	// startProc launches a binary and returns its base URL scraped from
	// the "listening on http://..." stdout line.
	startProc := func(bin string, args ...string) (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = &bytes.Buffer{}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() }) //nolint:errcheck // backstop
		sc := bufio.NewScanner(stdout)
		base := ""
		for sc.Scan() {
			if line := sc.Text(); strings.Contains(line, "listening on http://") {
				base = "http://" + strings.TrimSpace(strings.Fields(strings.SplitAfter(line, "http://")[1])[0])
				break
			}
		}
		if base == "" {
			t.Fatalf("%s: no listen line on stdout (stderr: %s)", bin, cmd.Stderr)
		}
		go func() {
			for sc.Scan() {
			}
		}()
		return cmd, base
	}

	r1, url1 := startProc(serveBin, "-listen", "127.0.0.1:0", "-inflight", "2", "-queue", "16")
	_, url2 := startProc(serveBin, "-listen", "127.0.0.1:0", "-inflight", "2", "-queue", "16")
	coord, base := startProc(coordBin,
		"-listen", "127.0.0.1:0",
		"-replicas", "r1="+url1+",r2="+url2,
		"-vnodes", "32",
		"-probe-interval", "100ms",
		"-probe-timeout", "500ms",
		"-suspect-after", "1",
		"-dead-after", "2",
		"-rpc-timeout", "10s",
		"-rpc-retries", "2",
		"-breaker-threshold", "4",
		"-breaker-cooldown", "500ms",
		"-log-format", "off",
	)

	ctx := context.Background()
	c := client.New(base, client.WithTenant("gold"))

	// A cluster-routed job completes through the coordinator's API.
	bellReq := &serve.SubmitRequest{
		QASM: "qreg q[2]; h q[0]; cx q[0],q[1];", Shots: 200, Seed: 7}
	sub, err := c.Submit(ctx, bellReq)
	if err != nil {
		t.Fatalf("submit via coordinator: %v", err)
	}
	if !strings.HasPrefix(sub.Job.ID, "cj-") || sub.Job.Replica == "" {
		t.Fatalf("coordinator job view = id %q replica %q, want cj- id with attribution",
			sub.Job.ID, sub.Job.Replica)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	v, err := c.Wait(wctx, sub.Job.ID, 10*time.Millisecond)
	cancel()
	if err != nil || v.State != serve.StateDone {
		t.Fatalf("bell via coordinator: %+v, %v", v, err)
	}
	res, err := c.Result(ctx, sub.Job.ID)
	if err != nil {
		t.Fatalf("result via coordinator: %v", err)
	}
	total := 0
	for bits, n := range res.Shots {
		if bits != "00" && bits != "11" {
			t.Fatalf("impossible bell shot %q", bits)
		}
		total += n
	}
	if total != 200 {
		t.Fatalf("bell shots: %v", res.Shots)
	}

	// Consistent hashing sends the identical circuit back to the same
	// replica, where it hits that replica's result cache.
	again, err := c.Submit(ctx, bellReq)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if again.Job.Replica != sub.Job.Replica {
		t.Errorf("resubmit routed to %q, first to %q; hashing lost locality",
			again.Job.Replica, sub.Job.Replica)
	}
	if again.Job.Cache != serve.CacheHit {
		t.Errorf("resubmit cache = %q, want hit on the owning replica", again.Job.Cache)
	}

	// The fleet-merged tenant view accounts the session under "gold".
	tenants, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	foundGold := false
	for _, tv := range tenants {
		if tv.Name == "gold" {
			foundGold = true
			if tv.Submitted < 2 {
				t.Errorf("gold accounting = %+v, want >=2 submitted", tv)
			}
		}
	}
	if !foundGold {
		t.Fatalf("tenant gold missing from the coordinator's /v1/tenants: %+v", tenants)
	}

	// Membership: /healthz reports the full fleet alive, then the kill of
	// r1 surfaces as a dead replica while the coordinator stays serving.
	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health["role"] != "coordinator" || health["alive"].(float64) != 2 {
		t.Fatalf("healthz = %v, want coordinator role with 2 alive", health)
	}
	if err := r1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	deadSeen := false
	for end := time.Now().Add(30 * time.Second); time.Now().Before(end); {
		health, err = c.Health(ctx)
		if err == nil && health["alive"].(float64) == 1 {
			deadSeen = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !deadSeen {
		t.Fatalf("coordinator never marked the killed replica dead: %v", health)
	}
	// The survivor still serves new work through the coordinator.
	after, err := c.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 8})
	if err != nil {
		t.Fatalf("submit after replica death: %v", err)
	}
	wctx, cancel = context.WithTimeout(ctx, 60*time.Second)
	v, err = c.Wait(wctx, after.Job.ID, 10*time.Millisecond)
	cancel()
	if err != nil || v.State != serve.StateDone {
		t.Fatalf("post-failover job: %+v, %v", v, err)
	}

	// SIGTERM: the coordinator drains and exits 0.
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- coord.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("coordinator exited non-zero after SIGTERM: %v (stderr: %s)", err, coord.Stderr)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator did not exit after SIGTERM")
	}
}
