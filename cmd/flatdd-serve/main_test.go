package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke builds the flatdd-serve binary (race-enabled) and drives
// it end to end over HTTP: admission control, job completion, client
// cancellation, the in-flight cap, and SIGTERM drain. It is the
// `make serve-smoke` target.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "flatdd-serve")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// 256 MiB budget: WorstCaseBytes admits up to 22 qubits.
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-mem-budget-mb", "256",
		"-queue", "8",
		"-inflight", "2",
		"-timeout", "60s",
		"-grace", "2s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = &bytes.Buffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // backstop; SIGTERM path is the real teardown

	sc := bufio.NewScanner(stdout)
	base := ""
	for sc.Scan() {
		if line := sc.Text(); strings.Contains(line, "listening on http://") {
			base = "http://" + strings.TrimSpace(strings.Fields(strings.SplitAfter(line, "http://")[1])[0])
			break
		}
	}
	if base == "" {
		t.Fatalf("no listen line on stdout (stderr: %s)", cmd.Stderr)
	}
	// Keep draining stdout so the server never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck
		return resp.StatusCode, m
	}
	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck
		return resp.StatusCode, m
	}
	wait := func(id string, states ...string) map[string]any {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			code, m := get("/v1/jobs/" + id)
			if code != http.StatusOK {
				t.Fatalf("status %s: %d", id, code)
			}
			for _, s := range states {
				if m["state"] == s {
					return m
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %v, want %v", id, m["state"], states)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Over-budget job: 26 qubits needs 3 GiB, budget is 256 MiB.
	if code, m := post(`{"circuit":"ghz","n":26}`); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget submit: %d %v, want 413", code, m)
	}

	// A bell pair from QASM runs to completion with correct results.
	code, m := post(`{"qasm":"qreg q[2]; h q[0]; cx q[0],q[1];","shots":500,"seed":7}`)
	if code != http.StatusAccepted {
		t.Fatalf("bell submit: %d %v", code, m)
	}
	bellID := m["id"].(string)
	wait(bellID, "done")
	code, res := get("/v1/jobs/" + bellID + "/result")
	if code != http.StatusOK {
		t.Fatalf("bell result: %d %v", code, res)
	}
	shots := res["shots"].(map[string]any)
	total := 0.0
	for bits, n := range shots {
		if bits != "00" && bits != "11" {
			t.Fatalf("impossible bell shot %q", bits)
		}
		total += n.(float64)
	}
	if total != 500 {
		t.Fatalf("bell shots: %v", shots)
	}

	// A named random Clifford+T workload completes too (exercises the
	// hybrid DD→DMAV path end to end).
	code, m = post(`{"circuit":"randct","n":12,"seed":3,"top":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("randct submit: %d %v", code, m)
	}
	wait(m["id"].(string), "done")

	// Client cancellation: a long QV job transitions to canceled with the
	// engine's sentinel message.
	code, m = post(`{"circuit":"qv","n":16,"seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("qv submit: %d %v", code, m)
	}
	slowID := m["id"].(string)
	wait(slowID, "running")
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+slowID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	m = wait(slowID, "canceled", "done")
	if m["state"] == "canceled" && !strings.Contains(fmt.Sprint(m["error"]), "canceled") {
		t.Fatalf("cancel error: %v", m["error"])
	}

	// Concurrent submits respect the in-flight cap of 2.
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		code, m = post(fmt.Sprintf(`{"circuit":"qv","n":16,"seed":%d}`, i+10))
		if code != http.StatusAccepted {
			t.Fatalf("fanout submit %d: %d %v", i, code, m)
		}
		ids = append(ids, m["id"].(string))
	}
	sawTwo := false
	for end := time.Now().Add(30 * time.Second); time.Now().Before(end); {
		resp, err := http.Get(base + "/v1/jobs?state=running")
		if err != nil {
			t.Fatal(err)
		}
		var running []map[string]any
		json.NewDecoder(resp.Body).Decode(&running) //nolint:errcheck
		resp.Body.Close()
		if len(running) > 2 {
			t.Fatalf("%d jobs running, cap is 2", len(running))
		}
		if len(running) == 2 {
			sawTwo = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawTwo {
		t.Fatal("never saw two jobs in flight")
	}

	// SIGTERM drains: queued fan-out jobs are canceled, the process exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v (stderr: %s)", err, cmd.Stderr)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}
