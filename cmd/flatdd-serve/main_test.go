package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// TestServeSmoke builds the flatdd-serve binary (race-enabled) and
// drives it end to end through the typed client: admission control, job
// completion, result-cache hits, tenant accounting, client
// cancellation, the in-flight cap, and SIGTERM drain. It is the
// `make serve-smoke` target.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "flatdd-serve")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// 256 MiB budget: WorstCaseBytes admits up to 22 qubits.
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-mem-budget-mb", "256",
		"-queue", "8",
		"-inflight", "2",
		"-timeout", "60s",
		"-grace", "2s",
		"-tenant-weights", "gold=4",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = &bytes.Buffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // backstop; SIGTERM path is the real teardown

	sc := bufio.NewScanner(stdout)
	base := ""
	for sc.Scan() {
		if line := sc.Text(); strings.Contains(line, "listening on http://") {
			base = "http://" + strings.TrimSpace(strings.Fields(strings.SplitAfter(line, "http://")[1])[0])
			break
		}
	}
	if base == "" {
		t.Fatalf("no listen line on stdout (stderr: %s)", cmd.Stderr)
	}
	// Keep draining stdout so the server never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	ctx := context.Background()
	c := client.New(base, client.WithTenant("gold"))
	wait := func(id string, states ...string) *serve.JobView {
		t.Helper()
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		defer cancel()
		v, err := c.Wait(wctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		for _, s := range states {
			if v.State == s {
				return v
			}
		}
		t.Fatalf("job %s ended %q (%s), want %v", id, v.State, v.Error, states)
		return nil
	}

	// Over-budget job: 26 qubits needs 3 GiB, budget is 256 MiB. The
	// rejection arrives as the typed envelope error.
	_, err = c.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 26})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusRequestEntityTooLarge ||
		apiErr.Code != serve.CodePayloadTooLarge || apiErr.Reason != "memory_budget" {
		t.Fatalf("over-budget submit: %v, want 413 payload_too_large/memory_budget", err)
	}

	// A bell pair from QASM runs to completion with correct results.
	bellReq := &serve.SubmitRequest{
		QASM: "qreg q[2]; h q[0]; cx q[0],q[1];", Shots: 500, Seed: 7}
	bell, err := c.Submit(ctx, bellReq)
	if err != nil {
		t.Fatalf("bell submit: %v", err)
	}
	wait(bell.Job.ID, serve.StateDone)
	res, err := c.Result(ctx, bell.Job.ID)
	if err != nil {
		t.Fatalf("bell result: %v", err)
	}
	total := 0
	for bits, n := range res.Shots {
		if bits != "00" && bits != "11" {
			t.Fatalf("impossible bell shot %q", bits)
		}
		total += n
	}
	if total != 500 {
		t.Fatalf("bell shots: %v", res.Shots)
	}

	// Resubmitting the same circuit hits the result cache: done in the
	// submit response, no second engine run.
	again, err := c.Submit(ctx, bellReq)
	if err != nil {
		t.Fatalf("bell resubmit: %v", err)
	}
	if again.Job.Cache != serve.CacheHit || again.Job.State != serve.StateDone {
		t.Fatalf("bell resubmit = cache %q state %q, want an immediate hit",
			again.Job.Cache, again.Job.State)
	}

	// A named random Clifford+T workload completes too (exercises the
	// hybrid DD→DMAV path end to end).
	randct, err := c.Submit(ctx, &serve.SubmitRequest{Circuit: "randct", N: 12, Seed: 3, Top: 4})
	if err != nil {
		t.Fatalf("randct submit: %v", err)
	}
	wait(randct.Job.ID, serve.StateDone)

	// Client cancellation: a long QV job transitions to canceled with the
	// engine's sentinel message.
	slow, err := c.Submit(ctx, &serve.SubmitRequest{Circuit: "qv", N: 16, Seed: 1})
	if err != nil {
		t.Fatalf("qv submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := c.Job(ctx, slow.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != serve.StateQueued || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, slow.Job.ID); err != nil {
		var cancelErr *client.APIError
		if !errors.As(err, &cancelErr) || cancelErr.Code != serve.CodeConflict {
			t.Fatalf("cancel: %v", err)
		}
	}
	if v := wait(slow.Job.ID, serve.StateCanceled, serve.StateDone); v.State == serve.StateCanceled &&
		!strings.Contains(v.Error, "canceled") {
		t.Fatalf("cancel error: %v", v.Error)
	}

	// Concurrent submits respect the in-flight cap of 2.
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(ctx, &serve.SubmitRequest{Circuit: "qv", N: 16, Seed: int64(i + 10)}); err != nil {
			t.Fatalf("fanout submit %d: %v", i, err)
		}
	}
	sawTwo := false
	for end := time.Now().Add(30 * time.Second); time.Now().Before(end); {
		l, err := c.Jobs(ctx, client.JobsQuery{State: serve.StateRunning})
		if err != nil {
			t.Fatal(err)
		}
		if len(l.Jobs) > 2 {
			t.Fatalf("%d jobs running, cap is 2", len(l.Jobs))
		}
		if len(l.Jobs) == 2 {
			sawTwo = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawTwo {
		t.Fatal("never saw two jobs in flight")
	}

	// The tenant view accounts the whole session under "gold" with its
	// configured weight.
	tenants, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	foundGold := false
	for _, tv := range tenants {
		if tv.Name != "gold" {
			continue
		}
		foundGold = true
		if tv.Weight != 4 {
			t.Errorf("gold weight = %d, want 4 (-tenant-weights)", tv.Weight)
		}
		if tv.Submitted < 7 || tv.CacheHits < 1 {
			t.Errorf("gold accounting = %+v, want >=7 submitted, >=1 cache hit", tv)
		}
	}
	if !foundGold {
		t.Fatalf("tenant gold missing from /v1/tenants: %+v", tenants)
	}

	// SIGTERM drains: queued fan-out jobs are canceled, the process exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v (stderr: %s)", err, cmd.Stderr)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}
