// Command flatdd-serve runs the FlatDD simulation job service: a
// long-lived, multi-tenant HTTP/JSON server that accepts OpenQASM or
// named-workload circuits, admits them against memory budgets and
// per-tenant quotas, serves repeats from a canonical-circuit result
// cache (coalescing identical in-flight submissions), and executes the
// rest on one shared work-stealing pool via a weighted-fair queue with
// per-job deadlines and cancellation.
//
//	flatdd-serve -listen :8080 -threads 8 -inflight 2 -mem-budget-mb 4096 \
//	    -cache-budget-mb 64 -tenant-weights gold=4,bronze=1
//
//	curl -s localhost:8080/v1/jobs -H 'X-Tenant: gold' -d '{"circuit":"ghz","n":20,"shots":100}'
//	curl -s localhost:8080/v1/jobs/j-000001
//	curl -s localhost:8080/v1/jobs/j-000001/result
//	curl -s localhost:8080/v1/tenants
//	curl -s -X DELETE localhost:8080/v1/jobs/j-000001
//
// SIGINT/SIGTERM triggers a graceful drain: admission stops (503),
// queued jobs are canceled, in-flight jobs get -grace to finish before
// their contexts are canceled, then the process exits 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flatdd/internal/serve"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address (e.g. :8080, 127.0.0.1:0)")
		threads   = flag.Int("threads", 0, "shared scheduler pool workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "max queued jobs (FIFO depth)")
		inflight  = flag.Int("inflight", 2, "max concurrently running jobs")
		budgetMB  = flag.Int("mem-budget-mb", 4096, "per-job flat-array memory budget in MiB (admission control)")
		maxQ      = flag.Int("max-qubits", 30, "hard register-size cap")
		timeout   = flag.Duration("timeout", 2*time.Minute, "default per-job deadline")
		maxTO     = flag.Duration("max-timeout", 10*time.Minute, "cap on requested per-job deadlines")
		grace     = flag.Duration("grace", 10*time.Second, "drain grace for in-flight jobs on SIGTERM")
		engMB     = flag.Int("memory-budget", 0, "engine flat-array budget in MiB: over-budget jobs complete DD-only in degraded mode (0 = off)")
		retries   = flag.Int("retries", 2, "max re-queues of a job that fails with a transient engine fault (0 = off)")
		integrity = flag.Int("integrity-every", 0, "NaN/Inf/norm-sweep job states every N DMAV gates (0 = off)")
		traceOut  = flag.String("trace-out", "", "append span + per-gate trace events as JSONL to this file (empty = off)")
		flight    = flag.Int("flight", 64, "flight recorder capacity: last N job span trees kept at /debug/jobs")
		logFormat = flag.String("log-format", "text", "request log format on stderr: text, json, or off")
		admission = flag.String("admission", serve.AdmissionWorstCase,
			"dispatch-gate accounting: worstcase holds each job's static worst case; ledger releases down to the observed/projected footprint (higher concurrency under the same budget)")
		totalMB = flag.Int("total-mem-budget-mb", 0, "process-wide concurrent-memory budget in MiB for the dispatch gate (0 = inflight x mem-budget-mb)")
		slo     = flag.Duration("slo", 0, "per-job run-time SLO for anomaly profiling (0 = derive from windowed p99)")
		profDir = flag.String("profile-dir", "", "capture pprof CPU+heap profiles on job anomalies into this directory, served at /debug/profiles (empty = off)")
		profWin = flag.Duration("profile-window", 5*time.Minute, "minimum spacing between anomaly captures")
		cacheMB = flag.Int("cache-budget-mb", 64, "result cache budget in MiB: repeat submissions of a circuit complete without an engine run (0 = off)")
		tenantQ = flag.Int("tenant-queue", 0, "per-tenant queued-job quota (0 = the global queue depth)")
		tenantI = flag.Int("tenant-inflight", 0, "per-tenant running-job cap (0 = the global inflight cap)")
		tenantW = flag.String("tenant-weights", "", "comma-separated fair-scheduling weights, e.g. gold=4,bronze=1 (unlisted tenants weigh 1)")
	)
	flag.Parse()
	weights, err := parseWeights(*tenantW)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-serve:", err)
		os.Exit(2)
	}
	if *admission != serve.AdmissionWorstCase && *admission != serve.AdmissionLedger {
		fmt.Fprintf(os.Stderr, "flatdd-serve: unknown -admission %q (want %s or %s)\n",
			*admission, serve.AdmissionWorstCase, serve.AdmissionLedger)
		os.Exit(2)
	}

	var traceW io.Writer
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flatdd-serve:", err)
			os.Exit(1)
		}
		defer f.Close() //nolint:errcheck // serve.Shutdown flushed already
		traceW = f
	}
	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
		logger = slog.New(slog.DiscardHandler)
	default:
		fmt.Fprintf(os.Stderr, "flatdd-serve: unknown -log-format %q (want text, json, or off)\n", *logFormat)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Threads:            *threads,
		QueueDepth:         *queue,
		MaxInFlight:        *inflight,
		MemoryBudget:       uint64(*budgetMB) << 20,
		MaxQubits:          *maxQ,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTO,
		DrainGrace:         *grace,
		EngineMemoryBudget: uint64(*engMB) << 20,
		MaxRetries:         normRetries(*retries),
		IntegrityEvery:     *integrity,
		TraceJSONL:         traceW,
		FlightRecorderSize: *flight,
		Logger:             logger,
		AdmissionMode:      *admission,
		TotalMemoryBudget:  uint64(*totalMB) << 20,
		SLOTarget:          *slo,
		ProfileDir:         *profDir,
		ProfileWindow:      *profWin,
		ResultCacheBudget:  normCacheBudget(*cacheMB),
		TenantMaxQueued:    *tenantQ,
		TenantMaxInFlight:  *tenantI,
		TenantWeights:      weights,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-serve:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	fmt.Printf("flatdd-serve listening on http://%s (budget %d MiB, queue %d, inflight %d)\n",
		ln.Addr(), *budgetMB, *queue, *inflight)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Drain with the HTTP server still up so status polls keep working;
	// admission already rejects with 503.
	fmt.Println("flatdd-serve: draining...")
	srv.Shutdown()
	httpSrv.Close() //nolint:errcheck // process is exiting
	fmt.Println("flatdd-serve: drained, exiting")
}

// normRetries maps the flag's "0 = off" convention onto the Config's
// "negative = off, 0 = default" one.
func normRetries(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

// normCacheBudget maps the flag's "0 = off" convention onto the Config's
// "negative = off, 0 = default" one.
func normCacheBudget(mb int) int64 {
	if mb <= 0 {
		return -1
	}
	return int64(mb) << 20
}

// parseWeights parses "a=4,b=1" into Config.TenantWeights.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want tenant=weight)", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive integer)", val, name)
		}
		weights[name] = w
	}
	return weights, nil
}
