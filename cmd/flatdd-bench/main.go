// Command flatdd-bench regenerates the tables and figures of the FlatDD
// paper's evaluation (Section 4). Each experiment id matches DESIGN.md:
//
//	flatdd-bench -exp table1                 # Table 1 at container scale
//	flatdd-bench -exp fig13 -threads 8
//	flatdd-bench -exp all -scale tiny        # quick smoke run of everything
//	flatdd-bench -exp table2 -scale paper -timeout 24h   # the real thing
//
// With -out, the run additionally emits a machine-readable perf record
// (repetition statistics, engine internals, sampled time series) that
// cmd/flatdd-benchdiff compares across commits:
//
//	flatdd-bench -exp table1 -scale tiny -reps 3 -out BENCH_1.json
//	flatdd-bench -exp table1 -reps 5 -out auto   # next free BENCH_<n>.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"flatdd/internal/harness"
	"flatdd/internal/obs"
	"flatdd/internal/perf"
)

func main() { os.Exit(run()) }

// run carries the whole process body so deferred cleanup (the debug
// server shutdown) always executes and can fail the run — main os.Exits
// on the returned code only after every defer has run.
func run() (code int) {
	var (
		exp     = flag.String("exp", "all", fmt.Sprintf("experiment id, or a comma-separated list %v", harness.ExperimentIDs()))
		scale   = flag.String("scale", "small", "benchmark scale: tiny | small | paper")
		threads = flag.Int("threads", 16, "worker threads for FlatDD and Quantum++")
		timeout = flag.Duration("timeout", 5*time.Minute, "per-engine-run cutoff (paper: 24h)")
		reps    = flag.Int("reps", 1, "repetitions per engine-circuit cell; tables show mean ±stddev")
		out     = flag.String("out", "", "write a perf record to this path (\"auto\" picks the next free BENCH_<n>.json)")
		sample  = flag.Duration("sample", 10*time.Millisecond, "time-series sampling interval for the perf record")
		csvDir  = flag.String("csv", "", "also export every table as CSV into this directory")
		listen  = flag.String("listen", "", "serve /debug/pprof and /debug/vars on this address while the experiments run")
	)
	flag.Parse()

	var (
		reg     *obs.Registry
		rec     *perf.Record
		sampler *obs.Sampler
	)
	if *out != "" {
		reg = obs.New()
		rec = perf.NewRecord(*exp, *scale, *threads, *reps)
		sampler = obs.NewSampler(reg, *sample, 2048)
		sampler.Start()
	}

	if *listen != "" {
		addr, shutdown, err := obs.Serve(*listen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flatdd-bench:", err)
			return 1
		}
		defer func() {
			if err := shutdown(); err != nil {
				fmt.Fprintln(os.Stderr, "flatdd-bench: debug server shutdown:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
		fmt.Printf("debug server on http://%s/debug/pprof/\n", addr)
	}

	cfg := harness.Config{
		Scale:   harness.Scale(*scale),
		Threads: *threads,
		Timeout: *timeout,
		Out:     os.Stdout,
		CSVDir:  *csvDir,
		Reps:    *reps,
		Metrics: reg,
		Record:  rec,
	}
	fmt.Printf("flatdd-bench: exp=%s scale=%s threads=%d reps=%d timeout=%v GOMAXPROCS=%d\n\n",
		*exp, *scale, *threads, *reps, *timeout, runtime.GOMAXPROCS(0))
	start := time.Now()
	for _, id := range strings.Split(*exp, ",") {
		if err := harness.RunExperiment(strings.TrimSpace(id), cfg); err != nil {
			fmt.Fprintln(os.Stderr, "flatdd-bench:", err)
			return 1
		}
	}
	fmt.Printf("done in %v\n", time.Since(start))

	if rec != nil {
		rec.Series = sampler.Stop()
		path := *out
		if path == "auto" {
			path = perf.NextRecordPath(".")
		}
		if err := rec.Write(path); err != nil {
			fmt.Fprintln(os.Stderr, "flatdd-bench: perf record:", err)
			return 1
		}
		fmt.Printf("perf record: %s (%d cells, %d series)\n", path, len(rec.Cells), len(rec.Series))
	}
	return 0
}
