// Command flatdd-bench regenerates the tables and figures of the FlatDD
// paper's evaluation (Section 4). Each experiment id matches DESIGN.md:
//
//	flatdd-bench -exp table1                 # Table 1 at container scale
//	flatdd-bench -exp fig13 -threads 8
//	flatdd-bench -exp all -scale tiny        # quick smoke run of everything
//	flatdd-bench -exp table2 -scale paper -timeout 24h   # the real thing
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"flatdd/internal/harness"
	"flatdd/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", fmt.Sprintf("experiment id %v", harness.ExperimentIDs()))
		scale   = flag.String("scale", "small", "benchmark scale: tiny | small | paper")
		threads = flag.Int("threads", 16, "worker threads for FlatDD and Quantum++")
		timeout = flag.Duration("timeout", 5*time.Minute, "per-engine-run cutoff (paper: 24h)")
		csvDir  = flag.String("csv", "", "also export every table as CSV into this directory")
		listen  = flag.String("listen", "", "serve /debug/pprof and /debug/vars on this address while the experiments run")
	)
	flag.Parse()

	if *listen != "" {
		addr, shutdown, err := obs.Serve(*listen, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flatdd-bench:", err)
			os.Exit(1)
		}
		defer shutdown() //nolint:errcheck // process is exiting anyway
		fmt.Printf("debug server on http://%s/debug/pprof/\n", addr)
	}

	cfg := harness.Config{
		Scale:   harness.Scale(*scale),
		Threads: *threads,
		Timeout: *timeout,
		Out:     os.Stdout,
		CSVDir:  *csvDir,
	}
	fmt.Printf("flatdd-bench: exp=%s scale=%s threads=%d timeout=%v GOMAXPROCS=%d\n\n",
		*exp, *scale, *threads, *timeout, runtime.GOMAXPROCS(0))
	start := time.Now()
	if err := harness.RunExperiment(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %v\n", time.Since(start))
}
