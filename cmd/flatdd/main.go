// Command flatdd simulates a quantum circuit with the FlatDD hybrid engine
// (or one of the two baseline engines) and reports the final state.
//
// Circuits come either from an OpenQASM 2.0 file (-qasm) or from a built-in
// workload generator (-circuit, -n). Examples:
//
//	flatdd -circuit ghz -n 20 -top 4
//	flatdd -circuit supremacy -n 16 -threads 8 -trace
//	flatdd -qasm bench.qasm -engine ddsim
//	flatdd -circuit dnn -n 14 -fusion dmav -shots 1000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/cmplx"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"flatdd/internal/circuit"
	"flatdd/internal/core"
	"flatdd/internal/dd"
	"flatdd/internal/dmav"
	"flatdd/internal/harness"
	"flatdd/internal/obs"
	"flatdd/internal/qasm"
	"flatdd/internal/workloads"
)

func main() {
	var (
		qasmPath  = flag.String("qasm", "", "OpenQASM 2.0 file to simulate")
		name      = flag.String("circuit", "", fmt.Sprintf("built-in workload %v", workloads.Names()))
		n         = flag.Int("n", 16, "qubit count for built-in workloads")
		seed      = flag.Int64("seed", 1, "workload generator seed")
		engine    = flag.String("engine", "flatdd", "engine: flatdd | ddsim | statevec")
		threads   = flag.Int("threads", 4, "worker threads (FlatDD and statevec)")
		ddThreads = flag.Int("dd-threads", 0, "task-parallel DD-phase workers (FlatDD and ddsim; 0 or 1 = sequential DD phase)")
		beta      = flag.Float64("beta", 0.9, "EWMA beta (FlatDD)")
		epsilon   = flag.Float64("epsilon", 2.0, "EWMA epsilon (FlatDD)")
		fusionF   = flag.String("fusion", "none", "gate fusion: none | dmav | kops (FlatDD)")
		k         = flag.Int("k", 4, "block size for -fusion kops")
		cache     = flag.String("cache", "auto", "DMAV caching: auto | always | never")
		top       = flag.Int("top", 8, "print the K largest final amplitudes")
		shots     = flag.Int("shots", 0, "sample this many measurement shots")
		trace     = flag.Bool("trace", false, "print a per-gate trace (FlatDD)")
		traceOut  = flag.String("trace-out", "", "write a JSONL per-gate trace to this file (FlatDD)")
		listen    = flag.String("listen", "", "serve /debug/metrics, /debug/vars and /debug/pprof on this address during the run (e.g. :6060, :0)")
		timeout   = flag.Duration("timeout", 0, "abort after this duration (0 = none)")
		approx    = flag.Float64("approx", 0, "DD-phase state-approximation budget per pruning pass (0 = exact)")
		memMB     = flag.Int("memory-budget-mb", 0, "flat-array memory budget in MiB; over-budget runs stay DD-only (0 = unlimited, FlatDD)")
		integrity = flag.Int("integrity-every", 0, "NaN/Inf/norm-sweep the flat state every N DMAV gates (0 = off, FlatDD)")
		emit      = flag.String("emit", "", "write the loaded circuit as OpenQASM 2.0 to this file and exit")
	)
	flag.Parse()

	c, err := loadCircuit(*qasmPath, *name, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd:", err)
		os.Exit(1)
	}
	fmt.Printf("circuit %s: %d qubits, %d gates, depth %d\n",
		c.Name, c.Qubits, c.GateCount(), c.Depth())

	if *emit != "" {
		f, err := os.Create(*emit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flatdd:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := qasm.Write(f, c); err != nil {
			fmt.Fprintln(os.Stderr, "flatdd:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *emit)
		return
	}

	// The registry is always on for the flatdd engine: handle updates are
	// single atomics, and the end-of-run metrics table is part of the
	// report. The debug server works for every engine (pprof and expvar are
	// engine-independent; /debug/metrics is only populated by flatdd).
	var reg *obs.Registry
	if *engine == "flatdd" {
		reg = obs.New()
	}
	if *listen != "" {
		addr, shutdown, err := obs.Serve(*listen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flatdd:", err)
			os.Exit(1)
		}
		defer shutdown() //nolint:errcheck // process is exiting anyway
		fmt.Printf("debug server on http://%s/debug/metrics\n", addr)
	}

	switch *engine {
	case "flatdd":
		opts := core.Options{
			Threads: *threads, DDThreads: *ddThreads,
			Beta: *beta, Epsilon: *epsilon, K: *k,
			ApproxBudget: *approx, Metrics: reg,
			MemoryBudget:   uint64(*memMB) << 20,
			IntegrityEvery: *integrity,
		}
		// With -trace-out, per-gate events and phase spans share one
		// buffered TraceWriter so the JSONL stream interleaves safely.
		var tw *obs.TraceWriter
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flatdd:", err)
				os.Exit(1)
			}
			defer f.Close()
			tw = obs.NewTraceWriter(f)
			opts.TraceWriter = tw
		}
		switch *fusionF {
		case "none":
		case "dmav":
			opts.Fusion = core.DMAVAware
		case "kops":
			opts.Fusion = core.KOps
		default:
			fmt.Fprintf(os.Stderr, "flatdd: unknown fusion mode %q\n", *fusionF)
			os.Exit(1)
		}
		switch *cache {
		case "auto":
			opts.CacheMode = dmav.Auto
		case "always":
			opts.CacheMode = dmav.AlwaysCache
		case "never":
			opts.CacheMode = dmav.NeverCache
		default:
			fmt.Fprintf(os.Stderr, "flatdd: unknown cache mode %q\n", *cache)
			os.Exit(1)
		}
		if *trace {
			opts.Trace = func(e core.TraceEvent) {
				mark := ""
				if e.Converted {
					mark = "  <= convert to DMAV"
				}
				if e.Phase == core.PhaseDD {
					fmt.Printf("  gate %4d [dd]   size=%-8d ewma=%-10.1f %v%s\n",
						e.GateIndex, e.DDSize, e.EWMA, e.Duration, mark)
				} else {
					fmt.Printf("  gate %4d [dmav] %v\n", e.GateIndex, e.Duration)
				}
			}
		}
		// The run context carries the timeout and Ctrl-C/SIGTERM: the
		// engine observes either within one gate (core.RunContext).
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		// Root the run under a fresh trace so the engine's phase spans
		// (phase.dd, phase.convert, phase.fuse, phase.dmav and the pool
		// batches under them) land in the JSONL stream.
		var root *obs.Span
		if tw != nil {
			root = obs.NewTracer(tw).Root("run", obs.TraceID{}, obs.SpanID{})
			root.SetAttr("circuit", c.Name)
			root.SetAttr("qubits", c.Qubits)
			root.SetAttr("gates", c.GateCount())
			ctx = obs.ContextWithSpan(ctx, root)
		}
		sim := core.New(c.Qubits, opts)
		st, err := sim.RunContext(ctx, c)
		if root != nil {
			if err != nil {
				root.SetAttr("error", err.Error())
			}
			root.End()
			if ferr := tw.Flush(); ferr != nil {
				fmt.Fprintln(os.Stderr, "flatdd: trace-out:", ferr)
			}
		}
		switch {
		case errors.Is(err, core.ErrDeadlineExceeded):
			fmt.Println("TIMED OUT")
			os.Exit(2)
		case errors.Is(err, core.ErrCanceled):
			fmt.Println("CANCELED (signal)")
			os.Exit(2)
		case errors.Is(err, core.ErrNumericalDrift):
			fmt.Fprintln(os.Stderr, "flatdd: ABORTED,", err)
			os.Exit(3)
		case err != nil:
			fmt.Fprintln(os.Stderr, "flatdd:", err)
			os.Exit(1)
		}
		fmt.Printf("engine: FlatDD (threads=%d, beta=%g, epsilon=%g, fusion=%s)\n",
			*threads, *beta, *epsilon, *fusionF)
		if st.ConvertedAtGate >= 0 {
			fmt.Printf("converted to DMAV at gate %d (DD size %d); conversion took %v\n",
				st.ConvertedAtGate, st.FinalDDSize, st.ConversionTime)
			fmt.Printf("phases: dd=%v convert=%v fusion=%v dmav=%v\n",
				st.DDTime, st.ConversionTime, st.FusionTime, st.DMAVTime)
			fmt.Printf("dmav: %d gates (%d cached, %d cache hits)\n",
				st.DMAVStats.Gates, st.DMAVStats.CachedGates, st.DMAVStats.CacheHits)
		} else if st.Degraded {
			fmt.Printf("DEGRADED (%s): conversion suppressed, entire circuit ran in the DD phase\n",
				st.DegradedReason)
		} else {
			fmt.Println("entire circuit ran in the DD phase (regular state)")
		}
		fmt.Printf("total: %v, peak DD nodes: %d, est. memory: %.2f MB\n",
			st.TotalTime, st.PeakDDNodes, float64(st.MemoryBytes)/1e6)
		if st.Approximations > 0 {
			fmt.Printf("approximation: %d pruning passes, fidelity >= %.6f\n",
				st.Approximations, st.Fidelity)
		}
		printResources(st.Resources)
		printMetrics(reg.Snapshot())
		printTop(sim.TopAmplitudes(*top), c.Qubits)
		if *shots > 0 {
			printShots(sim.Sample(rand.New(rand.NewSource(*seed)), *shots), c.Qubits)
		}

	case "ddsim":
		var res harness.Result
		if *ddThreads > 1 {
			res = harness.RunDDSIMParallel(c, *ddThreads, *timeout)
		} else {
			res = harness.RunDDSIM(c, *timeout)
		}
		report(res)

	case "statevec":
		res := harness.RunStatevec(c, *threads, *timeout)
		report(res)

	default:
		fmt.Fprintf(os.Stderr, "flatdd: unknown engine %q\n", *engine)
		os.Exit(1)
	}
}

func loadCircuit(qasmPath, name string, n int, seed int64) (*circuit.Circuit, error) {
	switch {
	case qasmPath != "" && name != "":
		return nil, fmt.Errorf("use either -qasm or -circuit, not both")
	case qasmPath != "":
		return qasm.ParseFile(qasmPath)
	case name != "":
		return workloads.Build(name, n, seed)
	default:
		return nil, fmt.Errorf("nothing to simulate: pass -qasm <file> or -circuit <name>")
	}
}

// printResources renders the run's resource-ledger breakdown: what each
// engine phase cost in CPU time, allocation, and live memory.
func printResources(res *obs.LedgerSnapshot) {
	if res == nil || len(res.Phases) == 0 {
		return
	}
	fmt.Println("resources:")
	fmt.Printf("  %-8s %12s %12s %12s %12s\n", "phase", "wall", "cpu", "alloc", "peak mem")
	for _, pc := range res.Phases {
		fmt.Printf("  %-8s %12v %12v %12s %12s\n",
			pc.Phase, time.Duration(pc.WallNs).Round(time.Microsecond),
			time.Duration(pc.CPUNs).Round(time.Microsecond),
			fmtBytes(pc.AllocBytes), fmtBytes(pc.PeakDDBytes+pc.PeakFlatBytes))
	}
	fmt.Printf("  %-8s %12v %12v %12s %12s   (gc cycles: %d)\n",
		"total", time.Duration(res.WallNs).Round(time.Microsecond),
		time.Duration(res.CPUNs).Round(time.Microsecond),
		fmtBytes(res.AllocBytes), fmtBytes(res.PeakBytes), res.GCCycles)
}

// fmtBytes renders a byte quantity with adaptive binary units.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// printMetrics renders the registry highlights as a small table: table
// sizes and hit rates for the DD layers, cache behaviour and MAC volume
// for DMAV, and the conversion parallelism. The full snapshot is always
// available as JSON via -listen.
func printMetrics(snap obs.Snapshot) {
	rate := func(hits, total int64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
	}
	c, g := snap.Counters, snap.Gauges
	fmt.Println("metrics:")
	fmt.Printf("  %-22s %12s %10s\n", "layer", "lookups", "hit rate")
	fmt.Printf("  %-22s %12d %10s\n", "dd unique (vector)",
		c["dd.unique.v.hits"]+c["dd.unique.v.misses"],
		rate(c["dd.unique.v.hits"], c["dd.unique.v.hits"]+c["dd.unique.v.misses"]))
	fmt.Printf("  %-22s %12d %10s\n", "dd unique (matrix)",
		c["dd.unique.m.hits"]+c["dd.unique.m.misses"],
		rate(c["dd.unique.m.hits"], c["dd.unique.m.hits"]+c["dd.unique.m.misses"]))
	ctLookups := c["dd.ct.add.lookups"] + c["dd.ct.madd.lookups"] + c["dd.ct.mv.lookups"] + c["dd.ct.mm.lookups"]
	ctHits := c["dd.ct.add.hits"] + c["dd.ct.madd.hits"] + c["dd.ct.mv.hits"] + c["dd.ct.mm.hits"]
	fmt.Printf("  %-22s %12d %10s\n", "dd compute tables", ctLookups, rate(ctHits, ctLookups))
	fmt.Printf("  %-22s %12d %10s   (%d entries)\n", "cnum interning",
		c["cnum.lookups"], rate(c["cnum.hits"], c["cnum.lookups"]), g["cnum.size"])
	if c["dmav.gates"] > 0 {
		fmt.Printf("  %-22s %12d %10s   (%d/%d gates cached)\n", "dmav amplitude cache",
			c["dmav.cache.hits"]+c["dmav.cache.misses"],
			rate(c["dmav.cache.hits"], c["dmav.cache.hits"]+c["dmav.cache.misses"]),
			c["dmav.gates.cached"], c["dmav.gates"])
		fmt.Printf("  dmav MACs (modeled): %d, executed: %d over %d tasks in %d chunks\n",
			c["dmav.macs.modeled"], c["dmav.macs.executed"], c["dmav.tasks"], c["dmav.chunks"])
	}
	if c["dd.gc.runs"] > 0 {
		fmt.Printf("  dd GC: %d runs, %d nodes reclaimed, %v paused\n",
			c["dd.gc.runs"], c["dd.gc.reclaimed"], time.Duration(c["dd.gc.pause_ns"]))
	}
	if c["convert.runs"] > 0 {
		fmt.Printf("  conversion: %d tasks, %.0f%% parallel efficiency\n",
			c["convert.tasks"], 100*snap.FloatGauges["convert.efficiency"])
	}
	if c["sched.batches"] > 0 {
		fmt.Printf("  scheduler: %d workers ran %d tasks in %d batches, %d steals, %v idle\n",
			g["sched.workers"], c["sched.tasks"], c["sched.batches"],
			c["sched.steals"], time.Duration(c["sched.idle_ns"]))
	}
}

func report(res harness.Result) {
	if res.TimedOut {
		fmt.Printf("engine: %s TIMED OUT after %v\n", res.Engine, res.Runtime)
		os.Exit(2)
	}
	fmt.Printf("engine: %s\nruntime: %v, est. memory: %.2f MB\n",
		res.Engine, res.Runtime, float64(res.Memory)/1e6)
}

// printTop renders the dominant basis states. In the DD phase the entries
// come from a branch-and-bound query, so even a 30-qubit GHZ state prints
// instantly without expanding 2^30 amplitudes.
func printTop(entries []dd.AmpEntry, n int) {
	if len(entries) == 0 {
		return
	}
	fmt.Printf("top %d basis states:\n", len(entries))
	for _, e := range entries {
		a := e.Amplitude
		p := real(a)*real(a) + imag(a)*imag(a)
		fmt.Printf("  |%0*b>  p=%.6f  amp=%v\n", n, e.Index, p, cround(a))
	}
}

func printShots(counts map[uint64]int, n int) {
	type kv struct {
		idx uint64
		c   int
	}
	var list []kv
	for i, c := range counts {
		list = append(list, kv{i, c})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].c > list[j].c })
	fmt.Println("measurement shots:")
	for i, e := range list {
		if i >= 10 {
			fmt.Printf("  ... and %d more outcomes\n", len(list)-10)
			break
		}
		fmt.Printf("  |%0*b>  %d\n", n, e.idx, e.c)
	}
}

func cround(c complex128) complex128 {
	if cmplx.Abs(c) < 1e-12 {
		return 0
	}
	return c
}
