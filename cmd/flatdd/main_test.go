package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadCircuitFromWorkload(t *testing.T) {
	c, err := loadCircuit("", "ghz", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Qubits != 8 || c.GateCount() != 8 {
		t.Fatalf("ghz-8: %d qubits, %d gates", c.Qubits, c.GateCount())
	}
}

func TestLoadCircuitFromQASM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.qasm")
	if err := os.WriteFile(path, []byte("qreg q[2]; h q[0]; cx q[0],q[1];"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit(path, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Qubits != 2 || c.GateCount() != 2 {
		t.Fatalf("qasm: %d qubits, %d gates", c.Qubits, c.GateCount())
	}
}

func TestLoadCircuitErrors(t *testing.T) {
	if _, err := loadCircuit("", "", 0, 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadCircuit("x.qasm", "ghz", 4, 0); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadCircuit("", "nope", 4, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := loadCircuit("/nonexistent/file.qasm", "", 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCround(t *testing.T) {
	if cround(1e-15+1e-15i) != 0 {
		t.Fatal("tiny value not rounded to zero")
	}
	if cround(1+1i) != 1+1i {
		t.Fatal("real value altered")
	}
}
