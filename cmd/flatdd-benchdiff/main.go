// Command flatdd-benchdiff compares two perf records produced by
// flatdd-bench -out, aligning experiment cells by (experiment, circuit,
// engine[, threads]) and reporting per-cell wall-time deltas with a
// benchstat-style noise guard: a delta only counts as a regression when
// it clears both the relative threshold (default 10%) and a two-sigma
// floor derived from the repetition stddevs.
//
//	flatdd-benchdiff old.json new.json       # explicit pair
//	flatdd-benchdiff new.json                # baseline = newest other BENCH_*.json
//	flatdd-benchdiff                         # newest record vs the one before it
//	flatdd-benchdiff -fail-on-regress        # CI gate: exit 2 on any regression
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"flatdd/internal/perf"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		threshold     = flag.Float64("threshold", perf.DefaultThreshold, "relative wall-time change below which a delta is noise")
		minTime       = flag.Duration("min-time", 0, "cells faster than this on both sides are reported but never flagged")
		memThreshold  = flag.Float64("mem-threshold", perf.DefaultMemThreshold, "relative peak-memory growth beyond which a cell regresses (cells without alloc_peak_bytes on both sides are exempt)")
		failOnRegress = flag.Bool("fail-on-regress", false, "exit non-zero when any cell regresses (for CI)")
		dir           = flag.String("dir", ".", "directory scanned for BENCH_*.json when records aren't given explicitly")
	)
	flag.Parse()

	oldPath, newPath, err := resolvePaths(flag.Args(), *dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-benchdiff:", err)
		return 1
	}
	if oldPath == newPath {
		fmt.Fprintf(os.Stderr, "flatdd-benchdiff: no separate baseline found; comparing %s against itself\n", newPath)
	}
	oldRec, err := perf.Load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-benchdiff:", err)
		return 1
	}
	newRec, err := perf.Load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flatdd-benchdiff:", err)
		return 1
	}

	fmt.Printf("baseline: %s  (%s @ %.12s, scale=%s threads=%d reps=%d)\n",
		oldPath, oldRec.Date.Format("2006-01-02"), oldRec.GitSHA, oldRec.Scale, oldRec.Threads, oldRec.Reps)
	fmt.Printf("new:      %s  (%s @ %.12s, scale=%s threads=%d reps=%d)\n\n",
		newPath, newRec.Date.Format("2006-01-02"), newRec.GitSHA, newRec.Scale, newRec.Threads, newRec.Reps)
	if oldRec.Host != newRec.Host {
		fmt.Printf("note: records come from different host shapes (%+v vs %+v); deltas may not be meaningful\n\n",
			oldRec.Host, newRec.Host)
	}
	if oldRec.Scale != newRec.Scale {
		fmt.Printf("note: records use different scales (%s vs %s); most cells will not align\n\n",
			oldRec.Scale, newRec.Scale)
	}

	rep := perf.Diff(oldRec, newRec, perf.Options{
		Threshold:    *threshold,
		MinWallNs:    float64(minTime.Nanoseconds()),
		MemThreshold: *memThreshold,
	})
	rep.Render(os.Stdout)
	if *failOnRegress && rep.Regressions() > 0 {
		fmt.Fprintf(os.Stderr, "flatdd-benchdiff: %d regression(s) beyond the %.0f%% threshold\n",
			rep.Regressions(), 100*rep.Threshold)
		return 2
	}
	return 0
}

// resolvePaths turns the positional arguments into a (baseline, new)
// record pair. With fewer than two arguments the baseline is the newest
// BENCH_<n>.json available; a lone record falls back to self-comparison
// (useful as a smoke test) rather than erroring.
func resolvePaths(args []string, dir string) (oldPath, newPath string, err error) {
	switch len(args) {
	case 2:
		return args[0], args[1], nil
	case 1:
		newPath = args[0]
		oldPath = perf.NewestRecordPath(filepath.Dir(newPath), newPath)
		if oldPath == "" {
			oldPath = newPath
		}
		return oldPath, newPath, nil
	case 0:
		newPath = perf.NewestRecordPath(dir, "")
		if newPath == "" {
			return "", "", fmt.Errorf("no BENCH_*.json records in %s", dir)
		}
		oldPath = perf.NewestRecordPath(dir, newPath)
		if oldPath == "" {
			oldPath = newPath
		}
		return oldPath, newPath, nil
	default:
		return "", "", fmt.Errorf("expected at most two record paths, got %d arguments", len(args))
	}
}
