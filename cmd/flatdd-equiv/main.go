// Command flatdd-equiv checks two quantum circuits for equivalence using
// the decision-diagram kernel (the flagship DD application cited by the
// FlatDD paper). Circuits are OpenQASM 2.0 files or built-in workloads:
//
//	flatdd-equiv a.qasm b.qasm
//	flatdd-equiv -method alternating a.qasm b.qasm
//	flatdd-equiv -circuit1 ghz -n1 10 -circuit2 ghz -n2 10
//
// Exit status: 0 equivalent, 1 not equivalent, 2 error.
package main

import (
	"flag"
	"fmt"
	"os"

	"flatdd/internal/circuit"
	"flatdd/internal/equiv"
	"flatdd/internal/qasm"
	"flatdd/internal/workloads"
)

func main() {
	var (
		method = flag.String("method", "alternating", "check method: alternating | matrices")
		name1  = flag.String("circuit1", "", "built-in workload for the first circuit")
		name2  = flag.String("circuit2", "", "built-in workload for the second circuit")
		n1     = flag.Int("n1", 8, "qubits for -circuit1")
		n2     = flag.Int("n2", 8, "qubits for -circuit2")
		seed   = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	c1, err := load(flag.Arg(0), *name1, *n1, *seed)
	if err != nil {
		fail(err)
	}
	c2, err := load(flag.Arg(1), *name2, *n2, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("circuit 1: %s (%d qubits, %d gates)\n", c1.Name, c1.Qubits, c1.GateCount())
	fmt.Printf("circuit 2: %s (%d qubits, %d gates)\n", c2.Name, c2.Qubits, c2.GateCount())

	var res equiv.Result
	switch *method {
	case "alternating":
		res, err = equiv.Alternating(c1, c2)
	case "matrices":
		res, err = equiv.Matrices(c1, c2)
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("peak DD nodes: %d\n", res.PeakNodes)
	if res.Equivalent {
		fmt.Printf("EQUIVALENT (global phase %v)\n", res.Phase)
		return
	}
	fmt.Println("NOT EQUIVALENT")
	os.Exit(1)
}

func load(path, name string, n int, seed int64) (*circuit.Circuit, error) {
	switch {
	case path != "":
		return qasm.ParseFile(path)
	case name != "":
		return workloads.Build(name, n, seed)
	default:
		return nil, fmt.Errorf("pass two .qasm files or -circuit1/-circuit2")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flatdd-equiv:", err)
	os.Exit(2)
}
