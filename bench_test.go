package flatdd

// One benchmark family per table/figure of the paper's evaluation
// (Section 4). The workloads are container-scale versions of the paper's
// circuit families; `go test -bench=. -benchmem` regenerates every series,
// and cmd/flatdd-bench renders the corresponding tables. The mapping is
// documented in DESIGN.md's experiment index.

import (
	"testing"
	"time"

	"flatdd/internal/circuit"
	"flatdd/internal/convert"
	"flatdd/internal/core"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
	"flatdd/internal/dmav"
	"flatdd/internal/fusion"
	"flatdd/internal/harness"
	"flatdd/internal/obs"
	"flatdd/internal/statevec"
	"flatdd/internal/workloads"
)

const benchSeed = 20240812

// Shared bench workloads: a regular circuit (DD-friendly), an irregular
// DNN slice and an irregular supremacy slice (DD-hostile).
func benchRegular() *circuit.Circuit   { return workloads.GHZ(16) }
func benchAdder() *circuit.Circuit     { return workloads.Adder(16, benchSeed) }
func benchDNN() *circuit.Circuit       { return workloads.DNN(11, 12, benchSeed) }
func benchSupremacy() *circuit.Circuit { return workloads.SupremacyGrid(12, 16, benchSeed) }
func benchVQE() *circuit.Circuit       { return workloads.VQE(12, 2, benchSeed) }
func benchKNN() *circuit.Circuit       { return workloads.KNN(13, benchSeed) }

func runFlatDD(b *testing.B, c *circuit.Circuit, opts core.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := core.New(c.Qubits, opts)
		s.Run(c)
	}
}

func runDDSIM(b *testing.B, c *circuit.Circuit) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := ddsim.New(c.Qubits)
		s.Run(c)
	}
}

func runStatevec(b *testing.B, c *circuit.Circuit, threads int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := statevec.New(c.Qubits, threads)
		s.ApplyCircuit(c)
	}
}

// ---- Figure 1: DD-based vs array-based on regular and irregular circuits.

func BenchmarkFig1DDSIMRegularAdder(b *testing.B) { runDDSIM(b, benchAdder()) }
func BenchmarkFig1DDSIMRegularGHZ(b *testing.B)   { runDDSIM(b, benchRegular()) }
func BenchmarkFig1DDSIMIrregularDNN(b *testing.B) { runDDSIM(b, benchDNN()) }
func BenchmarkFig1DDSIMIrregularVQE(b *testing.B) { runDDSIM(b, benchVQE()) }
func BenchmarkFig1ArrayRegularAdder(b *testing.B) { runStatevec(b, benchAdder(), 4) }
func BenchmarkFig1ArrayRegularGHZ(b *testing.B)   { runStatevec(b, benchRegular(), 4) }
func BenchmarkFig1ArrayIrregularDNN(b *testing.B) { runStatevec(b, benchDNN(), 4) }
func BenchmarkFig1ArrayIrregularVQE(b *testing.B) { runStatevec(b, benchVQE(), 4) }

// ---- Figure 3: the hybrid run with per-gate tracing enabled.

func BenchmarkFig3FlatDDTraced(b *testing.B) {
	c := benchDNN()
	runFlatDD(b, c, core.Options{Threads: 4, Trace: func(core.TraceEvent) {}})
}

// ---- Table 1: the three engines on representative suite members.

func BenchmarkTable1FlatDDDNN(b *testing.B) { runFlatDD(b, benchDNN(), core.Options{Threads: 4}) }
func BenchmarkTable1FlatDDSupremacy(b *testing.B) {
	runFlatDD(b, benchSupremacy(), core.Options{Threads: 4})
}
func BenchmarkTable1FlatDDGHZ(b *testing.B)   { runFlatDD(b, benchRegular(), core.Options{Threads: 4}) }
func BenchmarkTable1FlatDDAdder(b *testing.B) { runFlatDD(b, benchAdder(), core.Options{Threads: 4}) }
func BenchmarkTable1FlatDDKNN(b *testing.B)   { runFlatDD(b, benchKNN(), core.Options{Threads: 4}) }
func BenchmarkTable1DDSIMSupremacy(b *testing.B) {
	// The pure-DD engine needs a shallower slice to finish a bench
	// iteration: its per-gate cost explodes on scrambled states.
	c := workloads.SupremacyGrid(10, 6, benchSeed)
	runDDSIM(b, c)
}
func BenchmarkTable1QppDNN(b *testing.B)       { runStatevec(b, benchDNN(), 4) }
func BenchmarkTable1QppSupremacy(b *testing.B) { runStatevec(b, benchSupremacy(), 4) }
func BenchmarkTable1QppGHZ(b *testing.B)       { runStatevec(b, benchRegular(), 4) }

// ---- Figure 11: per-gate cost in the two phases (one DD-phase gate vs
// one DMAV gate on an irregular state).

func BenchmarkFig11DDPhaseGateIrregular(b *testing.B) {
	c := benchDNN()
	s := ddsim.New(c.Qubits)
	for i := 0; i < 60 && i < len(c.Gates); i++ {
		s.ApplyGate(&c.Gates[i])
	}
	g := circuit.H(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(&g)
	}
}

func BenchmarkFig11DMAVGateIrregular(b *testing.B) {
	c := benchDNN()
	n := c.Qubits
	m := dd.New(n)
	g := circuit.FSim(0.5, 0.2, 1, n-2)
	M := ddsim.BuildGateDD(m, n, &g)
	V := make([]complex128, 1<<uint(n))
	V[0] = 1
	W := make([]complex128, len(V))
	e := dmav.New(m, n, 4, dmav.Auto)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(M, V, W)
	}
}

// ---- Figure 12: scalability across thread counts.

func benchFlatDDThreads(b *testing.B, threads int) {
	runFlatDD(b, benchSupremacy(), core.Options{Threads: threads})
}

func BenchmarkFig12FlatDDT1(b *testing.B)  { benchFlatDDThreads(b, 1) }
func BenchmarkFig12FlatDDT2(b *testing.B)  { benchFlatDDThreads(b, 2) }
func BenchmarkFig12FlatDDT4(b *testing.B)  { benchFlatDDThreads(b, 4) }
func BenchmarkFig12FlatDDT8(b *testing.B)  { benchFlatDDThreads(b, 8) }
func BenchmarkFig12FlatDDT16(b *testing.B) { benchFlatDDThreads(b, 16) }
func BenchmarkFig12QppT1(b *testing.B)     { runStatevec(b, benchSupremacy(), 1) }
func BenchmarkFig12QppT4(b *testing.B)     { runStatevec(b, benchSupremacy(), 4) }
func BenchmarkFig12QppT16(b *testing.B)    { runStatevec(b, benchSupremacy(), 16) }

// ---- Figure 13: parallel vs sequential DD-to-array conversion on an
// irregular mid-simulation state.

func fig13State(b *testing.B) (dd.VEdge, *dd.Manager, int) {
	b.Helper()
	c := benchDNN()
	s := ddsim.New(c.Qubits)
	for i := 0; i < 80 && i < len(c.Gates); i++ {
		s.ApplyGate(&c.Gates[i])
	}
	return s.State(), s.Manager(), c.Qubits
}

func BenchmarkFig13ConversionSequential(b *testing.B) {
	e, m, n := fig13State(b)
	out := make([]complex128, 1<<uint(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(out)
		m.FillArray(e, n, out)
	}
}

func BenchmarkFig13ConversionParallelT4(b *testing.B) {
	e, _, n := fig13State(b)
	out := make([]complex128, 1<<uint(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(out)
		convert.ParallelInto(e, n, 4, out)
	}
}

// ---- Figure 14: DMAV with vs without caching.

func benchCaching(b *testing.B, mode dmav.Mode) {
	runFlatDD(b, benchSupremacy(), core.Options{Threads: 4, CacheMode: mode, ForceConvertAfter: 1})
}

func BenchmarkFig14DMAVNoCache(b *testing.B)   { benchCaching(b, dmav.NeverCache) }
func BenchmarkFig14DMAVAutoCache(b *testing.B) { benchCaching(b, dmav.Auto) }

// ---- Table 2: gate fusion on deep circuits.

func BenchmarkTable2NoFusion(b *testing.B) {
	runFlatDD(b, benchDNN(), core.Options{Threads: 4})
}

func BenchmarkTable2DMAVAwareFusion(b *testing.B) {
	runFlatDD(b, benchDNN(), core.Options{Threads: 4, Fusion: core.DMAVAware})
}

func BenchmarkTable2KOperations(b *testing.B) {
	runFlatDD(b, benchDNN(), core.Options{Threads: 4, Fusion: core.KOps, K: 4})
}

// BenchmarkTable2FusionPassOnly isolates the cost of the fusion pass
// itself (Algorithm 3 + DDMM), without the simulation around it.
func BenchmarkTable2FusionPassOnly(b *testing.B) {
	c := benchDNN()
	n := c.Qubits
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := dd.New(n)
		e := dmav.New(m, n, 4, dmav.Auto)
		gates := make([]dd.MEdge, len(c.Gates))
		for j := range c.Gates {
			gates[j] = ddsim.BuildGateDD(m, n, &c.Gates[j])
		}
		fusion.Fuse(m, gates, func(g dd.MEdge) float64 { return e.EvaluateCost(g).Cost() })
	}
}

// ---- End-to-end harness smoke benchmark (the full Table 1 pipeline at
// tiny scale), to catch performance regressions in the harness itself.

func BenchmarkHarnessTable1Tiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Table1(harness.Config{Scale: harness.ScaleTiny, Threads: 4,
			Timeout: time.Minute, Out: discard{}})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// ---- Ablation benches for the design choices called out in DESIGN.md.

// Conversion optimizations (Figure 4): optimized parallel vs naive split.
func benchConversionState(b *testing.B) (dd.VEdge, int) {
	b.Helper()
	n := 16
	m := dd.New(n)
	s := ddsim.NewWithManager(m, n)
	// A half-sparse state: GHZ ladder then a few rotations, so both zero
	// edges and shared children appear.
	c := workloads.GHZ(n)
	s.Run(c)
	g := circuit.RY(0.3, 2)
	s.ApplyGate(&g)
	g2 := circuit.RY(0.9, 9)
	s.ApplyGate(&g2)
	return s.State(), n
}

func BenchmarkAblationConversionFig4(b *testing.B) {
	e, n := benchConversionState(b)
	out := make([]complex128, 1<<uint(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(out)
		convert.ParallelInto(e, n, 4, out)
	}
}

func BenchmarkAblationConversionNaive(b *testing.B) {
	e, n := benchConversionState(b)
	out := make([]complex128, 1<<uint(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(out)
		convert.ParallelNaiveInto(e, n, 4, out)
	}
}

// DMAV shared partial-output buffers on vs off (Algorithm 2).
func benchBufferSharing(b *testing.B, share bool) {
	n := 13
	m := dd.New(n)
	g := circuit.CX(2, 10)
	M := ddsim.BuildGateDD(m, n, &g)
	V := make([]complex128, 1<<uint(n))
	V[0] = 1
	W := make([]complex128, len(V))
	e := dmav.New(m, n, 4, dmav.AlwaysCache)
	e.SetBufferSharing(share)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(M, V, W)
	}
}

func BenchmarkAblationBufferSharingOn(b *testing.B)  { benchBufferSharing(b, true) }
func BenchmarkAblationBufferSharingOff(b *testing.B) { benchBufferSharing(b, false) }

// State approximation (extension): exact vs approximated DD phase.
func BenchmarkAblationApproxOff(b *testing.B) {
	runFlatDD(b, benchDNN(), core.Options{Threads: 4, DisableConversion: true})
}

func BenchmarkAblationApproxOn(b *testing.B) {
	runFlatDD(b, benchDNN(), core.Options{Threads: 4, DisableConversion: true,
		ApproxBudget: 0.001, ApproxThreshold: 128})
}

// ---- Instrumentation overhead: the DMAV kernel with metrics disabled
// (nil registry, the default) vs enabled (live registry). The disabled
// pair must stay within noise of each other — every instrumentation site
// is a single nil check — and the enabled case bounds the worst-case cost
// of running with -listen / -trace-out. Recorded in EXPERIMENTS.md.

func benchObsOverhead(b *testing.B, r *obs.Registry, led *obs.ResourceLedger) {
	c := benchDNN()
	n := c.Qubits
	m := dd.New(n)
	g := circuit.FSim(0.5, 0.2, 1, n-2)
	M := ddsim.BuildGateDD(m, n, &g)
	V := make([]complex128, 1<<uint(n))
	V[0] = 1
	W := make([]complex128, len(V))
	e := dmav.New(m, n, 4, dmav.Auto)
	e.SetMetrics(r)
	if led != nil {
		led.Begin("dmav")
		defer led.End()
		e.SetLedger(led)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(M, V, W)
	}
}

func BenchmarkObsOverheadDMAVDisabled(b *testing.B) { benchObsOverhead(b, nil, nil) }
func BenchmarkObsOverheadDMAVEnabled(b *testing.B)  { benchObsOverhead(b, obs.New(), nil) }

// The ledger pair bounds the tentpole's attribution cost: CPU time is
// credited per batch (pooled path) or per Apply (inline path), never per
// amplitude, so Ledger must stay within ~2% of Enabled.
func BenchmarkObsOverheadDMAVLedger(b *testing.B) {
	benchObsOverhead(b, obs.New(), obs.NewResourceLedger())
}
