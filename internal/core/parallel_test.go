package core

import (
	"math/rand"
	"testing"

	"flatdd/internal/sched"
)

// TestDDThreadsParallelMatchesSequential pins the Options.DDThreads
// wiring: the hybrid engine with a task-parallel DD phase must produce
// bit-identical amplitudes to the sequential engine, whether it creates
// its own DD-phase pool or shares the caller's.
func TestDDThreadsParallelMatchesSequential(t *testing.T) {
	// 9 qubits and a long DD phase so the state DD crosses the 256-node
	// parallel cutoff and the frontier split actually fires (a narrow
	// register would silently stay on the sequential path).
	rng := rand.New(rand.NewSource(41))
	c := randomCircuit(rng, 9, 120)

	seq := New(9, Options{Threads: 2, ForceConvertAfter: 100})
	seq.Run(c)
	want := seq.Amplitudes()

	par := New(9, Options{Threads: 2, DDThreads: 4, ForceConvertAfter: 100})
	par.Run(c)
	got := par.Amplitudes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DDThreads=4 amplitude %d: %v != sequential %v", i, got[i], want[i])
		}
	}

	// The shared pool drives the DMAV phase too, whose parallel reductions
	// are deterministic only per thread count — size it to match Threads so
	// the only change under test is the DD phase going parallel.
	pool := sched.New(2)
	defer pool.Close()
	shared := New(9, Options{Threads: 2, DDThreads: 2, Pool: pool, ForceConvertAfter: 100})
	shared.Run(c)
	got = shared.Amplitudes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shared-pool amplitude %d: %v != sequential %v", i, got[i], want[i])
		}
	}
}
