package core

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/dmav"
	"flatdd/internal/statevec"
)

const eps = 1e-9

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < eps }

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("rand", n)
	for len(c.Gates) < gates {
		switch rng.Intn(6) {
		case 0:
			c.Append(circuit.H(rng.Intn(n)))
		case 1:
			c.Append(circuit.T(rng.Intn(n)))
		case 2:
			c.Append(circuit.RY(rng.NormFloat64(), rng.Intn(n)))
		case 3:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		case 4:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.FSim(rng.NormFloat64(), rng.NormFloat64(), a, b))
			}
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.CP(rng.NormFloat64(), a, b))
			}
		}
	}
	return c
}

func ghz(n int) *circuit.Circuit {
	c := circuit.New("ghz", n)
	c.Append(circuit.H(0))
	for q := 1; q < n; q++ {
		c.Append(circuit.CX(q-1, q))
	}
	return c
}

func checkAgainstStatevec(t *testing.T, c *circuit.Circuit, opts Options) Stats {
	t.Helper()
	s := New(c.Qubits, opts)
	st := s.Run(c)
	sv := statevec.New(c.Qubits, 2)
	sv.ApplyCircuit(c)
	got := s.Amplitudes()
	want := sv.Amplitudes()
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Fatalf("amplitude %d: %v, want %v (opts=%+v)", i, got[i], want[i], opts)
		}
	}
	return st
}

func TestMatchesStatevecAllConfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	configs := []Options{
		{},                                 // defaults, controller decides
		{Threads: 4},                       // parallel
		{ForceConvertAfter: 1},             // convert almost immediately
		{ForceConvertAfter: 5, Threads: 8}, // convert early, many threads
		{DisableConversion: true},          // pure DD
		{ForceConvertAfter: 3, CacheMode: dmav.AlwaysCache},
		{ForceConvertAfter: 3, CacheMode: dmav.NeverCache},
		{ForceConvertAfter: 2, Fusion: DMAVAware, Threads: 4},
		{ForceConvertAfter: 2, Fusion: KOps, K: 3, Threads: 2},
		{ForceConvertAfter: 4, SequentialConversion: true},
	}
	for ci, opts := range configs {
		n := 4 + rng.Intn(3)
		c := randomCircuit(rng, n, 35)
		st := checkAgainstStatevec(t, c, opts)
		if st.Gates != 35 {
			t.Fatalf("config %d: stats gates = %d", ci, st.Gates)
		}
	}
}

func TestGHZStaysInDDPhase(t *testing.T) {
	s := New(16, Options{Threads: 4})
	st := s.Run(ghz(16))
	if st.ConvertedAtGate != -1 {
		t.Fatalf("GHZ converted at gate %d; should stay in DD phase", st.ConvertedAtGate)
	}
	if s.Phase() != PhaseDD {
		t.Fatal("phase is not DD")
	}
	want := complex(1/math.Sqrt2, 0)
	if !approx(s.Amplitude(0), want) || !approx(s.Amplitude(1<<16-1), want) {
		t.Fatal("GHZ amplitudes wrong")
	}
}

func TestIrregularCircuitConverts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 10
	c := randomCircuit(rng, n, 120)
	s := New(n, Options{Threads: 2})
	st := s.Run(c)
	if st.ConvertedAtGate < 0 {
		t.Fatal("irregular circuit never converted to DMAV")
	}
	if s.Phase() != PhaseDMAV {
		t.Fatal("phase is not DMAV after conversion")
	}
	if st.ConversionTime <= 0 {
		t.Fatal("conversion time not recorded")
	}
	if st.DMAVTime <= 0 {
		t.Fatal("DMAV time not recorded")
	}
}

func TestTraceEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 7
	c := randomCircuit(rng, n, 50)
	var events []TraceEvent
	s := New(n, Options{ForceConvertAfter: 10, Trace: func(e TraceEvent) { events = append(events, e) }})
	s.Run(c)
	if len(events) != 50 {
		t.Fatalf("got %d trace events, want 50", len(events))
	}
	ddCount, dmavCount := 0, 0
	for i, e := range events {
		if e.GateIndex != i {
			t.Fatalf("event %d has gate index %d", i, e.GateIndex)
		}
		switch e.Phase {
		case PhaseDD:
			ddCount++
			if e.DDSize <= 0 {
				t.Fatalf("DD event %d missing size", i)
			}
		case PhaseDMAV:
			dmavCount++
		}
	}
	if ddCount != 10 || dmavCount != 40 {
		t.Fatalf("phase split %d/%d, want 10/40", ddCount, dmavCount)
	}
	if !events[9].Converted {
		t.Fatal("conversion gate not flagged")
	}
}

func TestForcedConversionIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng, 5, 20)
	s := New(5, Options{ForceConvertAfter: 7})
	st := s.Run(c)
	if st.ConvertedAtGate != 7 {
		t.Fatalf("converted at %d, want 7", st.ConvertedAtGate)
	}
}

func TestFusionReducesDMAVGateCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 6
	c := circuit.New("diag-heavy", n)
	for i := 0; i < 40; i++ {
		if i%4 == 3 {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				b = (a + 1) % n
			}
			c.Append(circuit.CZ(a, b))
		} else {
			c.Append(circuit.RZ(rng.NormFloat64(), rng.Intn(n)))
		}
	}
	s := New(n, Options{ForceConvertAfter: 1, Fusion: DMAVAware})
	st := s.Run(c)
	if st.FusionResult == nil {
		t.Fatal("no fusion result recorded")
	}
	if st.FusedGates >= 39 {
		t.Fatalf("fusion did not shrink the gate list: %d", st.FusedGates)
	}
	if st.FusionResult.CostAfter > st.FusionResult.CostBefore {
		t.Fatal("fusion increased modeled cost")
	}
}

func TestProbabilitiesAndSampling(t *testing.T) {
	c := circuit.New("bell", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1))
	s := New(2, Options{})
	s.Run(c)
	probs := s.Probabilities()
	if math.Abs(probs[0]-0.5) > eps || math.Abs(probs[3]-0.5) > eps {
		t.Fatalf("Bell probabilities %v", probs)
	}
	counts := s.Sample(rand.New(rand.NewSource(1)), 1000)
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("sampled impossible outcomes: %v", counts)
	}
	if counts[0] < 350 || counts[0] > 650 {
		t.Fatalf("biased samples: %v", counts)
	}
}

func TestStatsMemoryAndPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randomCircuit(rng, 8, 60)
	s := New(8, Options{Threads: 2})
	st := s.Run(c)
	if st.PeakDDNodes <= 0 {
		t.Fatal("peak DD nodes not tracked")
	}
	if st.MemoryBytes == 0 {
		t.Fatal("memory estimate missing")
	}
	if st.TotalTime <= 0 {
		t.Fatal("total time missing")
	}
}

func TestRunRejectsWrongWidth(t *testing.T) {
	s := New(3, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted mismatched circuit")
		}
	}()
	s.Run(circuit.New("wrong", 4))
}

func TestEmptyCircuit(t *testing.T) {
	s := New(3, Options{})
	st := s.Run(circuit.New("empty", 3))
	if st.ConvertedAtGate != -1 || st.Gates != 0 {
		t.Fatalf("empty circuit stats: %+v", st)
	}
	if !approx(s.Amplitude(0), 1) {
		t.Fatal("empty circuit state is not |0...0>")
	}
}

func TestConversionOnLastGateStaysDD(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := randomCircuit(rng, 4, 6)
	s := New(4, Options{ForceConvertAfter: 6})
	st := s.Run(c)
	if st.ConvertedAtGate != -1 {
		t.Fatal("converted with no remaining gates")
	}
	// Amplitudes must still be correct via on-demand conversion.
	sv := statevec.New(4, 1)
	sv.ApplyCircuit(c)
	got := s.Amplitudes()
	for i := range got {
		if !approx(got[i], sv.Amplitudes()[i]) {
			t.Fatalf("amplitude %d mismatch", i)
		}
	}
}

func TestThreadCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := randomCircuit(rng, 8, 60)
	ref := New(8, Options{Threads: 1}).run(c, t)
	for _, threads := range []int{2, 4, 16} {
		got := New(8, Options{Threads: threads}).run(c, t)
		for i := range ref {
			if !approx(ref[i], got[i]) {
				t.Fatalf("threads=%d diverges at %d", threads, i)
			}
		}
	}
}

func (s *Simulator) run(c *circuit.Circuit, t *testing.T) []complex128 {
	t.Helper()
	s.Run(c)
	return s.Amplitudes()
}

func TestTopAmplitudesBothPhases(t *testing.T) {
	c := ghz(10)
	want := map[uint64]bool{0: true, 1023: true}
	for _, opts := range []Options{{DisableConversion: true}, {ForceConvertAfter: 3}} {
		s := New(10, opts)
		s.Run(c)
		top := s.TopAmplitudes(5)
		if len(top) != 2 {
			t.Fatalf("opts %+v: %d entries, want 2", opts, len(top))
		}
		for _, e := range top {
			if !want[e.Index] {
				t.Fatalf("unexpected index %d", e.Index)
			}
		}
		if s.TopAmplitudes(0) != nil {
			t.Fatal("k=0 returned entries")
		}
	}
}
