package core

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
)

// skewedCircuit builds a state with a heavy head and a light tail: mostly
// small rotations so most mass stays near |0..0>.
func skewedCircuit(n, gates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("skewed", n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Append(circuit.RY(0.05*rng.NormFloat64(), rng.Intn(n)))
		case 1:
			c.Append(circuit.RZ(rng.NormFloat64(), rng.Intn(n)))
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		}
	}
	return c
}

func TestApproximationBoundsFidelity(t *testing.T) {
	n := 10
	c := skewedCircuit(n, 120, 3)
	exact := New(n, Options{DisableConversion: true})
	exact.Run(c)
	ex := exact.Amplitudes()

	approx := New(n, Options{DisableConversion: true, ApproxBudget: 0.001, ApproxThreshold: 16})
	st := approx.Run(c)
	if st.Fidelity > 1 || st.Fidelity <= 0 {
		t.Fatalf("fidelity out of range: %v", st.Fidelity)
	}
	ap := approx.Amplitudes()
	var ip complex128
	for i := range ex {
		ip += cmplx.Conj(ex[i]) * ap[i]
	}
	actual := real(ip * cmplx.Conj(ip))
	if actual < st.Fidelity-1e-9 {
		t.Fatalf("actual fidelity %v below reported bound %v", actual, st.Fidelity)
	}
	if st.Approximations == 0 {
		t.Skip("no approximation triggered on this circuit shape")
	}
}

func TestApproximationOffByDefault(t *testing.T) {
	c := skewedCircuit(8, 60, 5)
	s := New(8, Options{})
	st := s.Run(c)
	if st.Fidelity != 1 || st.Approximations != 0 {
		t.Fatalf("approximation ran without being enabled: %+v", st)
	}
}
