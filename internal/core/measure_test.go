package core

import (
	"math"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
)

func TestMeasureQubitBothPhases(t *testing.T) {
	// Bell pair: measuring qubit 0 collapses qubit 1 to the same value.
	for _, force := range []int{-1, 1} { // -1: stay in DD phase; 1: convert
		counts := map[int]int{}
		for trial := 0; trial < 200; trial++ {
			c := circuit.New("bell", 2)
			c.Append(circuit.H(0), circuit.CX(0, 1), circuit.I(0), circuit.I(1))
			opts := Options{ForceConvertAfter: force}
			if force < 0 {
				opts = Options{DisableConversion: true}
			}
			s := New(2, opts)
			s.Run(c)
			rng := rand.New(rand.NewSource(int64(trial)))
			m0 := s.MeasureQubit(0, rng)
			counts[m0]++
			// After the collapse, qubit 1 must be perfectly correlated.
			if p := s.ProbabilityOfQubit(1); math.Abs(p-float64(m0)) > 1e-9 {
				t.Fatalf("force=%d trial=%d: P(q1=1)=%v after measuring q0=%d", force, trial, p, m0)
			}
			m1 := s.MeasureQubit(1, rng)
			if m1 != m0 {
				t.Fatalf("Bell correlation broken: %d vs %d", m0, m1)
			}
		}
		if counts[0] < 50 || counts[1] < 50 {
			t.Fatalf("force=%d: biased outcomes %v", force, counts)
		}
	}
}

func TestProbabilityOfQubitMatchesAcrossPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := circuit.New("r", 5)
	for i := 0; i < 30; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Append(circuit.RY(rng.NormFloat64(), rng.Intn(5)))
		case 1:
			c.Append(circuit.H(rng.Intn(5)))
		default:
			a, b := rng.Intn(5), rng.Intn(5)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		}
	}
	dd := New(5, Options{DisableConversion: true})
	dd.Run(c)
	arr := New(5, Options{ForceConvertAfter: 1})
	arr.Run(c)
	for q := 0; q < 5; q++ {
		pd := dd.ProbabilityOfQubit(q)
		pa := arr.ProbabilityOfQubit(q)
		if math.Abs(pd-pa) > 1e-9 {
			t.Fatalf("qubit %d: DD phase P=%v, array phase P=%v", q, pd, pa)
		}
	}
}
