package core_test

import (
	"fmt"

	"flatdd/internal/circuit"
	"flatdd/internal/core"
)

// ExampleSimulator_Run builds a Bell pair and reads its amplitudes.
func ExampleSimulator_Run() {
	c := circuit.New("bell", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1))

	sim := core.New(2, core.Options{})
	stats := sim.Run(c)

	fmt.Printf("converted: %v\n", stats.ConvertedAtGate >= 0)
	fmt.Printf("P(00) = %.2f\n", sim.Probabilities()[0])
	fmt.Printf("P(11) = %.2f\n", sim.Probabilities()[3])
	// Output:
	// converted: false
	// P(00) = 0.50
	// P(11) = 0.50
}

// ExampleOptions_forceConversion shows driving the hybrid engine straight
// into the DMAV phase.
func ExampleOptions() {
	c := circuit.New("chain", 3)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.CX(1, 2), circuit.X(0))

	sim := core.New(3, core.Options{ForceConvertAfter: 2, Threads: 2})
	stats := sim.Run(c)
	fmt.Printf("converted at gate %d of %d\n", stats.ConvertedAtGate, stats.Gates)
	fmt.Printf("phase: %v\n", sim.Phase())
	// Output:
	// converted at gate 2 of 4
	// phase: dmav
}
