package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/obs"
	"flatdd/internal/statevec"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestControllerFiresOnFinalGate is the controller-driven companion of
// TestConversionOnLastGateStaysDD: instead of forcing conversion on the
// last gate, it finds the gate where the EWMA controller actually fires
// and truncates the circuit so that firing lands on the final gate. The
// `convertNow && i+1 < len(c.Gates)` guard must then suppress conversion:
// ConvertedAtGate stays -1, the run ends in the DD phase, the trace never
// flags Converted, and the amplitudes stay correct.
func TestControllerFiresOnFinalGate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 10
	full := randomCircuit(rng, n, 120)
	ref := New(n, Options{}).Run(full)
	if ref.ConvertedAtGate <= 0 {
		t.Fatalf("reference run did not convert (ConvertedAtGate=%d); pick a different seed", ref.ConvertedAtGate)
	}
	// ConvertedAtGate is the first DMAV gate, so the controller fired on
	// gate ConvertedAtGate-1. Truncating there makes that the final gate.
	trunc := circuit.New("trunc", n)
	trunc.Gates = append(trunc.Gates, full.Gates[:ref.ConvertedAtGate]...)

	var events []TraceEvent
	s := New(n, Options{Trace: func(e TraceEvent) { events = append(events, e) }})
	st := s.Run(trunc)
	if st.ConvertedAtGate != -1 {
		t.Fatalf("ConvertedAtGate = %d, want -1 when the controller fires on the final gate", st.ConvertedAtGate)
	}
	if s.Phase() != PhaseDD {
		t.Fatal("phase left DD with no remaining gates to run in DMAV")
	}
	if len(events) != trunc.GateCount() {
		t.Fatalf("got %d trace events, want %d", len(events), trunc.GateCount())
	}
	for _, e := range events {
		if e.Converted {
			t.Fatalf("gate %d flagged Converted, but no conversion happened", e.GateIndex)
		}
		if e.Phase != PhaseDD {
			t.Fatalf("gate %d ran in %v, want DD", e.GateIndex, e.Phase)
		}
	}
	sv := statevec.New(n, 2)
	sv.ApplyCircuit(trunc)
	got := s.Amplitudes()
	for i, w := range sv.Amplitudes() {
		if !approx(got[i], w) {
			t.Fatalf("amplitude %d: %v, want %v", i, got[i], w)
		}
	}
}

// durationFields zeroes the wall-clock fields of a JSONL trace so runs are
// byte-comparable across machines.
var durationFields = regexp.MustCompile(`"(duration_ns|total_ns)":\d+`)

func normalizeTrace(b []byte) []byte {
	return durationFields.ReplaceAll(b, []byte(`"$1":0`))
}

// TestJSONLTraceGoldenGHZ locks down the JSONL schema with a golden file:
// a GHZ run is fully deterministic (gate order, phases, DD sizes, EWMA
// values) apart from wall-clock durations, which are normalized to 0.
// Regenerate with `go test ./internal/core/ -run GoldenGHZ -update`.
func TestJSONLTraceGoldenGHZ(t *testing.T) {
	var buf bytes.Buffer
	s := New(4, Options{TraceJSONL: &buf})
	s.Run(ghz(4))
	got := normalizeTrace(buf.Bytes())

	golden := filepath.Join("testdata", "ghz_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSONL trace differs from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONLTracePhaseFlip drives a run that converts mid-circuit and
// checks the JSONL stream end to end: every line parses, per-gate lines
// carry the documented fields, the phase flips from "dd" to "dmav" exactly
// at ConvertedAtGate, and the final "run" line summarizes the run. The
// callback and the JSONL writer receive the same event stream.
func TestJSONLTracePhaseFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 7
	c := randomCircuit(rng, n, 50)
	var buf bytes.Buffer
	callbacks := 0
	s := New(n, Options{
		ForceConvertAfter: 10,
		TraceJSONL:        &buf,
		Trace:             func(TraceEvent) { callbacks++ },
	})
	st := s.Run(c)
	if st.ConvertedAtGate != 10 {
		t.Fatalf("ConvertedAtGate = %d, want 10", st.ConvertedAtGate)
	}
	if callbacks != 50 {
		t.Fatalf("callback saw %d events, want 50", callbacks)
	}

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 51 { // 50 gate lines + 1 run line
		t.Fatalf("got %d JSONL lines, want 51", len(lines))
	}
	for i, line := range lines[:50] {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		for _, field := range []string{"event", "gate", "phase", "dd_size", "ewma", "duration_ns", "converted"} {
			if _, ok := rec[field]; !ok {
				t.Fatalf("line %d missing field %q: %s", i, field, line)
			}
		}
		if rec["event"] != "gate" || int(rec["gate"].(float64)) != i {
			t.Fatalf("line %d has event=%v gate=%v", i, rec["event"], rec["gate"])
		}
		wantPhase := "dd"
		if i >= 10 {
			wantPhase = "dmav"
		}
		if rec["phase"] != wantPhase {
			t.Fatalf("gate %d phase = %v, want %s", i, rec["phase"], wantPhase)
		}
		if conv := rec["converted"].(bool); conv != (i == 9) {
			t.Fatalf("gate %d converted = %v", i, conv)
		}
	}
	var run map[string]any
	if err := json.Unmarshal(lines[50], &run); err != nil {
		t.Fatalf("run line is not valid JSON: %v", err)
	}
	if run["event"] != "run" || int(run["converted_at"].(float64)) != 10 ||
		run["final_phase"] != "dmav" || int(run["gates"].(float64)) != 50 {
		t.Fatalf("run record: %s", lines[50])
	}
	if run["timed_out"].(bool) {
		t.Fatal("run record claims a timeout")
	}
}

// TestMetricsRegistryEndToEnd runs a converting circuit with a live
// registry and checks that every instrumented layer reported in.
func TestMetricsRegistryEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 7
	c := randomCircuit(rng, n, 50)
	r := obs.New()
	s := New(n, Options{ForceConvertAfter: 10, Threads: 4, Metrics: r})
	st := s.Run(c)

	snap := r.Snapshot()
	ctr := func(name string) int64 { return snap.Counters[name] }
	if got := ctr("core.gates.dd"); got != 10 {
		t.Errorf("core.gates.dd = %d, want 10", got)
	}
	if got := ctr("core.gates.dmav"); got != int64(st.FusedGates) {
		t.Errorf("core.gates.dmav = %d, want %d", got, st.FusedGates)
	}
	if got := ctr("core.phase_transitions"); got != 1 {
		t.Errorf("core.phase_transitions = %d, want 1", got)
	}
	if got := snap.Gauges["core.converted_at_gate"]; got != 10 {
		t.Errorf("core.converted_at_gate = %d, want 10", got)
	}
	if got := ctr("convert.runs"); got != 1 {
		t.Errorf("convert.runs = %d, want 1", got)
	}
	if ctr("dd.unique.v.misses") == 0 {
		t.Error("dd.unique.v.misses never incremented")
	}
	if snap.Gauges["dd.nodes.peak"] != int64(st.PeakDDNodes) {
		t.Errorf("dd.nodes.peak = %d, want %d", snap.Gauges["dd.nodes.peak"], st.PeakDDNodes)
	}
	if ctr("cnum.lookups") == 0 {
		t.Error("cnum.lookups never incremented")
	}
	if got := ctr("dmav.gates"); got != int64(st.FusedGates) {
		t.Errorf("dmav.gates = %d, want %d", got, st.FusedGates)
	}
	if ctr("dmav.gates.cached")+ctr("dmav.gates.uncached") != ctr("dmav.gates") {
		t.Errorf("cached(%d)+uncached(%d) != gates(%d)",
			ctr("dmav.gates.cached"), ctr("dmav.gates.uncached"), ctr("dmav.gates"))
	}
	if snap.FloatGauges["core.ewma"] <= 0 {
		t.Error("core.ewma gauge never set")
	}
	h, ok := snap.Histograms["core.gate_ns.dd"]
	if !ok || h.Count != 10 {
		t.Errorf("core.gate_ns.dd histogram count = %d, want 10", h.Count)
	}
	if h, ok := snap.Histograms["dmav.apply_ns"]; !ok || h.Count != int64(st.FusedGates) {
		t.Errorf("dmav.apply_ns count = %d, want %d", h.Count, st.FusedGates)
	}

	// The per-worker MAC counts must sum to something positive and the
	// modeled total must be registered.
	if ctr("dmav.macs.modeled") <= 0 {
		t.Error("dmav.macs.modeled not populated")
	}

	// A registry-off run of the same circuit produces identical amplitudes.
	s2 := New(n, Options{ForceConvertAfter: 10, Threads: 4})
	s2.Run(c)
	got, want := s.Amplitudes(), s2.Amplitudes()
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Fatalf("metrics changed amplitude %d: %v vs %v", i, got[i], want[i])
		}
	}
}
