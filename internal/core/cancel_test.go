package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"flatdd/internal/obs"
	"flatdd/internal/sched"
)

// norm sums |a|^2 over the final state; a queryable simulator whose last
// gate was fully applied must still be normalized.
func norm(s *Simulator) float64 {
	var p float64
	for _, a := range s.Amplitudes() {
		p += real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

func TestCancelMidDDPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	c := randomCircuit(rng, n, 60)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.New()
	const cancelAt = 10
	s := New(n, Options{
		DisableConversion: true,
		Metrics:           reg,
		Trace: func(ev TraceEvent) {
			if ev.GateIndex == cancelAt {
				cancel()
			}
		},
	})
	st, err := s.RunContext(ctx, c)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("ErrCanceled must wrap context.Canceled")
	}
	if st.TimedOut {
		t.Fatal("a cancel is not a timeout")
	}
	if st.DDTime <= 0 || st.TotalTime <= 0 {
		t.Fatalf("partial stats missing: %+v", st)
	}
	// The cancel fires inside gate cancelAt's trace callback; the boundary
	// probe of the next gate observes it, so exactly cancelAt+1 gates ran.
	if s.Phase() != PhaseDD {
		t.Fatal("phase left DD")
	}
	if p := norm(s); math.Abs(p-1) > eps {
		t.Fatalf("state not queryable after abort: norm %v", p)
	}
	if got := reg.Counter("core.cancel_aborts").Value(); got != 1 {
		t.Fatalf("core.cancel_aborts = %d, want 1", got)
	}
}

func TestCancelMidConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 9
	c := randomCircuit(rng, n, 80)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := New(n, Options{
		ForceConvertAfter: 20,
		Threads:           4,
		Trace: func(ev TraceEvent) {
			if ev.Converted {
				// Fires on the gate that triggers conversion, before any
				// array is filled: the conversion itself must abort.
				cancel()
			}
		},
	})
	st, err := s.RunContext(ctx, c)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st.ConvertedAtGate != -1 {
		t.Fatalf("aborted conversion must not count as converted: %d", st.ConvertedAtGate)
	}
	if s.Phase() != PhaseDD {
		t.Fatal("aborted conversion must leave the simulator in the DD phase")
	}
	// The state DD was untouched by the aborted conversion.
	if p := norm(s); math.Abs(p-1) > eps {
		t.Fatalf("state not queryable after conversion abort: norm %v", p)
	}
}

func TestCancelMidDMAV(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 9
	c := randomCircuit(rng, n, 80)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dmavGates := 0
	s := New(n, Options{
		ForceConvertAfter: 10,
		Threads:           2,
		Trace: func(ev TraceEvent) {
			if ev.Phase == PhaseDMAV {
				dmavGates++
				if dmavGates == 3 {
					cancel()
				}
			}
		},
	})
	st, err := s.RunContext(ctx, c)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st.ConvertedAtGate < 0 {
		t.Fatal("run never reached the DMAV phase")
	}
	if s.Phase() != PhaseDMAV {
		t.Fatal("phase is not DMAV")
	}
	if st.DMAVTime <= 0 {
		t.Fatal("DMAV time not recorded on abort")
	}
	// Every fully applied gate is unitary, and a partially applied gate is
	// discarded, so the flat state must still be normalized.
	if p := norm(s); math.Abs(p-1) > eps {
		t.Fatalf("state not queryable after DMAV abort: norm %v", p)
	}
}

func TestContextDeadlineMapsToSentinel(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 8
	c := randomCircuit(rng, n, 40)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	s := New(n, Options{})
	st, err := s.RunContext(ctx, c)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrDeadlineExceeded must wrap context.DeadlineExceeded")
	}
	if !st.TimedOut {
		t.Fatal("Stats.TimedOut not set on deadline abort")
	}
}

func TestDeprecatedOptionsDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 8
	c := randomCircuit(rng, n, 40)
	s := New(n, Options{Deadline: time.Now().Add(-time.Second)})
	st, err := s.RunContext(context.Background(), c)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !st.TimedOut {
		t.Fatal("deprecated Options.Deadline no longer sets TimedOut")
	}

	// The error-free Run wrapper still surfaces the abort through Stats.
	s2 := New(n, Options{Deadline: time.Now().Add(-time.Second)})
	if st2 := s2.Run(c); !st2.TimedOut {
		t.Fatal("Run with an expired Options.Deadline must report TimedOut")
	}
}

func TestPoolAuthoritativeOverThreads(t *testing.T) {
	pool := sched.New(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(16))
	n := 6
	c := randomCircuit(rng, n, 40)
	s := New(n, Options{Threads: 1, Pool: pool, ForceConvertAfter: 5})
	if got := s.EffectiveThreads(); got != 4 {
		t.Fatalf("EffectiveThreads() = %d, want the pool's 4", got)
	}
	st := s.Run(c)
	if st.ConvertedAtGate < 0 {
		t.Fatal("forced conversion did not happen")
	}
	if p := norm(s); math.Abs(p-1) > eps {
		t.Fatalf("norm %v with injected pool", p)
	}
}

func TestRunContextNilDeadlinePathUnchanged(t *testing.T) {
	// A background context must behave exactly like Run: no error, full
	// stats, and identical amplitudes.
	rng := rand.New(rand.NewSource(17))
	n := 6
	c := randomCircuit(rng, n, 40)
	s1 := New(n, Options{ForceConvertAfter: 8})
	st, err := s1.RunContext(context.Background(), c)
	if err != nil {
		t.Fatalf("RunContext on background ctx: %v", err)
	}
	if st.Gates != 40 || st.TimedOut {
		t.Fatalf("unexpected stats: %+v", st)
	}
	s2 := New(n, Options{ForceConvertAfter: 8})
	s2.Run(c)
	a1, a2 := s1.Amplitudes(), s2.Amplitudes()
	for i := range a1 {
		if !approx(a1[i], a2[i]) {
			t.Fatalf("amplitude %d: RunContext %v vs Run %v", i, a1[i], a2[i])
		}
	}
}
