// Package core implements FlatDD, the hybrid quantum circuit simulator of
// the paper (Figure 3). A simulation starts in the DD phase — a sequential
// DDSIM-style engine whose state vector is a decision diagram — while an
// EWMA controller watches the state-DD size. The first time the size grows
// drastically beyond its moving average, the state is converted to a flat
// array with the parallel DD-to-array algorithm and the remaining gates run
// as parallel DMAV products, optionally after a DMAV-aware gate-fusion
// pass.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"math/rand"
	"runtime/debug"
	"sort"
	"time"

	"flatdd/internal/circuit"
	"flatdd/internal/convert"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
	"flatdd/internal/dmav"
	"flatdd/internal/ewma"
	"flatdd/internal/faults"
	"flatdd/internal/fusion"
	"flatdd/internal/obs"
	"flatdd/internal/sched"
	"flatdd/internal/statevec"
)

// Sentinel errors returned by RunContext when a run terminates early.
// Both wrap their context counterparts, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) also hold.
var (
	// ErrCanceled reports that the run's context was canceled. The
	// simulator stays queryable: its state is the one left by the last
	// fully applied gate (a partially applied gate is discarded).
	ErrCanceled = fmt.Errorf("core: simulation canceled: %w", context.Canceled)
	// ErrDeadlineExceeded reports that the run's deadline passed (either
	// the context's deadline or the deprecated Options.Deadline). It plays
	// the role of the paper's 24-hour cutoff.
	ErrDeadlineExceeded = fmt.Errorf("core: simulation deadline exceeded: %w", context.DeadlineExceeded)
	// ErrEngineFault is the sentinel every *EngineFault unwraps to:
	// errors.Is(err, ErrEngineFault) identifies a run terminated by a
	// contained engine panic.
	ErrEngineFault = errors.New("core: engine fault")
	// ErrNumericalDrift is the sentinel every *DriftError unwraps to: the
	// DMAV-phase integrity sweep found NaN/Inf amplitudes or a state norm
	// outside tolerance.
	ErrNumericalDrift = errors.New("core: numerical drift")
)

// EngineFault is the typed error RunContext returns when a panic escapes
// the dd/convert/dmav engines or a scheduler worker. The simulator's
// state after an engine fault is undefined and the result must be
// discarded — but the fault is contained: the panic never crosses
// RunContext, so a job service keeps serving its other jobs.
type EngineFault struct {
	// Value is the recovered panic value (unwrapped from the scheduler's
	// TaskPanic envelope when the panic happened on a pool worker).
	Value any
	// Point is the fault-injection point name when the panic was injected
	// by internal/faults, "" for organic panics.
	Point string
	// Transient marks the fault retry-safe (carried from the injection
	// trigger; organic panics are never transient).
	Transient bool
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

func (e *EngineFault) Error() string {
	if e.Point != "" {
		return fmt.Sprintf("core: engine fault at %s: %v", e.Point, e.Value)
	}
	return fmt.Sprintf("core: engine fault: %v", e.Value)
}

// Unwrap makes errors.Is(err, ErrEngineFault) hold.
func (e *EngineFault) Unwrap() error { return ErrEngineFault }

// IsTransient reports whether err is an engine fault classified
// transient, i.e. safe to retry (the job service's retry policy).
func IsTransient(err error) bool {
	var ef *EngineFault
	return errors.As(err, &ef) && ef.Transient
}

// DriftError is the typed error of a failed integrity sweep.
type DriftError struct {
	Gate int     // index of the last applied gate
	Norm float64 // state norm over the finite amplitudes
	NaNs int     // amplitudes with a NaN component
	Infs int     // amplitudes with an Inf component
}

func (e *DriftError) Error() string {
	return fmt.Sprintf("core: numerical drift after gate %d: norm=%g nan=%d inf=%d",
		e.Gate, e.Norm, e.NaNs, e.Infs)
}

// Unwrap makes errors.Is(err, ErrNumericalDrift) hold.
func (e *DriftError) Unwrap() error { return ErrNumericalDrift }

// newEngineFault classifies a recovered panic value: scheduler TaskPanic
// envelopes are unwrapped, injected faults carry their point name and
// transience, anything else is an organic (non-retryable) fault.
func newEngineFault(r any) *EngineFault {
	ef := &EngineFault{Value: r, Stack: string(debug.Stack())}
	if tp, ok := r.(*sched.TaskPanic); ok {
		ef.Value = tp.Value
		ef.Stack = tp.Stack
	}
	if inj, ok := ef.Value.(*faults.Injected); ok {
		ef.Point = inj.Point
		ef.Transient = inj.Transient
	}
	return ef
}

// FlatWorkingSetBytes returns the flat-array phase's working set for an
// n-qubit register: state plus scratch vector, 16 bytes per amplitude
// each. This is the figure Options.MemoryBudget is compared against at
// conversion time (the DD-phase node memory is comparatively small and
// already spent by then).
func FlatWorkingSetBytes(n int) uint64 { return 32 << uint(n) }

// Phase identifies which engine produced a result or trace event.
type Phase int

const (
	// PhaseDD is the DDSIM-style front phase.
	PhaseDD Phase = iota
	// PhaseDMAV is the flat-array phase after conversion.
	PhaseDMAV
)

func (p Phase) String() string {
	if p == PhaseDD {
		return "dd"
	}
	return "dmav"
}

// FusionMode selects the gate-fusion pass applied to the DMAV phase.
type FusionMode int

const (
	// NoFusion applies the remaining gates one DMAV at a time.
	NoFusion FusionMode = iota
	// DMAVAware is the paper's Algorithm 3.
	DMAVAware
	// KOps is the k-operations baseline [100].
	KOps
)

func (f FusionMode) String() string {
	switch f {
	case NoFusion:
		return "none"
	case DMAVAware:
		return "dmav-aware"
	case KOps:
		return "k-operations"
	default:
		return fmt.Sprintf("FusionMode(%d)", int(f))
	}
}

// Options configures a FlatDD simulator. The zero value gives the paper's
// defaults: β=0.9, ε=2, auto caching, no fusion, one thread.
type Options struct {
	// Threads is the worker count for conversion and DMAV. Any positive
	// value is accepted (the DMAV engine caps it at 2^n); it is no
	// longer rounded to a power of two. When Pool is set, Threads is
	// ignored: the pool's worker count drives both execution and the
	// cost model (see Pool).
	Threads int
	// Pool, when non-nil, is the scheduler pool conversion and DMAV run
	// on. Its worker count is authoritative: execution happens on the
	// pool, so the cost model's thread count is derived from
	// Pool.Threads() and any Threads value is overridden — callers no
	// longer need to keep the two fields in sync. The caller keeps
	// ownership of the pool's lifetime. When nil, the run creates a
	// pool of Threads workers for its duration.
	Pool *sched.Pool
	// DDThreads enables task-parallel gate application in the DD phase:
	// when > 1, each gate's DD multiplication is decomposed into
	// independent sub-DD recursions on a scheduler pool (results are
	// bit-identical to the sequential path, see dd.MulMVParallel). When
	// Pool is set it is shared with the DD phase and its worker count is
	// authoritative; otherwise the run creates a DD-phase pool of
	// DDThreads workers. 0 or 1 keeps the DD phase sequential (the
	// default, and the paper's DDSIM-phase behaviour).
	DDThreads int
	// Beta and Epsilon parameterize the EWMA conversion controller
	// (defaults 0.9 and 2).
	Beta, Epsilon float64
	// CacheMode sets the DMAV caching policy (default: cost-model Auto).
	CacheMode dmav.Mode
	// Fusion selects the gate-fusion pass for the DMAV phase.
	Fusion FusionMode
	// K is the block size for FusionMode KOps (default 4).
	K int
	// ForceConvertAfter forces conversion right after this many gates,
	// bypassing the controller (used by experiments). Negative means "use
	// the controller".
	ForceConvertAfter int
	// DisableConversion pins the simulation to the DD phase (the pure
	// DDSIM behaviour), regardless of the controller.
	DisableConversion bool
	// SequentialConversion uses the sequential DDSIM-style DD-to-array
	// conversion instead of the parallel algorithm (Figure 13 ablation).
	SequentialConversion bool
	// Trace, when non-nil, receives one event per gate. It is backed by the
	// same per-gate event stream as TraceJSONL; both may be set.
	Trace func(TraceEvent)
	// TraceJSONL, when non-nil, receives the per-gate event stream as JSON
	// Lines: one {"event":"gate",...} object per gate and a final
	// {"event":"run",...} summary. The schema is documented in DESIGN.md
	// ("Observability"). The writer is flushed when Run returns; closing
	// the underlying file stays the caller's job.
	TraceJSONL io.Writer
	// TraceWriter, when non-nil, receives the per-gate event stream on an
	// existing shared writer instead of wrapping TraceJSONL in a private
	// one. Use it when the same sink also carries request spans (the
	// serve layer, or a CLI tracing whole runs): one writer means one
	// buffer and no interleaving corruption. Takes precedence over
	// TraceJSONL; flushing on run end still happens, closing stays the
	// owner's job.
	TraceWriter *obs.TraceWriter
	// Metrics, when non-nil, wires every engine layer (dd unique/compute
	// tables, cnum, conversion, DMAV, the EWMA controller and this
	// simulator's phase loop) into the registry. When nil, the hot paths
	// pay one pointer check per instrumentation site and nothing else.
	Metrics *obs.Registry
	// Deadline, when non-zero, aborts the run once exceeded.
	//
	// Deprecated: pass a deadline on RunContext's context instead
	// (context.WithDeadline / context.WithTimeout). The field is kept for
	// compatibility and mapped onto the run context internally; a run
	// whose deadline passes returns ErrDeadlineExceeded and sets
	// Stats.TimedOut.
	Deadline time.Time
	// GCThreshold overrides the DD manager's node-count GC trigger.
	GCThreshold int
	// ApproxBudget, when positive, enables DD state approximation [97]
	// during the DD phase: whenever the state DD exceeds ApproxThreshold
	// nodes, edges carrying up to ApproxBudget probability mass are pruned.
	// The cumulative fidelity is reported in Stats.Fidelity. This is an
	// extension beyond the paper (which simulates exactly); it trades
	// bounded fidelity loss for a smaller DD and a later conversion.
	ApproxBudget float64
	// ApproxThreshold is the node count above which approximation kicks in
	// (default 256 when ApproxBudget > 0).
	ApproxThreshold int
	// MemoryBudget, when positive, caps the flat-array working set in
	// bytes. If FlatWorkingSetBytes(n) exceeds the budget when the
	// conversion controller fires, the conversion is suppressed and the
	// run completes in the DD phase — graceful degradation: correct
	// results, recorded in Stats.Degraded and the core.degraded metric,
	// instead of an allocation the host cannot afford.
	MemoryBudget uint64
	// IntegrityEvery, when positive, runs a numerical-integrity sweep
	// (NaN/Inf scan + norm check) over the flat state every IntegrityEvery
	// DMAV gates. A failing sweep aborts the run with ErrNumericalDrift.
	IntegrityEvery int
	// IntegrityTol is the allowed |norm−1| deviation for the sweep
	// (default 1e-6). The norm check is skipped when ApproxBudget > 0,
	// since approximation legitimately sheds probability mass; NaN/Inf
	// detection stays on.
	IntegrityTol float64
	// Faults, when non-nil, arms the run's fault-injection hooks
	// (tests only; production runs leave it nil and pay one pointer
	// check per hook site).
	Faults *faults.Registry
	// Ledger, when non-nil, is the resource ledger the run reports into:
	// per-phase CPU time (scheduler busy-ns for pooled phases, wall time
	// for the sequential ones), allocation deltas sampled at phase
	// boundaries, peak DD node count, and live flat-array bytes. When
	// nil, the run creates a private ledger so Stats.Resources is always
	// populated; pass one to observe phase costs live (the serve layer's
	// ledger-based admission does).
	Ledger *obs.ResourceLedger
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Pool != nil {
		// The injected pool's worker count is authoritative: execution
		// runs on the pool, so the cost model must see the same
		// parallelism or its caching decisions model a machine that
		// isn't there.
		v.Threads = v.Pool.Threads()
	}
	if v.Threads < 1 {
		v.Threads = 1
	}
	if v.K < 1 {
		v.K = 4
	}
	if v.ForceConvertAfter == 0 && !v.DisableConversion {
		// Zero value means "controller decides" unless explicitly set; we
		// reserve negative for that and treat 0 as unset.
		v.ForceConvertAfter = -1
	}
	if v.ApproxBudget > 0 && v.ApproxThreshold <= 0 {
		v.ApproxThreshold = 256
	}
	if v.IntegrityEvery > 0 && v.IntegrityTol <= 0 {
		v.IntegrityTol = 1e-6
	}
	return v
}

// TraceEvent records the execution of one gate (Figures 3 and 11).
type TraceEvent struct {
	GateIndex int
	Phase     Phase
	DDSize    int // state-DD node count after the gate (DD phase only)
	EWMA      float64
	Duration  time.Duration
	// Converted is true on the gate whose size observation made the
	// controller fire AND whose firing actually led to a conversion. The
	// gate itself still ran in the DD phase; the *next* gate is the first
	// DMAV gate, and Stats.ConvertedAtGate names that next index. When the
	// controller fires on the circuit's final gate there is nothing left to
	// run in DMAV, no conversion happens, and Converted stays false — see
	// the `convertNow && i+1 < len(c.Gates)` guard in Run.
	Converted bool
}

// Stats summarizes one Run.
type Stats struct {
	Gates int
	// ConvertedAtGate is the index of the first gate executed by the DMAV
	// phase, i.e. one past the gate whose size observation triggered the
	// controller; -1 if the run never converted. A controller that fires on
	// the final gate does not convert (there is no remaining gate for DMAV
	// to run), so ConvertedAtGate is never == Gates.
	ConvertedAtGate int
	DDTime          time.Duration
	ConversionTime  time.Duration
	// FusionTime covers preparing the DMAV phase: building the remaining
	// gate matrices as DDs and, when enabled, the fusion pass itself.
	FusionTime time.Duration
	DMAVTime   time.Duration
	TotalTime  time.Duration

	PeakDDNodes   int
	FusedGates    int // gates executed in the DMAV phase after fusion
	DMAVStats     dmav.Stats
	MemoryBytes   uint64 // working-set estimate (DD nodes + flat arrays)
	FusionResult  *fusion.Result
	FinalDDSize   int // state-DD size at conversion (or at the end if never converted)
	ModeledCost   float64
	ControllerEnd float64 // EWMA value when conversion fired
	TimedOut      bool
	// Fidelity is a guaranteed lower bound on |<exact|simulated>|^2 after
	// any state approximations (1 when approximation is off). Per-step
	// fidelities f_i compose through the angle metric:
	// F >= cos^2(sum_i arccos(sqrt(f_i))).
	Fidelity float64
	// Approximations counts how many pruning passes ran.
	Approximations int
	// Degraded reports that the run suppressed its DD→flat conversion and
	// completed DD-only (graceful degradation); DegradedReason says why:
	// "memory_budget" (flat working set over Options.MemoryBudget) or
	// "alloc_failed" (flat-array allocation failure, injected or real).
	Degraded       bool
	DegradedReason string
	// IntegrityChecks counts the DMAV-phase integrity sweeps performed.
	IntegrityChecks int
	// Resources is the run's resource-ledger snapshot: per-phase CPU
	// time, allocation deltas, and peak DD/flat memory. Populated by
	// RunContext on every terminal path (success, abort, fault).
	Resources *obs.LedgerSnapshot
}

// Simulator is a FlatDD hybrid simulator for one register size.
type Simulator struct {
	n    int
	opts Options

	m   *dd.Manager
	sim *ddsim.Simulator
	eng *dmav.Engine

	phase Phase
	state []complex128 // valid in PhaseDMAV
	buf   []complex128

	// approxAngle accumulates arccos(sqrt(f_i)) over approximation steps.
	approxAngle float64

	// suppressConvert pins the run to the DD phase after a degradation
	// decision (the controller may keep firing; it must not re-trigger).
	suppressConvert bool

	// convertAlloc is the simulated-allocation-failure injection point
	// (nil in production).
	convertAlloc *faults.Point

	stats Stats

	// Observability (nil when Options.Metrics / Options.TraceJSONL are
	// unset). led is never nil: New falls back to a private ledger so
	// resource attribution is always available in Stats.Resources.
	met *coreMetrics
	tw  *obs.TraceWriter
	led *obs.ResourceLedger
}

// coreMetrics holds the phase-loop registry handles (metric names in
// DESIGN.md, "Observability").
type coreMetrics struct {
	gatesDD          *obs.Counter
	gatesDMAV        *obs.Counter
	phaseTransitions *obs.Counter
	deadlineAborts   *obs.Counter
	cancelAborts     *obs.Counter
	gateDDNs         *obs.Histogram
	gateDMAVNs       *obs.Histogram
	ddSize           *obs.Gauge
	ewma             *obs.FloatGauge
	convertedAt      *obs.Gauge
	degraded         *obs.Gauge
	engineFaults     *obs.Counter
	driftAborts      *obs.Counter
	integrityChecks  *obs.Counter
}

// traceRecord is the JSONL wire form of one per-gate event.
type traceRecord struct {
	Event      string  `json:"event"` // "gate"
	Gate       int     `json:"gate"`
	Phase      string  `json:"phase"` // "dd" | "dmav"
	DDSize     int     `json:"dd_size"`
	EWMA       float64 `json:"ewma"`
	DurationNs int64   `json:"duration_ns"`
	Converted  bool    `json:"converted"`
}

// runRecord is the JSONL summary line emitted once at the end of a run.
type runRecord struct {
	Event       string  `json:"event"` // "run"
	Gates       int     `json:"gates"`
	ConvertedAt int     `json:"converted_at"`
	FinalPhase  string  `json:"final_phase"`
	TotalNs     int64   `json:"total_ns"`
	PeakDDNodes int     `json:"peak_dd_nodes"`
	TimedOut    bool    `json:"timed_out"`
	Fidelity    float64 `json:"fidelity"`
}

// New returns a simulator for n qubits.
func New(n int, opts Options) *Simulator {
	o := opts.withDefaults()
	m := dd.New(n)
	if o.GCThreshold > 0 {
		m.SetGCThreshold(o.GCThreshold)
	}
	s := &Simulator{
		n:    n,
		opts: o,
		m:    m,
		sim:  ddsim.NewWithManager(m, n),
	}
	if r := o.Metrics; r != nil {
		m.SetMetrics(r)
		s.met = &coreMetrics{
			gatesDD:          r.Counter("core.gates.dd"),
			gatesDMAV:        r.Counter("core.gates.dmav"),
			phaseTransitions: r.Counter("core.phase_transitions"),
			deadlineAborts:   r.Counter("core.deadline_aborts"),
			cancelAborts:     r.Counter("core.cancel_aborts"),
			gateDDNs:         r.Histogram("core.gate_ns.dd", obs.DurationBuckets()),
			gateDMAVNs:       r.Histogram("core.gate_ns.dmav", obs.DurationBuckets()),
			ddSize:           r.Gauge("core.dd_size"),
			ewma:             r.FloatGauge("core.ewma"),
			convertedAt:      r.Gauge("core.converted_at_gate"),
			degraded:         r.Gauge("core.degraded"),
			engineFaults:     r.Counter("core.engine_faults"),
			driftAborts:      r.Counter("core.drift_aborts"),
			integrityChecks:  r.Counter("core.integrity_checks"),
		}
		s.met.convertedAt.Set(-1)
	}
	s.convertAlloc = o.Faults.Point(faults.CoreConvertAlloc)
	s.led = o.Ledger
	if s.led == nil {
		s.led = obs.NewResourceLedger()
	}
	if o.TraceWriter != nil {
		s.tw = o.TraceWriter
	} else if o.TraceJSONL != nil {
		s.tw = obs.NewTraceWriter(o.TraceJSONL)
	}
	return s
}

// emitTrace fans one per-gate event out to the callback and the JSONL
// writer (whichever are configured).
func (s *Simulator) emitTrace(ev TraceEvent) {
	if s.opts.Trace != nil {
		s.opts.Trace(ev)
	}
	if s.tw != nil {
		s.tw.Emit(traceRecord{
			Event:      "gate",
			Gate:       ev.GateIndex,
			Phase:      ev.Phase.String(),
			DDSize:     ev.DDSize,
			EWMA:       ev.EWMA,
			DurationNs: ev.Duration.Nanoseconds(),
			Converted:  ev.Converted,
		})
	}
}

// tracing reports whether per-gate events need to be materialized.
func (s *Simulator) tracing() bool { return s.opts.Trace != nil || s.tw != nil }

// Qubits returns the register size.
func (s *Simulator) Qubits() int { return s.n }

// EffectiveThreads returns the thread count the engines and the DMAV cost
// model actually use: Options.Pool's worker count when a pool was
// injected, otherwise max(1, Options.Threads).
func (s *Simulator) EffectiveThreads() int { return s.opts.Threads }

// Phase returns the current engine phase.
func (s *Simulator) Phase() Phase { return s.phase }

// Stats returns the statistics of the last Run.
func (s *Simulator) Stats() Stats { return s.stats }

// Run simulates the circuit from |0...0> and returns the final statistics.
// Run may be called once per Simulator. It is a thin compatibility wrapper
// around RunContext: a run aborted by the deprecated Options.Deadline is
// reported through Stats.TimedOut, exactly as before.
func (s *Simulator) Run(c *circuit.Circuit) Stats {
	st, _ := s.RunContext(context.Background(), c)
	return st
}

// RunContext simulates the circuit from |0...0> and returns the final
// statistics. It may be called once per Simulator.
//
// Cancellation is cooperative: the context is checked at every gate
// boundary in both phases, once per leaf task of the parallel DD-to-array
// conversion, and once per chunk inside the DMAV kernels, so an abort is
// observed promptly (bounded by one gate) even mid-conversion or
// mid-multiplication. On abort RunContext returns ErrCanceled or
// ErrDeadlineExceeded together with the statistics gathered so far, and
// the simulator stays queryable: the state is the one left by the last
// fully applied gate (a partially converted array or partially applied
// DMAV gate is discarded).
//
// Fault containment: a panic escaping the dd/convert/dmav engines —
// on the calling goroutine or on a scheduler worker (re-raised by the
// pool as *sched.TaskPanic) — is recovered here and returned as a
// *EngineFault instead of crossing into the caller. The simulator's
// state is then undefined and must be discarded, but the process
// survives: one malformed job cannot take down a serving host.
func (s *Simulator) RunContext(ctx context.Context, c *circuit.Circuit) (st Stats, err error) {
	if c.Qubits != s.n {
		// Caller bug, not an engine fault: panic before the containment
		// barrier is installed.
		panic(fmt.Sprintf("core: circuit on %d qubits, simulator has %d", c.Qubits, s.n))
	}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			ef := newEngineFault(r)
			if s.met != nil {
				s.met.engineFaults.Inc()
			}
			s.finishStats(start)
			st, err = s.stats, ef
		}
	}()
	return s.runContext(ctx, c, start)
}

// runContext is RunContext's body; the split keeps the containment
// barrier (and the deferred recover's cost) out of the phase loops.
func (s *Simulator) runContext(ctx context.Context, c *circuit.Circuit, start time.Time) (Stats, error) {
	if !s.opts.Deadline.IsZero() {
		// Deprecated Options.Deadline maps onto the run context.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, s.opts.Deadline)
		defer cancel()
	}
	done := ctx.Done()
	check := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	// taskCheck is handed to the conversion planner and the DMAV engine.
	// It is nil for a context that can never be canceled, which lets the
	// hot paths skip the per-task probe entirely.
	var taskCheck func() bool
	if done != nil {
		taskCheck = check
	}
	s.stats = Stats{Gates: c.GateCount(), ConvertedAtGate: -1, Fidelity: 1}
	ctl := ewma.New(s.opts.Beta, s.opts.Epsilon)
	if s.met != nil {
		ctl.Gauge = s.met.ewma
	}

	// Request tracing: a span carried on the context (the serve layer's
	// per-attempt "run" span, or a CLI root) parents one child span per
	// phase. A context without a span makes every Child call a nil no-op,
	// so the tracing-off cost is one context lookup per run.
	span := obs.SpanFromContext(ctx)

	// Phase 1: DD-based simulation with conversion monitoring.
	ddSpan := span.Child("phase.dd")
	s.led.Begin("dd")
	if s.opts.DDThreads > 1 {
		ddPool := s.opts.Pool
		if ddPool == nil {
			ddPool = sched.New(s.opts.DDThreads)
			ddPool.SetMetrics(s.opts.Metrics)
			ddPool.SetFaults(s.opts.Faults)
			defer ddPool.Close()
		}
		if ddPool.Threads() > 1 {
			if ddSpan != nil {
				ddSpan.SetAttr("dd_threads", ddPool.Threads())
			}
			s.sim.SetParallelism(func(tasks []func()) {
				ddPool.RunSpanned(ddSpan, "dd.frontier", tasks)
			}, ddPool.Threads())
		}
	}
	endDD := func(gates int) {
		// The DD loop is sequential on this goroutine, so its CPU time is
		// its wall time (already computed into Stats.DDTime by callers).
		s.led.AddCPU(s.stats.DDTime.Nanoseconds())
		pc, _ := s.led.End()
		if ddSpan == nil {
			return
		}
		ddSpan.SetAttr("gates", gates)
		ddSpan.SetAttr("dd_size", s.stats.FinalDDSize)
		ddSpan.SetAttr("ewma", s.stats.ControllerEnd)
		ddSpan.SetAttr("cpu_ns", pc.CPUNs)
		ddSpan.SetAttr("alloc_bytes", pc.AllocBytes)
		if s.stats.Degraded {
			ddSpan.SetAttr("degraded", s.stats.DegradedReason)
		}
		ddSpan.End()
	}
	i := 0
	for ; i < len(c.Gates); i++ {
		if check() {
			s.stats.DDTime = time.Since(start)
			s.stats.FinalDDSize = s.sim.StateSize()
			s.stats.ControllerEnd = ctl.Average()
			endDD(i)
			return s.abort(ctx, start)
		}
		gStart := time.Now()
		size := s.sim.ApplyGate(&c.Gates[i])
		if s.opts.ApproxBudget > 0 && size > s.opts.ApproxThreshold {
			approx, fid := s.m.Approximate(s.sim.State(), s.n, s.opts.ApproxBudget)
			if fid < 1 {
				s.sim.SetState(approx)
				s.approxAngle += math.Acos(math.Sqrt(math.Max(0, math.Min(1, fid))))
				s.stats.Approximations++
				size = s.m.VSize(approx)
			}
		}
		s.led.ObserveDD(int64(size), uint64(size)*dd.NodeBytes)
		convertNow := ctl.Observe(size)
		if s.opts.DisableConversion || s.suppressConvert {
			convertNow = false
		} else if s.opts.ForceConvertAfter >= 0 {
			convertNow = i+1 >= s.opts.ForceConvertAfter
		}
		if convertNow && i+1 < len(c.Gates) {
			// Graceful degradation: decided at the fire site, before the
			// trace event, so the Converted flag reflects what happened.
			if reason := s.conversionBlocked(); reason != "" {
				s.degrade(reason)
				convertNow = false
			}
		}
		if s.met != nil {
			s.met.gatesDD.Inc()
			s.met.ddSize.Set(int64(size))
			s.met.gateDDNs.Observe(time.Since(gStart).Nanoseconds())
		}
		if s.tracing() {
			s.emitTrace(TraceEvent{
				GateIndex: i, Phase: PhaseDD, DDSize: size, EWMA: ctl.Average(),
				Duration: time.Since(gStart), Converted: convertNow && i+1 < len(c.Gates),
			})
		}
		if convertNow && i+1 < len(c.Gates) {
			i++
			break
		}
	}
	s.stats.DDTime = time.Since(start)
	s.stats.FinalDDSize = s.sim.StateSize()
	s.stats.ControllerEnd = ctl.Average()
	endDD(i)

	if i >= len(c.Gates) {
		// Whole circuit ran in the DD phase.
		s.finishStats(start)
		return s.stats, nil
	}

	// Phase 2: convert the state DD to a flat array.
	// One scheduler pool serves the whole flat-array phase — conversion
	// and every DMAV gate — instead of per-gate goroutine churn.
	pool := s.opts.Pool
	if pool == nil {
		pool = sched.New(s.opts.Threads)
		pool.SetMetrics(s.opts.Metrics)
		pool.SetFaults(s.opts.Faults)
		defer pool.Close()
	}
	convSpan := span.Child("phase.convert")
	if convSpan != nil {
		convSpan.SetAttr("amps", uint64(1)<<uint(s.n))
		convSpan.SetAttr("sequential", s.opts.SequentialConversion)
	}
	s.led.Begin("convert")
	convStart := time.Now()
	s.state = make([]complex128, uint64(1)<<uint(s.n))
	s.led.AddFlat(int64(len(s.state)) * 16)
	converted := true
	if s.opts.SequentialConversion {
		s.m.FillArray(s.sim.State(), s.n, s.state)
		converted = !check()
		s.led.AddCPU(time.Since(convStart).Nanoseconds())
	} else {
		ok, cerr := convert.ParallelIntoPoolTracked(s.sim.State(), s.n, pool, s.state,
			convert.NewMetrics(s.opts.Metrics), taskCheck, convSpan, s.led)
		if cerr != nil {
			// Internal invariant (we sized the array ourselves), but
			// contain rather than crash: surface it as an engine fault.
			s.led.AddFlat(-int64(len(s.state)) * 16)
			s.state = nil
			convSpan.End()
			s.finishStats(start)
			return s.stats, newEngineFault(cerr)
		}
		converted = ok && !check()
	}
	s.stats.ConversionTime = time.Since(convStart)
	convCost, _ := s.led.End()
	if convSpan != nil {
		convSpan.SetAttr("completed", converted)
		convSpan.SetAttr("cpu_ns", convCost.CPUNs)
		convSpan.SetAttr("alloc_bytes", convCost.AllocBytes)
		convSpan.End()
	}
	if !converted {
		// Aborted mid-conversion: drop the partial array and stay in the
		// DD phase (the state DD is untouched), so the simulator remains
		// queryable.
		s.led.AddFlat(-int64(len(s.state)) * 16)
		s.state = nil
		return s.abort(ctx, start)
	}
	s.stats.ConvertedAtGate = i
	if s.met != nil {
		s.met.phaseTransitions.Inc()
		s.met.convertedAt.Set(int64(i))
	}
	s.phase = PhaseDMAV
	s.buf = make([]complex128, len(s.state))
	s.led.AddFlat(int64(len(s.buf)) * 16)
	s.eng = dmav.New(s.m, s.n, s.opts.Threads, s.opts.CacheMode)
	s.eng.SetMetrics(s.opts.Metrics)
	s.eng.SetPool(pool)
	s.eng.SetCancel(taskCheck)
	s.eng.SetFaults(s.opts.Faults)
	s.eng.SetLedger(s.led)

	// Release the DD state: only gate matrices stay live from here on.
	s.sim.SetState(s.m.VZeroEdge())
	s.m.Collect(dd.Roots{})
	nc := s.m.NodeCount()
	s.led.ObserveDD(int64(nc), uint64(nc)*dd.NodeBytes)

	// Phase 3: build (and optionally fuse) the remaining gate matrices.
	fuseSpan := span.Child("phase.fuse")
	s.led.Begin("fuse")
	fuseStart := time.Now()
	remaining := make([]dd.MEdge, 0, len(c.Gates)-i)
	endFuse := func() {
		// The fuse pass is sequential on this goroutine: wall == CPU.
		s.led.AddCPU(s.stats.FusionTime.Nanoseconds())
		pc, _ := s.led.End()
		if fuseSpan == nil {
			return
		}
		fuseSpan.SetAttr("mode", s.opts.Fusion.String())
		fuseSpan.SetAttr("gates_in", len(c.Gates)-i)
		fuseSpan.SetAttr("gates_out", len(remaining))
		fuseSpan.SetAttr("cpu_ns", pc.CPUNs)
		fuseSpan.SetAttr("alloc_bytes", pc.AllocBytes)
		fuseSpan.End()
	}
	roots := dd.Roots{}
	for j := i; j < len(c.Gates); j++ {
		if check() {
			s.stats.FusionTime = time.Since(fuseStart)
			endFuse()
			return s.abort(ctx, start)
		}
		g := ddsim.BuildGateDD(s.m, s.n, &c.Gates[j])
		remaining = append(remaining, g)
		roots.M = append(roots.M, g)
		s.m.CollectIfNeeded(roots)
		nc := s.m.NodeCount()
		s.led.ObserveDD(int64(nc), uint64(nc)*dd.NodeBytes)
	}
	costFn := func(g dd.MEdge) float64 { return s.eng.EvaluateCost(g).Cost() }
	switch s.opts.Fusion {
	case DMAVAware:
		res := fusion.Fuse(s.m, remaining, costFn)
		s.stats.FusionResult = &res
		remaining = res.Gates
	case KOps:
		res := fusion.KOperations(s.m, remaining, s.opts.K, costFn)
		s.stats.FusionResult = &res
		remaining = res.Gates
	}
	s.stats.FusionTime = time.Since(fuseStart)
	s.stats.FusedGates = len(remaining)
	// Projection for admission release: from here to the end of the run
	// the job needs the state+scratch arrays, the DMAV cached path's
	// partial buffers (one register's worth when caching is possible),
	// and the surviving gate-matrix DDs — far below the 48·2^n worst
	// case for most circuits.
	proj := uint64(32) << uint(s.n)
	if s.opts.CacheMode != dmav.NeverCache {
		proj += uint64(16) << uint(s.n)
	}
	proj += uint64(s.m.NodeCount()) * dd.NodeBytes
	s.led.SetProjection(proj)
	endFuse()

	// Phase 4: DMAV over the flat state.
	dmavSpan := span.Child("phase.dmav")
	s.eng.SetSpan(dmavSpan)
	s.led.Begin("dmav")
	dmavStart := time.Now()
	gateIdx := i
	aborted := false
	sinceSweep := 0
	var runErr error
	for _, g := range remaining {
		if check() {
			aborted = true
			break
		}
		gStart := time.Now()
		cost, aerr := s.eng.Apply(g, s.state, s.buf)
		if aerr != nil {
			// Caller-error path of Apply; unreachable with the vectors the
			// run owns, but contain it rather than drop it.
			runErr = newEngineFault(aerr)
			break
		}
		if check() {
			// Canceled mid-multiplication: s.buf holds a partial product,
			// so keep the pre-gate state and discard the gate.
			aborted = true
			break
		}
		s.state, s.buf = s.buf, s.state
		s.stats.ModeledCost += cost.Cost()
		if s.met != nil {
			s.met.gatesDMAV.Inc()
			s.met.gateDMAVNs.Observe(time.Since(gStart).Nanoseconds())
		}
		if s.tracing() {
			s.emitTrace(TraceEvent{
				GateIndex: gateIdx, Phase: PhaseDMAV, Duration: time.Since(gStart),
			})
		}
		gateIdx++
		if ie := s.opts.IntegrityEvery; ie > 0 {
			sinceSweep++
			if sinceSweep >= ie {
				sinceSweep = 0
				if err := s.integritySweep(gateIdx - 1); err != nil {
					runErr = err
					break
				}
			}
		}
	}
	s.stats.DMAVTime = time.Since(dmavStart)
	s.stats.DMAVStats = s.eng.Stats()
	dmavCost, _ := s.led.End()
	if dmavSpan != nil {
		dmavSpan.SetAttr("gates", s.stats.DMAVStats.Gates)
		dmavSpan.SetAttr("cached_gates", s.stats.DMAVStats.CachedGates)
		dmavSpan.SetAttr("cache_hits", s.stats.DMAVStats.CacheHits)
		dmavSpan.SetAttr("aborted", aborted)
		dmavSpan.SetAttr("cpu_ns", dmavCost.CPUNs)
		dmavSpan.SetAttr("alloc_bytes", dmavCost.AllocBytes)
		dmavSpan.End()
	}
	if runErr != nil {
		s.finishStats(start)
		return s.stats, runErr
	}
	if aborted {
		return s.abort(ctx, start)
	}
	s.finishStats(start)
	return s.stats, nil
}

// conversionBlocked decides, at the moment the controller fires, whether
// the DD→flat conversion may proceed. It returns "" to allow it, or the
// degradation reason: "alloc_failed" when the (injected) flat-array
// allocation fails, "memory_budget" when the flat working set would
// exceed Options.MemoryBudget.
func (s *Simulator) conversionBlocked() string {
	if s.convertAlloc.Err() != nil {
		return "alloc_failed"
	}
	if b := s.opts.MemoryBudget; b > 0 && FlatWorkingSetBytes(s.n) > b {
		return "memory_budget"
	}
	return ""
}

// degrade records the degradation decision and pins the run to the DD
// phase (results stay exact; only the flat-array speedup is lost).
func (s *Simulator) degrade(reason string) {
	s.suppressConvert = true
	s.stats.Degraded = true
	s.stats.DegradedReason = reason
	if s.met != nil {
		s.met.degraded.Set(1)
	}
}

// integritySweep scans the flat state for NaN/Inf amplitudes and checks
// the norm against 1 within IntegrityTol. The norm check is skipped when
// approximation is on (pruning legitimately sheds probability mass);
// NaN/Inf amplitudes are excluded from the norm and counted separately.
func (s *Simulator) integritySweep(gate int) error {
	s.stats.IntegrityChecks++
	if s.met != nil {
		s.met.integrityChecks.Inc()
	}
	var norm float64
	nans, infs := 0, 0
	for _, a := range s.state {
		re, im := real(a), imag(a)
		if math.IsNaN(re) || math.IsNaN(im) {
			nans++
			continue
		}
		if math.IsInf(re, 0) || math.IsInf(im, 0) {
			infs++
			continue
		}
		norm += re*re + im*im
	}
	normOK := s.opts.ApproxBudget > 0 || math.Abs(norm-1) <= s.opts.IntegrityTol
	if nans == 0 && infs == 0 && normOK {
		return nil
	}
	if s.met != nil {
		s.met.driftAborts.Inc()
	}
	return &DriftError{Gate: gate, Norm: norm, NaNs: nans, Infs: infs}
}

// abort finalizes the statistics of a context-terminated run and maps the
// context's cause onto the package sentinels. Stats.TimedOut is kept in
// sync for deadline aborts (compatibility with the deprecated
// Options.Deadline flow).
func (s *Simulator) abort(ctx context.Context, start time.Time) (Stats, error) {
	err := ErrCanceled
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		err = ErrDeadlineExceeded
		s.stats.TimedOut = true
		if s.met != nil {
			s.met.deadlineAborts.Inc()
		}
	} else if s.met != nil {
		s.met.cancelAborts.Inc()
	}
	s.finishStats(start)
	return s.stats, err
}

func (s *Simulator) finishStats(start time.Time) {
	s.stats.TotalTime = time.Since(start)
	if s.approxAngle > 0 {
		a := math.Min(s.approxAngle, math.Pi/2)
		c := math.Cos(a)
		s.stats.Fidelity = c * c
	}
	s.stats.PeakDDNodes = s.m.PeakNodeCount()
	// Working-set estimate: DD nodes at the blended per-node footprint
	// (dd.NodeBytes) plus the flat arrays of the DMAV phase.
	mem := uint64(s.stats.PeakDDNodes) * dd.NodeBytes
	if s.phase == PhaseDMAV {
		mem += uint64(len(s.state)) * 16 * 2 // state + scratch
	}
	s.stats.MemoryBytes = mem
	s.led.End()
	snap := s.led.Snapshot()
	s.stats.Resources = &snap
	if s.tw != nil {
		s.tw.Emit(runRecord{
			Event:       "run",
			Gates:       s.stats.Gates,
			ConvertedAt: s.stats.ConvertedAtGate,
			FinalPhase:  s.phase.String(),
			TotalNs:     s.stats.TotalTime.Nanoseconds(),
			PeakDDNodes: s.stats.PeakDDNodes,
			TimedOut:    s.stats.TimedOut,
			Fidelity:    s.stats.Fidelity,
		})
		s.tw.Flush() //nolint:errcheck // trace output is best-effort
	}
}

// Amplitude returns one amplitude of the final state.
func (s *Simulator) Amplitude(idx uint64) complex128 {
	if s.phase == PhaseDMAV {
		return s.state[idx]
	}
	return s.sim.Amplitude(idx)
}

// Amplitudes returns the full final state vector. In the DD phase the
// state is converted on demand (parallel algorithm).
func (s *Simulator) Amplitudes() []complex128 {
	if s.phase == PhaseDMAV {
		return s.state
	}
	return convert.Parallel(s.sim.State(), s.n, s.opts.Threads)
}

// StateDDSize returns the node count of the state DD (0 after conversion).
func (s *Simulator) StateDDSize() int {
	if s.phase == PhaseDMAV {
		return 0
	}
	return s.sim.StateSize()
}

// ProbabilityOfQubit returns P(qubit q = 1) of the current state,
// whichever representation it lives in.
func (s *Simulator) ProbabilityOfQubit(q int) float64 {
	if s.phase == PhaseDD {
		return s.sim.ProbabilityOfQubit(q)
	}
	mask := uint64(1) << uint(q)
	var p1 float64
	for i, a := range s.state {
		if uint64(i)&mask != 0 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p1
}

// MeasureQubit projectively measures one qubit of the final state,
// collapsing it in place, and returns the outcome. In the DD phase the
// collapse operates on the decision diagram; after conversion it operates
// on the flat array.
func (s *Simulator) MeasureQubit(q int, rng *rand.Rand) int {
	if s.phase == PhaseDD {
		return s.sim.MeasureQubit(q, rng)
	}
	sv := statevecView(s.state, s.n)
	return sv.MeasureQubit(q, rng)
}

// statevecView wraps the DMAV-phase amplitude array in a statevec.State so
// the measurement machinery is shared.
func statevecView(amps []complex128, n int) *statevec.State {
	return statevec.FromAmplitudes(amps, 1)
}

// TopAmplitudes returns the k largest-magnitude basis states of the final
// state. In the DD phase this is a branch-and-bound query on the diagram
// (no 2^n expansion); after conversion it scans the flat array.
func (s *Simulator) TopAmplitudes(k int) []dd.AmpEntry {
	if s.phase == PhaseDD {
		return s.m.TopAmplitudes(s.sim.State(), s.n, k)
	}
	if k <= 0 {
		return nil
	}
	entries := make([]dd.AmpEntry, 0, len(s.state))
	for i, a := range s.state {
		if a != 0 {
			entries = append(entries, dd.AmpEntry{Index: uint64(i), Amplitude: a})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		return cmplx.Abs(entries[i].Amplitude) > cmplx.Abs(entries[j].Amplitude)
	})
	if k > len(entries) {
		k = len(entries)
	}
	return entries[:k]
}

// Probabilities returns |amplitude|^2 for every basis state.
func (s *Simulator) Probabilities() []float64 {
	amps := s.Amplitudes()
	out := make([]float64, len(amps))
	for i, a := range amps {
		out[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return out
}

// Sample draws basis states from the final distribution. The cumulative
// distribution is built once and each shot is a binary search, so many
// shots (a serving workload) cost O(2^n + shots·n) instead of
// O(shots·2^n).
func (s *Simulator) Sample(rng *rand.Rand, shots int) map[uint64]int {
	probs := s.Probabilities()
	cum := make([]float64, len(probs))
	acc := 0.0
	for i, p := range probs {
		acc += p
		cum[i] = acc
	}
	counts := make(map[uint64]int)
	for k := 0; k < shots; k++ {
		x := rng.Float64()
		// First index with x < cum[i] (matches the linear-scan semantics,
		// including the fall-through to the last state when x >= acc).
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if x < cum[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		counts[uint64(lo)]++
	}
	return counts
}
