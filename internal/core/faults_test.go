package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"flatdd/internal/dmav"
	"flatdd/internal/faults"
	"flatdd/internal/obs"
	"flatdd/internal/statevec"
)

// faultCircuit is a pooled-size workload: n=12 gives a 4096-amplitude
// state, the smallest size the DMAV/conversion paths batch onto the
// scheduler pool instead of running inline — which is where worker
// panics must be contained.
func faultCircuit(t *testing.T) (int, int) { return 12, 40 }

func TestFaultWorkerPanicContained(t *testing.T) {
	n, gates := faultCircuit(t)
	c := randomCircuit(rand.New(rand.NewSource(5)), n, gates)
	reg := faults.New(1)
	reg.Arm(faults.SchedWorkerPanic, faults.Trigger{Nth: 1, Transient: true})
	s := New(n, Options{Threads: 4, ForceConvertAfter: 5, Faults: reg})
	_, err := s.RunContext(context.Background(), c)
	if err == nil {
		t.Fatal("injected worker panic did not surface")
	}
	if !errors.Is(err, ErrEngineFault) {
		t.Fatalf("err = %v, want ErrEngineFault", err)
	}
	var ef *EngineFault
	if !errors.As(err, &ef) {
		t.Fatalf("err (%T) is not *EngineFault", err)
	}
	if ef.Point != faults.SchedWorkerPanic {
		t.Fatalf("fault point = %q, want %q", ef.Point, faults.SchedWorkerPanic)
	}
	if !IsTransient(err) {
		t.Fatal("transient trigger not classified transient")
	}
	if ef.Stack == "" {
		t.Fatal("no stack captured")
	}
}

func TestFaultOrganicPanicNotTransient(t *testing.T) {
	n, gates := faultCircuit(t)
	c := randomCircuit(rand.New(rand.NewSource(6)), n, gates)
	reg := faults.New(1)
	// An un-classified (non-Injected) panic value stands in for an
	// organic engine bug; it must surface as a non-transient fault.
	reg.Arm(faults.SchedWorkerPanic, faults.Trigger{Nth: 1})
	s := New(n, Options{Threads: 4, ForceConvertAfter: 5, Faults: reg})
	_, err := s.RunContext(context.Background(), c)
	if err == nil || !errors.Is(err, ErrEngineFault) {
		t.Fatalf("err = %v, want ErrEngineFault", err)
	}
	if IsTransient(err) {
		t.Fatal("non-transient trigger classified transient")
	}
	if IsTransient(ErrCanceled) || IsTransient(nil) {
		t.Fatal("IsTransient misfires on non-fault errors")
	}
}

func TestFaultMetricsCount(t *testing.T) {
	n, gates := faultCircuit(t)
	c := randomCircuit(rand.New(rand.NewSource(7)), n, gates)
	reg := faults.New(1)
	reg.Arm(faults.SchedWorkerPanic, faults.Trigger{Nth: 1})
	r := obs.New()
	s := New(n, Options{Threads: 4, ForceConvertAfter: 5, Faults: reg, Metrics: r})
	if _, err := s.RunContext(context.Background(), c); err == nil {
		t.Fatal("injected panic did not surface")
	}
	if got := r.Counter("core.engine_faults").Value(); got != 1 {
		t.Fatalf("core.engine_faults = %d, want 1", got)
	}
}

// runDegradedAgainstStatevec runs c with opts, asserts the run degraded
// for the given reason and never converted, and checks the full final
// state against the dense reference simulator.
func runDegradedAgainstStatevec(t *testing.T, opts Options, reason string) Stats {
	t.Helper()
	n, gates := faultCircuit(t)
	c := randomCircuit(rand.New(rand.NewSource(8)), n, gates)
	s := New(n, opts)
	st, err := s.RunContext(context.Background(), c)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !st.Degraded || st.DegradedReason != reason {
		t.Fatalf("Degraded=%v reason=%q, want true/%q", st.Degraded, st.DegradedReason, reason)
	}
	if st.ConvertedAtGate != -1 {
		t.Fatalf("degraded run converted at gate %d", st.ConvertedAtGate)
	}
	if s.Phase() != PhaseDD {
		t.Fatalf("degraded run ended in phase %v", s.Phase())
	}
	sv := statevec.New(n, 2)
	sv.ApplyCircuit(c)
	got, want := s.Amplitudes(), sv.Amplitudes()
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Fatalf("amplitude %d: %v, want %v", i, got[i], want[i])
		}
	}
	return st
}

func TestDegradedMemoryBudget(t *testing.T) {
	r := obs.New()
	st := runDegradedAgainstStatevec(t, Options{
		Threads: 4, ForceConvertAfter: 5, MemoryBudget: 1, Metrics: r,
	}, "memory_budget")
	if st.IntegrityChecks != 0 {
		t.Fatalf("DD-only run swept the flat state %d times", st.IntegrityChecks)
	}
	if got := r.Gauge("core.degraded").Value(); got != 1 {
		t.Fatalf("core.degraded = %d, want 1", got)
	}
}

func TestDegradedAllocFailure(t *testing.T) {
	reg := faults.New(1)
	reg.Arm(faults.CoreConvertAlloc, faults.Trigger{Nth: 1})
	runDegradedAgainstStatevec(t, Options{
		Threads: 4, ForceConvertAfter: 5, Faults: reg,
	}, "alloc_failed")
}

func TestDegradedBudgetAllowsConversionWhenSufficient(t *testing.T) {
	n, gates := faultCircuit(t)
	c := randomCircuit(rand.New(rand.NewSource(8)), n, gates)
	s := New(n, Options{
		Threads: 4, ForceConvertAfter: 5,
		MemoryBudget: FlatWorkingSetBytes(n),
	})
	st, err := s.RunContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded || st.ConvertedAtGate != 5 {
		t.Fatalf("sufficient budget degraded: %+v", st)
	}
}

func TestDriftNaNCorruptionDetected(t *testing.T) {
	n, gates := faultCircuit(t)
	c := randomCircuit(rand.New(rand.NewSource(9)), n, gates)
	reg := faults.New(1)
	// Zero Factor replaces one amplitude with NaN after a row chunk of
	// the uncached kernel computes (NeverCache pins the engine there).
	reg.Arm(faults.DMAVComputeCorrupt, faults.Trigger{Nth: 1})
	s := New(n, Options{
		Threads: 4, ForceConvertAfter: 5, Faults: reg,
		CacheMode: dmav.NeverCache, IntegrityEvery: 1,
	})
	_, err := s.RunContext(context.Background(), c)
	if !errors.Is(err, ErrNumericalDrift) {
		t.Fatalf("err = %v, want ErrNumericalDrift", err)
	}
	var de *DriftError
	if !errors.As(err, &de) || de.NaNs == 0 {
		t.Fatalf("drift error = %+v", de)
	}
}

func TestDriftNormDeviationDetected(t *testing.T) {
	// Unit test of the sweep itself: a finite state whose norm drifted
	// must fail without being miscounted as NaN/Inf.
	s := New(4, Options{IntegrityEvery: 1})
	s.state = make([]complex128, 16)
	s.state[0] = 1.5 // norm 2.25
	err := s.integritySweep(3)
	var de *DriftError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DriftError", err)
	}
	if de.NaNs != 0 || de.Infs != 0 || de.Gate != 3 {
		t.Fatalf("norm drift miscounted: %+v", de)
	}
	if de.Norm < 2.2 || de.Norm > 2.3 {
		t.Fatalf("norm = %g, want ~2.25", de.Norm)
	}
	// Within tolerance passes; with approximation on, the norm check is
	// skipped entirely (mass shedding is legitimate there).
	s.state[0] = 1
	if err := s.integritySweep(4); err != nil {
		t.Fatalf("unit-norm state failed the sweep: %v", err)
	}
	sa := New(4, Options{IntegrityEvery: 1, ApproxBudget: 0.1})
	sa.state = make([]complex128, 16)
	sa.state[0] = 0.5 // norm 0.25: fine under approximation
	if err := sa.integritySweep(0); err != nil {
		t.Fatalf("approximated state failed the norm check: %v", err)
	}
}

func TestFaultIntegritySweepCleanRun(t *testing.T) {
	n, gates := faultCircuit(t)
	c := randomCircuit(rand.New(rand.NewSource(11)), n, gates)
	s := New(n, Options{Threads: 4, ForceConvertAfter: 5, IntegrityEvery: 3})
	st, err := s.RunContext(context.Background(), c)
	if err != nil {
		t.Fatalf("clean run tripped the sweep: %v", err)
	}
	if st.IntegrityChecks == 0 {
		t.Fatal("no integrity sweeps ran")
	}
	// The sweep must not disturb the state: check against the reference.
	sv := statevec.New(n, 2)
	sv.ApplyCircuit(c)
	got, want := s.Amplitudes(), sv.Amplitudes()
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Fatalf("amplitude %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFaultCacheCorruptionDetected(t *testing.T) {
	n, gates := faultCircuit(t)
	c := randomCircuit(rand.New(rand.NewSource(12)), n, gates)
	reg := faults.New(1)
	reg.Arm(faults.DMAVCacheCorrupt, faults.Trigger{Nth: 1})
	s := New(n, Options{
		Threads: 4, ForceConvertAfter: 5, Faults: reg,
		CacheMode: dmav.AlwaysCache, IntegrityEvery: 1,
	})
	_, err := s.RunContext(context.Background(), c)
	if !errors.Is(err, ErrNumericalDrift) {
		t.Fatalf("err = %v, want ErrNumericalDrift", err)
	}
}
