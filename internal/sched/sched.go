// Package sched provides the persistent work-stealing worker pool that
// executes the flat-array phase: DMAV border tasks, the cached-mode
// partial-buffer sum, and the DD→array conversion walk all run as Task
// batches on one Pool that lives for a whole simulation, instead of
// spawning fresh goroutines per gate.
//
// The design is a bounded Arora–Blumofe–Plotkin deque per worker:
// a batch is installed as contiguous slices across the per-worker
// deques, each owner pops its own bottom end lock-free (one atomic
// decrement; a CAS only on the last element), and idle workers steal
// from the top end under a per-deque mutex. Stealing serializes thieves
// against each other but never blocks the owner's fast path, which is
// all a batch-oriented pool needs — the lock-free part matters on the
// owner side where every task passes, not on the steal side where only
// imbalance overflow does.
//
// Any positive worker count is supported; nothing in the pool assumes
// powers of two.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"flatdd/internal/faults"
	"flatdd/internal/obs"
)

// TaskPanic is how a panic inside a pool task surfaces: the worker
// recovers it (keeping the worker goroutine and every sibling task
// alive), the batch drains normally, and Run re-raises the first
// recovered panic as a *TaskPanic on the calling goroutine — so fault
// containment composes exactly like an inline panic would, but a
// runaway task can no longer kill an unrelated goroutine's process-wide
// scheduler. core.RunContext recovers it and returns ErrEngineFault.
type TaskPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the worker's stack at recovery time.
	Stack string
}

func (t *TaskPanic) Error() string { return fmt.Sprintf("sched: task panic: %v", t.Value) }

// Task is one unit of work. Tasks in a batch must be independent: the
// pool runs them in arbitrary order on arbitrary workers.
type Task = func()

// deque is a single-batch ABP work-stealing deque. The owner pops at
// bottom; thieves take at top. reset installs a new batch: it cannot
// race pops because Run joins every worker before the next batch is
// installed, and it cannot race a straggling thief because both take
// mu.
type deque struct {
	mu     sync.Mutex
	tasks  []Task
	top    atomic.Int64 // next index thieves take
	bottom atomic.Int64 // one past the next index the owner takes
}

func (d *deque) reset(tasks []Task) {
	d.mu.Lock()
	d.tasks = tasks
	d.top.Store(0)
	d.bottom.Store(int64(len(tasks)))
	d.mu.Unlock()
}

// pop takes one task from the owner end. Lock-free: a single atomic
// decrement claims an index, and only the race for the very last
// element needs a CAS against thieves.
func (d *deque) pop() (Task, bool) {
	b := d.bottom.Add(-1)
	t := d.top.Load()
	if b > t {
		return d.tasks[b], true
	}
	if b == t {
		// Last element: win it with the same CAS thieves use.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if won {
			return d.tasks[b], true
		}
		return nil, false
	}
	// Empty (thieves got ahead); restore the canonical empty state.
	d.bottom.Store(t)
	return nil, false
}

// steal takes one task from the thief end. Thieves serialize on mu;
// the CAS can still lose, but only to the owner taking the last
// element.
func (d *deque) steal() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.top.Load()
	if t >= d.bottom.Load() {
		return nil, false
	}
	task := d.tasks[t]
	if d.top.CompareAndSwap(t, t+1) {
		return task, true
	}
	return nil, false
}

// worker is one pool member. Worker 0 is special: it has no goroutine
// of its own — the caller of Run plays worker 0, so a single-threaded
// pool degenerates to an inline loop.
type worker struct {
	id     int
	dq     deque
	wake   chan struct{}
	tasks  atomic.Int64 // tasks executed (lifetime)
	steals atomic.Int64 // successful steals (lifetime)
	idleNs atomic.Int64 // time spent looking for work (lifetime)
	busyNs atomic.Int64 // time spent executing tasks (lifetime)
}

// WorkerStats is one worker's lifetime totals, as returned by Stats.
type WorkerStats struct {
	Tasks  int64
	Steals int64
	Idle   time.Duration
	Busy   time.Duration
}

// Pool is a persistent work-stealing worker pool. New spawns
// threads-1 parked goroutines; Run installs a batch, participates as
// worker 0, and returns when every task has finished and every worker
// has parked again. A Pool is safe for concurrent Run calls (batches
// serialize on an internal mutex) but batches never interleave.
type Pool struct {
	workers []*worker

	mu      sync.Mutex     // serializes batches
	join    sync.WaitGroup // spawned workers still in the current batch
	pending atomic.Int64   // tasks of the current batch not yet finished
	closed  bool
	once    sync.Once

	// fault holds the first panic recovered from a task of the current
	// batch (guarded by faultMu; reset by Run before re-raising).
	faultMu sync.Mutex
	fault   *TaskPanic

	met *poolMetrics
	fts poolFaults
}

// poolFaults holds the pool's fault-injection hooks (nil = injection
// off, the production state; see internal/faults).
type poolFaults struct {
	panicPt *faults.Point // faults.SchedWorkerPanic
	slow    *faults.Point // faults.SchedTaskSlow
}

// poolMetrics holds the pool's registry handles (see DESIGN.md §7 for
// the metric names). last* hold the per-worker totals already
// published, so publish only adds deltas; they are guarded by Pool.mu.
type poolMetrics struct {
	batches    *obs.Counter
	tasks      *obs.Counter
	steals     *obs.Counter
	idleNs     *obs.Counter
	busyNs     *obs.Counter
	panics     *obs.Counter
	perWorker  []workerCounters
	lastTasks  []int64
	lastSteals []int64
	lastIdle   []int64
	lastBusy   []int64
}

type workerCounters struct {
	tasks  *obs.Counter
	steals *obs.Counter
	idleNs *obs.Counter
	busyNs *obs.Counter
}

// New returns a pool with max(1, threads) workers. threads-1
// goroutines are spawned immediately and park until the first batch;
// the remaining worker is the Run caller itself. Call Close when the
// pool is no longer needed.
func New(threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	p := &Pool{workers: make([]*worker, threads)}
	for i := range p.workers {
		p.workers[i] = &worker{id: i, wake: make(chan struct{}, 1)}
	}
	for _, w := range p.workers[1:] {
		go p.workerLoop(w)
	}
	return p
}

// Threads returns the worker count (any positive value).
func (p *Pool) Threads() int { return len(p.workers) }

// SetMetrics attaches the pool to a registry (nil detaches). Totals
// appear as sched.{batches,tasks,steals,idle_ns,busy_ns} plus per-worker
// sched.worker.<i>.{tasks,steals,idle_ns,busy_ns}; counters are published at
// the end of each batch so the hot loops stay instrumentation-free.
func (p *Pool) SetMetrics(r *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r == nil {
		p.met = nil
		return
	}
	t := len(p.workers)
	m := &poolMetrics{
		batches:    r.Counter("sched.batches"),
		tasks:      r.Counter("sched.tasks"),
		steals:     r.Counter("sched.steals"),
		idleNs:     r.Counter("sched.idle_ns"),
		busyNs:     r.Counter("sched.busy_ns"),
		panics:     r.Counter("sched.panics"),
		perWorker:  make([]workerCounters, t),
		lastTasks:  make([]int64, t),
		lastSteals: make([]int64, t),
		lastIdle:   make([]int64, t),
		lastBusy:   make([]int64, t),
	}
	for i := 0; i < t; i++ {
		m.perWorker[i] = workerCounters{
			tasks:  r.Counter(fmt.Sprintf("sched.worker.%d.tasks", i)),
			steals: r.Counter(fmt.Sprintf("sched.worker.%d.steals", i)),
			idleNs: r.Counter(fmt.Sprintf("sched.worker.%d.idle_ns", i)),
			busyNs: r.Counter(fmt.Sprintf("sched.worker.%d.busy_ns", i)),
		}
	}
	r.Gauge("sched.workers").Set(int64(t))
	// Baseline at the current lifetime totals so batches run before the
	// attach do not appear as a spike.
	for i, w := range p.workers {
		m.lastTasks[i] = w.tasks.Load()
		m.lastSteals[i] = w.steals.Load()
		m.lastIdle[i] = w.idleNs.Load()
		m.lastBusy[i] = w.busyNs.Load()
	}
	p.met = m
}

// SetFaults attaches the pool's fault-injection hooks to a registry
// (nil detaches — the production state). Armed points fire inside exec:
// faults.SchedWorkerPanic panics mid-task and faults.SchedTaskSlow
// sleeps, both before the task body runs.
func (p *Pool) SetFaults(r *faults.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r == nil {
		p.fts = poolFaults{}
		return
	}
	p.fts = poolFaults{
		panicPt: r.Point(faults.SchedWorkerPanic),
		slow:    r.Point(faults.SchedTaskSlow),
	}
}

// Stats returns each worker's lifetime totals.
func (p *Pool) Stats() []WorkerStats {
	out := make([]WorkerStats, len(p.workers))
	for i, w := range p.workers {
		out[i] = WorkerStats{
			Tasks:  w.tasks.Load(),
			Steals: w.steals.Load(),
			Idle:   time.Duration(w.idleNs.Load()),
			Busy:   time.Duration(w.busyNs.Load()),
		}
	}
	return out
}

// Run executes every task in the batch and returns once all have
// finished. The calling goroutine participates as worker 0, then joins
// the spawned workers; the join guarantees every worker is parked
// before the next batch's deques are installed, which is what makes
// the owner pop safe without any reset-time synchronization.
//
// Fault containment: a panic inside a task never kills its worker.
// exec recovers it, the rest of the batch still runs, and once every
// worker has parked Run re-raises the first recovered panic as a
// *TaskPanic on the calling goroutine. The pool stays fully usable for
// the next batch — essential when one Pool is shared across jobs.
func (p *Pool) Run(tasks []Task) { p.run(nil, "", nil, tasks) }

// RunSpanned is Run with scheduler attribution: when parent is non-nil
// the batch executes under a child span named name, carrying the batch's
// task count, worker count, and the steal/idle/busy deltas measured
// across exactly this batch (the per-worker lifetime totals are
// snapshotted before and after, under the batch mutex, so concurrent
// batches cannot bleed into each other's attribution). A nil parent is
// exactly Run — the tracing-off cost is one pointer check.
func (p *Pool) RunSpanned(parent *obs.Span, name string, tasks []Task) {
	p.run(parent, name, nil, tasks)
}

// RunTracked is RunSpanned plus resource attribution: when led is
// non-nil, the batch's worker busy-ns delta (wall time the workers spent
// inside task bodies, summed across workers — CPU participation, not
// elapsed time) is credited to the ledger's open phase via AddCPU. Both
// parent and led may be nil independently.
func (p *Pool) RunTracked(parent *obs.Span, name string, led *obs.ResourceLedger, tasks []Task) {
	p.run(parent, name, led, tasks)
}

func (p *Pool) run(parent *obs.Span, name string, led *obs.ResourceLedger, tasks []Task) {
	if len(tasks) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var sp *obs.Span
	var steals0, idle0, busy0 int64
	if parent != nil || led != nil {
		if parent != nil {
			sp = parent.Child(name)
			sp.SetAttr("tasks", len(tasks))
			sp.SetAttr("workers", len(p.workers))
		}
		steals0, idle0, busy0 = p.totals()
	}
	w0 := p.workers[0]
	if p.closed || len(p.workers) == 1 || len(tasks) == 1 {
		// Inline: nothing to distribute (or the pool was closed —
		// degrade to serial rather than touching dead channels). The
		// same exec wrapper applies, so panic containment and fault
		// hooks behave identically to the distributed path. Busy time
		// here is the whole loop: worker 0 never goes idle inline.
		p.pending.Store(int64(len(tasks)))
		start := time.Now()
		for _, t := range tasks {
			p.exec(w0, t)
		}
		w0.busyNs.Add(int64(time.Since(start)))
		p.finishBatch(sp, led, steals0, idle0, busy0)
		return
	}
	nt := len(p.workers)
	p.pending.Store(int64(len(tasks)))
	for i, w := range p.workers {
		lo := i * len(tasks) / nt
		hi := (i + 1) * len(tasks) / nt
		w.dq.reset(tasks[lo:hi])
	}
	p.join.Add(nt - 1)
	for _, w := range p.workers[1:] {
		w.wake <- struct{}{} // always empty here: the previous batch joined
	}
	p.runWorker(w0)
	p.join.Wait()
	p.finishBatch(sp, led, steals0, idle0, busy0)
}

// finishBatch publishes metrics, closes the batch span (attributing the
// steal/idle/busy deltas of this batch), credits the batch's busy time
// to the ledger, and re-raises any recorded panic. The span must end
// before rethrow so a faulted batch still produces a complete span for
// the flight recorder.
func (p *Pool) finishBatch(sp *obs.Span, led *obs.ResourceLedger, steals0, idle0, busy0 int64) {
	p.publish()
	if sp != nil || led != nil {
		steals1, idle1, busy1 := p.totals()
		if sp != nil {
			sp.SetAttr("steals", steals1-steals0)
			sp.SetAttr("idle_ns", idle1-idle0)
			sp.SetAttr("busy_ns", busy1-busy0)
			sp.End()
		}
		led.AddCPU(busy1 - busy0)
	}
	p.rethrow()
}

// totals sums the per-worker lifetime steal, idle, and busy counters.
// Called under p.mu with all workers parked, so the totals are stable.
func (p *Pool) totals() (steals, idleNs, busyNs int64) {
	for _, w := range p.workers {
		steals += w.steals.Load()
		idleNs += w.idleNs.Load()
		busyNs += w.busyNs.Load()
	}
	return
}

// workerLoop parks a spawned worker between batches.
func (p *Pool) workerLoop(w *worker) {
	for range w.wake {
		p.runWorker(w)
		p.join.Done()
	}
}

// runWorker drains the worker's own deque, then steals from the others
// until the batch's pending count hits zero. Busy time is participation
// elapsed minus idle — two extra clock reads per worker per batch, which
// is what keeps CPU attribution off the per-task fast path.
func (p *Pool) runWorker(w *worker) {
	start := time.Now()
	for {
		task, ok := w.dq.pop()
		if !ok {
			break
		}
		p.exec(w, task)
	}
	nt := len(p.workers)
	idleStart := time.Now()
	var idle time.Duration
	for p.pending.Load() > 0 {
		stole := false
		for i := 1; i < nt; i++ {
			v := p.workers[(w.id+i)%nt]
			if task, ok := v.dq.steal(); ok {
				w.steals.Add(1)
				idle += time.Since(idleStart)
				p.exec(w, task)
				idleStart = time.Now()
				stole = true
				break
			}
		}
		if !stole {
			runtime.Gosched()
		}
	}
	idle += time.Since(idleStart)
	if idle > 0 {
		w.idleNs.Add(int64(idle))
	}
	if busy := time.Since(start) - idle; busy > 0 {
		w.busyNs.Add(int64(busy))
	}
}

// exec runs one task and retires it from the batch. The pending
// decrement comes after the task body (in the deferred block) so no
// worker can conclude the batch is over while a task is still
// executing. A panicking task is recovered here — the worker survives,
// the batch drains, and Run re-raises the panic on its caller.
func (p *Pool) exec(w *worker, t Task) {
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(r)
		}
		w.tasks.Add(1)
		p.pending.Add(-1)
	}()
	if p.fts.slow != nil {
		p.fts.slow.Sleep()
	}
	if p.fts.panicPt != nil {
		p.fts.panicPt.Panic()
	}
	t()
}

// recordPanic keeps the first panic of the batch (later ones are
// counted but dropped — one fault fails the batch either way).
func (p *Pool) recordPanic(r any) {
	tp := &TaskPanic{Value: r, Stack: string(debug.Stack())}
	p.faultMu.Lock()
	if p.fault == nil {
		p.fault = tp
	}
	p.faultMu.Unlock()
	if m := p.met; m != nil {
		m.panics.Inc()
	}
}

// rethrow re-raises the batch's recorded panic, if any, on the calling
// goroutine. Called by Run after every worker has parked.
func (p *Pool) rethrow() {
	p.faultMu.Lock()
	f := p.fault
	p.fault = nil
	p.faultMu.Unlock()
	if f != nil {
		panic(f)
	}
}

// publish pushes the delta since the last publish into the registry.
// Called under p.mu at the end of each batch.
func (p *Pool) publish() {
	m := p.met
	if m == nil {
		return
	}
	m.batches.Inc()
	for i, w := range p.workers {
		if d := w.tasks.Load() - m.lastTasks[i]; d > 0 {
			m.lastTasks[i] += d
			m.tasks.Add(d)
			m.perWorker[i].tasks.Add(d)
		}
		if d := w.steals.Load() - m.lastSteals[i]; d > 0 {
			m.lastSteals[i] += d
			m.steals.Add(d)
			m.perWorker[i].steals.Add(d)
		}
		if d := w.idleNs.Load() - m.lastIdle[i]; d > 0 {
			m.lastIdle[i] += d
			m.idleNs.Add(d)
			m.perWorker[i].idleNs.Add(d)
		}
		if d := w.busyNs.Load() - m.lastBusy[i]; d > 0 {
			m.lastBusy[i] += d
			m.busyNs.Add(d)
			m.perWorker[i].busyNs.Add(d)
		}
	}
}

// Close retires the spawned workers. Run calls after Close degrade to
// inline serial execution (a usage error, but a benign one in test
// teardown orderings). Close is idempotent and waits for an in-flight
// batch.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.mu.Lock()
		p.closed = true
		for _, w := range p.workers[1:] {
			close(w.wake)
		}
		p.mu.Unlock()
	})
}
