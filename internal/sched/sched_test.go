package sched

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flatdd/internal/faults"
	"flatdd/internal/obs"
)

// spin burns a little CPU so tasks have measurable, unequal sizes.
func spin(iters int) float64 {
	x := 1.0
	for i := 0; i < iters; i++ {
		x = x*1.0000001 + 0.0000001
	}
	return x
}

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 5, 8} {
		p := New(threads)
		const n = 500
		counts := make([]atomic.Int32, n)
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = func() { counts[i].Add(1) }
		}
		p.Run(tasks)
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("threads=%d: task %d executed %d times, want 1", threads, i, got)
			}
		}
		p.Close()
	}
}

func TestEmptyAndSingleTaskBatches(t *testing.T) {
	p := New(4)
	defer p.Close()
	p.Run(nil)
	p.Run([]Task{})
	ran := false
	p.Run([]Task{func() { ran = true }})
	if !ran {
		t.Fatal("single-task batch did not run")
	}
}

func TestPoolReusedAcrossBatches(t *testing.T) {
	p := New(3)
	defer p.Close()
	var total atomic.Int64
	for batch := 0; batch < 100; batch++ {
		n := 1 + batch%17
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = func() { total.Add(1) }
		}
		p.Run(tasks)
	}
	want := int64(0)
	for batch := 0; batch < 100; batch++ {
		want += int64(1 + batch%17)
	}
	if got := total.Load(); got != want {
		t.Fatalf("executed %d tasks across batches, want %d", got, want)
	}
}

func TestRunAfterCloseDegradesToInline(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close() // idempotent
	var ran atomic.Int32
	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i] = func() { ran.Add(1) }
	}
	p.Run(tasks)
	if got := ran.Load(); got != 10 {
		t.Fatalf("post-Close Run executed %d tasks, want 10", got)
	}
}

func TestConcurrentRunCallsSerialize(t *testing.T) {
	p := New(3)
	defer p.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := 0; batch < 20; batch++ {
				tasks := make([]Task, 25)
				for i := range tasks {
					tasks[i] = func() { total.Add(1) }
				}
				p.Run(tasks)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 4*20*25 {
		t.Fatalf("executed %d tasks, want %d", got, 4*20*25)
	}
}

func TestThreadsClampedToPositive(t *testing.T) {
	for _, in := range []int{-5, 0, 1} {
		p := New(in)
		if p.Threads() != 1 {
			t.Errorf("New(%d).Threads() = %d, want 1", in, p.Threads())
		}
		p.Close()
	}
	p := New(7)
	defer p.Close()
	if p.Threads() != 7 {
		t.Errorf("New(7).Threads() = %d, want 7", p.Threads())
	}
}

// TestStressUnderGOMAXPROCS is the scheduler stress test of ISSUE 3:
// randomized task sizes under GOMAXPROCS ∈ {1, 3, 7, 16}, asserting
// completion, no double-execution, and steal-counter sanity.
func TestStressUnderGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	batches := 40
	maxTasks := 300
	if testing.Short() {
		batches = 10
		maxTasks = 100
	}
	for _, procs := range []int{1, 3, 7, 16} {
		runtime.GOMAXPROCS(procs)
		t.Run(goMaxName(procs), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(procs) * 7919))
			p := New(procs)
			defer p.Close()
			var sink atomic.Int64
			totalTasks := 0
			for b := 0; b < batches; b++ {
				n := 1 + rng.Intn(maxTasks)
				totalTasks += n
				counts := make([]atomic.Int32, n)
				tasks := make([]Task, n)
				for i := range tasks {
					i := i
					// Heavily skewed sizes: a few big tasks among many
					// tiny ones, the shape that forces stealing.
					iters := rng.Intn(50)
					if rng.Intn(10) == 0 {
						iters = 5000 + rng.Intn(20000)
					}
					tasks[i] = func() {
						counts[i].Add(1)
						if spin(iters) < 0 {
							sink.Add(1)
						}
					}
				}
				p.Run(tasks)
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("batch %d task %d executed %d times, want exactly 1", b, i, got)
					}
				}
			}
			// Steal-counter sanity: per-worker tasks sum to the total,
			// and steals never exceed tasks executed (every steal
			// yields exactly one execution).
			var sumTasks, sumSteals int64
			for i, ws := range p.Stats() {
				if ws.Tasks < 0 || ws.Steals < 0 || ws.Idle < 0 {
					t.Fatalf("worker %d has negative stats: %+v", i, ws)
				}
				if ws.Steals > ws.Tasks {
					t.Fatalf("worker %d stole %d tasks but only executed %d", i, ws.Steals, ws.Tasks)
				}
				sumTasks += ws.Tasks
				sumSteals += ws.Steals
			}
			if sumTasks != int64(totalTasks) {
				t.Fatalf("workers executed %d tasks total, want %d", sumTasks, totalTasks)
			}
			if sumSteals > sumTasks {
				t.Fatalf("steals (%d) exceed tasks (%d)", sumSteals, sumTasks)
			}
		})
	}
}

func goMaxName(p int) string {
	return "gomaxprocs-" + string(rune('0'+p/10)) + string(rune('0'+p%10))
}

func TestMetricsPublish(t *testing.T) {
	r := obs.New()
	p := New(3)
	defer p.Close()
	p.SetMetrics(r)
	const n = 200
	tasks := make([]Task, n)
	var sink atomic.Int64
	for i := range tasks {
		tasks[i] = func() {
			if spin(100) < 0 {
				sink.Add(1)
			}
		}
	}
	p.Run(tasks)
	p.Run(tasks)
	snap := r.Snapshot()
	if got := snap.Counters["sched.tasks"]; got != 2*n {
		t.Fatalf("sched.tasks = %d, want %d", got, 2*n)
	}
	if got := snap.Counters["sched.batches"]; got != 2 {
		t.Fatalf("sched.batches = %d, want 2", got)
	}
	if got := snap.Gauges["sched.workers"]; got != 3 {
		t.Fatalf("sched.workers = %d, want 3", got)
	}
	var perWorker int64
	for i := 0; i < 3; i++ {
		perWorker += snap.Counters["sched.worker."+string(rune('0'+i))+".tasks"]
	}
	if perWorker != 2*n {
		t.Fatalf("per-worker task counters sum to %d, want %d", perWorker, 2*n)
	}
	if snap.Counters["sched.steals"] != snapSumWorkers(snap, "steals") {
		t.Fatalf("aggregate steals %d != per-worker sum %d",
			snap.Counters["sched.steals"], snapSumWorkers(snap, "steals"))
	}
}

func snapSumWorkers(s obs.Snapshot, suffix string) int64 {
	var sum int64
	for i := 0; i < 3; i++ {
		sum += s.Counters["sched.worker."+string(rune('0'+i))+"."+suffix]
	}
	return sum
}

func TestTaskPanicContained(t *testing.T) {
	for _, threads := range []int{1, 4} {
		p := New(threads)
		const n = 64
		var ran atomic.Int32
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = func() {
				if i == 17 {
					panic("boom-17")
				}
				ran.Add(1)
			}
		}
		var rec any
		func() {
			defer func() { rec = recover() }()
			p.Run(tasks)
		}()
		tp, ok := rec.(*TaskPanic)
		if !ok {
			t.Fatalf("threads=%d: Run recovered %v (%T), want *TaskPanic", threads, rec, rec)
		}
		if tp.Value != "boom-17" {
			t.Fatalf("threads=%d: panic value = %v", threads, tp.Value)
		}
		if tp.Stack == "" {
			t.Fatalf("threads=%d: no stack captured", threads)
		}
		if got := ran.Load(); got != n-1 {
			t.Fatalf("threads=%d: %d sibling tasks ran, want %d", threads, got, n-1)
		}
		// The pool must remain fully usable after a contained panic.
		var again atomic.Int32
		next := make([]Task, 32)
		for i := range next {
			next[i] = func() { again.Add(1) }
		}
		p.Run(next)
		if got := again.Load(); got != 32 {
			t.Fatalf("threads=%d: post-panic batch ran %d tasks, want 32", threads, got)
		}
		p.Close()
	}
}

func TestFaultHookPanicsWorker(t *testing.T) {
	p := New(4)
	defer p.Close()
	reg := faults.New(1)
	reg.Arm(faults.SchedWorkerPanic, faults.Trigger{Nth: 5, Transient: true})
	p.SetFaults(reg)
	tasks := make([]Task, 20)
	var ran atomic.Int32
	for i := range tasks {
		tasks[i] = func() { ran.Add(1) }
	}
	var rec any
	func() {
		defer func() { rec = recover() }()
		p.Run(tasks)
	}()
	tp, ok := rec.(*TaskPanic)
	if !ok {
		t.Fatalf("Run recovered %v (%T), want *TaskPanic", rec, rec)
	}
	inj, ok := tp.Value.(*faults.Injected)
	if !ok || inj.Point != faults.SchedWorkerPanic || !inj.Transient {
		t.Fatalf("panic value = %#v", tp.Value)
	}
	if got := ran.Load(); got != 19 {
		t.Fatalf("%d sibling tasks ran, want 19", got)
	}
	// Disable hooks: the pool runs clean again.
	p.SetFaults(nil)
	p.Run(tasks)
	if got := ran.Load(); got != 39 {
		t.Fatalf("post-disarm batch: ran=%d, want 39", got)
	}
}

func TestFaultHookSlowTask(t *testing.T) {
	p := New(2)
	defer p.Close()
	reg := faults.New(1)
	reg.Arm(faults.SchedTaskSlow, faults.Trigger{Nth: 1, Delay: 30 * time.Millisecond})
	p.SetFaults(reg)
	t0 := time.Now()
	p.Run([]Task{func() {}})
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("slow-task fault did not delay: batch took %v", d)
	}
}

// TestRunTrackedCreditsBusyNs: a tracked batch credits the workers'
// busy-ns delta to the ledger's open phase and publishes a non-zero
// sched.busy_ns counter. The credited CPU time must be at least the
// single-task spin time (work happened) and bounded by workers × wall
// time (it is participation, not elapsed time).
func TestRunTrackedCreditsBusyNs(t *testing.T) {
	r := obs.New()
	p := New(2)
	defer p.Close()
	p.SetMetrics(r)

	led := obs.NewResourceLedger()
	led.Begin("dmav")
	tasks := make([]Task, 16)
	for i := range tasks {
		tasks[i] = func() { time.Sleep(time.Millisecond) }
	}
	t0 := time.Now()
	p.RunTracked(nil, "batch", led, tasks)
	wall := time.Since(t0)
	led.End()

	snap := led.Snapshot()
	if snap.CPUNs < int64(time.Millisecond) {
		t.Errorf("ledger credited %d ns of CPU, want >= 1ms", snap.CPUNs)
	}
	if max := 2 * wall.Nanoseconds() * 2; snap.CPUNs > max { // 2 workers, 2x slack
		t.Errorf("ledger credited %d ns, more than workers*wall (%d)", snap.CPUNs, max)
	}
	if got := r.Snapshot().Counters["sched.busy_ns"]; got <= 0 {
		t.Errorf("sched.busy_ns = %d, want > 0", got)
	}
	// Nil ledger and nil parent stay valid no-ops.
	p.RunTracked(nil, "batch", nil, tasks[:1])
}
