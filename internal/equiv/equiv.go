// Package equiv implements decision-diagram-based quantum circuit
// equivalence checking, the flagship DD application the FlatDD paper cites
// (Burgholzer & Wille, "Advanced equivalence checking for quantum
// circuits" [11]). It demonstrates that the repository's DD kernel is a
// complete QMDD package, not just a simulator backend.
//
// Two checks are provided:
//
//   - Matrices: build U1 and U2 as full matrix DDs via DDMM and compare
//     them up to global phase. Exact but worst-case exponential.
//   - Alternating: exploit that U2† · U1 = I when the circuits are
//     equivalent. Starting from the identity DD, gates of circuit 1 are
//     applied from the left and inverted gates of circuit 2 from the
//     right, keeping the intermediate DD close to the identity for
//     similar circuits — the "G1 → I ← G2" scheme of [11].
package equiv

import (
	"fmt"
	"math"
	"math/cmplx"

	"flatdd/internal/circuit"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
)

// Result reports an equivalence check.
type Result struct {
	Equivalent bool
	// Phase is the global phase e^{i θ} with U1 = Phase · U2 when
	// Equivalent (1 for strict equality).
	Phase complex128
	// PeakNodes is the largest DD node count observed, a proxy for the
	// check's memory cost.
	PeakNodes int
}

// Tolerance for matrix-entry comparisons.
const tol = 1e-9

// Matrices checks equivalence by building both circuit unitaries as matrix
// DDs and comparing them up to global phase.
func Matrices(c1, c2 *circuit.Circuit) (Result, error) {
	if c1.Qubits != c2.Qubits {
		return Result{}, fmt.Errorf("equiv: circuits on %d vs %d qubits", c1.Qubits, c2.Qubits)
	}
	n := c1.Qubits
	m := dd.New(n)
	u1 := buildUnitary(m, c1)
	u2 := buildUnitary(m, c2)
	res := Result{PeakNodes: m.PeakNodeCount()}
	if u1.N == u2.N {
		// Canonical structure matches: equivalence up to the root weight.
		if u2.W == 0 {
			res.Equivalent = u1.W == 0
			res.Phase = 1
			return res, nil
		}
		phase := u1.W / u2.W
		if math.Abs(cmplx.Abs(phase)-1) < tol {
			res.Equivalent = true
			res.Phase = phase
		}
		return res, nil
	}
	// Hash-consing missed (numerical drift can split canonical nodes):
	// fall back to the trace criterion — for unitaries |tr(U1†·U2)| = 2^n
	// iff U1 = e^{iθ}·U2, with tr = 2^n·e^{-iθ}.
	prod := m.MulMM(m.ConjTranspose(u1), u2)
	res.PeakNodes = m.PeakNodeCount()
	dim := float64(uint64(1) << uint(n))
	tr := m.Trace(prod, n)
	if math.Abs(cmplx.Abs(tr)-dim) < tol*dim {
		res.Equivalent = true
		res.Phase = cmplx.Conj(tr / complex(dim, 0))
	}
	return res, nil
}

// Alternating checks equivalence with the alternating scheme: it applies
// gates of c1 from the left and inverses of c2's gates from the right to
// an identity DD; the circuits are equivalent iff the final DD is the
// identity up to a global phase. Gates are interleaved proportionally to
// the two gate counts so the intermediate product stays near the identity.
func Alternating(c1, c2 *circuit.Circuit) (Result, error) {
	if c1.Qubits != c2.Qubits {
		return Result{}, fmt.Errorf("equiv: circuits on %d vs %d qubits", c1.Qubits, c2.Qubits)
	}
	n := c1.Qubits
	m := dd.New(n)
	acc := m.Identity(n)
	i, j := 0, 0
	n1, n2 := len(c1.Gates), len(c2.Gates)
	for i < n1 || j < n2 {
		// Proportional interleaving: pick the side that is behind.
		takeLeft := j >= n2 || (i < n1 && i*max(n2, 1) <= j*max(n1, 1))
		if takeLeft {
			g := ddsim.BuildGateDD(m, n, &c1.Gates[i])
			acc = m.MulMM(g, acc)
			i++
		} else {
			g := ddsim.BuildGateDD(m, n, invert(&c2.Gates[j]))
			acc = m.MulMM(acc, g)
			j++
		}
		m.CollectIfNeeded(dd.Roots{M: []dd.MEdge{acc}})
	}
	res := Result{PeakNodes: m.PeakNodeCount()}
	id := m.Identity(n)
	if acc.N == id.N {
		phase := acc.W / id.W
		if math.Abs(cmplx.Abs(phase)-1) < tol {
			res.Equivalent = true
			res.Phase = phase
		}
		return res, nil
	}
	// Numerical-drift fallback: U1·U2† = e^{iθ}·I iff its trace has
	// magnitude 2^n.
	dim := float64(uint64(1) << uint(n))
	tr := m.Trace(acc, n)
	if math.Abs(cmplx.Abs(tr)-dim) < tol*dim {
		res.Equivalent = true
		res.Phase = tr / complex(dim, 0)
	}
	return res, nil
}

// buildUnitary multiplies all gate DDs of a circuit into one matrix DD.
func buildUnitary(m *dd.Manager, c *circuit.Circuit) dd.MEdge {
	acc := m.Identity(c.Qubits)
	for i := range c.Gates {
		g := ddsim.BuildGateDD(m, c.Qubits, &c.Gates[i])
		acc = m.MulMM(g, acc)
	}
	return acc
}

// invert returns the inverse gate (conjugate transpose of the unitary,
// controls unchanged).
func invert(g *circuit.Gate) *circuit.Gate {
	d := g.Dim()
	u := make([][]complex128, d)
	for r := 0; r < d; r++ {
		u[r] = make([]complex128, d)
		for c := 0; c < d; c++ {
			u[r][c] = cmplx.Conj(g.U[c][r])
		}
	}
	inv := *g
	inv.Name = g.Name + "_dg"
	inv.U = u
	return &inv
}
