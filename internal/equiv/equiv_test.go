package equiv

import (
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/workloads"
)

type checker func(c1, c2 *circuit.Circuit) (Result, error)

var checkers = map[string]checker{
	"matrices":    Matrices,
	"alternating": Alternating,
}

func TestIdenticalCircuitsEquivalent(t *testing.T) {
	c := workloads.QFT(6)
	for name, check := range checkers {
		res, err := check(c, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Equivalent {
			t.Errorf("%s: identical circuits reported non-equivalent", name)
		}
	}
}

func TestKnownIdentities(t *testing.T) {
	// H X H == Z, and CX decomposed through H/CZ/H.
	cases := []struct {
		name   string
		c1, c2 func() *circuit.Circuit
	}{
		{
			"HXH=Z",
			func() *circuit.Circuit {
				c := circuit.New("hxh", 2)
				return c.Append(circuit.H(0), circuit.X(0), circuit.H(0))
			},
			func() *circuit.Circuit {
				c := circuit.New("z", 2)
				return c.Append(circuit.Z(0))
			},
		},
		{
			"CX=H-CZ-H",
			func() *circuit.Circuit {
				c := circuit.New("cx", 2)
				return c.Append(circuit.CX(0, 1))
			},
			func() *circuit.Circuit {
				c := circuit.New("hczh", 2)
				return c.Append(circuit.H(1), circuit.CZ(0, 1), circuit.H(1))
			},
		},
		{
			"SS=Z",
			func() *circuit.Circuit {
				c := circuit.New("ss", 1)
				return c.Append(circuit.S(0), circuit.S(0))
			},
			func() *circuit.Circuit {
				c := circuit.New("z", 1)
				return c.Append(circuit.Z(0))
			},
		},
		{
			"SWAP=3CX",
			func() *circuit.Circuit {
				c := circuit.New("swap", 2)
				return c.Append(circuit.SWAP(0, 1))
			},
			func() *circuit.Circuit {
				c := circuit.New("3cx", 2)
				return c.Append(circuit.CX(0, 1), circuit.CX(1, 0), circuit.CX(0, 1))
			},
		},
	}
	for _, tc := range cases {
		for name, check := range checkers {
			res, err := check(tc.c1(), tc.c2())
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, name, err)
			}
			if !res.Equivalent {
				t.Errorf("%s/%s: not recognized as equivalent", tc.name, name)
			}
		}
	}
}

func TestGlobalPhaseEquivalence(t *testing.T) {
	// X = e^{i pi/2} RX(pi): equivalent only up to phase i.
	c1 := circuit.New("x", 1)
	c1.Append(circuit.X(0))
	c2 := circuit.New("rx", 1)
	c2.Append(circuit.RX(3.141592653589793, 0))
	for name, check := range checkers {
		res, err := check(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Errorf("%s: phase-equivalent circuits rejected", name)
			continue
		}
		if real(res.Phase) > 1e-6 || imag(res.Phase) < 0.999 {
			t.Errorf("%s: phase = %v, want i", name, res.Phase)
		}
	}
}

func TestNonEquivalentDetected(t *testing.T) {
	c1 := circuit.New("a", 3)
	c1.Append(circuit.H(0), circuit.CX(0, 1))
	c2 := circuit.New("b", 3)
	c2.Append(circuit.H(0), circuit.CX(0, 2)) // different target
	for name, check := range checkers {
		res, err := check(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Equivalent {
			t.Errorf("%s: distinct circuits reported equivalent", name)
		}
	}
}

func TestSingleGatePerturbationDetected(t *testing.T) {
	// A single extra T gate buried in a QFT must flip the verdict.
	base := workloads.QFT(5)
	perturbed := circuit.New("qft-p", 5)
	perturbed.Append(base.Gates[:7]...)
	perturbed.Append(circuit.T(2))
	perturbed.Append(base.Gates[7:]...)
	for name, check := range checkers {
		res, err := check(base, perturbed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Equivalent {
			t.Errorf("%s: perturbed QFT reported equivalent", name)
		}
	}
}

func TestMismatchedWidthsRejected(t *testing.T) {
	c1 := circuit.New("a", 2)
	c2 := circuit.New("b", 3)
	for name, check := range checkers {
		if _, err := check(c1, c2); err == nil {
			t.Errorf("%s: width mismatch accepted", name)
		}
	}
}

func TestRandomCircuitSelfEquivalenceWithReorderedCommutingGates(t *testing.T) {
	// Diagonal gates on disjoint qubits commute; a shuffled ordering must
	// stay equivalent.
	rng := rand.New(rand.NewSource(4))
	n := 5
	var gates []circuit.Gate
	for q := 0; q < n; q++ {
		gates = append(gates, circuit.RZ(rng.NormFloat64(), q))
	}
	c1 := circuit.New("ordered", n)
	c1.Append(gates...)
	c2 := circuit.New("shuffled", n)
	perm := rng.Perm(len(gates))
	for _, i := range perm {
		c2.Append(gates[i])
	}
	for name, check := range checkers {
		res, err := check(c1, c2)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Errorf("%s: commuting reorder rejected", name)
		}
	}
}

func TestAlternatingKeepsDDSmallOnEqualCircuits(t *testing.T) {
	// The point of the alternating scheme: checking a circuit against
	// itself never builds the full unitary. Compare peak node counts.
	c := workloads.SupremacyGrid(6, 5, 3)
	alt, err := Alternating(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !alt.Equivalent {
		t.Fatal("self-equivalence rejected")
	}
	mat, err := Matrices(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equivalent {
		t.Fatal("self-equivalence rejected by matrix check")
	}
	if alt.PeakNodes >= mat.PeakNodes {
		t.Fatalf("alternating peak %d not below matrix peak %d", alt.PeakNodes, mat.PeakNodes)
	}
}
