package equiv_test

import (
	"fmt"

	"flatdd/internal/circuit"
	"flatdd/internal/equiv"
)

// ExampleAlternating verifies the textbook identity CX = (I⊗H)·CZ·(I⊗H).
func ExampleAlternating() {
	c1 := circuit.New("cx", 2)
	c1.Append(circuit.CX(0, 1))

	c2 := circuit.New("h-cz-h", 2)
	c2.Append(circuit.H(1), circuit.CZ(0, 1), circuit.H(1))

	res, err := equiv.Alternating(c1, c2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("equivalent:", res.Equivalent)
	// Output:
	// equivalent: true
}
