package statevec

import (
	"fmt"
	"math"
	"math/rand"
)

// ProbabilityOfQubit returns P(qubit q = 1) in the current state.
func (s *State) ProbabilityOfQubit(q int) float64 {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", q))
	}
	mask := uint64(1) << uint(q)
	var p1 float64
	for i, a := range s.amps {
		if uint64(i)&mask != 0 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p1
}

// MeasureQubit performs a projective measurement of qubit q: it draws an
// outcome from the Born distribution, collapses the state, renormalizes,
// and returns the outcome (0 or 1).
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	p1 := s.ProbabilityOfQubit(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.ForceOutcome(q, outcome)
	return outcome
}

// ForceOutcome collapses qubit q onto the given outcome (post-selection)
// and renormalizes. It panics if the outcome has zero probability.
func (s *State) ForceOutcome(q, outcome int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", q))
	}
	mask := uint64(1) << uint(q)
	var keep float64
	for i, a := range s.amps {
		bit := 0
		if uint64(i)&mask != 0 {
			bit = 1
		}
		if bit == outcome {
			keep += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	if keep < 1e-15 {
		panic(fmt.Sprintf("statevec: outcome %d on qubit %d has zero probability", outcome, q))
	}
	scale := complex(1/math.Sqrt(keep), 0)
	for i := range s.amps {
		bit := 0
		if uint64(i)&mask != 0 {
			bit = 1
		}
		if bit == outcome {
			s.amps[i] *= scale
		} else {
			s.amps[i] = 0
		}
	}
}
