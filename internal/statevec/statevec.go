// Package statevec implements the multi-threaded array-based state-vector
// simulator that stands in for Quantum++ [19] in the paper's evaluation.
//
// Gate matrices are applied to a flat []complex128 amplitude array by
// manipulating amplitudes in place (Equations 2 and 3 of the paper): a
// single-qubit gate touches pairs of amplitudes whose indices differ in the
// target bit, a controlled gate additionally filters on the control bits,
// and the generic k-qubit path gathers 2^k amplitudes per group with the
// O(n) per-group index arithmetic characteristic of general array
// simulators — the indexing cost DMAV's constant-time recursive descent is
// compared against in Section 3.2.1.
package statevec

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"flatdd/internal/circuit"
)

// State is a full state vector over n qubits. Amplitude index bit k is the
// value of qubit k.
//
// Two apply paths exist. The default path is faithful to Quantum++'s
// generic kernel, which rebuilds each amplitude group's multi-index with a
// loop over all n qubit positions — the O(n)-per-state indexing cost that
// Section 3.2.1 of the paper contrasts DMAV's constant-time recursive
// indexing against. SetFastPath(true) switches single-qubit gates to an
// O(1) bit-trick split, useful when the state is only a test oracle.
type State struct {
	n    int
	amps []complex128

	threads  int
	fastPath bool
}

// New returns the |0...0> state on n qubits, simulated with the given
// number of worker goroutines (values < 1 select 1).
func New(n, threads int) *State {
	if n < 0 || n > 34 {
		panic(fmt.Sprintf("statevec: unsupported qubit count %d", n))
	}
	if threads < 1 {
		threads = 1
	}
	amps := make([]complex128, 1<<uint(n))
	amps[0] = 1
	return &State{n: n, amps: amps, threads: threads}
}

// FromAmplitudes wraps an existing amplitude array (not copied). The length
// must be a power of two.
func FromAmplitudes(amps []complex128, threads int) *State {
	n := 0
	for 1<<n < len(amps) {
		n++
	}
	if len(amps) == 0 || 1<<n != len(amps) {
		panic(fmt.Sprintf("statevec: length %d is not a power of two", len(amps)))
	}
	if threads < 1 {
		threads = 1
	}
	return &State{n: n, amps: amps, threads: threads}
}

// Qubits returns the number of qubits.
func (s *State) Qubits() int { return s.n }

// Threads returns the worker count.
func (s *State) Threads() int { return s.threads }

// SetThreads changes the worker count.
func (s *State) SetThreads(t int) {
	if t < 1 {
		t = 1
	}
	s.threads = t
}

// Amplitudes returns the backing array (not a copy).
func (s *State) Amplitudes() []complex128 { return s.amps }

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	amps := make([]complex128, len(s.amps))
	copy(amps, s.amps)
	return &State{n: s.n, amps: amps, threads: s.threads}
}

// MemoryBytes returns the size of the amplitude array in bytes.
func (s *State) MemoryBytes() uint64 { return uint64(len(s.amps)) * 16 }

// parallelFor splits [0, total) into s.threads contiguous chunks and runs
// fn on each concurrently.
func (s *State) parallelFor(total uint64, fn func(start, end uint64)) {
	t := s.threads
	if t > int(total) {
		t = int(total)
	}
	if t <= 1 {
		fn(0, total)
		return
	}
	var wg sync.WaitGroup
	chunk := total / uint64(t)
	for w := 0; w < t; w++ {
		start := uint64(w) * chunk
		end := start + chunk
		if w == t-1 {
			end = total
		}
		wg.Add(1)
		go func(start, end uint64) {
			defer wg.Done()
			fn(start, end)
		}(start, end)
	}
	wg.Wait()
}

// SetFastPath toggles the O(1)-indexing fast path for single-qubit gates
// (default off: the faithful Quantum++-style O(n) indexing is used).
func (s *State) SetFastPath(on bool) { s.fastPath = on }

// Apply applies one gate to the state in place.
func (s *State) Apply(g *circuit.Gate) {
	if err := g.Validate(s.n); err != nil {
		panic(err)
	}
	if len(g.Targets) == 1 {
		var u [2][2]complex128
		u[0][0], u[0][1] = g.U[0][0], g.U[0][1]
		u[1][0], u[1][1] = g.U[1][0], g.U[1][1]
		if s.fastPath {
			s.applySingle(u, g.Targets[0], g.Controls)
		} else {
			s.applySingleGeneric(u, g.Targets[0], g.Controls)
		}
		return
	}
	s.applyGeneric(g.U, g.Targets)
}

// applySingleGeneric is the Quantum++-faithful path: every amplitude
// group's full index is rebuilt bit by bit over all n qubit positions, the
// O(n) per-state indexing the paper measures DMAV against.
func (s *State) applySingleGeneric(u [2][2]complex128, target int, controls []circuit.Control) {
	var posCtl, negCtl uint64
	for _, c := range controls {
		if c.Negative {
			negCtl |= 1 << uint(c.Qubit)
		} else {
			posCtl |= 1 << uint(c.Qubit)
		}
	}
	tMask := uint64(1) << uint(target)
	half := uint64(len(s.amps)) / 2
	amps := s.amps
	nq := s.n
	s.parallelFor(half, func(start, end uint64) {
		for k := start; k < end; k++ {
			// Rebuild the full index from the compressed counter with a
			// per-qubit loop, as the generic multi-index machinery of
			// array simulators does.
			var lo uint64
			rem := k
			for q := 0; q < nq; q++ {
				if q == target {
					continue
				}
				if rem&1 == 1 {
					lo |= 1 << uint(q)
				}
				rem >>= 1
			}
			if lo&posCtl != posCtl || lo&negCtl != 0 {
				continue
			}
			hi := lo | tMask
			a0, a1 := amps[lo], amps[hi]
			amps[lo] = u[0][0]*a0 + u[0][1]*a1
			amps[hi] = u[1][0]*a0 + u[1][1]*a1
		}
	})
}

// ApplyCircuit applies every gate of the circuit in order.
func (s *State) ApplyCircuit(c *circuit.Circuit) {
	if c.Qubits != s.n {
		panic(fmt.Sprintf("statevec: circuit on %d qubits applied to %d-qubit state", c.Qubits, s.n))
	}
	for i := range c.Gates {
		s.Apply(&c.Gates[i])
	}
}

// applySingle applies a (possibly controlled) single-qubit gate following
// Equations 2 and 3: each compressed index addresses one
// (a_{..0_k..}, a_{..1_k..}) pair.
func (s *State) applySingle(u [2][2]complex128, target int, controls []circuit.Control) {
	tMask := uint64(1) << uint(target)
	var posCtl, negCtl uint64
	for _, c := range controls {
		if c.Negative {
			negCtl |= 1 << uint(c.Qubit)
		} else {
			posCtl |= 1 << uint(c.Qubit)
		}
	}
	half := uint64(len(s.amps)) / 2
	amps := s.amps
	s.parallelFor(half, func(start, end uint64) {
		for k := start; k < end; k++ {
			// Insert a 0 bit at the target position: this is the O(n)-free
			// split Quantum++-style simulators perform per amplitude pair.
			lo := (k &^ (tMask - 1) << 1) | (k & (tMask - 1))
			if lo&posCtl != posCtl || lo&negCtl != 0 {
				continue
			}
			hi := lo | tMask
			a0, a1 := amps[lo], amps[hi]
			amps[lo] = u[0][0]*a0 + u[0][1]*a1
			amps[hi] = u[1][0]*a0 + u[1][1]*a1
		}
	})
}

// applyGeneric applies an arbitrary k-qubit unitary by gathering the 2^k
// amplitudes of each group, multiplying by U, and scattering back.
func (s *State) applyGeneric(u [][]complex128, targets []int) {
	k := len(targets)
	dim := 1 << uint(k)
	masks := make([]uint64, k)
	for i, q := range targets {
		masks[i] = 1 << uint(q)
	}
	var targetMask uint64
	for _, m := range masks {
		targetMask |= m
	}
	groups := uint64(len(s.amps)) >> uint(k)
	amps := s.amps
	nq := s.n
	s.parallelFor(groups, func(start, end uint64) {
		in := make([]complex128, dim)
		idx := make([]uint64, dim)
		for g := start; g < end; g++ {
			// Expand the compressed index by rebuilding the multi-index
			// bit by bit over all n qubit positions — the O(n) index
			// arithmetic per group characteristic of generic array
			// simulators (Section 3.2.1).
			var base uint64
			rem := g
			for q := 0; q < nq; q++ {
				if targetMask>>uint(q)&1 == 1 {
					continue
				}
				if rem&1 == 1 {
					base |= 1 << uint(q)
				}
				rem >>= 1
			}
			for d := 0; d < dim; d++ {
				off := base
				for b := 0; b < k; b++ {
					if d>>uint(b)&1 == 1 {
						off |= masks[b]
					}
				}
				idx[d] = off
				in[d] = amps[off]
			}
			for r := 0; r < dim; r++ {
				var acc complex128
				row := u[r]
				for c := 0; c < dim; c++ {
					acc += row[c] * in[c]
				}
				amps[idx[r]] = acc
			}
		}
	})
}

// Norm returns the 2-norm of the state.
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.amps {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Probability returns |amps[idx]|^2.
func (s *State) Probability(idx uint64) float64 {
	a := s.amps[idx]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Sample draws one basis state from the measurement distribution.
func (s *State) Sample(rng *rand.Rand) uint64 {
	x := rng.Float64()
	var acc float64
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if x < acc {
			return uint64(i)
		}
	}
	return uint64(len(s.amps) - 1)
}
