package statevec

import (
	"math"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
)

func TestProbabilityOfQubit(t *testing.T) {
	s := New(2, 1)
	h := circuit.H(0)
	s.Apply(&h)
	if p := s.ProbabilityOfQubit(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P(q0)=%v", p)
	}
	if p := s.ProbabilityOfQubit(1); p != 0 {
		t.Fatalf("P(q1)=%v", p)
	}
}

func TestMeasureCollapsesAndNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		s := New(3, 1)
		h0, h2 := circuit.H(0), circuit.H(2)
		cx := circuit.CX(0, 1)
		s.Apply(&h0)
		s.Apply(&cx)
		s.Apply(&h2)
		m := s.MeasureQubit(1, rng)
		if n := s.Norm(); math.Abs(n-1) > 1e-12 {
			t.Fatalf("norm after measurement: %v", n)
		}
		// Qubit 0 must now equal qubit 1's outcome (they were entangled).
		if p := s.ProbabilityOfQubit(0); math.Abs(p-float64(m)) > 1e-12 {
			t.Fatalf("entangled partner not collapsed: P=%v, m=%d", p, m)
		}
		// Qubit 2 must stay in |+>.
		if p := s.ProbabilityOfQubit(2); math.Abs(p-0.5) > 1e-12 {
			t.Fatalf("spectator qubit disturbed: P=%v", p)
		}
	}
}

func TestForceOutcomePanicsOnImpossible(t *testing.T) {
	s := New(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero-probability outcome")
		}
	}()
	s.ForceOutcome(0, 1)
}

func TestForceOutcomeBoundsCheck(t *testing.T) {
	s := New(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range qubit")
		}
	}()
	s.ProbabilityOfQubit(5)
}
