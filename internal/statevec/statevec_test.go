package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
)

const eps = 1e-10

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < eps }

// applyDense is the test oracle: build the full 2^n x 2^n matrix of a gate
// and multiply densely.
func applyDense(n int, g *circuit.Gate, in []complex128) []complex128 {
	dim := 1 << uint(n)
	out := make([]complex128, dim)
	for col := 0; col < dim; col++ {
		if in[col] == 0 {
			continue
		}
		for row := 0; row < dim; row++ {
			out[row] += gateEntry(n, g, row, col) * in[col]
		}
	}
	return out
}

// gateEntry computes entry (row, col) of the full operator of g.
func gateEntry(n int, g *circuit.Gate, row, col int) complex128 {
	// Controls: if any control not satisfied by col, gate acts as identity.
	trig := true
	for _, c := range g.Controls {
		bit := col >> uint(c.Qubit) & 1
		if c.Negative {
			trig = trig && bit == 0
		} else {
			trig = trig && bit == 1
		}
		// Control bits must be unchanged.
		if row>>uint(c.Qubit)&1 != bit {
			return 0
		}
	}
	// Non-gate qubits must agree.
	var tmask int
	for _, q := range g.Targets {
		tmask |= 1 << uint(q)
	}
	var cmask int
	for _, c := range g.Controls {
		cmask |= 1 << uint(c.Qubit)
	}
	if row&^(tmask|cmask) != col&^(tmask|cmask) {
		return 0
	}
	if !trig {
		if row == col {
			return 1
		}
		return 0
	}
	ri, ci := 0, 0
	for l, q := range g.Targets {
		ri |= (row >> uint(q) & 1) << uint(l)
		ci |= (col >> uint(q) & 1) << uint(l)
	}
	return g.U[ri][ci]
}

func randState(rng *rand.Rand, n, threads int) *State {
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	return FromAmplitudes(amps, threads)
}

func TestNewIsZeroState(t *testing.T) {
	s := New(3, 1)
	if !approx(s.Amplitudes()[0], 1) {
		t.Fatal("amp[0] != 1")
	}
	for i := 1; i < 8; i++ {
		if !approx(s.Amplitudes()[i], 0) {
			t.Fatalf("amp[%d] != 0", i)
		}
	}
}

func TestHadamardOnZero(t *testing.T) {
	s := New(1, 1)
	g := circuit.H(0)
	s.Apply(&g)
	want := complex(1/math.Sqrt2, 0)
	if !approx(s.Amplitudes()[0], want) || !approx(s.Amplitudes()[1], want) {
		t.Fatalf("H|0> = %v", s.Amplitudes())
	}
}

func TestBellState(t *testing.T) {
	s := New(2, 1)
	h := circuit.H(0)
	cx := circuit.CX(0, 1)
	s.Apply(&h)
	s.Apply(&cx)
	want := complex(1/math.Sqrt2, 0)
	amps := s.Amplitudes()
	if !approx(amps[0], want) || !approx(amps[3], want) || !approx(amps[1], 0) || !approx(amps[2], 0) {
		t.Fatalf("Bell state = %v", amps)
	}
}

func TestGatesMatchDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 5
	gates := []circuit.Gate{
		circuit.H(2), circuit.X(0), circuit.Y(4), circuit.Z(1),
		circuit.T(3), circuit.RX(0.7, 1), circuit.RY(-0.9, 2), circuit.RZ(2.3, 0),
		circuit.U3(0.3, 1.2, -0.5, 4),
		circuit.CX(0, 3), circuit.CX(4, 1), circuit.CZ(2, 0),
		circuit.CP(0.9, 1, 4), circuit.CCX(0, 2, 4), circuit.CCX(4, 3, 0),
		circuit.SWAP(1, 3), circuit.ISwap(0, 4), circuit.FSim(0.5, 0.3, 2, 4),
		circuit.RZZ(1.1, 0, 2),
		circuit.MCX([]int{0, 1, 2}, 4),
		{Name: "negctl", Targets: []int{2}, Controls: []circuit.Control{{Qubit: 0, Negative: true}},
			U: circuit.X(2).U},
	}
	for _, g := range gates {
		for _, threads := range []int{1, 4} {
			s := randState(rng, n, threads)
			want := applyDense(n, &g, append([]complex128(nil), s.Amplitudes()...))
			s.Apply(&g)
			for i := range want {
				if !approx(s.Amplitudes()[i], want[i]) {
					t.Fatalf("%s threads=%d mismatch at %d: %v vs %v",
						g.Name, threads, i, s.Amplitudes()[i], want[i])
				}
			}
		}
	}
}

func TestThreadCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := circuit.New("rand", 6)
	for i := 0; i < 40; i++ {
		switch rng.Intn(4) {
		case 0:
			c.Append(circuit.H(rng.Intn(6)))
		case 1:
			c.Append(circuit.RY(rng.NormFloat64(), rng.Intn(6)))
		case 2:
			a, b := rng.Intn(6), rng.Intn(6)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		default:
			a, b := rng.Intn(6), rng.Intn(6)
			if a != b {
				c.Append(circuit.FSim(0.4, 0.2, a, b))
			}
		}
	}
	s1 := New(6, 1)
	s1.ApplyCircuit(c)
	for _, threads := range []int{2, 3, 8} {
		s := New(6, threads)
		s.ApplyCircuit(c)
		for i := range s.Amplitudes() {
			if !approx(s.Amplitudes()[i], s1.Amplitudes()[i]) {
				t.Fatalf("threads=%d diverges at %d", threads, i)
			}
		}
	}
}

func TestFastPathMatchesFaithfulPath(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := circuit.New("mix", 6)
	for i := 0; i < 30; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Append(circuit.U3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.Intn(6)))
		case 1:
			a, b := rng.Intn(6), rng.Intn(6)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		default:
			a, b := rng.Intn(6), rng.Intn(6)
			if a != b {
				t3 := 0
				for t3 == a || t3 == b {
					t3++
				}
				c.Append(circuit.CCX(a, b, t3))
			}
		}
	}
	fast := New(6, 2)
	fast.SetFastPath(true)
	fast.ApplyCircuit(c)
	faithful := New(6, 2)
	faithful.ApplyCircuit(c)
	for i := range fast.Amplitudes() {
		if !approx(fast.Amplitudes()[i], faithful.Amplitudes()[i]) {
			t.Fatalf("paths diverge at %d", i)
		}
	}
}

func TestNormPreservedByCircuit(t *testing.T) {
	c := circuit.New("norm", 4)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.T(1), circuit.SWAP(1, 2),
		circuit.CCX(0, 1, 3), circuit.RZZ(0.4, 2, 3))
	s := New(4, 2)
	s.ApplyCircuit(c)
	if n := s.Norm(); math.Abs(n-1) > eps {
		t.Fatalf("norm %v, want 1", n)
	}
}

func TestProbabilityAndSample(t *testing.T) {
	s := New(2, 1)
	h := circuit.H(0)
	s.Apply(&h)
	if p := s.Probability(0); math.Abs(p-0.5) > eps {
		t.Fatalf("P(0) = %v, want 0.5", p)
	}
	rng := rand.New(rand.NewSource(5))
	counts := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		counts[s.Sample(rng)]++
	}
	if counts[1]+counts[0] != 1000 || counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("samples outside support: %v", counts)
	}
	if counts[0] < 400 || counts[0] > 600 {
		t.Fatalf("biased sampling: %v", counts)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(2, 1)
	cl := s.Clone()
	x := circuit.X(0)
	s.Apply(&x)
	if !approx(cl.Amplitudes()[0], 1) {
		t.Fatal("clone mutated by original")
	}
}

func TestApplyValidates(t *testing.T) {
	s := New(2, 1)
	g := circuit.H(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply accepted out-of-range gate")
		}
	}()
	s.Apply(&g)
}

func TestMemoryBytes(t *testing.T) {
	s := New(10, 1)
	if got := s.MemoryBytes(); got != 1024*16 {
		t.Fatalf("MemoryBytes = %d, want %d", got, 1024*16)
	}
}

func TestFromAmplitudesRejectsBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromAmplitudes accepted non-power-of-two")
		}
	}()
	FromAmplitudes(make([]complex128, 6), 1)
}

func BenchmarkApplyH16(b *testing.B) {
	s := New(16, 1)
	g := circuit.H(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(&g)
	}
}

func BenchmarkApplyCX16(b *testing.B) {
	s := New(16, 1)
	g := circuit.CX(3, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(&g)
	}
}
