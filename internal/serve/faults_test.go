package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"flatdd/internal/faults"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// pooledSubmit is the smallest workload whose conversion and DMAV phases
// batch onto the shared scheduler pool (n=12 ⇒ dim 4096, the serial
// cutoff), so injected worker faults deterministically reach it. QV
// scrambles enough that the controller converts early.
func pooledSubmit(seed int64) *serve.SubmitRequest {
	return &serve.SubmitRequest{Circuit: "qv", N: 12, Seed: seed, TimeoutMS: 60_000}
}

func TestFaultWorkerPanicFailsOnlyThatJob(t *testing.T) {
	reg := faults.New(1)
	// One non-transient worker panic: the first pooled task of whichever
	// job reaches the pool first dies; Times caps it there.
	reg.Arm(faults.SchedWorkerPanic, faults.Trigger{Nth: 1, Times: 1})
	h := newTestServer(t, serve.Config{Threads: 4, MaxRetries: -1, Faults: reg})

	a := h.submit(pooledSubmit(1))
	b := h.submit(pooledSubmit(2))
	va := h.waitState(a.ID, serve.StateDone, serve.StateFailed)
	vb := h.waitState(b.ID, serve.StateDone, serve.StateFailed)

	failed, done := va, vb
	if va.State == serve.StateDone {
		failed, done = vb, va
	}
	if failed.State != serve.StateFailed || done.State != serve.StateDone {
		t.Fatalf("states = %q/%q, want exactly one failed and one done", va.State, vb.State)
	}
	if failed.Reason != "engine_fault" {
		t.Fatalf("failed job reason = %q, want engine_fault", failed.Reason)
	}
	if failed.Error == "" {
		t.Fatal("failed job carries no error message")
	}

	// The service is still alive: /healthz reports ok and counts the
	// fault, and a fresh job completes on the same pool.
	health, err := h.c.Health(context.Background())
	if err != nil {
		t.Fatalf("healthz after fault: %v", err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz status = %v after contained fault", health["status"])
	}
	if health["faults"].(float64) < 1 {
		t.Fatalf("healthz faults = %v, want >= 1", health["faults"])
	}
	after := h.submit(pooledSubmit(3))
	if v := h.waitState(after.ID, serve.StateDone, serve.StateFailed); v.State != serve.StateDone {
		t.Fatalf("post-fault job %s: %q (%s)", v.ID, v.State, v.Error)
	}
}

func TestFaultTransientRetrySucceeds(t *testing.T) {
	reg := faults.New(1)
	reg.Arm(faults.SchedWorkerPanic, faults.Trigger{Nth: 1, Times: 1, Transient: true})
	h := newTestServer(t, serve.Config{
		Threads:        4,
		RetryBaseDelay: time.Millisecond,
		Faults:         reg,
	})

	v := h.submit(pooledSubmit(4))
	v = h.waitState(v.ID, serve.StateDone, serve.StateFailed)
	if v.State != serve.StateDone {
		t.Fatalf("retried job ended %q (%s)", v.State, v.Error)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one fault, one clean rerun)", v.Attempts)
	}
	if got := h.srv.Registry().Counter("serve.jobs.retried").Value(); got != 1 {
		t.Fatalf("serve.jobs.retried = %d, want 1", got)
	}
	if got := h.srv.Registry().Counter("serve.jobs.failed").Value(); got != 0 {
		t.Fatalf("serve.jobs.failed = %d, want 0", got)
	}
}

func TestFaultRetriesExhaustedFailsJob(t *testing.T) {
	reg := faults.New(1)
	// Every pooled batch dies (Prob 1 re-fires on each hit): retries burn
	// out and the job fails for good, still classified as an engine fault.
	reg.Arm(faults.SchedWorkerPanic, faults.Trigger{Prob: 1, Transient: true})
	h := newTestServer(t, serve.Config{
		Threads:        4,
		MaxRetries:     1,
		RetryBaseDelay: time.Millisecond,
		Faults:         reg,
	})

	v := h.submit(pooledSubmit(5))
	v = h.waitState(v.ID, serve.StateDone, serve.StateFailed)
	if v.State != serve.StateFailed || v.Reason != "engine_fault" {
		t.Fatalf("job = %q reason %q, want failed/engine_fault", v.State, v.Reason)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (initial + 1 retry)", v.Attempts)
	}
}

func TestFaultNumericalDriftFailsWithoutRetry(t *testing.T) {
	reg := faults.New(1)
	reg.Arm(faults.DMAVComputeCorrupt, faults.Trigger{Nth: 1, Times: 1})
	h := newTestServer(t, serve.Config{
		Threads:        4,
		IntegrityEvery: 1,
		RetryBaseDelay: time.Millisecond,
		Faults:         reg,
	})

	req := pooledSubmit(6)
	req.Cache = "never" // pin the engine on the uncached kernel the hook lives in
	v := h.submit(req)
	v = h.waitState(v.ID, serve.StateDone, serve.StateFailed)
	if v.State != serve.StateFailed || v.Reason != "numerical_drift" {
		t.Fatalf("job = %q reason %q (%s), want failed/numerical_drift", v.State, v.Reason, v.Error)
	}
	if v.Attempts != 1 {
		t.Fatalf("attempts = %d: drift must not be retried", v.Attempts)
	}
}

func TestDegradedJobSurfacedInResultAndHealth(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 4, EngineMemoryBudget: 1})

	// Degradation triggers at the conversion decision, which any QV size
	// reaches; a small register keeps the forced DD-only run fast.
	v := h.submit(&serve.SubmitRequest{Circuit: "qv", N: 8, Seed: 7, TimeoutMS: 60_000})
	v = h.waitState(v.ID, serve.StateDone, serve.StateFailed)
	if v.State != serve.StateDone {
		t.Fatalf("degraded job ended %q (%s)", v.State, v.Error)
	}
	res, err := h.c.Result(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if !res.Stats.Degraded || res.Stats.DegradedReason != "memory_budget" {
		t.Fatalf("stats = %+v, want degraded with memory_budget", res.Stats)
	}
	if res.Stats.ConvertedAtGate != -1 || res.Stats.FinalPhase != "dd" {
		t.Fatalf("degraded job left the DD phase: %+v", res.Stats)
	}
	health, err := h.c.Health(context.Background())
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health["degraded"].(float64) != 1 {
		t.Fatalf("healthz degraded = %v, want 1", health["degraded"])
	}
}

func TestSubmitRejectionsCarryRetryAfterAndReason(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads:      2,
		MaxInFlight:  1,
		QueueDepth:   1,
		MemoryBudget: serve.WorstCaseBytes(16), // admits slowSubmit, rejects 17
	})

	// Occupy the single runner, then the single queue slot. Distinct seeds
	// keep the probes from coalescing onto the queued job.
	running := h.submit(slowSubmit(1))
	h.waitState(running.ID, serve.StateRunning)
	h.submit(slowSubmit(2))

	reject := func(req *serve.SubmitRequest) *client.APIError {
		t.Helper()
		_, err := h.c.Submit(context.Background(), req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("submit = %v, want an *client.APIError rejection", err)
		}
		return apiErr
	}

	e := reject(slowSubmit(3))
	if e.Status != http.StatusTooManyRequests || e.RetryAfter != time.Second || e.Reason != "queue_full" {
		t.Fatalf("queue-full reject: %+v", e)
	}
	e = reject(&serve.SubmitRequest{Circuit: "ghz", N: 17})
	if e.Status != http.StatusRequestEntityTooLarge || e.Reason != "memory_budget" || e.RetryAfter != 0 {
		t.Fatalf("budget reject: %+v", e)
	}

	// The wire still carries whole-second Retry-After headers alongside
	// the envelope's milliseconds.
	body, err := json.Marshal(slowSubmit(4))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("raw queue-full reject: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Unblock and drain, then a draining server advertises a backoff.
	h.cancel(running.ID)
	h.srv.Shutdown()
	e = reject(slowSubmit(5))
	if e.Status != http.StatusServiceUnavailable || e.RetryAfter != 5*time.Second || e.Reason != "draining" {
		t.Fatalf("draining reject: %+v", e)
	}
	if !e.IsRetryable() {
		t.Fatal("draining rejection must be retryable")
	}
}
