package serve

import (
	"net/http"
	"strconv"
)

// Every non-2xx response of the v1 API is one structured envelope:
//
//	{"error": {"code": "...", "message": "...", "reason": "...",
//	           "retry_after_ms": 1000}}
//
// Code is a closed enum keyed by status class (the Code* constants) —
// clients switch on it; Reason is the open, fine-grained cause
// ("queue_full", "tenant_queue_full", "memory_budget", ...) — clients
// log it. RetryAfterMS mirrors the Retry-After header on retryable
// rejections (429/503).

// Error codes of the v1 API, by the status they accompany.
const (
	CodeInvalidRequest  = "invalid_request"   // 400
	CodeNotFound        = "not_found"         // 404
	CodeConflict        = "conflict"          // 409
	CodePayloadTooLarge = "payload_too_large" // 413
	CodeRateLimited     = "rate_limited"      // 429
	CodeInternal        = "internal"          // 500
	CodeUnavailable     = "unavailable"       // 503
)

// ErrorInfo is the body of the error envelope.
type ErrorInfo struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the JSON shape of every non-2xx v1 response.
type ErrorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

// codeForStatus maps an HTTP status to its envelope code.
func codeForStatus(status int) string {
	switch status {
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeRateLimited
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	}
	if status >= 500 {
		return CodeInternal
	}
	return CodeInvalidRequest
}

// WriteError emits the envelope (and the Retry-After header when a
// retry hint is given, in whole seconds as HTTP requires). The code is
// derived from the status, so any handler that fronts this API — the
// server itself or the cluster coordinator relaying a replica's
// rejection — produces the same envelope for the same status.
func WriteError(w http.ResponseWriter, status int, msg, reason string, retryAfterSec int) {
	info := ErrorInfo{
		Code:    codeForStatus(status),
		Message: msg,
		Reason:  reason,
	}
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
		info.RetryAfterMS = int64(retryAfterSec) * 1000
	}
	writeJSON(w, status, ErrorEnvelope{Error: info})
}
