package serve

import (
	"encoding/json"
	"fmt"
	"math/cmplx"
	"net/http"
	"strconv"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/obs"
)

// SubmitRequest is the JSON body of POST /v1/jobs. Exactly one of QASM
// (an OpenQASM 2.0 source) and Circuit (a workloads registry name, with
// N and Seed) must be set.
type SubmitRequest struct {
	QASM    string `json:"qasm,omitempty"`
	Circuit string `json:"circuit,omitempty"`
	N       int    `json:"n,omitempty"`
	Seed    int64  `json:"seed,omitempty"`

	// TimeoutMS is the per-job deadline in milliseconds (0 = server
	// default; capped at the server maximum). The deadline rides on the
	// job's context straight into core.RunContext.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Shots samples this many measurement shots into the result.
	Shots int `json:"shots,omitempty"`
	// Top is how many largest-magnitude amplitudes the result carries
	// (default 8, capped at 1024).
	Top int `json:"top,omitempty"`
	// Cache (auto|always|never) and Fusion (none|dmav|kops) mirror the
	// flatdd CLI flags.
	Cache  string `json:"cache,omitempty"`
	Fusion string `json:"fusion,omitempty"`
}

// JobView is the wire form of a job's status.
type JobView struct {
	ID            string     `json:"id"`
	Trace         string     `json:"trace,omitempty"` // trace ID; key into /debug/jobs?id=
	State         string     `json:"state"`
	Circuit       string     `json:"circuit"`
	Qubits        int        `json:"qubits"`
	Gates         int        `json:"gates"`
	SubmittedAt   time.Time  `json:"submitted_at"`
	StartedAt     *time.Time `json:"started_at,omitempty"`
	FinishedAt    *time.Time `json:"finished_at,omitempty"`
	Error         string     `json:"error,omitempty"`
	Reason        string     `json:"reason,omitempty"`         // failure classification (failed jobs)
	Attempts      int        `json:"attempts,omitempty"`       // >1 when transient faults were retried
	QueuePosition int        `json:"queue_position,omitempty"` // 1-based; queued jobs only
}

// AmpView is one basis state of the result's top-amplitude list.
type AmpView struct {
	Basis       string  `json:"basis"` // zero-padded bitstring
	Probability float64 `json:"probability"`
	Re          float64 `json:"re"`
	Im          float64 `json:"im"`
}

// ResultStats is the engine-statistics slice of a result.
type ResultStats struct {
	Gates           int     `json:"gates"`
	ConvertedAtGate int     `json:"converted_at_gate"` // -1: never left the DD phase
	FinalPhase      string  `json:"final_phase"`       // "dd" | "dmav"
	TotalMS         float64 `json:"total_ms"`
	DDMS            float64 `json:"dd_ms"`
	ConversionMS    float64 `json:"conversion_ms"`
	DMAVMS          float64 `json:"dmav_ms"`
	PeakDDNodes     int     `json:"peak_dd_nodes"`
	MemoryBytes     uint64  `json:"memory_bytes"`
	Fidelity        float64 `json:"fidelity"`
	// Degraded reports that the engine stayed in the (slower but correct)
	// DD phase instead of converting — e.g. the flat working set would
	// have exceeded the engine memory budget.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Resources is the job's per-phase resource-ledger snapshot: CPU time,
	// allocation deltas and memory high-water per engine phase.
	Resources *obs.LedgerSnapshot `json:"resources,omitempty"`
}

// JobResult is the wire form of GET /v1/jobs/{id}/result.
type JobResult struct {
	ID      string         `json:"id"`
	Circuit string         `json:"circuit"`
	Stats   ResultStats    `json:"stats"`
	Top     []AmpView      `json:"top_amplitudes"`
	Shots   map[string]int `json:"shots,omitempty"`
}

// buildResult assembles the result payload from a finished simulator.
func buildResult(j *job, sim *core.Simulator, st core.Stats) *JobResult {
	n := j.circ.Qubits
	top := make([]AmpView, 0, j.opts.top)
	for _, e := range sim.TopAmplitudes(j.opts.top) {
		a := e.Amplitude
		top = append(top, AmpView{
			Basis:       fmt.Sprintf("%0*b", n, e.Index),
			Probability: cmplx.Abs(a) * cmplx.Abs(a),
			Re:          real(a),
			Im:          imag(a),
		})
	}
	phase := core.PhaseDD
	if st.ConvertedAtGate >= 0 {
		phase = core.PhaseDMAV
	}
	return &JobResult{
		ID:      j.id,
		Circuit: j.circ.Name,
		Stats: ResultStats{
			Gates:           st.Gates,
			ConvertedAtGate: st.ConvertedAtGate,
			FinalPhase:      phase.String(),
			TotalMS:         float64(st.TotalTime) / float64(time.Millisecond),
			DDMS:            float64(st.DDTime) / float64(time.Millisecond),
			ConversionMS:    float64(st.ConversionTime) / float64(time.Millisecond),
			DMAVMS:          float64(st.DMAVTime) / float64(time.Millisecond),
			PeakDDNodes:     st.PeakDDNodes,
			MemoryBytes:     st.MemoryBytes,
			Fidelity:        st.Fidelity,
			Degraded:        st.Degraded,
			DegradedReason:  st.DegradedReason,
			Resources:       st.Resources,
		},
		Top:   top,
		Shots: sampleShots(sim, n, j.opts.shots, j.opts.seed),
	}
}

// viewLocked renders a job's status. Caller holds s.mu.
func (s *Server) viewLocked(j *job) JobView {
	v := JobView{
		ID:          j.id,
		Trace:       j.span.Trace().String(),
		State:       j.state,
		Circuit:     j.circ.Name,
		Qubits:      j.circ.Qubits,
		Gates:       j.circ.GateCount(),
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
		Reason:      j.reason,
		Attempts:    j.attempts,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.state == StateQueued {
		pos := 0
		for _, id := range s.order {
			if s.jobs[id].state == StateQueued {
				pos++
			}
			if id == j.id {
				break
			}
		}
		v.QueuePosition = pos
	}
	return v
}

// Handler returns the service's HTTP mux:
//
//	POST   /v1/jobs             — submit (SubmitRequest → JobView, 202)
//	GET    /v1/jobs             — list (?state= filters)
//	GET    /v1/jobs/{id}        — status
//	GET    /v1/jobs/{id}/result — result of a done job
//	DELETE /v1/jobs/{id}        — cancel (POST /v1/jobs/{id}/cancel works too)
//	GET    /healthz             — liveness, capacity, uptime, latency SLOs
//	GET    /debug/jobs          — flight recorder: last N job span trees (?id= for one)
//	GET    /debug/ledger        — memory-admission ledger: budget, reservations,
//	                              observed footprints, per-job resource costs
//	GET    /debug/profiles      — anomaly pprof capture ring (when enabled;
//	                              ?file= downloads one profile)
//	/debug/*                    — metrics, expvar, pprof (internal/obs);
//	                              /debug/metrics?format=prometheus for text exposition
//
// POST /v1/jobs accepts a W3C `traceparent` header and returns one: the
// job's span tree continues the caller's trace (a fresh trace is minted
// otherwise), and the response JobView carries the trace ID.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /debug/jobs", s.flight.Handler())
	mux.HandleFunc("GET /debug/ledger", s.handleLedger)
	if s.profiles != nil {
		mux.Handle("GET /debug/profiles", s.profiles.Handler())
	}
	mux.Handle("/debug/", obs.Mux(s.reg))
	return mux
}

// LedgerEntry is one job's row in the /debug/ledger view.
type LedgerEntry struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Circuit string `json:"circuit"`
	Qubits  int    `json:"qubits"`
	// ReservedBytes is the job's live reservation against the process
	// budget (running jobs only); ObservedBytes its last ledger-reported
	// footprint.
	ReservedBytes uint64 `json:"reserved_bytes,omitempty"`
	ObservedBytes uint64 `json:"observed_bytes,omitempty"`
	// Resources is the per-phase cost breakdown: live for running jobs,
	// frozen at finish for terminal ones.
	Resources *obs.LedgerSnapshot `json:"resources,omitempty"`
}

// handleLedger serves the process-wide memory-admission view: the
// budget, the reserved-vs-observed split, high-water marks, and a
// per-job cost breakdown.
func (s *Server) handleLedger(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		entry LedgerEntry
		led   *obs.ResourceLedger // snapshot off-lock for running jobs
	}
	s.mu.Lock()
	var observed uint64
	rows := make([]row, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		e := LedgerEntry{
			ID:            j.id,
			State:         j.state,
			Circuit:       j.circ.Name,
			Qubits:        j.circ.Qubits,
			ReservedBytes: j.reserve,
			ObservedBytes: j.observed,
			Resources:     j.resources,
		}
		r := row{entry: e}
		if j.state == StateRunning {
			observed += j.observed
			r.led = j.ledger
		}
		rows = append(rows, r)
	}
	body := map[string]any{
		"admission_mode":      s.cfg.AdmissionMode,
		"budget_bytes":        s.cfg.TotalMemoryBudget,
		"reserved_bytes":      s.memReserved,
		"observed_bytes":      observed,
		"headroom_bytes":      s.met.memHeadroom.Value(),
		"observed_peak_bytes": s.met.memPeak.Value(),
		"running_peak":        s.met.runningPeak.Value(),
	}
	s.mu.Unlock()
	// Live snapshots sample runtime/metrics — taken off the server lock.
	entries := make([]LedgerEntry, len(rows))
	for i, r := range rows {
		entries[i] = r.entry
		if r.led != nil {
			snap := r.led.Snapshot()
			entries[i].Resources = &snap
		}
	}
	body["jobs"] = entries
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode before WriteHeader: once the status line is on the wire it
	// cannot be taken back, so a value that fails to marshal must turn
	// into a 500 *before* the success status is committed.
	b, err := json.MarshalIndent(v, "", "  ")
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", "encode response: "+err.Error())
		return
	}
	w.WriteHeader(status)
	w.Write(append(b, '\n')) //nolint:errcheck // best-effort HTTP write
}

type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"` // machine-readable, e.g. "queue_full", "memory_budget"
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

func writeErrorReason(w http.ResponseWriter, status int, msg, reason string) {
	writeJSON(w, status, errorBody{Error: msg, Reason: reason})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.rejectInvalid.Inc()
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, aerr := s.submit(&req, r.Header.Get("traceparent"))
	if aerr != nil {
		if aerr.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(aerr.retryAfter))
		}
		writeErrorReason(w, aerr.status, aerr.msg, aerr.reason)
		return
	}
	s.mu.Lock()
	v := s.viewLocked(j)
	s.mu.Unlock()
	// Hand the caller its trace context back: the trace it sent (now
	// continued by the job's span tree) or the one minted here.
	w.Header().Set("traceparent", obs.TraceParent(j.span.Trace(), j.span.ID()))
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("state")
	s.mu.Lock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if filter != "" && j.state != filter {
			continue
		}
		out = append(out, s.viewLocked(j))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	v := s.viewLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	state, errMsg, res := j.state, j.errMsg, j.result
	s.mu.Unlock()
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, res)
	case StateQueued, StateRunning:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; retry later", state))
	default: // failed | canceled
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s: %s", state, errMsg))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, canceled := s.Cancel(id)
	if !found {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !canceled {
		writeError(w, http.StatusConflict, "job already finished")
		return
	}
	s.mu.Lock()
	v := s.viewLocked(s.jobs[id])
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// latencyView renders one histogram snapshot's tail-latency summary for
// /healthz.
func latencyView(snap obs.HistogramSnapshot) map[string]any {
	return map[string]any{
		"count": snap.Count,
		"p50":   snap.Quantile(0.50),
		"p95":   snap.Quantile(0.95),
		"p99":   snap.Quantile(0.99),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	body := map[string]any{
		"status":   status,
		"uptime_s": time.Since(s.started).Seconds(),
		"queued":   s.countLocked(StateQueued),
		"running":  s.countLocked(StateRunning),
		"degraded": s.met.degraded.Value(),
		"retried":  s.met.retried.Value(),
		"faults":   s.met.faults.Value(),
		"capacity": map[string]any{
			"queue_depth":         s.cfg.QueueDepth,
			"max_inflight":        s.cfg.MaxInFlight,
			"memory_budget_bytes": s.cfg.MemoryBudget,
			"max_qubits":          s.cfg.MaxQubits,
		},
		// Quantiles come from the windowed (recent-traffic) histograms, so
		// a deploy's regression shows within one window instead of being
		// averaged into the process's whole history; the cumulative
		// Prometheus series keep the full history.
		"latency": map[string]any{
			"queue_wait_ns": latencyView(s.wQueueWait.Snapshot()),
			"run_ns":        latencyView(s.wRun.Snapshot()),
			"e2e_ns":        latencyView(s.wLatency.Snapshot()),
		},
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}
