package serve

import (
	"encoding/json"
	"fmt"
	"math/cmplx"
	"net/http"
	"strconv"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/obs"
)

// SubmitRequest is the JSON body of POST /v1/jobs. Exactly one of QASM
// (an OpenQASM 2.0 source) and Circuit (a workloads registry name, with
// N and Seed) must be set.
type SubmitRequest struct {
	QASM    string `json:"qasm,omitempty"`
	Circuit string `json:"circuit,omitempty"`
	N       int    `json:"n,omitempty"`
	Seed    int64  `json:"seed,omitempty"`

	// TimeoutMS is the per-job deadline in milliseconds (0 = server
	// default; capped at the server maximum). The deadline rides on the
	// job's context straight into core.RunContext.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Shots samples this many measurement shots into the result.
	Shots int `json:"shots,omitempty"`
	// Top is how many largest-magnitude amplitudes the result carries
	// (default 8, capped at 1024).
	Top int `json:"top,omitempty"`
	// Cache (auto|always|never) and Fusion (none|dmav|kops) mirror the
	// flatdd CLI flags.
	Cache  string `json:"cache,omitempty"`
	Fusion string `json:"fusion,omitempty"`
}

// JobView is the wire form of a job's status.
type JobView struct {
	ID      string `json:"id"`
	Trace   string `json:"trace,omitempty"` // trace ID; key into /debug/jobs?id=
	State   string `json:"state"`
	Tenant  string `json:"tenant"`          // submitting tenant (X-Tenant header; "anon" default)
	Cache   string `json:"cache,omitempty"` // admission disposition: hit | miss | coalesced
	Circuit string `json:"circuit"`
	Qubits  int    `json:"qubits"`
	Gates   int    `json:"gates"`
	// Replica is the serve replica executing the job. A single-process
	// server leaves it empty; the cluster coordinator fills it in when
	// proxying views, so clients and the bench harness can attribute
	// latency per replica.
	Replica string `json:"replica,omitempty"`

	SubmittedAt   time.Time  `json:"submitted_at"`
	StartedAt     *time.Time `json:"started_at,omitempty"`
	FinishedAt    *time.Time `json:"finished_at,omitempty"`
	Error         string     `json:"error,omitempty"`
	Reason        string     `json:"reason,omitempty"`         // failure classification (failed jobs)
	Attempts      int        `json:"attempts,omitempty"`       // >1 when transient faults were retried
	QueuePosition int        `json:"queue_position,omitempty"` // 1-based estimate; queued non-coalesced jobs only
}

// JobList is the wire form of GET /v1/jobs: one page of job views,
// newest first, plus the cursor of the next page ("" on the last page).
type JobList struct {
	Jobs       []JobView `json:"jobs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

// AmpView is one basis state of the result's top-amplitude list.
type AmpView struct {
	Basis       string  `json:"basis"` // zero-padded bitstring
	Probability float64 `json:"probability"`
	Re          float64 `json:"re"`
	Im          float64 `json:"im"`
}

// ResultStats is the engine-statistics slice of a result.
type ResultStats struct {
	Gates           int     `json:"gates"`
	ConvertedAtGate int     `json:"converted_at_gate"` // -1: never left the DD phase
	FinalPhase      string  `json:"final_phase"`       // "dd" | "dmav"
	TotalMS         float64 `json:"total_ms"`
	DDMS            float64 `json:"dd_ms"`
	ConversionMS    float64 `json:"conversion_ms"`
	DMAVMS          float64 `json:"dmav_ms"`
	PeakDDNodes     int     `json:"peak_dd_nodes"`
	MemoryBytes     uint64  `json:"memory_bytes"`
	Fidelity        float64 `json:"fidelity"`
	// Degraded reports that the engine stayed in the (slower but correct)
	// DD phase instead of converting — e.g. the flat working set would
	// have exceeded the engine memory budget.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Resources is the job's per-phase resource-ledger snapshot: CPU time,
	// allocation deltas and memory high-water per engine phase.
	Resources *obs.LedgerSnapshot `json:"resources,omitempty"`
}

// JobResult is the wire form of GET /v1/jobs/{id}/result.
type JobResult struct {
	ID      string         `json:"id"`
	Circuit string         `json:"circuit"`
	Tenant  string         `json:"tenant"`
	Cache   string         `json:"cache,omitempty"` // hit | miss | coalesced
	Stats   ResultStats    `json:"stats"`
	Top     []AmpView      `json:"top_amplitudes"`
	Shots   map[string]int `json:"shots,omitempty"`
}

// resultStats renders the engine statistics of a finished run.
func resultStats(st core.Stats) ResultStats {
	phase := core.PhaseDD
	if st.ConvertedAtGate >= 0 {
		phase = core.PhaseDMAV
	}
	return ResultStats{
		Gates:           st.Gates,
		ConvertedAtGate: st.ConvertedAtGate,
		FinalPhase:      phase.String(),
		TotalMS:         float64(st.TotalTime) / float64(time.Millisecond),
		DDMS:            float64(st.DDTime) / float64(time.Millisecond),
		ConversionMS:    float64(st.ConversionTime) / float64(time.Millisecond),
		DMAVMS:          float64(st.DMAVTime) / float64(time.Millisecond),
		PeakDDNodes:     st.PeakDDNodes,
		MemoryBytes:     st.MemoryBytes,
		Fidelity:        st.Fidelity,
		Degraded:        st.Degraded,
		DegradedReason:  st.DegradedReason,
		Resources:       st.Resources,
	}
}

// buildResult assembles the result payload from a finished simulator.
func buildResult(j *job, sim *core.Simulator, st core.Stats) *JobResult {
	n := j.circ.Qubits
	top := make([]AmpView, 0, j.opts.top)
	for _, e := range sim.TopAmplitudes(j.opts.top) {
		a := e.Amplitude
		top = append(top, AmpView{
			Basis:       fmt.Sprintf("%0*b", n, e.Index),
			Probability: cmplx.Abs(a) * cmplx.Abs(a),
			Re:          real(a),
			Im:          imag(a),
		})
	}
	return &JobResult{
		ID:      j.id,
		Circuit: j.circ.Name,
		Tenant:  j.tenant,
		Cache:   j.cacheStatus,
		Stats:   resultStats(st),
		Top:     top,
		Shots:   sampleShots(sim, n, j.opts.shots, j.opts.seed),
	}
}

// viewLocked renders a job's status. Caller holds s.mu.
func (s *Server) viewLocked(j *job) JobView {
	v := JobView{
		ID:          j.id,
		Trace:       j.span.Trace().String(),
		State:       j.state,
		Tenant:      j.tenant,
		Cache:       j.cacheStatus,
		Circuit:     j.circ.Name,
		Qubits:      j.circ.Qubits,
		Gates:       j.circ.GateCount(),
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
		Reason:      j.reason,
		Attempts:    j.attempts,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	// Queue position is a submission-order estimate: the weighted-fair
	// scheduler may dispatch across tenants in a different order.
	// Coalesced subscribers are not in the queue at all.
	if j.state == StateQueued && j.cacheStatus != CacheCoalesced {
		pos := 0
		for _, id := range s.order {
			jj := s.jobs[id]
			if jj.state == StateQueued && jj.cacheStatus != CacheCoalesced {
				pos++
			}
			if id == j.id {
				break
			}
		}
		v.QueuePosition = pos
	}
	return v
}

// Handler returns the service's HTTP mux:
//
//	POST   /v1/jobs             — submit (SubmitRequest → JobView; 202, or
//	                              200 replaying an Idempotency-Key)
//	GET    /v1/jobs             — list (JobList, newest first; ?state= and
//	                              ?tenant= filter, ?limit= and ?cursor= paginate)
//	GET    /v1/jobs/{id}        — status
//	GET    /v1/jobs/{id}/result — result of a done job
//	DELETE /v1/jobs/{id}        — cancel (POST /v1/jobs/{id}/cancel works too)
//	GET    /v1/tenants          — per-tenant accounting: queue/running state,
//	                              quotas, cache hit/coalesce/miss counts
//	GET    /healthz             — liveness, capacity, uptime, latency SLOs,
//	                              result-cache occupancy
//	GET    /debug/jobs          — flight recorder: last N job span trees (?id= for one)
//	GET    /debug/ledger        — memory-admission ledger: budget, reservations,
//	                              observed footprints, per-job resource costs
//	GET    /debug/profiles      — anomaly pprof capture ring (when enabled;
//	                              ?file= downloads one profile)
//	/debug/*                    — metrics, expvar, pprof (internal/obs);
//	                              /debug/metrics?format=prometheus for text exposition
//
// Tenancy: requests carry their tenant in the X-Tenant header (default
// "anon"). POST /v1/jobs additionally accepts an Idempotency-Key header —
// resubmitting with the same key returns the original job (200, header
// Idempotency-Replayed: true) instead of admitting a duplicate, and a
// key reuse with a different request body is a 409/idempotency_mismatch.
//
// Every non-2xx response body is the structured envelope of errors.go:
// {"error":{"code","message","reason","retry_after_ms"}} with code one of
// invalid_request (400), not_found (404), conflict (409),
// payload_too_large (413), rate_limited (429), internal (500),
// unavailable (503).
//
// POST /v1/jobs accepts a W3C `traceparent` header and returns one: the
// job's span tree continues the caller's trace (a fresh trace is minted
// otherwise), and the response JobView carries the trace ID.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /debug/jobs", s.flight.Handler())
	mux.HandleFunc("GET /debug/ledger", s.handleLedger)
	if s.profiles != nil {
		mux.Handle("GET /debug/profiles", s.profiles.Handler())
	}
	mux.Handle("/debug/", obs.Mux(s.reg))
	return mux
}

// LedgerEntry is one job's row in the /debug/ledger view.
type LedgerEntry struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Circuit string `json:"circuit"`
	Qubits  int    `json:"qubits"`
	// ReservedBytes is the job's live reservation against the process
	// budget (running jobs only); ObservedBytes its last ledger-reported
	// footprint.
	ReservedBytes uint64 `json:"reserved_bytes,omitempty"`
	ObservedBytes uint64 `json:"observed_bytes,omitempty"`
	// Resources is the per-phase cost breakdown: live for running jobs,
	// frozen at finish for terminal ones.
	Resources *obs.LedgerSnapshot `json:"resources,omitempty"`
}

// handleLedger serves the process-wide memory-admission view: the
// budget, the reserved-vs-observed split, high-water marks, and a
// per-job cost breakdown.
func (s *Server) handleLedger(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		entry LedgerEntry
		led   *obs.ResourceLedger // snapshot off-lock for running jobs
	}
	s.mu.Lock()
	var observed uint64
	rows := make([]row, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		e := LedgerEntry{
			ID:            j.id,
			State:         j.state,
			Circuit:       j.circ.Name,
			Qubits:        j.circ.Qubits,
			ReservedBytes: j.reserve,
			ObservedBytes: j.observed,
			Resources:     j.resources,
		}
		r := row{entry: e}
		if j.state == StateRunning {
			observed += j.observed
			r.led = j.ledger
		}
		rows = append(rows, r)
	}
	body := map[string]any{
		"admission_mode":      s.cfg.AdmissionMode,
		"budget_bytes":        s.cfg.TotalMemoryBudget,
		"reserved_bytes":      s.memReserved,
		"observed_bytes":      observed,
		"headroom_bytes":      s.met.memHeadroom.Value(),
		"observed_peak_bytes": s.met.memPeak.Value(),
		"running_peak":        s.met.runningPeak.Value(),
	}
	s.mu.Unlock()
	// Live snapshots sample runtime/metrics — taken off the server lock.
	entries := make([]LedgerEntry, len(rows))
	for i, r := range rows {
		entries[i] = r.entry
		if r.led != nil {
			snap := r.led.Snapshot()
			entries[i].Resources = &snap
		}
	}
	body["jobs"] = entries
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode before WriteHeader: once the status line is on the wire it
	// cannot be taken back, so a value that fails to marshal must turn
	// into a 500 *before* the success status is committed.
	b, err := json.MarshalIndent(v, "", "  ")
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err != nil {
		// Hand-rolled envelope: ErrorEnvelope itself always marshals, but
		// this path must not recurse into the encoder that just failed.
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": {\n    \"code\": %q,\n    \"message\": %q\n  }\n}\n",
			CodeInternal, "encode response: "+err.Error())
		return
	}
	w.WriteHeader(status)
	w.Write(append(b, '\n')) //nolint:errcheck // best-effort HTTP write
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, terr := tenantFromRequest(r)
	if terr != nil {
		s.met.rejectInvalid.Inc()
		WriteError(w, http.StatusBadRequest, terr.Error(), "invalid_tenant", 0)
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.rejectInvalid.Inc()
		WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error(), "invalid", 0)
		return
	}
	j, replayed, aerr := s.submit(&req, r.Header.Get("traceparent"), tenant,
		r.Header.Get("Idempotency-Key"))
	if aerr != nil {
		WriteError(w, aerr.status, aerr.msg, aerr.reason, aerr.retryAfter)
		return
	}
	s.mu.Lock()
	v := s.viewLocked(j)
	s.mu.Unlock()
	// Hand the caller its trace context back: the trace it sent (now
	// continued by the job's span tree) or the one minted here.
	w.Header().Set("traceparent", obs.TraceParent(j.span.Trace(), j.span.ID()))
	status := http.StatusAccepted
	if replayed {
		// An idempotent replay did not admit anything new: 200, flagged.
		w.Header().Set("Idempotency-Replayed", "true")
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

// listDefaultLimit and listMaxLimit bound GET /v1/jobs pages; before
// pagination the endpoint returned the server's entire (append-only) job
// index on every call.
const (
	listDefaultLimit = 100
	listMaxLimit     = 1000
)

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stateFilter := q.Get("state")
	tenantFilter := q.Get("tenant")
	limit := listDefaultLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			WriteError(w, http.StatusBadRequest,
				"limit must be a positive integer", "invalid", 0)
			return
		}
		limit = n
		if limit > listMaxLimit {
			limit = listMaxLimit
		}
	}
	cursor := q.Get("cursor")

	s.mu.Lock()
	// Newest first over the append-only submission order; the cursor is
	// the last job id of the previous page, so a page boundary stays
	// stable while new jobs arrive (they appear before the cursor and are
	// simply not part of an older listing's continuation).
	start := len(s.order) - 1
	if cursor != "" {
		start = -1
		for i := len(s.order) - 1; i >= 0; i-- {
			if s.order[i] == cursor {
				start = i - 1
				break
			}
		}
		if start == -1 && (len(s.order) == 0 || s.order[0] != cursor) {
			s.mu.Unlock()
			WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown cursor %q", cursor), "invalid_cursor", 0)
			return
		}
	}
	out := JobList{Jobs: []JobView{}}
	for i := start; i >= 0; i-- {
		j := s.jobs[s.order[i]]
		if stateFilter != "" && j.state != stateFilter {
			continue
		}
		if tenantFilter != "" && j.tenant != tenantFilter {
			continue
		}
		if len(out.Jobs) == limit {
			// One more match exists beyond the page: resume after the last
			// job actually returned.
			out.NextCursor = out.Jobs[len(out.Jobs)-1].ID
			break
		}
		out.Jobs = append(out.Jobs, s.viewLocked(j))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleTenants serves the per-tenant accounting view.
func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.Tenants()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		WriteError(w, http.StatusNotFound, "no such job", "unknown_job", 0)
		return
	}
	v := s.viewLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		WriteError(w, http.StatusNotFound, "no such job", "unknown_job", 0)
		return
	}
	state, errMsg, res := j.state, j.errMsg, j.result
	s.mu.Unlock()
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, res)
	case StateQueued, StateRunning:
		WriteError(w, http.StatusConflict,
			fmt.Sprintf("job is %s; retry later", state), "not_ready", 1)
	default: // failed | canceled
		WriteError(w, http.StatusConflict,
			fmt.Sprintf("job %s: %s", state, errMsg), "job_"+state, 0)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, canceled := s.Cancel(id)
	if !found {
		WriteError(w, http.StatusNotFound, "no such job", "unknown_job", 0)
		return
	}
	if !canceled {
		WriteError(w, http.StatusConflict, "job already finished", "job_finished", 0)
		return
	}
	s.mu.Lock()
	v := s.viewLocked(s.jobs[id])
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// latencyView renders one histogram snapshot's tail-latency summary for
// /healthz.
func latencyView(snap obs.HistogramSnapshot) map[string]any {
	return map[string]any{
		"count": snap.Count,
		"p50":   snap.Quantile(0.50),
		"p95":   snap.Quantile(0.95),
		"p99":   snap.Quantile(0.99),
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	hits, misses := s.met.cacheHits.Value(), s.met.cacheMisses.Value()
	coal := s.met.cacheCoalesced.Value()
	hitRate := 0.0
	if total := hits + coal + misses; total > 0 {
		// Coalesced submissions count as absorbed work: they did not run
		// the engine either.
		hitRate = float64(hits+coal) / float64(total)
	}
	entries, bytes, evictions := s.cache.Stats()
	body := map[string]any{
		"status":   status,
		"uptime_s": time.Since(s.started).Seconds(),
		"queued":   s.countLocked(StateQueued),
		"running":  s.countLocked(StateRunning),
		"degraded": s.met.degraded.Value(),
		"retried":  s.met.retried.Value(),
		"faults":   s.met.faults.Value(),
		"tenants":  len(s.tenants),
		"capacity": map[string]any{
			"queue_depth":         s.cfg.QueueDepth,
			"max_inflight":        s.cfg.MaxInFlight,
			"memory_budget_bytes": s.cfg.MemoryBudget,
			"max_qubits":          s.cfg.MaxQubits,
			"tenant_max_queued":   s.cfg.TenantMaxQueued,
			"tenant_max_inflight": s.cfg.TenantMaxInFlight,
		},
		"cache": map[string]any{
			"enabled":      s.cache.enabled(),
			"budget_bytes": s.cfg.ResultCacheBudget,
			"entries":      entries,
			"bytes":        bytes,
			"evictions":    evictions,
			"hits":         hits,
			"misses":       misses,
			"coalesced":    coal,
			"hit_rate":     hitRate,
		},
		// Quantiles come from the windowed (recent-traffic) histograms, so
		// a deploy's regression shows within one window instead of being
		// averaged into the process's whole history; the cumulative
		// Prometheus series keep the full history.
		"latency": map[string]any{
			"queue_wait_ns": latencyView(s.wQueueWait.Snapshot()),
			"run_ns":        latencyView(s.wRun.Snapshot()),
			"e2e_ns":        latencyView(s.wLatency.Snapshot()),
		},
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}
