// Package serve implements a long-lived, multi-tenant simulation job
// service on top of the FlatDD engine: circuits are submitted over
// HTTP/JSON, admitted against memory and per-tenant quotas, scheduled by
// a weighted-fair queue, executed on one shared work-stealing scheduler
// pool, and driven through the context-first core.RunContext API so
// per-job deadlines and client cancellations propagate into the engine
// within one gate.
//
// The lifecycle is queued → running → done | failed | canceled. Admission
// control happens at submit time: a job whose 2^n-amplitude flat-array
// worst case (WorstCaseBytes) exceeds the configured budget is rejected
// with 413, a full queue (global or per-tenant) rejects with 429, and a
// draining server with 503. Before a job is queued at all, the service
// consults the canonical-circuit result cache: a submission whose
// (circuit hash, engine options) key matches a cached outcome completes
// instantly without touching the engine, and one that matches a
// simulation already in flight coalesces onto it — one engine run, many
// subscribers, each with its own top-amplitude prefix and seeded shot
// stream (DESIGN.md §13). Everything is instrumented through
// internal/obs under the serve.* metric names (DESIGN.md §8) and the
// /debug/metrics + pprof mux of the observability layer is mounted on
// the same handler.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"flatdd/internal/circuit"
	"flatdd/internal/core"
	"flatdd/internal/dmav"
	"flatdd/internal/faults"
	"flatdd/internal/obs"
	"flatdd/internal/qasm"
	"flatdd/internal/sched"
	"flatdd/internal/workloads"
)

// Job states as reported by the status and list endpoints.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Cache dispositions of an admitted job (JobView.Cache): a hit was
// served from the result cache without running the engine, a coalesced
// job subscribed to an in-flight simulation of the same circuit, a miss
// ran (or will run) the engine itself.
const (
	CacheHit       = "hit"
	CacheMiss      = "miss"
	CacheCoalesced = "coalesced"
)

// maxSimQubits is the engine's hard register-size ceiling (the DMAV
// engine rejects larger registers); Config.MaxQubits is clamped to it.
const maxSimQubits = 34

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the default documented on it.
type Config struct {
	// Threads is the worker count of the shared scheduler pool all jobs
	// run on (default: GOMAXPROCS). The pool is authoritative for the
	// engine's cost model — see core.Options.Pool.
	Threads int
	// Pool, when non-nil, is used instead of creating one (the caller
	// keeps ownership of its lifetime; Threads is then ignored).
	Pool *sched.Pool
	// QueueDepth caps the number of admitted-but-not-yet-running jobs
	// (default 64). A full queue rejects submissions with 429.
	QueueDepth int
	// MaxInFlight caps concurrently executing jobs (default 2). Each
	// in-flight job owns up to WorstCaseBytes of flat arrays, so the
	// sustained worst case is MaxInFlight·MemoryBudget.
	MaxInFlight int
	// MemoryBudget is the per-job admission budget in bytes (default
	// 4 GiB): a job with WorstCaseBytes(qubits) > MemoryBudget is
	// rejected with 413 before it is queued.
	MemoryBudget uint64
	// MaxQubits caps the register size regardless of budget (default 30,
	// clamped to the engine ceiling of 34).
	MaxQubits int
	// DefaultTimeout is the per-job deadline when the submission does not
	// name one (default 2m); MaxTimeout caps requested deadlines
	// (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainGrace is how long Shutdown waits for in-flight jobs before
	// canceling their contexts (default 10s).
	DrainGrace time.Duration
	// MaxBodyBytes caps submission bodies (default 1 MiB — QASM sources
	// beyond that should be batch jobs, not service requests).
	MaxBodyBytes int64
	// Metrics is the registry jobs and the service instrument (default: a
	// fresh registry; it also backs the handler's /debug/metrics).
	Metrics *obs.Registry
	// EngineMemoryBudget, when positive, is handed to every job as
	// core.Options.MemoryBudget: a job whose flat-array working set would
	// exceed it completes DD-only in degraded mode (correct but slower)
	// instead of allocating arrays the host cannot afford. This is the
	// graceful-degradation lever; MemoryBudget above is the hard
	// admission reject.
	EngineMemoryBudget uint64
	// MaxRetries is how many times a job that fails with a transient
	// engine fault is re-queued (default 2; negative disables retries).
	MaxRetries int
	// RetryBaseDelay and RetryMaxDelay shape the retry backoff: attempt
	// k waits RetryBaseDelay·2^(k−1), capped at RetryMaxDelay, plus up to
	// 50% jitter (defaults 50ms and 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// IntegrityEvery is the per-job numerical-integrity sweep cadence in
	// DMAV gates (core.Options.IntegrityEvery; 0 disables).
	IntegrityEvery int
	// Faults, when non-nil, arms fault injection on the shared pool and
	// every job's engine (tests only; production servers leave it nil).
	Faults *faults.Registry
	// TraceJSONL, when non-nil, receives the span stream (and each job's
	// per-gate engine events) as JSON Lines on one shared writer. Spans
	// are always collected in memory for the flight recorder; this sink
	// additionally persists them. The writer is flushed as jobs finish;
	// closing the underlying file stays the caller's job.
	TraceJSONL io.Writer
	// FlightRecorderSize is the per-ring capacity of the job flight
	// recorder at /debug/jobs (default 64): the last N job span trees,
	// with failed/canceled/degraded/retried jobs pinned in a separate
	// ring so healthy traffic cannot evict the interesting traces.
	FlightRecorderSize int
	// Logger receives structured job-lifecycle logs keyed by job and
	// trace ID (default: discard).
	Logger *slog.Logger
	// AdmissionMode selects how dispatched jobs count against
	// TotalMemoryBudget: AdmissionWorstCase (the default) holds each
	// job's static WorstCaseBytes for its whole run; AdmissionLedger
	// reserves the same worst case at dispatch but releases the
	// reservation down to the job's observed/projected footprint as soon
	// as its resource ledger publishes a projection (end of the fuse
	// phase), so a burst of jobs whose real footprint undershoots the
	// worst case achieves higher admitted concurrency under the same
	// budget.
	AdmissionMode string
	// TotalMemoryBudget is the process-wide concurrent-memory budget the
	// dispatch gate reserves against (default MaxInFlight·MemoryBudget —
	// exactly the capacity the pre-ledger server implicitly had, so the
	// default changes nothing).
	TotalMemoryBudget uint64
	// SLOTarget, when positive, is the per-job run-time SLO used by the
	// anomaly trigger: a job whose run exceeds it captures a pprof
	// profile into the ring (rate-limited). When zero, the threshold is
	// derived from the windowed run-latency p99 (3× p99, once the window
	// holds at least 20 samples).
	SLOTarget time.Duration
	// LatencyWindow is the rotation window of the /healthz latency
	// quantile histograms (default 5m). The cumulative Prometheus series
	// are unaffected.
	LatencyWindow time.Duration
	// ProfileDir, when non-empty, enables anomaly-triggered pprof
	// capture: SLO breaches, degradations, retries and failures write
	// CPU+heap profiles into a bounded on-disk ring in this directory,
	// served at /debug/profiles.
	ProfileDir string
	// ProfileCapacity is how many captures the ring retains (default 8);
	// ProfileWindow is the minimum spacing between captures (default 5m,
	// the storm rate limit); ProfileCPUDuration is the CPU profile
	// length (default 250ms).
	ProfileCapacity    int
	ProfileWindow      time.Duration
	ProfileCPUDuration time.Duration

	// ResultCacheBudget is the total byte budget of the canonical-circuit
	// result cache (default 64 MiB; negative disables caching and
	// in-flight coalescing entirely). Entries are evicted LRU.
	ResultCacheBudget int64
	// ResultCacheMaxEntry caps one entry's footprint (default 16 MiB).
	// The dominant cost is the 8·2^n-byte cumulative distribution that
	// backs cached shot sampling, so this cap decides up to which
	// register size cache hits can serve shots>0 requests (n ≤ 21 at the
	// default).
	ResultCacheMaxEntry int64
	// TenantMaxQueued caps one tenant's queued jobs (default: QueueDepth,
	// i.e. no per-tenant constraint beyond the global one). Submissions
	// over the cap reject with 429/tenant_queue_full.
	TenantMaxQueued int
	// TenantMaxInFlight caps one tenant's concurrently running jobs
	// (default: MaxInFlight). The fair queue skips a tenant at its cap,
	// dispatching other tenants' work instead.
	TenantMaxInFlight int
	// TenantWeights assigns weighted-fair scheduling weights by tenant
	// name (default 1 each): a weight-4 tenant is dispatched 4× as often
	// as a weight-1 tenant while both have work queued.
	TenantWeights map[string]int
}

// Admission modes (Config.AdmissionMode, the -admission flag).
const (
	AdmissionWorstCase = "worstcase"
	AdmissionLedger    = "ledger"
)

func (c Config) withDefaults() Config {
	if c.Threads < 1 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 2
	}
	if c.MemoryBudget == 0 {
		c.MemoryBudget = 4 << 30
	}
	if c.MaxQubits < 1 {
		c.MaxQubits = 30
	}
	if c.MaxQubits > maxSimQubits {
		c.MaxQubits = maxSimQubits
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Metrics == nil {
		c.Metrics = obs.New()
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.FlightRecorderSize < 1 {
		c.FlightRecorderSize = 64
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.AdmissionMode == "" {
		c.AdmissionMode = AdmissionWorstCase
	}
	if c.TotalMemoryBudget == 0 {
		c.TotalMemoryBudget = uint64(c.MaxInFlight) * c.MemoryBudget
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 5 * time.Minute
	}
	switch {
	case c.ResultCacheBudget == 0:
		c.ResultCacheBudget = 64 << 20
	case c.ResultCacheBudget < 0:
		c.ResultCacheBudget = 0 // disabled
	}
	if c.ResultCacheMaxEntry <= 0 {
		c.ResultCacheMaxEntry = 16 << 20
	}
	if c.TenantMaxQueued < 1 {
		c.TenantMaxQueued = c.QueueDepth
	}
	if c.TenantMaxInFlight < 1 {
		c.TenantMaxInFlight = c.MaxInFlight
	}
	return c
}

// WorstCaseBytes is the admission-control memory formula: the flat-array
// phase of an n-qubit job allocates a 2^n-amplitude state vector and a
// scratch vector (16 B per complex128), and the cached DMAV path
// typically one shared partial-output buffer on top — 3·16·2^n in total.
// The DD-phase node pool is bounded by the same conversion threshold and
// is small against the arrays, so it is folded into the factor.
func WorstCaseBytes(n int) uint64 { return 48 << uint(n) }

// job is the internal record of one submission. All mutable fields are
// guarded by Server.mu.
type job struct {
	id   string
	circ *circuit.Circuit
	opts runOptions

	// tenant is the submitting tenant (DefaultTenant when the request
	// carried no X-Tenant header); key is the job's result-cache identity
	// (canonical circuit hash + engine options); cacheStatus is the
	// admission disposition (CacheHit/CacheMiss/CacheCoalesced).
	tenant      string
	key         cacheKey
	cacheStatus string
	idemKey     string // Idempotency-Key the job was submitted under ("" if none)

	state     string
	errMsg    string
	reason    string // structured failure class (failureReason) on failed jobs
	attempts  int    // execution attempts started (retries increment it)
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // non-nil while running
	result    *JobResult

	// span is the job's root span (always non-nil: the server's tracer
	// collects in memory even without a JSONL sink); queuedSpan is the
	// open "queued" child while the job sits in the FIFO.
	span       *obs.Span
	queuedSpan *obs.Span

	// reserve is the job's live memory reservation against
	// TotalMemoryBudget (0 when not dispatched); observed is the last
	// footprint the job's ledger reported. ledger is the per-attempt
	// resource ledger; resources its frozen snapshot at finish.
	reserve   uint64
	observed  uint64
	ledger    *obs.ResourceLedger
	resources *obs.LedgerSnapshot
}

// runOptions is the normalized execution request of one job.
type runOptions struct {
	timeout time.Duration
	cache   dmav.Mode
	fusion  core.FusionMode
	k       int
	top     int
	shots   int
	seed    int64
}

// serveMetrics holds the service's registry handles (names in DESIGN.md
// §8).
type serveMetrics struct {
	submitted     *obs.Counter
	completed     *obs.Counter
	failed        *obs.Counter
	canceled      *obs.Counter
	rejectBudget  *obs.Counter
	rejectQueue   *obs.Counter
	rejectInvalid *obs.Counter
	retried       *obs.Counter
	degraded      *obs.Counter
	faults        *obs.Counter
	queueDepth    *obs.Gauge
	running       *obs.Gauge
	runningPeak   *obs.Gauge
	memReserved   *obs.Gauge
	memObserved   *obs.Gauge
	memHeadroom   *obs.Gauge
	memPeak       *obs.Gauge // high-water of observed footprint
	profiles      *obs.Counter
	latencyNs     *obs.Histogram
	queueWaitNs   *obs.Histogram
	runNs         *obs.Histogram

	// Result-cache and multi-tenant instrumentation. engineRuns counts
	// actual engine executions; submitted − engineRuns is the work the
	// cache and coalescing absorbed. rejectQuota counts per-tenant quota
	// rejections (tenant_queue_full, coalesce_limit).
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheCoalesced *obs.Counter
	cacheEntries   *obs.Gauge
	cacheBytes     *obs.Gauge
	cacheEvictions *obs.Gauge
	engineRuns     *obs.Counter
	rejectQuota    *obs.Counter
}

// Server is the simulation job service. Create with New, expose
// Handler() over HTTP, stop with Shutdown.
type Server struct {
	cfg     Config
	pool    *sched.Pool
	ownPool bool
	reg     *obs.Registry
	met     serveMetrics
	log     *slog.Logger
	started time.Time

	// Tracing: tw is the shared JSONL sink (nil without Config.TraceJSONL;
	// spans are still collected in memory), tracer mints the per-job span
	// trees, flight retains the last N of them for /debug/jobs.
	tw     *obs.TraceWriter
	tracer *obs.Tracer
	flight *obs.FlightRecorder

	// Windowed latency histograms back the /healthz quantiles (recent
	// traffic); the cumulative serveMetrics histograms stay for
	// Prometheus, whose rate() does its own windowing.
	wLatency   *obs.WindowedHistogram
	wQueueWait *obs.WindowedHistogram
	wRun       *obs.WindowedHistogram

	// profiles is the anomaly capture ring (nil without Config.ProfileDir).
	profiles *obs.ProfileRing

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for the list endpoint
	nextID   int
	draining bool

	// fq is the weighted-fair dispatch queue (replacing the former global
	// FIFO channel); cache the canonical-circuit result cache; flights
	// the in-progress simulations open for coalescing, keyed like the
	// cache; tenants the per-tenant accounting; idem the Idempotency-Key
	// replay index ("tenant\x00key" → job id). All but fq and cache (which
	// have their own locks and never call back out) are guarded by mu.
	fq      *fairQueue
	cache   *resultCache
	flights map[cacheKey]*flight
	tenants map[string]*tenantStats
	idem    map[string]string

	// memReserved is the sum of in-flight reservations against
	// TotalMemoryBudget; memCond is signaled whenever a reservation
	// shrinks (or a waiter must re-check the world, e.g. on drain).
	// Guarded by mu.
	memReserved uint64
	memCond     *sync.Cond

	runWG sync.WaitGroup // the MaxInFlight runner goroutines
}

// New starts a Server: the shared pool is created (unless injected) and
// MaxInFlight runner goroutines begin waiting on the queue.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		log:     cfg.Logger,
		started: time.Now(),
		jobs:    make(map[string]*job),
		flight:  obs.NewFlightRecorder(cfg.FlightRecorderSize),
		cache:   newResultCache(cfg.ResultCacheBudget, cfg.ResultCacheMaxEntry),
		flights: make(map[cacheKey]*flight),
		tenants: make(map[string]*tenantStats),
		idem:    make(map[string]string),
	}
	if cfg.TraceJSONL != nil {
		s.tw = obs.NewTraceWriter(cfg.TraceJSONL)
	}
	s.tracer = obs.NewTracer(s.tw)
	s.fq = newFairQueue(cfg.TenantMaxInFlight, s.tenantWeight)
	if cfg.Pool != nil {
		s.pool = cfg.Pool
	} else {
		s.pool = sched.New(cfg.Threads)
		s.ownPool = true
	}
	s.pool.SetMetrics(s.reg)
	if cfg.Faults != nil {
		// Only arm, never clear: an injected pool may carry its owner's
		// fault wiring.
		s.pool.SetFaults(cfg.Faults)
	}
	r := s.reg
	s.met = serveMetrics{
		submitted:     r.Counter("serve.jobs.submitted"),
		completed:     r.Counter("serve.jobs.completed"),
		failed:        r.Counter("serve.jobs.failed"),
		canceled:      r.Counter("serve.jobs.canceled"),
		rejectBudget:  r.Counter("serve.jobs.rejected.budget"),
		rejectQueue:   r.Counter("serve.jobs.rejected.queue_full"),
		rejectInvalid: r.Counter("serve.jobs.rejected.invalid"),
		retried:       r.Counter("serve.jobs.retried"),
		degraded:      r.Counter("serve.jobs.degraded"),
		faults:        r.Counter("serve.jobs.faults"),
		queueDepth:    r.Gauge("serve.queue.depth"),
		running:       r.Gauge("serve.jobs.running"),
		runningPeak:   r.Gauge("serve.jobs.running.peak"),
		memReserved:   r.Gauge("serve.mem.reserved"),
		memObserved:   r.Gauge("serve.mem.observed"),
		memHeadroom:   r.Gauge("serve.mem.headroom"),
		memPeak:       r.Gauge("serve.mem.observed.peak"),
		profiles:      r.Counter("serve.profiles.captured"),
		latencyNs:     r.Histogram("serve.job.latency_ns", obs.DurationBuckets()),
		queueWaitNs:   r.Histogram("serve.job.queue_wait_ns", obs.DurationBuckets()),
		runNs:         r.Histogram("serve.job.run_ns", obs.DurationBuckets()),

		cacheHits:      r.Counter("serve.cache.hits"),
		cacheMisses:    r.Counter("serve.cache.misses"),
		cacheCoalesced: r.Counter("serve.cache.coalesced"),
		cacheEntries:   r.Gauge("serve.cache.entries"),
		cacheBytes:     r.Gauge("serve.cache.bytes"),
		cacheEvictions: r.Gauge("serve.cache.evictions"),
		engineRuns:     r.Counter("serve.engine.runs"),
		rejectQuota:    r.Counter("serve.jobs.rejected.quota"),
	}
	r.Gauge("serve.max_inflight").Set(int64(cfg.MaxInFlight))
	r.Gauge("serve.mem.budget").Set(int64(cfg.TotalMemoryBudget))
	s.met.memHeadroom.Set(int64(cfg.TotalMemoryBudget))
	s.memCond = sync.NewCond(&s.mu)
	s.wLatency = obs.NewWindowedHistogram(obs.DurationBuckets(), cfg.LatencyWindow)
	s.wQueueWait = obs.NewWindowedHistogram(obs.DurationBuckets(), cfg.LatencyWindow)
	s.wRun = obs.NewWindowedHistogram(obs.DurationBuckets(), cfg.LatencyWindow)
	if cfg.ProfileDir != "" {
		ring, err := obs.NewProfileRing(cfg.ProfileDir, cfg.ProfileCapacity,
			cfg.ProfileWindow, cfg.ProfileCPUDuration)
		if err != nil {
			s.log.Error("profile ring disabled", "dir", cfg.ProfileDir, "error", err)
		} else {
			s.profiles = ring
		}
	}
	for i := 0; i < cfg.MaxInFlight; i++ {
		s.runWG.Add(1)
		go s.runner()
	}
	return s
}

// Profiles returns the anomaly capture ring (nil when disabled).
func (s *Server) Profiles() *obs.ProfileRing { return s.profiles }

// Registry returns the metrics registry the server instruments.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Flight returns the job flight recorder backing /debug/jobs.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// admissionError is a submit-time rejection with an HTTP status, a
// machine-readable reason for the JSON error body, and an optional
// Retry-After hint in seconds (429/503 — the retryable rejections).
type admissionError struct {
	status     int
	msg        string
	reason     string
	retryAfter int
}

func (e *admissionError) Error() string { return e.msg }

// BuildCircuit materializes a submission's circuit from exactly one of
// the two sources (inline QASM or a named workload). It is exported for
// the cluster coordinator, which builds the circuit once to derive the
// canonical routing hash before forwarding the submission to a replica.
func BuildCircuit(req *SubmitRequest) (*circuit.Circuit, error) {
	switch {
	case req.QASM != "" && req.Circuit != "":
		return nil, fmt.Errorf("pass either qasm or circuit, not both")
	case req.QASM != "":
		return qasm.Parse(req.QASM)
	case req.Circuit != "":
		n := req.N
		if n == 0 {
			n = 16
		}
		return workloads.Build(req.Circuit, n, req.Seed)
	default:
		return nil, fmt.Errorf("nothing to simulate: pass qasm or circuit")
	}
}

// normalize validates the execution options of a submission.
func (s *Server) normalize(req *SubmitRequest) (runOptions, error) {
	o := runOptions{
		timeout: s.cfg.DefaultTimeout,
		top:     8,
		k:       4,
		seed:    req.Seed,
	}
	if req.TimeoutMS < 0 || req.Shots < 0 || req.Top < 0 {
		return o, fmt.Errorf("timeout_ms, shots and top must be non-negative")
	}
	if req.TimeoutMS > 0 {
		o.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if o.timeout > s.cfg.MaxTimeout {
			o.timeout = s.cfg.MaxTimeout
		}
	}
	if req.Top > 0 {
		o.top = req.Top
	}
	if o.top > 1024 {
		return o, fmt.Errorf("top amplitudes capped at 1024, got %d", o.top)
	}
	o.shots = req.Shots
	if o.shots > 1_000_000 {
		return o, fmt.Errorf("shots capped at 1000000, got %d", o.shots)
	}
	switch req.Cache {
	case "", "auto":
		o.cache = dmav.Auto
	case "always":
		o.cache = dmav.AlwaysCache
	case "never":
		o.cache = dmav.NeverCache
	default:
		return o, fmt.Errorf("unknown cache mode %q (auto|always|never)", req.Cache)
	}
	switch req.Fusion {
	case "", "none":
		o.fusion = core.NoFusion
	case "dmav":
		o.fusion = core.DMAVAware
	case "kops":
		o.fusion = core.KOps
	default:
		return o, fmt.Errorf("unknown fusion mode %q (none|dmav|kops)", req.Fusion)
	}
	return o, nil
}

// submit runs admission control and either admits a job — served from
// cache, coalesced onto an in-flight simulation, or queued for the fair
// scheduler — or returns an *admissionError. traceparent is the caller's
// W3C trace context header ("" or malformed mints a fresh trace); the
// admitted job's root span continues that trace. tenant is the validated
// tenant identity; idemKey, when non-empty, makes the submission
// idempotent: a repeat with the same key replays the original job
// (replayed=true) instead of admitting a new one.
func (s *Server) submit(req *SubmitRequest, traceparent, tenant, idemKey string) (j *job, replayed bool, aerr *admissionError) {
	c, err := BuildCircuit(req)
	if err != nil {
		s.met.rejectInvalid.Inc()
		return nil, false, &admissionError{status: 400, msg: err.Error(), reason: "invalid"}
	}
	opts, err := s.normalize(req)
	if err != nil {
		s.met.rejectInvalid.Inc()
		return nil, false, &admissionError{status: 400, msg: err.Error(), reason: "invalid"}
	}
	if c.Qubits < 1 {
		s.met.rejectInvalid.Inc()
		return nil, false, &admissionError{status: 400, msg: "circuit has no qubits", reason: "invalid"}
	}
	if c.Qubits > s.cfg.MaxQubits {
		s.met.rejectBudget.Inc()
		return nil, false, &admissionError{status: 413, msg: fmt.Sprintf(
			"circuit has %d qubits, server cap is %d", c.Qubits, s.cfg.MaxQubits),
			reason: "qubit_cap"}
	}
	if w := WorstCaseBytes(c.Qubits); w > s.cfg.MemoryBudget {
		s.met.rejectBudget.Inc()
		return nil, false, &admissionError{status: 413, msg: fmt.Sprintf(
			"flat-array worst case for %d qubits is %d bytes, over the %d-byte budget",
			c.Qubits, w, s.cfg.MemoryBudget),
			reason: "memory_budget"}
	}
	key := cacheKey{circuit: c.Hash(), options: optionsKey(opts)}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, &admissionError{status: 503, msg: "server is draining",
			reason: "draining", retryAfter: 5}
	}
	ts := s.tenantLocked(tenant)
	if idemKey != "" {
		if prev, ok := s.idem[tenant+"\x00"+idemKey]; ok {
			pj := s.jobs[prev]
			if pj.key != key {
				return nil, false, &admissionError{status: 409, msg: fmt.Sprintf(
					"idempotency key %q was used for a different request (job %s)", idemKey, pj.id),
					reason: "idempotency_mismatch"}
			}
			return pj, true, nil
		}
	}
	s.nextID++
	j = &job{
		id:        fmt.Sprintf("j-%06d", s.nextID),
		circ:      c,
		opts:      opts,
		tenant:    tenant,
		key:       key,
		idemKey:   idemKey,
		state:     StateQueued,
		submitted: time.Now(),
	}
	trace, parent, _ := obs.ParseTraceParent(traceparent)
	j.span = s.tracer.Root("job", trace, parent)
	j.span.SetAttr("job", j.id)
	j.span.SetAttr("circuit", c.Name)
	j.span.SetAttr("qubits", c.Qubits)
	j.span.SetAttr("gates", c.GateCount())
	j.span.SetAttr("tenant", tenant)

	// Disposition: cache hit ≻ coalesce onto an in-flight leader ≻ queue
	// as a fresh leader. Hits and subscribers bypass the queue entirely,
	// so quota checks apply only to the miss path.
	if entry := s.cache.get(key, opts.shots); entry != nil {
		j.cacheStatus = CacheHit
		j.span.SetAttr("cache", CacheHit)
		j.state = StateDone
		j.result = resultFromEntry(j, entry)
		s.met.cacheHits.Inc()
		s.met.completed.Inc()
		ts.cacheHits++
		ts.completed++
		s.registerLocked(j, ts)
		s.finishJobLocked(j)
		e2e := j.finished.Sub(j.submitted).Nanoseconds()
		s.met.latencyNs.Observe(e2e)
		s.wLatency.Observe(e2e)
		return j, false, nil
	}
	if f := s.flights[key]; f != nil && s.coalescable(j) {
		if len(f.subs) >= maxCoalesced {
			s.met.rejectQuota.Inc()
			ts.rejected++
			return nil, false, &admissionError{status: 429, msg: fmt.Sprintf(
				"simulation already has %d coalesced subscribers", maxCoalesced),
				reason: "coalesce_limit", retryAfter: 1}
		}
		j.cacheStatus = CacheCoalesced
		j.span.SetAttr("cache", CacheCoalesced)
		j.queuedSpan = j.span.Child("queued")
		j.queuedSpan.SetAttr("coalesced", true)
		f.subs = append(f.subs, j)
		s.met.cacheCoalesced.Inc()
		ts.coalesced++
		s.registerLocked(j, ts)
		return j, false, nil
	}
	if s.fq.Len() >= s.cfg.QueueDepth {
		s.met.rejectQueue.Inc()
		return nil, false, &admissionError{status: 429, msg: fmt.Sprintf(
			"queue full (%d jobs)", s.cfg.QueueDepth),
			reason: "queue_full", retryAfter: 1}
	}
	if s.fq.TenantQueued(tenant) >= s.cfg.TenantMaxQueued {
		s.met.rejectQuota.Inc()
		ts.rejected++
		return nil, false, &admissionError{status: 429, msg: fmt.Sprintf(
			"tenant %q already has %d jobs queued", tenant, s.cfg.TenantMaxQueued),
			reason: "tenant_queue_full", retryAfter: 1}
	}
	j.cacheStatus = CacheMiss
	j.span.SetAttr("cache", CacheMiss)
	j.queuedSpan = j.span.Child("queued")
	if s.cache.enabled() {
		// Open the job for coalescing: identical submissions arriving
		// before it finishes subscribe instead of queueing.
		if _, taken := s.flights[key]; !taken {
			s.flights[key] = &flight{leader: j}
		}
	}
	s.fq.Push(j)
	s.met.cacheMisses.Inc()
	ts.misses++
	s.registerLocked(j, ts)
	s.met.queueDepth.Set(int64(s.fq.Len()))
	return j, false, nil
}

// registerLocked records an admitted job in the server's indexes and
// bumps the submission accounting. Caller holds s.mu.
func (s *Server) registerLocked(j *job, ts *tenantStats) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if idemKey := j.idemKey; idemKey != "" {
		s.idem[j.tenant+"\x00"+idemKey] = j.id
	}
	s.met.submitted.Inc()
	ts.submitted++
	s.log.Info("job submitted",
		"job", j.id, "trace", j.span.Trace().String(), "tenant", j.tenant,
		"circuit", j.circ.Name, "qubits", j.circ.Qubits, "gates", j.circ.GateCount(),
		"cache", j.cacheStatus)
}

// coalescable reports whether a job may subscribe to an in-flight
// simulation: a shots>0 request needs the leader's entry to carry the
// cumulative distribution, which is only built when it fits the
// per-entry cap — otherwise the job runs standalone.
func (s *Server) coalescable(j *job) bool {
	if j.opts.shots <= 0 {
		return true
	}
	return probsBytes(j.circ.Qubits) <= s.cfg.ResultCacheMaxEntry
}

// probsBytes is the footprint of an n-qubit cumulative distribution.
func probsBytes(n int) int64 { return 8 << uint(n) }

// runner is one of the MaxInFlight executor goroutines: it pops jobs off
// the weighted-fair queue until Shutdown closes it. The goroutine count
// is the global in-flight cap; the queue itself enforces the per-tenant
// one. Every Pop is paired with exactly one Done — including jobs that
// turn out to be canceled — so tenant in-flight accounting stays sound.
func (s *Server) runner() {
	defer s.runWG.Done()
	for {
		j := s.fq.Pop()
		if j == nil {
			return
		}
		s.runJob(j)
		s.fq.Done(j.tenant)
	}
}

// runJob executes one job through core.RunContext on the shared pool.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	s.met.queueDepth.Set(int64(s.fq.Len()))
	if j.state != StateQueued {
		// Canceled (or drain-canceled) while still queued.
		s.mu.Unlock()
		return
	}
	// Dispatch gate: reserve the job's worst-case footprint against the
	// process-wide budget, waiting on the condition for reservations to
	// shrink (ledger-mode releases, job completions, cancels). The
	// memReserved > 0 guard admits an over-budget job when it would run
	// alone, so a misconfigured budget degrades to serial execution
	// instead of deadlock.
	need := WorstCaseBytes(j.circ.Qubits)
	for s.memReserved > 0 && s.memReserved+need > s.cfg.TotalMemoryBudget {
		s.memCond.Wait()
		if j.state != StateQueued {
			// Canceled (or drain-canceled) while waiting for memory.
			s.mu.Unlock()
			return
		}
	}
	j.reserve = need
	s.memReserved += need
	ctx, cancel := context.WithTimeout(context.Background(), j.opts.timeout)
	j.state = StateRunning
	j.started = time.Now()
	j.attempts++
	j.cancel = cancel
	j.observed = 0
	led := obs.NewResourceLedger()
	j.ledger = led
	led.OnUpdate(func(snap obs.LedgerSnapshot) { s.onLedgerUpdate(j, snap) })
	j.queuedSpan.End()
	j.queuedSpan = nil
	runSpan := j.span.Child("run")
	runSpan.SetAttr("attempt", j.attempts)
	ctx = obs.ContextWithSpan(ctx, runSpan)
	s.met.running.Set(s.countLocked(StateRunning))
	s.met.runningPeak.SetMax(s.countLocked(StateRunning))
	s.updateMemGaugesLocked()
	wait := j.started.Sub(j.submitted).Nanoseconds()
	s.met.queueWaitNs.Observe(wait)
	s.wQueueWait.Observe(wait)
	s.mu.Unlock()
	defer cancel()

	res, entry, runErr := s.execute(ctx, j)
	runNs := time.Since(j.started).Nanoseconds()
	s.met.runNs.Observe(runNs)
	s.wRun.Observe(runNs)
	if runErr != nil {
		runSpan.SetAttr("error", runErr.Error())
	}
	runSpan.End()

	s.mu.Lock()
	j.cancel = nil
	s.releaseLocked(j)
	switch {
	case runErr == nil:
		j.state = StateDone
		j.result = res
		s.met.completed.Inc()
		s.tenantLocked(j.tenant).completed++
		if res.Stats.Degraded {
			s.met.degraded.Inc()
		}
		s.completeFlightLocked(j, entry)
		if s.cache.put(j.key, entry) {
			s.updateCacheGaugesLocked()
		}
	case isCancel(runErr):
		j.state = StateCanceled
		j.errMsg = runErr.Error()
		s.met.canceled.Inc()
		s.tenantLocked(j.tenant).canceled++
		s.promoteFlightLocked(j)
	default:
		if errors.Is(runErr, core.ErrEngineFault) {
			s.met.faults.Inc()
		}
		if core.IsTransient(runErr) && j.attempts <= s.cfg.MaxRetries && !s.draining {
			// Transient engine fault: back off and re-queue rather than
			// fail. The job is observable as queued again in the meantime,
			// and its flight (if any) keeps collecting subscribers.
			j.state = StateQueued
			j.errMsg = runErr.Error()
			j.queuedSpan = j.span.Child("queued")
			j.queuedSpan.SetAttr("retry", true)
			s.met.retried.Inc()
			delay := s.retryDelay(j.attempts)
			time.AfterFunc(delay, func() { s.enqueueRetry(j) })
			break
		}
		j.state = StateFailed
		j.errMsg = runErr.Error()
		j.reason = failureReason(runErr)
		s.met.failed.Inc()
		s.tenantLocked(j.tenant).failed++
		s.promoteFlightLocked(j)
	}
	if j.state != StateQueued {
		s.finishJobLocked(j)
		e2e := j.finished.Sub(j.submitted).Nanoseconds()
		s.met.latencyNs.Observe(e2e)
		s.wLatency.Observe(e2e)
	}
	s.met.running.Set(s.countLocked(StateRunning))
	s.mu.Unlock()
}

// finishJobLocked stamps a job's terminal transition: it closes the span
// tree, hands it to the flight recorder (pinning anything worth a
// post-mortem — failures, cancels, retries, degraded runs), and emits
// the lifecycle log line. Caller holds s.mu and has already set the
// terminal state.
func (s *Server) finishJobLocked(j *job) {
	j.finished = time.Now()
	j.queuedSpan.End()
	j.queuedSpan = nil
	j.span.SetAttr("state", j.state)
	if j.attempts > 1 {
		j.span.SetAttr("attempts", j.attempts)
	}
	j.span.End()
	if j.ledger != nil {
		snap := j.ledger.Snapshot()
		j.resources = &snap
	}
	degraded := j.result != nil && j.result.Stats.Degraded
	spans, dropped := j.span.Collected()
	s.flight.Record(&obs.JobTrace{
		JobID:        j.id,
		Trace:        j.span.Trace().String(),
		State:        j.state,
		Reason:       j.reason,
		Pinned:       j.state == StateFailed || j.state == StateCanceled || j.attempts > 1 || degraded,
		FinishedAt:   j.finished,
		Spans:        spans,
		DroppedSpans: dropped,
		Ledger:       j.resources,
	})
	if s.profiles != nil && j.state != StateCanceled {
		if reason := s.anomalyReasonLocked(j, degraded); reason != "" {
			// The ring does its own rate limiting and the heap write hits
			// the filesystem — capture off the lock.
			go func() {
				if s.profiles.Capture(reason) {
					s.met.profiles.Inc()
				}
			}()
		}
	}
	s.tw.Flush() //nolint:errcheck // trace output is best-effort
	attrs := []any{
		"job", j.id, "trace", j.span.Trace().String(), "state", j.state,
		"attempts", j.attempts, "e2e_ms", j.finished.Sub(j.submitted).Milliseconds(),
	}
	if j.errMsg != "" {
		attrs = append(attrs, "error", j.errMsg)
	}
	if j.reason != "" {
		attrs = append(attrs, "reason", j.reason)
	}
	if degraded {
		attrs = append(attrs, "degraded", true)
	}
	s.log.Info("job finished", attrs...)
}

// completeFlightLocked closes job j's flight after a successful run:
// every subscriber still waiting is completed from the leader's entry —
// its own top= prefix, its own seeded shot stream, no engine time.
// A subscriber the entry cannot serve (it wants shots but the
// distribution was too large to build) is not stranded standalone: the
// first such subscriber becomes the leader of a fresh flight and the
// rest ride it, so even this fallback costs at most one engine run at a
// time and stays open to new duplicates. coalescable() makes the path
// unreachable in practice; the re-flighting keeps a bookkeeping slip
// from fanning out into N engine runs. Caller holds s.mu.
func (s *Server) completeFlightLocked(j *job, entry *cacheEntry) {
	f := s.flights[j.key]
	if f == nil || f.leader != j {
		return
	}
	delete(s.flights, j.key)
	var reflight *flight
	for _, sub := range f.subs {
		if sub.state != StateQueued {
			continue // canceled while coalesced
		}
		if !entry.servable(sub.opts.shots) {
			if reflight == nil {
				sub.cacheStatus = CacheMiss
				sub.span.SetAttr("cache", CacheMiss)
				reflight = &flight{leader: sub}
				s.flights[j.key] = reflight
				s.fq.Push(sub)
			} else {
				reflight.subs = append(reflight.subs, sub)
			}
			continue
		}
		sub.state = StateDone
		sub.result = resultFromEntry(sub, entry)
		s.met.completed.Inc()
		s.tenantLocked(sub.tenant).completed++
		s.finishJobLocked(sub)
		e2e := sub.finished.Sub(sub.submitted).Nanoseconds()
		s.met.latencyNs.Observe(e2e)
		s.wLatency.Observe(e2e)
	}
}

// promoteFlightLocked handles a leader leaving without an entry (failed,
// canceled, or its retry was abandoned): the oldest subscriber still
// queued is promoted to leader of a fresh flight over the remaining
// subscribers and enters the fair queue, so coalesced jobs never inherit
// their leader's fate. Caller holds s.mu.
func (s *Server) promoteFlightLocked(j *job) {
	f := s.flights[j.key]
	if f == nil || f.leader != j {
		return
	}
	delete(s.flights, j.key)
	if s.draining {
		return // Shutdown cancels the subscribers itself
	}
	for i, sub := range f.subs {
		if sub.state != StateQueued {
			continue
		}
		sub.cacheStatus = CacheMiss
		sub.span.SetAttr("cache", CacheMiss)
		sub.queuedSpan.SetAttr("promoted", true)
		s.flights[j.key] = &flight{leader: sub, subs: f.subs[i+1:]}
		s.fq.Push(sub)
		s.met.queueDepth.Set(int64(s.fq.Len()))
		return
	}
}

// updateCacheGaugesLocked refreshes the serve.cache.* gauges. Caller
// holds s.mu.
func (s *Server) updateCacheGaugesLocked() {
	n, b, ev := s.cache.Stats()
	s.met.cacheEntries.Set(int64(n))
	s.met.cacheBytes.Set(b)
	s.met.cacheEvictions.Set(ev)
}

// anomalyReasonLocked classifies a finished job as profile-worthy (a
// non-empty reason triggers a capture): failure, degraded completion,
// retried run, or a run time over the SLO. The SLO is Config.SLOTarget
// when set, otherwise 3× the windowed run-latency p99 once the window
// holds enough samples to make the baseline meaningful. Caller holds
// s.mu.
func (s *Server) anomalyReasonLocked(j *job, degraded bool) string {
	switch {
	case j.state == StateFailed:
		if j.reason != "" {
			return "failed_" + j.reason
		}
		return "failed"
	case degraded:
		return "degraded"
	case j.attempts > 1:
		return "retried"
	}
	if j.started.IsZero() {
		return ""
	}
	run := j.finished.Sub(j.started)
	slo := s.cfg.SLOTarget
	if slo <= 0 {
		snap := s.wRun.Snapshot()
		if snap.Count >= 20 {
			slo = time.Duration(3 * snap.Quantile(0.99))
		}
	}
	if slo > 0 && run > slo {
		return "slo_breach"
	}
	return ""
}

// onLedgerUpdate is the per-job ledger hook: it caches the job's live
// footprint for the observed gauges and, in ledger admission mode,
// shrinks the job's reservation once the engine publishes a projection
// (end of the fuse phase) — down to max(projected, current), never up,
// so the gate stays sound while freeing headroom the worst case
// over-claimed. Runs outside the ledger's lock.
func (s *Server) onLedgerUpdate(j *job, snap obs.LedgerSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateRunning || j.ledger == nil {
		return // late phase-end after the terminal transition
	}
	j.observed = snap.CurrentBytes
	if snap.PeakBytes > j.observed {
		j.observed = snap.PeakBytes
	}
	if s.cfg.AdmissionMode == AdmissionLedger && j.reserve > 0 && snap.ProjectedBytes > 0 {
		target := snap.ProjectedBytes
		if snap.CurrentBytes > target {
			target = snap.CurrentBytes
		}
		if target < j.reserve {
			s.memReserved -= j.reserve - target
			j.reserve = target
			s.memCond.Broadcast()
		}
	}
	s.updateMemGaugesLocked()
}

// releaseLocked returns a job's memory reservation to the budget and
// wakes dispatch-gate waiters. Idempotent; caller holds s.mu.
func (s *Server) releaseLocked(j *job) {
	if j.reserve == 0 {
		return
	}
	s.memReserved -= j.reserve
	j.reserve = 0
	s.memCond.Broadcast()
	s.updateMemGaugesLocked()
}

// updateMemGaugesLocked refreshes the serve.mem.* gauges from the
// reservation ledger and the running jobs' cached observed footprints.
// Caller holds s.mu.
func (s *Server) updateMemGaugesLocked() {
	s.met.memReserved.Set(int64(s.memReserved))
	head := int64(s.cfg.TotalMemoryBudget) - int64(s.memReserved)
	if head < 0 {
		head = 0
	}
	s.met.memHeadroom.Set(head)
	var observed uint64
	for _, jb := range s.jobs {
		if jb.state == StateRunning {
			observed += jb.observed
		}
	}
	s.met.memObserved.Set(int64(observed))
	s.met.memPeak.SetMax(int64(observed))
}

// isCancel distinguishes a canceled run (client cancel or drain) from a
// failure. A deadline abort is the job's own timeout, reported as failed
// with the sentinel's message.
func isCancel(err error) bool { return errors.Is(err, core.ErrCanceled) }

// failureReason classifies a terminal job failure for the status API.
func failureReason(err error) string {
	switch {
	case errors.Is(err, core.ErrNumericalDrift):
		return "numerical_drift"
	case errors.Is(err, core.ErrEngineFault):
		return "engine_fault"
	case errors.Is(err, core.ErrDeadlineExceeded):
		return "timeout"
	default:
		return "error"
	}
}

// retryDelay is the backoff before re-queuing attempt+1: base·2^(attempt−1)
// capped at the maximum, plus up to 50% jitter so a burst of transient
// failures does not re-queue in lockstep.
func (s *Server) retryDelay(attempt int) time.Duration {
	d := s.cfg.RetryBaseDelay << uint(attempt-1)
	if d <= 0 || d > s.cfg.RetryMaxDelay {
		d = s.cfg.RetryMaxDelay
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// enqueueRetry puts a backoff-expired job back on the fair queue. It
// re-checks the world under s.mu: a drain that began while the timer ran
// has already canceled the job (and closed the queue), and a client
// cancel wins over the retry.
func (s *Server) enqueueRetry(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateQueued {
		return
	}
	if s.draining {
		// Shutdown marks queued jobs canceled before closing the queue,
		// so this branch is a narrow race guard; never touch the queue.
		j.state = StateCanceled
		j.errMsg = core.ErrCanceled.Error() + " (server draining)"
		s.finishJobLocked(j)
		s.met.canceled.Inc()
		s.tenantLocked(j.tenant).canceled++
		return
	}
	if s.fq.Len() >= s.cfg.QueueDepth {
		j.state = StateFailed
		j.errMsg = "retry abandoned: queue full"
		j.reason = "queue_full"
		s.finishJobLocked(j)
		s.met.failed.Inc()
		s.tenantLocked(j.tenant).failed++
		s.promoteFlightLocked(j)
		return
	}
	s.fq.Push(j)
	s.met.queueDepth.Set(int64(s.fq.Len()))
}

// execute runs the simulation and assembles the result payload plus —
// when caching is on — the cache entry that serves this flight's
// subscribers and future hits. A panic in the engine fails the job
// instead of the server.
func (s *Server) execute(ctx context.Context, j *job) (res *JobResult, entry *cacheEntry, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, entry, err = nil, nil, fmt.Errorf("engine panic: %v", r)
		}
	}()
	s.met.engineRuns.Inc()
	sim := core.New(j.circ.Qubits, core.Options{
		Pool:           s.pool,
		CacheMode:      j.opts.cache,
		Fusion:         j.opts.fusion,
		K:              j.opts.k,
		Metrics:        s.reg,
		MemoryBudget:   s.cfg.EngineMemoryBudget,
		IntegrityEvery: s.cfg.IntegrityEvery,
		Faults:         s.cfg.Faults,
		TraceWriter:    s.tw, // nil without Config.TraceJSONL; shared so gate events and spans interleave safely
		Ledger:         j.ledger,
	})
	st, err := sim.RunContext(ctx, j.circ)
	if err != nil {
		return nil, nil, err
	}
	res = buildResult(j, sim, st)
	if s.cache.enabled() {
		entry = buildCacheEntry(j, sim, st,
			probsBytes(j.circ.Qubits) <= s.cfg.ResultCacheMaxEntry)
	}
	return res, entry, nil
}

// countLocked counts jobs in one state. Caller holds s.mu.
func (s *Server) countLocked(state string) int64 {
	var n int64
	for _, j := range s.jobs {
		if j.state == state {
			n++
		}
	}
	return n
}

// Cancel cancels a job by id: a queued job is withdrawn from the FIFO
// (it is skipped when popped), a running job has its context canceled and
// transitions to canceled as soon as the engine observes it (bounded by
// one gate). It reports whether the job exists and whether it was still
// cancelable.
func (s *Server) Cancel(id string) (found, canceled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false, false
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.errMsg = core.ErrCanceled.Error()
		s.finishJobLocked(j)
		s.met.canceled.Inc()
		s.tenantLocked(j.tenant).canceled++
		// A canceled leader must not strand its coalesced subscribers.
		s.promoteFlightLocked(j)
		// The job may be parked in the dispatch gate's memory wait; wake it
		// so its runner observes the cancel and moves on.
		s.memCond.Broadcast()
		return true, true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true, true
	default:
		return true, false
	}
}

// Shutdown drains the server: admission stops immediately, queued jobs
// that never started are canceled, and in-flight jobs get DrainGrace to
// finish before their contexts are canceled. It returns once every
// runner has exited, and is safe to call once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.runWG.Wait()
		return
	}
	s.draining = true
	for _, j := range s.jobs {
		if j.state == StateQueued {
			j.state = StateCanceled
			j.errMsg = core.ErrCanceled.Error() + " (server draining)"
			s.finishJobLocked(j)
			s.met.canceled.Inc()
			s.tenantLocked(j.tenant).canceled++
		}
	}
	// Coalesced subscribers were just canceled with everything else; the
	// flights are moot and the fair queue's remaining jobs are already
	// terminal, so closing it only wakes the runners to exit.
	s.flights = make(map[cacheKey]*flight)
	s.fq.Close()
	// Wake any runner parked in the dispatch gate: its job was just
	// canceled above and it must observe that and exit.
	s.memCond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.runWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainGrace):
		// Grace expired: cancel whatever is still running; RunContext
		// observes the cancellation within one gate.
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
	}
	if s.ownPool {
		s.pool.Close()
	}
	s.tw.Flush() //nolint:errcheck // trace output is best-effort
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// sampleShots draws measurement shots from the final state with a seeded
// generator, keyed as zero-padded bitstrings.
func sampleShots(sim *core.Simulator, n, shots int, seed int64) map[string]int {
	if shots <= 0 {
		return nil
	}
	counts := sim.Sample(rand.New(rand.NewSource(seed)), shots)
	out := make(map[string]int, len(counts))
	for idx, c := range counts {
		out[fmt.Sprintf("%0*b", n, idx)] = c
	}
	return out
}
