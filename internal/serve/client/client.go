// Package client is the typed Go client of the serve layer's v1 job API.
// It wraps submit/status/result/cancel/list plus the tenant and health
// views, decodes the structured error envelope into *APIError, and
// passes W3C trace context through, so callers (tests, the bench
// harness, operational tooling) never hand-build HTTP requests against
// the service.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"flatdd/internal/serve"
)

// Client talks to one serve instance. The zero value is not usable;
// construct with New.
type Client struct {
	base   string
	http   *http.Client
	tenant string
}

// Option configures a Client.
type Option func(*Client)

// WithTenant sets the X-Tenant identity sent with every request. Without
// it the server accounts the traffic to the default tenant ("anon").
func WithTenant(name string) Option { return func(c *Client) { c.tenant = name } }

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// New builds a client for the service at base (e.g. "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{base: base, http: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response decoded from the service's structured
// error envelope. Code is the closed enum (serve.Code*), Reason the
// fine-grained cause, RetryAfter the server's backoff hint (0 if none).
type APIError struct {
	Status     int
	Code       string
	Message    string
	Reason     string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %d %s (%s): %s", e.Status, e.Code, e.Reason, e.Message)
}

// IsRetryable reports whether the server asked the caller to retry
// (rate-limited or temporarily unavailable).
func (e *APIError) IsRetryable() bool {
	return e.Code == serve.CodeRateLimited || e.Code == serve.CodeUnavailable
}

// SubmitOption configures one Submit call.
type SubmitOption func(*submitOpts)

type submitOpts struct {
	idemKey     string
	traceparent string
	tenant      string
}

// WithIdempotencyKey makes the submission idempotent: resubmitting with
// the same key replays the original job instead of admitting a new one.
func WithIdempotencyKey(key string) SubmitOption {
	return func(o *submitOpts) { o.idemKey = key }
}

// WithTraceParent propagates the caller's W3C trace context; the job's
// span tree continues that trace.
func WithTraceParent(tp string) SubmitOption {
	return func(o *submitOpts) { o.traceparent = tp }
}

// WithSubmitTenant overrides the client-level tenant for one submission.
// The cluster coordinator uses it to forward each caller's own tenant
// through a per-replica client shared by all tenants.
func WithSubmitTenant(name string) SubmitOption {
	return func(o *submitOpts) { o.tenant = name }
}

// SubmitResponse is the outcome of one Submit call.
type SubmitResponse struct {
	Job serve.JobView
	// Replayed is true when an Idempotency-Key matched an earlier
	// submission and Job is that original job.
	Replayed bool
	// TraceParent is the trace context the server handed back — the
	// caller's own trace continued by the job, or a freshly minted one.
	TraceParent string
}

// Submit posts a job (POST /v1/jobs).
func (c *Client) Submit(ctx context.Context, req *serve.SubmitRequest, opts ...SubmitOption) (*SubmitResponse, error) {
	var so submitOpts
	for _, o := range opts {
		o(&so)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encode submit request: %w", err)
	}
	hreq, err := c.newRequest(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if so.idemKey != "" {
		hreq.Header.Set("Idempotency-Key", so.idemKey)
	}
	if so.traceparent != "" {
		hreq.Header.Set("traceparent", so.traceparent)
	}
	if so.tenant != "" {
		hreq.Header.Set(serve.TenantHeader, so.tenant)
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	out := &SubmitResponse{
		Replayed:    resp.Header.Get("Idempotency-Replayed") == "true",
		TraceParent: resp.Header.Get("traceparent"),
	}
	if err := decode(resp, &out.Job); err != nil {
		return nil, err
	}
	return out, nil
}

// Job fetches a job's status (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (*serve.JobView, error) {
	var v serve.JobView
	if err := c.get(ctx, "/v1/jobs/"+url.PathEscape(id), &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Result fetches a done job's result (GET /v1/jobs/{id}/result). While
// the job is still queued or running the call fails with an *APIError
// carrying reason "not_ready".
func (c *Client) Result(ctx context.Context, id string) (*serve.JobResult, error) {
	var r serve.JobResult
	if err := c.get(ctx, "/v1/jobs/"+url.PathEscape(id)+"/result", &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ResultRaw fetches a done job's result as raw JSON. The cluster
// coordinator uses it to relay and cache result payloads byte-for-byte
// without a decode/re-encode round trip. Non-2xx responses decode into
// *APIError exactly like Result.
func (c *Client) ResultRaw(ctx context.Context, id string) ([]byte, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return body, nil
	}
	return nil, errorFromBody(resp.StatusCode, body)
}

// Cancel cancels a job (DELETE /v1/jobs/{id}) and returns its view.
func (c *Client) Cancel(ctx context.Context, id string) (*serve.JobView, error) {
	req, err := c.newRequest(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	var v serve.JobView
	if err := decode(resp, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// JobsQuery filters and paginates List calls.
type JobsQuery struct {
	State  string // filter by job state ("" = all)
	Tenant string // filter by tenant ("" = all)
	Limit  int    // page size (0 = server default)
	Cursor string // continuation from the previous page's NextCursor
}

// Jobs lists jobs newest-first (GET /v1/jobs), one page at a time.
func (c *Client) Jobs(ctx context.Context, q JobsQuery) (*serve.JobList, error) {
	vals := url.Values{}
	if q.State != "" {
		vals.Set("state", q.State)
	}
	if q.Tenant != "" {
		vals.Set("tenant", q.Tenant)
	}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Cursor != "" {
		vals.Set("cursor", q.Cursor)
	}
	path := "/v1/jobs"
	if enc := vals.Encode(); enc != "" {
		path += "?" + enc
	}
	var l serve.JobList
	if err := c.get(ctx, path, &l); err != nil {
		return nil, err
	}
	return &l, nil
}

// Tenants fetches the per-tenant accounting view (GET /v1/tenants).
func (c *Client) Tenants(ctx context.Context) ([]serve.TenantView, error) {
	var body struct {
		Tenants []serve.TenantView `json:"tenants"`
	}
	if err := c.get(ctx, "/v1/tenants", &body); err != nil {
		return nil, err
	}
	return body.Tenants, nil
}

// Health fetches /healthz as a generic document (its shape is
// operational, not part of the typed v1 surface).
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var m map[string]any
	if err := c.get(ctx, "/healthz", &m); err != nil {
		return nil, err
	}
	return m, nil
}

// Wait polls a job until it reaches a terminal state (done, failed,
// canceled) and returns the final view. poll <= 0 defaults to 25ms.
//
// Sleeps between polls are jittered (up to +50% of the base interval) so
// many waiters never poll in lockstep, and a retryable rejection
// (429/503) does not fail the wait: the client honors the server's
// Retry-After hint — sleeping max(poll, Retry-After) plus jitter — and
// keeps polling. Non-retryable errors return immediately. The caller's
// context caps the total wait, including the backoff sleeps.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*serve.JobView, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	var last *serve.JobView
	for {
		v, err := c.Job(ctx, id)
		delay := poll
		switch {
		case err == nil:
			last = v
			switch v.State {
			case serve.StateDone, serve.StateFailed, serve.StateCanceled:
				return v, nil
			}
		default:
			var apiErr *APIError
			if !errors.As(err, &apiErr) || !apiErr.IsRetryable() {
				return nil, err
			}
			// 429/503: the server told us when to come back. A draining or
			// overloaded server is a reason to slow down, not to give up —
			// the context decides when the caller has waited long enough.
			if apiErr.RetryAfter > delay {
				delay = apiErr.RetryAfter
			}
		}
		delay += time.Duration(rand.Int63n(int64(delay)/2 + 1))
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return last, ctx.Err()
		case <-t.C:
		}
	}
}

func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.tenant != "" {
		req.Header.Set(serve.TenantHeader, c.tenant)
	}
	return req, nil
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	return decode(resp, out)
}

// decode drains the response: 2xx unmarshals into out, anything else
// into an *APIError built from the structured envelope (falling back to
// the raw body for non-JSON errors, e.g. from intermediaries).
func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("read response: %w", err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(body, out); err != nil {
			return fmt.Errorf("decode %d response: %w", resp.StatusCode, err)
		}
		return nil
	}
	return errorFromBody(resp.StatusCode, body)
}

// errorFromBody builds the *APIError for a non-2xx body, falling back
// to the raw text for non-JSON errors (e.g. from intermediaries).
func errorFromBody(status int, body []byte) *APIError {
	apiErr := &APIError{Status: status}
	var env serve.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
		apiErr.Reason = env.Error.Reason
		apiErr.RetryAfter = time.Duration(env.Error.RetryAfterMS) * time.Millisecond
	} else {
		apiErr.Code = "unknown"
		apiErr.Message = string(body)
	}
	return apiErr
}
