package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// unit tests of the client's Wait backoff against a scripted server —
// the happy path is exercised by every e2e suite that calls Wait.

// scriptedJob serves GET /v1/jobs/<id> from a per-call script and counts
// the calls.
type scriptedJob struct {
	calls  atomic.Int64
	script func(call int64, w http.ResponseWriter)
}

func (s *scriptedJob) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.script(s.calls.Add(1), w)
	})
}

func writeReject(w http.ResponseWriter, status int, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(serve.ErrorEnvelope{Error: serve.ErrorInfo{ //nolint:errcheck
		Code:         serve.CodeRateLimited,
		Message:      "slow down",
		Reason:       "queue_full",
		RetryAfterMS: retryAfter.Milliseconds(),
	}})
}

func writeView(w http.ResponseWriter, state string) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serve.JobView{ID: "j-000001", State: state}) //nolint:errcheck
}

func TestWaitHonorsRetryAfter(t *testing.T) {
	const hint = 150 * time.Millisecond
	sj := &scriptedJob{script: func(call int64, w http.ResponseWriter) {
		switch {
		case call <= 2:
			writeReject(w, http.StatusTooManyRequests, hint)
		case call == 3:
			writeView(w, serve.StateQueued)
		default:
			writeView(w, serve.StateDone)
		}
	}}
	ts := httptest.NewServer(sj.handler())
	defer ts.Close()

	c := client.New(ts.URL)
	start := time.Now()
	v, err := c.Wait(context.Background(), "j-000001", 5*time.Millisecond)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if v.State != serve.StateDone {
		t.Fatalf("Wait returned state %q, want done", v.State)
	}
	// Two rejections, each honored with at least the 150ms hint: the wait
	// cannot finish faster than 300ms, and honoring the hint (instead of
	// hammering at the 5ms poll interval) keeps the call count at exactly
	// the scripted 4.
	if elapsed < 2*hint {
		t.Errorf("Wait finished in %v; two %v Retry-After hints demand >= %v", elapsed, hint, 2*hint)
	}
	if got := sj.calls.Load(); got != 4 {
		t.Errorf("server saw %d polls, want exactly 4 (backoff must not busy-poll)", got)
	}
}

func TestWaitContextCapsBackoffSleep(t *testing.T) {
	// A server demanding a 30s backoff must not pin Wait past the
	// caller's context: the deadline interrupts the sleep itself.
	sj := &scriptedJob{script: func(call int64, w http.ResponseWriter) {
		writeReject(w, http.StatusServiceUnavailable, 30*time.Second)
	}}
	ts := httptest.NewServer(sj.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.New(ts.URL).Wait(ctx, "j-000001", 5*time.Millisecond)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Wait outlived its context by %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under an expired context = %v, want DeadlineExceeded", err)
	}
}

func TestWaitReturnsNonRetryableImmediately(t *testing.T) {
	sj := &scriptedJob{script: func(call int64, w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(serve.ErrorEnvelope{Error: serve.ErrorInfo{ //nolint:errcheck
			Code: serve.CodeNotFound, Message: "no such job", Reason: "unknown_job",
		}})
	}}
	ts := httptest.NewServer(sj.handler())
	defer ts.Close()

	_, err := client.New(ts.URL).Wait(context.Background(), "j-missing", time.Millisecond)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("Wait on a 404 = %v, want the APIError straight back", err)
	}
	if got := sj.calls.Load(); got != 1 {
		t.Errorf("server saw %d polls for a non-retryable error, want 1", got)
	}
}
