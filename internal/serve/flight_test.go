package serve

import (
	"testing"
	"time"
)

// in-package tests of flight bookkeeping edge cases the e2e suite cannot
// reach: completeFlightLocked's re-flighting of subscribers the leader's
// entry cannot serve is unreachable through submit (coalescable() gates
// the shots path), so the slip is simulated by mutating subscriber
// options under the lock.

// waitJobState polls a job's state under the server lock.
func waitJobState(t *testing.T, s *Server, j *job, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		st, msg := j.state, j.errMsg
		s.mu.Unlock()
		if st == want {
			return
		}
		if st == StateFailed || st == StateCanceled {
			t.Fatalf("job %s reached %s waiting for %s (%s)", j.id, st, want, msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", j.id, want)
}

func mustSubmit(t *testing.T, s *Server, req *SubmitRequest) *job {
	t.Helper()
	j, _, aerr := s.submit(req, "", DefaultTenant, "")
	if aerr != nil {
		t.Fatalf("submit: %s", aerr.msg)
	}
	return j
}

// TestCompleteFlightReflightsNonServableSubs pins the fallback in
// completeFlightLocked: when the leader's entry cannot serve a
// subscriber (it wants shots, the entry has no distribution), the first
// such subscriber becomes leader of a fresh flight and the rest ride it
// — one extra engine run total, not one per subscriber — and the chain
// then completes end to end.
func TestCompleteFlightReflightsNonServableSubs(t *testing.T) {
	s := New(Config{Threads: 2, MaxInFlight: 1, QueueDepth: 16})
	defer s.Shutdown()

	// Occupy the single runner so the leader and its flight stay queued.
	blocker := mustSubmit(t, s, &SubmitRequest{Circuit: "qv", N: 16, TimeoutMS: 60_000})
	waitJobState(t, s, blocker, StateRunning)

	req := &SubmitRequest{Circuit: "ghz", N: 5}
	leader := mustSubmit(t, s, req)
	if leader.cacheStatus != CacheMiss {
		t.Fatalf("leader cache = %q, want miss", leader.cacheStatus)
	}
	sub1 := mustSubmit(t, s, req)
	sub2 := mustSubmit(t, s, req)
	sub3 := mustSubmit(t, s, req)
	for _, sub := range []*job{sub1, sub2, sub3} {
		if sub.cacheStatus != CacheCoalesced {
			t.Fatalf("subscriber cache = %q, want coalesced", sub.cacheStatus)
		}
	}

	// Simulate the bookkeeping slip: the subscribers now want shots, and
	// the leader's entry arrives without a distribution.
	s.mu.Lock()
	for _, sub := range []*job{sub1, sub2, sub3} {
		sub.opts.shots = 100
	}
	s.completeFlightLocked(leader, &cacheEntry{qubits: 5})
	f := s.flights[leader.key]
	if f == nil || f.leader != sub1 {
		t.Fatal("first non-servable subscriber did not become the new flight leader")
	}
	if len(f.subs) != 2 || f.subs[0] != sub2 || f.subs[1] != sub3 {
		t.Fatalf("re-flight carries %d subscribers, want [sub2 sub3]", len(f.subs))
	}
	if sub1.cacheStatus != CacheMiss {
		t.Errorf("promoted leader cache = %q, want miss", sub1.cacheStatus)
	}
	// Both the original leader and the re-flighted one are queued; sub2
	// and sub3 are not (they ride sub1's flight).
	queued := s.fq.TenantQueued(DefaultTenant)
	s.mu.Unlock()
	if queued != 2 {
		t.Fatalf("tenant queued = %d after re-flight, want 2 (old + new leader)", queued)
	}

	// Drain: the original leader runs and completes alone (the flight is
	// no longer theirs); sub1 runs once more and its entry — ghz n=5 easily
	// fits a distribution — completes sub2 and sub3 with their shots.
	s.Cancel(blocker.id)
	for _, j := range []*job{leader, sub1, sub2, sub3} {
		waitJobState(t, s, j, StateDone)
	}
	for _, sub := range []*job{sub2, sub3} {
		total := 0
		for _, n := range sub.result.Shots {
			total += n
		}
		if total != 100 {
			t.Errorf("re-flighted subscriber %s drew %d shots, want 100", sub.id, total)
		}
	}
	// Engine runs: blocker (canceled mid-run), original leader, sub1.
	if got := s.met.engineRuns.Value(); got != 3 {
		t.Errorf("engine runs = %d, want 3 (blocker, old leader, new leader)", got)
	}
}
