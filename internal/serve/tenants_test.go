package serve_test

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// TestTenantHeaderValidation pins the identity rules: empty maps to the
// default tenant, the charset is enforced.
func TestTenantHeaderValidation(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	ctx := context.Background()

	v := h.submit(&serve.SubmitRequest{Circuit: "ghz", N: 4})
	if v.Tenant != serve.DefaultTenant {
		t.Errorf("headerless submit tenant = %q, want %q", v.Tenant, serve.DefaultTenant)
	}

	named := client.New(h.ts.URL, client.WithTenant("team-a.prod_1"))
	resp, err := named.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.Tenant != "team-a.prod_1" {
		t.Errorf("tenant = %q", resp.Job.Tenant)
	}

	for _, bad := range []string{"has space", "semi;colon", "sl/ash", strings.Repeat("a", 80)} {
		c := client.New(h.ts.URL, client.WithTenant(bad))
		_, err := c.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 4})
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Reason != "invalid_tenant" {
			t.Errorf("tenant %q: %v, want 400 invalid_tenant", bad, err)
		}
	}
}

// TestTenantQueueQuota pins the per-tenant admission limit: one tenant
// filling its own queue allowance is rejected with tenant_queue_full
// while the global queue still has room — and another tenant gets in.
func TestTenantQueueQuota(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads:         2,
		MaxInFlight:     1,
		QueueDepth:      16,
		TenantMaxQueued: 2,
	})
	ctx := context.Background()
	heavy := client.New(h.ts.URL, client.WithTenant("heavy"))

	// First job runs, the next two sit queued — that exhausts the quota.
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		resp, err := heavy.Submit(ctx, slowSubmit(int64(i+1)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, resp.Job.ID)
	}
	h.waitState(ids[0], serve.StateRunning)

	_, err := heavy.Submit(ctx, slowSubmit(4))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Reason != "tenant_queue_full" {
		t.Fatalf("over-quota submit: %v, want 429 tenant_queue_full", err)
	}
	if !apiErr.IsRetryable() || apiErr.RetryAfter <= 0 {
		t.Errorf("quota rejection not marked retryable: %+v", apiErr)
	}
	if got := h.srv.Registry().Counter("serve.jobs.rejected.quota").Value(); got != 1 {
		t.Errorf("serve.jobs.rejected.quota = %d, want 1", got)
	}

	// The global queue still admits other tenants.
	light := client.New(h.ts.URL, client.WithTenant("light"))
	lresp, err := light.Submit(ctx, slowSubmit(5))
	if err != nil {
		t.Fatalf("light tenant blocked by heavy's quota: %v", err)
	}

	// The accounting view reflects all of it.
	views, err := h.c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]serve.TenantView{}
	for _, tv := range views {
		byName[tv.Name] = tv
	}
	hv := byName["heavy"]
	if hv.Submitted != 3 || hv.Rejected != 1 || hv.Queued != 2 || hv.Running != 1 {
		t.Errorf("heavy view = %+v, want 3 submitted, 1 rejected, 2 queued, 1 running", hv)
	}
	if hv.MaxQueued != 2 {
		t.Errorf("heavy MaxQueued = %d, want 2", hv.MaxQueued)
	}
	if lv := byName["light"]; lv.Submitted != 1 || lv.Queued != 1 {
		t.Errorf("light view = %+v, want 1 submitted, 1 queued", lv)
	}

	for _, id := range append(ids, lresp.Job.ID) {
		h.cancel(id)
	}
	h.waitState(ids[0], serve.StateCanceled, serve.StateDone)
}

// TestWeightedFairSchedulingE2E is the fairness acceptance test: a
// heavy tenant floods the queue behind a blocker, a light tenant adds
// one job last, and the fair queue still dispatches the light job ahead
// of (almost all of) the heavy backlog — under a FIFO it would run
// dead last.
func TestWeightedFairSchedulingE2E(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads:     2,
		MaxInFlight: 1,
		QueueDepth:  32,
		// The cache cannot shortcut this test: every job is a distinct
		// QV circuit, but belt and suspenders.
		ResultCacheBudget: -1,
	})
	ctx := context.Background()
	heavy := client.New(h.ts.URL, client.WithTenant("heavy"))
	light := client.New(h.ts.URL, client.WithTenant("light"))

	// Hold the single runner so every submission below queues up.
	blocker := h.submit(slowSubmit(50))
	h.waitState(blocker.ID, serve.StateRunning)

	heavyIDs := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		resp, err := heavy.Submit(ctx, &serve.SubmitRequest{
			Circuit: "qv", N: 12, Seed: int64(i + 1), TimeoutMS: 60_000})
		if err != nil {
			t.Fatal(err)
		}
		heavyIDs = append(heavyIDs, resp.Job.ID)
	}
	lresp, err := light.Submit(ctx, &serve.SubmitRequest{
		Circuit: "qv", N: 12, Seed: 99, TimeoutMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	h.cancel(blocker.ID)

	h.waitState(lresp.Job.ID, serve.StateDone)
	for _, id := range heavyIDs {
		h.waitState(id, serve.StateDone)
	}
	// Dispatch order: both tenants re-entered the stride clock together,
	// so the light job goes first or second — at most one heavy job may
	// win the opening tie. Submitted last, it would have started seventh
	// under the old FIFO.
	lv, err := h.c.Job(ctx, lresp.Job.ID)
	if err != nil || lv.StartedAt == nil {
		t.Fatalf("light job view: %+v err %v", lv, err)
	}
	before := 0
	for _, id := range heavyIDs {
		hv, err := h.c.Job(ctx, id)
		if err != nil || hv.StartedAt == nil {
			t.Fatalf("heavy job view: %+v err %v", hv, err)
		}
		if hv.StartedAt.Before(*lv.StartedAt) {
			before++
		}
	}
	if before > 1 {
		t.Errorf("%d of 6 heavy jobs dispatched before the light tenant's; the fair queue allows at most 1", before)
	}

	views, err := h.c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, tv := range views {
		switch tv.Name {
		case "heavy":
			if tv.Completed != 6 {
				t.Errorf("heavy completed = %d, want 6", tv.Completed)
			}
		case "light":
			if tv.Completed != 1 {
				t.Errorf("light completed = %d, want 1", tv.Completed)
			}
		}
		if tv.Weight != 1 {
			t.Errorf("tenant %s weight = %d, want default 1", tv.Name, tv.Weight)
		}
	}
}

// TestConfiguredTenantWeights pins that Config.TenantWeights reaches
// both the scheduler's view and the wire.
func TestConfiguredTenantWeights(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads:       2,
		TenantWeights: map[string]int{"gold": 4},
	})
	ctx := context.Background()
	gold := client.New(h.ts.URL, client.WithTenant("gold"))
	if _, err := gold.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 4}); err != nil {
		t.Fatal(err)
	}
	views, err := h.c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, tv := range views {
		if tv.Name == "gold" && tv.Weight != 4 {
			t.Errorf("gold weight = %d, want 4", tv.Weight)
		}
	}
}
