package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"flatdd/internal/obs"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the server's
// JSONL trace stream while jobs are still finishing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceEndToEnd submits a job under a caller-provided traceparent and
// follows the trace through the response header, the job view, the
// flight recorder's span tree, and the JSONL sink.
func TestTraceEndToEnd(t *testing.T) {
	sink := &syncBuffer{}
	h := newTestServer(t, serve.Config{Threads: 2, TraceJSONL: sink})

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	resp, err := h.c.Submit(context.Background(), &serve.SubmitRequest{QASM: bellQASM},
		client.WithTraceParent("00-"+callerTrace+"-"+callerSpan+"-01"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// The response hands the trace context back: same trace, the job's
	// own (fresh) span as the new parent.
	gotTrace, gotSpan, ok := obs.ParseTraceParent(resp.TraceParent)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.TraceParent)
	}
	if gotTrace.String() != callerTrace {
		t.Errorf("response trace = %s, want caller's %s", gotTrace, callerTrace)
	}
	if gotSpan.String() == callerSpan {
		t.Error("response span id did not change from the caller's")
	}
	v := resp.Job
	if v.Trace != callerTrace {
		t.Errorf("JobView.Trace = %q, want %q", v.Trace, callerTrace)
	}

	h.waitState(v.ID, serve.StateDone)

	// The flight recorder holds the whole span tree, addressable by job
	// ID and by trace ID.
	code, raw := h.do("GET", "/debug/jobs?id="+v.ID, nil)
	if code != 200 {
		t.Fatalf("/debug/jobs?id=: %d %s", code, raw)
	}
	var jt obs.JobTrace
	if err := json.Unmarshal(raw, &jt); err != nil {
		t.Fatal(err)
	}
	if jt.Trace != callerTrace || jt.State != serve.StateDone || jt.Pinned {
		t.Errorf("JobTrace = {trace %s, state %s, pinned %v}, want {%s, done, false}",
			jt.Trace, jt.State, jt.Pinned, callerTrace)
	}
	byName := map[string]obs.SpanRecord{}
	for _, r := range jt.Spans {
		if r.Trace != callerTrace {
			t.Errorf("span %s on trace %s, want %s", r.Name, r.Trace, callerTrace)
		}
		byName[r.Name] = r
	}
	for _, want := range []string{"job", "queued", "run", "phase.dd"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("span %q missing from flight-recorded tree (have %v)", want, names(jt.Spans))
		}
	}
	// Parent links: queued and run hang off job; job's parent is the
	// caller's span from the traceparent header.
	if byName["run"].Parent != byName["job"].Span {
		t.Errorf("run parent = %s, want job span %s", byName["run"].Parent, byName["job"].Span)
	}
	if byName["queued"].Parent != byName["job"].Span {
		t.Errorf("queued parent = %s, want job span %s", byName["queued"].Parent, byName["job"].Span)
	}
	if byName["job"].Parent != callerSpan {
		t.Errorf("job parent = %s, want caller span %s", byName["job"].Parent, callerSpan)
	}
	if byName["phase.dd"].Parent != byName["run"].Span {
		t.Errorf("phase.dd parent = %s, want run span %s", byName["phase.dd"].Parent, byName["run"].Span)
	}

	// The JSONL sink carries the same spans (plus the engine's per-gate
	// events, all on one writer).
	out := sink.String()
	for _, want := range []string{`"event":"span"`, `"name":"job"`, `"name":"phase.dd"`, callerTrace} {
		if !strings.Contains(out, want) {
			t.Errorf("trace sink missing %q", want)
		}
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestTraceMintedWithoutHeader pins that a submission without (or with a
// malformed) traceparent still gets a valid fresh trace.
func TestTraceMintedWithoutHeader(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 1})
	v := h.submit(&serve.SubmitRequest{QASM: bellQASM})
	if len(v.Trace) != 32 || v.Trace == strings.Repeat("0", 32) {
		t.Errorf("minted trace = %q, want 32 hex chars, nonzero", v.Trace)
	}
	h.waitState(v.ID, serve.StateDone)
	if code, _ := h.do("GET", "/debug/jobs?id="+v.Trace, nil); code != 200 {
		t.Errorf("flight recorder lookup by minted trace: %d", code)
	}
}

// TestFlightRecorderPinsFailures pins that a failed job's trace is
// retained as pinned and survives subsequent healthy traffic.
func TestFlightRecorderPinsFailures(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2, FlightRecorderSize: 2})
	// A 1ms deadline on a real workload fails with timeout.
	bad := h.submit(&serve.SubmitRequest{Circuit: "qv", N: 14, Seed: 1, TimeoutMS: 1})
	h.waitState(bad.ID, serve.StateFailed)
	for i := 0; i < 4; i++ {
		// Distinct register sizes: result-cache hits of one circuit would
		// not keep minting fresh recorder slots.
		ok := h.submit(&serve.SubmitRequest{Circuit: "ghz", N: 4 + i})
		h.waitState(ok.ID, serve.StateDone)
	}
	code, raw := h.do("GET", "/debug/jobs?id="+bad.ID, nil)
	if code != 200 {
		t.Fatalf("failed job evicted from flight recorder: %d", code)
	}
	var jt obs.JobTrace
	if err := json.Unmarshal(raw, &jt); err != nil {
		t.Fatal(err)
	}
	if !jt.Pinned || jt.State != serve.StateFailed || jt.Reason != "timeout" {
		t.Errorf("JobTrace = {pinned %v, state %s, reason %s}, want pinned failed timeout",
			jt.Pinned, jt.State, jt.Reason)
	}
}

// TestHealthzCapacityAndLatency pins the extended /healthz shape:
// capacity limits, uptime, the p50/p95/p99 latency summaries, and the
// result-cache block.
func TestHealthzCapacityAndLatency(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 1, QueueDepth: 7, MaxInFlight: 3, MaxQubits: 21})
	v := h.submit(&serve.SubmitRequest{QASM: bellQASM})
	h.waitState(v.ID, serve.StateDone)

	code, raw := h.do("GET", "/healthz", nil)
	if code != 200 {
		t.Fatalf("/healthz: %d", code)
	}
	var body struct {
		Status   string  `json:"status"`
		UptimeS  float64 `json:"uptime_s"`
		Capacity struct {
			QueueDepth  int `json:"queue_depth"`
			MaxInflight int `json:"max_inflight"`
			MaxQubits   int `json:"max_qubits"`
		} `json:"capacity"`
		Latency map[string]struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"latency"`
		Cache struct {
			Enabled     bool  `json:"enabled"`
			BudgetBytes int64 `json:"budget_bytes"`
			Entries     int   `json:"entries"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.UptimeS < 0 {
		t.Errorf("status %q uptime %v", body.Status, body.UptimeS)
	}
	if body.Capacity.QueueDepth != 7 || body.Capacity.MaxInflight != 3 || body.Capacity.MaxQubits != 21 {
		t.Errorf("capacity = %+v", body.Capacity)
	}
	for _, k := range []string{"queue_wait_ns", "run_ns", "e2e_ns"} {
		l, ok := body.Latency[k]
		if !ok || l.Count < 1 || l.P99 < l.P50 || l.P50 <= 0 {
			t.Errorf("latency[%s] = %+v (present %v)", k, l, ok)
		}
	}
	if !body.Cache.Enabled || body.Cache.BudgetBytes <= 0 || body.Cache.Entries != 1 {
		t.Errorf("cache block = %+v, want enabled with the bell entry", body.Cache)
	}
}
