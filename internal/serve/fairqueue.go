package serve

import (
	"sync"
)

// fairQueue is the weighted-fair replacement for the server's former
// global FIFO: jobs are queued per tenant (FIFO within a tenant) and
// dispatched by stride scheduling, so tenants drain proportionally to
// their weights instead of strictly by arrival order. A heavy tenant
// that floods the queue no longer delays a light tenant's next job by
// the whole backlog — only by the jobs already in flight plus at most
// one dispatch round (DESIGN.md §13).
//
// Stride scheduling: every tenant carries a pass value; Pop picks the
// eligible tenant with the smallest pass and advances it by
// strideScale/weight. A tenant that goes idle and comes back re-enters
// at the queue's current virtual time (never with banked credit), so it
// cannot starve the tenants that kept submitting while it was away.
//
// The queue also enforces the per-tenant in-flight cap: Pop skips
// tenants with maxInFlight jobs already running and blocks when no
// tenant is eligible. Every Pop must be paired with exactly one Done for
// the popped job's tenant — including jobs the caller discards (e.g.
// canceled while queued).
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenantQueue
	queued  int // total queued jobs across tenants
	virt    uint64
	closed  bool

	maxInFlight int // per-tenant running cap; <=0 disables
	weightOf    func(tenant string) int
}

// tenantQueue is one tenant's FIFO plus its scheduling state.
type tenantQueue struct {
	jobs    []*job
	running int
	pass    uint64
	stride  uint64
}

// strideScale is the stride numerator: a weight-w tenant advances its
// pass by strideScale/w per dispatch, so relative dispatch rates are
// proportional to weights.
const strideScale = 1 << 20

// newFairQueue builds an empty queue. weightOf maps a tenant to its
// scheduling weight (values < 1 are treated as 1); maxInFlight is the
// per-tenant running cap (<= 0 for none).
func newFairQueue(maxInFlight int, weightOf func(string) int) *fairQueue {
	q := &fairQueue{
		tenants:     make(map[string]*tenantQueue),
		maxInFlight: maxInFlight,
		weightOf:    weightOf,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fairQueue) tenantLocked(name string) *tenantQueue {
	tq := q.tenants[name]
	if tq == nil {
		w := 1
		if q.weightOf != nil {
			if got := q.weightOf(name); got > 0 {
				w = got
			}
		}
		tq = &tenantQueue{stride: strideScale / uint64(w)}
		q.tenants[name] = tq
	}
	return tq
}

// Push appends a job to its tenant's FIFO and wakes one waiter. It never
// rejects — quota checks happen at admission, before Push. Returns false
// only after Close.
func (q *fairQueue) Push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	tq := q.tenantLocked(j.tenant)
	if len(tq.jobs) == 0 {
		// (Re-)activation: enter at the current virtual time so an idle
		// spell never banks priority.
		if tq.pass < q.virt {
			tq.pass = q.virt
		}
	}
	tq.jobs = append(tq.jobs, j)
	q.queued++
	q.cond.Signal()
	return true
}

// Pop blocks until a job is dispatchable and returns it, or returns nil
// once the queue is closed. The popped job's tenant is accounted as
// running until Done is called for it.
func (q *fairQueue) Pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil
		}
		if tq := q.pickLocked(); tq != nil {
			j := tq.jobs[0]
			tq.jobs = tq.jobs[1:]
			q.queued--
			q.virt = tq.pass
			tq.pass += tq.stride
			tq.running++
			return j
		}
		q.cond.Wait()
	}
}

// pickLocked returns the eligible tenant with the smallest pass value
// (non-empty FIFO, under the in-flight cap), or nil.
func (q *fairQueue) pickLocked() *tenantQueue {
	var best *tenantQueue
	for _, tq := range q.tenants {
		if len(tq.jobs) == 0 {
			continue
		}
		if q.maxInFlight > 0 && tq.running >= q.maxInFlight {
			continue
		}
		if best == nil || tq.pass < best.pass {
			best = tq
		}
	}
	return best
}

// Done releases one running slot of a tenant (paired with the Pop that
// returned its job) and wakes waiters that may now be eligible.
func (q *fairQueue) Done(tenant string) {
	q.mu.Lock()
	if tq := q.tenants[tenant]; tq != nil && tq.running > 0 {
		tq.running--
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns the total number of queued jobs.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// TenantQueued returns how many jobs one tenant has queued.
func (q *fairQueue) TenantQueued(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if tq := q.tenants[tenant]; tq != nil {
		return len(tq.jobs)
	}
	return 0
}

// TenantRunning returns how many popped-but-not-Done jobs a tenant has.
func (q *fairQueue) TenantRunning(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if tq := q.tenants[tenant]; tq != nil {
		return tq.running
	}
	return 0
}

// Close wakes every Pop waiter with nil. Jobs still queued are abandoned
// in place (the server has already marked them canceled by the time it
// closes the queue).
func (q *fairQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
