package serve

import (
	"sync"
)

// fairQueue is the weighted-fair replacement for the server's former
// global FIFO: jobs are queued per tenant (FIFO within a tenant) and
// dispatched by stride scheduling, so tenants drain proportionally to
// their weights instead of strictly by arrival order. A heavy tenant
// that floods the queue no longer delays a light tenant's next job by
// the whole backlog — only by the jobs already in flight plus at most
// one dispatch round (DESIGN.md §13).
//
// Stride scheduling: every tenant carries a pass value; Pop picks the
// eligible tenant with the smallest pass and advances it by
// strideScale/weight. A tenant that goes idle and comes back re-enters
// at the queue's current virtual time (never with banked credit), so it
// cannot starve the tenants that kept submitting while it was away.
//
// The queue also enforces the per-tenant in-flight cap: Pop skips
// tenants with maxInFlight jobs already running and blocks when no
// tenant is eligible. Every Pop must be paired with exactly one Done for
// the popped job's tenant — including jobs the caller discards (e.g.
// canceled while queued).
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenantQueue
	queued  int // total queued jobs across tenants
	virt    uint64
	closed  bool

	maxInFlight int // per-tenant running cap; <=0 disables
	weightOf    func(tenant string) int
}

// tenantQueue is one tenant's FIFO plus its scheduling state.
type tenantQueue struct {
	name    string
	jobs    []*job
	running int
	pass    uint64
}

// strideScale is the stride numerator: a weight-w tenant advances its
// pass by strideScale/w per dispatch, so relative dispatch rates are
// proportional to weights.
const strideScale = 1 << 20

// passRebaseThreshold triggers a rebase of the pass space long before
// uint64 wraparound could reorder tenants: once the queue's virtual time
// crosses it, the minimum pass across tenants (and the virtual time) is
// subtracted from everything. Ordering — and therefore fairness — is
// preserved exactly; only the absolute magnitude resets.
const passRebaseThreshold = 1 << 62

// newFairQueue builds an empty queue. weightOf maps a tenant to its
// scheduling weight (values < 1 are treated as 1); maxInFlight is the
// per-tenant running cap (<= 0 for none).
func newFairQueue(maxInFlight int, weightOf func(string) int) *fairQueue {
	q := &fairQueue{
		tenants:     make(map[string]*tenantQueue),
		maxInFlight: maxInFlight,
		weightOf:    weightOf,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fairQueue) tenantLocked(name string) *tenantQueue {
	tq := q.tenants[name]
	if tq == nil {
		tq = &tenantQueue{name: name}
		q.tenants[name] = tq
	}
	return tq
}

// strideLocked resolves a tenant's current stride. The weight is looked
// up on every dispatch rather than cached at first sight, so a weight
// change takes effect from the very next Pop even while the tenant has
// jobs queued. weightOf must not acquire locks ordered after q.mu (the
// server's resolver only reads immutable config).
func (q *fairQueue) strideLocked(tq *tenantQueue) uint64 {
	w := 1
	if q.weightOf != nil {
		if got := q.weightOf(tq.name); got > 0 {
			w = got
		}
	}
	return strideScale / uint64(w)
}

// Push appends a job to its tenant's FIFO and wakes one waiter. It never
// rejects — quota checks happen at admission, before Push. Returns false
// only after Close.
func (q *fairQueue) Push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	tq := q.tenantLocked(j.tenant)
	if len(tq.jobs) == 0 {
		// (Re-)activation: enter at the current virtual time so an idle
		// spell never banks priority.
		if tq.pass < q.virt {
			tq.pass = q.virt
		}
	}
	tq.jobs = append(tq.jobs, j)
	q.queued++
	q.cond.Signal()
	return true
}

// Pop blocks until a job is dispatchable and returns it, or returns nil
// once the queue is closed. The popped job's tenant is accounted as
// running until Done is called for it.
func (q *fairQueue) Pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil
		}
		if tq := q.pickLocked(); tq != nil {
			j := tq.jobs[0]
			tq.jobs = tq.jobs[1:]
			q.queued--
			q.virt = tq.pass
			tq.pass += q.strideLocked(tq)
			tq.running++
			if q.virt >= passRebaseThreshold {
				q.rebaseLocked()
			}
			return j
		}
		q.cond.Wait()
	}
}

// rebaseLocked shifts the whole pass space down by its minimum so the
// counters stay far from uint64 wraparound. At one strideScale per
// dispatch it takes ~2^42 dispatches to trip, but the behavior at the
// boundary is defined (and tested) rather than a silent reordering.
func (q *fairQueue) rebaseLocked() {
	// Idle tenants carry stale low passes that would pin the base; apply
	// the reactivation clamp (enter at current virtual time) eagerly —
	// it is exactly what Push would do, so ordering is unaffected.
	for _, tq := range q.tenants {
		if len(tq.jobs) == 0 && tq.pass < q.virt {
			tq.pass = q.virt
		}
	}
	base := q.virt
	for _, tq := range q.tenants {
		if tq.pass < base {
			base = tq.pass
		}
	}
	q.virt -= base
	for _, tq := range q.tenants {
		tq.pass -= base
	}
}

// pickLocked returns the eligible tenant with the smallest pass value
// (non-empty FIFO, under the in-flight cap), or nil.
func (q *fairQueue) pickLocked() *tenantQueue {
	var best *tenantQueue
	for _, tq := range q.tenants {
		if len(tq.jobs) == 0 {
			continue
		}
		if q.maxInFlight > 0 && tq.running >= q.maxInFlight {
			continue
		}
		if best == nil || tq.pass < best.pass {
			best = tq
		}
	}
	return best
}

// Done releases one running slot of a tenant (paired with the Pop that
// returned its job) and wakes waiters that may now be eligible.
func (q *fairQueue) Done(tenant string) {
	q.mu.Lock()
	if tq := q.tenants[tenant]; tq != nil && tq.running > 0 {
		tq.running--
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns the total number of queued jobs.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// TenantQueued returns how many jobs one tenant has queued.
func (q *fairQueue) TenantQueued(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if tq := q.tenants[tenant]; tq != nil {
		return len(tq.jobs)
	}
	return 0
}

// TenantRunning returns how many popped-but-not-Done jobs a tenant has.
func (q *fairQueue) TenantRunning(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if tq := q.tenants[tenant]; tq != nil {
		return tq.running
	}
	return 0
}

// Close wakes every Pop waiter with nil. Jobs still queued are abandoned
// in place (the server has already marked them canceled by the time it
// closes the queue).
func (q *fairQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
