package serve

import (
	"testing"
	"time"
)

// fairness and cap behavior of the stride queue, exercised directly —
// the e2e counterpart lives in tenants_test.go.

func fqJob(tenant string) *job { return &job{tenant: tenant} }

// popN pops n jobs, releasing each immediately so per-tenant in-flight
// caps never bite, and returns the dispatch counts per tenant.
func popN(t *testing.T, q *fairQueue, n int) map[string]int {
	t.Helper()
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		j := q.Pop()
		if j == nil {
			t.Fatalf("Pop %d returned nil on an open queue", i)
		}
		counts[j.tenant]++
		q.Done(j.tenant)
	}
	return counts
}

func TestFairQueueWeightedShare(t *testing.T) {
	weights := map[string]int{"gold": 2, "bronze": 1}
	q := newFairQueue(1, func(name string) int { return weights[name] })
	for i := 0; i < 30; i++ {
		q.Push(fqJob("gold"))
		q.Push(fqJob("bronze"))
	}
	counts := popN(t, q, 30)
	// Stride scheduling gives gold twice bronze's dispatch rate; ties on
	// equal pass values may fall either way, hence the ±1 slack.
	if counts["gold"] < 19 || counts["gold"] > 21 {
		t.Errorf("gold dispatched %d of 30, want 20±1 (bronze %d)", counts["gold"], counts["bronze"])
	}
	if counts["gold"]+counts["bronze"] != 30 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFairQueueEqualWeightsInterleave(t *testing.T) {
	q := newFairQueue(1, func(string) int { return 1 })
	for i := 0; i < 10; i++ {
		q.Push(fqJob("a"))
		q.Push(fqJob("b"))
	}
	counts := popN(t, q, 20)
	if counts["a"] != 10 || counts["b"] != 10 {
		t.Errorf("equal weights dispatched %v, want 10/10", counts)
	}
}

// TestFairQueueReactivationNoBurst pins the re-activation rule: a tenant
// that was idle while others ran re-enters at the current virtual time
// instead of replaying its missed share as a burst.
func TestFairQueueReactivationNoBurst(t *testing.T) {
	q := newFairQueue(1, func(string) int { return 1 })
	for i := 0; i < 6; i++ {
		q.Push(fqJob("a"))
	}
	popN(t, q, 3) // a advances the virtual clock alone
	q.Push(fqJob("b"))
	q.Push(fqJob("b"))

	// b re-enters at the current virtual time, so it goes next — but only
	// once before a gets its turn back; no catch-up burst of b's.
	if j := q.Pop(); j.tenant != "b" {
		t.Fatalf("first pop after reactivation = %q, want b", j.tenant)
	}
	q.Done("b")
	next := popN(t, q, 2)
	if next["a"] != 1 || next["b"] != 1 {
		t.Errorf("pops after b's first turn = %v, want one each", next)
	}
}

func TestFairQueuePerTenantInFlightCap(t *testing.T) {
	q := newFairQueue(1, func(string) int { return 1 })
	q.Push(fqJob("a"))
	q.Push(fqJob("a"))
	q.Push(fqJob("b"))

	first := q.Pop()
	second := q.Pop()
	if first.tenant == second.tenant {
		t.Fatalf("cap 1 dispatched %q twice without Done", first.tenant)
	}
	// Both tenants are now at their cap; a's second job must wait for a
	// Done even though it is queued and the queue is open.
	got := make(chan *job, 1)
	go func() { got <- q.Pop() }()
	select {
	case j := <-got:
		t.Fatalf("Pop dispatched %q past the per-tenant cap", j.tenant)
	case <-time.After(50 * time.Millisecond):
	}
	q.Done("b")
	select {
	case j := <-got:
		// Only a has work left; releasing b's slot does not admit a.
		t.Fatalf("Pop returned %q after Done(b); a is still at cap", j.tenant)
	case <-time.After(50 * time.Millisecond):
	}
	q.Done("a")
	select {
	case j := <-got:
		if j.tenant != "a" {
			t.Fatalf("unblocked pop = %q, want a", j.tenant)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop still blocked after Done(a)")
	}
}

func TestFairQueueCloseUnblocks(t *testing.T) {
	q := newFairQueue(1, func(string) int { return 1 })
	got := make(chan *job, 1)
	go func() { got <- q.Pop() }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case j := <-got:
		if j != nil {
			t.Fatalf("Pop on closed queue = %+v, want nil", j)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Pop")
	}
	if q.Push(fqJob("a")) {
		t.Fatal("Push accepted a job after Close")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on a closed empty queue did not return nil")
	}
}

func TestFairQueueAccounting(t *testing.T) {
	q := newFairQueue(2, func(string) int { return 1 })
	q.Push(fqJob("a"))
	q.Push(fqJob("a"))
	q.Push(fqJob("b"))
	if q.Len() != 3 || q.TenantQueued("a") != 2 || q.TenantQueued("b") != 1 {
		t.Fatalf("len=%d a=%d b=%d", q.Len(), q.TenantQueued("a"), q.TenantQueued("b"))
	}
	j := q.Pop()
	if q.Len() != 2 || q.TenantRunning(j.tenant) != 1 {
		t.Fatalf("after pop: len=%d running(%s)=%d", q.Len(), j.tenant, q.TenantRunning(j.tenant))
	}
	q.Done(j.tenant)
	if q.TenantRunning(j.tenant) != 0 {
		t.Fatalf("running(%s) after Done = %d", j.tenant, q.TenantRunning(j.tenant))
	}
}
