package serve

import (
	"testing"
	"time"
)

// fairness and cap behavior of the stride queue, exercised directly —
// the e2e counterpart lives in tenants_test.go.

func fqJob(tenant string) *job { return &job{tenant: tenant} }

// popN pops n jobs, releasing each immediately so per-tenant in-flight
// caps never bite, and returns the dispatch counts per tenant.
func popN(t *testing.T, q *fairQueue, n int) map[string]int {
	t.Helper()
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		j := q.Pop()
		if j == nil {
			t.Fatalf("Pop %d returned nil on an open queue", i)
		}
		counts[j.tenant]++
		q.Done(j.tenant)
	}
	return counts
}

func TestFairQueueWeightedShare(t *testing.T) {
	weights := map[string]int{"gold": 2, "bronze": 1}
	q := newFairQueue(1, func(name string) int { return weights[name] })
	for i := 0; i < 30; i++ {
		q.Push(fqJob("gold"))
		q.Push(fqJob("bronze"))
	}
	counts := popN(t, q, 30)
	// Stride scheduling gives gold twice bronze's dispatch rate; ties on
	// equal pass values may fall either way, hence the ±1 slack.
	if counts["gold"] < 19 || counts["gold"] > 21 {
		t.Errorf("gold dispatched %d of 30, want 20±1 (bronze %d)", counts["gold"], counts["bronze"])
	}
	if counts["gold"]+counts["bronze"] != 30 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFairQueueEqualWeightsInterleave(t *testing.T) {
	q := newFairQueue(1, func(string) int { return 1 })
	for i := 0; i < 10; i++ {
		q.Push(fqJob("a"))
		q.Push(fqJob("b"))
	}
	counts := popN(t, q, 20)
	if counts["a"] != 10 || counts["b"] != 10 {
		t.Errorf("equal weights dispatched %v, want 10/10", counts)
	}
}

// TestFairQueueReactivationNoBurst pins the re-activation rule: a tenant
// that was idle while others ran re-enters at the current virtual time
// instead of replaying its missed share as a burst.
func TestFairQueueReactivationNoBurst(t *testing.T) {
	q := newFairQueue(1, func(string) int { return 1 })
	for i := 0; i < 6; i++ {
		q.Push(fqJob("a"))
	}
	popN(t, q, 3) // a advances the virtual clock alone
	q.Push(fqJob("b"))
	q.Push(fqJob("b"))

	// b re-enters at the current virtual time, so it goes next — but only
	// once before a gets its turn back; no catch-up burst of b's.
	if j := q.Pop(); j.tenant != "b" {
		t.Fatalf("first pop after reactivation = %q, want b", j.tenant)
	}
	q.Done("b")
	next := popN(t, q, 2)
	if next["a"] != 1 || next["b"] != 1 {
		t.Errorf("pops after b's first turn = %v, want one each", next)
	}
}

func TestFairQueuePerTenantInFlightCap(t *testing.T) {
	q := newFairQueue(1, func(string) int { return 1 })
	q.Push(fqJob("a"))
	q.Push(fqJob("a"))
	q.Push(fqJob("b"))

	first := q.Pop()
	second := q.Pop()
	if first.tenant == second.tenant {
		t.Fatalf("cap 1 dispatched %q twice without Done", first.tenant)
	}
	// Both tenants are now at their cap; a's second job must wait for a
	// Done even though it is queued and the queue is open.
	got := make(chan *job, 1)
	go func() { got <- q.Pop() }()
	select {
	case j := <-got:
		t.Fatalf("Pop dispatched %q past the per-tenant cap", j.tenant)
	case <-time.After(50 * time.Millisecond):
	}
	q.Done("b")
	select {
	case j := <-got:
		// Only a has work left; releasing b's slot does not admit a.
		t.Fatalf("Pop returned %q after Done(b); a is still at cap", j.tenant)
	case <-time.After(50 * time.Millisecond):
	}
	q.Done("a")
	select {
	case j := <-got:
		if j.tenant != "a" {
			t.Fatalf("unblocked pop = %q, want a", j.tenant)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop still blocked after Done(a)")
	}
}

func TestFairQueueCloseUnblocks(t *testing.T) {
	q := newFairQueue(1, func(string) int { return 1 })
	got := make(chan *job, 1)
	go func() { got <- q.Pop() }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case j := <-got:
		if j != nil {
			t.Fatalf("Pop on closed queue = %+v, want nil", j)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Pop")
	}
	if q.Push(fqJob("a")) {
		t.Fatal("Push accepted a job after Close")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on a closed empty queue did not return nil")
	}
}

func TestFairQueueAccounting(t *testing.T) {
	q := newFairQueue(2, func(string) int { return 1 })
	q.Push(fqJob("a"))
	q.Push(fqJob("a"))
	q.Push(fqJob("b"))
	if q.Len() != 3 || q.TenantQueued("a") != 2 || q.TenantQueued("b") != 1 {
		t.Fatalf("len=%d a=%d b=%d", q.Len(), q.TenantQueued("a"), q.TenantQueued("b"))
	}
	j := q.Pop()
	if q.Len() != 2 || q.TenantRunning(j.tenant) != 1 {
		t.Fatalf("after pop: len=%d running(%s)=%d", q.Len(), j.tenant, q.TenantRunning(j.tenant))
	}
	q.Done(j.tenant)
	if q.TenantRunning(j.tenant) != 0 {
		t.Fatalf("running(%s) after Done = %d", j.tenant, q.TenantRunning(j.tenant))
	}
}

// TestFairQueueWeightChangeWhileQueued pins that a weight change takes
// effect mid-backlog: the stride is resolved at every dispatch, not
// cached when the tenant is first seen.
func TestFairQueueWeightChangeWhileQueued(t *testing.T) {
	weights := map[string]int{"a": 1, "b": 1}
	q := newFairQueue(1, func(name string) int { return weights[name] })
	for i := 0; i < 40; i++ {
		q.Push(fqJob("a"))
		q.Push(fqJob("b"))
	}
	// Equal weights for the first quarter of the backlog...
	first := popN(t, q, 20)
	if first["a"] != 10 || first["b"] != 10 {
		t.Fatalf("equal-weight phase dispatched %v, want 10/10", first)
	}
	// ...then a is promoted while both still have jobs queued: from the
	// next dispatch on it drains at 3× b's rate.
	weights["a"] = 3
	rest := popN(t, q, 40)
	if rest["a"] < 27 || rest["a"] > 31 {
		t.Errorf("after weight change a dispatched %d of 40, want ~30 (b %d)", rest["a"], rest["b"])
	}
}

// TestFairQueueTenantRemovalWithInFlight pins the guards around a tenant
// disappearing while it still has popped-but-not-Done work: the late
// Done neither panics nor corrupts accounting, extra Dones do not
// underflow, and the tenant can re-enter later as if new.
func TestFairQueueTenantRemovalWithInFlight(t *testing.T) {
	q := newFairQueue(2, func(string) int { return 1 })
	q.Push(fqJob("a"))
	if j := q.Pop(); j.tenant != "a" {
		t.Fatalf("popped %q, want a", j.tenant)
	}

	// Simulate removal while a's job is in flight.
	q.mu.Lock()
	delete(q.tenants, "a")
	q.mu.Unlock()

	q.Done("a") // late completion of the removed tenant's job
	q.Done("a") // double Done must not underflow anyone
	if got := q.TenantRunning("a"); got != 0 {
		t.Fatalf("TenantRunning(removed) = %d, want 0", got)
	}
	if got := q.TenantQueued("a"); got != 0 {
		t.Fatalf("TenantQueued(removed) = %d, want 0", got)
	}
	// Done for a tenant the queue has never seen is equally harmless.
	q.Done("ghost")

	// The queue still schedules, and the removed tenant re-enters fresh
	// at the current virtual time.
	q.Push(fqJob("a"))
	q.Push(fqJob("b"))
	counts := popN(t, q, 2)
	if counts["a"] != 1 || counts["b"] != 1 {
		t.Fatalf("post-removal dispatches = %v, want one each", counts)
	}
}

// TestFairQueuePassRebase pins the overflow behavior: when the virtual
// clock crosses passRebaseThreshold the whole pass space shifts down,
// preserving relative order — no tenant is suddenly favored or starved
// by wraparound.
func TestFairQueuePassRebase(t *testing.T) {
	weights := map[string]int{"heavy": 4, "light": 1}
	q := newFairQueue(1, func(name string) int { return weights[name] })
	q.Push(fqJob("heavy"))
	q.Push(fqJob("light"))
	q.Push(fqJob("idle")) // establish an idle tenant with a stale pass
	popN(t, q, 3)

	// Advance the scheduler state to the eve of the threshold.
	q.mu.Lock()
	shift := uint64(passRebaseThreshold) - 1 - q.virt
	q.virt += shift
	for _, tq := range q.tenants {
		tq.pass += shift
	}
	q.mu.Unlock()

	for i := 0; i < 20; i++ {
		q.Push(fqJob("heavy"))
		q.Push(fqJob("light"))
	}
	counts := popN(t, q, 25)
	q.mu.Lock()
	virt := q.virt
	var maxPass uint64
	for _, tq := range q.tenants {
		if tq.pass > maxPass {
			maxPass = tq.pass
		}
	}
	q.mu.Unlock()
	if virt >= passRebaseThreshold || maxPass >= passRebaseThreshold {
		t.Fatalf("rebase never fired: virt=%d maxPass=%d", virt, maxPass)
	}
	// Weighted fairness held straight through the rebase: heavy gets ~4/5
	// of the 25 dispatches.
	if counts["heavy"] < 18 || counts["heavy"] > 22 {
		t.Errorf("dispatches across rebase = %v, want heavy ~20 of 25", counts)
	}
	if counts["idle"] != 0 {
		t.Errorf("idle tenant dispatched %d jobs with none queued", counts["idle"])
	}

	// The idle tenant was clamped, not deleted: it re-enters at the new
	// virtual time and is not owed 2^62 of catch-up credit.
	q.Push(fqJob("idle"))
	q.Push(fqJob("idle"))
	q.Push(fqJob("heavy"))
	if first := q.Pop(); first == nil {
		t.Fatal("Pop after rebase returned nil")
	} else {
		q.Done(first.tenant)
	}
	after := popN(t, q, 2)
	if after["idle"] == 2 {
		t.Error("reactivated idle tenant dispatched back-to-back; it banked credit across the rebase")
	}
}
