package serve

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"sync"

	"flatdd/internal/core"
)

// This file implements the canonical-circuit result cache and the
// machinery behind single-flight shot batching (DESIGN.md §13).
//
// Key derivation: a cache key is (canonical circuit hash, normalized
// engine options). The circuit hash (circuit.Hash) identifies what is
// simulated; the options string covers exactly the request fields that
// can change the simulated *state* or the reported engine statistics —
// the DMAV cache mode, the fusion mode, and the fusion width k. Fields
// that only shape the response (top, shots, seed) or the run's lifetime
// (timeout) are deliberately excluded: those are recomputed per request
// from the cached final state, which is what makes shot batching
// possible in the first place.
//
// An entry stores the top maxTopAmps amplitudes (the response cap, so
// any top= request can be served) and the cumulative probability
// distribution for shot sampling. The distribution is the expensive
// part — 8·2^n bytes — so it is only retained when it fits the per-entry
// budget; an entry without it still serves shot-less requests, and a
// shots>0 request against such an entry is a miss.

// maxTopAmps matches the submit-time cap on top= (normalize); storing
// this many amplitudes means every admissible request is servable.
const maxTopAmps = 1024

// cacheKey identifies one simulation outcome.
type cacheKey struct {
	circuit string // canonical circuit hash
	options string // normalized result-affecting engine options
}

// optionsKey renders the result-affecting slice of a job's options.
func optionsKey(o runOptions) string {
	return fmt.Sprintf("cache=%d fusion=%d k=%d", o.cache, o.fusion, o.k)
}

// cacheEntry is one cached simulation outcome.
type cacheEntry struct {
	qubits int
	// top holds the maxTopAmps largest-magnitude basis states, rendered
	// once; per-request top= slices a prefix.
	top []AmpView
	// cum is the cumulative probability distribution (index-ordered) for
	// seeded shot sampling; nil when the distribution was too large to
	// retain, in which case the entry cannot serve shots>0 requests.
	cum []float64
	// stats is the producing run's engine statistics with the per-job
	// Resources attribution stripped (a served hit did not spend them).
	stats ResultStats
	bytes int64
	seq   uint64 // LRU recency stamp, maintained by resultCache
}

// servable reports whether the entry can answer a request with the given
// shot count.
func (e *cacheEntry) servable(shots int) bool {
	return e != nil && (shots <= 0 || e.cum != nil)
}

// resultCache is a bounded LRU over cache entries. Lock ordering: the
// server may call into the cache while holding Server.mu; the cache
// never calls back out.
type resultCache struct {
	mu       sync.Mutex
	budget   int64 // total byte budget; <= 0 disables the cache
	maxEntry int64 // per-entry cap; larger results are not stored
	entries  map[cacheKey]*cacheEntry
	bytes    int64
	seq      uint64
	evicted  int64
}

func newResultCache(budget, maxEntry int64) *resultCache {
	return &resultCache{
		budget:   budget,
		maxEntry: maxEntry,
		entries:  make(map[cacheKey]*cacheEntry),
	}
}

func (c *resultCache) enabled() bool { return c.budget > 0 }

// get returns the entry for key if present and servable for the given
// shot count, bumping its recency.
func (c *resultCache) get(key cacheKey, shots int) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if !e.servable(shots) {
		return nil
	}
	c.seq++
	e.seq = c.seq
	return e
}

// put stores an entry, evicting least-recently-used entries until the
// budget holds. Oversized entries and a disabled cache are no-ops.
func (c *resultCache) put(key cacheKey, e *cacheEntry) bool {
	if e == nil || c.budget <= 0 || e.bytes > c.maxEntry || e.bytes > c.budget {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.entries[key]; old != nil {
		c.bytes -= old.bytes
	}
	c.seq++
	e.seq = c.seq
	c.entries[key] = e
	c.bytes += e.bytes
	for c.bytes > c.budget {
		var lruKey cacheKey
		var lru *cacheEntry
		for k, v := range c.entries {
			if v == e {
				continue // never evict the entry just inserted
			}
			if lru == nil || v.seq < lru.seq {
				lruKey, lru = k, v
			}
		}
		if lru == nil {
			break
		}
		delete(c.entries, lruKey)
		c.bytes -= lru.bytes
		c.evicted++
	}
	return true
}

// Stats returns (entries, bytes, evictions) for gauges and /healthz.
func (c *resultCache) Stats() (int, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes, c.evicted
}

// buildCacheEntry captures a finished simulation as a cache entry. The
// cumulative distribution is built only when withProbs is set (it is the
// 8·2^n-byte part); the top-amplitude prefix is always captured.
func buildCacheEntry(j *job, sim *core.Simulator, st core.Stats, withProbs bool) *cacheEntry {
	n := j.circ.Qubits
	entries := sim.TopAmplitudes(maxTopAmps)
	top := make([]AmpView, 0, len(entries))
	for _, e := range entries {
		a := e.Amplitude
		top = append(top, AmpView{
			Basis:       fmt.Sprintf("%0*b", n, e.Index),
			Probability: cmplx.Abs(a) * cmplx.Abs(a),
			Re:          real(a),
			Im:          imag(a),
		})
	}
	e := &cacheEntry{
		qubits: n,
		top:    top,
		stats:  resultStats(st),
	}
	e.stats.Resources = nil // per-job attribution does not transfer to hits
	if withProbs {
		probs := sim.Probabilities()
		cum := make([]float64, len(probs))
		acc := 0.0
		for i, p := range probs {
			acc += p
			cum[i] = acc
		}
		e.cum = cum
	}
	// Entry footprint: the distribution dominates; the amplitude views
	// cost ~64 B of numbers plus an n-char basis string each.
	e.bytes = int64(len(e.cum))*8 + int64(len(e.top))*int64(64+n)
	return e
}

// resultFromEntry assembles a job's result from a cache entry, applying
// the job's own top= and drawing its own seeded shot stream.
func resultFromEntry(j *job, e *cacheEntry) *JobResult {
	top := e.top
	if j.opts.top < len(top) {
		top = top[:j.opts.top]
	}
	out := make([]AmpView, len(top))
	copy(out, top)
	res := &JobResult{
		ID:      j.id,
		Circuit: j.circ.Name,
		Tenant:  j.tenant,
		Cache:   j.cacheStatus,
		Stats:   e.stats,
		Top:     out,
	}
	if j.opts.shots > 0 {
		res.Shots = sampleFromCum(e.cum, e.qubits, j.opts.shots, j.opts.seed)
	}
	return res
}

// sampleFromCum draws seeded measurement shots from a cumulative
// distribution, matching core.Simulator.Sample's semantics (first index
// with x < cum[i], falling through to the last state) so a cache hit's
// shot stream is identical to a fresh simulation's for the same seed.
func sampleFromCum(cum []float64, n, shots int, seed int64) map[string]int {
	if shots <= 0 || len(cum) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[string]int)
	for k := 0; k < shots; k++ {
		x := rng.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if x < cum[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		counts[fmt.Sprintf("%0*b", n, uint64(lo))]++
	}
	return counts
}

// flight is one in-progress simulation with coalesced subscribers: the
// leader runs the engine; subscribers are fully admitted jobs that never
// enter the queue and are completed from the leader's entry, each with
// its own top= prefix and seeded shot stream. If the leader fails or is
// canceled, the oldest live subscriber is promoted to leader so the
// remaining subscribers still get a result.
type flight struct {
	leader *job
	subs   []*job
}

// maxCoalesced caps subscribers per flight so one hot circuit cannot
// accumulate unbounded response state; requests beyond the cap are
// rejected with 429/coalesce_limit.
const maxCoalesced = 64
