package serve

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"sync"

	"flatdd/internal/core"
)

// This file implements the canonical-circuit result cache and the
// machinery behind single-flight shot batching (DESIGN.md §13).
//
// Key derivation: a cache key is (canonical circuit hash, normalized
// engine options). The circuit hash (circuit.Hash) identifies what is
// simulated; the options string covers exactly the request fields that
// can change the simulated *state* or the reported engine statistics —
// the DMAV cache mode, the fusion mode, and the fusion width k. Fields
// that only shape the response (top, shots, seed) or the run's lifetime
// (timeout) are deliberately excluded: those are recomputed per request
// from the cached final state, which is what makes shot batching
// possible in the first place.
//
// An entry stores the top maxTopAmps amplitudes (the response cap, so
// any top= request can be served) and the cumulative probability
// distribution for shot sampling. The distribution is the expensive
// part — 8·2^n bytes — so it is only retained when it fits the per-entry
// budget; an entry without it still serves shot-less requests, and a
// shots>0 request against such an entry is a miss.

// maxTopAmps matches the submit-time cap on top= (normalize); storing
// this many amplitudes means every admissible request is servable.
const maxTopAmps = 1024

// cacheKey identifies one simulation outcome.
type cacheKey struct {
	circuit string // canonical circuit hash
	options string // normalized result-affecting engine options
}

// optionsKey renders the result-affecting slice of a job's options.
func optionsKey(o runOptions) string {
	return fmt.Sprintf("cache=%d fusion=%d k=%d", o.cache, o.fusion, o.k)
}

// cacheEntry is one cached simulation outcome.
type cacheEntry struct {
	qubits int
	// top holds the maxTopAmps largest-magnitude basis states, rendered
	// once; per-request top= slices a prefix.
	top []AmpView
	// cum is the cumulative probability distribution (index-ordered) for
	// seeded shot sampling; nil when the distribution was too large to
	// retain, in which case the entry cannot serve shots>0 requests.
	cum []float64
	// stats is the producing run's engine statistics with the per-job
	// Resources attribution stripped (a served hit did not spend them).
	stats ResultStats
	bytes int64
	seq   uint64 // recency stamp, maintained by resultCache
	// costNs is the ledger-observed engine cost of producing this entry
	// (worker CPU time; wall time when no ledger ran). It feeds the
	// cost-aware eviction priority: cheap-to-recompute entries go first.
	costNs int64
	// pri is the entry's GDSF priority (inflation + cost/size), assigned
	// by resultCache on insert and on every hit.
	pri float64
}

// servable reports whether the entry can answer a request with the given
// shot count.
func (e *cacheEntry) servable(shots int) bool {
	return e != nil && (shots <= 0 || e.cum != nil)
}

// resultCache is a bounded cache with cost-aware (GDSF-style) eviction.
// Each entry's priority is inflation + costNs/bytes: entries that were
// cheap to compute relative to the space they occupy evict first. The
// inflation term is the classic GreedyDual aging trick — it is raised to
// the evicted entry's priority on every eviction, so entries that have
// not been touched since long-ago insertions age out no matter how
// expensive they once were. Hits re-stamp the priority at the current
// inflation, which is what makes the scheme recency-aware: with uniform
// costs it degenerates to exact LRU (the seq tiebreak orders equal
// priorities by recency). Lock ordering: the server may call into the
// cache while holding Server.mu; the cache never calls back out.
type resultCache struct {
	mu        sync.Mutex
	budget    int64 // total byte budget; <= 0 disables the cache
	maxEntry  int64 // per-entry cap; larger results are not stored
	entries   map[cacheKey]*cacheEntry
	bytes     int64
	seq       uint64
	evicted   int64
	inflation float64 // GDSF aging floor; rises to each evicted priority
}

func newResultCache(budget, maxEntry int64) *resultCache {
	return &resultCache{
		budget:   budget,
		maxEntry: maxEntry,
		entries:  make(map[cacheKey]*cacheEntry),
	}
}

func (c *resultCache) enabled() bool { return c.budget > 0 }

// priority computes an entry's GDSF eviction priority at the current
// inflation. The cost/size ratio is "nanoseconds of engine work saved
// per byte of cache spent"; zero-cost entries sit at the inflation
// floor, where the seq tiebreak makes eviction pure LRU.
func (c *resultCache) priority(e *cacheEntry) float64 {
	if e.costNs <= 0 || e.bytes <= 0 {
		return c.inflation
	}
	return c.inflation + float64(e.costNs)/float64(e.bytes)
}

// get returns the entry for key if present and servable for the given
// shot count, bumping its recency and re-stamping its priority at the
// current inflation.
func (c *resultCache) get(key cacheKey, shots int) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if !e.servable(shots) {
		return nil
	}
	c.seq++
	e.seq = c.seq
	e.pri = c.priority(e)
	return e
}

// put stores an entry, evicting lowest-priority entries until the
// budget holds: cheap-to-recompute entries go first, ties broken by
// recency. Oversized entries and a disabled cache are no-ops.
func (c *resultCache) put(key cacheKey, e *cacheEntry) bool {
	if e == nil || c.budget <= 0 || e.bytes > c.maxEntry || e.bytes > c.budget {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.entries[key]; old != nil {
		c.bytes -= old.bytes
	}
	c.seq++
	e.seq = c.seq
	e.pri = c.priority(e)
	c.entries[key] = e
	c.bytes += e.bytes
	for c.bytes > c.budget {
		var vicKey cacheKey
		var vic *cacheEntry
		for k, v := range c.entries {
			if v == e {
				continue // never evict the entry just inserted
			}
			if vic == nil || v.pri < vic.pri || (v.pri == vic.pri && v.seq < vic.seq) {
				vicKey, vic = k, v
			}
		}
		if vic == nil {
			break
		}
		delete(c.entries, vicKey)
		c.bytes -= vic.bytes
		c.evicted++
		// Age the cache: everything inserted or touched from now on must
		// beat the priority this victim died at.
		if vic.pri > c.inflation {
			c.inflation = vic.pri
		}
	}
	return true
}

// Stats returns (entries, bytes, evictions) for gauges and /healthz.
func (c *resultCache) Stats() (int, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes, c.evicted
}

// buildCacheEntry captures a finished simulation as a cache entry. The
// cumulative distribution is built only when withProbs is set (it is the
// 8·2^n-byte part); the top-amplitude prefix is always captured.
func buildCacheEntry(j *job, sim *core.Simulator, st core.Stats, withProbs bool) *cacheEntry {
	n := j.circ.Qubits
	entries := sim.TopAmplitudes(maxTopAmps)
	top := make([]AmpView, 0, len(entries))
	for _, e := range entries {
		a := e.Amplitude
		top = append(top, AmpView{
			Basis:       fmt.Sprintf("%0*b", n, e.Index),
			Probability: cmplx.Abs(a) * cmplx.Abs(a),
			Re:          real(a),
			Im:          imag(a),
		})
	}
	e := &cacheEntry{
		qubits: n,
		top:    top,
		stats:  resultStats(st),
		costNs: entryCost(st),
	}
	e.stats.Resources = nil // per-job attribution does not transfer to hits
	if withProbs {
		probs := sim.Probabilities()
		cum := make([]float64, len(probs))
		acc := 0.0
		for i, p := range probs {
			acc += p
			cum[i] = acc
		}
		e.cum = cum
	}
	// Entry footprint: the distribution dominates; the amplitude views
	// cost ~64 B of numbers plus an n-char basis string each.
	e.bytes = int64(len(e.cum))*8 + int64(len(e.top))*int64(64+n)
	return e
}

// entryCost is the engine cost of recomputing an entry: the ledger's
// attributed worker CPU time when a ledger ran, otherwise the run's wall
// time. This is what the eviction policy weighs against entry size.
func entryCost(st core.Stats) int64 {
	if st.Resources != nil && st.Resources.CPUNs > 0 {
		return st.Resources.CPUNs
	}
	return st.TotalTime.Nanoseconds()
}

// resultFromEntry assembles a job's result from a cache entry, applying
// the job's own top= and drawing its own seeded shot stream.
func resultFromEntry(j *job, e *cacheEntry) *JobResult {
	top := e.top
	if j.opts.top < len(top) {
		top = top[:j.opts.top]
	}
	out := make([]AmpView, len(top))
	copy(out, top)
	res := &JobResult{
		ID:      j.id,
		Circuit: j.circ.Name,
		Tenant:  j.tenant,
		Cache:   j.cacheStatus,
		Stats:   e.stats,
		Top:     out,
	}
	if j.opts.shots > 0 {
		res.Shots = sampleFromCum(e.cum, e.qubits, j.opts.shots, j.opts.seed)
	}
	return res
}

// sampleFromCum draws seeded measurement shots from a cumulative
// distribution, matching core.Simulator.Sample's semantics (first index
// with x < cum[i], falling through to the last state) so a cache hit's
// shot stream is identical to a fresh simulation's for the same seed.
func sampleFromCum(cum []float64, n, shots int, seed int64) map[string]int {
	if shots <= 0 || len(cum) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[string]int)
	for k := 0; k < shots; k++ {
		x := rng.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if x < cum[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		counts[fmt.Sprintf("%0*b", n, uint64(lo))]++
	}
	return counts
}

// flight is one in-progress simulation with coalesced subscribers: the
// leader runs the engine; subscribers are fully admitted jobs that never
// enter the queue and are completed from the leader's entry, each with
// its own top= prefix and seeded shot stream. If the leader fails or is
// canceled, the oldest live subscriber is promoted to leader so the
// remaining subscribers still get a result.
type flight struct {
	leader *job
	subs   []*job
}

// maxCoalesced caps subscribers per flight so one hot circuit cannot
// accumulate unbounded response state; requests beyond the cap are
// rejected with 429/coalesce_limit.
const maxCoalesced = 64
