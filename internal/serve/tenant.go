package serve

import (
	"fmt"
	"net/http"
)

// Tenant identity and accounting (DESIGN.md §13). A tenant is named by
// the X-Tenant request header; requests without one belong to the
// implicit tenant "anon". Tenants are not authenticated — the serve
// layer is an internal service and the header is a scheduling/accounting
// identity, not a security boundary.

// DefaultTenant is the identity of requests that carry no X-Tenant
// header.
const DefaultTenant = "anon"

// TenantHeader is the request header naming the submitting tenant.
const TenantHeader = "X-Tenant"

// maxTenantName bounds tenant identifiers; names are also restricted to
// [A-Za-z0-9._-] so they can appear verbatim in logs, metrics and URLs.
const maxTenantName = 64

// tenantFromRequest extracts and validates the tenant identity of a
// request. An invalid name is a 400: silently folding it into "anon"
// would mis-account the traffic.
func tenantFromRequest(r *http.Request) (string, error) {
	name := r.Header.Get(TenantHeader)
	if name == "" {
		return DefaultTenant, nil
	}
	if err := validateTenant(name); err != nil {
		return "", err
	}
	return name, nil
}

func validateTenant(name string) error {
	if len(name) > maxTenantName {
		return fmt.Errorf("tenant name longer than %d bytes", maxTenantName)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("tenant name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return nil
}

// tenantStats is one tenant's cumulative accounting, guarded by
// Server.mu. Per-tenant numbers live here (bounded by the number of
// distinct tenants seen) rather than in the metrics registry, whose
// series names must stay a small fixed set.
type tenantStats struct {
	submitted int64
	completed int64
	failed    int64
	canceled  int64
	rejected  int64 // quota rejections (tenant_queue_full, coalesce_limit)
	cacheHits int64
	coalesced int64
	misses    int64 // submissions that had to run the engine
}

// tenantLocked returns (creating if needed) a tenant's stats record.
// Caller holds s.mu.
func (s *Server) tenantLocked(name string) *tenantStats {
	t := s.tenants[name]
	if t == nil {
		t = &tenantStats{}
		s.tenants[name] = t
	}
	return t
}

// tenantWeight resolves a tenant's scheduling weight from Config
// (default 1). Used as the fair queue's weight function.
func (s *Server) tenantWeight(name string) int {
	if w, ok := s.cfg.TenantWeights[name]; ok && w > 0 {
		return w
	}
	return 1
}

// TenantView is one tenant's row in GET /v1/tenants.
type TenantView struct {
	Name    string `json:"name"`
	Weight  int    `json:"weight"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed,omitempty"`
	Canceled  int64 `json:"canceled,omitempty"`
	Rejected  int64 `json:"rejected,omitempty"`

	// Cache disposition of this tenant's admitted submissions: hits were
	// served from the result cache, coalesced joined an in-flight
	// simulation, misses ran the engine.
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	Misses    int64 `json:"cache_misses"`

	// Quotas echoes the limits this tenant is admitted under.
	MaxQueued   int `json:"max_queued"`
	MaxInFlight int `json:"max_inflight"`
}

// Tenants renders every tenant seen since startup, sorted by name.
func (s *Server) Tenants() []TenantView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantView, 0, len(s.tenants))
	for name, t := range s.tenants {
		out = append(out, TenantView{
			Name:        name,
			Weight:      s.tenantWeight(name),
			Queued:      s.fq.TenantQueued(name),
			Running:     s.fq.TenantRunning(name),
			Submitted:   t.submitted,
			Completed:   t.completed,
			Failed:      t.failed,
			Canceled:    t.canceled,
			Rejected:    t.rejected,
			CacheHits:   t.cacheHits,
			Coalesced:   t.coalesced,
			Misses:      t.misses,
			MaxQueued:   s.cfg.TenantMaxQueued,
			MaxInFlight: s.cfg.TenantMaxInFlight,
		})
	}
	sortTenantViews(out)
	return out
}

// sortTenantViews orders rows by name (insertion sort; the tenant set
// is small).
func sortTenantViews(v []TenantView) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j].Name < v[j-1].Name; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
