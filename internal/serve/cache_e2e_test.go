package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"flatdd/internal/faults"
	"flatdd/internal/obs"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// hQASM puts 5 qubits in uniform superposition: 32 equally likely
// outcomes, so two independent seeded shot streams are distinguishable
// with overwhelming probability (unlike the bell pair's 2 outcomes).
const hQASM = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0]; h q[1]; h q[2]; h q[3]; h q[4];
`

// TestCacheHitServedWithoutEngine is the tentpole's acceptance test: a
// repeat submission completes straight from the result cache — done in
// the submit response, no engine run, no run/phase spans — and its
// result (amplitudes and seeded shots) is identical to the fresh
// simulation that populated the cache.
func TestCacheHitServedWithoutEngine(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	ctx := context.Background()

	first := h.submit(&serve.SubmitRequest{QASM: bellQASM, Shots: 500, Seed: 7, Top: 4})
	if first.Cache != serve.CacheMiss {
		t.Fatalf("first submission cache = %q, want miss", first.Cache)
	}
	h.waitState(first.ID, serve.StateDone)
	fresh, err := h.c.Result(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	reg := h.srv.Registry()
	if got := reg.Counter("serve.engine.runs").Value(); got != 1 {
		t.Fatalf("serve.engine.runs = %d after one job, want 1", got)
	}

	second := h.submit(&serve.SubmitRequest{QASM: bellQASM, Shots: 500, Seed: 7, Top: 4})
	if second.Cache != serve.CacheHit {
		t.Fatalf("repeat submission cache = %q, want hit", second.Cache)
	}
	if second.State != serve.StateDone {
		t.Fatalf("hit job state = %q in the submit response, want done", second.State)
	}
	hit, err := h.c.Result(ctx, second.ID)
	if err != nil {
		t.Fatalf("hit result not immediately readable: %v", err)
	}
	if got := reg.Counter("serve.engine.runs").Value(); got != 1 {
		t.Fatalf("serve.engine.runs = %d after the hit, want still 1", got)
	}
	if got := reg.Counter("serve.cache.hits").Value(); got != 1 {
		t.Fatalf("serve.cache.hits = %d, want 1", got)
	}

	// The hit agrees with the fresh simulation: same top amplitudes (to
	// 1e-9) and, with the same seed, the identical shot stream.
	if hit.Cache != serve.CacheHit || hit.Tenant != serve.DefaultTenant {
		t.Errorf("hit result disposition/tenant = %q/%q", hit.Cache, hit.Tenant)
	}
	if len(hit.Top) != len(fresh.Top) {
		t.Fatalf("top sizes differ: %d vs %d", len(hit.Top), len(fresh.Top))
	}
	freshP := map[string]float64{}
	for _, a := range fresh.Top {
		freshP[a.Basis] = a.Probability
	}
	for _, a := range hit.Top {
		want, ok := freshP[a.Basis]
		if !ok || math.Abs(a.Probability-want) > 1e-9 {
			t.Errorf("P(%s) = %v from cache, %v fresh", a.Basis, a.Probability, want)
		}
	}
	if !reflect.DeepEqual(hit.Shots, fresh.Shots) {
		t.Errorf("same seed drew different shots: %v vs %v", hit.Shots, fresh.Shots)
	}

	// A different sampling seed still hits, with its own stream.
	reseeded := h.submit(&serve.SubmitRequest{QASM: bellQASM, Shots: 500, Seed: 8, Top: 4})
	if reseeded.Cache != serve.CacheHit {
		t.Fatalf("reseeded submission cache = %q, want hit", reseeded.Cache)
	}

	// The flight recorder confirms the engine never saw the hit: its span
	// tree is the bare job span — no queued, run, or phase spans.
	code, raw := h.do("GET", "/debug/jobs?id="+second.ID, nil)
	if code != 200 {
		t.Fatalf("/debug/jobs for the hit job: %d %s", code, raw)
	}
	var jt obs.JobTrace
	if err := json.Unmarshal(raw, &jt); err != nil {
		t.Fatal(err)
	}
	for _, sp := range jt.Spans {
		if sp.Name != "job" {
			t.Errorf("hit job recorded span %q; engine-side spans must be absent", sp.Name)
		}
	}
}

// TestCacheCoalescing queues one simulation and attaches subscribers to
// it: the engine runs once, every subscriber completes from the leader's
// entry, and each draws its own seeded shot stream.
func TestCacheCoalescing(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2, MaxInFlight: 1, QueueDepth: 16})
	ctx := context.Background()

	blocker := h.submit(slowSubmit(1))
	h.waitState(blocker.ID, serve.StateRunning)

	leader := h.submit(&serve.SubmitRequest{QASM: hQASM, Shots: 200, Seed: 1})
	if leader.Cache != serve.CacheMiss {
		t.Fatalf("leader cache = %q, want miss", leader.Cache)
	}
	sameSeed := h.submit(&serve.SubmitRequest{QASM: hQASM, Shots: 200, Seed: 1})
	subA := h.submit(&serve.SubmitRequest{QASM: hQASM, Shots: 200, Seed: 2})
	subB := h.submit(&serve.SubmitRequest{QASM: hQASM, Shots: 200, Seed: 3})
	for _, v := range []serve.JobView{sameSeed, subA, subB} {
		if v.Cache != serve.CacheCoalesced {
			t.Fatalf("subscriber cache = %q, want coalesced", v.Cache)
		}
		if v.ID == leader.ID {
			t.Fatal("subscriber shares the leader's job id")
		}
	}
	if got := h.srv.Registry().Counter("serve.cache.coalesced").Value(); got != 3 {
		t.Fatalf("serve.cache.coalesced = %d, want 3", got)
	}

	// Unblock the queue; the leader runs once and completes the flight.
	h.cancel(blocker.ID)
	h.waitState(blocker.ID, serve.StateCanceled, serve.StateDone)
	for _, id := range []string{leader.ID, sameSeed.ID, subA.ID, subB.ID} {
		if v := h.waitState(id, serve.StateDone, serve.StateFailed); v.State != serve.StateDone {
			t.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
		}
	}
	// Exactly two engine runs in the whole test: the blocker and the leader.
	if got := h.srv.Registry().Counter("serve.engine.runs").Value(); got != 2 {
		t.Fatalf("serve.engine.runs = %d, want 2 (blocker + leader)", got)
	}

	results := map[string]*serve.JobResult{}
	for name, id := range map[string]string{
		"leader": leader.ID, "sameSeed": sameSeed.ID, "subA": subA.ID, "subB": subB.ID,
	} {
		r, err := h.c.Result(ctx, id)
		if err != nil {
			t.Fatalf("result %s: %v", name, err)
		}
		total := 0
		for _, n := range r.Shots {
			total += n
		}
		if total != 200 {
			t.Fatalf("%s drew %d shots, want 200", name, total)
		}
		results[name] = r
	}
	// Subscribers sample independently: the same seed reproduces the
	// leader's stream, different seeds draw their own.
	if !reflect.DeepEqual(results["leader"].Shots, results["sameSeed"].Shots) {
		t.Error("subscriber with the leader's seed drew a different stream")
	}
	if reflect.DeepEqual(results["subA"].Shots, results["subB"].Shots) {
		t.Error("differently seeded subscribers drew identical streams")
	}
	if results["subA"].Cache != serve.CacheCoalesced {
		t.Errorf("subscriber result cache = %q, want coalesced", results["subA"].Cache)
	}
}

// TestCacheCoalesceOntoRetryingLeader pins that a leader's flight
// survives a transient engine fault: a duplicate submitted while the
// leader sits in retry backoff coalesces onto it instead of queueing a
// second engine run, and completes from the successful rerun's entry.
func TestCacheCoalesceOntoRetryingLeader(t *testing.T) {
	freg := faults.New(1)
	freg.Arm(faults.SchedWorkerPanic, faults.Trigger{Nth: 1, Times: 1, Transient: true})
	h := newTestServer(t, serve.Config{
		Threads: 4,
		// A wide backoff window so the duplicate reliably lands while the
		// faulted leader is queued for its rerun.
		RetryBaseDelay: 300 * time.Millisecond,
		RetryMaxDelay:  300 * time.Millisecond,
		Faults:         freg,
	})
	ctx := context.Background()

	// Same seed twice: identical canonical circuit, one cache key.
	leader := h.submit(pooledSubmit(8))
	if leader.Cache != serve.CacheMiss {
		t.Fatalf("leader cache = %q, want miss", leader.Cache)
	}
	// Wait for the fault: the leader is back in the queue with one burned
	// attempt, sitting out its backoff.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := h.c.Job(ctx, leader.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == serve.StateQueued && v.Attempts >= 1 {
			break
		}
		if v.State == serve.StateDone || v.State == serve.StateFailed {
			t.Fatalf("leader reached %q before the injected fault was observed", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never entered retry backoff (state %q, attempts %d)", v.State, v.Attempts)
		}
		time.Sleep(2 * time.Millisecond)
	}

	dup := h.submit(pooledSubmit(8))
	if dup.Cache != serve.CacheCoalesced {
		t.Fatalf("duplicate of a retrying leader: cache = %q, want coalesced", dup.Cache)
	}

	for _, id := range []string{leader.ID, dup.ID} {
		if v := h.waitState(id, serve.StateDone, serve.StateFailed); v.State != serve.StateDone {
			t.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
		}
	}
	// Two engine executions total — the faulted attempt and the rerun; the
	// duplicate never ran.
	if got := h.srv.Registry().Counter("serve.engine.runs").Value(); got != 2 {
		t.Errorf("serve.engine.runs = %d, want 2 (fault + rerun)", got)
	}
	if got := h.srv.Registry().Counter("serve.cache.coalesced").Value(); got != 1 {
		t.Errorf("serve.cache.coalesced = %d, want 1", got)
	}
	res, err := h.c.Result(ctx, dup.ID)
	if err != nil {
		t.Fatalf("duplicate result: %v", err)
	}
	if res.Cache != serve.CacheCoalesced {
		t.Errorf("duplicate result cache = %q, want coalesced", res.Cache)
	}
}

// TestCacheInvalidationByEngineOptions pins the key derivation: engine
// options (cache mode, fusion) are part of the identity, per-request
// fields (shots, seed, top) are not.
func TestCacheInvalidationByEngineOptions(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	first := h.submit(&serve.SubmitRequest{QASM: bellQASM, Shots: 100, Seed: 1})
	h.waitState(first.ID, serve.StateDone)

	cases := []struct {
		name string
		req  *serve.SubmitRequest
		want string
	}{
		{"different shots/seed/top", &serve.SubmitRequest{QASM: bellQASM, Shots: 7, Seed: 99, Top: 2}, serve.CacheHit},
		{"no sampling at all", &serve.SubmitRequest{QASM: bellQASM}, serve.CacheHit},
		{"different cache mode", &serve.SubmitRequest{QASM: bellQASM, Shots: 100, Seed: 1, Cache: "never"}, serve.CacheMiss},
		{"different fusion mode", &serve.SubmitRequest{QASM: bellQASM, Shots: 100, Seed: 1, Fusion: "kops"}, serve.CacheMiss},
		{"different circuit text, same canonical circuit", &serve.SubmitRequest{
			QASM: "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg r[2];\nh r[0];\ncx r[0],r[1];\n",
		}, serve.CacheHit},
	}
	for _, tc := range cases {
		v := h.submit(tc.req)
		if v.Cache != tc.want {
			t.Errorf("%s: cache = %q, want %q", tc.name, v.Cache, tc.want)
		}
		h.waitState(v.ID, serve.StateDone)
	}
}

// TestCacheDisabled pins that a negative budget switches the whole
// subsystem off: no hits, no coalescing, every job runs the engine.
func TestCacheDisabled(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2, ResultCacheBudget: -1})
	for i := 0; i < 2; i++ {
		v := h.submit(&serve.SubmitRequest{QASM: bellQASM})
		if v.Cache != serve.CacheMiss {
			t.Fatalf("submission %d cache = %q with caching disabled", i, v.Cache)
		}
		h.waitState(v.ID, serve.StateDone)
	}
	if got := h.srv.Registry().Counter("serve.engine.runs").Value(); got != 2 {
		t.Errorf("serve.engine.runs = %d, want 2 with caching disabled", got)
	}
	health, err := h.c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cache, ok := health["cache"].(map[string]any)
	if !ok || cache["enabled"] != false {
		t.Errorf("healthz cache block = %v, want enabled=false", health["cache"])
	}
}

// TestIdempotencyKeyReplay pins the Idempotency-Key contract: same
// tenant + key replays the original job (200, marker header), a
// different circuit under the same key conflicts, and keys are scoped
// per tenant.
func TestIdempotencyKeyReplay(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	ctx := context.Background()
	req := &serve.SubmitRequest{QASM: bellQASM, Shots: 10, Seed: 4}

	first, err := h.c.Submit(ctx, req, client.WithIdempotencyKey("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed {
		t.Fatal("fresh submission marked replayed")
	}
	h.waitState(first.Job.ID, serve.StateDone)

	again, err := h.c.Submit(ctx, req, client.WithIdempotencyKey("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Replayed || again.Job.ID != first.Job.ID {
		t.Fatalf("replay = {replayed %v, id %s}, want the original %s", again.Replayed, again.Job.ID, first.Job.ID)
	}

	// Same key, different circuit: the service refuses to guess.
	_, err = h.c.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 5}, client.WithIdempotencyKey("k1"))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 409 || apiErr.Reason != "idempotency_mismatch" {
		t.Fatalf("conflicting replay: %v, want 409 idempotency_mismatch", err)
	}

	// Keys are per tenant: another tenant reusing "k1" gets its own job.
	other := client.New(h.ts.URL, client.WithTenant("other"))
	fresh, err := other.Submit(ctx, req, client.WithIdempotencyKey("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Replayed || fresh.Job.ID == first.Job.ID {
		t.Fatalf("tenant isolation broken: %+v", fresh)
	}
}
