package serve

import (
	"reflect"
	"testing"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/obs"
)

// unit tests of the result cache's keying, LRU accounting, and shot
// sampling — the e2e behavior (hits without engine runs, coalescing)
// lives in cache_e2e_test.go.

func TestOptionsKeyIgnoresPerRequestFields(t *testing.T) {
	base := runOptions{}
	perRequest := runOptions{shots: 500, seed: 9, top: 3, timeout: 1}
	if optionsKey(base) != optionsKey(perRequest) {
		t.Errorf("shots/seed/top/timeout leaked into the cache key: %q vs %q",
			optionsKey(base), optionsKey(perRequest))
	}
	for name, o := range map[string]runOptions{
		"cache":  {cache: 1},
		"fusion": {fusion: 1},
		"k":      {k: 3},
	} {
		if optionsKey(o) == optionsKey(base) {
			t.Errorf("engine option %s does not change the cache key", name)
		}
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(300, 300)
	k := func(s string) cacheKey { return cacheKey{circuit: s} }
	e := func(bytes int64) *cacheEntry { return &cacheEntry{bytes: bytes} }

	if !c.put(k("a"), e(100)) || !c.put(k("b"), e(100)) {
		t.Fatal("puts within budget rejected")
	}
	if c.get(k("a"), 0) == nil {
		t.Fatal("entry a missing before eviction")
	}
	// a was just touched, so inserting an entry that overflows the budget
	// evicts b, the least recently used.
	if !c.put(k("c"), e(150)) {
		t.Fatal("put c rejected")
	}
	if c.get(k("b"), 0) != nil {
		t.Error("b survived eviction though it was LRU")
	}
	if c.get(k("a"), 0) == nil || c.get(k("c"), 0) == nil {
		t.Error("eviction removed the wrong entry")
	}
	entries, bytes, evictions := c.Stats()
	if entries != 2 || bytes != 250 || evictions != 1 {
		t.Errorf("Stats() = %d entries, %d bytes, %d evictions; want 2, 250, 1", entries, bytes, evictions)
	}
}

func TestResultCacheCostAwareEviction(t *testing.T) {
	c := newResultCache(300, 300)
	k := func(s string) cacheKey { return cacheKey{circuit: s} }

	// cheap costs 1ns/byte to recompute, exp costs 1000ns/byte.
	if !c.put(k("cheap"), &cacheEntry{bytes: 100, costNs: 100}) ||
		!c.put(k("exp"), &cacheEntry{bytes: 100, costNs: 100_000}) {
		t.Fatal("puts within budget rejected")
	}
	// Touch cheap so it is the most recently used; cost must still win.
	if c.get(k("cheap"), 0) == nil {
		t.Fatal("entry cheap missing before eviction")
	}
	if !c.put(k("new"), &cacheEntry{bytes: 150, costNs: 150}) {
		t.Fatal("put new rejected")
	}
	if c.get(k("cheap"), 0) != nil {
		t.Error("cheap-to-recompute entry survived though an expensive one was evictable")
	}
	if c.get(k("exp"), 0) == nil {
		t.Error("expensive entry evicted ahead of a cheap one")
	}
}

func TestResultCacheInflationAgesExpensiveEntries(t *testing.T) {
	// An expensive entry that is never touched again must not pin its
	// cache space forever: each eviction raises the inflation floor, so
	// fresh cheap entries eventually out-rank it.
	c := newResultCache(300, 300)
	k := func(s string) cacheKey { return cacheKey{circuit: s} }
	if !c.put(k("exp"), &cacheEntry{bytes: 100, costNs: 100_000}) {
		t.Fatal("put exp rejected")
	}
	// Probing with get would re-stamp exp's priority (a hit is a hit), so
	// the loop only inserts; exp must stay cold to age out.
	for i := 0; i < 500; i++ {
		c.put(cacheKey{circuit: "cheap", options: string(rune(i))}, &cacheEntry{bytes: 100, costNs: 1000})
	}
	if c.get(k("exp"), 0) != nil {
		t.Error("cold expensive entry never aged out under sustained cheap inserts")
	}
}

func TestEntryCostPrefersLedgerCPU(t *testing.T) {
	st := core.Stats{TotalTime: 5 * time.Millisecond}
	if got := entryCost(st); got != st.TotalTime.Nanoseconds() {
		t.Errorf("entryCost without ledger = %d, want wall time %d", got, st.TotalTime.Nanoseconds())
	}
	st.Resources = &obs.LedgerSnapshot{CPUNs: 42_000}
	if got := entryCost(st); got != 42_000 {
		t.Errorf("entryCost with ledger = %d, want CPUNs 42000", got)
	}
}

func TestResultCacheLimits(t *testing.T) {
	c := newResultCache(300, 200)
	if c.put(cacheKey{circuit: "big"}, &cacheEntry{bytes: 250}) {
		t.Error("entry above maxEntry admitted")
	}
	disabled := newResultCache(0, 200)
	if disabled.enabled() {
		t.Error("zero-budget cache reports enabled")
	}
	if disabled.put(cacheKey{circuit: "x"}, &cacheEntry{bytes: 1}) {
		t.Error("disabled cache accepted an entry")
	}
}

func TestResultCacheShotsNeedDistribution(t *testing.T) {
	c := newResultCache(1<<20, 1<<20)
	key := cacheKey{circuit: "no-cum"}
	c.put(key, &cacheEntry{qubits: 30, bytes: 64}) // too large for a stored distribution
	if c.get(key, 100) != nil {
		t.Error("entry without a distribution served a shots request")
	}
	if c.get(key, 0) == nil {
		t.Error("entry without a distribution refused a shot-less request")
	}
}

func TestSampleFromCumDeterministicPerSeed(t *testing.T) {
	cum := []float64{0.5, 1.0} // single qubit, equal superposition
	a1 := sampleFromCum(cum, 1, 1000, 7)
	a2 := sampleFromCum(cum, 1, 1000, 7)
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("same seed, different streams: %v vs %v", a1, a2)
	}
	total := 0
	for bits, n := range a1 {
		if bits != "0" && bits != "1" {
			t.Errorf("impossible basis state %q", bits)
		}
		total += n
	}
	if total != 1000 {
		t.Errorf("drew %d shots, want 1000", total)
	}
	// Skewed distribution: the heavy state dominates.
	heavy := sampleFromCum([]float64{0.99, 1.0}, 1, 1000, 3)
	if heavy["0"] < 900 {
		t.Errorf("P=0.99 state drew only %d of 1000", heavy["0"])
	}
}
