package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"flatdd/internal/obs"
	"flatdd/internal/serve"
)

// ledgerBurst submits count qv-16 jobs (cache=never so the projected
// footprint undershoots the static worst case) and waits for all of
// them to finish, returning the observed peak of concurrently running
// jobs.
func ledgerBurst(t *testing.T, mode string, budget uint64, count int) (peak int64, srv *serve.Server) {
	t.Helper()
	h := newTestServer(t, serve.Config{
		Threads:           2,
		MaxInFlight:       8,
		AdmissionMode:     mode,
		TotalMemoryBudget: budget,
	})
	ids := make([]string, 0, count)
	for i := 0; i < count; i++ {
		v := h.submit(&serve.SubmitRequest{Circuit: "qv", N: 16, Seed: int64(i + 1),
			Cache: "never", TimeoutMS: 60_000})
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		if v := h.waitState(id, serve.StateDone, serve.StateFailed); v.State != serve.StateDone {
			t.Fatalf("job %s finished %s: %s", id, v.State, v.Error)
		}
	}
	return h.srv.Registry().Gauge("serve.jobs.running.peak").Value(), h.srv
}

// TestLedgerAdmissionHigherConcurrency is the tentpole's acceptance
// test: under the same process-wide budget, ledger-mode admission (which
// releases reservations down to the engine's projected footprint once
// fusion is done) achieves strictly higher admitted concurrency than
// worst-case admission on a burst of identical jobs.
//
// The arithmetic: WorstCaseBytes(16) = 48·2^16 ≈ 3.15 MB, and a budget
// just under 4 worst cases admits exactly 3 concurrent jobs in
// worst-case mode. The projected footprint of a cache=never qv-16 job
// after fusion is 32·2^16 + gate-DD nodes ≈ 2.9 MB (measured 2.89–2.95 MB
// over seeds), so once the three running jobs have projected, a fourth
// worst-case reservation fits (3·2.95 + 3.15 ≈ 12.0 MB ≤ budget) and
// ledger mode dispatches it while the others are still in their DMAV
// phase.
func TestLedgerAdmissionHigherConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("burst of qv-16 jobs in -short mode")
	}
	budget := serve.WorstCaseBytes(16)*4 - 300_000

	worstPeak, wsrv := ledgerBurst(t, serve.AdmissionWorstCase, budget, 8)
	if worstPeak > 3 {
		t.Fatalf("worstcase mode admitted %d concurrent jobs; budget allows 3", worstPeak)
	}
	wsrv.Shutdown()

	ledgerPeak, lsrv := ledgerBurst(t, serve.AdmissionLedger, budget, 8)
	if ledgerPeak <= worstPeak {
		t.Errorf("ledger mode peak %d not above worstcase peak %d under the same budget",
			ledgerPeak, worstPeak)
	}
	if ledgerPeak < 4 {
		t.Errorf("ledger mode peak %d, want >= 4 (released reservations admit a 4th job)",
			ledgerPeak)
	}
	lsrv.Shutdown()
}

// TestReservationsReleasedAtTerminal asserts the budget comes back in
// full once every job is done, in both modes: leaked reservations would
// strangle a long-lived server.
func TestReservationsReleasedAtTerminal(t *testing.T) {
	for _, mode := range []string{serve.AdmissionWorstCase, serve.AdmissionLedger} {
		h := newTestServer(t, serve.Config{Threads: 2, AdmissionMode: mode})
		v := h.submit(&serve.SubmitRequest{Circuit: "ghz", N: 10})
		h.waitState(v.ID, serve.StateDone)
		reg := h.srv.Registry()
		if got := reg.Gauge("serve.mem.reserved").Value(); got != 0 {
			t.Errorf("%s: serve.mem.reserved = %d after all jobs done", mode, got)
		}
		budget := reg.Gauge("serve.mem.budget").Value()
		if got := reg.Gauge("serve.mem.headroom").Value(); got != budget {
			t.Errorf("%s: headroom %d != budget %d after all jobs done", mode, got, budget)
		}
	}
}

// TestAnomalyCaptureRateLimited asserts the exactly-once contract: a
// burst of SLO-breaching jobs produces exactly one pprof capture within
// the rate window. The result cache is disabled so every job actually
// runs (and breaches) on the engine.
func TestAnomalyCaptureRateLimited(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads:           2,
		SLOTarget:         time.Nanosecond, // every job breaches
		ProfileDir:        t.TempDir(),
		ProfileWindow:     time.Hour, // one capture per test run
		ResultCacheBudget: -1,
	})
	for i := 0; i < 5; i++ {
		v := h.submit(&serve.SubmitRequest{Circuit: "ghz", N: 8})
		h.waitState(v.ID, serve.StateDone)
	}
	// The capture runs on its own goroutine off the server lock; wait for
	// the first one to land, then confirm the storm stayed at one.
	ring := h.srv.Profiles()
	deadline := time.Now().Add(5 * time.Second)
	for len(ring.Captures()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no anomaly capture after 5 SLO-breaching jobs")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ring.Sync()
	time.Sleep(50 * time.Millisecond) // grace for suppressed triggers
	caps := ring.Captures()
	if len(caps) != 1 {
		t.Fatalf("got %d captures, want exactly 1 (rate window)", len(caps))
	}
	if caps[0].Reason != "slo_breach" {
		t.Errorf("capture reason %q, want slo_breach", caps[0].Reason)
	}
	if caps[0].HeapFile == "" {
		t.Errorf("capture has no heap profile: %+v", caps[0])
	}
	if got := h.srv.Registry().Counter("serve.profiles.captured").Value(); got != 1 {
		t.Errorf("serve.profiles.captured = %d, want 1", got)
	}
}

// TestDebugLedgerAndResultResources walks the resource-accounting
// observability surface: the job result carries the per-phase resource
// snapshot and /debug/ledger exposes the process-wide accounting.
func TestDebugLedgerAndResultResources(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	v := h.submit(&serve.SubmitRequest{Circuit: "qv", N: 12, TimeoutMS: 60_000})
	h.waitState(v.ID, serve.StateDone)

	res, err := h.c.Result(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	r := res.Stats.Resources
	if r == nil || len(r.Phases) == 0 {
		t.Fatalf("result carries no resource ledger: %+v", res.Stats)
	}
	if r.CPUNs <= 0 || r.WallNs <= 0 {
		t.Errorf("ledger totals cpu=%d wall=%d, want > 0", r.CPUNs, r.WallNs)
	}
	if r.PeakBytes == 0 {
		t.Error("ledger peak bytes is zero for a converting job")
	}
	seen := map[string]bool{}
	for _, pc := range r.Phases {
		seen[pc.Phase] = true
	}
	for _, want := range []string{"dd", "convert", "fuse", "dmav"} {
		if !seen[want] {
			t.Errorf("result ledger missing phase %q: %v", want, r.Phases)
		}
	}

	code, body := h.do("GET", "/debug/ledger", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/ledger: %d %s", code, body)
	}
	var led struct {
		AdmissionMode string              `json:"admission_mode"`
		BudgetBytes   uint64              `json:"budget_bytes"`
		ReservedBytes uint64              `json:"reserved_bytes"`
		PeakBytes     uint64              `json:"observed_peak_bytes"`
		Jobs          []serve.LedgerEntry `json:"jobs"`
	}
	if err := json.Unmarshal(body, &led); err != nil {
		t.Fatal(err)
	}
	if led.AdmissionMode != serve.AdmissionWorstCase {
		t.Errorf("admission_mode = %q", led.AdmissionMode)
	}
	if led.BudgetBytes == 0 || led.ReservedBytes != 0 {
		t.Errorf("budget=%d reserved=%d, want budget > 0 and nothing reserved", led.BudgetBytes, led.ReservedBytes)
	}
	if len(led.Jobs) != 1 || led.Jobs[0].ID != v.ID {
		t.Fatalf("ledger jobs: %+v", led.Jobs)
	}
	if led.Jobs[0].Resources == nil || len(led.Jobs[0].Resources.Phases) == 0 {
		t.Errorf("finished job has no frozen resources in /debug/ledger: %+v", led.Jobs[0])
	}

	// The flight recorder carries the same snapshot.
	code, body = h.do("GET", "/debug/jobs?id="+v.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/jobs: %d %s", code, body)
	}
	var jt obs.JobTrace
	if err := json.Unmarshal(body, &jt); err != nil {
		t.Fatal(err)
	}
	if jt.Ledger == nil || len(jt.Ledger.Phases) == 0 {
		t.Errorf("flight-recorder trace has no ledger: %+v", jt.Ledger)
	}
}

// TestOversizeJobRunsAlone: a job whose worst case exceeds the whole
// budget still dispatches when nothing else is reserved — the gate
// degrades to serial execution instead of deadlocking.
func TestOversizeJobRunsAlone(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads:           2,
		TotalMemoryBudget: 1, // absurdly small; per-job MemoryBudget still admits
	})
	v := h.submit(&serve.SubmitRequest{Circuit: "ghz", N: 10})
	if got := h.waitState(v.ID, serve.StateDone, serve.StateFailed); got.State != serve.StateDone {
		t.Fatalf("oversize-vs-budget job %s: %s", got.State, got.Error)
	}
}
