package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flatdd/internal/core"
)

const bellQASM = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`

// slowSubmit is a workload heavy enough to stay running for a while on
// the test server (QV scrambles, converts early, and then pushes a few
// hundred DMAV gates over 2^16 amplitudes).
func slowSubmit() *SubmitRequest {
	return &SubmitRequest{Circuit: "qv", N: 16, Seed: 1, TimeoutMS: 60_000}
}

type testServer struct {
	srv *Server
	ts  *httptest.Server
	t   *testing.T
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if !srv.Draining() {
			srv.Shutdown()
		}
	})
	return &testServer{srv: srv, ts: ts, t: t}
}

func (h *testServer) do(method, path string, body any) (int, []byte) {
	h.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

func (h *testServer) submit(req *SubmitRequest) JobView {
	h.t.Helper()
	code, body := h.do("POST", "/v1/jobs", req)
	if code != http.StatusAccepted {
		h.t.Fatalf("submit: %d %s", code, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		h.t.Fatal(err)
	}
	return v
}

// waitState polls a job until it reaches one of the wanted states.
func (h *testServer) waitState(id string, want ...string) JobView {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := h.do("GET", "/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			h.t.Fatalf("status %s: %d %s", id, code, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			h.t.Fatal(err)
		}
		for _, w := range want {
			if v.State == w {
				return v
			}
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("job %s stuck in %q, want %v", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmissionRejections(t *testing.T) {
	h := newTestServer(t, Config{
		Threads:      2,
		MemoryBudget: WorstCaseBytes(14), // admits up to 14 qubits
		MaxQubits:    20,
	})
	cases := []struct {
		name string
		req  SubmitRequest
		code int
	}{
		{"over budget", SubmitRequest{Circuit: "ghz", N: 15}, http.StatusRequestEntityTooLarge},
		{"over qubit cap", SubmitRequest{Circuit: "ghz", N: 24}, http.StatusRequestEntityTooLarge},
		{"no source", SubmitRequest{}, http.StatusBadRequest},
		{"both sources", SubmitRequest{QASM: bellQASM, Circuit: "ghz", N: 4}, http.StatusBadRequest},
		{"bad qasm", SubmitRequest{QASM: "qreg q[2]; bogus"}, http.StatusBadRequest},
		{"unknown workload", SubmitRequest{Circuit: "nope", N: 4}, http.StatusBadRequest},
		{"bad cache mode", SubmitRequest{Circuit: "ghz", N: 4, Cache: "sometimes"}, http.StatusBadRequest},
		{"negative shots", SubmitRequest{Circuit: "ghz", N: 4, Shots: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := h.do("POST", "/v1/jobs", tc.req); code != tc.code {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, body, tc.code)
		}
	}
	if got := h.srv.Registry().Counter("serve.jobs.rejected.budget").Value(); got != 2 {
		t.Errorf("serve.jobs.rejected.budget = %d, want 2", got)
	}
	if got := h.srv.Registry().Counter("serve.jobs.rejected.invalid").Value(); got != 6 {
		t.Errorf("serve.jobs.rejected.invalid = %d, want 6", got)
	}
}

func TestBellJobEndToEnd(t *testing.T) {
	h := newTestServer(t, Config{Threads: 2})
	v := h.submit(&SubmitRequest{QASM: bellQASM, Shots: 1000, Top: 4, Seed: 42})
	if v.Qubits != 2 || v.Gates != 2 {
		t.Fatalf("view: %+v", v)
	}
	h.waitState(v.ID, StateDone)

	code, body := h.do("GET", "/v1/jobs/"+v.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, body)
	}
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalPhase != "dd" || res.Stats.ConvertedAtGate != -1 {
		t.Fatalf("bell circuit should finish in the DD phase: %+v", res.Stats)
	}
	if len(res.Top) != 2 {
		t.Fatalf("top amplitudes: %+v", res.Top)
	}
	for _, a := range res.Top {
		if a.Basis != "00" && a.Basis != "11" {
			t.Fatalf("unexpected basis state %q", a.Basis)
		}
		if math.Abs(a.Probability-0.5) > 1e-9 {
			t.Fatalf("P(%s) = %v, want 0.5", a.Basis, a.Probability)
		}
	}
	total := 0
	for bits, n := range res.Shots {
		if bits != "00" && bits != "11" {
			t.Fatalf("impossible shot %q", bits)
		}
		total += n
	}
	if total != 1000 {
		t.Fatalf("shot count %d, want 1000", total)
	}
}

func TestResultNotReadyAndUnknown(t *testing.T) {
	h := newTestServer(t, Config{Threads: 2})
	if code, _ := h.do("GET", "/v1/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job status: %d", code)
	}
	if code, _ := h.do("GET", "/v1/jobs/j-999999/result", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job result: %d", code)
	}
	v := h.submit(slowSubmit())
	if code, _ := h.do("GET", "/v1/jobs/"+v.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("unfinished result: %d, want 409", code)
	}
	h.do("DELETE", "/v1/jobs/"+v.ID, nil)
	h.waitState(v.ID, StateCanceled, StateDone)
}

func TestCancelQueuedJob(t *testing.T) {
	h := newTestServer(t, Config{Threads: 2, MaxInFlight: 1, QueueDepth: 4})
	running := h.submit(slowSubmit())
	h.waitState(running.ID, StateRunning)
	queued := h.submit(slowSubmit())

	code, body := h.do("DELETE", "/v1/jobs/"+queued.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel queued: %d %s", code, body)
	}
	v := h.waitState(queued.ID, StateCanceled)
	if !strings.Contains(v.Error, core.ErrCanceled.Error()) {
		t.Fatalf("canceled job error = %q, want the core sentinel", v.Error)
	}
	// The withdrawn job must be skipped by the runner, not executed: cancel
	// the running one and verify the queued one never starts.
	h.do("DELETE", "/v1/jobs/"+running.ID, nil)
	h.waitState(running.ID, StateCanceled, StateDone)
	time.Sleep(20 * time.Millisecond)
	if v := h.waitState(queued.ID, StateCanceled); v.StartedAt != nil {
		t.Fatal("withdrawn job was started anyway")
	}
}

func TestCancelRunningJobReturnsSentinel(t *testing.T) {
	h := newTestServer(t, Config{Threads: 2})
	v := h.submit(slowSubmit())
	h.waitState(v.ID, StateRunning)
	code, body := h.do("POST", "/v1/jobs/"+v.ID+"/cancel", nil)
	if code != http.StatusOK {
		t.Fatalf("cancel running: %d %s", code, body)
	}
	got := h.waitState(v.ID, StateCanceled, StateDone)
	if got.State == StateDone {
		t.Skip("job finished before the cancel landed")
	}
	if !strings.Contains(got.Error, core.ErrCanceled.Error()) {
		t.Fatalf("error = %q, want core.ErrCanceled's message", got.Error)
	}
	// Double cancel of a finished job conflicts.
	if code, _ := h.do("DELETE", "/v1/jobs/"+v.ID, nil); code != http.StatusConflict {
		t.Fatalf("cancel finished job: %d, want 409", code)
	}
	if got := h.srv.Registry().Counter("serve.jobs.canceled").Value(); got != 1 {
		t.Fatalf("serve.jobs.canceled = %d, want 1", got)
	}
}

func TestQueueFullRejects(t *testing.T) {
	h := newTestServer(t, Config{Threads: 2, MaxInFlight: 1, QueueDepth: 1})
	running := h.submit(slowSubmit())
	h.waitState(running.ID, StateRunning)
	queued := h.submit(slowSubmit()) // fills the FIFO

	code, body := h.do("POST", "/v1/jobs", slowSubmit())
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: %d %s, want 429", code, body)
	}
	if got := h.srv.Registry().Counter("serve.jobs.rejected.queue_full").Value(); got != 1 {
		t.Fatalf("serve.jobs.rejected.queue_full = %d, want 1", got)
	}
	h.do("DELETE", "/v1/jobs/"+queued.ID, nil)
	h.do("DELETE", "/v1/jobs/"+running.ID, nil)
	h.waitState(running.ID, StateCanceled, StateDone)
}

func TestInFlightCapRespected(t *testing.T) {
	const inflight = 2
	h := newTestServer(t, Config{Threads: 2, MaxInFlight: inflight, QueueDepth: 8})
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		ids = append(ids, h.submit(slowSubmit()).ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	sawParallel := false
	for {
		code, body := h.do("GET", "/v1/jobs?state="+StateRunning, nil)
		if code != http.StatusOK {
			t.Fatalf("list: %d %s", code, body)
		}
		var running []JobView
		if err := json.Unmarshal(body, &running); err != nil {
			t.Fatal(err)
		}
		if len(running) > inflight {
			t.Fatalf("%d jobs running, cap is %d", len(running), inflight)
		}
		if len(running) == inflight {
			sawParallel = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawParallel {
		t.Fatal("never saw the in-flight cap reached")
	}
	for _, id := range ids {
		h.do("DELETE", "/v1/jobs/"+id, nil)
	}
	for _, id := range ids {
		h.waitState(id, StateCanceled, StateDone)
	}
}

func TestJobTimeoutFails(t *testing.T) {
	h := newTestServer(t, Config{Threads: 2})
	req := slowSubmit()
	req.TimeoutMS = 30 // far below the QV runtime
	v := h.submit(req)
	got := h.waitState(v.ID, StateFailed, StateDone)
	if got.State == StateDone {
		t.Skip("machine fast enough to beat a 30ms deadline")
	}
	if !strings.Contains(got.Error, core.ErrDeadlineExceeded.Error()) {
		t.Fatalf("timeout error = %q", got.Error)
	}
}

func TestDrainSemantics(t *testing.T) {
	h := newTestServer(t, Config{
		Threads: 2, MaxInFlight: 1, QueueDepth: 4,
		DrainGrace: 50 * time.Millisecond,
	})
	running := h.submit(slowSubmit())
	h.waitState(running.ID, StateRunning)
	queued := h.submit(slowSubmit())

	done := make(chan struct{})
	go func() { h.srv.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not drain")
	}

	v := h.waitState(queued.ID, StateCanceled)
	if !strings.Contains(v.Error, "draining") {
		t.Fatalf("drained queued job error = %q", v.Error)
	}
	r := h.waitState(running.ID, StateCanceled, StateDone)
	if r.State == StateCanceled && !strings.Contains(r.Error, core.ErrCanceled.Error()) {
		t.Fatalf("drained running job error = %q", r.Error)
	}
	if code, _ := h.do("POST", "/v1/jobs", &SubmitRequest{Circuit: "ghz", N: 4}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", code)
	}
	code, body := h.do("GET", "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz after drain: %d %s", code, body)
	}
}

func TestWorstCaseBytes(t *testing.T) {
	// 3 arrays of 16-byte amplitudes: state, scratch, shared partial.
	if got, want := WorstCaseBytes(10), uint64(3*16*1024); got != want {
		t.Fatalf("WorstCaseBytes(10) = %d, want %d", got, want)
	}
	for n := 1; n < 30; n++ {
		if WorstCaseBytes(n+1) != 2*WorstCaseBytes(n) {
			t.Fatalf("WorstCaseBytes not doubling at n=%d", n)
		}
	}
}

func TestListFilterAndQueuePosition(t *testing.T) {
	h := newTestServer(t, Config{Threads: 2, MaxInFlight: 1, QueueDepth: 4})
	running := h.submit(slowSubmit())
	h.waitState(running.ID, StateRunning)
	q1 := h.submit(slowSubmit())
	q2 := h.submit(slowSubmit())

	code, body := h.do("GET", "/v1/jobs?state="+StateQueued, nil)
	if code != http.StatusOK {
		t.Fatalf("list queued: %d", code)
	}
	var queued []JobView
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}
	if len(queued) != 2 || queued[0].ID != q1.ID || queued[1].ID != q2.ID {
		t.Fatalf("queued list: %+v", queued)
	}
	if queued[0].QueuePosition != 1 || queued[1].QueuePosition != 2 {
		t.Fatalf("queue positions: %d, %d", queued[0].QueuePosition, queued[1].QueuePosition)
	}
	for _, id := range []string{q2.ID, q1.ID, running.ID} {
		h.do("DELETE", "/v1/jobs/"+id, nil)
	}
	h.waitState(running.ID, StateCanceled, StateDone)
}

func TestMetricsEndpointExposed(t *testing.T) {
	h := newTestServer(t, Config{Threads: 2})
	v := h.submit(&SubmitRequest{QASM: bellQASM})
	h.waitState(v.ID, StateDone)
	code, body := h.do("GET", "/debug/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics: %d", code)
	}
	for _, name := range []string{"serve.jobs.submitted", "serve.jobs.completed", "serve.queue.depth"} {
		if !bytes.Contains(body, []byte(fmt.Sprintf("%q", name))) {
			t.Fatalf("/debug/metrics missing %s: %s", name, body)
		}
	}
}
