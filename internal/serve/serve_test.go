// Package serve_test drives the serve layer end to end over HTTP through
// the typed client (internal/serve/client) — the same way operational
// tooling consumes the v1 API. Unit tests of unexported internals
// (fair queue, result cache) live in-package instead.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flatdd/internal/core"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

const bellQASM = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`

// slowSubmit is a workload heavy enough to stay running for a while on
// the test server (QV scrambles, converts early, and then pushes a few
// hundred DMAV gates over 2^16 amplitudes). Distinct seeds make distinct
// canonical circuits — identical submissions would coalesce.
func slowSubmit(seed int64) *serve.SubmitRequest {
	return &serve.SubmitRequest{Circuit: "qv", N: 16, Seed: seed, TimeoutMS: 60_000}
}

type testServer struct {
	srv *serve.Server
	ts  *httptest.Server
	c   *client.Client
	t   *testing.T
}

func newTestServer(t *testing.T, cfg serve.Config) *testServer {
	t.Helper()
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if !srv.Draining() {
			srv.Shutdown()
		}
	})
	return &testServer{srv: srv, ts: ts, c: client.New(ts.URL), t: t}
}

// do issues a raw HTTP request — for the endpoints outside the typed v1
// surface (/healthz details, /debug/*) and for wire-shape assertions.
func (h *testServer) do(method, path string, body any) (int, []byte) {
	h.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			h.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

func (h *testServer) submit(req *serve.SubmitRequest) serve.JobView {
	h.t.Helper()
	resp, err := h.c.Submit(context.Background(), req)
	if err != nil {
		h.t.Fatalf("submit: %v", err)
	}
	return resp.Job
}

func (h *testServer) cancel(id string) *serve.JobView {
	h.t.Helper()
	v, err := h.c.Cancel(context.Background(), id)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Code == serve.CodeConflict {
			return nil // already finished
		}
		h.t.Fatalf("cancel %s: %v", id, err)
	}
	return v
}

// waitState polls a job until it reaches one of the wanted states.
func (h *testServer) waitState(id string, want ...string) serve.JobView {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := h.c.Job(context.Background(), id)
		if err != nil {
			h.t.Fatalf("status %s: %v", id, err)
		}
		for _, w := range want {
			if v.State == w {
				return *v
			}
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("job %s stuck in %q, want %v", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmissionRejections(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads:      2,
		MemoryBudget: serve.WorstCaseBytes(14), // admits up to 14 qubits
		MaxQubits:    20,
	})
	cases := []struct {
		name string
		req  *serve.SubmitRequest
		code int
	}{
		{"over budget", &serve.SubmitRequest{Circuit: "ghz", N: 15}, http.StatusRequestEntityTooLarge},
		{"over qubit cap", &serve.SubmitRequest{Circuit: "ghz", N: 24}, http.StatusRequestEntityTooLarge},
		{"no source", &serve.SubmitRequest{}, http.StatusBadRequest},
		{"both sources", &serve.SubmitRequest{QASM: bellQASM, Circuit: "ghz", N: 4}, http.StatusBadRequest},
		{"bad qasm", &serve.SubmitRequest{QASM: "qreg q[2]; bogus"}, http.StatusBadRequest},
		{"unknown workload", &serve.SubmitRequest{Circuit: "nope", N: 4}, http.StatusBadRequest},
		{"bad cache mode", &serve.SubmitRequest{Circuit: "ghz", N: 4, Cache: "sometimes"}, http.StatusBadRequest},
		{"negative shots", &serve.SubmitRequest{Circuit: "ghz", N: 4, Shots: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, err := h.c.Submit(context.Background(), tc.req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Errorf("%s: err = %v, want *client.APIError", tc.name, err)
			continue
		}
		if apiErr.Status != tc.code {
			t.Errorf("%s: got %d (%s), want %d", tc.name, apiErr.Status, apiErr.Message, tc.code)
		}
	}
	if got := h.srv.Registry().Counter("serve.jobs.rejected.budget").Value(); got != 2 {
		t.Errorf("serve.jobs.rejected.budget = %d, want 2", got)
	}
	if got := h.srv.Registry().Counter("serve.jobs.rejected.invalid").Value(); got != 6 {
		t.Errorf("serve.jobs.rejected.invalid = %d, want 6", got)
	}
}

// TestErrorEnvelopeOnEveryRejection is the wire-shape contract: every
// non-2xx body of the v1 API parses as the structured envelope with the
// status-matched code and a non-empty message.
func TestErrorEnvelopeOnEveryRejection(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads:      2,
		MaxInFlight:  1,
		QueueDepth:   1,
		MemoryBudget: serve.WorstCaseBytes(16),
	})
	// Occupy the runner and the queue so 429s are reachable.
	running := h.submit(slowSubmit(1))
	h.waitState(running.ID, serve.StateRunning)
	h.submit(slowSubmit(2))

	cases := []struct {
		name     string
		method   string
		path     string
		body     any
		status   int
		code     string
		reason   string
		retryHdr bool
	}{
		{"invalid submit", "POST", "/v1/jobs", &serve.SubmitRequest{}, 400, serve.CodeInvalidRequest, "invalid", false},
		{"bad body", "POST", "/v1/jobs", "not json", 400, serve.CodeInvalidRequest, "invalid", false},
		{"over budget", "POST", "/v1/jobs", &serve.SubmitRequest{Circuit: "ghz", N: 20}, 413, serve.CodePayloadTooLarge, "memory_budget", false},
		{"queue full", "POST", "/v1/jobs", slowSubmit(3), 429, serve.CodeRateLimited, "queue_full", true},
		{"unknown status", "GET", "/v1/jobs/j-999999", nil, 404, serve.CodeNotFound, "unknown_job", false},
		{"unknown result", "GET", "/v1/jobs/j-999999/result", nil, 404, serve.CodeNotFound, "unknown_job", false},
		{"unknown cancel", "DELETE", "/v1/jobs/j-999999", nil, 404, serve.CodeNotFound, "unknown_job", false},
		{"result not ready", "GET", "/v1/jobs/" + running.ID + "/result", nil, 409, serve.CodeConflict, "not_ready", true},
		{"bad list limit", "GET", "/v1/jobs?limit=zero", nil, 400, serve.CodeInvalidRequest, "invalid", false},
		{"bad list cursor", "GET", "/v1/jobs?cursor=j-404404", nil, 400, serve.CodeInvalidRequest, "invalid_cursor", false},
	}
	for _, tc := range cases {
		code, raw := h.do(tc.method, tc.path, tc.body)
		if code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.status, raw)
			continue
		}
		var env serve.ErrorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Errorf("%s: body does not parse as the envelope: %v (%s)", tc.name, err, raw)
			continue
		}
		if env.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, env.Error.Code, tc.code)
		}
		if tc.reason != "" && env.Error.Reason != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, env.Error.Reason, tc.reason)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty message", tc.name)
		}
		if tc.retryHdr && env.Error.RetryAfterMS <= 0 {
			t.Errorf("%s: retry_after_ms = %d, want > 0", tc.name, env.Error.RetryAfterMS)
		}
	}
}

func TestBellJobEndToEnd(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	v := h.submit(&serve.SubmitRequest{QASM: bellQASM, Shots: 1000, Top: 4, Seed: 42})
	if v.Qubits != 2 || v.Gates != 2 {
		t.Fatalf("view: %+v", v)
	}
	if v.Tenant != serve.DefaultTenant {
		t.Fatalf("tenant = %q, want %q", v.Tenant, serve.DefaultTenant)
	}
	if v.Cache != serve.CacheMiss {
		t.Fatalf("first submission cache = %q, want miss", v.Cache)
	}
	h.waitState(v.ID, serve.StateDone)

	res, err := h.c.Result(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Stats.FinalPhase != "dd" || res.Stats.ConvertedAtGate != -1 {
		t.Fatalf("bell circuit should finish in the DD phase: %+v", res.Stats)
	}
	if len(res.Top) != 2 {
		t.Fatalf("top amplitudes: %+v", res.Top)
	}
	for _, a := range res.Top {
		if a.Basis != "00" && a.Basis != "11" {
			t.Fatalf("unexpected basis state %q", a.Basis)
		}
		if math.Abs(a.Probability-0.5) > 1e-9 {
			t.Fatalf("P(%s) = %v, want 0.5", a.Basis, a.Probability)
		}
	}
	total := 0
	for bits, n := range res.Shots {
		if bits != "00" && bits != "11" {
			t.Fatalf("impossible shot %q", bits)
		}
		total += n
	}
	if total != 1000 {
		t.Fatalf("shot count %d, want 1000", total)
	}
}

func TestResultNotReadyAndUnknown(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	var apiErr *client.APIError
	if _, err := h.c.Job(context.Background(), "j-999999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown job status: %v", err)
	}
	if _, err := h.c.Result(context.Background(), "j-999999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown job result: %v", err)
	}
	v := h.submit(slowSubmit(1))
	if _, err := h.c.Result(context.Background(), v.ID); !errors.As(err, &apiErr) ||
		apiErr.Status != 409 || apiErr.Reason != "not_ready" {
		t.Fatalf("unfinished result: %v, want 409 not_ready", err)
	}
	h.cancel(v.ID)
	h.waitState(v.ID, serve.StateCanceled, serve.StateDone)
}

func TestCancelQueuedJob(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2, MaxInFlight: 1, QueueDepth: 4})
	running := h.submit(slowSubmit(1))
	h.waitState(running.ID, serve.StateRunning)
	queued := h.submit(slowSubmit(2))

	if got := h.cancel(queued.ID); got == nil {
		t.Fatalf("cancel queued job reported already-finished")
	}
	v := h.waitState(queued.ID, serve.StateCanceled)
	if !strings.Contains(v.Error, core.ErrCanceled.Error()) {
		t.Fatalf("canceled job error = %q, want the core sentinel", v.Error)
	}
	// The withdrawn job must be skipped by the runner, not executed: cancel
	// the running one and verify the queued one never starts.
	h.cancel(running.ID)
	h.waitState(running.ID, serve.StateCanceled, serve.StateDone)
	time.Sleep(20 * time.Millisecond)
	if v := h.waitState(queued.ID, serve.StateCanceled); v.StartedAt != nil {
		t.Fatal("withdrawn job was started anyway")
	}
}

func TestCancelRunningJobReturnsSentinel(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	v := h.submit(slowSubmit(1))
	h.waitState(v.ID, serve.StateRunning)
	if got := h.cancel(v.ID); got == nil {
		t.Fatalf("cancel running job reported already-finished")
	}
	got := h.waitState(v.ID, serve.StateCanceled, serve.StateDone)
	if got.State == serve.StateDone {
		t.Skip("job finished before the cancel landed")
	}
	if !strings.Contains(got.Error, core.ErrCanceled.Error()) {
		t.Fatalf("error = %q, want core.ErrCanceled's message", got.Error)
	}
	// Double cancel of a finished job conflicts.
	if h.cancel(v.ID) != nil {
		t.Fatal("cancel of a finished job did not conflict")
	}
	if got := h.srv.Registry().Counter("serve.jobs.canceled").Value(); got != 1 {
		t.Fatalf("serve.jobs.canceled = %d, want 1", got)
	}
}

func TestQueueFullRejects(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2, MaxInFlight: 1, QueueDepth: 1})
	running := h.submit(slowSubmit(1))
	h.waitState(running.ID, serve.StateRunning)
	queued := h.submit(slowSubmit(2)) // fills the queue

	_, err := h.c.Submit(context.Background(), slowSubmit(3))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: %v, want 429", err)
	}
	if apiErr.Reason != "queue_full" || !apiErr.IsRetryable() || apiErr.RetryAfter <= 0 {
		t.Fatalf("queue-full rejection: %+v", apiErr)
	}
	if got := h.srv.Registry().Counter("serve.jobs.rejected.queue_full").Value(); got != 1 {
		t.Fatalf("serve.jobs.rejected.queue_full = %d, want 1", got)
	}
	h.cancel(queued.ID)
	h.cancel(running.ID)
	h.waitState(running.ID, serve.StateCanceled, serve.StateDone)
}

func TestInFlightCapRespected(t *testing.T) {
	const inflight = 2
	h := newTestServer(t, serve.Config{Threads: 2, MaxInFlight: inflight, QueueDepth: 8})
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		ids = append(ids, h.submit(slowSubmit(int64(i+1))).ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	sawParallel := false
	for {
		l, err := h.c.Jobs(context.Background(), client.JobsQuery{State: serve.StateRunning})
		if err != nil {
			t.Fatalf("list: %v", err)
		}
		if len(l.Jobs) > inflight {
			t.Fatalf("%d jobs running, cap is %d", len(l.Jobs), inflight)
		}
		if len(l.Jobs) == inflight {
			sawParallel = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawParallel {
		t.Fatal("never saw the in-flight cap reached")
	}
	for _, id := range ids {
		h.cancel(id)
	}
	for _, id := range ids {
		h.waitState(id, serve.StateCanceled, serve.StateDone)
	}
}

func TestJobTimeoutFails(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	req := slowSubmit(1)
	req.TimeoutMS = 30 // far below the QV runtime
	v := h.submit(req)
	got := h.waitState(v.ID, serve.StateFailed, serve.StateDone)
	if got.State == serve.StateDone {
		t.Skip("machine fast enough to beat a 30ms deadline")
	}
	if !strings.Contains(got.Error, core.ErrDeadlineExceeded.Error()) {
		t.Fatalf("timeout error = %q", got.Error)
	}
}

func TestDrainSemantics(t *testing.T) {
	h := newTestServer(t, serve.Config{
		Threads: 2, MaxInFlight: 1, QueueDepth: 4,
		DrainGrace: 50 * time.Millisecond,
	})
	running := h.submit(slowSubmit(1))
	h.waitState(running.ID, serve.StateRunning)
	queued := h.submit(slowSubmit(2))

	done := make(chan struct{})
	go func() { h.srv.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not drain")
	}

	v := h.waitState(queued.ID, serve.StateCanceled)
	if !strings.Contains(v.Error, "draining") {
		t.Fatalf("drained queued job error = %q", v.Error)
	}
	r := h.waitState(running.ID, serve.StateCanceled, serve.StateDone)
	if r.State == serve.StateCanceled && !strings.Contains(r.Error, core.ErrCanceled.Error()) {
		t.Fatalf("drained running job error = %q", r.Error)
	}
	_, err := h.c.Submit(context.Background(), &serve.SubmitRequest{Circuit: "ghz", N: 4})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %v, want 503", err)
	}
	health, err := h.c.Health(context.Background())
	if err != nil || health["status"] != "draining" {
		t.Fatalf("healthz after drain: %v %v", health["status"], err)
	}
}

func TestWorstCaseBytes(t *testing.T) {
	// 3 arrays of 16-byte amplitudes: state, scratch, shared partial.
	if got, want := serve.WorstCaseBytes(10), uint64(3*16*1024); got != want {
		t.Fatalf("WorstCaseBytes(10) = %d, want %d", got, want)
	}
	for n := 1; n < 30; n++ {
		if serve.WorstCaseBytes(n+1) != 2*serve.WorstCaseBytes(n) {
			t.Fatalf("WorstCaseBytes not doubling at n=%d", n)
		}
	}
}

func TestListFilterAndQueuePosition(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2, MaxInFlight: 1, QueueDepth: 4})
	running := h.submit(slowSubmit(1))
	h.waitState(running.ID, serve.StateRunning)
	q1 := h.submit(slowSubmit(2))
	q2 := h.submit(slowSubmit(3))

	l, err := h.c.Jobs(context.Background(), client.JobsQuery{State: serve.StateQueued})
	if err != nil {
		t.Fatalf("list queued: %v", err)
	}
	// Newest first: q2 leads, then q1.
	if len(l.Jobs) != 2 || l.Jobs[0].ID != q2.ID || l.Jobs[1].ID != q1.ID {
		t.Fatalf("queued list: %+v", l.Jobs)
	}
	if l.Jobs[0].QueuePosition != 2 || l.Jobs[1].QueuePosition != 1 {
		t.Fatalf("queue positions: %d, %d", l.Jobs[0].QueuePosition, l.Jobs[1].QueuePosition)
	}
	for _, id := range []string{q2.ID, q1.ID, running.ID} {
		h.cancel(id)
	}
	h.waitState(running.ID, serve.StateCanceled, serve.StateDone)
}

// TestListPagination walks GET /v1/jobs page by page: stable newest-first
// order, no duplicates, no gaps, and a bounded default page.
func TestListPagination(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2, QueueDepth: 16})
	ids := make([]string, 0, 7)
	for i := 0; i < 7; i++ {
		v := h.submit(&serve.SubmitRequest{Circuit: "ghz", N: 4, Seed: int64(i + 1)})
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		h.waitState(id, serve.StateDone)
	}

	var got []string
	cursor := ""
	pages := 0
	for {
		l, err := h.c.Jobs(context.Background(), client.JobsQuery{Limit: 3, Cursor: cursor})
		if err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		if len(l.Jobs) > 3 {
			t.Fatalf("page %d has %d jobs, limit 3", pages, len(l.Jobs))
		}
		for _, j := range l.Jobs {
			got = append(got, j.ID)
		}
		pages++
		if l.NextCursor == "" {
			break
		}
		cursor = l.NextCursor
	}
	if pages != 3 {
		t.Errorf("pages = %d, want 3 (3+3+1)", pages)
	}
	if len(got) != 7 {
		t.Fatalf("paged through %d jobs, want 7: %v", len(got), got)
	}
	for i, id := range got {
		// Newest first: the last submitted id comes back first.
		if want := ids[len(ids)-1-i]; id != want {
			t.Fatalf("position %d: %s, want %s (full: %v)", i, id, want, got)
		}
	}
}

// TestListTenantFilter pins ?tenant= on the list endpoint.
func TestListTenantFilter(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2, QueueDepth: 16})
	alice := client.New(h.ts.URL, client.WithTenant("alice"))
	bob := client.New(h.ts.URL, client.WithTenant("bob"))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := alice.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 4, Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bob.Submit(ctx, &serve.SubmitRequest{Circuit: "ghz", N: 5}); err != nil {
		t.Fatal(err)
	}
	l, err := h.c.Jobs(ctx, client.JobsQuery{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Jobs) != 2 {
		t.Fatalf("alice's jobs: %d, want 2", len(l.Jobs))
	}
	for _, j := range l.Jobs {
		if j.Tenant != "alice" {
			t.Fatalf("tenant filter leaked job of %q", j.Tenant)
		}
	}
}

func TestMetricsEndpointExposed(t *testing.T) {
	h := newTestServer(t, serve.Config{Threads: 2})
	v := h.submit(&serve.SubmitRequest{QASM: bellQASM})
	h.waitState(v.ID, serve.StateDone)
	code, body := h.do("GET", "/debug/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics: %d", code)
	}
	for _, name := range []string{"serve.jobs.submitted", "serve.jobs.completed", "serve.queue.depth", "serve.cache.hits", "serve.engine.runs"} {
		if !bytes.Contains(body, []byte(fmt.Sprintf("%q", name))) {
			t.Fatalf("/debug/metrics missing %s: %s", name, body)
		}
	}
}
