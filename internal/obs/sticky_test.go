package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestSnapshotDeltaHistogramConcurrent exercises Snapshot.Delta over
// histograms while Observe runs concurrently: the delta between a
// snapshot taken before and after a known number of observations must be
// exact, and snapshots taken mid-flight must never go backwards.
func TestSnapshotDeltaHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("lat", DurationBuckets())
	const (
		writers = 8
		perW    = 2000
	)
	prev := r.Snapshot()

	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// A reader snapshotting mid-flight: delta counts must be monotone
	// non-negative (no torn reads below zero).
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		last := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := r.Snapshot().Delta(prev)
			hs := d.Histograms["lat"]
			if hs.Count < last {
				t.Errorf("delta count went backwards: %d -> %d", last, hs.Count)
				return
			}
			for _, c := range hs.Counts {
				if c < 0 {
					t.Errorf("negative delta bucket count %d", c)
					return
				}
			}
			last = hs.Count
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				h.Observe(int64(1000 + i + w))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readerWG.Wait()

	d := r.Snapshot().Delta(prev)
	hs := d.Histograms["lat"]
	if hs.Count != writers*perW {
		t.Fatalf("delta count = %d, want %d", hs.Count, writers*perW)
	}
	var sum int64
	for _, c := range hs.Counts {
		sum += c
	}
	if sum != writers*perW {
		t.Fatalf("delta bucket sum = %d, want %d", sum, writers*perW)
	}
	// A second run on the same registry is isolated by the delta.
	prev2 := r.Snapshot()
	h.Observe(1)
	d2 := r.Snapshot().Delta(prev2)
	if got := d2.Histograms["lat"].Count; got != 1 {
		t.Fatalf("second-run delta count = %d, want 1", got)
	}
}

// TestTraceWriterStickyMarshalError pins the sticky-error contract: the
// first marshal failure suppresses every later emit and is what Flush
// reports.
func TestTraceWriterStickyMarshalError(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Emit(map[string]any{"ok": 1})
	tw.Emit(func() {}) // unmarshalable: first error sticks
	tw.Emit(map[string]any{"after": 2})
	err := tw.Flush()
	if err == nil {
		t.Fatal("Flush returned nil after a marshal error")
	}
	out := buf.String()
	if !strings.Contains(out, `"ok":1`) {
		t.Errorf("pre-error line lost: %q", out)
	}
	if strings.Contains(out, "after") {
		t.Errorf("post-error emit was not suppressed: %q", out)
	}
	// The error stays sticky across further emits and flushes.
	tw.Emit(map[string]any{"later": 3})
	if err2 := tw.Flush(); err2 == nil || err2.Error() != err.Error() {
		t.Errorf("sticky error changed: %v -> %v", err, err2)
	}
	if strings.Contains(buf.String(), "later") {
		t.Error("emit after sticky error reached the buffer")
	}
}

// failWriter fails every Write after the first n bytes budget is spent.
type failWriter struct {
	budget int
	err    error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, w.err
	}
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, w.err
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestTraceWriterStickyWriteError pins the write-side of the contract:
// an underlying write failure surfaces at Flush, and later Flush calls
// keep reporting the first error.
func TestTraceWriterStickyWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	tw := NewTraceWriter(&failWriter{budget: 4, err: wantErr})
	tw.Emit(map[string]any{"big": strings.Repeat("x", 100)})
	if err := tw.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush = %v, want %v", err, wantErr)
	}
	tw.Emit(map[string]any{"more": 1}) // suppressed
	if err := tw.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("second Flush = %v, want sticky %v", err, wantErr)
	}
}
