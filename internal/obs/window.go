package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// WindowedHistogram is a fixed-bucket histogram over a sliding time
// window, built as two rotating epochs: observations land in the
// current epoch, and a snapshot merges the current and the previous
// one. The visible window therefore covers between 1× and 2× the
// configured duration — the standard two-epoch approximation, which
// keeps rotation O(1) and observation as cheap as a plain Histogram
// plus one coarse time check.
//
// The point is tail latency that reflects *recent* traffic: a
// lifetime-cumulative histogram's p99 converges to its historical value
// and stops moving, so an SLO gate on it never sees a regression that
// begins after enough healthy samples. /healthz quantiles come from
// here; the cumulative series stays in the Registry for Prometheus,
// whose rate() does its own windowing.
//
// The nil *WindowedHistogram is a valid no-op.
type WindowedHistogram struct {
	mu     sync.Mutex
	window time.Duration
	bounds []int64
	cur    *Histogram
	prev   *Histogram
	epoch  time.Time        // start of the current epoch
	now    func() time.Time // injectable for tests
}

// NewWindowedHistogram returns a windowed histogram with the given
// sorted bucket bounds (copied). A non-positive window defaults to
// 5 minutes.
func NewWindowedHistogram(bounds []int64, window time.Duration) *WindowedHistogram {
	if window <= 0 {
		window = 5 * time.Minute
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	w := &WindowedHistogram{
		window: window,
		bounds: b,
		now:    time.Now,
	}
	w.cur = newHistogram(b)
	w.prev = newHistogram(b)
	w.epoch = w.now()
	return w
}

// newHistogram builds a standalone histogram over shared (read-only)
// bounds — the epoch buffers, unregistered so they never appear in a
// Registry snapshot.
func newHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Window returns the configured epoch duration (0 for a nil receiver).
func (w *WindowedHistogram) Window() time.Duration {
	if w == nil {
		return 0
	}
	return w.window
}

// Observe records one value into the current epoch. No-op on nil.
func (w *WindowedHistogram) Observe(v int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.rotateLocked()
	h := w.cur
	w.mu.Unlock()
	h.Observe(v)
}

// Snapshot merges the previous and current epochs into one detached
// HistogramSnapshot (feed it to HistogramSnapshot.Quantile). A nil
// receiver yields an empty snapshot.
func (w *WindowedHistogram) Snapshot() HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	w.mu.Lock()
	w.rotateLocked()
	cur, prev := w.cur, w.prev
	w.mu.Unlock()
	a, b := cur.Snapshot(), prev.Snapshot()
	out := HistogramSnapshot{
		Bounds: a.Bounds,
		Counts: make([]int64, len(a.Counts)),
		Count:  a.Count + b.Count,
		Sum:    a.Sum + b.Sum,
	}
	for i := range a.Counts {
		out.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	return out
}

// rotateLocked advances the epochs to cover the current time: one
// elapsed window shifts current→previous; two or more discard both
// (nothing recent survives a long quiet period). Caller holds w.mu.
func (w *WindowedHistogram) rotateLocked() {
	el := w.now().Sub(w.epoch)
	if el < w.window {
		return
	}
	if el >= 2*w.window {
		w.cur = newHistogram(w.bounds)
		w.prev = newHistogram(w.bounds)
		w.epoch = w.now()
		return
	}
	w.prev = w.cur
	w.cur = newHistogram(w.bounds)
	w.epoch = w.epoch.Add(w.window)
}
