package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Root("job", TraceID{}, SpanID{})
	h := TraceParent(root.Trace(), root.ID())
	tid, sid, ok := ParseTraceParent(h)
	if !ok {
		t.Fatalf("ParseTraceParent(%q) failed", h)
	}
	if tid != root.Trace() || sid != root.ID() {
		t.Fatalf("round trip mismatch: got %s/%s want %s/%s", tid, sid, root.Trace(), root.ID())
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
		"004bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // no dash
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceParent(h); ok {
			t.Errorf("ParseTraceParent(%q) accepted malformed input", h)
		}
	}
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, ok := ParseTraceParent(good); !ok {
		t.Errorf("ParseTraceParent(%q) rejected valid input", good)
	}
}

func TestSpanTreeCollected(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tr := NewTracer(tw)

	root := tr.Root("job", TraceID{}, SpanID{})
	root.SetAttr("circuit", "ghz")
	queued := root.Child("queued")
	queued.End()
	run := root.Child("run")
	dd := run.Child("phase.dd")
	dd.SetAttr("gates", 12)
	dd.End()
	run.End()
	root.End()

	recs, dropped := root.Collected()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(recs) != 4 {
		t.Fatalf("collected %d spans, want 4", len(recs))
	}
	// End order: queued, phase.dd, run, job.
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		if r.Event != "span" {
			t.Fatalf("event = %q, want span", r.Event)
		}
		if r.Trace != root.Trace().String() {
			t.Fatalf("span %s on trace %s, want %s", r.Name, r.Trace, root.Trace())
		}
		byName[r.Name] = r
	}
	if byName["queued"].Parent != root.ID().String() {
		t.Errorf("queued parent = %q, want root %q", byName["queued"].Parent, root.ID())
	}
	if byName["phase.dd"].Parent != byName["run"].Span {
		t.Errorf("phase.dd parent = %q, want run %q", byName["phase.dd"].Parent, byName["run"].Span)
	}
	if byName["job"].Parent != "" {
		t.Errorf("root parent = %q, want empty", byName["job"].Parent)
	}
	if byName["phase.dd"].Attrs["gates"] != 12 {
		t.Errorf("phase.dd gates attr = %v, want 12", byName["phase.dd"].Attrs["gates"])
	}

	// The same four spans went to the JSONL sink.
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL sink has %d lines, want 4", len(lines))
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Root("job", TraceID{}, SpanID{})
	root.End()
	root.End()
	recs, _ := root.Collected()
	if len(recs) != 1 {
		t.Fatalf("double End emitted %d records, want 1", len(recs))
	}
}

func TestSpanCollectionCap(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetMaxSpans(3)
	root := tr.Root("job", TraceID{}, SpanID{})
	for i := 0; i < 10; i++ {
		root.Child("c").End()
	}
	root.End()
	recs, dropped := root.Collected()
	if len(recs) != 3 {
		t.Fatalf("collected %d, want cap 3", len(recs))
	}
	if dropped != 8 { // 7 children + the root itself
		t.Fatalf("dropped = %d, want 8", dropped)
	}
}

func TestNilSpanAndTracerNoOps(t *testing.T) {
	var tr *Tracer
	root := tr.Root("job", TraceID{}, SpanID{})
	if root != nil {
		t.Fatal("nil tracer minted a span")
	}
	child := root.Child("x") // must not panic
	child.SetAttr("k", 1)
	child.End()
	if recs, d := root.Collected(); recs != nil || d != 0 {
		t.Fatal("nil span collected records")
	}
	if !root.Trace().IsZero() || !root.ID().IsZero() {
		t.Fatal("nil span has identity")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span round-tripped through context")
	}
}

func TestSpanContextPropagation(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Root("job", TraceID{}, SpanID{})
	ctx := ContextWithSpan(context.Background(), root)
	got := SpanFromContext(ctx)
	if got != root {
		t.Fatal("span did not round-trip through context")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context produced a span")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Root("job", TraceID{}, SpanID{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.Child("w")
				c.SetAttr("j", j)
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	recs, dropped := root.Collected()
	if len(recs)+dropped != 8*50+1 {
		t.Fatalf("collected %d + dropped %d, want %d total", len(recs), dropped, 8*50+1)
	}
}

// TestSpanSchemaGolden pins the span JSONL wire schema: field names,
// order and types. If this test fails, trace-consuming tooling breaks —
// bump the consumers and regenerate with UPDATE_SPAN_GOLDEN=1.
func TestSpanSchemaGolden(t *testing.T) {
	var tid TraceID
	var sid, pid SpanID
	for i := range tid {
		tid[i] = byte(i)
	}
	for i := range sid {
		sid[i] = byte(0x10 + i)
	}
	for i := range pid {
		pid[i] = byte(0x20 + i)
	}
	recs := []SpanRecord{
		{
			Event: "span", Trace: tid.String(), Span: sid.String(),
			Name: "job", StartUS: 1700000000000000, DurationNS: 123456789,
			Attrs: map[string]any{"circuit": "ghz", "qubits": 20, "state": "done"},
		},
		{
			Event: "span", Trace: tid.String(), Span: pid.String(), Parent: sid.String(),
			Name: "phase.dd", StartUS: 1700000000000100, DurationNS: 1000,
		},
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, r := range recs {
		tw.Emit(r)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "span_schema.golden")
	if os.Getenv("UPDATE_SPAN_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with UPDATE_SPAN_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("span JSONL schema drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// A live emitted span must carry exactly the pinned key set.
	tr := NewTracer(nil)
	root := tr.Root("job", TraceID{}, SpanID{})
	root.Child("x").End()
	root.End()
	live, _ := root.Collected()
	for _, r := range live {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		allowed := map[string]bool{
			"event": true, "trace": true, "span": true, "parent": true,
			"name": true, "start_us": true, "duration_ns": true, "attrs": true,
		}
		for k := range m {
			if !allowed[k] {
				t.Errorf("emitted span has unpinned field %q — update the golden schema first", k)
			}
		}
	}
}
