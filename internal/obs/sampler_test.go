package obs

import (
	"testing"
	"time"
)

func seriesByName(ss []Series) map[string]Series {
	m := make(map[string]Series, len(ss))
	for _, s := range ss {
		m[s.Name] = s
	}
	return m
}

func TestSamplerCollectsGaugesAndCounters(t *testing.T) {
	r := New()
	g := r.Gauge("core.dd_size")
	c := r.Counter("core.gates.dd")
	f := r.FloatGauge("core.ewma")
	g.Set(7)
	c.Add(3)
	f.Set(1.5)

	s := NewSampler(r, time.Millisecond, 256)
	s.Start()
	time.Sleep(25 * time.Millisecond)
	g.Set(11)
	c.Add(2)
	time.Sleep(25 * time.Millisecond)
	out := seriesByName(s.Stop())

	for _, name := range []string{"core.dd_size", "core.gates.dd", "core.ewma",
		heapSeriesName, goroutineSeriesName} {
		ser, ok := out[name]
		if !ok {
			t.Fatalf("series %q missing (have %v)", name, keysOf(out))
		}
		if len(ser.TMs) == 0 || len(ser.TMs) != len(ser.V) {
			t.Fatalf("series %q malformed: %d timestamps, %d values", name, len(ser.TMs), len(ser.V))
		}
		for i := 1; i < len(ser.TMs); i++ {
			if ser.TMs[i] < ser.TMs[i-1] {
				t.Fatalf("series %q timestamps not monotone: %v", name, ser.TMs)
			}
		}
	}
	dd := out["core.dd_size"]
	if first, last := dd.V[0], dd.V[len(dd.V)-1]; first != 7 || last != 11 {
		t.Fatalf("dd_size series spans %v..%v, want 7..11", first, last)
	}
	gates := out["core.gates.dd"]
	if last := gates.V[len(gates.V)-1]; last != 5 {
		t.Fatalf("counter series ends at %v, want 5", last)
	}
}

func keysOf(m map[string]Series) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSamplerDownsamplesAtCapacity(t *testing.T) {
	r := New()
	r.Gauge("g").Set(1)
	s := NewSampler(r, time.Millisecond, 16)
	s.Start()
	time.Sleep(80 * time.Millisecond) // far more polls than capacity
	out := seriesByName(s.Stop())
	ser := out["g"]
	if len(ser.TMs) == 0 || len(ser.TMs) > 16 {
		t.Fatalf("series has %d samples, want 1..16", len(ser.TMs))
	}
	// Despite dropping samples, the series must still span most of the
	// run (downsampling, not truncation).
	if span := ser.TMs[len(ser.TMs)-1] - ser.TMs[0]; span < 40 {
		t.Fatalf("downsampled series spans only %dms of an ~80ms run", span)
	}
}

func TestSamplerStopWithoutTicks(t *testing.T) {
	r := New()
	r.Gauge("g").Set(5)
	s := NewSampler(r, time.Hour, 64) // ticker will never fire
	s.Start()
	out := seriesByName(s.Stop())
	ser, ok := out["g"]
	if !ok || len(ser.V) != 1 || ser.V[0] != 5 {
		t.Fatalf("final poll did not record: %+v", out)
	}
	// Stop is idempotent.
	if again := s.Stop(); len(again) != len(out) {
		t.Fatal("second Stop returned different result")
	}
}

func TestSamplerNilRegistry(t *testing.T) {
	s := NewSampler(nil, time.Millisecond, 64)
	s.Start()
	time.Sleep(10 * time.Millisecond)
	out := seriesByName(s.Stop())
	if _, ok := out[goroutineSeriesName]; !ok {
		t.Fatalf("runtime series missing on nil registry: %v", keysOf(out))
	}
}

func TestSeriesBufStrideDoubling(t *testing.T) {
	b := newSeriesBuf(4)
	for i := 0; i < 64; i++ {
		b.add(int64(i), float64(i))
	}
	if len(b.t) > 4 {
		t.Fatalf("buffer exceeded capacity: %d", len(b.t))
	}
	if b.stride < 8 {
		t.Fatalf("stride = %d after 16x overflow, want >= 8", b.stride)
	}
	if b.t[0] != 0 {
		t.Fatalf("first sample lost: %v", b.t)
	}
}
