package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestLedgerPhaseAccounting(t *testing.T) {
	l := NewResourceLedger()

	l.Begin("dd")
	l.AddCPU(1000)
	l.ObserveDD(100, 9600)
	l.ObserveDD(50, 4800) // shrink: phase peak must hold
	pc, ok := l.End()
	if !ok {
		t.Fatal("End() reported no open phase")
	}
	if pc.Phase != "dd" || pc.CPUNs != 1000 {
		t.Errorf("dd phase = %+v", pc)
	}
	if pc.PeakDDNodes != 100 || pc.PeakDDBytes != 9600 {
		t.Errorf("dd peaks = %d nodes / %d bytes, want 100/9600", pc.PeakDDNodes, pc.PeakDDBytes)
	}
	if pc.WallNs < 0 {
		t.Errorf("negative wall %d", pc.WallNs)
	}

	// Begin auto-ends the open phase.
	l.Begin("convert")
	l.AddFlat(1 << 20)
	l.Begin("dmav")
	l.AddFlat(1 << 19)
	l.AddFlat(-(1 << 19))

	snap := l.Snapshot()
	if len(snap.Phases) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(snap.Phases), snap.Phases)
	}
	if snap.Phases[1].Phase != "convert" || snap.Phases[1].PeakFlatBytes != 1<<20 {
		t.Errorf("convert phase = %+v", snap.Phases[1])
	}
	// dmav inherits the standing 1 MiB flat footprint and peaked at 1.5 MiB.
	if got := snap.Phases[2].PeakFlatBytes; got != 1<<20+1<<19 {
		t.Errorf("dmav flat peak = %d, want %d", got, 1<<20+1<<19)
	}
	if snap.PeakDDNodes != 100 {
		t.Errorf("run peak DD nodes = %d, want 100", snap.PeakDDNodes)
	}
	// Run-wide peak: 1.5 MiB flat + live DD bytes at the time (4800).
	if snap.PeakBytes < 1<<20+1<<19 {
		t.Errorf("run peak bytes = %d, want >= %d", snap.PeakBytes, 1<<20+1<<19)
	}
	if snap.CurrentBytes != 1<<20+4800 {
		t.Errorf("current bytes = %d, want %d", snap.CurrentBytes, 1<<20+4800)
	}
	if snap.CPUNs != 1000 {
		t.Errorf("total CPU = %d, want 1000", snap.CPUNs)
	}
}

func TestLedgerSnapshotSamplesOpenPhase(t *testing.T) {
	l := NewResourceLedger()
	l.Begin("dd")
	time.Sleep(time.Millisecond)
	snap := l.Snapshot()
	if len(snap.Phases) != 1 {
		t.Fatalf("got %d phases", len(snap.Phases))
	}
	if snap.Phases[0].WallNs < int64(time.Millisecond) {
		t.Errorf("open phase wall %d, want >= 1ms", snap.Phases[0].WallNs)
	}
	// The live sample must not disturb the accumulating phase.
	pc, ok := l.End()
	if !ok || pc.WallNs < snap.Phases[0].WallNs {
		t.Errorf("End() wall %d < snapshot wall %d", pc.WallNs, snap.Phases[0].WallNs)
	}
}

func TestLedgerAddCPUOutsidePhaseDropped(t *testing.T) {
	l := NewResourceLedger()
	l.AddCPU(500) // no open phase: a late batch completion
	l.Begin("dd")
	l.End()
	l.AddCPU(700) // after the run
	if snap := l.Snapshot(); snap.CPUNs != 0 {
		t.Errorf("CPU attributed outside phases: %d", snap.CPUNs)
	}
}

func TestLedgerProjectionFiresHook(t *testing.T) {
	l := NewResourceLedger()
	var mu sync.Mutex
	var got []LedgerSnapshot
	l.OnUpdate(func(s LedgerSnapshot) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
		// The hook must run outside the ledger lock.
		_ = l.Snapshot()
	})
	l.Begin("fuse")
	l.SetProjection(1 << 21)
	l.End()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("hook fired %d times, want 2 (projection + phase end)", len(got))
	}
	if got[0].ProjectedBytes != 1<<21 {
		t.Errorf("projection in hook snapshot = %d", got[0].ProjectedBytes)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *ResourceLedger
	l.Begin("dd")
	l.AddCPU(1)
	l.ObserveDD(1, 1)
	l.AddFlat(1)
	l.SetProjection(1)
	l.OnUpdate(func(LedgerSnapshot) {})
	if _, ok := l.End(); ok {
		t.Error("nil End() closed a phase")
	}
	if snap := l.Snapshot(); len(snap.Phases) != 0 {
		t.Error("nil Snapshot() has phases")
	}
}

func TestLedgerFlatUnderflowClamps(t *testing.T) {
	l := NewResourceLedger()
	l.Begin("dmav")
	l.AddFlat(-1024) // release without a matching allocation
	if snap := l.Snapshot(); snap.CurrentBytes != 0 {
		t.Errorf("current bytes underflowed to %d", snap.CurrentBytes)
	}
}

func TestLedgerSnapshotJSONRoundTrip(t *testing.T) {
	l := NewResourceLedger()
	l.Begin("dd")
	l.ObserveDD(10, 960)
	l.End()
	snap := l.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back LedgerSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Phases) != 1 || back.Phases[0].Phase != "dd" || back.PeakDDNodes != 10 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestAllocSampleSub(t *testing.T) {
	a := AllocSample{Bytes: 100, Objects: 10, GCCycles: 2}
	b := AllocSample{Bytes: 150, Objects: 12, GCCycles: 2}
	d := b.Sub(a)
	if d.Bytes != 50 || d.Objects != 2 || d.GCCycles != 0 {
		t.Errorf("Sub = %+v", d)
	}
	// Clamped, never underflows.
	if d = a.Sub(b); d.Bytes != 0 || d.Objects != 0 {
		t.Errorf("reverse Sub underflowed: %+v", d)
	}
}

func TestReadAllocSampleMonotone(t *testing.T) {
	a := ReadAllocSample()
	buf := make([]byte, 1<<16)
	_ = buf
	b := ReadAllocSample()
	if b.Bytes < a.Bytes {
		t.Errorf("alloc bytes went backwards: %d -> %d", a.Bytes, b.Bytes)
	}
	if d := b.Sub(a); d.Bytes == 0 {
		t.Log("no allocation observed between samples (allowed, but unexpected)")
	}
}
