package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	f := r.FloatGauge("x")
	h := r.Histogram("x", []int64{1, 2})
	if c != nil || g != nil || f != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic, and all must read as zero.
	c.Add(5)
	c.Inc()
	g.Set(7)
	g.SetMax(9)
	f.Set(1.5)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.FloatGauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("conc")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := New()
	g := r.Gauge("peak")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.SetMax(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Value(); got != 7999 {
		t.Fatalf("SetMax high-water mark = %d, want 7999", got)
	}
}

func TestHandleIdentity(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Histogram("h", []int64{1}) != r.Histogram("h", []int64{5, 6}) {
		t.Fatal("same name must return the same histogram (bounds of later calls ignored)")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	tests := []struct {
		value      int64
		wantBucket int
	}{
		{0, 0},  // below first bound
		{9, 0},  // below first bound
		{10, 0}, // bounds are inclusive upper limits
		{11, 1},
		{100, 1},
		{101, 2},
		{1000, 2},
		{1001, 3}, // overflow bucket
	}
	for _, tc := range tests {
		t.Run(fmt.Sprintf("v=%d", tc.value), func(t *testing.T) {
			r := New()
			h := r.Histogram("lat", []int64{10, 100, 1000})
			h.Observe(tc.value)
			s := r.Snapshot().Histograms["lat"]
			for i, c := range s.Counts {
				want := int64(0)
				if i == tc.wantBucket {
					want = 1
				}
				if c != want {
					t.Fatalf("bucket %d has count %d, want %d (counts %v)", i, c, want, s.Counts)
				}
			}
			if s.Count != 1 || s.Sum != tc.value {
				t.Fatalf("count=%d sum=%d, want 1/%d", s.Count, s.Sum, tc.value)
			}
		})
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("lat", DurationBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 5000; i++ {
				h.Observe(i * 1000)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 20000 {
		t.Fatalf("count = %d, want 20000", h.Count())
	}
	var total int64
	for _, c := range r.Snapshot().Histograms["lat"].Counts {
		total += c
	}
	if total != 20000 {
		t.Fatalf("bucket counts sum to %d, want 20000", total)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h", []int64{10})
	c.Add(1)
	h.Observe(5)
	snap := r.Snapshot()
	// Mutate after snapshotting: the snapshot must not move.
	c.Add(100)
	h.Observe(5)
	r.Gauge("late").Set(3)
	if snap.Counters["c"] != 1 {
		t.Fatalf("snapshot counter moved to %d", snap.Counters["c"])
	}
	if snap.Histograms["h"].Counts[0] != 1 || snap.Histograms["h"].Count != 1 {
		t.Fatal("snapshot histogram moved")
	}
	if _, ok := snap.Gauges["late"]; ok {
		t.Fatal("snapshot saw a gauge registered after it was taken")
	}
}

func TestFloatGauge(t *testing.T) {
	r := New()
	g := r.FloatGauge("ewma")
	g.Set(123.25)
	if got := g.Value(); got != 123.25 {
		t.Fatalf("FloatGauge = %v, want 123.25", got)
	}
	if s := r.Snapshot(); s.FloatGauges["ewma"] != 123.25 {
		t.Fatalf("snapshot float gauge = %v", s.FloatGauges["ewma"])
	}
}

func TestTraceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	type ev struct {
		Gate  int    `json:"gate"`
		Phase string `json:"phase"`
	}
	tw.Emit(ev{0, "dd"})
	tw.Emit(ev{1, "dmav"})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var got ev
	if err := json.Unmarshal([]byte(lines[1]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Gate != 1 || got.Phase != "dmav" {
		t.Fatalf("line 2 = %+v", got)
	}
	// Nil writer: all methods are no-ops.
	var nilTW *TraceWriter
	nilTW.Emit(ev{})
	if err := nilTW.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tw.Emit(map[string]int{"w": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("interleaved/corrupt line: %q", l)
		}
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	r := New()
	r.Counter("dd.unique.v.hits").Add(42)
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["dd.unique.v.hits"] != 42 {
		t.Fatalf("served snapshot = %+v", snap.Counters)
	}
	// Live update: the endpoint must reflect changes made after Serve.
	r.Counter("dd.unique.v.hits").Add(8)
	if err := json.Unmarshal(get("/debug/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["dd.unique.v.hits"] != 50 {
		t.Fatalf("live counter = %d, want 50", snap.Counters["dd.unique.v.hits"])
	}
	if !json.Valid(get("/debug/vars")) {
		t.Fatal("/debug/vars is not JSON")
	}
	if len(get("/debug/pprof/")) == 0 {
		t.Fatal("/debug/pprof/ empty")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	r.Counter("runs").Add(10)
	r.Gauge("size").Set(100)
	r.FloatGauge("eff").Set(0.5)
	h := r.Histogram("lat", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	prev := r.Snapshot()

	r.Counter("runs").Add(3)
	r.Counter("fresh").Add(7) // registered after prev
	r.Gauge("size").Set(42)
	r.FloatGauge("eff").Set(0.9)
	h.Observe(5)
	d := r.Snapshot().Delta(prev)

	if d.Counters["runs"] != 3 {
		t.Errorf("counter delta = %d, want 3", d.Counters["runs"])
	}
	if d.Counters["fresh"] != 7 {
		t.Errorf("counter missing from prev = %d, want full value 7", d.Counters["fresh"])
	}
	// Gauges are instantaneous: Delta keeps the current value.
	if d.Gauges["size"] != 42 {
		t.Errorf("gauge = %d, want current value 42", d.Gauges["size"])
	}
	if d.FloatGauges["eff"] != 0.9 {
		t.Errorf("float gauge = %v, want 0.9", d.FloatGauges["eff"])
	}
	hd := d.Histograms["lat"]
	if hd.Count != 1 || hd.Sum != 5 {
		t.Errorf("histogram delta count=%d sum=%d, want 1/5", hd.Count, hd.Sum)
	}
	if hd.Counts[0] != 1 || hd.Counts[1] != 0 {
		t.Errorf("histogram bucket deltas = %v", hd.Counts)
	}

	// Delta against an empty snapshot is the snapshot itself (counters).
	full := r.Snapshot().Delta(Snapshot{})
	if full.Counters["runs"] != 13 {
		t.Errorf("delta vs empty = %d, want 13", full.Counters["runs"])
	}
}
