package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	mrand "math/rand"
	"sync"
	"time"
)

// This file is the request-scoped tracing layer: a Span carries a trace
// ID, a span ID and a parent link, accumulates attributes, and emits one
// JSONL record when ended. Spans follow the package's nil-handle
// convention — the nil *Tracer and nil *Span are valid no-ops, so
// instrumented code pays one pointer check when tracing is off.
//
// Trace identity is W3C Trace Context compatible: a 16-byte trace ID and
// an 8-byte span ID, carried over HTTP as a `traceparent` header
// (ParseTraceParent / TraceParent), so a future cluster coordinator can
// stitch one request's spans across processes.

// TraceID identifies one end-to-end request (a job, a CLI run). The zero
// value means "no trace".
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value means "no
// parent".
type SpanID [8]byte

// IsZero reports whether the trace ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the span ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// TraceParent renders a W3C traceparent header value (version 00,
// sampled flag set): "00-<32 hex trace>-<16 hex span>-01".
func TraceParent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

// ParseTraceParent parses a W3C traceparent header value. It accepts any
// version byte (per spec, unknown versions are parsed as version 00 if
// the first four fields are well-formed) and rejects all-zero trace or
// span IDs, as the spec requires.
func ParseTraceParent(h string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, s, false
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if t.IsZero() || s.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return t, s, true
}

// SpanRecord is the JSONL wire form of one completed span. The schema is
// pinned by a golden-file test (span_test.go) and documented in
// DESIGN.md §10: renaming or retyping a field is a breaking change for
// trace-consuming tooling and must fail that test first.
type SpanRecord struct {
	Event      string         `json:"event"` // always "span"
	Trace      string         `json:"trace"`
	Span       string         `json:"span"`
	Parent     string         `json:"parent,omitempty"`
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"` // Unix microseconds
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// defaultMaxSpans bounds how many records one trace collects in memory
// for the flight recorder; later spans are still written to the JSONL
// sink but counted as dropped in the collector.
const defaultMaxSpans = 1024

// Tracer mints spans and owns their sink: completed spans are emitted to
// the TraceWriter (when one is attached) and collected per trace for the
// flight recorder. The nil *Tracer is a valid no-op whose spans are all
// nil.
type Tracer struct {
	tw *TraceWriter // may be nil: collect-only tracing

	mu  sync.Mutex
	rng *mrand.Rand // seeded from crypto/rand; guarded by mu
	max int         // per-trace collection cap
}

// NewTracer returns a tracer writing completed spans to tw (nil is
// allowed: spans are then only collected in memory, which is all the
// flight recorder needs).
func NewTracer(tw *TraceWriter) *Tracer {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	return &Tracer{
		tw:  tw,
		rng: mrand.New(mrand.NewSource(int64(binary.LittleEndian.Uint64(seed[:])))),
		max: defaultMaxSpans,
	}
}

// SetMaxSpans overrides the per-trace collection cap (tests).
func (t *Tracer) SetMaxSpans(n int) {
	if t != nil && n > 0 {
		t.max = n
	}
}

func (t *Tracer) randTraceID() TraceID {
	var id TraceID
	t.mu.Lock()
	binary.LittleEndian.PutUint64(id[:8], t.rng.Uint64())
	binary.LittleEndian.PutUint64(id[8:], t.rng.Uint64())
	t.mu.Unlock()
	return id
}

func (t *Tracer) randSpanID() SpanID {
	var id SpanID
	t.mu.Lock()
	binary.LittleEndian.PutUint64(id[:], t.rng.Uint64())
	t.mu.Unlock()
	if id.IsZero() {
		id[0] = 1 // the zero span ID means "no parent"
	}
	return id
}

// spanCollector accumulates the completed spans of one trace, shared by
// every span under the same root.
type spanCollector struct {
	mu      sync.Mutex
	recs    []SpanRecord
	dropped int
	max     int
}

func (c *spanCollector) add(r SpanRecord) {
	c.mu.Lock()
	if len(c.recs) < c.max {
		c.recs = append(c.recs, r)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// Span is one timed operation within a trace. Create roots with
// Tracer.Root, children with Span.Child, and finish with End — a span
// that is never ended is never emitted. The nil *Span is a valid no-op.
// A Span's methods are safe for concurrent use, but a span is normally
// owned by one goroutine at a time.
type Span struct {
	tr  *Tracer
	col *spanCollector

	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Root starts a root span. A zero trace ID mints a fresh trace; a
// non-zero one (typically from an incoming traceparent header) continues
// the remote trace with parent as the remote caller's span.
func (t *Tracer) Root(name string, trace TraceID, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	if trace.IsZero() {
		trace = t.randTraceID()
	}
	return &Span{
		tr:     t,
		col:    &spanCollector{max: t.max},
		trace:  trace,
		id:     t.randSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// Child starts a sub-span. No-op (returns nil) on a nil receiver, so
// deep call chains stay allocation-free when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr:     s.tr,
		col:    s.col,
		trace:  s.trace,
		id:     s.tr.randSpanID(),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// Trace returns the span's trace ID (zero for a nil span).
func (s *Span) Trace() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// ID returns the span's own ID (zero for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr attaches one attribute. Later writes to the same key win.
// No-op on a nil receiver.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 8)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End finishes the span: its record is appended to the trace's collector
// and written to the tracer's JSONL sink. End is idempotent; only the
// first call emits.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		Event:      "span",
		Trace:      s.trace.String(),
		Span:       s.id.String(),
		Name:       s.name,
		StartUS:    s.start.UnixMicro(),
		DurationNS: end.Sub(s.start).Nanoseconds(),
		Attrs:      s.attrs,
	}
	s.attrs = nil // the record owns the map now
	s.mu.Unlock()
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	s.col.add(rec)
	s.tr.tw.Emit(rec)
}

// Collected returns the completed spans of this span's trace so far
// (submission order) and how many were dropped over the collection cap.
// Typically called on the root after End to hand the tree to the flight
// recorder.
func (s *Span) Collected() ([]SpanRecord, int) {
	if s == nil {
		return nil, 0
	}
	s.col.mu.Lock()
	out := make([]SpanRecord, len(s.col.recs))
	copy(out, s.col.recs)
	d := s.col.dropped
	s.col.mu.Unlock()
	return out, d
}

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span; engine layers
// below (core.RunContext) pick it up and hang their phase spans off it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil — and every
// method of a nil span no-ops, so callers use the result unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
