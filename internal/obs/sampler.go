package obs

import (
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// Series is one sampled metric over a run: parallel arrays of millisecond
// offsets from the sampler's start and the value observed at each offset.
// Counters yield monotone series (so a phase timeline — gates executed in
// the DD phase vs the DMAV phase — is reconstructible after the fact);
// gauges yield instantaneous series.
type Series struct {
	Name string    `json:"name"`
	TMs  []int64   `json:"t_ms"`
	V    []float64 `json:"v"`
}

// seriesBuf is a fixed-capacity sample buffer. When it fills up it drops
// every other retained sample and doubles its stride, so a buffer of
// capacity C always spans the whole run with at most C points at a
// resolution that degrades gracefully (classic online downsampling).
type seriesBuf struct {
	t      []int64
	v      []float64
	cap    int
	stride int // record every stride-th poll
	tick   int // polls seen since creation
}

func newSeriesBuf(capacity int) *seriesBuf {
	return &seriesBuf{
		t:      make([]int64, 0, capacity),
		v:      make([]float64, 0, capacity),
		cap:    capacity,
		stride: 1,
	}
}

func (b *seriesBuf) add(tMs int64, v float64) {
	b.tick++
	if (b.tick-1)%b.stride != 0 {
		return
	}
	if len(b.t) == b.cap {
		// Compact: keep even indices, double the stride.
		half := b.cap / 2
		for i := 0; i < half; i++ {
			b.t[i] = b.t[2*i]
			b.v[i] = b.v[2*i]
		}
		b.t = b.t[:half]
		b.v = b.v[:half]
		b.stride *= 2
	}
	b.t = append(b.t, tMs)
	b.v = append(b.v, v)
}

// Runtime series sampled alongside the registry, via the cheap
// runtime/metrics interface (no stop-the-world, unlike ReadMemStats).
const (
	heapSeriesName      = "runtime.heap_bytes"
	goroutineSeriesName = "runtime.goroutines"
)

var runtimeMetricNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
}

var runtimeSeriesNames = []string{heapSeriesName, goroutineSeriesName}

// Sampler polls every numeric metric of a Registry (counters, gauges,
// float gauges) plus two runtime series (heap bytes, goroutine count) on
// a ticker, into fixed-capacity ring buffers. Metrics registered after
// Start are picked up on the next tick. Stop performs one final poll, so
// even a run shorter than the interval yields at least one sample per
// series that existed by the end.
type Sampler struct {
	r        *Registry
	interval time.Duration
	capacity int

	mu     sync.Mutex
	start  time.Time
	series map[string]*seriesBuf
	rt     []metrics.Sample

	stop    chan struct{}
	done    chan struct{}
	started bool
	stopped bool
	out     []Series
}

// NewSampler returns a sampler over r (which may be nil: only the runtime
// series are collected then). A non-positive interval defaults to 10ms; a
// capacity below 16 defaults to 2048.
func NewSampler(r *Registry, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	if capacity < 16 {
		capacity = 2048
	}
	if capacity%2 != 0 {
		capacity++
	}
	rt := make([]metrics.Sample, len(runtimeMetricNames))
	for i, n := range runtimeMetricNames {
		rt[i].Name = n
	}
	return &Sampler{
		r:        r,
		interval: interval,
		capacity: capacity,
		series:   make(map[string]*seriesBuf),
		rt:       rt,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background polling goroutine. Calling Start twice is
// a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.start = time.Now()
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.poll()
			}
		}
	}()
}

// Stop halts polling, takes one final sample, and returns every series
// sorted by name. Stop is idempotent: later calls return the same result.
// Stopping a sampler that was never started returns only the final
// sample.
func (s *Sampler) Stop() []Series {
	s.mu.Lock()
	if s.stopped {
		out := s.out
		s.mu.Unlock()
		return out
	}
	s.stopped = true
	started := s.started
	if !started {
		s.start = time.Now()
	}
	s.mu.Unlock()

	if started {
		close(s.stop)
		<-s.done
	}
	s.poll() // final sample, so short runs still record something

	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	s.out = make([]Series, 0, len(names))
	for _, n := range names {
		b := s.series[n]
		s.out = append(s.out, Series{Name: n, TMs: b.t, V: b.v})
	}
	return s.out
}

func (s *Sampler) poll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	tMs := time.Since(s.start).Milliseconds()
	record := func(name string, v float64) {
		b, ok := s.series[name]
		if !ok {
			b = newSeriesBuf(s.capacity)
			s.series[name] = b
		}
		b.add(tMs, v)
	}
	s.r.eachValue(record)
	metrics.Read(s.rt)
	for i, sample := range s.rt {
		if sample.Value.Kind() == metrics.KindUint64 {
			record(runtimeSeriesNames[i], float64(sample.Value.Uint64()))
		}
	}
}

// eachValue calls f with the current value of every counter, gauge and
// float gauge. No-op on a nil registry.
func (r *Registry) eachValue(f func(name string, v float64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.ctrs {
		f(n, float64(c.Value()))
	}
	for n, g := range r.gauges {
		f(n, float64(g.Value()))
	}
	for n, g := range r.fltg {
		f(n, g.Value())
	}
}
