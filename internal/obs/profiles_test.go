package obs

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// newTestRing builds a ring with a fake clock so the rate window is
// deterministic under test.
func newTestRing(t *testing.T, capacity int, window time.Duration) (*ProfileRing, *fakeClock) {
	t.Helper()
	p, err := NewProfileRing(t.TempDir(), capacity, window, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	p.now = clk.now
	return p, clk
}

func TestProfileRingRateLimit(t *testing.T) {
	p, clk := newTestRing(t, 8, time.Minute)
	defer p.Sync()

	if !p.Capture("slo_breach") {
		t.Fatal("first capture suppressed")
	}
	// A storm inside the window: all suppressed.
	for i := 0; i < 5; i++ {
		if p.Capture("slo_breach") {
			t.Fatal("capture inside the rate window not suppressed")
		}
	}
	clk.advance(61 * time.Second)
	if !p.Capture("degraded") {
		t.Fatal("capture after the window suppressed")
	}
	if got := len(p.Captures()); got != 2 {
		t.Errorf("retained %d captures, want 2", got)
	}
}

func TestProfileRingRotates(t *testing.T) {
	p, clk := newTestRing(t, 2, time.Second)
	defer p.Sync()

	for i := 0; i < 4; i++ {
		if !p.Capture("failed") {
			t.Fatalf("capture %d suppressed", i)
		}
		clk.advance(2 * time.Second)
	}
	p.Sync() // CPU captures done before counting files

	caps := p.Captures()
	if len(caps) != 2 {
		t.Fatalf("retained %d captures, want capacity 2", len(caps))
	}
	// Newest first: seq 4 then 3.
	if caps[0].Seq != 4 || caps[1].Seq != 3 {
		t.Errorf("capture order = %d, %d; want 4, 3", caps[0].Seq, caps[1].Seq)
	}
	// Evicted captures' files are deleted from disk; survivors remain.
	entries, err := os.ReadDir(p.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "000001-") || strings.HasPrefix(e.Name(), "000002-") {
			t.Errorf("evicted profile %s still on disk", e.Name())
		}
	}
	if len(entries) == 0 {
		t.Error("no profile files on disk for retained captures")
	}
	for _, c := range caps {
		if c.HeapFile == "" {
			t.Errorf("capture %d has no heap profile: %+v", c.Seq, c)
		}
	}
}

func TestProfileRingHandler(t *testing.T) {
	p, _ := newTestRing(t, 4, time.Minute)
	defer p.Sync()
	p.Capture("slo_breach")
	p.Sync()

	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "slo_breach") {
		t.Errorf("list response %d: %s", rr.Code, rr.Body.String())
	}

	heap := p.Captures()[0].HeapFile
	rr = httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles?file="+heap, nil))
	if rr.Code != 200 || rr.Body.Len() == 0 {
		t.Errorf("file response %d, %d bytes", rr.Code, rr.Body.Len())
	}

	// Unknown (and path-traversal) names are rejected.
	for _, bad := range []string{"nope.pb.gz", "../../etc/passwd"} {
		rr = httptest.NewRecorder()
		p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles?file="+bad, nil))
		if rr.Code != 404 {
			t.Errorf("file=%q served with %d, want 404", bad, rr.Code)
		}
	}
}

func TestProfileRingSanitizesReason(t *testing.T) {
	p, _ := newTestRing(t, 2, time.Minute)
	defer p.Sync()
	p.Capture("failed: ../weird reason!")
	c := p.Captures()[0]
	if strings.ContainsAny(c.HeapFile, "/\\ !:") {
		t.Errorf("unsafe heap file name %q", c.HeapFile)
	}
}

func TestProfileRingNilSafe(t *testing.T) {
	var p *ProfileRing
	if p.Capture("x") {
		t.Error("nil ring captured")
	}
	p.Sync()
	if p.Captures() != nil || p.Dir() != "" {
		t.Error("nil ring not empty")
	}
	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rr.Code != 200 {
		t.Errorf("nil handler status %d", rr.Code)
	}
}

func TestNewProfileRingValidation(t *testing.T) {
	if _, err := NewProfileRing("", 1, 0, 0); err == nil {
		t.Error("empty dir accepted")
	}
	p, err := NewProfileRing(t.TempDir(), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.capacity != 8 || p.window != 5*time.Minute {
		t.Errorf("defaults not applied: %+v", p)
	}
}
