package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

func jt(id string, pinned bool) *JobTrace {
	return &JobTrace{JobID: id, Trace: id + "-trace", State: "done", Pinned: pinned}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Record(jt(fmt.Sprintf("j-%d", i), false))
	}
	jobs := f.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("retained %d, want 3", len(jobs))
	}
	// Newest first: j-4, j-3, j-2.
	for i, want := range []string{"j-4", "j-3", "j-2"} {
		if jobs[i].JobID != want {
			t.Errorf("jobs[%d] = %s, want %s", i, jobs[i].JobID, want)
		}
	}
	if f.Get("j-0") != nil {
		t.Error("evicted trace still retrievable")
	}
	if f.Get("j-4-trace") == nil {
		t.Error("lookup by trace ID failed")
	}
}

func TestFlightRecorderPinnedSurviveTraffic(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Record(&JobTrace{JobID: "bad", State: "failed", Pinned: true})
	// A flood of healthy completions must not evict the pinned failure.
	for i := 0; i < 20; i++ {
		f.Record(jt(fmt.Sprintf("ok-%d", i), false))
	}
	if f.Get("bad") == nil {
		t.Fatal("pinned trace evicted by ordinary completions")
	}
	// Pinned traces come first in the listing.
	if jobs := f.Jobs(); jobs[0].JobID != "bad" {
		t.Errorf("jobs[0] = %s, want pinned bad", jobs[0].JobID)
	}
	// But newer pinned traces do evict older pinned ones (bounded ring).
	f.Record(&JobTrace{JobID: "bad2", State: "failed", Pinned: true})
	f.Record(&JobTrace{JobID: "bad3", State: "failed", Pinned: true})
	if f.Get("bad") != nil {
		t.Error("pinned ring unbounded")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(jt("x", false))
	if f.Jobs() != nil {
		t.Error("nil recorder returned jobs")
	}
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/jobs", nil))
	if rr.Code != 200 {
		t.Errorf("nil recorder handler status %d", rr.Code)
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(&JobTrace{JobID: "j-1", Trace: "t1", State: "failed", Reason: "timeout", Pinned: true,
		Spans: []SpanRecord{{Event: "span", Trace: "t1", Span: "s1", Name: "job"}}})

	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/jobs", nil))
	var list []JobTrace
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].JobID != "j-1" || len(list[0].Spans) != 1 {
		t.Fatalf("unexpected listing: %+v", list)
	}

	rr = httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/jobs?id=j-1", nil))
	var one JobTrace
	if err := json.Unmarshal(rr.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if one.Reason != "timeout" {
		t.Errorf("reason = %q", one.Reason)
	}

	rr = httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/jobs?id=nope", nil))
	if rr.Code != 404 {
		t.Errorf("missing id status %d, want 404", rr.Code)
	}
}
