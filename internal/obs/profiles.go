package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// ProfileRing captures pprof heap + CPU profiles into a bounded on-disk
// ring when something anomalous happens (an SLO breach, a degradation,
// a fault), rate-limited so a storm of anomalies produces at most one
// capture per window. The ring keeps the last `capacity` captures:
// older profile files are deleted as newer ones arrive, so a long-lived
// server's anomaly evidence is bounded on disk the same way the flight
// recorder is bounded in memory.
//
// The nil *ProfileRing is a valid no-op (Capture returns false).

// ProfileCapture describes one capture in the ring.
type ProfileCapture struct {
	Seq    int       `json:"seq"`
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
	// HeapFile/CPUFile are file names inside the ring directory, served
	// by Handler via ?file=.
	HeapFile string `json:"heap_file,omitempty"`
	CPUFile  string `json:"cpu_file,omitempty"`
	// Err records a partial capture (e.g. CPU profiling already active —
	// only one CPU profile can run per process).
	Err string `json:"error,omitempty"`
}

// ProfileRing is created with NewProfileRing; the zero value captures
// nothing.
type ProfileRing struct {
	dir      string
	capacity int
	window   time.Duration
	cpuDur   time.Duration

	mu   sync.Mutex
	last time.Time
	seq  int
	caps []ProfileCapture

	now func() time.Time // injectable for tests
	wg  sync.WaitGroup   // outstanding async CPU captures
}

// NewProfileRing returns a ring writing into dir (created if missing).
// capacity < 1 defaults to 8 retained captures; window <= 0 defaults to
// 5 minutes between captures; cpuDur <= 0 defaults to a 250ms CPU
// profile window (the heap profile is instantaneous).
func NewProfileRing(dir string, capacity int, window, cpuDur time.Duration) (*ProfileRing, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: profile ring needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if capacity < 1 {
		capacity = 8
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	if cpuDur <= 0 {
		cpuDur = 250 * time.Millisecond
	}
	return &ProfileRing{
		dir:      dir,
		capacity: capacity,
		window:   window,
		cpuDur:   cpuDur,
		now:      time.Now,
	}, nil
}

// Capture takes one heap profile now and starts a short CPU profile in
// the background, unless a capture already happened within the rate
// window. It reports whether a capture was actually taken, so callers
// can count suppressed triggers. Safe for concurrent use; the disk I/O
// of the heap profile happens under the ring's lock (captures are rare
// by construction).
func (p *ProfileRing) Capture(reason string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if !p.last.IsZero() && now.Sub(p.last) < p.window {
		return false
	}
	p.last = now
	p.seq++
	c := ProfileCapture{Seq: p.seq, Reason: reason, At: now}
	base := fmt.Sprintf("%06d-%s", c.Seq, sanitizeReason(reason))

	heapPath := base + ".heap.pb.gz"
	if err := p.writeHeap(filepath.Join(p.dir, heapPath)); err != nil {
		c.Err = "heap: " + err.Error()
	} else {
		c.HeapFile = heapPath
	}

	p.caps = append(p.caps, c)
	p.rotateLocked()

	if p.cpuDur > 0 {
		seq := c.Seq
		cpuPath := base + ".cpu.pb.gz"
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			err := p.writeCPU(filepath.Join(p.dir, cpuPath))
			p.mu.Lock()
			attached := false
			for i := range p.caps {
				if p.caps[i].Seq != seq {
					continue
				}
				attached = true
				if err != nil {
					if p.caps[i].Err != "" {
						p.caps[i].Err += "; "
					}
					p.caps[i].Err += "cpu: " + err.Error()
				} else {
					p.caps[i].CPUFile = cpuPath
				}
			}
			p.mu.Unlock()
			if !attached && err == nil {
				// The capture was evicted while the CPU profile ran; its
				// file would otherwise be orphaned on disk.
				os.Remove(filepath.Join(p.dir, cpuPath)) //nolint:errcheck // best-effort rotation
			}
		}()
	}
	return true
}

// Sync waits for any in-flight background CPU capture (tests, drain).
func (p *ProfileRing) Sync() {
	if p != nil {
		p.wg.Wait()
	}
}

func (p *ProfileRing) writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeCPU runs a short CPU profile. Only one CPU profile can be active
// per process (StartCPUProfile errors otherwise — e.g. under `go test
// -cpuprofile` or a concurrent /debug/pprof/profile scrape); the error
// is reported on the capture and the file removed, never fatal.
func (p *ProfileRing) writeCPU(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()       //nolint:errcheck // removing anyway
		os.Remove(path) //nolint:errcheck // best-effort cleanup
		return err
	}
	time.Sleep(p.cpuDur)
	pprof.StopCPUProfile()
	return f.Close()
}

// rotateLocked evicts captures beyond capacity, oldest first, deleting
// their files. Caller holds p.mu.
func (p *ProfileRing) rotateLocked() {
	for len(p.caps) > p.capacity {
		old := p.caps[0]
		p.caps = p.caps[1:]
		for _, name := range []string{old.HeapFile, old.CPUFile} {
			if name != "" {
				os.Remove(filepath.Join(p.dir, name)) //nolint:errcheck // best-effort rotation
			}
		}
	}
}

// Captures returns the retained captures, newest first.
func (p *ProfileRing) Captures() []ProfileCapture {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfileCapture, len(p.caps))
	for i, c := range p.caps {
		out[len(out)-1-i] = c
	}
	return out
}

// Dir returns the ring's directory ("" for a nil ring).
func (p *ProfileRing) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}

// knownFile reports whether name belongs to a retained capture — the
// Handler's guard against serving arbitrary paths.
func (p *ProfileRing) knownFile(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.caps {
		if name != "" && (c.HeapFile == name || c.CPUFile == name) {
			return true
		}
	}
	return false
}

// Handler serves the ring:
//
//	GET /debug/profiles              — retained captures as JSON (newest first)
//	GET /debug/profiles?file=<name>  — one profile file (pprof binary format)
//
// It works on a nil ring (empty list).
func (p *ProfileRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if name := r.URL.Query().Get("file"); name != "" {
			if p == nil || !p.knownFile(name) {
				http.Error(w, "no such profile", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			http.ServeFile(w, r, filepath.Join(p.dir, name))
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		caps := p.Captures()
		if caps == nil {
			caps = []ProfileCapture{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(caps) //nolint:errcheck // best-effort HTTP write
	})
}

// sanitizeReason maps a capture reason onto a safe file-name fragment.
func sanitizeReason(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 32 {
			break
		}
	}
	if b.Len() == 0 {
		return "anomaly"
	}
	return b.String()
}
