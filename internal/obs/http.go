package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler that serves the registry's current
// Snapshot as indented JSON, or — with ?format=prometheus — in the
// Prometheus text exposition format, so the same endpoint feeds both
// humans and scrapers. It works on a nil registry (empty snapshot), so a
// server can be mounted before metrics exist.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WritePrometheus(w, r.Snapshot()) //nolint:errcheck // best-effort HTTP write
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot()) //nolint:errcheck // best-effort HTTP write
	})
}

// Mux returns a debug mux exposing the registry and the runtime:
//
//	/debug/metrics  — JSON snapshot of every registered metric
//	/debug/vars     — standard expvar (cmdline, memstats)
//	/debug/pprof/*  — net/http/pprof profiles
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds listen (e.g. ":6060", ":0" for an ephemeral port) and serves
// Mux(r) in a background goroutine. It returns the bound address and a
// shutdown func. Serving live metrics during a run is the point: the
// registry handles are atomics, so the HTTP reader never blocks the
// simulation.
func Serve(listen string, r *Registry) (addr string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Mux(r)}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	return ln.Addr().String(), srv.Close, nil
}
