package obs

import (
	"testing"
	"time"
)

// fakeClock drives a WindowedHistogram deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(w *WindowedHistogram, c *fakeClock) *WindowedHistogram {
	w.now = c.now
	w.epoch = c.now()
	return w
}

func TestWindowedHistogramMergesTwoEpochs(t *testing.T) {
	clk := newFakeClock()
	w := withClock(NewWindowedHistogram([]int64{10, 100}, time.Minute), clk)

	w.Observe(5)
	clk.advance(61 * time.Second) // into epoch 2: 5 rotates to prev
	w.Observe(50)

	snap := w.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("merged count = %d, want 2 (current + previous epoch)", snap.Count)
	}
	if snap.Counts[0] != 1 || snap.Counts[1] != 1 {
		t.Errorf("merged buckets = %v", snap.Counts)
	}
	if snap.Sum != 55 {
		t.Errorf("merged sum = %d, want 55", snap.Sum)
	}
}

func TestWindowedHistogramForgetsOldTraffic(t *testing.T) {
	clk := newFakeClock()
	w := withClock(NewWindowedHistogram([]int64{10, 100}, time.Minute), clk)

	for i := 0; i < 100; i++ {
		w.Observe(5) // a long healthy history
	}
	clk.advance(2 * time.Minute) // ≥ 2 windows: both epochs clear
	w.Observe(99)

	snap := w.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d, want 1 — old epoch leaked into the window", snap.Count)
	}
	// The regression is visible immediately: p99 sits in the second
	// bucket, not at the historical value.
	if q := snap.Quantile(0.99); q <= 10 {
		t.Errorf("p99 = %v still reflects evicted history", q)
	}
}

func TestWindowedHistogramQuietGapThenTraffic(t *testing.T) {
	clk := newFakeClock()
	w := withClock(NewWindowedHistogram([]int64{10}, time.Minute), clk)
	w.Observe(1)
	clk.advance(90 * time.Second) // 1.5 windows: shift, old epoch still visible
	if got := w.Snapshot().Count; got != 1 {
		t.Errorf("count after 1.5 windows = %d, want 1", got)
	}
	clk.advance(90 * time.Second) // another 1.5: the shifted epoch ages out
	if got := w.Snapshot().Count; got != 0 {
		t.Errorf("count after 3 windows = %d, want 0", got)
	}
}

func TestWindowedHistogramDefaultsAndNil(t *testing.T) {
	if w := NewWindowedHistogram([]int64{1}, 0); w.Window() != 5*time.Minute {
		t.Errorf("default window = %v", w.Window())
	}
	var w *WindowedHistogram
	w.Observe(1)
	if snap := w.Snapshot(); snap.Count != 0 {
		t.Error("nil snapshot non-empty")
	}
	if w.Window() != 0 {
		t.Error("nil Window() non-zero")
	}
}
