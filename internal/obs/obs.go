// Package obs is the simulator's unified observability layer: a
// lightweight metrics registry (atomic counters, gauges and fixed-bucket
// histograms, Go stdlib only), a JSONL trace writer for per-gate events,
// and HTTP export of live metric values plus pprof.
//
// The design goal is that instrumentation can stay compiled into every hot
// path at zero cost when disabled: all handle types (Counter, Gauge,
// FloatGauge, Histogram) are nil-safe, and a nil *Registry hands out nil
// handles, so "metrics off" costs exactly one pointer check per
// instrumentation site. Handles are obtained once, outside the hot loop;
// the loop itself performs a single uncontended atomic add per event.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is
// a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic int64 gauge. The nil Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n exceeds the current value, so the gauge
// tracks a high-water mark under concurrent writers.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic float64 gauge (stored as bits), used for values
// like the EWMA average or a parallelism efficiency. The nil FloatGauge is
// a valid no-op.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores f. No-op on a nil receiver.
func (g *FloatGauge) Set(f float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(f))
	}
}

// Value returns the current value (0 for a nil FloatGauge).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram over int64 observations (typically
// nanoseconds). An observation v lands in the first bucket whose upper
// bound is >= v; values above every bound land in the overflow bucket. The
// nil Histogram is a valid no-op.
type Histogram struct {
	bounds []int64        // sorted inclusive upper bounds
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations (0 for a nil Histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// DurationBuckets is the default set of histogram bounds for nanosecond
// latencies: 1µs up to ~1s in powers of four, 11 buckets plus overflow.
func DurationBuckets() []int64 {
	bounds := make([]int64, 0, 11)
	for b := int64(1000); b <= 1_048_576_000; b *= 4 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Registry hands out named metric handles and snapshots their values.
// The nil *Registry is valid and returns nil handles everywhere, which is
// how instrumented code runs unmetered. Handle creation takes a lock;
// handle use is lock-free.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	fltg   map[string]*FloatGauge
	hists  map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		fltg:   make(map[string]*FloatGauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the float gauge registered under name, creating it on
// first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fltg[name]
	if !ok {
		g = &FloatGauge{}
		r.fltg[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (bounds must be sorted ascending;
// they are copied). Later calls with the same name reuse the existing
// histogram and ignore bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram. Counts has one
// entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every metric in a registry. It is
// fully detached: mutating the registry afterwards does not change a
// snapshot.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters"`
	Gauges      map[string]int64             `json:"gauges"`
	FloatGauges map[string]float64           `json:"float_gauges"`
	Histograms  map[string]HistogramSnapshot `json:"histograms"`
}

// Delta returns the change from prev to s: counters and histogram
// counts/sums are subtracted entry-wise, while gauges and float gauges
// keep their current (instantaneous) value. Metrics absent from prev are
// reported at full value. It lets a long-lived registry — one shared
// across many benchmark runs in the same process — yield per-run metrics
// that aren't polluted by earlier runs. Note that high-water-mark gauges
// written with SetMax (e.g. dd.nodes.peak) never reset, so across runs
// they reflect the process-wide peak, not the per-run one.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:    make(map[string]int64, len(s.Counters)),
		Gauges:      make(map[string]int64, len(s.Gauges)),
		FloatGauges: make(map[string]float64, len(s.FloatGauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range s.FloatGauges {
		out.FloatGauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Counts) != len(h.Counts) {
			out.Histograms[name] = h
			continue
		}
		d := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: make([]int64, len(h.Counts)),
			Count:  h.Count - p.Count,
			Sum:    h.Sum - p.Sum,
		}
		for i := range h.Counts {
			d.Counts[i] = h.Counts[i] - p.Counts[i]
		}
		out.Histograms[name] = d
	}
	return out
}

// Snapshot copies the current value of every registered metric. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:    map[string]int64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, g := range r.fltg {
		s.FloatGauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: h.bounds,
			Counts: make([]int64, len(h.counts)),
			Count:  h.n.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}
