package obs

// Quantile estimation over the fixed-bucket histograms. The estimator is
// the standard bucket-interpolation one (what Prometheus calls
// histogram_quantile): find the bucket the target rank falls in, then
// interpolate linearly between the bucket's lower and upper bound. The
// error is bounded by the bucket width — with the power-of-four
// DurationBuckets, a p99 is exact to within its bucket, which is the
// right fidelity for an SLO gate (the verdict "p99 crossed 1ms" never
// flips from interpolation error inside one bucket).

// Quantile estimates the q-quantile (0 < q <= 1) of the observations in
// the snapshot, in the histogram's native unit. It returns 0 when the
// histogram is empty. Ranks landing in the overflow bucket return the
// highest finite bound (a conservative floor: the true value is >= it).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c <= 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: no upper bound to interpolate against.
			if len(h.Bounds) == 0 {
				return 0
			}
			return float64(h.Bounds[len(h.Bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(h.Bounds[i-1])
		}
		hi := float64(h.Bounds[i])
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// Quantiles estimates several quantiles in one call (one pass per
// quantile; the snapshot is already detached so this is cheap).
func (h HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// Snapshot freezes one live histogram (the per-registry Snapshot does
// this for every metric; this is the single-histogram form for callers
// that need quantiles of one series without copying the whole registry).
// A nil histogram yields an empty snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	hs := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.n.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}
