package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Per-job resource attribution. A ResourceLedger records what one
// simulation actually consumed, per engine phase (dd, convert, fuse,
// dmav): wall time, worker CPU time, allocation deltas, GC cycles, and
// the high-water footprint of the DD node pool and the flat arrays. The
// serve layer feeds the ledger back into admission control — jobs
// reserve their static worst case and release down to the ledger's
// live projection as phases complete — and the snapshot rides on the
// job result, the flight recorder and /debug/ledger.
//
// The nil *ResourceLedger is a valid no-op, like every other obs handle.

// AllocSample is a point-in-time reading of the process-wide allocation
// counters, taken through runtime/metrics (no stop-the-world, unlike
// runtime.ReadMemStats). Two samples subtract into the bytes/objects
// allocated and GC cycles completed between them.
type AllocSample struct {
	// Bytes is the cumulative total of heap bytes allocated.
	Bytes uint64
	// Objects is the cumulative total of heap objects allocated.
	Objects uint64
	// GCCycles is the number of completed GC cycles.
	GCCycles uint64
}

var allocMetricNames = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
}

// ReadAllocSample reads the current allocation counters. The cost is a
// handful of atomic loads inside the runtime — cheap enough for phase
// boundaries and benchmark repetitions, where ReadMemStats' world stop
// would perturb the very thing being measured.
func ReadAllocSample() AllocSample {
	s := make([]metrics.Sample, len(allocMetricNames))
	for i, n := range allocMetricNames {
		s[i].Name = n
	}
	metrics.Read(s)
	out := AllocSample{}
	if s[0].Value.Kind() == metrics.KindUint64 {
		out.Bytes = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		out.Objects = s[1].Value.Uint64()
	}
	if s[2].Value.Kind() == metrics.KindUint64 {
		out.GCCycles = s[2].Value.Uint64()
	}
	return out
}

// Sub returns the component-wise delta s − prev (clamped at zero, so a
// stale sample never yields an underflowed unsigned delta).
func (s AllocSample) Sub(prev AllocSample) AllocSample {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return AllocSample{
		Bytes:    sub(s.Bytes, prev.Bytes),
		Objects:  sub(s.Objects, prev.Objects),
		GCCycles: sub(s.GCCycles, prev.GCCycles),
	}
}

// PhaseCost is the resource bill of one engine phase.
type PhaseCost struct {
	Phase  string `json:"phase"`
	WallNs int64  `json:"wall_ns"`
	// CPUNs is attributed worker CPU time: scheduler-pool busy time for
	// the pooled phases (convert, dmav), wall time for the sequential
	// ones (dd, fuse) where the run goroutine is the only worker. Pool
	// batches attribute through sched.RunTracked.
	CPUNs int64 `json:"cpu_ns"`
	// AllocBytes/Mallocs/GCCycles are process-wide runtime/metrics
	// deltas sampled at the phase boundaries. With concurrent jobs on
	// one process they over-attribute shared background allocation; the
	// serve layer documents them as an upper bound.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	GCCycles   uint64 `json:"gc_cycles"`
	// PeakDDNodes/PeakDDBytes are the phase's live DD high-water.
	PeakDDNodes int64  `json:"peak_dd_nodes,omitempty"`
	PeakDDBytes uint64 `json:"peak_dd_bytes,omitempty"`
	// PeakFlatBytes is the phase's flat-array high-water (state, scratch
	// and the DMAV partial-output buffers).
	PeakFlatBytes uint64 `json:"peak_flat_bytes,omitempty"`
}

// LedgerSnapshot is the frozen state of a ResourceLedger: per-phase
// costs plus run-wide totals and high-water marks.
type LedgerSnapshot struct {
	Phases     []PhaseCost `json:"phases"`
	WallNs     int64       `json:"wall_ns"`
	CPUNs      int64       `json:"cpu_ns"`
	AllocBytes uint64      `json:"alloc_bytes"`
	Mallocs    uint64      `json:"mallocs"`
	GCCycles   uint64      `json:"gc_cycles"`
	// PeakDDNodes is the run's live-DD node high-water as observed by
	// the ledger (phase-boundary and per-gate observations; the engine's
	// Stats.PeakDDNodes from the node manager is authoritative).
	PeakDDNodes int64 `json:"peak_dd_nodes"`
	// PeakBytes is the high-water of the combined footprint estimate
	// (DD bytes + flat bytes) over the run — the observed counterpart of
	// the admission layer's static worst case.
	PeakBytes uint64 `json:"peak_bytes"`
	// CurrentBytes is the latest combined footprint estimate.
	CurrentBytes uint64 `json:"current_bytes"`
	// ProjectedBytes is the engine's ceiling on the footprint for the
	// remainder of the run (set once conversion and fusion are done and
	// the flat working set is known exactly); 0 until then. Admission in
	// ledger mode releases reservations down to
	// max(CurrentBytes, ProjectedBytes).
	ProjectedBytes uint64 `json:"projected_bytes,omitempty"`
}

// ResourceLedger accumulates one run's resource bill. Methods are safe
// for concurrent use (the engine writes from the run goroutine, the
// scheduler from batch completions, HTTP handlers snapshot); updates are
// phase- and batch-grained, never per-amplitude, so the mutex is cold.
type ResourceLedger struct {
	mu     sync.Mutex
	phases []PhaseCost
	open   bool // phases[len-1] is still accumulating
	start  time.Time
	alloc0 AllocSample

	ddNodes   int64  // current live DD nodes (last observation)
	ddBytes   uint64 // current live DD bytes
	flatBytes uint64 // current flat-array bytes (sum of AddFlat deltas)

	peakDDNodes int64
	peakBytes   uint64
	projected   uint64

	onUpdate func(LedgerSnapshot)
}

// NewResourceLedger returns an empty ledger.
func NewResourceLedger() *ResourceLedger { return &ResourceLedger{} }

// OnUpdate installs a hook called with a fresh snapshot whenever a phase
// ends or the projection changes — the serve layer's release trigger.
// The hook runs outside the ledger's lock (it may snapshot again).
func (l *ResourceLedger) OnUpdate(f func(LedgerSnapshot)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.onUpdate = f
	l.mu.Unlock()
}

// Begin opens a new phase. An unclosed previous phase is ended first, so
// a straight-line Begin("dd") … Begin("convert") … sequence needs no
// explicit End calls between phases.
func (l *ResourceLedger) Begin(phase string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.endLocked()
	l.phases = append(l.phases, PhaseCost{
		Phase:       phase,
		PeakDDNodes: l.ddNodes,
		PeakDDBytes: l.ddBytes,
	})
	if f := l.flatBytes; f > 0 {
		l.phases[len(l.phases)-1].PeakFlatBytes = f
	}
	l.open = true
	l.start = time.Now()
	l.alloc0 = ReadAllocSample()
	l.mu.Unlock()
}

// End closes the open phase (no-op when none is open) and returns its
// final cost. The OnUpdate hook fires after a real close.
func (l *ResourceLedger) End() (PhaseCost, bool) {
	if l == nil {
		return PhaseCost{}, false
	}
	l.mu.Lock()
	closed := l.endLocked()
	var pc PhaseCost
	if closed {
		pc = l.phases[len(l.phases)-1]
	}
	hook, snap := l.hookLocked(closed)
	l.mu.Unlock()
	if hook != nil {
		hook(snap)
	}
	return pc, closed
}

// endLocked folds the boundary samples into the open phase. Caller
// holds l.mu; reports whether a phase was actually closed.
func (l *ResourceLedger) endLocked() bool {
	if !l.open {
		return false
	}
	l.open = false
	p := &l.phases[len(l.phases)-1]
	p.WallNs += time.Since(l.start).Nanoseconds()
	d := ReadAllocSample().Sub(l.alloc0)
	p.AllocBytes += d.Bytes
	p.Mallocs += d.Objects
	p.GCCycles += d.GCCycles
	return true
}

// AddCPU attributes worker CPU time to the open phase (dropped when no
// phase is open — a late batch completion after the run finished).
func (l *ResourceLedger) AddCPU(ns int64) {
	if l == nil || ns <= 0 {
		return
	}
	l.mu.Lock()
	if l.open {
		l.phases[len(l.phases)-1].CPUNs += ns
	}
	l.mu.Unlock()
}

// ObserveDD records the current live DD footprint (node count and byte
// estimate), raising the phase and run high-water marks.
func (l *ResourceLedger) ObserveDD(nodes int64, bytes uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ddNodes, l.ddBytes = nodes, bytes
	if nodes > l.peakDDNodes {
		l.peakDDNodes = nodes
	}
	if l.open {
		p := &l.phases[len(l.phases)-1]
		if nodes > p.PeakDDNodes {
			p.PeakDDNodes = nodes
		}
		if bytes > p.PeakDDBytes {
			p.PeakDDBytes = bytes
		}
	}
	l.bumpPeakLocked()
	l.mu.Unlock()
}

// AddFlat adjusts the current flat-array footprint by delta bytes
// (positive on allocation, negative when an array is dropped). Callers
// report deltas, not totals, so the engine's arrays and the DMAV
// engine's partial buffers compose without knowing about each other.
func (l *ResourceLedger) AddFlat(delta int64) {
	if l == nil || delta == 0 {
		return
	}
	l.mu.Lock()
	if delta < 0 && uint64(-delta) > l.flatBytes {
		l.flatBytes = 0
	} else {
		l.flatBytes = uint64(int64(l.flatBytes) + delta)
	}
	if l.open {
		p := &l.phases[len(l.phases)-1]
		if l.flatBytes > p.PeakFlatBytes {
			p.PeakFlatBytes = l.flatBytes
		}
	}
	l.bumpPeakLocked()
	l.mu.Unlock()
}

// SetProjection publishes the engine's remaining-footprint ceiling and
// fires the OnUpdate hook — the signal the admission layer releases
// reservations on.
func (l *ResourceLedger) SetProjection(bytes uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.projected = bytes
	hook, snap := l.hookLocked(true)
	l.mu.Unlock()
	if hook != nil {
		hook(snap)
	}
}

// bumpPeakLocked raises the combined high-water. Caller holds l.mu.
func (l *ResourceLedger) bumpPeakLocked() {
	if cur := l.ddBytes + l.flatBytes; cur > l.peakBytes {
		l.peakBytes = cur
	}
}

// hookLocked prepares the OnUpdate delivery (hook plus snapshot) when
// fire is true and a hook is installed. Caller holds l.mu and must call
// the returned hook after unlocking.
func (l *ResourceLedger) hookLocked(fire bool) (func(LedgerSnapshot), LedgerSnapshot) {
	if !fire || l.onUpdate == nil {
		return nil, LedgerSnapshot{}
	}
	return l.onUpdate, l.snapshotLocked()
}

// Snapshot freezes the ledger. An open phase is reported with its
// boundary samples taken now (the phase keeps accumulating). A nil
// ledger yields a zero snapshot.
func (l *ResourceLedger) Snapshot() LedgerSnapshot {
	if l == nil {
		return LedgerSnapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

func (l *ResourceLedger) snapshotLocked() LedgerSnapshot {
	s := LedgerSnapshot{
		Phases:         make([]PhaseCost, len(l.phases)),
		PeakDDNodes:    l.peakDDNodes,
		PeakBytes:      l.peakBytes,
		CurrentBytes:   l.ddBytes + l.flatBytes,
		ProjectedBytes: l.projected,
	}
	copy(s.Phases, l.phases)
	if l.open && len(s.Phases) > 0 {
		p := &s.Phases[len(s.Phases)-1]
		p.WallNs += time.Since(l.start).Nanoseconds()
		d := ReadAllocSample().Sub(l.alloc0)
		p.AllocBytes += d.Bytes
		p.Mallocs += d.Objects
		p.GCCycles += d.GCCycles
	}
	for _, p := range s.Phases {
		s.WallNs += p.WallNs
		s.CPUNs += p.CPUNs
		s.AllocBytes += p.AllocBytes
		s.Mallocs += p.Mallocs
		s.GCCycles += p.GCCycles
	}
	return s
}
