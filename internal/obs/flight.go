package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// FlightRecorder is a bounded in-memory ring of recently finished job
// span trees: when a job goes wrong in production, the recorder answers
// "what did its last moments look like" without any external tracing
// backend. It keeps two rings of equal capacity — one for ordinary
// completions and one for *pinned* traces (failed, degraded or retried
// jobs) — so a burst of healthy traffic can never evict the interesting
// failures. Both rings are bounded; within the pinned ring, older pinned
// jobs are evicted by newer pinned jobs only.
//
// The nil *FlightRecorder is a valid no-op.

// JobTrace is one finished job's recorded trace: identity, outcome, and
// the flattened span tree (parent links reconstruct the hierarchy).
type JobTrace struct {
	JobID      string       `json:"job_id"`
	Trace      string       `json:"trace"`
	State      string       `json:"state"`
	Reason     string       `json:"reason,omitempty"`
	Pinned     bool         `json:"pinned"`
	FinishedAt time.Time    `json:"finished_at"`
	Spans      []SpanRecord `json:"spans"`
	// DroppedSpans counts spans lost to the per-trace collection cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// Ledger is the job's resource-ledger snapshot at finish time, when
	// the recording layer attributes resources per job.
	Ledger *LedgerSnapshot `json:"ledger,omitempty"`
}

// FlightRecorder holds the last N job traces per class. Use
// NewFlightRecorder; the zero value has no capacity.
type FlightRecorder struct {
	mu     sync.Mutex
	recent ring
	pinned ring
}

// ring is a fixed-capacity insertion-ordered buffer.
type ring struct {
	buf  []*JobTrace
	next int
	n    int
}

func (r *ring) add(jt *JobTrace) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = jt
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// newestFirst appends the ring's entries, newest first, to out.
func (r *ring) newestFirst(out []*JobTrace) []*JobTrace {
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// NewFlightRecorder returns a recorder keeping the last size ordinary
// and the last size pinned job traces (size < 1 defaults to 64).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 64
	}
	return &FlightRecorder{
		recent: ring{buf: make([]*JobTrace, size)},
		pinned: ring{buf: make([]*JobTrace, size)},
	}
}

// Record files one finished job trace. Pinned traces (jt.Pinned) go to
// the pinned ring, everything else to the recent ring. No-op on a nil
// recorder or a nil trace.
func (f *FlightRecorder) Record(jt *JobTrace) {
	if f == nil || jt == nil {
		return
	}
	f.mu.Lock()
	if jt.Pinned {
		f.pinned.add(jt)
	} else {
		f.recent.add(jt)
	}
	f.mu.Unlock()
}

// Jobs returns every retained trace, pinned first, newest first within
// each class. The returned slice is fresh; the *JobTrace values are
// shared and must be treated as immutable.
func (f *FlightRecorder) Jobs() []*JobTrace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*JobTrace, 0, f.pinned.n+f.recent.n)
	out = f.pinned.newestFirst(out)
	out = f.recent.newestFirst(out)
	return out
}

// Get returns the retained trace of one job (or of one trace ID), if it
// is still in a ring.
func (f *FlightRecorder) Get(id string) *JobTrace {
	for _, jt := range f.Jobs() {
		if jt.JobID == id || jt.Trace == id {
			return jt
		}
	}
	return nil
}

// Handler serves the recorder as JSON:
//
//	GET /debug/jobs          — every retained trace (pinned first)
//	GET /debug/jobs?id=<id>  — one trace, by job ID or trace ID
//
// It works on a nil recorder (empty list).
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("id"); id != "" {
			jt := f.Get(id)
			if jt == nil {
				w.WriteHeader(http.StatusNotFound)
				enc.Encode(map[string]string{"error": "no retained trace for " + id}) //nolint:errcheck
				return
			}
			enc.Encode(jt) //nolint:errcheck // best-effort HTTP write
			return
		}
		jobs := f.Jobs()
		if jobs == nil {
			jobs = []*JobTrace{}
		}
		enc.Encode(jobs) //nolint:errcheck // best-effort HTTP write
	})
}
