package obs

import (
	"math"
	"testing"
)

func TestQuantileUniformBucket(t *testing.T) {
	// One bucket [0,100] with 100 observations: the q-quantile of the
	// interpolated estimate is q*100.
	r := New()
	h := r.Histogram("q", []int64{100, 200})
	for i := 0; i < 100; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("q", []int64{10, 100, 1000})
	// 90 observations in (0,10], 9 in (10,100], 1 in (100,1000].
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(500)
	s := h.Snapshot()
	// p50: rank 50 of 100 → bucket 0 → 10 * 50/90 ≈ 5.56.
	if got := s.Quantile(0.50); math.Abs(got-10*50.0/90) > 1e-9 {
		t.Errorf("p50 = %g", got)
	}
	// p95: rank 95 → bucket 1: lo=10 hi=100, (95-90)/9 through it.
	want95 := 10 + 90*(5.0/9)
	if got := s.Quantile(0.95); math.Abs(got-want95) > 1e-9 {
		t.Errorf("p95 = %g, want %g", got, want95)
	}
	// p99.5: rank 99.5 → last finite bucket.
	if got := s.Quantile(0.995); got <= 100 || got > 1000 {
		t.Errorf("p99.5 = %g, want in (100,1000]", got)
	}
}

func TestQuantileOverflowAndEmpty(t *testing.T) {
	r := New()
	h := r.Histogram("q", []int64{10})
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", got)
	}
	h.Observe(1_000_000) // overflow bucket
	if got := h.Snapshot().Quantile(0.99); got != 10 {
		t.Errorf("overflow Quantile = %g, want conservative floor 10", got)
	}
	var nilH *Histogram
	if s := nilH.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Error("nil histogram snapshot not empty")
	}
}

func TestQuantilesBatch(t *testing.T) {
	r := New()
	h := r.Histogram("q", []int64{100})
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	qs := h.Snapshot().Quantiles(0.5, 0.95, 0.99)
	if len(qs) != 3 {
		t.Fatalf("got %d quantiles", len(qs))
	}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Errorf("quantiles not monotone: %v", qs)
		}
	}
}
