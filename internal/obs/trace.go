package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// TraceWriter serializes structured events as JSON Lines: one JSON object
// per line, flushed on Close. It is safe for concurrent use; lines from
// different goroutines never interleave. The nil TraceWriter is a valid
// no-op, mirroring the nil-handle convention of the metrics registry.
type TraceWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewTraceWriter wraps w in a buffered JSONL writer. The caller retains
// ownership of w (closing a file passed here is the caller's job; call
// Flush first).
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Emit writes one event as a single JSON line. The first serialization or
// write error sticks and suppresses further output; Flush reports it.
func (t *TraceWriter) Emit(event any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b, err := json.Marshal(event)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
		return
	}
	t.err = t.bw.WriteByte('\n')
}

// Flush drains the buffer and returns the first error seen by the writer.
func (t *TraceWriter) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
