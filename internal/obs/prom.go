package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a Snapshot, so the
// registry can be scraped by any Prometheus-compatible collector without
// a client-library dependency. Metric names are sanitized to the
// Prometheus charset: every character outside [a-zA-Z0-9_] becomes '_'
// (dd.unique.v.hits → dd_unique_v_hits). Histograms render the standard
// cumulative _bucket{le=...} series plus _sum and _count.

// promName sanitizes a registry metric name for Prometheus.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Output is deterministic (names sorted within each family
// class), so it is golden-testable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.FloatGauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.FloatGauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
