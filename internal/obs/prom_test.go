package obs

import (
	"bytes"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("serve.jobs.submitted").Add(7)
	r.Gauge("serve.queue.depth").Set(3)
	r.FloatGauge("convert.efficiency").Set(0.5)
	h := r.Histogram("serve.job.latency_ns", []int64{1000, 4000})
	h.Observe(500)
	h.Observe(2000)
	h.Observe(99999) // overflow

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_jobs_submitted counter\nserve_jobs_submitted 7\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n",
		"# TYPE convert_efficiency gauge\nconvert_efficiency 0.5\n",
		"# TYPE serve_job_latency_ns histogram\n",
		`serve_job_latency_ns_bucket{le="1000"} 1`,
		`serve_job_latency_ns_bucket{le="4000"} 2`,
		`serve_job_latency_ns_bucket{le="+Inf"} 3`,
		"serve_job_latency_ns_sum 102499\nserve_job_latency_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestPrometheusTextFormatStrict scans the full exposition line by line
// and enforces the 0.0.4 text-format invariants a real Prometheus
// scraper depends on, instead of spot-checking substrings: every sample
// name is valid and preceded by its TYPE line, no name is emitted
// twice, and every histogram has non-decreasing cumulative le buckets,
// a terminal +Inf bucket, and _sum/_count with count equal to +Inf.
func TestPrometheusTextFormatStrict(t *testing.T) {
	validName := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]*)"\})? (-?[0-9.e+]+|NaN)$`)

	for _, tc := range []struct {
		name  string
		fill  func(r *Registry)
		hists []string // histogram base names expected in the output
	}{
		{
			name: "counters and gauges only",
			fill: func(r *Registry) {
				r.Counter("dd.unique.v.hits").Add(12)
				r.Gauge("sched.workers").Set(4)
				r.FloatGauge("convert.efficiency").Set(0.875)
			},
		},
		{
			name: "histogram with all buckets hit",
			fill: func(r *Registry) {
				h := r.Histogram("lat", []int64{10, 100, 1000})
				for _, v := range []int64{5, 50, 500, 5000} {
					h.Observe(v)
				}
			},
			hists: []string{"lat"},
		},
		{
			name: "empty and sparse histograms",
			fill: func(r *Registry) {
				r.Histogram("empty", []int64{1, 2})
				r.Histogram("sparse", []int64{10, 20, 30}).Observe(25)
			},
			hists: []string{"empty", "sparse"},
		},
		{
			name: "mixed registry",
			fill: func(r *Registry) {
				r.Counter("serve.jobs.submitted").Add(3)
				h := r.Histogram("serve.job.run_ns", DurationBuckets())
				h.Observe(1_000_000)
				h.Observe(2_500_000_000)
			},
			hists: []string{"serve_job_run_ns"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := New()
			tc.fill(r)
			var buf bytes.Buffer
			if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
				t.Fatal(err)
			}

			typed := map[string]string{} // metric name → declared type
			seen := map[string]bool{}    // full sample identity → emitted
			type histState struct {
				buckets []float64 // bucket values in emission order
				infSeen bool
				inf     float64
				sum     bool
				count   float64
				hasCnt  bool
			}
			hists := map[string]*histState{}

			for ln, line := range strings.Split(buf.String(), "\n") {
				if line == "" {
					continue
				}
				if strings.HasPrefix(line, "# TYPE ") {
					parts := strings.Fields(line)
					if len(parts) != 4 {
						t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
					}
					name, typ := parts[2], parts[3]
					if !validName.MatchString(name) {
						t.Fatalf("line %d: invalid metric name %q", ln+1, name)
					}
					if _, dup := typed[name]; dup {
						t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
					}
					typed[name] = typ
					if typ == "histogram" {
						hists[name] = &histState{}
					}
					continue
				}
				if strings.HasPrefix(line, "#") {
					continue // comments are legal anywhere
				}
				m := sampleRe.FindStringSubmatch(line)
				if m == nil {
					t.Fatalf("line %d: unparsable sample line %q", ln+1, line)
				}
				name, le := m[1], m[3]
				if seen[line] {
					t.Fatalf("line %d: duplicate sample %q", ln+1, line)
				}
				seen[line] = true
				v, err := strconv.ParseFloat(m[4], 64)
				if err != nil {
					t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
				}
				base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
					"_bucket"), "_sum"), "_count")
				if hs, ok := hists[base]; ok {
					switch {
					case strings.HasSuffix(name, "_bucket"):
						if hs.infSeen {
							t.Fatalf("line %d: bucket after +Inf for %q", ln+1, base)
						}
						if le == "+Inf" {
							hs.infSeen, hs.inf = true, v
						} else {
							if _, err := strconv.ParseFloat(le, 64); err != nil {
								t.Fatalf("line %d: non-numeric le %q", ln+1, le)
							}
							hs.buckets = append(hs.buckets, v)
						}
					case strings.HasSuffix(name, "_sum"):
						hs.sum = true
					case strings.HasSuffix(name, "_count"):
						hs.hasCnt, hs.count = true, v
					}
					continue
				}
				// Non-histogram sample: its TYPE line must precede it.
				if _, ok := typed[name]; !ok {
					t.Fatalf("line %d: sample %q before its TYPE line", ln+1, name)
				}
				if le != "" {
					t.Fatalf("line %d: le label on non-histogram %q", ln+1, name)
				}
				_ = v
			}

			for _, want := range tc.hists {
				hs, ok := hists[promName(want)]
				if !ok {
					hs, ok = hists[want]
				}
				if !ok {
					t.Fatalf("histogram %q missing from exposition:\n%s", want, buf.String())
				}
				if !hs.infSeen {
					t.Errorf("histogram %q has no +Inf bucket", want)
				}
				if !hs.sum || !hs.hasCnt {
					t.Errorf("histogram %q missing _sum/_count", want)
				}
				if hs.hasCnt && hs.inf != hs.count {
					t.Errorf("histogram %q: +Inf bucket %v != count %v", want, hs.inf, hs.count)
				}
				last := -1.0
				for i, b := range hs.buckets {
					if b < last {
						t.Errorf("histogram %q: bucket %d value %v < previous %v (not cumulative)",
							want, i, b, last)
					}
					last = b
				}
				if hs.infSeen && hs.inf < last {
					t.Errorf("histogram %q: +Inf %v below last finite bucket %v", want, hs.inf, last)
				}
			}
		})
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"dd.unique.v.hits":     "dd_unique_v_hits",
		"sched.worker.0.tasks": "sched_worker_0_tasks",
		"0weird":               "_0weird",
		"ok_name":              "ok_name",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsHandlerPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("core.gates.dd").Add(42)

	// Default stays JSON.
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default content type %q", ct)
	}

	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/metrics?format=prometheus", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "core_gates_dd 42") {
		t.Errorf("prometheus body missing counter:\n%s", rr.Body.String())
	}
}
