package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("serve.jobs.submitted").Add(7)
	r.Gauge("serve.queue.depth").Set(3)
	r.FloatGauge("convert.efficiency").Set(0.5)
	h := r.Histogram("serve.job.latency_ns", []int64{1000, 4000})
	h.Observe(500)
	h.Observe(2000)
	h.Observe(99999) // overflow

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_jobs_submitted counter\nserve_jobs_submitted 7\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n",
		"# TYPE convert_efficiency gauge\nconvert_efficiency 0.5\n",
		"# TYPE serve_job_latency_ns histogram\n",
		`serve_job_latency_ns_bucket{le="1000"} 1`,
		`serve_job_latency_ns_bucket{le="4000"} 2`,
		`serve_job_latency_ns_bucket{le="+Inf"} 3`,
		"serve_job_latency_ns_sum 102499\nserve_job_latency_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"dd.unique.v.hits":     "dd_unique_v_hits",
		"sched.worker.0.tasks": "sched_worker_0_tasks",
		"0weird":               "_0weird",
		"ok_name":              "ok_name",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsHandlerPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("core.gates.dd").Add(42)

	// Default stays JSON.
	rr := httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default content type %q", ct)
	}

	rr = httptest.NewRecorder()
	r.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/metrics?format=prometheus", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "core_gates_dd 42") {
		t.Errorf("prometheus body missing counter:\n%s", rr.Body.String())
	}
}
