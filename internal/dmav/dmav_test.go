package dmav

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
	"flatdd/internal/statevec"
)

const eps = 1e-9

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < eps }

func randAmps(rng *rand.Rand, n int) []complex128 {
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	return amps
}

func randomGate(rng *rand.Rand, n int) circuit.Gate {
	switch rng.Intn(7) {
	case 0:
		return circuit.H(rng.Intn(n))
	case 1:
		return circuit.T(rng.Intn(n))
	case 2:
		return circuit.U3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.Intn(n))
	case 3:
		a, b := twoDistinct(rng, n)
		return circuit.CX(a, b)
	case 4:
		a, b := twoDistinct(rng, n)
		return circuit.CP(rng.NormFloat64(), a, b)
	case 5:
		a, b := twoDistinct(rng, n)
		return circuit.FSim(rng.NormFloat64(), rng.NormFloat64(), a, b)
	default:
		a, b := twoDistinct(rng, n)
		c := rng.Intn(n)
		for c == a || c == b {
			c = rng.Intn(n)
		}
		if n >= 3 {
			return circuit.CCX(a, c, b)
		}
		return circuit.CX(a, b)
	}
}

func twoDistinct(rng *rand.Rand, n int) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n)
	for b == a {
		b = rng.Intn(n)
	}
	return a, b
}

func TestApplyMatchesOracleAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for _, mode := range []Mode{Auto, NeverCache, AlwaysCache} {
		for _, threads := range []int{1, 2, 3, 4, 5, 7, 8} {
			for trial := 0; trial < 6; trial++ {
				n := 3 + rng.Intn(4)
				m := dd.New(n)
				g := randomGate(rng, n)
				M := ddsim.BuildGateDD(m, n, &g)

				V := randAmps(rng, n)
				// Oracle: statevec application of the same gate.
				sv := statevec.FromAmplitudes(append([]complex128(nil), V...), 1)
				sv.Apply(&g)
				want := sv.Amplitudes()

				e := New(m, n, threads, mode)
				W := make([]complex128, len(V))
				e.Apply(M, V, W)
				for i := range want {
					if !approx(W[i], want[i]) {
						t.Fatalf("mode=%v threads=%d n=%d gate=%s: W[%d]=%v want %v",
							mode, threads, n, g.Name, i, W[i], want[i])
					}
				}
			}
		}
	}
}

// TestApplyPooledMatchesOracle covers the pool-batched execution paths:
// states below serialCutoffDim run inline, so this test uses n=12 (4096
// amplitudes) to force real sched batches through both algorithms.
func TestApplyPooledMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 12
	m := dd.New(n)
	V := randAmps(rng, n)
	for _, mode := range []Mode{NeverCache, AlwaysCache} {
		for _, threads := range []int{3, 8} {
			e := New(m, n, threads, mode)
			if e.inline() {
				t.Fatalf("threads=%d n=%d: engine chose inline execution; cutoff test is vacuous", threads, n)
			}
			for trial := 0; trial < 3; trial++ {
				g := randomGate(rng, n)
				M := ddsim.BuildGateDD(m, n, &g)
				sv := statevec.FromAmplitudes(append([]complex128(nil), V...), 1)
				sv.Apply(&g)
				want := sv.Amplitudes()
				W := make([]complex128, len(V))
				e.Apply(M, V, W)
				for i := range want {
					if !approx(W[i], want[i]) {
						t.Fatalf("mode=%v threads=%d gate=%s: W[%d]=%v want %v",
							mode, threads, g.Name, i, W[i], want[i])
					}
				}
			}
			e.Close()
		}
	}
}

func TestCachedAndUncachedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 6
	m := dd.New(n)
	V := randAmps(rng, n)
	for trial := 0; trial < 10; trial++ {
		g := randomGate(rng, n)
		M := ddsim.BuildGateDD(m, n, &g)
		w1 := make([]complex128, len(V))
		w2 := make([]complex128, len(V))
		New(m, n, 4, NeverCache).Apply(M, V, w1)
		New(m, n, 4, AlwaysCache).Apply(M, V, w2)
		for i := range w1 {
			if !approx(w1[i], w2[i]) {
				t.Fatalf("trial %d gate %s: cached %v vs uncached %v at %d",
					trial, g.Name, w2[i], w1[i], i)
			}
		}
	}
}

// TestThreadsArbitraryCount is the ISSUE 3 regression test: thread
// counts are no longer rounded down to a power of two. Threads() keeps
// the requested count (clamped to [1, 2^n]); only the cached-path chunk
// count (CacheChunks) rounds up to a power of two, because the
// border-level column split must stay aligned with the DD.
func TestThreadsArbitraryCount(t *testing.T) {
	m := dd.New(5)
	cases := map[int]int{1: 1, 2: 2, 3: 3, 4: 4, 5: 5, 7: 7, 8: 8, 16: 16, 100: 32}
	for in, want := range cases {
		if got := New(m, 5, in, Auto).Threads(); got != want {
			t.Errorf("threads %d -> %d, want %d", in, got, want)
		}
	}
	chunkCases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 7: 8, 8: 8, 16: 16, 100: 32}
	for in, want := range chunkCases {
		if got := New(m, 5, in, Auto).CacheChunks(); got != want {
			t.Errorf("threads %d -> %d cache chunks, want %d", in, got, want)
		}
	}
	// Clamped to [1, 2^n].
	if got := New(m, 2, 16, Auto).Threads(); got != 4 {
		t.Errorf("threads capped: got %d, want 4", got)
	}
	if got := New(m, 5, -3, Auto).Threads(); got != 1 {
		t.Errorf("threads floored: got %d, want 1", got)
	}
}

// TestThreadsThreeCorrect exercises the previously-illegal odd thread
// count end to end against the statevec oracle, in every caching mode.
func TestThreadsThreeCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 6
	m := dd.New(n)
	V := randAmps(rng, n)
	for _, mode := range []Mode{Auto, NeverCache, AlwaysCache} {
		for trial := 0; trial < 5; trial++ {
			g := randomGate(rng, n)
			M := ddsim.BuildGateDD(m, n, &g)
			W := make([]complex128, len(V))
			e := New(m, n, 3, mode)
			e.Apply(M, V, W)
			e.Close()
			sv := statevec.FromAmplitudes(append([]complex128(nil), V...), 1)
			sv.Apply(&g)
			for i, a := range sv.Amplitudes() {
				if !approx(W[i], a) {
					t.Fatalf("mode %v trial %d gate %s: W[%d] = %v, oracle %v",
						mode, trial, g.Name, i, W[i], a)
				}
			}
		}
	}
}

func TestCostModelIdentity(t *testing.T) {
	n := 8
	m := dd.New(n)
	e := New(m, n, 4, Auto)
	id := m.Identity(n)
	c := e.EvaluateCost(id)
	if c.K1 != 1<<uint(n) {
		t.Fatalf("K1 = %d, want %d", c.K1, 1<<uint(n))
	}
	if c.C1 != float64(c.K1)/4 {
		t.Fatalf("C1 = %v", c.C1)
	}
	// Identity is block-diagonal with identical diagonal blocks: each
	// thread sees one unique node; 3 of its 4 column tasks... actually the
	// identity has exactly one border task per thread (off-diagonal blocks
	// are zero), so there are no cache hits.
	if c.Hits != 0 {
		t.Fatalf("identity should have no repeated tasks, H=%d", c.Hits)
	}
	// Diagonal blocks have disjoint outputs: one shared buffer suffices.
	if c.Buffers != 1 {
		t.Fatalf("identity buffers = %d, want 1", c.Buffers)
	}
}

func TestCostModelHadamardTopHasHits(t *testing.T) {
	// H on the top qubit: all four top blocks are (+/-) the same
	// half-identity, so column-space assignment gives every thread two
	// tasks on the same node -> one hit per thread at t>=2.
	n := 6
	m := dd.New(n)
	e := New(m, n, 4, Auto)
	M := m.SingleGate(n, dd.Matrix2{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}, n-1)
	c := e.EvaluateCost(M)
	if c.Hits == 0 {
		t.Fatal("expected cache hits for top-qubit Hadamard")
	}
	if c.K2 >= c.K1 {
		t.Fatalf("K2=%d not smaller than K1=%d despite hits", c.K2, c.K1)
	}
}

func TestAutoModeMatchesDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 6
	m := dd.New(n)
	e := New(m, n, 4, Auto)
	V := randAmps(rng, n)
	W := make([]complex128, len(V))
	g := circuit.H(n - 1)
	M := ddsim.BuildGateDD(m, n, &g)
	cost, err := e.Apply(M, V, W)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	st := e.Stats()
	if cost.UseCache() && st.CachedGates != 1 {
		t.Fatalf("cost prefers cache but engine did not cache: %+v", st)
	}
	if !cost.UseCache() && st.CachedGates != 0 {
		t.Fatalf("cost rejects cache but engine cached: %+v", st)
	}
	if st.Gates != 1 {
		t.Fatalf("gates = %d", st.Gates)
	}
}

func TestCacheHitsReduceExecutedMACs(t *testing.T) {
	// With AlwaysCache on a top-qubit Hadamard the engine must record
	// hits, and the result must still be correct (covered elsewhere).
	rng := rand.New(rand.NewSource(13))
	n := 7
	m := dd.New(n)
	e := New(m, n, 8, AlwaysCache)
	g := circuit.H(n - 1)
	M := ddsim.BuildGateDD(m, n, &g)
	V := randAmps(rng, n)
	W := make([]complex128, len(V))
	e.Apply(M, V, W)
	if e.Stats().CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestZeroMatrixYieldsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4
	m := dd.New(n)
	e := New(m, n, 2, Auto)
	V := randAmps(rng, n)
	W := make([]complex128, len(V))
	W[3] = 42 // must be cleared
	e.Apply(m.MZeroEdge(), V, W)
	for i := range W {
		if W[i] != 0 {
			t.Fatalf("W[%d] = %v, want 0", i, W[i])
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	// DMAV(M, aV1 + bV2) == a DMAV(M,V1) + b DMAV(M,V2)
	rng := rand.New(rand.NewSource(21))
	n := 5
	m := dd.New(n)
	for trial := 0; trial < 5; trial++ {
		g := randomGate(rng, n)
		M := ddsim.BuildGateDD(m, n, &g)
		e := New(m, n, 4, Auto)
		v1 := randAmps(rng, n)
		v2 := randAmps(rng, n)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		b := complex(rng.NormFloat64(), rng.NormFloat64())
		mix := make([]complex128, len(v1))
		for i := range mix {
			mix[i] = a*v1[i] + b*v2[i]
		}
		w1 := make([]complex128, len(v1))
		w2 := make([]complex128, len(v1))
		wm := make([]complex128, len(v1))
		e.Apply(M, v1, w1)
		e.Apply(M, v2, w2)
		e.Apply(M, mix, wm)
		for i := range wm {
			if !approx(wm[i], a*w1[i]+b*w2[i]) {
				t.Fatalf("linearity violated at %d: %v vs %v", i, wm[i], a*w1[i]+b*w2[i])
			}
		}
	}
}

func TestSequenceOfGatesMatchesStatevec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 7
	m := dd.New(n)
	e := New(m, n, 4, Auto)
	V := make([]complex128, 1<<uint(n))
	V[0] = 1
	W := make([]complex128, len(V))
	sv := statevec.New(n, 1)
	for step := 0; step < 30; step++ {
		g := randomGate(rng, n)
		M := ddsim.BuildGateDD(m, n, &g)
		e.Apply(M, V, W)
		V, W = W, V
		sv.Apply(&g)
	}
	for i := range V {
		if !approx(V[i], sv.Amplitudes()[i]) {
			t.Fatalf("diverged at amplitude %d: %v vs %v", i, V[i], sv.Amplitudes()[i])
		}
	}
}

func TestApplyRejectsAliasOrBadLength(t *testing.T) {
	m := dd.New(3)
	e := New(m, 3, 2, Auto)
	V := make([]complex128, 8)
	if _, err := e.Apply(m.Identity(3), V, V); err == nil {
		t.Fatal("aliased V/W not rejected")
	}
	if _, err := e.Apply(m.Identity(3), V, make([]complex128, 4)); err == nil {
		t.Fatal("short W not rejected")
	}
	if _, err := e.Apply(m.Identity(3), make([]complex128, 4), make([]complex128, 8)); err == nil {
		t.Fatal("short V not rejected")
	}
	// A rejected Apply must not have counted a gate.
	if st := e.Stats(); st.Gates != 0 {
		t.Fatalf("rejected Apply counted %d gates", st.Gates)
	}
}

func TestScalarMulInto(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 16} {
		src := make([]complex128, n)
		dst := make([]complex128, n)
		for i := range src {
			src[i] = complex(float64(i), float64(-i))
		}
		scalarMulInto(dst, src, 2i)
		for i := range dst {
			if dst[i] != src[i]*2i {
				t.Fatalf("n=%d dst[%d]=%v", n, i, dst[i])
			}
		}
	}
}

func TestAddInto(t *testing.T) {
	for _, n := range []int{0, 1, 5, 8, 13} {
		dst := make([]complex128, n)
		src := make([]complex128, n)
		for i := range src {
			dst[i] = complex(1, 1)
			src[i] = complex(float64(i), 0)
		}
		addInto(dst, src)
		for i := range dst {
			if dst[i] != complex(1+float64(i), 1) {
				t.Fatalf("n=%d dst[%d]=%v", n, i, dst[i])
			}
		}
	}
}

func BenchmarkDMAVUncachedSupremacyGate(b *testing.B) {
	benchDMAV(b, NeverCache)
}

func BenchmarkDMAVCachedSupremacyGate(b *testing.B) {
	benchDMAV(b, AlwaysCache)
}

func benchDMAV(b *testing.B, mode Mode) {
	rng := rand.New(rand.NewSource(1))
	n := 14
	m := dd.New(n)
	g := circuit.FSim(0.5, 0.2, 2, 11)
	M := ddsim.BuildGateDD(m, n, &g)
	V := randAmps(rng, n)
	W := make([]complex128, len(V))
	e := New(m, n, 4, mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Apply(M, V, W)
	}
}

func TestBufferSharingOffStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 6
	m := dd.New(n)
	V := randAmps(rng, n)
	for trial := 0; trial < 6; trial++ {
		g := randomGate(rng, n)
		M := ddsim.BuildGateDD(m, n, &g)
		on := New(m, n, 4, AlwaysCache)
		off := New(m, n, 4, AlwaysCache)
		off.SetBufferSharing(false)
		w1 := make([]complex128, len(V))
		w2 := make([]complex128, len(V))
		on.Apply(M, V, w1)
		off.Apply(M, V, w2)
		for i := range w1 {
			if !approx(w1[i], w2[i]) {
				t.Fatalf("gate %s: buffer-sharing off diverges at %d", g.Name, i)
			}
		}
	}
}

func TestBufferSharingReducesBuffers(t *testing.T) {
	// The identity's diagonal blocks have disjoint outputs: with sharing
	// one buffer suffices, without it every thread allocates one.
	n := 6
	m := dd.New(n)
	e := New(m, n, 4, AlwaysCache)
	c := e.EvaluateCost(m.Identity(n))
	if c.Buffers != 1 {
		t.Fatalf("shared buffers = %d, want 1", c.Buffers)
	}
	e.SetBufferSharing(false)
	c = e.EvaluateCost(m.Identity(n))
	if c.Buffers != 4 {
		t.Fatalf("unshared buffers = %d, want 4", c.Buffers)
	}
}

func TestSIMDWidthChangesCostModel(t *testing.T) {
	// Equation 6: larger d makes caching cheaper; the decision can flip.
	n := 8
	m := dd.New(n)
	g := circuit.H(n - 1)
	M := ddsim.BuildGateDD(m, n, &g)
	e := New(m, n, 4, Auto)
	e.SetSIMDWidth(1)
	c1 := e.EvaluateCost(M)
	e.SetSIMDWidth(64)
	c64 := e.EvaluateCost(M)
	if c64.C2 >= c1.C2 {
		t.Fatalf("larger SIMD width did not lower C2: %v vs %v", c64.C2, c1.C2)
	}
	if c1.C1 != c64.C1 {
		t.Fatal("C1 must not depend on the SIMD width")
	}
	e.SetSIMDWidth(0) // clamps to 1
	if got := e.EvaluateCost(M).C2; got != c1.C2 {
		t.Fatalf("width clamp broken: %v vs %v", got, c1.C2)
	}
}
