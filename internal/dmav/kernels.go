package dmav

// Vector kernels standing in for the paper's AVX2 SIMD routines. The loops
// are 4-way unrolled over contiguous []complex128 so the compiler emits
// straight-line FMA-friendly code; the unroll factor matches
// DefaultSIMDWidth, the d parameter of the Equation 6 cost model.

// scalarMulInto sets dst[i] = src[i] * w. dst and src must have equal
// length and may not overlap partially (identical or disjoint only).
func scalarMulInto(dst, src []complex128, w complex128) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = src[i] * w
		dst[i+1] = src[i+1] * w
		dst[i+2] = src[i+2] * w
		dst[i+3] = src[i+3] * w
	}
	for ; i < n; i++ {
		dst[i] = src[i] * w
	}
}

// addInto accumulates dst[i] += src[i].
func addInto(dst, src []complex128) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// zero clears a vector.
func zero(v []complex128) {
	clear(v)
}
