// Package dmav implements DMAV, the paper's core contribution:
// multiplication of a DD-represented gate matrix with a flat-array state
// vector, parallelized over worker goroutines.
//
// Two execution modes exist, selected per gate by the MAC-operation cost
// model of Section 3.2.3:
//
//   - without caching (Algorithm 1): Assign splits the top log2(t) DD
//     levels across t threads in row space; Run is the recursive kernel that
//     performs one multiply-accumulate per nonzero matrix entry, with
//     constant-time indexing along the DD structure;
//   - with caching (Algorithm 2): AssignCache splits in column space,
//     threads with non-overlapping partial outputs share zero-initialized
//     buffers, each thread caches the result sub-vector of every border
//     node it computes, and a repeated node is reused through one scalar
//     multiplication instead of a full recursive multiply.
package dmav

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"flatdd/internal/dd"
	"flatdd/internal/obs"
)

// DefaultSIMDWidth is the default d of Equation 6 — the number of data
// elements a SIMD lane processes at once (AVX2 in the paper; the unrolled
// Go kernels in kernels.go play that role here).
const DefaultSIMDWidth = 4

// Mode selects the caching policy of an Engine.
type Mode int

const (
	// Auto picks caching per gate with the cost model (the paper's FlatDD).
	Auto Mode = iota
	// NeverCache always runs Algorithm 1.
	NeverCache
	// AlwaysCache always runs Algorithm 2.
	AlwaysCache
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case NeverCache:
		return "never"
	case AlwaysCache:
		return "always"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// task is one border-level multiplication task: an h x h sub-matrix (its DD
// edge), the start index of the paired sub-vector, and the weight product
// accumulated above the edge (exclusive of the edge's own weight).
type task struct {
	edge dd.MEdge
	idx  uint64 // start index in V (Algorithm 1) or the partial output (Algorithm 2)
	f    complex128
}

// GateCost is the cost-model evaluation of one gate matrix (Section 3.2.3).
type GateCost struct {
	K1      int64   // MACs without caching
	K2      int64   // MACs unrelated to caching (unique border subtrees)
	Hits    int64   // H: cache hits across all threads
	Buffers int     // b: shared partial-output buffers
	C1      float64 // Equation 5
	C2      float64 // Equation 6
}

// UseCache reports whether the model prefers Algorithm 2 (C1 > C2).
func (c GateCost) UseCache() bool { return c.C1 > c.C2 }

// Cost returns min(C1, C2), the modeled cost of the DMAV.
func (c GateCost) Cost() float64 {
	if c.C2 < c.C1 {
		return c.C2
	}
	return c.C1
}

// Stats accumulates per-engine counters.
type Stats struct {
	Gates       int
	CachedGates int
	CacheHits   int64
	MACsModeled float64 // sum of min(C1,C2) over applied gates
	MACsC1      float64 // sum of C1 (Equation 5) — the no-caching cost
}

// Engine executes DMAV products over a fixed register size. It reuses its
// buffers across gates; an Engine is not safe for concurrent use (the
// parallelism is internal).
type Engine struct {
	m    *dd.Manager
	n    int
	dim  uint64
	mode Mode

	threads int // power of two, <= 2^n
	logT    uint
	h       uint64 // 2^n / threads
	simd    int

	tasks   [][]task // per-thread task lists, reused
	buffers [][]complex128
	bufOf   []int // thread -> buffer index
	caches  []map[*dd.MNode]cacheEntry

	// noBufferShare disables the shared-partial-output optimization of
	// Algorithm 2 (every thread gets a private buffer); used by the
	// ablation experiments.
	noBufferShare bool

	stats Stats

	// met is nil when metrics are off: Apply and the worker loops gate all
	// instrumentation behind this one pointer check.
	met *engMetrics
}

// engMetrics holds the engine's registry handles (see DESIGN.md,
// "Observability", for the metric names).
type engMetrics struct {
	gates         *obs.Counter
	cachedGates   *obs.Counter
	uncachedGates *obs.Counter // cost model (or mode) bypassed the cache
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	macsModeled   *obs.Counter
	applyNs       *obs.Histogram
	workerTasks   []*obs.Counter
	workerMACs    []*obs.Counter

	// Per-worker MAC accounting caches. A gate's task partition and MAC
	// counts are a pure function of its (immutable) DD and the engine
	// shape, so the accounting is computed once per distinct gate root and
	// replayed as counter adds on repeats. The maps keep the gate nodes
	// alive, which is bounded by the distinct gates of the run.
	macMemo map[*dd.MNode]int64
	macSeen map[*dd.MNode]bool
	acct    map[acctKey]*gateAccount
}

// acctKey identifies one accounting result: the gate DD root plus the
// execution mode (cached and uncached runs partition tasks differently).
type acctKey struct {
	n      *dd.MNode
	cached bool
}

// gateAccount is the memoized per-worker load of one gate in one mode.
type gateAccount struct {
	tasks, macs []int64
	misses      int64
}

type cacheEntry struct {
	f     complex128 // full weight product of the cached result (incl. edge weight)
	start uint64     // start index of the cached sub-vector in the thread's buffer
}

// New returns a DMAV engine for n qubits. The thread count is rounded down
// to the largest power of two not exceeding max(1, threads) and capped at
// 2^n, as Assign splits threads in halves level by level.
func New(m *dd.Manager, n, threads int, mode Mode) *Engine {
	if n < 1 || n > 34 {
		panic(fmt.Sprintf("dmav: unsupported qubit count %d", n))
	}
	if threads < 1 {
		threads = 1
	}
	t := 1
	for t*2 <= threads && t*2 <= 1<<uint(n) {
		t *= 2
	}
	e := &Engine{
		m:       m,
		n:       n,
		dim:     uint64(1) << uint(n),
		mode:    mode,
		threads: t,
		logT:    uint(bits.TrailingZeros(uint(t))),
		simd:    DefaultSIMDWidth,
	}
	e.h = e.dim >> e.logT
	e.tasks = make([][]task, t)
	e.bufOf = make([]int, t)
	e.caches = make([]map[*dd.MNode]cacheEntry, t)
	for i := range e.caches {
		e.caches[i] = make(map[*dd.MNode]cacheEntry)
	}
	return e
}

// Threads returns the effective (power-of-two) worker count.
func (e *Engine) Threads() int { return e.threads }

// Mode returns the caching policy.
func (e *Engine) Mode() Mode { return e.mode }

// SetBufferSharing enables or disables the shared partial-output buffers
// of Algorithm 2 (enabled by default; disabling is for ablation studies).
func (e *Engine) SetBufferSharing(on bool) { e.noBufferShare = !on }

// SetSIMDWidth overrides the d parameter of Equation 6.
func (e *Engine) SetSIMDWidth(d int) {
	if d < 1 {
		d = 1
	}
	e.simd = d
}

// Stats returns the accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetMetrics attaches the engine to a registry (nil detaches). Per-worker
// load shows up as dmav.worker.<u>.tasks (border tasks executed) and
// dmav.worker.<u>.macs (multiply-accumulates performed: the exact path
// count of each executed sub-tree, plus one scalar multiply per cached
// element on reuse). It must be called before Apply.
func (e *Engine) SetMetrics(r *obs.Registry) {
	if r == nil {
		e.met = nil
		return
	}
	m := &engMetrics{
		gates:         r.Counter("dmav.gates"),
		cachedGates:   r.Counter("dmav.gates.cached"),
		uncachedGates: r.Counter("dmav.gates.uncached"),
		cacheHits:     r.Counter("dmav.cache.hits"),
		cacheMisses:   r.Counter("dmav.cache.misses"),
		macsModeled:   r.Counter("dmav.macs.modeled"),
		applyNs:       r.Histogram("dmav.apply_ns", obs.DurationBuckets()),
		workerTasks:   make([]*obs.Counter, e.threads),
		workerMACs:    make([]*obs.Counter, e.threads),
		macMemo:       make(map[*dd.MNode]int64),
		macSeen:       make(map[*dd.MNode]bool),
		acct:          make(map[acctKey]*gateAccount),
	}
	for u := 0; u < e.threads; u++ {
		m.workerTasks[u] = r.Counter(fmt.Sprintf("dmav.worker.%d.tasks", u))
		m.workerMACs[u] = r.Counter(fmt.Sprintf("dmav.worker.%d.macs", u))
	}
	e.met = m
}

// borderLevel is n - log2(t) - 1 (Section 3.2.1): Assign stops there and
// Run starts there.
func (e *Engine) borderLevel() int { return e.n - int(e.logT) - 1 }

// Apply computes W = M·V, choosing the execution mode per the engine
// policy. V and W must have length 2^n and must not alias. It returns the
// cost-model evaluation used for the decision.
func (e *Engine) Apply(M dd.MEdge, V, W []complex128) GateCost {
	if uint64(len(V)) != e.dim || uint64(len(W)) != e.dim {
		panic(fmt.Sprintf("dmav: vector length %d/%d, want %d", len(V), len(W), e.dim))
	}
	if &V[0] == &W[0] {
		panic("dmav: V and W must not alias")
	}
	zero(W)
	if M.IsZero() {
		return GateCost{}
	}
	var start time.Time
	if e.met != nil {
		start = time.Now()
	}
	cost := e.EvaluateCost(M)
	useCache := cost.UseCache()
	switch e.mode {
	case NeverCache:
		useCache = false
	case AlwaysCache:
		useCache = true
	}
	var hits int64
	if useCache {
		hits = e.applyCached(M, V, W)
		e.stats.CachedGates++
		e.stats.CacheHits += hits
	} else {
		e.applyUncached(M, V, W)
	}
	e.stats.Gates++
	e.stats.MACsModeled += cost.Cost()
	e.stats.MACsC1 += cost.C1
	if met := e.met; met != nil {
		met.applyNs.Observe(time.Since(start).Nanoseconds())
		met.gates.Inc()
		met.macsModeled.Add(int64(cost.Cost()))
		if useCache {
			met.cachedGates.Inc()
			met.cacheHits.Add(hits)
		} else {
			met.uncachedGates.Inc()
		}
		e.accountWorkers(met, M, useCache)
	}
	return cost
}

// accountWorkers attributes the exact per-worker load of the Apply that
// just ran: tasks executed and multiply-accumulates performed (the path
// count of each executed sub-tree; with caching, repeated nodes cost one
// scalar multiply per cached element instead). It runs sequentially after
// the workers have joined so the kernel goroutines stay
// instrumentation-free. The result is a pure function of the gate DD and
// the engine shape, so it is computed once per distinct gate root (walking
// the e.tasks lists the assignment just built) and replayed from the
// memo on repeats; steady state is one map lookup plus counter adds.
func (e *Engine) accountWorkers(met *engMetrics, M dd.MEdge, useCache bool) {
	key := acctKey{M.N, useCache}
	a, ok := met.acct[key]
	if !ok {
		a = &gateAccount{
			tasks: make([]int64, e.threads),
			macs:  make([]int64, e.threads),
		}
		memo := met.macMemo
		for u := range e.tasks {
			a.tasks[u] = int64(len(e.tasks[u]))
			var macs int64
			if !useCache {
				for _, tk := range e.tasks[u] {
					macs += dd.MACCountNode(tk.edge.N, memo)
				}
			} else {
				seen := met.macSeen
				clear(seen)
				for _, tk := range e.tasks[u] {
					if seen[tk.edge.N] {
						macs += int64(e.h)
						continue
					}
					seen[tk.edge.N] = true
					a.misses++
					macs += dd.MACCountNode(tk.edge.N, memo)
				}
			}
			a.macs[u] = macs
		}
		met.acct[key] = a
	}
	for u := 0; u < e.threads; u++ {
		met.workerTasks[u].Add(a.tasks[u])
		met.workerMACs[u].Add(a.macs[u])
	}
	if useCache {
		met.cacheMisses.Add(a.misses)
	}
}

// EvaluateCost runs the Section 3.2.3 cost model on a gate matrix without
// executing the multiplication.
func (e *Engine) EvaluateCost(M dd.MEdge) GateCost {
	var c GateCost
	if M.IsZero() {
		return c
	}
	c.K1 = dd.MACCount(M)
	c.C1 = float64(c.K1) / float64(e.threads)

	// Dry-run the caching assignment to obtain K2, H and b.
	e.assignCache(M)
	memo := make(map[*dd.MNode]int64)
	seen := make(map[*dd.MNode]bool)
	nBuf := 0
	for u := range e.tasks {
		clear(seen)
		for _, tk := range e.tasks[u] {
			if seen[tk.edge.N] {
				c.Hits++
				continue
			}
			seen[tk.edge.N] = true
			c.K2 += dd.MACCountNode(tk.edge.N, memo)
		}
		if e.bufOf[u]+1 > nBuf {
			nBuf = e.bufOf[u] + 1
		}
	}
	c.Buffers = nBuf
	t := float64(e.threads)
	d := float64(e.simd)
	c.C2 = float64(c.K2)/t + float64(e.dim)/(d*t)*(float64(c.Hits)/t+float64(c.Buffers))
	return c
}

// applyUncached is Algorithm 1: DMAV without caching.
func (e *Engine) applyUncached(M dd.MEdge, V, W []complex128) {
	e.assign(M)
	var wg sync.WaitGroup
	for u := 0; u < e.threads; u++ {
		if len(e.tasks[u]) == 0 {
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			iw := uint64(u) * e.h
			for _, tk := range e.tasks[u] {
				run(tk.edge, V, W, tk.idx, iw, tk.f)
			}
		}(u)
	}
	wg.Wait()
}

// assign populates e.tasks with the row-space border tasks of Algorithm 1's
// Assign: thread bits come from row indices, V offsets from column indices.
func (e *Engine) assign(M dd.MEdge) {
	for u := range e.tasks {
		e.tasks[u] = e.tasks[u][:0]
	}
	border := e.borderLevel()
	var rec func(edge dd.MEdge, f complex128, u int, iv uint64, l int)
	rec = func(edge dd.MEdge, f complex128, u int, iv uint64, l int) {
		if edge.IsZero() {
			return
		}
		if l == border {
			e.tasks[u] = append(e.tasks[u], task{edge, iv, f})
			return
		}
		// Splitting factor t / 2^(n-l): at the top level each row bit
		// selects one half of the threads, one quarter a level below, ...
		step := e.threads >> uint(e.n-l)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				rec(edge.N.Child(i, j), f*edge.W, u+i*step, iv+uint64(j)<<uint(l), l-1)
			}
		}
	}
	rec(M, 1, 0, 0, e.n-1)
}

// run is the recursive kernel of Algorithm 1. The weight product f excludes
// the current edge's weight; a terminal edge performs the MAC
// W[iw] += f·w·V[iv]. Indexing descends the DD with one shift-or per level
// — the constant-average-cost access pattern DMAV's speed over generic
// array simulators comes from.
func run(edge dd.MEdge, V, W []complex128, iv, iw uint64, f complex128) {
	n := edge.N
	if n.Level == dd.TerminalLevel {
		W[iw] += f * edge.W * V[iv]
		return
	}
	l := uint(n.Level)
	fw := f * edge.W
	if c := n.E[0]; !c.IsZero() {
		run(c, V, W, iv, iw, fw)
	}
	if c := n.E[1]; !c.IsZero() {
		run(c, V, W, iv+1<<l, iw, fw)
	}
	if c := n.E[2]; !c.IsZero() {
		run(c, V, W, iv, iw+1<<l, fw)
	}
	if c := n.E[3]; !c.IsZero() {
		run(c, V, W, iv+1<<l, iw+1<<l, fw)
	}
}

// applyCached is Algorithm 2: DMAV with caching. It returns the number of
// cache hits.
func (e *Engine) applyCached(M dd.MEdge, V, W []complex128) int64 {
	e.assignCache(M)
	nBuf := 0
	for _, b := range e.bufOf {
		if b+1 > nBuf {
			nBuf = b + 1
		}
	}
	// (Re)allocate and zero the shared partial-output buffers.
	for len(e.buffers) < nBuf {
		e.buffers = append(e.buffers, make([]complex128, e.dim))
	}
	for b := 0; b < nBuf; b++ {
		zero(e.buffers[b])
	}

	var hits int64
	var hitMu sync.Mutex
	var wg sync.WaitGroup
	for u := 0; u < e.threads; u++ {
		if len(e.tasks[u]) == 0 {
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			buf := e.buffers[e.bufOf[u]]
			cache := e.caches[u]
			clear(cache)
			iv := uint64(u) * e.h // the thread's column block in V
			var local int64
			for _, tk := range e.tasks[u] {
				fFull := tk.f * tk.edge.W
				if r, ok := cache[tk.edge.N]; ok {
					// Reuse: the repeated node's result is the cached
					// sub-vector scaled by the ratio of full weights.
					scalarMulInto(buf[tk.idx:tk.idx+e.h], buf[r.start:r.start+e.h], fFull/r.f)
					local++
					continue
				}
				run(tk.edge, V, buf, iv, tk.idx, tk.f)
				cache[tk.edge.N] = cacheEntry{f: fFull, start: tk.idx}
			}
			if local > 0 {
				hitMu.Lock()
				hits += local
				hitMu.Unlock()
			}
		}(u)
	}
	wg.Wait()

	// Sum the partial buffers into W, parallel over row chunks.
	var wg2 sync.WaitGroup
	for u := 0; u < e.threads; u++ {
		wg2.Add(1)
		go func(u int) {
			defer wg2.Done()
			lo := uint64(u) * e.h
			hi := lo + e.h
			for b := 0; b < nBuf; b++ {
				addInto(W[lo:hi], e.buffers[b][lo:hi])
			}
		}(u)
	}
	wg2.Wait()
	return hits
}

// assignCache populates e.tasks with column-space border tasks
// (AssignCache of Algorithm 2) and assigns each thread a partial-output
// buffer, sharing buffers between threads whose output row segments do not
// overlap.
func (e *Engine) assignCache(M dd.MEdge) {
	for u := range e.tasks {
		e.tasks[u] = e.tasks[u][:0]
	}
	border := e.borderLevel()
	var rec func(edge dd.MEdge, f complex128, u int, ip uint64, l int)
	rec = func(edge dd.MEdge, f complex128, u int, ip uint64, l int) {
		if edge.IsZero() {
			return
		}
		if l == border {
			e.tasks[u] = append(e.tasks[u], task{edge, ip, f})
			return
		}
		step := e.threads >> uint(e.n-l)
		// Column-major: the column bit j selects the thread, the row bit i
		// the partial-output segment.
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				rec(edge.N.Child(i, j), f*edge.W, u+j*step, ip+uint64(i)<<uint(l), l-1)
			}
		}
	}
	rec(M, 1, 0, 0, e.n-1)

	if e.noBufferShare {
		for u := range e.bufOf {
			e.bufOf[u] = u
		}
		return
	}

	// Greedy buffer sharing: quantum gate matrices are sparse, so the
	// partial outputs of different threads frequently occupy disjoint row
	// segments and can live in one buffer.
	type segset map[uint64]struct{}
	var occupied []segset
	for u := 0; u < e.threads; u++ {
		mine := make(segset, len(e.tasks[u]))
		for _, tk := range e.tasks[u] {
			mine[tk.idx] = struct{}{}
		}
		placed := -1
		for b, occ := range occupied {
			conflict := false
			for s := range mine {
				if _, ok := occ[s]; ok {
					conflict = true
					break
				}
			}
			if !conflict {
				placed = b
				break
			}
		}
		if placed < 0 {
			occupied = append(occupied, make(segset))
			placed = len(occupied) - 1
		}
		for s := range mine {
			occupied[placed][s] = struct{}{}
		}
		e.bufOf[u] = placed
	}
}
