// Package dmav implements DMAV, the paper's core contribution:
// multiplication of a DD-represented gate matrix with a flat-array state
// vector, parallelized over a persistent work-stealing pool
// (internal/sched).
//
// Two execution modes exist, selected per gate by the MAC-operation cost
// model of Section 3.2.3:
//
//   - without caching (Algorithm 1): the amplitude range is split in row
//     space into ~8×threads chunks sized by the MAC-count cost model, so
//     a heavy sub-block splits finer than a sparse one; run is the
//     recursive kernel that performs one multiply-accumulate per nonzero
//     matrix entry, with constant-time indexing along the DD structure;
//   - with caching (Algorithm 2): AssignCache splits in column space
//     into a power-of-two chunk count (the border-level split must stay
//     aligned with the DD), chunks with non-overlapping partial outputs
//     share zero-initialized buffers, each chunk caches the result
//     sub-vector of every border node it computes, and a repeated node
//     is reused through one scalar multiplication instead of a full
//     recursive multiply. The final partial-buffer sum runs as row-range
//     tasks on the same pool.
//
// Any positive thread count is supported; chunks are distributed over
// the pool and re-balanced by stealing, so worker count and chunk
// shape no longer need to match.
package dmav

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"flatdd/internal/dd"
	"flatdd/internal/faults"
	"flatdd/internal/obs"
	"flatdd/internal/sched"
)

// DefaultSIMDWidth is the default d of Equation 6 — the number of data
// elements a SIMD lane processes at once (AVX2 in the paper; the unrolled
// Go kernels in kernels.go play that role here).
const DefaultSIMDWidth = 4

// chunksPerThread is the target over-decomposition factor: the uncached
// path aims for about this many row chunks per worker so the
// work-stealing pool has slack to re-balance a skewed MAC distribution.
const chunksPerThread = 8

// serialCutoffDim is the state size below which Apply always executes
// inline on the calling goroutine: a pool batch costs a few microseconds
// of wake/join per gate, which a sub-4096-amplitude multiplication
// cannot amortize.
const serialCutoffDim = 1 << 12

// Mode selects the caching policy of an Engine.
type Mode int

const (
	// Auto picks caching per gate with the cost model (the paper's FlatDD).
	Auto Mode = iota
	// NeverCache always runs Algorithm 1.
	NeverCache
	// AlwaysCache always runs Algorithm 2.
	AlwaysCache
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case NeverCache:
		return "never"
	case AlwaysCache:
		return "always"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// task is one border-level multiplication task: a sub-matrix (its DD
// edge), the start index of the paired sub-vector, and the weight product
// accumulated above the edge (exclusive of the edge's own weight).
type task struct {
	edge dd.MEdge
	idx  uint64 // start index in V (Algorithm 1) or the partial output (Algorithm 2)
	f    complex128
}

// rowChunk is one schedulable unit of the uncached path: the tasks whose
// outputs land in the row range starting at ir. Chunks partition row
// space, so they write disjoint slices of W and need no synchronization.
type rowChunk struct {
	ir    uint64
	items []task
}

// GateCost is the cost-model evaluation of one gate matrix (Section 3.2.3).
type GateCost struct {
	K1      int64   // MACs without caching
	K2      int64   // MACs unrelated to caching (unique border subtrees)
	Hits    int64   // H: cache hits across all chunks
	Buffers int     // b: shared partial-output buffers
	C1      float64 // Equation 5
	C2      float64 // Equation 6
}

// UseCache reports whether the model prefers Algorithm 2 (C1 > C2).
func (c GateCost) UseCache() bool { return c.C1 > c.C2 }

// Cost returns min(C1, C2), the modeled cost of the DMAV.
func (c GateCost) Cost() float64 {
	if c.C2 < c.C1 {
		return c.C2
	}
	return c.C1
}

// Stats accumulates per-engine counters.
type Stats struct {
	Gates       int
	CachedGates int
	CacheHits   int64
	MACsModeled float64 // sum of min(C1,C2) over applied gates
	MACsC1      float64 // sum of C1 (Equation 5) — the no-caching cost
}

// Engine executes DMAV products over a fixed register size. It reuses its
// buffers across gates; an Engine is not safe for concurrent use (the
// parallelism is internal).
type Engine struct {
	m    *dd.Manager
	n    int
	dim  uint64
	mode Mode

	threads int // any positive count, capped at 2^n
	simd    int

	// Cached-path (Algorithm 2) column-space partition: a power-of-two
	// chunk count so the border-level split stays aligned with the DD.
	cchunks int    // nextPow2(threads), <= 2^n
	clogT   uint   // log2(cchunks)
	ch      uint64 // 2^n / cchunks: rows/cols per cached chunk

	tasks   [][]task // per-chunk task lists (cached path), reused
	buffers [][]complex128
	bufOf   []int // chunk -> buffer index
	caches  []map[*dd.MNode]cacheEntry

	// Uncached-path adaptive row chunks, reused across gates.
	rchunks []rowChunk

	// macMemo memoizes dd.MACCountNode across gates for chunk sizing and
	// load accounting. Keys keep gate nodes alive, bounded by the
	// distinct gates actually applied.
	macMemo map[*dd.MNode]int64

	// pool executes chunk batches. Either injected via SetPool (caller
	// owns its lifetime) or created lazily on the first multi-threaded
	// Apply (released by Close).
	pool      *sched.Pool
	ownPool   bool
	execTasks []sched.Task // reused batch buffer
	sumTasks  []sched.Task

	// noBufferShare disables the shared-partial-output optimization of
	// Algorithm 2 (every chunk gets a private buffer); used by the
	// ablation experiments.
	noBufferShare bool

	// cancel, when non-nil, is a cooperative cancellation probe polled
	// once per chunk (row chunks, cached column chunks, and buffer-sum
	// ranges). A firing probe makes the rest of the Apply a no-op; the
	// output vector is then partial and must be discarded by the caller.
	cancel func() bool

	// span, when non-nil, parents the engine's pool batches so the
	// scheduler attributes per-batch steal/idle deltas to this gate
	// stream. Nil (the default) keeps the batches span-free.
	span *obs.Span

	// led, when non-nil, receives the engine's resource attribution:
	// pool-batch busy-ns via the scheduler and partial-buffer bytes as
	// they are allocated. Nil (the default) keeps batches ledger-free.
	led *obs.ResourceLedger

	stats Stats

	// met is nil when metrics are off: Apply gates all instrumentation
	// behind this one pointer check.
	met *engMetrics

	// fts holds the fault-injection hooks; nil points in production, so
	// each hook site costs one pointer check.
	fts engFaults
}

// engFaults are the engine's injection points (see internal/faults).
type engFaults struct {
	cacheCorrupt   *faults.Point
	computeCorrupt *faults.Point
}

// engMetrics holds the engine's registry handles (see DESIGN.md,
// "Observability", for the metric names).
type engMetrics struct {
	gates         *obs.Counter
	cachedGates   *obs.Counter
	uncachedGates *obs.Counter // cost model (or mode) bypassed the cache
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	macsModeled   *obs.Counter
	macsExec      *obs.Counter
	tasks         *obs.Counter
	chunks        *obs.Counter
	applyNs       *obs.Histogram

	// Load accounting caches. A gate's chunk plan and MAC counts are a
	// pure function of its (immutable) DD and the engine shape, so the
	// accounting is computed once per distinct gate root and replayed as
	// counter adds on repeats.
	macSeen map[*dd.MNode]bool
	acct    map[acctKey]*gateAccount
}

// acctKey identifies one accounting result: the gate DD root plus the
// execution mode (cached and uncached runs partition tasks differently).
type acctKey struct {
	n      *dd.MNode
	cached bool
}

// gateAccount is the memoized load of one gate in one mode.
type gateAccount struct {
	tasks  int64 // border tasks executed
	macs   int64 // multiply-accumulates (cache hits cost ch scalar ops)
	chunks int64 // schedulable chunks
	misses int64 // cache misses (cached mode only)
}

type cacheEntry struct {
	f     complex128 // full weight product of the cached result (incl. edge weight)
	start uint64     // start index of the cached sub-vector in the chunk's buffer
}

// New returns a DMAV engine for n qubits running max(1, threads)
// workers, capped at 2^n. Any positive thread count is supported: the
// uncached path sizes its row chunks by the MAC cost model, and the
// cached path partitions column space into the next power of two ≥
// threads, with the work-stealing pool re-balancing either shape across
// the actual workers.
func New(m *dd.Manager, n, threads int, mode Mode) *Engine {
	if n < 1 || n > 34 {
		panic(fmt.Sprintf("dmav: unsupported qubit count %d", n))
	}
	if threads < 1 {
		threads = 1
	}
	dim := uint64(1) << uint(n)
	if uint64(threads) > dim {
		threads = int(dim)
	}
	cchunks := 1
	for cchunks < threads {
		cchunks <<= 1
	}
	e := &Engine{
		m:       m,
		n:       n,
		dim:     dim,
		mode:    mode,
		threads: threads,
		cchunks: cchunks,
		clogT:   uint(bits.TrailingZeros(uint(cchunks))),
		simd:    DefaultSIMDWidth,
		macMemo: make(map[*dd.MNode]int64),
	}
	e.ch = e.dim >> e.clogT
	e.tasks = make([][]task, cchunks)
	e.bufOf = make([]int, cchunks)
	e.caches = make([]map[*dd.MNode]cacheEntry, cchunks)
	for i := range e.caches {
		e.caches[i] = make(map[*dd.MNode]cacheEntry)
	}
	return e
}

// Threads returns the effective worker count: max(1, requested), capped
// at 2^n. Unlike earlier versions, the count is no longer rounded to a
// power of two — New(m, n, 3, mode).Threads() == 3.
func (e *Engine) Threads() int { return e.threads }

// CacheChunks returns the cached-path column-space chunk count: the next
// power of two ≥ Threads(), capped at 2^n.
func (e *Engine) CacheChunks() int { return e.cchunks }

// Mode returns the caching policy.
func (e *Engine) Mode() Mode { return e.mode }

// SetPool injects a shared scheduler pool (core.Run uses this so one
// pool serves conversion and every DMAV gate). The caller keeps
// ownership of the pool's lifetime. Passing nil reverts to a lazily
// created engine-owned pool.
func (e *Engine) SetPool(p *sched.Pool) {
	if e.ownPool {
		e.pool.Close()
		e.ownPool = false
	}
	e.pool = p
}

// Close releases the engine-owned pool, if one was created. Engines
// given a pool via SetPool are not affected.
func (e *Engine) Close() {
	if e.ownPool {
		e.pool.Close()
		e.pool = nil
		e.ownPool = false
	}
}

// ensurePool lazily creates an engine-owned pool for engines not wired
// into a shared one.
func (e *Engine) ensurePool() {
	if e.pool == nil {
		e.pool = sched.New(e.threads)
		e.ownPool = true
	}
}

// SetCancel installs a cooperative cancellation probe (nil removes it).
// The probe is polled at chunk granularity inside Apply — cheap enough to
// leave no trace on the kernels (one call per ~8×threads chunks per
// gate), frequent enough that an abort is observed well within one gate.
// Once the probe fires, Apply returns early with a partial output vector
// and without updating Stats; the caller is expected to discard the
// output and stop applying gates. core.RunContext wires the run context's
// doneness in here.
func (e *Engine) SetCancel(f func() bool) { e.cancel = f }

// cancelled reports whether the installed probe has fired.
func (e *Engine) cancelled() bool { return e.cancel != nil && e.cancel() }

// SetSpan installs the tracing span under which the engine's pool
// batches run (nil removes it — the production default). Batches appear
// as "dmav.rows" / "dmav.chunks" / "dmav.sum" children carrying the
// scheduler's per-batch attribution; the span collector's cap bounds
// how many are retained per trace. Like SetCancel, it is set per run,
// not per gate.
func (e *Engine) SetSpan(s *obs.Span) { e.span = s }

// SetLedger installs the resource ledger the engine reports into (nil
// removes it — the production default). Pool batches credit their
// worker busy-ns to the ledger's open phase, and the cached path's
// shared partial-output buffers are counted as live flat-array bytes
// when (re)allocated. Like SetSpan, it is set per run, not per gate.
func (e *Engine) SetLedger(l *obs.ResourceLedger) { e.led = l }

// SetBufferSharing enables or disables the shared partial-output buffers
// of Algorithm 2 (enabled by default; disabling is for ablation studies).
func (e *Engine) SetBufferSharing(on bool) { e.noBufferShare = !on }

// SetSIMDWidth overrides the d parameter of Equation 6.
func (e *Engine) SetSIMDWidth(d int) {
	if d < 1 {
		d = 1
	}
	e.simd = d
}

// Stats returns the accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetMetrics attaches the engine to a registry (nil detaches). Aggregate
// load shows up as dmav.tasks (border tasks executed), dmav.chunks
// (schedulable chunks built) and dmav.macs.executed (multiply-
// accumulates performed: the exact path count of each executed sub-tree,
// plus one scalar multiply per cached element on reuse); per-worker
// attribution lives with the scheduler (sched.worker.<i>.*). It must be
// called before Apply.
func (e *Engine) SetMetrics(r *obs.Registry) {
	if r == nil {
		e.met = nil
		return
	}
	e.met = &engMetrics{
		gates:         r.Counter("dmav.gates"),
		cachedGates:   r.Counter("dmav.gates.cached"),
		uncachedGates: r.Counter("dmav.gates.uncached"),
		cacheHits:     r.Counter("dmav.cache.hits"),
		cacheMisses:   r.Counter("dmav.cache.misses"),
		macsModeled:   r.Counter("dmav.macs.modeled"),
		macsExec:      r.Counter("dmav.macs.executed"),
		tasks:         r.Counter("dmav.tasks"),
		chunks:        r.Counter("dmav.chunks"),
		applyNs:       r.Histogram("dmav.apply_ns", obs.DurationBuckets()),
		macSeen:       make(map[*dd.MNode]bool),
		acct:          make(map[acctKey]*gateAccount),
	}
}

// SetFaults wires the engine's injection points to a fault registry
// (nil detaches; production engines never call this). Must be called
// before Apply, like SetMetrics.
func (e *Engine) SetFaults(r *faults.Registry) {
	if r == nil {
		e.fts = engFaults{}
		return
	}
	e.fts = engFaults{
		cacheCorrupt:   r.Point(faults.DMAVCacheCorrupt),
		computeCorrupt: r.Point(faults.DMAVComputeCorrupt),
	}
}

// borderLevel is n - log2(cchunks) - 1 (Section 3.2.1): AssignCache
// stops there and run starts there.
func (e *Engine) borderLevel() int { return e.n - int(e.clogT) - 1 }

// inline reports whether this engine runs its per-gate work on the
// calling goroutine instead of batching it onto the pool. The decision
// is fixed per engine (it depends only on the thread count and state
// size), so the memoized load accounting never sees a plan-shape change.
func (e *Engine) inline() bool { return e.threads == 1 || e.dim < serialCutoffDim }

// Apply computes W = M·V, choosing the execution mode per the engine
// policy. V and W must have length 2^n and must not alias — violations
// are caller errors and reported as such (internal invariants still
// panic). It returns the cost-model evaluation used for the decision.
func (e *Engine) Apply(M dd.MEdge, V, W []complex128) (GateCost, error) {
	if uint64(len(V)) != e.dim || uint64(len(W)) != e.dim {
		return GateCost{}, fmt.Errorf("dmav: vector length %d/%d, want %d", len(V), len(W), e.dim)
	}
	if len(V) > 0 && &V[0] == &W[0] {
		return GateCost{}, fmt.Errorf("dmav: V and W must not alias")
	}
	zero(W)
	if M.IsZero() {
		return GateCost{}, nil
	}
	var start time.Time
	if e.met != nil {
		start = time.Now()
	}
	cost := e.EvaluateCost(M)
	useCache := cost.UseCache()
	switch e.mode {
	case NeverCache:
		useCache = false
	case AlwaysCache:
		useCache = true
	}
	// Inline execution never touches the pool, so its CPU time would be
	// invisible to the ledger's batch-level busy accounting; credit the
	// apply wall time instead (single-threaded, so wall == CPU).
	var ledStart time.Time
	if e.led != nil && e.inline() {
		ledStart = time.Now()
	}
	var hits int64
	if useCache {
		hits = e.applyCached(M, V, W)
	} else {
		e.applyUncached(M, V, W, cost.K1)
	}
	if !ledStart.IsZero() {
		e.led.AddCPU(time.Since(ledStart).Nanoseconds())
	}
	if e.cancelled() {
		// Aborted mid-gate: W is partial and the caller discards it, so
		// neither Stats nor the metrics count this Apply.
		return cost, nil
	}
	if useCache {
		e.stats.CachedGates++
		e.stats.CacheHits += hits
	}
	e.stats.Gates++
	e.stats.MACsModeled += cost.Cost()
	e.stats.MACsC1 += cost.C1
	if met := e.met; met != nil {
		met.applyNs.Observe(time.Since(start).Nanoseconds())
		met.gates.Inc()
		met.macsModeled.Add(int64(cost.Cost()))
		if useCache {
			met.cachedGates.Inc()
			met.cacheHits.Add(hits)
		} else {
			met.uncachedGates.Inc()
		}
		e.accountLoad(met, M, useCache)
	}
	return cost, nil
}

// accountLoad attributes the exact load of the Apply that just ran:
// chunks built, tasks executed and multiply-accumulates performed (the
// path count of each executed sub-tree; with caching, repeated nodes
// cost one scalar multiply per cached element instead). It runs
// sequentially after the pool batch has drained so the kernel stays
// instrumentation-free, and is memoized per distinct gate root (walking
// the chunk plan the assignment just built); steady state is one map
// lookup plus counter adds. Per-worker attribution comes from the
// scheduler's own counters, since stealing makes the worker→chunk
// mapping dynamic.
func (e *Engine) accountLoad(met *engMetrics, M dd.MEdge, useCache bool) {
	key := acctKey{M.N, useCache}
	a, ok := met.acct[key]
	if !ok {
		a = &gateAccount{}
		memo := e.macMemo
		if !useCache {
			a.chunks = int64(len(e.rchunks))
			for i := range e.rchunks {
				a.tasks += int64(len(e.rchunks[i].items))
				for _, tk := range e.rchunks[i].items {
					a.macs += dd.MACCountNode(tk.edge.N, memo)
				}
			}
		} else {
			seen := met.macSeen
			for u := 0; u < e.cchunks; u++ {
				if len(e.tasks[u]) == 0 {
					continue
				}
				a.chunks++
				a.tasks += int64(len(e.tasks[u]))
				clear(seen)
				for _, tk := range e.tasks[u] {
					if seen[tk.edge.N] {
						a.macs += int64(e.ch)
						continue
					}
					seen[tk.edge.N] = true
					a.misses++
					a.macs += dd.MACCountNode(tk.edge.N, memo)
				}
			}
		}
		met.acct[key] = a
	}
	met.tasks.Add(a.tasks)
	met.macsExec.Add(a.macs)
	met.chunks.Add(a.chunks)
	if useCache {
		met.cacheMisses.Add(a.misses)
	}
}

// EvaluateCost runs the Section 3.2.3 cost model on a gate matrix without
// executing the multiplication.
func (e *Engine) EvaluateCost(M dd.MEdge) GateCost {
	var c GateCost
	if M.IsZero() {
		return c
	}
	c.K1 = dd.MACCount(M)
	c.C1 = float64(c.K1) / float64(e.threads)

	// Dry-run the caching assignment to obtain K2, H and b.
	e.assignCache(M)
	memo := make(map[*dd.MNode]int64)
	seen := make(map[*dd.MNode]bool)
	nBuf := 0
	for u := range e.tasks {
		clear(seen)
		for _, tk := range e.tasks[u] {
			if seen[tk.edge.N] {
				c.Hits++
				continue
			}
			seen[tk.edge.N] = true
			c.K2 += dd.MACCountNode(tk.edge.N, memo)
		}
		if e.bufOf[u]+1 > nBuf {
			nBuf = e.bufOf[u] + 1
		}
	}
	c.Buffers = nBuf
	t := float64(e.threads)
	d := float64(e.simd)
	c.C2 = float64(c.K2)/t + float64(e.dim)/(d*t)*(float64(c.Hits)/t+float64(c.Buffers))
	return c
}

// applyUncached is Algorithm 1: DMAV without caching. Row chunks are
// sized by the MAC cost model (assignRows) and executed as one pool
// batch; chunks write disjoint row ranges of W, so tasks need no
// synchronization among themselves.
func (e *Engine) applyUncached(M dd.MEdge, V, W []complex128, k1 int64) {
	e.assignRows(M, k1)
	if e.inline() || len(e.rchunks) == 1 {
		for i := range e.rchunks {
			if e.cancelled() {
				return
			}
			c := &e.rchunks[i]
			for _, tk := range c.items {
				run(tk.edge, V, W, tk.idx, c.ir, tk.f)
			}
			e.corruptRow(W, c.ir)
		}
		return
	}
	e.ensurePool()
	ts := e.execTasks[:0]
	for i := range e.rchunks {
		c := &e.rchunks[i]
		ts = append(ts, func() {
			if e.cancelled() {
				return
			}
			for _, tk := range c.items {
				run(tk.edge, V, W, tk.idx, c.ir, tk.f)
			}
			e.corruptRow(W, c.ir)
		})
	}
	e.execTasks = ts
	e.pool.RunTracked(e.span, "dmav.rows", e.led, ts)
}

// assignRows builds the uncached path's row-space chunk plan: starting
// from the whole matrix, any row range whose modeled MAC count exceeds
// K1/(chunksPerThread·threads) is split in half (descending one DD
// level), so dense sub-blocks decompose into many small chunks while
// sparse ones stay whole. The result is ~chunksPerThread×threads chunks
// whose sizes track actual work, which is what gives the stealing pool
// something useful to balance.
func (e *Engine) assignRows(M dd.MEdge, totalMACs int64) {
	e.rchunks = e.rchunks[:0]
	budget := totalMACs / int64(chunksPerThread*e.threads)
	if e.inline() {
		budget = totalMACs // one chunk: nothing to balance inline
	}
	if budget < 1 {
		budget = 1
	}
	memo := e.macMemo
	var rec func(items []task, l int, ir uint64)
	rec = func(items []task, l int, ir uint64) {
		if len(items) == 0 {
			return
		}
		if l >= 0 {
			var cost int64
			for _, it := range items {
				cost += dd.MACCountNode(it.edge.N, memo)
			}
			if cost > budget {
				lo := make([]task, 0, len(items))
				hi := make([]task, 0, len(items))
				for _, it := range items {
					fw := it.f * it.edge.W
					for j := 0; j < 2; j++ {
						if c := it.edge.N.Child(0, j); !c.IsZero() {
							lo = append(lo, task{c, it.idx + uint64(j)<<uint(l), fw})
						}
						if c := it.edge.N.Child(1, j); !c.IsZero() {
							hi = append(hi, task{c, it.idx + uint64(j)<<uint(l), fw})
						}
					}
				}
				rec(lo, l-1, ir)
				rec(hi, l-1, ir+uint64(1)<<uint(l))
				return
			}
		}
		e.rchunks = append(e.rchunks, rowChunk{ir: ir, items: items})
	}
	rec([]task{{M, 0, 1}}, e.n-1, 0)
}

// run is the recursive kernel of Algorithm 1. The weight product f excludes
// the current edge's weight; a terminal edge performs the MAC
// W[iw] += f·w·V[iv]. Indexing descends the DD with one shift-or per level
// — the constant-average-cost access pattern DMAV's speed over generic
// array simulators comes from.
func run(edge dd.MEdge, V, W []complex128, iv, iw uint64, f complex128) {
	n := edge.N
	if n.Level == dd.TerminalLevel {
		W[iw] += f * edge.W * V[iv]
		return
	}
	l := uint(n.Level)
	fw := f * edge.W
	if c := n.E[0]; !c.IsZero() {
		run(c, V, W, iv, iw, fw)
	}
	if c := n.E[1]; !c.IsZero() {
		run(c, V, W, iv+1<<l, iw, fw)
	}
	if c := n.E[2]; !c.IsZero() {
		run(c, V, W, iv, iw+1<<l, fw)
	}
	if c := n.E[3]; !c.IsZero() {
		run(c, V, W, iv+1<<l, iw+1<<l, fw)
	}
}

// applyCached is Algorithm 2: DMAV with caching. Column-space chunks run
// as one pool batch (chunks sharing a buffer write disjoint row
// segments, so they may run concurrently), then the partial buffers are
// summed into W by a second batch of row-range tasks. It returns the
// number of cache hits.
func (e *Engine) applyCached(M dd.MEdge, V, W []complex128) int64 {
	e.assignCache(M)
	nBuf := 0
	for _, b := range e.bufOf {
		if b+1 > nBuf {
			nBuf = b + 1
		}
	}
	// (Re)allocate and zero the shared partial-output buffers.
	for len(e.buffers) < nBuf {
		e.buffers = append(e.buffers, make([]complex128, e.dim))
		e.led.AddFlat(int64(e.dim) * 16)
	}
	for b := 0; b < nBuf; b++ {
		zero(e.buffers[b])
	}

	var hits atomic.Int64
	runChunk := func(u int) {
		if e.cancelled() {
			return
		}
		buf := e.buffers[e.bufOf[u]]
		cache := e.caches[u]
		clear(cache)
		iv := uint64(u) * e.ch // the chunk's column block in V
		var local int64
		for _, tk := range e.tasks[u] {
			fFull := tk.f * tk.edge.W
			if r, ok := cache[tk.edge.N]; ok {
				// Reuse: the repeated node's result is the cached
				// sub-vector scaled by the ratio of full weights.
				scalarMulInto(buf[tk.idx:tk.idx+e.ch], buf[r.start:r.start+e.ch], fFull/r.f)
				local++
				continue
			}
			run(tk.edge, V, buf, iv, tk.idx, tk.f)
			cache[tk.edge.N] = cacheEntry{f: fFull, start: tk.idx}
			if e.fts.cacheCorrupt != nil {
				if z, ok := e.fts.cacheCorrupt.Corrupt(buf[tk.idx]); ok {
					buf[tk.idx] = z
				}
			}
		}
		if local > 0 {
			hits.Add(local)
		}
	}
	if e.inline() {
		for u := 0; u < e.cchunks; u++ {
			if len(e.tasks[u]) > 0 {
				runChunk(u)
			}
		}
	} else {
		e.ensurePool()
		ts := e.execTasks[:0]
		for u := 0; u < e.cchunks; u++ {
			if len(e.tasks[u]) == 0 {
				continue
			}
			u := u
			ts = append(ts, func() { runChunk(u) })
		}
		e.execTasks = ts
		e.pool.RunTracked(e.span, "dmav.chunks", e.led, ts)
	}

	e.sumBuffers(W, nBuf)
	return hits.Load()
}

// corruptRow is the uncached path's corruption hook: after a row chunk
// computes, the armed fault flips the chunk's first output amplitude
// (chunks own disjoint row ranges, so the write races with nothing).
func (e *Engine) corruptRow(W []complex128, ir uint64) {
	if e.fts.computeCorrupt == nil {
		return
	}
	if z, ok := e.fts.computeCorrupt.Corrupt(W[ir]); ok {
		W[ir] = z
	}
}

// sumBuffers adds the partial-output buffers into W as ~chunksPerThread
// ×threads row-range tasks on the pool (each task owns a disjoint row
// range across all buffers, so the adds race with nothing).
func (e *Engine) sumBuffers(W []complex128, nBuf int) {
	if nBuf == 0 {
		return
	}
	const minRows = 1024
	chunks := chunksPerThread * e.threads
	if m := int(e.dim / minRows); chunks > m {
		chunks = m
	}
	if chunks < 1 {
		chunks = 1
	}
	if e.inline() || chunks == 1 {
		if e.cancelled() {
			return
		}
		for b := 0; b < nBuf; b++ {
			addInto(W, e.buffers[b])
		}
		return
	}
	e.ensurePool()
	ts := e.sumTasks[:0]
	for i := 0; i < chunks; i++ {
		lo := uint64(i) * e.dim / uint64(chunks)
		hi := uint64(i+1) * e.dim / uint64(chunks)
		ts = append(ts, func() {
			if e.cancelled() {
				return
			}
			for b := 0; b < nBuf; b++ {
				addInto(W[lo:hi], e.buffers[b][lo:hi])
			}
		})
	}
	e.sumTasks = ts
	e.pool.RunTracked(e.span, "dmav.sum", e.led, ts)
}

// assignCache populates e.tasks with column-space border tasks
// (AssignCache of Algorithm 2) and assigns each chunk a partial-output
// buffer, sharing buffers between chunks whose output row segments do
// not overlap.
func (e *Engine) assignCache(M dd.MEdge) {
	for u := range e.tasks {
		e.tasks[u] = e.tasks[u][:0]
	}
	border := e.borderLevel()
	var rec func(edge dd.MEdge, f complex128, u int, ip uint64, l int)
	rec = func(edge dd.MEdge, f complex128, u int, ip uint64, l int) {
		if edge.IsZero() {
			return
		}
		if l == border {
			e.tasks[u] = append(e.tasks[u], task{edge, ip, f})
			return
		}
		// Splitting factor cchunks / 2^(n-l): at the top level each
		// column bit selects one half of the chunks, one quarter a level
		// below, ...
		step := e.cchunks >> uint(e.n-l)
		// Column-major: the column bit j selects the chunk, the row bit i
		// the partial-output segment.
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				rec(edge.N.Child(i, j), f*edge.W, u+j*step, ip+uint64(i)<<uint(l), l-1)
			}
		}
	}
	rec(M, 1, 0, 0, e.n-1)

	if e.noBufferShare {
		for u := range e.bufOf {
			e.bufOf[u] = u
		}
		return
	}

	// Greedy buffer sharing: quantum gate matrices are sparse, so the
	// partial outputs of different chunks frequently occupy disjoint row
	// segments and can live in one buffer.
	type segset map[uint64]struct{}
	var occupied []segset
	for u := 0; u < e.cchunks; u++ {
		mine := make(segset, len(e.tasks[u]))
		for _, tk := range e.tasks[u] {
			mine[tk.idx] = struct{}{}
		}
		placed := -1
		for b, occ := range occupied {
			conflict := false
			for s := range mine {
				if _, ok := occ[s]; ok {
					conflict = true
					break
				}
			}
			if !conflict {
				placed = b
				break
			}
		}
		if placed < 0 {
			occupied = append(occupied, make(segset))
			placed = len(occupied) - 1
		}
		for s := range mine {
			occupied[placed][s] = struct{}{}
		}
		e.bufOf[u] = placed
	}
}
