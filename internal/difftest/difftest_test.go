package difftest

import (
	"fmt"
	"testing"
)

// TestCrossEngineDifferential is the headline differential suite: seeded
// random Clifford+T circuits through ddsim, statevec, pure DMAV, and the
// hybrid pipeline, compared amplitude-by-amplitude at Tol. The short
// default runs a handful of (qubits, threads) configurations; raise the
// circuit count with -difftest.n.
func TestCrossEngineDifferential(t *testing.T) {
	type cfg struct {
		qubits, gates, threads int
	}
	cfgs := []cfg{
		{qubits: 5, gates: 40, threads: 1},
		{qubits: 6, gates: 50, threads: 3}, // deliberately not a power of two
		{qubits: 7, gates: 60, threads: 4},
		// 12 qubits clears the DMAV serial cutoff (4096 amplitudes), so
		// this configuration drives the pool-batched execution paths.
		{qubits: 12, gates: 30, threads: 3},
	}
	circuits := 2 + *ExtraCircuits
	for _, c := range cfgs {
		c := c
		name := fmt.Sprintf("n%d-g%d-t%d", c.qubits, c.gates, c.threads)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for s := 0; s < circuits; s++ {
				seed := int64(1000*c.qubits + 10*c.threads + s)
				circ := RandomCliffordT(c.qubits, c.gates, seed)
				if err := Check(circ, c.threads); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestSingleQubit covers the n=1 edge case, where the two-qubit branch of
// the generator must fall back to a single-qubit gate.
func TestSingleQubit(t *testing.T) {
	circ := RandomCliffordT(1, 30, 7)
	if circ.Qubits != 1 || len(circ.Gates) != 30 {
		t.Fatalf("generator produced %d qubits, %d gates; want 1, 30", circ.Qubits, len(circ.Gates))
	}
	if err := Check(circ, 2); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratorDeterministic pins the seeding contract: the same seed
// must yield the same circuit, and different seeds should differ.
func TestGeneratorDeterministic(t *testing.T) {
	a := RandomCliffordT(5, 50, 42)
	b := RandomCliffordT(5, 50, 42)
	if len(a.Gates) != len(b.Gates) {
		t.Fatalf("same seed gave %d and %d gates", len(a.Gates), len(b.Gates))
	}
	for i := range a.Gates {
		if a.Gates[i].Name != b.Gates[i].Name {
			t.Fatalf("same seed diverged at gate %d: %s vs %s", i, a.Gates[i].Name, b.Gates[i].Name)
		}
	}
	c := RandomCliffordT(5, 50, 43)
	same := true
	for i := range a.Gates {
		if a.Gates[i].Name != c.Gates[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical gate sequences")
	}
}

// TestMismatchReported ensures the comparison actually detects
// disagreement (guards against a vacuously-green suite).
func TestMismatchReported(t *testing.T) {
	a := []complex128{1, 0}
	b := []complex128{1, 1e-6}
	if m := compare("a", "b", a, b); m == nil {
		t.Fatal("compare missed a 1e-6 disagreement")
	} else if m.Index != 1 {
		t.Fatalf("mismatch at index %d, want 1", m.Index)
	}
	if m := compare("a", "b", a, []complex128{1}); m == nil {
		t.Fatal("compare missed a length mismatch")
	}
}
