// Package difftest provides a reusable cross-engine differential testing
// helper: it runs the same seeded random Clifford+T circuit through every
// simulation engine in the repository — the decision-diagram simulator
// (ddsim), the flat statevector engine (statevec), the pure DMAV engine
// driven gate-by-gate over a flat array, and the full hybrid pipeline
// (core, forced through its DD->array conversion mid-circuit) — and
// asserts that all of them agree amplitude-by-amplitude to within Tol.
//
// The engines share almost no code on their hot paths (DD node arithmetic
// vs dense kernels vs DMAV row/column traversals), so agreement across a
// few hundred random gates is strong evidence against systematic sign,
// ordering, or indexing bugs in any one of them.
//
// By default each test runs a small number of circuits so `go test ./...`
// stays fast; pass -difftest.n=N to sweep N extra random circuits per
// configuration (e.g. `go test ./internal/difftest -difftest.n=50`).
package difftest

import (
	"context"
	"flag"
	"fmt"
	"math"

	"flatdd/internal/circuit"
	"flatdd/internal/core"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
	"flatdd/internal/dmav"
	"flatdd/internal/sched"
	"flatdd/internal/statevec"
	"flatdd/internal/workloads"
)

// ExtraCircuits is the -difftest.n flag: how many additional random
// circuits to run per test configuration beyond the short default.
var ExtraCircuits = flag.Int("difftest.n", 0,
	"extra random circuits per difftest configuration (0 = short default only)")

// Tol is the maximum per-amplitude deviation |a-b| tolerated between any
// two engines. All engines compute in complex128, so after a few hundred
// gates the accumulated error is far below this.
const Tol = 1e-9

// RandomCliffordT builds a seeded random circuit over n qubits from the
// Clifford+T gate set (H, S, S†, T, T†, X, Z, CX, CZ). The generator
// lives in internal/workloads (registry name "randct", also used by the
// job service's smoke tests); this wrapper keeps the difftest API.
func RandomCliffordT(n, gates int, seed int64) *circuit.Circuit {
	return workloads.RandomCliffordT(n, gates, seed)
}

// Mismatch describes the worst disagreement found between two engines.
type Mismatch struct {
	EngineA, EngineB string
	Index            uint64
	A, B             complex128
	Dist             float64
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("difftest: %s vs %s disagree at amplitude %d: %v vs %v (|delta|=%.3g > %.3g)",
		m.EngineA, m.EngineB, m.Index, m.A, m.B, m.Dist, Tol)
}

// Check runs c through every engine with the given thread count and
// returns a *Mismatch error describing the first pair of engines that
// disagree beyond Tol, or nil if all agree. ddsim is the reference; every
// other engine is compared against it.
func Check(c *circuit.Circuit, threads int) error {
	ref := runDDSim(c)
	engines := []struct {
		name string
		run  func(*circuit.Circuit, int) []complex128
	}{
		{"statevec", runStatevec},
		{"ddsim-par", runDDSimPar},
		{"dmav", runDMAV},
		{"hybrid", runHybrid},
		{"degraded", runDegraded},
	}
	for _, e := range engines {
		got := e.run(c, threads)
		if m := compare("ddsim", e.name, ref, got); m != nil {
			return m
		}
	}
	return nil
}

func compare(nameA, nameB string, a, b []complex128) *Mismatch {
	if len(a) != len(b) {
		return &Mismatch{EngineA: nameA, EngineB: nameB,
			Dist: math.Inf(1)}
	}
	var worst *Mismatch
	for i := range a {
		d := cmplxAbs(a[i] - b[i])
		if d > Tol && (worst == nil || d > worst.Dist) {
			worst = &Mismatch{EngineA: nameA, EngineB: nameB,
				Index: uint64(i), A: a[i], B: b[i], Dist: d}
		}
	}
	return worst
}

func cmplxAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

// runDDSim is the reference: pure decision-diagram simulation, final
// state flattened once at the end.
func runDDSim(c *circuit.Circuit) []complex128 {
	s := ddsim.New(c.Qubits)
	s.Run(c)
	return s.ToArray()
}

// runDDSimPar is ddsim with task-parallel gate application on a scheduler
// pool. The parallel cutoff is forced to 1 so even the small difftest
// states take the frontier-split path; the results must match the
// sequential reference bit-for-bit (the comparison tolerance is just the
// shared difftest harness).
func runDDSimPar(c *circuit.Circuit, threads int) []complex128 {
	if threads < 2 {
		threads = 2
	}
	pool := sched.New(threads)
	defer pool.Close()
	s := ddsim.New(c.Qubits)
	s.SetParallelism(pool.Run, pool.Threads())
	s.SetParallelCutoff(1)
	s.Run(c)
	return s.ToArray()
}

// runStatevec applies every gate with dense statevector kernels.
func runStatevec(c *circuit.Circuit, threads int) []complex128 {
	sv := statevec.New(c.Qubits, threads)
	sv.ApplyCircuit(c)
	return sv.Amplitudes()
}

// runDMAV drives the DMAV engine gate-by-gate over a flat array from
// |0...0>, exercising both Algorithm 1 and Algorithm 2 via the cost
// model (Auto mode).
func runDMAV(c *circuit.Circuit, threads int) []complex128 {
	n := c.Qubits
	m := dd.New(n)
	e := dmav.New(m, n, threads, dmav.Auto)
	defer e.Close()
	v := make([]complex128, uint64(1)<<uint(n))
	v[0] = 1
	w := make([]complex128, len(v))
	for i := range c.Gates {
		g := ddsim.BuildGateDD(m, n, &c.Gates[i])
		e.Apply(g, v, w)
		v, w = w, v
	}
	return v
}

// runHybrid runs the full FlatDD pipeline and forces the DD-to-array
// conversion about a third of the way through the circuit, so the run
// exercises the DD phase, the parallel conversion, and the DMAV phase in
// one pass.
func runHybrid(c *circuit.Circuit, threads int) []complex128 {
	fca := len(c.Gates) / 3
	if fca < 1 {
		fca = 1
	}
	s := core.New(c.Qubits, core.Options{Threads: threads, ForceConvertAfter: fca})
	if _, err := s.RunContext(context.Background(), c); err != nil {
		panic(fmt.Sprintf("difftest: hybrid run failed: %v", err))
	}
	return s.Amplitudes()
}

// runDegraded is the graceful-degradation path: conversion is requested
// (same forced trigger as runHybrid) but a one-byte memory budget vetoes
// it, so the run must complete DD-only and still produce exact results.
func runDegraded(c *circuit.Circuit, threads int) []complex128 {
	fca := len(c.Gates) / 3
	if fca < 1 {
		fca = 1
	}
	s := core.New(c.Qubits, core.Options{
		Threads: threads, ForceConvertAfter: fca, MemoryBudget: 1,
	})
	st, err := s.RunContext(context.Background(), c)
	if err != nil {
		panic(fmt.Sprintf("difftest: degraded run failed: %v", err))
	}
	if len(c.Gates) > fca && !st.Degraded {
		panic("difftest: budget-vetoed run did not report degraded")
	}
	if st.ConvertedAtGate != -1 {
		panic(fmt.Sprintf("difftest: degraded run converted at gate %d", st.ConvertedAtGate))
	}
	return s.Amplitudes()
}
