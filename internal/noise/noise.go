// Package noise implements noise-aware quantum circuit simulation with
// decision diagrams, the application of the DD kernel described by Grurl,
// Fuß and Wille ("Noise-aware quantum circuit simulation with decision
// diagrams", reference [22] of the FlatDD paper).
//
// The density matrix ρ of an n-qubit open system is stored as a matrix DD.
// A unitary gate U maps ρ to U·ρ·U†; a noise channel with Kraus operators
// {K_i} maps ρ to Σ_i K_i·ρ·K_i†. Both are composed from the kernel's
// hash-consed matrix multiplication and addition, so a mostly-pure,
// structured ρ stays compact exactly like a structured state vector does.
package noise

import (
	"fmt"
	"math"

	"flatdd/internal/circuit"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
)

// Channel is a single-qubit noise channel given by its Kraus operators
// (2x2, satisfying Σ K†K = I).
type Channel struct {
	Name  string
	Kraus []dd.Matrix2
}

// Depolarizing returns the single-qubit depolarizing channel
// ρ -> (1-p)·ρ + p/3·(XρX + YρY + ZρZ).
func Depolarizing(p float64) Channel {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("noise: depolarizing probability %v outside [0,1]", p))
	}
	s0 := complex(math.Sqrt(1-p), 0)
	s := complex(math.Sqrt(p/3), 0)
	return Channel{
		Name: "depolarizing",
		Kraus: []dd.Matrix2{
			{{s0, 0}, {0, s0}},
			{{0, s}, {s, 0}},            // sqrt(p/3)·X
			{{0, -s * 1i}, {s * 1i, 0}}, // sqrt(p/3)·Y
			{{s, 0}, {0, -s}},           // sqrt(p/3)·Z
		},
	}
}

// AmplitudeDamping returns the T1 relaxation channel with damping γ.
func AmplitudeDamping(gamma float64) Channel {
	if gamma < 0 || gamma > 1 {
		panic(fmt.Sprintf("noise: damping %v outside [0,1]", gamma))
	}
	return Channel{
		Name: "amplitude-damping",
		Kraus: []dd.Matrix2{
			{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}},
			{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}},
		},
	}
}

// PhaseFlip returns the phase-flip (dephasing) channel with probability p.
func PhaseFlip(p float64) Channel {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("noise: phase-flip probability %v outside [0,1]", p))
	}
	s0 := complex(math.Sqrt(1-p), 0)
	s1 := complex(math.Sqrt(p), 0)
	return Channel{
		Name: "phase-flip",
		Kraus: []dd.Matrix2{
			{{s0, 0}, {0, s0}},
			{{s1, 0}, {0, -s1}},
		},
	}
}

// BitFlip returns the bit-flip channel with probability p.
func BitFlip(p float64) Channel {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("noise: bit-flip probability %v outside [0,1]", p))
	}
	s0 := complex(math.Sqrt(1-p), 0)
	s1 := complex(math.Sqrt(p), 0)
	return Channel{
		Name: "bit-flip",
		Kraus: []dd.Matrix2{
			{{s0, 0}, {0, s0}},
			{{0, s1}, {s1, 0}},
		},
	}
}

// Model describes the noise applied after each gate: every channel in
// GateNoise is applied to every qubit the gate touches.
type Model struct {
	GateNoise []Channel
}

// Simulator evolves a density-matrix DD under gates and noise.
type Simulator struct {
	m   *dd.Manager
	n   int
	rho dd.MEdge

	model Model

	gcCounter int
}

// New returns a noise simulator in the pure state |0...0><0...0|.
func New(n int, model Model) *Simulator {
	if n < 1 || n > 16 {
		panic(fmt.Sprintf("noise: unsupported qubit count %d (density matrices square the state space)", n))
	}
	m := dd.New(n)
	blocks := make([]dd.Matrix2, n)
	for i := range blocks {
		blocks[i] = dd.Matrix2{{1, 0}, {0, 0}} // |0><0|
	}
	return &Simulator{m: m, n: n, rho: m.KronChain(blocks), model: model}
}

// Manager exposes the underlying DD manager.
func (s *Simulator) Manager() *dd.Manager { return s.m }

// Qubits returns the register width.
func (s *Simulator) Qubits() int { return s.n }

// Rho returns the current density-matrix DD.
func (s *Simulator) Rho() dd.MEdge { return s.rho }

// ApplyGate applies a unitary gate (ρ -> UρU†) followed by the model's
// per-gate noise on the touched qubits.
func (s *Simulator) ApplyGate(g *circuit.Gate) {
	if err := g.Validate(s.n); err != nil {
		panic(err)
	}
	u := ddsim.BuildGateDD(s.m, s.n, g)
	udg := s.m.ConjTranspose(u)
	s.rho = s.m.MulMM(s.m.MulMM(u, s.rho), udg)
	for _, ch := range s.model.GateNoise {
		for _, q := range g.Qubits() {
			s.ApplyChannel(ch, q)
		}
	}
	s.maybeGC()
}

// ApplyChannel applies a single-qubit channel to qubit q:
// ρ -> Σ_i K_i ρ K_i†.
func (s *Simulator) ApplyChannel(ch Channel, q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("noise: qubit %d out of range", q))
	}
	sum := s.m.MZeroEdge()
	for _, k := range ch.Kraus {
		K := s.m.SingleGate(s.n, k, q)
		Kdg := s.m.ConjTranspose(K)
		sum = s.m.MAdd(sum, s.m.MulMM(s.m.MulMM(K, s.rho), Kdg))
	}
	s.rho = sum
	s.maybeGC()
}

// Run applies a whole circuit under the noise model.
func (s *Simulator) Run(c *circuit.Circuit) {
	if c.Qubits != s.n {
		panic(fmt.Sprintf("noise: circuit on %d qubits, simulator has %d", c.Qubits, s.n))
	}
	for i := range c.Gates {
		s.ApplyGate(&c.Gates[i])
	}
}

func (s *Simulator) maybeGC() {
	s.gcCounter++
	if s.gcCounter%32 == 0 {
		s.m.CollectIfNeeded(dd.Roots{M: []dd.MEdge{s.rho}})
	}
}

// Trace returns tr(ρ), which must stay 1 under trace-preserving channels.
func (s *Simulator) Trace() complex128 {
	return s.m.Trace(s.rho, s.n)
}

// Purity returns tr(ρ²): 1 for pure states, 1/2^n for the maximally mixed
// state.
func (s *Simulator) Purity() float64 {
	sq := s.m.MulMM(s.rho, s.rho)
	return real(s.m.Trace(sq, s.n))
}

// Probabilities returns the measurement distribution diag(ρ).
func (s *Simulator) Probabilities() []float64 {
	out := make([]float64, uint64(1)<<uint(s.n))
	var rec func(e dd.MEdge, level int, idx uint64, w complex128)
	rec = func(e dd.MEdge, level int, idx uint64, w complex128) {
		if e.IsZero() {
			return
		}
		w *= e.W
		if level < 0 {
			out[idx] = real(w)
			return
		}
		rec(e.N.Child(0, 0), level-1, idx, w)
		rec(e.N.Child(1, 1), level-1, idx|1<<uint(level), w)
	}
	rec(dd.MEdge{W: 1, N: s.rho.N}, s.n-1, 0, s.rho.W)
	return out
}

// ProbabilityOfQubit returns P(qubit q = 1) under the mixed state.
func (s *Simulator) ProbabilityOfQubit(q int) float64 {
	var p float64
	for i, v := range s.Probabilities() {
		if uint64(i)>>uint(q)&1 == 1 {
			p += v
		}
	}
	return p
}
