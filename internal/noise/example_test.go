package noise_test

import (
	"fmt"

	"flatdd/internal/circuit"
	"flatdd/internal/noise"
)

// ExampleSimulator shows a Bell pair degrading under depolarizing noise.
func ExampleSimulator() {
	model := noise.Model{GateNoise: []noise.Channel{noise.Depolarizing(0.1)}}
	s := noise.New(2, model)

	c := circuit.New("bell", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1))
	s.Run(c)

	fmt.Printf("trace  = %.4f\n", real(s.Trace()))
	fmt.Printf("purity < 1: %v\n", s.Purity() < 0.999)
	// Output:
	// trace  = 1.0000
	// purity < 1: true
}
