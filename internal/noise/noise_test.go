package noise

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/statevec"
)

const eps = 1e-9

func TestChannelsAreTracePreserving(t *testing.T) {
	// Σ K†K = I for every channel constructor.
	channels := []Channel{
		Depolarizing(0.3), AmplitudeDamping(0.4), PhaseFlip(0.2), BitFlip(0.7),
		Depolarizing(0), Depolarizing(1), AmplitudeDamping(1),
	}
	for _, ch := range channels {
		var sum [2][2]complex128
		for _, k := range ch.Kraus {
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					for l := 0; l < 2; l++ {
						sum[i][j] += cmplx.Conj(k[l][i]) * k[l][j]
					}
				}
			}
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				want := complex128(0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(sum[i][j]-want) > eps {
					t.Errorf("%s: sum K†K entry (%d,%d) = %v", ch.Name, i, j, sum[i][j])
				}
			}
		}
	}
}

func TestNoiselessMatchesStatevec(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := circuit.New("r", 4)
	for i := 0; i < 20; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Append(circuit.H(rng.Intn(4)))
		case 1:
			c.Append(circuit.U3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.Intn(4)))
		default:
			a, b := rng.Intn(4), rng.Intn(4)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		}
	}
	s := New(4, Model{})
	s.Run(c)
	sv := statevec.New(4, 1)
	sv.ApplyCircuit(c)
	probs := s.Probabilities()
	for i, a := range sv.Amplitudes() {
		want := real(a)*real(a) + imag(a)*imag(a)
		if math.Abs(probs[i]-want) > eps {
			t.Fatalf("P(%d) = %v, statevec %v", i, probs[i], want)
		}
	}
	if p := s.Purity(); math.Abs(p-1) > eps {
		t.Fatalf("noiseless purity %v, want 1", p)
	}
}

func TestTracePreservedUnderNoise(t *testing.T) {
	s := New(3, Model{GateNoise: []Channel{Depolarizing(0.1), AmplitudeDamping(0.05)}})
	c := circuit.New("bell+", 3)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.CX(1, 2), circuit.T(2))
	s.Run(c)
	if tr := s.Trace(); cmplx.Abs(tr-1) > 1e-8 {
		t.Fatalf("trace drifted to %v", tr)
	}
}

func TestNoiseReducesPurity(t *testing.T) {
	clean := New(2, Model{})
	noisy := New(2, Model{GateNoise: []Channel{Depolarizing(0.2)}})
	c := circuit.New("bell", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1))
	clean.Run(c)
	noisy.Run(c)
	if noisy.Purity() >= clean.Purity()-eps {
		t.Fatalf("noise did not reduce purity: %v vs %v", noisy.Purity(), clean.Purity())
	}
}

func TestFullDepolarizationGivesMaximallyMixed(t *testing.T) {
	s := New(2, Model{})
	h := circuit.H(0)
	s.ApplyGate(&h)
	// Depolarize both qubits hard, several rounds.
	for round := 0; round < 10; round++ {
		s.ApplyChannel(Depolarizing(0.9), 0)
		s.ApplyChannel(Depolarizing(0.9), 1)
	}
	probs := s.Probabilities()
	for i, p := range probs {
		if math.Abs(p-0.25) > 1e-3 {
			t.Fatalf("P(%d) = %v, want 0.25", i, p)
		}
	}
	if pu := s.Purity(); math.Abs(pu-0.25) > 1e-3 {
		t.Fatalf("purity %v, want 1/4", pu)
	}
}

func TestAmplitudeDampingRelaxesToGround(t *testing.T) {
	s := New(1, Model{})
	x := circuit.X(0)
	s.ApplyGate(&x) // |1>
	s.ApplyChannel(AmplitudeDamping(1), 0)
	probs := s.Probabilities()
	if math.Abs(probs[0]-1) > eps || probs[1] > eps {
		t.Fatalf("gamma=1 damping did not relax: %v", probs)
	}
}

func TestBitFlipAnalytic(t *testing.T) {
	p := 0.3
	s := New(1, Model{})
	s.ApplyChannel(BitFlip(p), 0)
	probs := s.Probabilities()
	if math.Abs(probs[1]-p) > eps || math.Abs(probs[0]-(1-p)) > eps {
		t.Fatalf("bit flip p=%v: %v", p, probs)
	}
}

func TestPhaseFlipKillsCoherence(t *testing.T) {
	// |+> under full dephasing has the same diagonal but zero coherence:
	// a following H does NOT restore |0>.
	s := New(1, Model{})
	h := circuit.H(0)
	s.ApplyGate(&h)
	s.ApplyChannel(PhaseFlip(0.5), 0) // p=0.5 is complete dephasing
	s.ApplyGate(&h)
	probs := s.Probabilities()
	if math.Abs(probs[0]-0.5) > eps {
		t.Fatalf("dephased interference: %v", probs)
	}
}

func TestStructuredMixedStateStaysCompact(t *testing.T) {
	// A GHZ density matrix with mild dephasing keeps a small DD — the
	// point of DD-based noise simulation.
	n := 8
	s := New(n, Model{GateNoise: []Channel{PhaseFlip(0.01)}})
	c := circuit.New("ghz", n)
	c.Append(circuit.H(0))
	for q := 1; q < n; q++ {
		c.Append(circuit.CX(q-1, q))
	}
	s.Run(c)
	if size := s.Manager().MSize(s.Rho()); size > 8*n {
		t.Fatalf("noisy GHZ density DD has %d nodes, expected O(n)", size)
	}
	if tr := s.Trace(); cmplx.Abs(tr-1) > 1e-8 {
		t.Fatalf("trace %v", tr)
	}
}

func TestProbabilityOfQubit(t *testing.T) {
	s := New(2, Model{})
	h := circuit.H(1)
	s.ApplyGate(&h)
	if p := s.ProbabilityOfQubit(1); math.Abs(p-0.5) > eps {
		t.Fatalf("P(q1) = %v", p)
	}
	if p := s.ProbabilityOfQubit(0); p > eps {
		t.Fatalf("P(q0) = %v", p)
	}
}

func TestBadChannelParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { Depolarizing(-0.1) },
		func() { AmplitudeDamping(1.5) },
		func() { PhaseFlip(2) },
		func() { BitFlip(-1) },
		func() { New(0, Model{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad parameter accepted")
				}
			}()
			f()
		}()
	}
}

func TestKrausViaDDMatchesDenseReference(t *testing.T) {
	// Cross-check the DD channel application against a dense density
	// matrix computation on 3 qubits.
	rng := rand.New(rand.NewSource(8))
	n := 3
	s := New(n, Model{})
	c := circuit.New("prep", n)
	for i := 0; i < 8; i++ {
		c.Append(circuit.U3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.Intn(n)))
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			c.Append(circuit.CX(a, b))
		}
	}
	s.Run(c)
	// Dense reference: rho = |psi><psi| then the channel on qubit 1.
	sv := statevec.New(n, 1)
	sv.ApplyCircuit(c)
	amps := sv.Amplitudes()
	dim := 1 << uint(n)
	rho := make([][]complex128, dim)
	for i := range rho {
		rho[i] = make([]complex128, dim)
		for j := 0; j < dim; j++ {
			rho[i][j] = amps[i] * cmplx.Conj(amps[j])
		}
	}
	ch := AmplitudeDamping(0.37)
	q := 1
	dense := applyChannelDense(rho, ch, q, n)
	s.ApplyChannel(ch, q)
	got := s.Manager().ToDense(s.Rho(), n)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if cmplx.Abs(got[i][j]-dense[i][j]) > 1e-8 {
				t.Fatalf("rho[%d][%d] = %v, dense %v", i, j, got[i][j], dense[i][j])
			}
		}
	}
}

func applyChannelDense(rho [][]complex128, ch Channel, q, n int) [][]complex128 {
	dim := len(rho)
	out := make([][]complex128, dim)
	for i := range out {
		out[i] = make([]complex128, dim)
	}
	for _, k := range ch.Kraus {
		// Full operator K on qubit q.
		K := make([][]complex128, dim)
		for r := range K {
			K[r] = make([]complex128, dim)
			for c := 0; c < dim; c++ {
				if r&^(1<<uint(q)) == c&^(1<<uint(q)) {
					K[r][c] = k[r>>uint(q)&1][c>>uint(q)&1]
				}
			}
		}
		// out += K rho K†
		tmp := make([][]complex128, dim)
		for i := range tmp {
			tmp[i] = make([]complex128, dim)
			for j := 0; j < dim; j++ {
				var acc complex128
				for l := 0; l < dim; l++ {
					acc += K[i][l] * rho[l][j]
				}
				tmp[i][j] = acc
			}
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				var acc complex128
				for l := 0; l < dim; l++ {
					acc += tmp[i][l] * cmplx.Conj(K[j][l])
				}
				out[i][j] += acc
			}
		}
	}
	return out
}
