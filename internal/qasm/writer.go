package qasm

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"strings"

	"flatdd/internal/circuit"
)

// Write emits a circuit as an OpenQASM 2.0 program on one quantum register
// q[n]. Gates with native qelib1 spellings are emitted directly; gates
// outside qelib1 (iswap, fsim, rzz, the supremacy roots sx/sy/sw, and
// negative controls) are lowered to equivalent qelib1 sequences, so the
// output parses with any OpenQASM 2.0 consumer — including this package's
// own parser (Write∘Parse is semantically the identity; see the round-trip
// tests).
func Write(w io.Writer, c *circuit.Circuit) error {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "// %s: %d qubits, %d gates\n", c.Name, c.Qubits, c.GateCount())
	fmt.Fprintf(&b, "qreg q[%d];\n", c.Qubits)
	for i := range c.Gates {
		if err := writeGate(&b, &c.Gates[i]); err != nil {
			return fmt.Errorf("qasm: gate %d (%s): %w", i, c.Gates[i].Name, err)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ToString renders a circuit to OpenQASM 2.0 source.
func ToString(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}

func writeGate(b *strings.Builder, g *circuit.Gate) error {
	// Negative controls: conjugate with X on those controls.
	var negs []int
	for _, ctl := range g.Controls {
		if ctl.Negative {
			negs = append(negs, ctl.Qubit)
		}
	}
	for _, q := range negs {
		fmt.Fprintf(b, "x q[%d];\n", q)
	}
	if err := writeCore(b, g); err != nil {
		return err
	}
	for _, q := range negs {
		fmt.Fprintf(b, "x q[%d];\n", q)
	}
	return nil
}

func writeCore(b *strings.Builder, g *circuit.Gate) error {
	t := g.Targets
	ctl := make([]int, len(g.Controls))
	for i, c := range g.Controls {
		ctl[i] = c.Qubit
	}
	p := g.Params
	switch g.Name {
	case "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg":
		if len(ctl) == 0 {
			fmt.Fprintf(b, "%s q[%d];\n", g.Name, t[0])
			return nil
		}
	case "rx", "ry", "rz", "p", "u1":
		if len(ctl) == 0 {
			fmt.Fprintf(b, "%s(%s) q[%d];\n", nameOr(g.Name, "u1", "p"), num(p[0]), t[0])
			return nil
		}
	case "u2":
		if len(ctl) == 0 {
			fmt.Fprintf(b, "u2(%s,%s) q[%d];\n", num(p[0]), num(p[1]), t[0])
			return nil
		}
	case "u3":
		if len(ctl) == 0 {
			fmt.Fprintf(b, "u3(%s,%s,%s) q[%d];\n", num(p[0]), num(p[1]), num(p[2]), t[0])
			return nil
		}
	case "swap":
		fmt.Fprintf(b, "swap q[%d],q[%d];\n", t[0], t[1])
		return nil
	case "iswap":
		// iSWAP = fSim(-pi/2, 0); reuse the exact fSim lowering.
		writeFSim(b, -math.Pi/2, 0, t[0], t[1])
		return nil
	case "rzz":
		fmt.Fprintf(b, "cx q[%d],q[%d];\nrz(%s) q[%d];\ncx q[%d],q[%d];\n",
			t[0], t[1], num(p[0]), t[1], t[0], t[1])
		return nil
	case "fsim":
		// fSim(theta, phi) = e^{-i theta (XX+YY)/2} · diag(1,1,1,e^{-i phi}):
		// lower through the standard iSWAP-family decomposition.
		writeFSim(b, p[0], p[1], t[0], t[1])
		return nil
	case "sy":
		// sqrt(Y) = ry(pi/2) up to the global phase e^{i pi/4}.
		fmt.Fprintf(b, "ry(pi/2) q[%d];\n", t[0])
		return nil
	case "sw":
		// sqrt(W) = u3(pi/2, -pi/4, pi/4) up to global phase.
		fmt.Fprintf(b, "u3(pi/2,-pi/4,pi/4) q[%d];\n", t[0])
		return nil
	}
	// Controlled forms.
	switch {
	case len(ctl) == 1:
		switch g.Name {
		case "x", "cx", "mcx":
			fmt.Fprintf(b, "cx q[%d],q[%d];\n", ctl[0], t[0])
			return nil
		case "y", "cy":
			fmt.Fprintf(b, "cy q[%d],q[%d];\n", ctl[0], t[0])
			return nil
		case "z", "cz", "ccz", "mcz":
			fmt.Fprintf(b, "cz q[%d],q[%d];\n", ctl[0], t[0])
			return nil
		case "h", "ch":
			fmt.Fprintf(b, "ch q[%d],q[%d];\n", ctl[0], t[0])
			return nil
		case "p", "u1", "cp", "cu1":
			fmt.Fprintf(b, "cu1(%s) q[%d],q[%d];\n", num(p[0]), ctl[0], t[0])
			return nil
		case "rx", "crx":
			fmt.Fprintf(b, "crx(%s) q[%d],q[%d];\n", num(p[0]), ctl[0], t[0])
			return nil
		case "ry", "cry":
			fmt.Fprintf(b, "cry(%s) q[%d],q[%d];\n", num(p[0]), ctl[0], t[0])
			return nil
		case "rz", "crz":
			fmt.Fprintf(b, "crz(%s) q[%d],q[%d];\n", num(p[0]), ctl[0], t[0])
			return nil
		case "u3", "cu3":
			fmt.Fprintf(b, "cu3(%s,%s,%s) q[%d],q[%d];\n", num(p[0]), num(p[1]), num(p[2]), ctl[0], t[0])
			return nil
		}
	case len(ctl) == 2:
		switch g.Name {
		case "x", "ccx", "mcx":
			fmt.Fprintf(b, "ccx q[%d],q[%d],q[%d];\n", ctl[0], ctl[1], t[0])
			return nil
		case "z", "ccz", "mcz":
			// ccz = H(t) ccx H(t)
			fmt.Fprintf(b, "h q[%d];\nccx q[%d],q[%d],q[%d];\nh q[%d];\n",
				t[0], ctl[0], ctl[1], t[0], t[0])
			return nil
		}
	case len(ctl) > 2 && (g.Name == "x" || g.Name == "mcx"):
		// Multi-controlled X via the standard v-chain needs ancillas; emit
		// the recursive no-ancilla construction instead (exponential in
		// controls, fine for the small fan-ins used here).
		return writeMCX(b, ctl, t[0])
	case len(ctl) > 2 && g.Name == "mcz":
		fmt.Fprintf(b, "h q[%d];\n", t[0])
		if err := writeMCX(b, ctl, t[0]); err != nil {
			return err
		}
		fmt.Fprintf(b, "h q[%d];\n", t[0])
		return nil
	}
	return fmt.Errorf("no qelib1 lowering for %q with %d controls", g.Name, len(ctl))
}

// writeMCX emits a multi-controlled X without ancillas using the Barenco
// recursion C^k(X^a) = C_last(X^{a/2}) · C^{k-1}X(rest, last) ·
// C_last(X^{-a/2}) · C^{k-1}X(rest, last) · C^{k-1}(X^{a/2}), where a
// controlled root-of-X is a Hadamard-conjugated controlled phase:
// C(X^a) = H(t) · cu1(a·pi) · H(t), exactly.
func writeMCX(b *strings.Builder, controls []int, target int) error {
	return writeMCRootX(b, controls, target, 1)
}

// writeMCRootX emits C^k(X^alpha) on the given controls and target.
func writeMCRootX(b *strings.Builder, controls []int, target int, alpha float64) error {
	if len(controls) == 0 {
		return fmt.Errorf("rootX with no controls")
	}
	if len(controls) == 1 {
		cRootX(b, controls[0], target, alpha)
		return nil
	}
	if len(controls) == 2 && alpha == 1 {
		fmt.Fprintf(b, "ccx q[%d],q[%d],q[%d];\n", controls[0], controls[1], target)
		return nil
	}
	last := controls[len(controls)-1]
	rest := controls[:len(controls)-1]
	cRootX(b, last, target, alpha/2)
	if err := writeMCX(b, rest, last); err != nil {
		return err
	}
	cRootX(b, last, target, -alpha/2)
	if err := writeMCX(b, rest, last); err != nil {
		return err
	}
	return writeMCRootX(b, rest, target, alpha/2)
}

// cRootX writes the exactly-controlled X^alpha: H(t) cu1(alpha*pi) H(t).
func cRootX(b *strings.Builder, c, t int, alpha float64) {
	fmt.Fprintf(b, "h q[%d];\ncu1(%s) q[%d],q[%d];\nh q[%d];\n", t, num(alpha*math.Pi), c, t, t)
}

// writeFSim lowers fSim(theta, phi) exactly:
// fSim = [XX+YY interaction] · controlled-phase(-phi).
func writeFSim(b *strings.Builder, theta, phi float64, a, t int) {
	// exp(-i theta (XX+YY)/2) on (a,t):
	//   CX t,a; RX? — use the standard decomposition via RXX/RYY:
	//   = (CX a,t)(RZ? ...). We use:
	//   XX+YY block = CX(t,a) · CRX-like. Concretely:
	//   U = CX(a,t) · H(a)? — simplest exact route: two RZZ-style
	//   conjugations:
	//   exp(-i θ/2 XX) = H⊗H · exp(-i θ/2 ZZ) · H⊗H
	//   exp(-i θ/2 YY) = (SdgH)⊗(SdgH)† conjugation of exp(-i θ/2 ZZ).
	rzz := func(angle string) {
		fmt.Fprintf(b, "cx q[%d],q[%d];\nrz(%s) q[%d];\ncx q[%d],q[%d];\n", a, t, angle, t, a, t)
	}
	th := num(theta)
	// exp(-i θ/2 (XX)):
	fmt.Fprintf(b, "h q[%d];\nh q[%d];\n", a, t)
	rzz(th)
	fmt.Fprintf(b, "h q[%d];\nh q[%d];\n", a, t)
	// exp(-i θ/2 (YY)): conjugate ZZ by S† then H? Rz basis change for Y is
	// HS†: Y = (HS†)† Z (HS†) — apply sdg then h on both.
	fmt.Fprintf(b, "sdg q[%d];\nh q[%d];\nsdg q[%d];\nh q[%d];\n", a, a, t, t)
	rzz(th)
	fmt.Fprintf(b, "h q[%d];\ns q[%d];\nh q[%d];\ns q[%d];\n", a, a, t, t)
	// controlled phase -phi on |11>:
	fmt.Fprintf(b, "cu1(%s) q[%d],q[%d];\n", num(-phi), a, t)
}

func num(v float64) string {
	// Render common multiples of pi exactly for readability.
	for _, d := range []struct {
		val float64
		s   string
	}{
		{math.Pi, "pi"}, {-math.Pi, "-pi"},
		{math.Pi / 2, "pi/2"}, {-math.Pi / 2, "-pi/2"},
		{math.Pi / 4, "pi/4"}, {-math.Pi / 4, "-pi/4"},
		{math.Pi / 6, "pi/6"}, {-math.Pi / 6, "-pi/6"},
		{2 * math.Pi, "2*pi"},
	} {
		if math.Abs(v-d.val) < 1e-15 {
			return d.s
		}
	}
	return fmt.Sprintf("%.17g", v)
}

func nameOr(name, from, to string) string {
	if name == from {
		return to
	}
	return name
}

// globalPhaseFree reports whether two unitaries differ only by a global
// phase (a helper for the writer round-trip tests).
func globalPhaseFree(a, b [][]complex128, tol float64) bool {
	var phase complex128
	for r := range a {
		for c := range a[r] {
			if cmplx.Abs(b[r][c]) > tol {
				phase = a[r][c] / b[r][c]
				goto found
			}
		}
	}
	return true
found:
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for r := range a {
		for c := range a[r] {
			if cmplx.Abs(a[r][c]-phase*b[r][c]) > tol {
				return false
			}
		}
	}
	return true
}
