// Package qasm parses a practical subset of OpenQASM 2.0 into the circuit
// IR, so that real benchmark files (QASMBench, MQT Bench — the suites the
// paper evaluates on) can be fed to every engine in this repository.
//
// Supported: OPENQASM/include headers, multiple qreg/creg declarations,
// the builtin U and CX gates, the full qelib1 standard-gate set, custom
// gate definitions (macro-expanded, with parameter substitution), constant
// parameter expressions (+ - * / ^, parentheses, unary minus, pi, and the
// functions sin/cos/tan/exp/ln/sqrt), whole-register broadcast, barrier
// (ignored) and measure (recorded, since this simulator computes the full
// final state). Not supported: if statements, reset, and opaque gates.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) [ ] { } , ; -> + - * / ^ ==
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// errSyntax is the error type raised by the lexer/parser internals.
type errSyntax struct {
	line int
	msg  string
}

func (e errSyntax) Error() string { return fmt.Sprintf("qasm: line %d: %s", e.line, e.msg) }

func (l *lexer) errorf(format string, args ...any) {
	panic(errSyntax{l.line, fmt.Sprintf(format, args...)})
}

func (l *lexer) next() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], l.line}
	case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
		seenE := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if unicode.IsDigit(rune(ch)) || ch == '.' {
				l.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && !seenE {
				seenE = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		return token{tokNumber, l.src[start:l.pos], l.line}
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				l.errorf("unterminated string")
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			l.errorf("unterminated string")
		}
		l.pos++
		return token{tokString, l.src[start+1 : l.pos-1], l.line}
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{tokSymbol, "->", l.line}
	case c == '=' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '=':
		l.pos += 2
		return token{tokSymbol, "==", l.line}
	case strings.ContainsRune("()[]{},;+-*/^", rune(c)):
		l.pos++
		return token{tokSymbol, string(c), l.line}
	default:
		l.errorf("unexpected character %q", c)
		panic("unreachable")
	}
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

// tokenize scans the whole source (the grammar is small enough that a token
// slice is simpler than a streaming interface).
func tokenize(src string) []token {
	l := newLexer(src)
	var out []token
	for {
		t := l.next()
		out = append(out, t)
		if t.kind == tokEOF {
			return out
		}
	}
}
