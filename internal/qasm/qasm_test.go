package qasm

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"flatdd/internal/statevec"
)

const eps = 1e-9

func TestParseBell(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Qubits != 2 || c.GateCount() != 2 {
		t.Fatalf("qubits=%d gates=%d", c.Qubits, c.GateCount())
	}
	s := statevec.New(2, 1)
	s.ApplyCircuit(c)
	want := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(s.Amplitudes()[0]-want) > eps || cmplx.Abs(s.Amplitudes()[3]-want) > eps {
		t.Fatalf("Bell state wrong: %v", s.Amplitudes())
	}
}

func TestParamExpressions(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg q[1];
rz(pi/2) q[0];
rz(-pi/4) q[0];
rz(2*pi - pi/2) q[0];
rz(pi^2/(3+1)) q[0];
rz(cos(0)) q[0];
rz(sqrt(4)) q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{math.Pi / 2, -math.Pi / 4, 2*math.Pi - math.Pi/2, math.Pi * math.Pi / 4, 1, 2}
	for i, w := range wants {
		if got := c.Gates[i].Params[0]; math.Abs(got-w) > 1e-12 {
			t.Fatalf("param %d = %v, want %v", i, got, w)
		}
	}
}

func TestBroadcast(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg q[4];
h q;
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 4 {
		t.Fatalf("broadcast produced %d gates, want 4", c.GateCount())
	}
	// Two-register broadcast: cx a, b pairs elementwise.
	src2 := `
OPENQASM 2.0;
qreg a[3];
qreg b[3];
cx a, b;
`
	c2, err := Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.GateCount() != 3 || c2.Qubits != 6 {
		t.Fatalf("two-register broadcast: %d gates, %d qubits", c2.GateCount(), c2.Qubits)
	}
	for i := range c2.Gates {
		g := &c2.Gates[i]
		if g.Controls[0].Qubit != i || g.Targets[0] != 3+i {
			t.Fatalf("gate %d pairs %v -> %v", i, g.Controls, g.Targets)
		}
	}
}

func TestCustomGateExpansion(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c {
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate rot(theta) q {
  ry(theta/2) q;
  rz(theta*2) q;
}
qreg q[3];
majority q[0],q[1],q[2];
rot(pi) q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// majority expands to 3 gates, rot to 2.
	if c.GateCount() != 5 {
		t.Fatalf("gates = %d, want 5", c.GateCount())
	}
	if c.Gates[3].Name != "ry" || math.Abs(c.Gates[3].Params[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("rot expansion wrong: %+v", c.Gates[3])
	}
	if c.Gates[4].Name != "rz" || math.Abs(c.Gates[4].Params[0]-2*math.Pi) > 1e-12 {
		t.Fatalf("rot expansion wrong: %+v", c.Gates[4])
	}
}

func TestNestedCustomGates(t *testing.T) {
	src := `
OPENQASM 2.0;
gate inner q { h q; }
gate outer a,b { inner a; cx a,b; inner b; }
qreg q[2];
outer q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 3 {
		t.Fatalf("nested expansion: %d gates", c.GateCount())
	}
}

func TestMultipleQregsFlattened(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg a[2];
qreg b[3];
x a[1];
x b[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Qubits != 5 {
		t.Fatalf("qubits = %d", c.Qubits)
	}
	if c.Gates[0].Targets[0] != 1 || c.Gates[1].Targets[0] != 2 {
		t.Fatalf("flattening wrong: %v %v", c.Gates[0].Targets, c.Gates[1].Targets)
	}
}

func TestBarrierAndComments(t *testing.T) {
	src := `
OPENQASM 2.0;
// a comment
qreg q[2];
h q[0]; // trailing comment
barrier q;
cx q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 2 {
		t.Fatalf("gates = %d", c.GateCount())
	}
}

func TestUAndCXBuiltins(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg q[2];
U(pi/2, 0, pi) q[0];
CX q[0], q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// U(pi/2, 0, pi) is the Hadamard up to global phase; check the Bell
	// correlation P(00)+P(11)=1.
	s := statevec.New(2, 1)
	s.ApplyCircuit(c)
	p := s.Probability(0) + s.Probability(3)
	if math.Abs(p-1) > eps {
		t.Fatalf("U/CX Bell correlation %v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"unknown gate", "qreg q[1]; zz q[0];", "unknown gate"},
		{"unknown qreg", "qreg q[1]; h r[0];", "unknown qreg"},
		{"index out of range", "qreg q[2]; h q[5];", "out of range"},
		{"redeclared qreg", "qreg q[1]; qreg q[2];", "redeclared"},
		{"qreg after gate", "qreg q[1]; h q[0]; qreg r[1];", "after the first gate"},
		{"bad token", "qreg q[1]; h q[0]; @", "unexpected character"},
		{"missing semicolon", "qreg q[1] h q[0];", "expected"},
		{"unterminated gate", "gate foo q { h q;", "unterminated"},
		{"wrong param count", "qreg q[1]; rz q[0];", "unknown gate"},
		{"unsupported if", `creg c[1]; qreg q[1]; if (c==1) x q[0];`, "not supported"},
		{"div by zero", "qreg q[1]; rz(1/0) q[0];", "division by zero"},
		{"unknown param", "qreg q[1]; rz(theta) q[0];", "unknown parameter"},
		{"broadcast mismatch", "qreg a[2]; qreg b[3]; cx a, b;", "mismatched register sizes"},
		{"unterminated string", "include \"qelib1.inc\n;", "unterminated string"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	c, err := Parse("OPENQASM 2.0;\nqreg q[3];\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Qubits != 3 || c.GateCount() != 0 {
		t.Fatalf("qubits=%d gates=%d", c.Qubits, c.GateCount())
	}
}

func TestScientificNotationParams(t *testing.T) {
	c, err := Parse("qreg q[1]; rz(1.5e-2) q[0]; rz(2E3) q[0];")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Gates[0].Params[0]-0.015) > 1e-15 || math.Abs(c.Gates[1].Params[0]-2000) > 1e-9 {
		t.Fatalf("params: %v %v", c.Gates[0].Params[0], c.Gates[1].Params[0])
	}
}

func TestQelib1GateCoverage(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg q[3];
id q[0]; x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0]; t q[0]; tdg q[0];
sx q[0]; sxdg q[0];
rx(0.1) q[0]; ry(0.2) q[0]; rz(0.3) q[0]; u1(0.4) q[0]; u2(0.5,0.6) q[0]; u3(0.7,0.8,0.9) q[0];
p(0.4) q[1];
cx q[0],q[1]; cy q[0],q[1]; cz q[0],q[1]; ch q[0],q[1];
crx(0.1) q[0],q[1]; cry(0.2) q[0],q[1]; crz(0.3) q[0],q[1]; cu1(0.4) q[0],q[1]; cp(0.4) q[0],q[1];
cu3(0.5,0.6,0.7) q[0],q[1];
ccx q[0],q[1],q[2]; ccz q[0],q[1],q[2];
swap q[0],q[1]; iswap q[0],q[1]; cswap q[0],q[1],q[2]; rzz(0.2) q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.New(3, 1)
	s.ApplyCircuit(c)
	if math.Abs(s.Norm()-1) > eps {
		t.Fatalf("norm after all gates: %v", s.Norm())
	}
}

func TestRecursiveGateDefinitionRejected(t *testing.T) {
	src := "gate g q { g q; } qreg r[1]; g r[0];"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("recursive gate definition accepted")
	}
	if !strings.Contains(err.Error(), "too deep") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMutuallyUsableGateDefinitions(t *testing.T) {
	// Legal forward-only nesting still works after the depth guard.
	src := `
gate a q { h q; }
gate b q { a q; a q; }
gate c q { b q; a q; }
qreg r[1];
c r[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 3 {
		t.Fatalf("gates = %d, want 3", c.GateCount())
	}
}
