package qasm_test

import (
	"fmt"
	"os"

	"flatdd/internal/circuit"
	"flatdd/internal/qasm"
)

// ExampleParse parses a program with a custom gate definition.
func ExampleParse() {
	c, err := qasm.Parse(`
OPENQASM 2.0;
include "qelib1.inc";
gate bell a, b { h a; cx a, b; }
qreg q[4];
bell q[0], q[1];
bell q[2], q[3];
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d qubits, %d gates\n", c.Qubits, c.GateCount())
	// Output:
	// 4 qubits, 4 gates
}

// ExampleWrite emits a circuit as OpenQASM 2.0.
func ExampleWrite() {
	c := circuit.New("demo", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.RZ(0.25, 1))
	if err := qasm.Write(os.Stdout, c); err != nil {
		fmt.Println(err)
	}
	// Output:
	// OPENQASM 2.0;
	// include "qelib1.inc";
	// // demo: 2 qubits, 3 gates
	// qreg q[2];
	// h q[0];
	// cx q[0],q[1];
	// rz(0.25) q[1];
}
