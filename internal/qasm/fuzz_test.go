package qasm

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary source to the parser; any input must either
// produce a valid circuit or a clean error — never a panic or a circuit
// that fails validation. Run with `go test -fuzz=FuzzParse ./internal/qasm`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"qreg q[1]; rz(pi/2) q[0];",
		"gate foo(a) x,y { cx x,y; rz(a) y; } qreg r[3]; foo(0.5) r[0],r[2];",
		"qreg a[2]; qreg b[2]; cx a,b;",
		"creg c[2]; qreg q[2]; measure q[0] -> c[0];",
		"qreg q[1]; u3(1,2,3) q[0]; // comment",
		"include \"qelib1.inc\";",
		"qreg q[1]; rz(sin(cos(pi))) q[0];",
		"barrier q; qreg q[1];",
		"qreg q[999999999];",
		"gate g q { g q; }", // direct recursion in the body
		// A deep-entangling supremacy-style block: H layer, then brick-work
		// CZ/T/sqrt-X layers across the register. Parses to the kind of
		// irregular circuit the parallel DD phase splits into wide frontiers.
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[5];\n" +
			"h q[0]; h q[1]; h q[2]; h q[3]; h q[4];\n" +
			"cz q[0],q[1]; cz q[2],q[3]; t q[4];\n" +
			"rx(pi/2) q[0]; t q[1]; ry(pi/2) q[2]; t q[3]; cz q[3],q[4];\n" +
			"cz q[1],q[2]; t q[0]; rx(pi/2) q[3]; t q[2];\n" +
			"cz q[0],q[1]; cz q[2],q[3]; ry(pi/2) q[4];\n" +
			"h q[0]; h q[1]; h q[2]; h q[3]; h q[4];\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Guard against pathological blowup from broadcast over giant
		// registers: cap the input size.
		if len(src) > 4096 {
			return
		}
		c, err := Parse(src)
		if err != nil {
			if !strings.Contains(err.Error(), "qasm:") {
				t.Fatalf("error without package prefix: %v", err)
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit without error")
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser produced invalid circuit: %v", verr)
		}
	})
}
