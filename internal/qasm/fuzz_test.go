package qasm

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary source to the parser; any input must either
// produce a valid circuit or a clean error — never a panic or a circuit
// that fails validation. Run with `go test -fuzz=FuzzParse ./internal/qasm`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"qreg q[1]; rz(pi/2) q[0];",
		"gate foo(a) x,y { cx x,y; rz(a) y; } qreg r[3]; foo(0.5) r[0],r[2];",
		"qreg a[2]; qreg b[2]; cx a,b;",
		"creg c[2]; qreg q[2]; measure q[0] -> c[0];",
		"qreg q[1]; u3(1,2,3) q[0]; // comment",
		"include \"qelib1.inc\";",
		"qreg q[1]; rz(sin(cos(pi))) q[0];",
		"barrier q; qreg q[1];",
		"qreg q[999999999];",
		"gate g q { g q; }", // direct recursion in the body
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Guard against pathological blowup from broadcast over giant
		// registers: cap the input size.
		if len(src) > 4096 {
			return
		}
		c, err := Parse(src)
		if err != nil {
			if !strings.Contains(err.Error(), "qasm:") {
				t.Fatalf("error without package prefix: %v", err)
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit without error")
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser produced invalid circuit: %v", verr)
		}
	})
}
