package qasm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/statevec"
)

// statesEqualUpToPhase compares two state vectors modulo a global phase
// (lowerings such as sy -> ry(pi/2) legitimately drop global phases).
func statesEqualUpToPhase(a, b []complex128, tol float64) bool {
	var phase complex128
	for i := range a {
		if cmplx.Abs(b[i]) > tol {
			phase = a[i] / b[i]
			break
		}
	}
	if phase == 0 || math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-phase*b[i]) > tol {
			return false
		}
	}
	return true
}

// roundTrip writes the circuit to QASM, parses it back, and checks that
// both versions act identically on a random input state.
func roundTrip(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	src, err := ToString(c)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := Parse(src)
	if err != nil {
		t.Fatalf("parse of emitted QASM failed: %v\n%s", err, src)
	}
	if parsed.Qubits != c.Qubits {
		t.Fatalf("qubits %d -> %d", c.Qubits, parsed.Qubits)
	}
	// Random (but fixed) input state to catch phase/row mixups that |0..0>
	// would hide.
	rng := rand.New(rand.NewSource(123))
	amps := make([]complex128, 1<<uint(c.Qubits))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	s1 := statevec.FromAmplitudes(append([]complex128(nil), amps...), 1)
	s1.ApplyCircuit(c)
	s2 := statevec.FromAmplitudes(append([]complex128(nil), amps...), 1)
	s2.ApplyCircuit(parsed)
	if !statesEqualUpToPhase(s1.Amplitudes(), s2.Amplitudes(), 1e-8) {
		t.Fatalf("round trip changed semantics for %s:\n%s", c.Name, src)
	}
}

func one(name string, n int, g ...circuit.Gate) *circuit.Circuit {
	c := circuit.New(name, n)
	c.Append(g...)
	return c
}

func TestWriterRoundTripSingleGates(t *testing.T) {
	cases := []*circuit.Circuit{
		one("h", 1, circuit.H(0)),
		one("paulis", 2, circuit.X(0), circuit.Y(1), circuit.Z(0)),
		one("phases", 1, circuit.S(0), circuit.Sdg(0), circuit.T(0), circuit.Tdg(0)),
		one("roots", 1, circuit.SX(0), circuit.SXdg(0)),
		one("sy", 1, circuit.SY(0)),
		one("sw", 1, circuit.SW(0)),
		one("rot", 1, circuit.RX(0.7, 0), circuit.RY(-1.1, 0), circuit.RZ(2.2, 0)),
		one("u", 1, circuit.P(0.3, 0), circuit.U2(0.4, 0.5, 0), circuit.U3(0.6, 0.7, 0.8, 0)),
		one("id", 1, circuit.I(0)),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestWriterRoundTripControlledGates(t *testing.T) {
	cases := []*circuit.Circuit{
		one("cx", 2, circuit.CX(0, 1)),
		one("cx-rev", 2, circuit.CX(1, 0)),
		one("cy", 2, circuit.CY(0, 1)),
		one("cz", 2, circuit.CZ(0, 1)),
		one("ch", 2, circuit.CH(0, 1)),
		one("cp", 2, circuit.CP(0.9, 0, 1)),
		one("crx", 2, circuit.CRX(0.4, 0, 1)),
		one("cry", 2, circuit.CRY(0.5, 0, 1)),
		one("crz", 2, circuit.CRZ(0.6, 0, 1)),
		one("cu3", 2, circuit.CU3(0.1, 0.2, 0.3, 0, 1)),
		one("ccx", 3, circuit.CCX(0, 1, 2)),
		one("ccz", 3, circuit.CCZ(0, 1, 2)),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestWriterRoundTripMultiControl(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		ctrls := make([]int, k)
		for i := range ctrls {
			ctrls[i] = i
		}
		c := one("mcx", k+1, circuit.MCX(ctrls, k))
		roundTrip(t, c)
	}
	// Multi-controlled Z (Grover's oracle form).
	c := circuit.New("mcz", 4)
	c.Append(circuit.Gate{Name: "mcz", Targets: []int{3},
		Controls: []circuit.Control{{Qubit: 0}, {Qubit: 1}, {Qubit: 2}},
		U:        [][]complex128{{1, 0}, {0, -1}}})
	roundTrip(t, c)
}

func TestWriterRoundTripNegativeControls(t *testing.T) {
	c := circuit.New("negctl", 2)
	c.Append(circuit.Gate{Name: "x", Targets: []int{1},
		Controls: []circuit.Control{{Qubit: 0, Negative: true}},
		U:        circuit.X(1).U})
	roundTrip(t, c)
}

func TestWriterRoundTripTwoQubitSpecials(t *testing.T) {
	cases := []*circuit.Circuit{
		one("swap", 2, circuit.SWAP(0, 1)),
		one("iswap", 2, circuit.ISwap(0, 1)),
		one("rzz", 2, circuit.RZZ(0.8, 0, 1)),
		one("fsim", 2, circuit.FSim(math.Pi/2, math.Pi/6, 0, 1)),
		one("fsim2", 2, circuit.FSim(0.3, -0.7, 1, 0)),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestWriterRoundTripWholeCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	c := circuit.New("mixed", 5)
	for i := 0; i < 40; i++ {
		switch rng.Intn(6) {
		case 0:
			c.Append(circuit.H(rng.Intn(5)))
		case 1:
			c.Append(circuit.U3(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.Intn(5)))
		case 2:
			a, b := rng.Intn(5), rng.Intn(5)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		case 3:
			a, b := rng.Intn(5), rng.Intn(5)
			if a != b {
				c.Append(circuit.FSim(rng.NormFloat64(), rng.NormFloat64(), a, b))
			}
		case 4:
			c.Append(circuit.SW(rng.Intn(5)))
		default:
			a, b := rng.Intn(5), rng.Intn(5)
			if a != b {
				c.Append(circuit.CP(rng.NormFloat64(), a, b))
			}
		}
	}
	roundTrip(t, c)
}

func TestWriterHeaderAndShape(t *testing.T) {
	c := one("hdr", 3, circuit.H(0), circuit.CX(0, 2))
	src, err := ToString(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OPENQASM 2.0;", "include \"qelib1.inc\";", "qreg q[3];", "h q[0];", "cx q[0],q[2];"} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted QASM missing %q:\n%s", want, src)
		}
	}
}

func TestWriterNumFormatting(t *testing.T) {
	if num(math.Pi) != "pi" || num(-math.Pi/2) != "-pi/2" || num(math.Pi/6) != "pi/6" {
		t.Fatal("pi multiples not pretty-printed")
	}
	got := num(0.12345)
	if !strings.HasPrefix(got, "0.12345") {
		t.Fatalf("plain float formatting: %s", got)
	}
}

func TestGlobalPhaseFreeHelper(t *testing.T) {
	a := [][]complex128{{1i, 0}, {0, 1i}}
	b := [][]complex128{{1, 0}, {0, 1}}
	if !globalPhaseFree(a, b, 1e-12) {
		t.Fatal("i*I vs I should be phase-equal")
	}
	cMat := [][]complex128{{1, 0}, {0, -1}}
	if globalPhaseFree(cMat, b, 1e-12) {
		t.Fatal("Z vs I should differ")
	}
}
