package qasm

import (
	"math"
	"path/filepath"
	"testing"

	"flatdd/internal/statevec"
)

func TestParseFileBell(t *testing.T) {
	c, err := ParseFile(filepath.Join("testdata", "bell.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "bell.qasm" || c.Qubits != 2 || c.GateCount() != 2 {
		t.Fatalf("bell.qasm parsed wrong: %s %d qubits %d gates", c.Name, c.Qubits, c.GateCount())
	}
}

func TestParseFileAdderComputes(t *testing.T) {
	c, err := ParseFile(filepath.Join("testdata", "adder4.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Qubits != 6 {
		t.Fatalf("qubits = %d", c.Qubits)
	}
	s := statevec.New(6, 1)
	s.ApplyCircuit(c)
	// a=1 (a0), b=3 (b0,b1): layout [cin, a0, a1, b0, b1, cout];
	// qregs flatten in declaration order: cin=0, a=1..2, b=3..4, cout=5.
	// Cuccaro leaves a unchanged and b <- a+b = 4 = 0b100 -> b0=0,b1=0,cout=1.
	want := uint64(0)
	want |= 1 << 1 // a0 = 1
	want |= 1 << 5 // carry out
	if p := s.Probability(want); math.Abs(p-1) > 1e-9 {
		t.Fatalf("adder file result wrong: P(%b) = %v", want, p)
	}
}

func TestParseFileVQEFragment(t *testing.T) {
	c, err := ParseFile(filepath.Join("testdata", "vqe_frag.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	// 4 ry + 3 cx + 4 broadcast rz + u3 + cu1 = 13 gates.
	if c.GateCount() != 13 {
		t.Fatalf("gates = %d, want 13", c.GateCount())
	}
	s := statevec.New(4, 1)
	s.ApplyCircuit(c)
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm %v", s.Norm())
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile(filepath.Join("testdata", "nope.qasm")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseFileQFTMatchesGenerator(t *testing.T) {
	c, err := ParseFile(filepath.Join("testdata", "qft4.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	// QFT|0> is the uniform superposition.
	s := statevec.New(4, 1)
	s.ApplyCircuit(c)
	want := 0.25
	for i, a := range s.Amplitudes() {
		p := real(a)*real(a) + imag(a)*imag(a)
		if math.Abs(p-want*want) > 1e-9 {
			t.Fatalf("QFT|0> P(%d) = %v", i, p)
		}
	}
}
