// 4-qubit quantum Fourier transform (MQT-Bench style).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[3];
cu1(pi/2) q[2],q[3];
cu1(pi/4) q[1],q[3];
cu1(pi/8) q[0],q[3];
h q[2];
cu1(pi/2) q[1],q[2];
cu1(pi/4) q[0],q[2];
h q[1];
cu1(pi/2) q[0],q[1];
h q[0];
swap q[0],q[3];
swap q[1],q[2];
