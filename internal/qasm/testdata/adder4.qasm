// 4-bit ripple-carry adder fragment in the QASMBench style,
// with a custom MAJ/UMA gate pair.
OPENQASM 2.0;
include "qelib1.inc";
gate maj a,b,c {
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate uma a,b,c {
  ccx a,b,c;
  cx c,a;
  cx a,b;
}
qreg cin[1];
qreg a[2];
qreg b[2];
qreg cout[1];
x a[0];
x b[0];
x b[1];
maj cin[0],b[0],a[0];
maj a[0],b[1],a[1];
cx a[1],cout[0];
uma a[0],b[1],a[1];
uma cin[0],b[0],a[0];
