package qasm

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"flatdd/internal/circuit"
)

// Parse parses OpenQASM 2.0 source into a circuit.
func Parse(src string) (c *circuit.Circuit, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(errSyntax); ok {
				c, err = nil, se
				return
			}
			panic(r)
		}
	}()
	p := &parser{
		toks:  tokenize(src),
		regs:  make(map[string]qreg),
		cregs: make(map[string]int),
		defs:  make(map[string]*gateDef),
	}
	p.parseProgram()
	if p.circ == nil {
		p.circ = circuit.New("qasm", p.nQubits)
	}
	return p.circ, nil
}

// ParseFile reads and parses one .qasm file.
func ParseFile(path string) (*circuit.Circuit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("qasm: %w", err)
	}
	c, err := Parse(string(data))
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	c.Name = name
	return c, nil
}

type qreg struct {
	offset int
	size   int
}

type gateDef struct {
	name   string
	params []string
	qargs  []string
	body   []gateStmt
	line   int
}

type gateStmt struct {
	name   string
	params []exprNode
	qargs  []string // names from the enclosing definition's qargs
	line   int
}

type parser struct {
	toks []token
	pos  int

	regs    map[string]qreg
	nQubits int
	cregs   map[string]int
	defs    map[string]*gateDef

	circ     *circuit.Circuit
	measures int
	depth    int // gate-expansion recursion depth
}

// maxExpandDepth bounds custom-gate macro expansion; definitions cannot be
// legitimately nested deeper (a definition can only use earlier gates, so
// depth is bounded by the definition count — but malformed input could
// still recurse through itself).
const maxExpandDepth = 256

func (p *parser) cur() token  { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(line int, format string, args ...any) {
	panic(errSyntax{line, fmt.Sprintf(format, args...)})
}

func (p *parser) expectSymbol(s string) token {
	t := p.advance()
	if t.kind != tokSymbol || t.text != s {
		p.errorf(t.line, "expected %q, found %s", s, t)
	}
	return t
}

func (p *parser) expectIdent() token {
	t := p.advance()
	if t.kind != tokIdent {
		p.errorf(t.line, "expected identifier, found %s", t)
	}
	return t
}

func (p *parser) expectNumber() token {
	t := p.advance()
	if t.kind != tokNumber {
		p.errorf(t.line, "expected number, found %s", t)
	}
	return t
}

func (p *parser) parseProgram() {
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return
		}
		if t.kind != tokIdent {
			p.errorf(t.line, "expected statement, found %s", t)
		}
		switch t.text {
		case "OPENQASM":
			p.advance()
			p.expectNumber()
			p.expectSymbol(";")
		case "include":
			p.advance()
			inc := p.advance()
			if inc.kind != tokString {
				p.errorf(inc.line, "expected include file name, found %s", inc)
			}
			// qelib1.inc gates are built in; other includes are ignored.
			p.expectSymbol(";")
		case "qreg":
			p.parseQreg()
		case "creg":
			p.parseCreg()
		case "gate":
			p.parseGateDef()
		case "barrier":
			p.advance()
			for p.cur().kind != tokEOF && !(p.cur().kind == tokSymbol && p.cur().text == ";") {
				p.advance()
			}
			p.expectSymbol(";")
		case "measure":
			p.parseMeasure()
		case "opaque", "if", "reset":
			p.errorf(t.line, "%q statements are not supported", t.text)
		default:
			p.parseApplication()
		}
	}
}

func (p *parser) parseQreg() {
	kw := p.advance()
	name := p.expectIdent()
	p.expectSymbol("[")
	size := p.expectNumber()
	p.expectSymbol("]")
	p.expectSymbol(";")
	if p.circ != nil {
		p.errorf(kw.line, "qreg %s declared after the first gate", name.text)
	}
	if _, ok := p.regs[name.text]; ok {
		p.errorf(name.line, "qreg %s redeclared", name.text)
	}
	n := atoiTok(p, size)
	if n < 1 {
		p.errorf(size.line, "qreg %s has size %d", name.text, n)
	}
	p.regs[name.text] = qreg{offset: p.nQubits, size: n}
	p.nQubits += n
}

func (p *parser) parseCreg() {
	p.advance()
	name := p.expectIdent()
	p.expectSymbol("[")
	size := p.expectNumber()
	p.expectSymbol("]")
	p.expectSymbol(";")
	p.cregs[name.text] = atoiTok(p, size)
}

func atoiTok(p *parser, t token) int {
	n := 0
	for _, c := range t.text {
		if c < '0' || c > '9' {
			p.errorf(t.line, "expected integer, found %q", t.text)
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			p.errorf(t.line, "integer %q too large", t.text)
		}
	}
	return n
}

// parseGateDef parses `gate name(p1,p2) q1,q2 { ... }`.
func (p *parser) parseGateDef() {
	kw := p.advance()
	name := p.expectIdent()
	if _, ok := p.defs[name.text]; ok {
		p.errorf(name.line, "gate %s redefined", name.text)
	}
	def := &gateDef{name: name.text, line: kw.line}
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		if !(p.cur().kind == tokSymbol && p.cur().text == ")") {
			for {
				def.params = append(def.params, p.expectIdent().text)
				if p.cur().kind == tokSymbol && p.cur().text == "," {
					p.advance()
					continue
				}
				break
			}
		}
		p.expectSymbol(")")
	}
	for {
		def.qargs = append(def.qargs, p.expectIdent().text)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	p.expectSymbol("{")
	for !(p.cur().kind == tokSymbol && p.cur().text == "}") {
		if p.cur().kind == tokEOF {
			p.errorf(kw.line, "unterminated gate body for %s", name.text)
		}
		if p.cur().kind == tokIdent && p.cur().text == "barrier" {
			for !(p.cur().kind == tokSymbol && p.cur().text == ";") {
				p.advance()
			}
			p.advance()
			continue
		}
		def.body = append(def.body, p.parseGateStmt(def))
	}
	p.expectSymbol("}")
	p.defs[name.text] = def
}

// parseGateStmt parses one application inside a gate body.
func (p *parser) parseGateStmt(def *gateDef) gateStmt {
	name := p.expectIdent()
	st := gateStmt{name: name.text, line: name.line}
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		if !(p.cur().kind == tokSymbol && p.cur().text == ")") {
			for {
				st.params = append(st.params, p.parseExpr(def.params))
				if p.cur().kind == tokSymbol && p.cur().text == "," {
					p.advance()
					continue
				}
				break
			}
		}
		p.expectSymbol(")")
	}
	for {
		q := p.expectIdent()
		found := false
		for _, a := range def.qargs {
			if a == q.text {
				found = true
				break
			}
		}
		if !found {
			p.errorf(q.line, "unknown qubit argument %s in gate %s", q.text, def.name)
		}
		st.qargs = append(st.qargs, q.text)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	p.expectSymbol(";")
	return st
}

func (p *parser) parseMeasure() {
	p.advance()
	p.parseQubitArg() // side effect: validates the register reference
	p.expectSymbol("->")
	name := p.expectIdent()
	if _, ok := p.cregs[name.text]; !ok {
		p.errorf(name.line, "unknown creg %s", name.text)
	}
	if p.cur().kind == tokSymbol && p.cur().text == "[" {
		p.advance()
		p.expectNumber()
		p.expectSymbol("]")
	}
	p.expectSymbol(";")
	p.measures++
}

// qubitArg is either one concrete qubit or a whole register (broadcast).
type qubitArg struct {
	reg   qreg
	index int // -1 for whole register
	line  int
}

func (p *parser) parseQubitArg() qubitArg {
	name := p.expectIdent()
	r, ok := p.regs[name.text]
	if !ok {
		p.errorf(name.line, "unknown qreg %s", name.text)
	}
	arg := qubitArg{reg: r, index: -1, line: name.line}
	if p.cur().kind == tokSymbol && p.cur().text == "[" {
		p.advance()
		idx := p.expectNumber()
		p.expectSymbol("]")
		i := atoiTok(p, idx)
		if i >= r.size {
			p.errorf(idx.line, "index %d out of range for qreg %s[%d]", i, name.text, r.size)
		}
		arg.index = i
	}
	return arg
}

// parseApplication parses a top-level gate application, resolving
// broadcast over whole registers.
func (p *parser) parseApplication() {
	name := p.expectIdent()
	var params []float64
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		if !(p.cur().kind == tokSymbol && p.cur().text == ")") {
			for {
				e := p.parseExpr(nil)
				params = append(params, e.eval(p, nil))
				if p.cur().kind == tokSymbol && p.cur().text == "," {
					p.advance()
					continue
				}
				break
			}
		}
		p.expectSymbol(")")
	}
	var args []qubitArg
	for {
		args = append(args, p.parseQubitArg())
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	p.expectSymbol(";")

	if p.circ == nil {
		p.circ = circuit.New("qasm", p.nQubits)
	}

	// Broadcast: every whole-register argument must have the same size.
	bsize := 1
	for _, a := range args {
		if a.index < 0 {
			if bsize != 1 && bsize != a.reg.size {
				p.errorf(a.line, "mismatched register sizes in broadcast")
			}
			bsize = a.reg.size
		}
	}
	for k := 0; k < bsize; k++ {
		qubits := make([]int, len(args))
		for i, a := range args {
			if a.index < 0 {
				qubits[i] = a.reg.offset + k
			} else {
				qubits[i] = a.reg.offset + a.index
			}
		}
		p.applyNamed(name.text, params, qubits, name.line)
	}
}

// applyNamed resolves a gate name against the builtin set or a custom
// definition and appends the result to the circuit.
func (p *parser) applyNamed(name string, params []float64, qubits []int, line int) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExpandDepth {
		p.errorf(line, "gate expansion too deep (recursive definition of %s?)", name)
	}
	if gs, ok := builtinGate(name, params, qubits); ok {
		for i := range gs {
			if err := gs[i].Validate(p.circ.Qubits); err != nil {
				p.errorf(line, "%v", err)
			}
		}
		p.circ.Append(gs...)
		return
	}
	def, ok := p.defs[name]
	if !ok {
		p.errorf(line, "unknown gate %s", name)
	}
	if len(params) != len(def.params) {
		p.errorf(line, "gate %s expects %d parameters, got %d", name, len(def.params), len(params))
	}
	if len(qubits) != len(def.qargs) {
		p.errorf(line, "gate %s expects %d qubits, got %d", name, len(def.qargs), len(qubits))
	}
	env := make(map[string]float64, len(params))
	for i, pn := range def.params {
		env[pn] = params[i]
	}
	qmap := make(map[string]int, len(qubits))
	for i, qn := range def.qargs {
		qmap[qn] = qubits[i]
	}
	for _, st := range def.body {
		subParams := make([]float64, len(st.params))
		for i, e := range st.params {
			subParams[i] = e.eval(p, env)
		}
		subQubits := make([]int, len(st.qargs))
		for i, qn := range st.qargs {
			subQubits[i] = qmap[qn]
		}
		p.applyNamed(st.name, subParams, subQubits, st.line)
	}
}

// builtinGate maps qelib1 (plus the OpenQASM builtins U and CX) onto the
// circuit gate library. It returns false for unknown names.
func builtinGate(name string, params []float64, qubits []int) ([]circuit.Gate, bool) {
	need := func(np, nq int) bool { return len(params) == np && len(qubits) == nq }
	switch name {
	case "U", "u", "u3":
		if need(3, 1) {
			return []circuit.Gate{circuit.U3(params[0], params[1], params[2], qubits[0])}, true
		}
	case "u2":
		if need(2, 1) {
			return []circuit.Gate{circuit.U2(params[0], params[1], qubits[0])}, true
		}
	case "u1", "p", "phase":
		if need(1, 1) {
			return []circuit.Gate{circuit.P(params[0], qubits[0])}, true
		}
	case "CX", "cx":
		if need(0, 2) {
			return []circuit.Gate{circuit.CX(qubits[0], qubits[1])}, true
		}
	case "id":
		if need(0, 1) {
			return []circuit.Gate{circuit.I(qubits[0])}, true
		}
	case "x":
		if need(0, 1) {
			return []circuit.Gate{circuit.X(qubits[0])}, true
		}
	case "y":
		if need(0, 1) {
			return []circuit.Gate{circuit.Y(qubits[0])}, true
		}
	case "z":
		if need(0, 1) {
			return []circuit.Gate{circuit.Z(qubits[0])}, true
		}
	case "h":
		if need(0, 1) {
			return []circuit.Gate{circuit.H(qubits[0])}, true
		}
	case "s":
		if need(0, 1) {
			return []circuit.Gate{circuit.S(qubits[0])}, true
		}
	case "sdg":
		if need(0, 1) {
			return []circuit.Gate{circuit.Sdg(qubits[0])}, true
		}
	case "t":
		if need(0, 1) {
			return []circuit.Gate{circuit.T(qubits[0])}, true
		}
	case "tdg":
		if need(0, 1) {
			return []circuit.Gate{circuit.Tdg(qubits[0])}, true
		}
	case "sx":
		if need(0, 1) {
			return []circuit.Gate{circuit.SX(qubits[0])}, true
		}
	case "sxdg":
		if need(0, 1) {
			return []circuit.Gate{circuit.SXdg(qubits[0])}, true
		}
	case "rx":
		if need(1, 1) {
			return []circuit.Gate{circuit.RX(params[0], qubits[0])}, true
		}
	case "ry":
		if need(1, 1) {
			return []circuit.Gate{circuit.RY(params[0], qubits[0])}, true
		}
	case "rz":
		if need(1, 1) {
			return []circuit.Gate{circuit.RZ(params[0], qubits[0])}, true
		}
	case "cy":
		if need(0, 2) {
			return []circuit.Gate{circuit.CY(qubits[0], qubits[1])}, true
		}
	case "cz":
		if need(0, 2) {
			return []circuit.Gate{circuit.CZ(qubits[0], qubits[1])}, true
		}
	case "ch":
		if need(0, 2) {
			return []circuit.Gate{circuit.CH(qubits[0], qubits[1])}, true
		}
	case "crx":
		if need(1, 2) {
			return []circuit.Gate{circuit.CRX(params[0], qubits[0], qubits[1])}, true
		}
	case "cry":
		if need(1, 2) {
			return []circuit.Gate{circuit.CRY(params[0], qubits[0], qubits[1])}, true
		}
	case "crz":
		if need(1, 2) {
			return []circuit.Gate{circuit.CRZ(params[0], qubits[0], qubits[1])}, true
		}
	case "cu1", "cp":
		if need(1, 2) {
			return []circuit.Gate{circuit.CP(params[0], qubits[0], qubits[1])}, true
		}
	case "cu3":
		if need(3, 2) {
			return []circuit.Gate{circuit.CU3(params[0], params[1], params[2], qubits[0], qubits[1])}, true
		}
	case "ccx":
		if need(0, 3) {
			return []circuit.Gate{circuit.CCX(qubits[0], qubits[1], qubits[2])}, true
		}
	case "ccz":
		if need(0, 3) {
			return []circuit.Gate{circuit.CCZ(qubits[0], qubits[1], qubits[2])}, true
		}
	case "swap":
		if need(0, 2) {
			return []circuit.Gate{circuit.SWAP(qubits[0], qubits[1])}, true
		}
	case "iswap":
		if need(0, 2) {
			return []circuit.Gate{circuit.ISwap(qubits[0], qubits[1])}, true
		}
	case "cswap":
		if need(0, 3) {
			return circuit.CSwap(qubits[0], qubits[1], qubits[2]), true
		}
	case "rzz":
		if need(1, 2) {
			return []circuit.Gate{circuit.RZZ(params[0], qubits[0], qubits[1])}, true
		}
	}
	return nil, false
}

// Expression AST.

type exprNode interface {
	eval(p *parser, env map[string]float64) float64
}

type numNode float64

func (n numNode) eval(*parser, map[string]float64) float64 { return float64(n) }

type identNode struct {
	name string
	line int
}

func (n identNode) eval(p *parser, env map[string]float64) float64 {
	if n.name == "pi" {
		return math.Pi
	}
	if v, ok := env[n.name]; ok {
		return v
	}
	p.errorf(n.line, "unknown parameter %s", n.name)
	return 0
}

type unaryNode struct {
	op string
	x  exprNode
}

func (n unaryNode) eval(p *parser, env map[string]float64) float64 {
	v := n.x.eval(p, env)
	if n.op == "-" {
		return -v
	}
	return v
}

type binNode struct {
	op   string
	l, r exprNode
	line int
}

func (n binNode) eval(p *parser, env map[string]float64) float64 {
	a := n.l.eval(p, env)
	b := n.r.eval(p, env)
	switch n.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		if b == 0 {
			p.errorf(n.line, "division by zero in parameter expression")
		}
		return a / b
	case "^":
		return math.Pow(a, b)
	}
	p.errorf(n.line, "bad operator %q", n.op)
	return 0
}

type callNode struct {
	fn   string
	x    exprNode
	line int
}

func (n callNode) eval(p *parser, env map[string]float64) float64 {
	v := n.x.eval(p, env)
	switch n.fn {
	case "sin":
		return math.Sin(v)
	case "cos":
		return math.Cos(v)
	case "tan":
		return math.Tan(v)
	case "exp":
		return math.Exp(v)
	case "ln":
		return math.Log(v)
	case "sqrt":
		return math.Sqrt(v)
	}
	p.errorf(n.line, "unknown function %s", n.fn)
	return 0
}

// parseExpr parses an additive expression. knownParams lists gate-parameter
// names valid as identifiers (nil at the top level, where only pi is
// allowed; evaluation catches violations).
func (p *parser) parseExpr(knownParams []string) exprNode {
	left := p.parseTerm(knownParams)
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.advance()
		right := p.parseTerm(knownParams)
		left = binNode{op.text, left, right, op.line}
	}
	return left
}

func (p *parser) parseTerm(knownParams []string) exprNode {
	left := p.parsePow(knownParams)
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.advance()
		right := p.parsePow(knownParams)
		left = binNode{op.text, left, right, op.line}
	}
	return left
}

func (p *parser) parsePow(knownParams []string) exprNode {
	left := p.parseUnary(knownParams)
	if p.cur().kind == tokSymbol && p.cur().text == "^" {
		op := p.advance()
		right := p.parsePow(knownParams) // right associative
		left = binNode{"^", left, right, op.line}
	}
	return left
}

func (p *parser) parseUnary(knownParams []string) exprNode {
	if p.cur().kind == tokSymbol && (p.cur().text == "-" || p.cur().text == "+") {
		op := p.advance()
		return unaryNode{op.text, p.parseUnary(knownParams)}
	}
	return p.parseAtom(knownParams)
}

func (p *parser) parseAtom(knownParams []string) exprNode {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			p.errorf(t.line, "bad number %q", t.text)
		}
		return numNode(v)
	case tokIdent:
		if p.cur().kind == tokSymbol && p.cur().text == "(" {
			p.advance()
			arg := p.parseExpr(knownParams)
			p.expectSymbol(")")
			return callNode{t.text, arg, t.line}
		}
		return identNode{t.text, t.line}
	case tokSymbol:
		if t.text == "(" {
			e := p.parseExpr(knownParams)
			p.expectSymbol(")")
			return e
		}
	}
	p.errorf(t.line, "expected expression, found %s", t)
	return nil
}
