package qasm

import (
	"testing"

	"flatdd/internal/circuit"
)

// TestCanonicalHashAcrossSources pins the property the serve layer's
// result cache depends on: submissions that are textually different but
// structurally identical OpenQASM programs share one canonical hash,
// while a semantic change breaks it.
func TestCanonicalHashAcrossSources(t *testing.T) {
	base := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`
	variants := []string{
		// Comments and blank lines.
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\n// a bell pair\nqreg q[2];\n\nh q[0];\ncx q[0],q[1];\n",
		// Whitespace and CRLF endings.
		"OPENQASM 2.0;\r\ninclude \"qelib1.inc\";\r\nqreg q[2];\r\nh  q[0] ;\r\ncx q[0] , q[1];\r\n",
	}
	want := mustParse(t, base).Hash()
	for i, src := range variants {
		if got := mustParse(t, src).Hash(); got != want {
			t.Errorf("variant %d: hash %s != base %s", i, got, want)
		}
	}
	changed := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[1];
cx q[0],q[1];
`
	if mustParse(t, changed).Hash() == want {
		t.Error("semantically different program collides with the base hash")
	}
}

// TestCanonicalHashRoundTrip verifies Write∘Parse preserves the canonical
// hash for circuits whose gates have native qelib1 spellings (the writer
// lowers exotic gates to different-but-equivalent sequences, which
// legitimately changes the gate list and so the hash).
func TestCanonicalHashRoundTrip(t *testing.T) {
	c := circuit.New("rt", 3).Append(
		circuit.H(0), circuit.CX(0, 1), circuit.RZ(0.5, 2),
		circuit.T(1), circuit.SWAP(0, 2),
	)
	src, err := ToString(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != c.Hash() {
		t.Fatalf("round-trip hash changed:\n%s", src)
	}
}

func mustParse(t *testing.T, src string) *circuit.Circuit {
	t.Helper()
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
