// Package cnum provides a tolerance-based interning table for complex
// numbers, mirroring the specialized complex-number handling that DD-based
// quantum circuit simulators use to make decision-diagram nodes
// hash-consable.
//
// Floating-point arithmetic on gate matrices produces values such as
// 0.7071067811865476 and 0.7071067811865475 that are mathematically the same
// amplitude. If such values were used directly as edge weights, structurally
// identical decision-diagram nodes would fail pointer equality and the
// unique table would explode. The Table snaps every float component to a
// canonical representative within a configurable tolerance, so that edge
// weights can be compared bit-exactly and hashed directly.
package cnum

import (
	"math"
	"sync"
	"sync/atomic"

	"flatdd/internal/obs"
)

// DefaultTolerance is the default snapping tolerance. Two float components
// closer than this are considered the same value. The value matches the
// tolerance commonly used by DD packages for quantum simulation.
const DefaultTolerance = 1e-10

// Table interns float64 components of complex numbers. The zero value is not
// usable; create one with NewTable. A Table is safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	tol     float64
	invTol  float64
	buckets map[int64]float64

	lookups  atomic.Uint64
	hits     atomic.Uint64
	inserted atomic.Uint64

	// Registry handles (nil when metrics are off).
	obsLookups *obs.Counter
	obsHits    *obs.Counter
	obsInserts *obs.Counter
	obsSize    *obs.Gauge
}

// SetMetrics attaches the table's counters to a registry (nil detaches):
// cnum.lookups, cnum.hits, cnum.inserts and the cnum.size gauge. It must be
// called before the table is used concurrently (i.e. at setup time).
func (t *Table) SetMetrics(r *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.obsLookups = r.Counter("cnum.lookups")
	t.obsHits = r.Counter("cnum.hits")
	t.obsInserts = r.Counter("cnum.inserts")
	t.obsSize = r.Gauge("cnum.size")
	t.obsSize.Set(int64(len(t.buckets)))
}

// NewTable returns a Table with the given tolerance. A non-positive
// tolerance selects DefaultTolerance.
func NewTable(tol float64) *Table {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	t := &Table{
		tol:     tol,
		invTol:  1 / tol,
		buckets: make(map[int64]float64, 1024),
	}
	// Seed exact representations of the values that appear in virtually
	// every circuit so they are canonical from the start.
	for _, v := range [...]float64{0, 1, -1, 0.5, -0.5, math.Sqrt2 / 2, -math.Sqrt2 / 2} {
		t.lookupFloatLocked(v)
	}
	return t
}

// Tolerance reports the snapping tolerance of the table.
func (t *Table) Tolerance() float64 { return t.tol }

// Lookup returns the canonical representative of c. Components within the
// tolerance of an existing representative are snapped to it; otherwise the
// component is registered as a new representative. Lookup(Lookup(c)) ==
// Lookup(c) for every c.
func (t *Table) Lookup(c complex128) complex128 {
	re := t.LookupFloat(real(c))
	im := t.LookupFloat(imag(c))
	return complex(re, im)
}

// LookupFloat interns a single float component.
func (t *Table) LookupFloat(x float64) float64 {
	if x == 0 { // fast path, avoids -0 issues too
		return 0
	}
	t.lookups.Add(1)
	t.obsLookups.Inc()
	t.mu.RLock()
	v, ok := t.findLocked(x)
	t.mu.RUnlock()
	if ok {
		t.hits.Add(1)
		t.obsHits.Inc()
		return v
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lookupFloatLocked(x)
}

// findLocked searches the bucket of x and both neighbors for a
// representative within tolerance. Callers must hold at least a read lock.
func (t *Table) findLocked(x float64) (float64, bool) {
	k := int64(math.Round(x * t.invTol))
	for _, kk := range [3]int64{k, k - 1, k + 1} {
		if v, ok := t.buckets[kk]; ok && math.Abs(v-x) <= t.tol {
			return v, true
		}
	}
	return 0, false
}

func (t *Table) lookupFloatLocked(x float64) float64 {
	if v, ok := t.findLocked(x); ok {
		t.hits.Add(1)
		t.obsHits.Inc()
		return v
	}
	k := int64(math.Round(x * t.invTol))
	t.buckets[k] = x
	t.inserted.Add(1)
	t.obsInserts.Inc()
	t.obsSize.Set(int64(len(t.buckets)))
	return x
}

// Stats reports counters useful for tests and diagnostics: the number of
// non-zero lookups, how many hit an existing representative, and how many
// distinct representatives were inserted.
func (t *Table) Stats() (lookups, hits, inserted uint64) {
	return t.lookups.Load(), t.hits.Load(), t.inserted.Load()
}

// Size returns the number of distinct float representatives stored.
func (t *Table) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.buckets)
}

// ApproxEqual reports whether a and b are within tol of each other in both
// components. It is the comparison the rest of the simulator uses when
// checking numerical results against references.
func ApproxEqual(a, b complex128, tol float64) bool {
	return math.Abs(real(a)-real(b)) <= tol && math.Abs(imag(a)-imag(b)) <= tol
}

// IsZero reports whether c is exactly the canonical zero.
func IsZero(c complex128) bool { return c == 0 }

// Key packs a canonical complex value into a comparable, hashable key.
// It must only be used on values returned by Lookup, where bit equality
// coincides with semantic equality.
type Key struct{ Re, Im uint64 }

// KeyOf returns the Key of a canonical complex value.
func KeyOf(c complex128) Key {
	return Key{math.Float64bits(real(c)), math.Float64bits(imag(c))}
}
