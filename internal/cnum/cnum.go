// Package cnum provides a tolerance-based interning table for complex
// numbers, mirroring the specialized complex-number handling that DD-based
// quantum circuit simulators use to make decision-diagram nodes
// hash-consable.
//
// Floating-point arithmetic on gate matrices produces values such as
// 0.7071067811865476 and 0.7071067811865475 that are mathematically the same
// amplitude. If such values were used directly as edge weights, structurally
// identical decision-diagram nodes would fail pointer equality and the
// unique table would explode. The Table snaps every float component to a
// canonical representative within a configurable tolerance, so that edge
// weights can be compared bit-exactly and hashed directly.
//
// # Determinism under concurrency
//
// Snapping is a pure function of the value: LookupFloat(x) maps x to the
// canonical representative of its grid bucket (round(x/2^-g) * 2^-g, with
// well-known constants such as 1/sqrt(2) pre-seeded onto their buckets at
// construction), never to "whichever nearby value was interned first".
// Earlier designs kept first-comer representatives, which made the snapped
// value depend on lookup order — under the concurrent DD phase that order
// is a scheduling accident, and final amplitudes would differ between
// runs. With grid snapping, any interleaving of any number of goroutines
// produces bit-identical weights, which is what makes the parallel DD
// phase's results reproducible (see the determinism tests in
// internal/ddsim and DESIGN.md §12).
//
// The grid step is a power of two (the largest 2^-g <= the configured
// tolerance) rather than a decimal multiple, and that choice is
// load-bearing: representatives k*2^-g are dyadic, so the linear
// combinations DD normalization produces from them with dyadic
// coefficients (x/2, 0.5a+0.25b, ...) are computed exactly by IEEE
// arithmetic. Two evaluation orders of such a combination yield
// bit-identical floats and therefore the same bucket, even when the value
// sits exactly on a bucket boundary. A decimal grid (k*1e-10) breaks
// here: scaling its representatives by 1/2 lands exactly between two
// buckets with one ulp of path-dependent noise deciding the round, which
// destroys hash-consing canonicity in practice. The bucket-membership map
// exists only for statistics and is sharded so concurrent lookups do not
// serialize on one lock.
package cnum

import (
	"math"
	"sync"
	"sync/atomic"

	"flatdd/internal/obs"
)

// DefaultTolerance is the default snapping tolerance. Two float components
// closer than this are considered the same value. The value matches the
// tolerance commonly used by DD packages for quantum simulation.
const DefaultTolerance = 1e-10

// statShards is the number of stripe locks over the bucket-membership map
// (statistics only; the snapped value never depends on the map).
const statShards = 64

// maxBucket bounds |x|/step for which grid snapping is attempted; far
// larger magnitudes (never produced by unitary simulation) are returned
// unsnapped, which is still deterministic.
const maxBucket = 1 << 62

type statShard struct {
	mu      sync.Mutex
	buckets map[int64]struct{}
}

// Table interns float64 components of complex numbers. The zero value is not
// usable; create one with NewTable. A Table is safe for concurrent use, and
// its results are independent of the interleaving of concurrent callers.
type Table struct {
	tol float64

	// step is the grid spacing, the largest power of two <= tol; invStep
	// is its exact reciprocal. Multiplying by either only shifts the
	// exponent, so x*invStep and k*step round nothing away.
	step    float64
	invStep float64

	// seeded maps grid buckets to exact well-known representatives. Built
	// once in NewTable, read-only afterwards — lock-free on the hot path.
	seeded map[int64]float64

	shards [statShards]statShard
	size   atomic.Int64

	lookups  atomic.Uint64
	hits     atomic.Uint64
	inserted atomic.Uint64

	// Registry handles (nil when metrics are off).
	obsLookups *obs.Counter
	obsHits    *obs.Counter
	obsInserts *obs.Counter
	obsSize    *obs.Gauge
}

// SetMetrics attaches the table's counters to a registry (nil detaches):
// cnum.lookups, cnum.hits, cnum.inserts and the cnum.size gauge. It must be
// called before the table is used concurrently (i.e. at setup time).
func (t *Table) SetMetrics(r *obs.Registry) {
	t.obsLookups = r.Counter("cnum.lookups")
	t.obsHits = r.Counter("cnum.hits")
	t.obsInserts = r.Counter("cnum.inserts")
	t.obsSize = r.Gauge("cnum.size")
	t.obsSize.Set(t.size.Load())
}

// NewTable returns a Table with the given tolerance. A non-positive
// tolerance selects DefaultTolerance.
func NewTable(tol float64) *Table {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	g := int(math.Ceil(-math.Log2(tol)))
	t := &Table{
		tol:     tol,
		step:    math.Ldexp(1, -g),
		invStep: math.Ldexp(1, g),
		seeded:  make(map[int64]float64, 32),
	}
	for i := range t.shards {
		t.shards[i].buckets = make(map[int64]struct{}, 64)
	}
	// Seed exact representations of the values that appear in virtually
	// every circuit so they are canonical from the start. Each constant
	// claims its own grid bucket plus both neighbors (first seed wins), so
	// a computed value landing one bucket over still snaps to the exact
	// constant.
	for _, v := range [...]float64{0, 1, -1, 0.5, -0.5, math.Sqrt2 / 2, -math.Sqrt2 / 2} {
		k := int64(math.Round(v * t.invStep))
		for _, kk := range [3]int64{k, k - 1, k + 1} {
			if _, ok := t.seeded[kk]; !ok {
				t.seeded[kk] = v
			}
		}
		t.noteBucket(k)
	}
	return t
}

// Tolerance reports the snapping tolerance of the table.
func (t *Table) Tolerance() float64 { return t.tol }

// Lookup returns the canonical representative of c. Components are snapped
// to their tolerance-grid bucket (seeded constants keep their exact
// values). Lookup(Lookup(c)) == Lookup(c) for every c, and the result is a
// pure function of c — independent of what else has been interned.
func (t *Table) Lookup(c complex128) complex128 {
	re := t.LookupFloat(real(c))
	im := t.LookupFloat(imag(c))
	return complex(re, im)
}

// LookupFloat interns a single float component.
func (t *Table) LookupFloat(x float64) float64 {
	if x == 0 { // fast path, avoids -0 issues too
		return 0
	}
	t.lookups.Add(1)
	t.obsLookups.Inc()
	s := x * t.invStep
	if s != s || s >= maxBucket || s <= -maxBucket {
		// NaN, Inf, or out of grid range: pass through deterministically.
		return x
	}
	k := int64(math.Round(s))
	v, ok := t.seeded[k]
	if !ok {
		v = float64(k) * t.step
	}
	if v == 0 {
		// Snapped into the zero bucket: the canonical zero.
		t.noteBucket(0)
		return 0
	}
	t.noteBucket(k)
	return v
}

// noteBucket records bucket membership for statistics: the first sighting
// of a bucket counts as an insert, later ones as hits.
func (t *Table) noteBucket(k int64) {
	sh := &t.shards[uint64(k)%statShards]
	sh.mu.Lock()
	_, seen := sh.buckets[k]
	if !seen {
		sh.buckets[k] = struct{}{}
	}
	sh.mu.Unlock()
	if seen {
		t.hits.Add(1)
		t.obsHits.Inc()
	} else {
		t.inserted.Add(1)
		t.obsInserts.Inc()
		t.obsSize.Set(t.size.Add(1))
	}
}

// Stats reports counters useful for tests and diagnostics: the number of
// non-zero lookups, how many hit an existing representative, and how many
// distinct representatives were inserted.
func (t *Table) Stats() (lookups, hits, inserted uint64) {
	return t.lookups.Load(), t.hits.Load(), t.inserted.Load()
}

// Size returns the number of distinct float representatives stored.
func (t *Table) Size() int {
	return int(t.size.Load())
}

// ApproxEqual reports whether a and b are within tol of each other in both
// components. It is the comparison the rest of the simulator uses when
// checking numerical results against references.
func ApproxEqual(a, b complex128, tol float64) bool {
	return math.Abs(real(a)-real(b)) <= tol && math.Abs(imag(a)-imag(b)) <= tol
}

// IsZero reports whether c is exactly the canonical zero.
func IsZero(c complex128) bool { return c == 0 }

// Key packs a canonical complex value into a comparable, hashable key.
// It must only be used on values returned by Lookup, where bit equality
// coincides with semantic equality.
type Key struct{ Re, Im uint64 }

// KeyOf returns the Key of a canonical complex value.
func KeyOf(c complex128) Key {
	return Key{math.Float64bits(real(c)), math.Float64bits(imag(c))}
}
