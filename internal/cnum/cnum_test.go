package cnum

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"
	"testing/quick"
)

func TestLookupSnapsNearbyValues(t *testing.T) {
	tbl := NewTable(1e-10)
	a := tbl.Lookup(complex(math.Sqrt2/2, 0))
	b := tbl.Lookup(complex(0.70710678118654757, 0)) // one ulp-ish away
	if a != b {
		t.Fatalf("nearby values not snapped: %v vs %v", a, b)
	}
}

func TestLookupDistinguishesFarValues(t *testing.T) {
	tbl := NewTable(1e-10)
	a := tbl.Lookup(complex(0.5, 0))
	b := tbl.Lookup(complex(0.5+1e-6, 0))
	if a == b {
		t.Fatalf("distinct values wrongly merged: %v", a)
	}
}

func TestLookupZeroIsCanonical(t *testing.T) {
	tbl := NewTable(0)
	if z := tbl.Lookup(complex(math.Copysign(0, -1), 0)); z != 0 {
		t.Fatalf("negative zero not canonicalized: %v", z)
	}
	if z := tbl.Lookup(0); z != 0 {
		t.Fatalf("zero not canonical: %v", z)
	}
}

func TestLookupIdempotent(t *testing.T) {
	tbl := NewTable(0)
	f := func(re, im float64) bool {
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return true
		}
		// Keep magnitudes in the range amplitudes actually occupy.
		re = math.Mod(re, 2)
		im = math.Mod(im, 2)
		c := complex(re, im)
		once := tbl.Lookup(c)
		twice := tbl.Lookup(once)
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupWithinTolerance(t *testing.T) {
	tbl := NewTable(1e-10)
	f := func(re, im float64) bool {
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return true
		}
		re = math.Mod(re, 2)
		im = math.Mod(im, 2)
		c := complex(re, im)
		got := tbl.Lookup(c)
		return cmplx.Abs(got-c) <= 2*tbl.Tolerance()*math.Sqrt2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSeededConstantsExact(t *testing.T) {
	tbl := NewTable(0)
	cases := []float64{0, 1, -1, 0.5, -0.5, math.Sqrt2 / 2, -math.Sqrt2 / 2}
	for _, v := range cases {
		if got := tbl.LookupFloat(v); got != v {
			t.Errorf("seeded constant %v mapped to %v", v, got)
		}
	}
}

func TestConcurrentLookupStable(t *testing.T) {
	tbl := NewTable(1e-10)
	const workers = 8
	const perWorker = 500
	results := make([][]complex128, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]complex128, perWorker)
			for i := 0; i < perWorker; i++ {
				// Every worker hits the same value sequence.
				v := complex(math.Sin(float64(i)), math.Cos(float64(i)))
				out[i] = tbl.Lookup(v)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d disagrees at %d: %v vs %v", w, i, results[w][i], results[0][i])
			}
		}
	}
}

func TestKeyOfDistinguishesCanonicalValues(t *testing.T) {
	tbl := NewTable(0)
	a := tbl.Lookup(complex(0.25, 0.75))
	b := tbl.Lookup(complex(0.75, 0.25))
	if KeyOf(a) == KeyOf(b) {
		t.Fatal("distinct canonical values share a key")
	}
	if KeyOf(a) != KeyOf(tbl.Lookup(a)) {
		t.Fatal("key not stable under re-lookup")
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1+1i, 1+1i, 0) {
		t.Fatal("identical values not approx-equal")
	}
	if !ApproxEqual(1, 1+1e-12, 1e-10) {
		t.Fatal("values within tol not approx-equal")
	}
	if ApproxEqual(1, 1.1, 1e-10) {
		t.Fatal("values beyond tol approx-equal")
	}
}

func TestStatsProgress(t *testing.T) {
	tbl := NewTable(1e-10)
	tbl.Lookup(complex(0.123456, 0.654321))
	tbl.Lookup(complex(0.123456, 0.654321))
	lookups, hits, inserted := tbl.Stats()
	if lookups == 0 || inserted == 0 {
		t.Fatalf("stats not tracking: lookups=%d inserted=%d", lookups, inserted)
	}
	if hits == 0 {
		t.Fatalf("repeated lookup should hit, stats: lookups=%d hits=%d", lookups, hits)
	}
	if tbl.Size() == 0 {
		t.Fatal("size should be positive")
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tbl := NewTable(1e-10)
	v := complex(math.Sqrt2/2, -math.Sqrt2/2)
	tbl.Lookup(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(v)
	}
}
