package perf

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"flatdd/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecord is a fully deterministic record exercising every schema
// field, used for both the round-trip and the golden-file test.
func goldenRecord() *Record {
	return &Record{
		Schema: Schema,
		GitSHA: "0123456789abcdef0123456789abcdef01234567",
		Date:   time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Host: Host{
			Hostname: "ci-runner", OS: "linux", Arch: "amd64",
			NumCPU: 8, GOMAXPROCS: 8, GoVersion: "go1.24.0",
		},
		Exp: "table1", Scale: "tiny", Threads: 4, Reps: 3,
		Cells: []Cell{
			{
				Exp: "table1", Circuit: "dnn_n8", Engine: "FlatDD",
				Qubits: 8, Gates: 208,
				Wall:      Stat{MeanNs: 1.5e6, StddevNs: 2e5, MinNs: 1.3e6, MaxNs: 1.7e6, N: 3},
				NsPerGate: 7211.54, PeakDDNodes: 412, ConvertedAt: 96,
				DMAVCacheHitRate: 0.82, MemoryBytes: 1 << 20,
				AllocBytesPerRep: 65536, MallocsPerRep: 1200,
			},
			{
				Exp: "table1", Circuit: "dnn_n8", Engine: "DDSIM",
				Qubits: 8, Gates: 208,
				Wall:        Stat{MeanNs: 4.5e6, StddevNs: 1e5, MinNs: 4.4e6, MaxNs: 4.6e6, N: 3},
				NsPerGate:   21634.6,
				ConvertedAt: -1, DMAVCacheHitRate: -1, MemoryBytes: 2 << 20,
			},
			{
				Exp: "fig12", Circuit: "knn_n9", Engine: "FlatDD", Threads: 2,
				Qubits: 9, Gates: 150, TimedOut: true,
				Wall:        Stat{MeanNs: 9e8, MinNs: 9e8, MaxNs: 9e8, N: 1},
				NsPerGate:   6e6,
				ConvertedAt: -1, DMAVCacheHitRate: -1,
			},
		},
		Series: []obs.Series{
			{Name: "core.dd_size", TMs: []int64{0, 10, 20}, V: []float64{1, 210, 208}},
			{Name: "runtime.goroutines", TMs: []int64{0, 10, 20}, V: []float64{2, 6, 6}},
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	want := goldenRecord()
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestRecordGoldenFile(t *testing.T) {
	golden := filepath.Join("testdata", "record_golden.json")
	if *update {
		if err := goldenRecord().Write(golden); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(golden)
	if err != nil {
		t.Fatal(err)
	}
	if want := goldenRecord(); !reflect.DeepEqual(got, want) {
		t.Fatalf("golden file drifted from goldenRecord(); run go test ./internal/perf -update if the schema change is intentional\ngot  %+v\nwant %+v", got, want)
	}
	// And byte-stable serialization: re-writing the golden record must
	// reproduce the committed file exactly.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	if err := goldenRecord().Write(path); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("serialization of the golden record no longer matches testdata/record_golden.json")
	}
}

func TestLoadRejectsNonRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(path, []byte(`{"cells": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("schema-less file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestNewStat(t *testing.T) {
	s := NewStat([]float64{10, 20, 30})
	if s.N != 3 || s.MeanNs != 20 || s.MinNs != 10 || s.MaxNs != 30 {
		t.Fatalf("stat = %+v", s)
	}
	if math.Abs(s.StddevNs-10) > 1e-9 {
		t.Fatalf("sample stddev = %v, want 10", s.StddevNs)
	}
	// A single repetition has no spread information.
	if s := NewStat([]float64{42}); s.StddevNs != 0 || s.MeanNs != 42 || s.N != 1 {
		t.Fatalf("single-rep stat = %+v", s)
	}
	if s := NewStat(nil); s.N != 0 || s.MeanNs != 0 {
		t.Fatalf("empty stat = %+v", s)
	}
}

func TestCellKey(t *testing.T) {
	c := Cell{Exp: "table1", Circuit: "ghz_n10", Engine: "FlatDD"}
	if got := c.Key(); got != "table1/ghz_n10/FlatDD" {
		t.Fatalf("key = %q", got)
	}
	c.Threads = 8
	if got := c.Key(); got != "table1/ghz_n10/FlatDD/t8" {
		t.Fatalf("threaded key = %q", got)
	}
}

func TestNextRecordPath(t *testing.T) {
	dir := t.TempDir()
	if got, want := NextRecordPath(dir), filepath.Join(dir, "BENCH_1.json"); got != want {
		t.Fatalf("empty dir: %q, want %q", got, want)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := NextRecordPath(dir), filepath.Join(dir, "BENCH_4.json"); got != want {
		t.Fatalf("next: %q, want %q", got, want)
	}
}

func TestNewestRecordPath(t *testing.T) {
	dir := t.TempDir()
	if got := NewestRecordPath(dir, ""); got != "" {
		t.Fatalf("empty dir yielded %q", got)
	}
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	newest := filepath.Join(dir, "BENCH_10.json")
	if got := NewestRecordPath(dir, ""); got != newest {
		t.Fatalf("newest: %q, want %q", got, newest)
	}
	// Excluding the newest falls back to the runner-up (numeric, not
	// lexicographic, so 10 > 2).
	if got, want := NewestRecordPath(dir, newest), filepath.Join(dir, "BENCH_2.json"); got != want {
		t.Fatalf("excluded newest: %q, want %q", got, want)
	}
}
