// Package perf turns benchmark runs into durable, comparable artifacts.
// A Record is the machine-readable counterpart of the tables flatdd-bench
// prints: one JSON file per run (BENCH_<n>.json at the repo root by
// convention) carrying the git SHA, host shape, per-experiment
// per-circuit wall-time statistics over N repetitions, engine internals
// (peak DD nodes, conversion gate, DMAV cache hit rate), allocation
// deltas, and the run's sampled time series. Records from different
// commits are aligned and compared by Diff, the engine behind
// cmd/flatdd-benchdiff.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"flatdd/internal/obs"
)

// Schema is the current Record schema version, bumped on incompatible
// changes so benchdiff can refuse records it does not understand.
const Schema = 1

// Host describes the machine a record was produced on. Comparing records
// from different hosts is possible but the deltas mean little; benchdiff
// warns when the shapes differ.
type Host struct {
	Hostname   string `json:"hostname"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// CurrentHost captures the running machine.
func CurrentHost() Host {
	hn, _ := os.Hostname()
	return Host{
		Hostname:   hn,
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// Stat summarizes N repetitions of one measurement, in nanoseconds.
// Stddev is the sample standard deviation (zero when N < 2). The
// percentile fields are additive (schema stays at 1): records written
// before they existed simply decode them as zero, which Diff treats as
// "no tail information".
type Stat struct {
	MeanNs   float64 `json:"mean_ns"`
	StddevNs float64 `json:"stddev_ns"`
	MinNs    float64 `json:"min_ns"`
	MaxNs    float64 `json:"max_ns"`
	N        int     `json:"n"`
	// P50Ns/P95Ns/P99Ns are sample percentiles (linear interpolation
	// between order statistics), the latency-SLO view of the repetition
	// spread: the mean hides a bimodal run, the tail does not.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P95Ns float64 `json:"p95_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// NewStat computes repetition statistics over raw nanosecond samples.
func NewStat(ns []float64) Stat {
	s := Stat{N: len(ns)}
	if s.N == 0 {
		return s
	}
	s.MinNs = math.Inf(1)
	sum := 0.0
	for _, v := range ns {
		sum += v
		s.MinNs = math.Min(s.MinNs, v)
		s.MaxNs = math.Max(s.MaxNs, v)
	}
	s.MeanNs = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range ns {
			d := v - s.MeanNs
			ss += d * d
		}
		s.StddevNs = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), ns...)
	sort.Float64s(sorted)
	s.P50Ns = percentile(sorted, 0.50)
	s.P95Ns = percentile(sorted, 0.95)
	s.P99Ns = percentile(sorted, 0.99)
	return s
}

// percentile interpolates the q-quantile of sorted samples at rank
// q·(n−1), the same convention as numpy's default.
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Cell is one (experiment, circuit, engine) measurement. Threads is only
// set when the experiment sweeps thread counts (fig12); it is part of the
// alignment key then.
type Cell struct {
	Exp     string `json:"exp"`
	Circuit string `json:"circuit"`
	Engine  string `json:"engine"`
	Threads int    `json:"threads,omitempty"`
	Qubits  int    `json:"qubits"`
	Gates   int    `json:"gates"`

	Wall      Stat    `json:"wall"`
	NsPerGate float64 `json:"ns_per_gate"`
	TimedOut  bool    `json:"timed_out,omitempty"`

	// Engine internals (FlatDD only; zero / -1 otherwise).
	PeakDDNodes int `json:"peak_dd_nodes,omitempty"`
	// ConvertedAt is the first DMAV gate; -1 if the run never converted
	// (and for the non-hybrid engines).
	ConvertedAt int `json:"converted_at"`
	// DMAVCacheHitRate is hits/(hits+misses) of the DMAV result cache
	// over all repetitions; -1 when the run had no cached DMAV gates.
	DMAVCacheHitRate float64 `json:"dmav_cache_hit_rate"`
	// CacheHitRate is the serve-layer result-cache hit rate of a
	// multi-tenant serving cell ((hits+coalesced)/submitted); unset for
	// engine cells. Additive; schema stays 1.
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`

	// Scheduler totals over all repetitions (FlatDD only; zero when the
	// run never reached the flat-array phase): tasks executed, chunks
	// re-balanced by stealing, and summed worker idle time.
	SchedTasks  int64 `json:"sched_tasks,omitempty"`
	SchedSteals int64 `json:"sched_steals,omitempty"`
	SchedIdleNs int64 `json:"sched_idle_ns,omitempty"`

	MemoryBytes uint64 `json:"memory_bytes,omitempty"`
	// Allocation deltas from the runtime/metrics sampler, averaged per
	// repetition.
	AllocBytesPerRep uint64 `json:"alloc_bytes_per_rep,omitempty"`
	MallocsPerRep    uint64 `json:"mallocs_per_rep,omitempty"`

	// Resource-ledger attribution (additive; schema stays 1 — older
	// records decode them as zero, which Diff treats as "no data").
	// AllocPeakBytes is the run's live-memory high-water from the engine's
	// resource ledger (DD nodes + flat arrays); CPUNs its attributed CPU
	// time (worker busy-ns plus sequential phase wall time).
	AllocPeakBytes uint64 `json:"alloc_peak_bytes,omitempty"`
	CPUNs          int64  `json:"cpu_ns,omitempty"`
}

// Key is the identity cells are aligned by across records.
func (c Cell) Key() string {
	k := c.Exp + "/" + c.Circuit + "/" + c.Engine
	if c.Threads > 0 {
		k += fmt.Sprintf("/t%d", c.Threads)
	}
	return k
}

// Record is one benchmark run's durable artifact.
type Record struct {
	Schema  int       `json:"schema"`
	GitSHA  string    `json:"git_sha"`
	Date    time.Time `json:"date"`
	Host    Host      `json:"host"`
	Exp     string    `json:"exp"`
	Scale   string    `json:"scale"`
	Threads int       `json:"threads"`
	Reps    int       `json:"reps"`

	Cells []Cell `json:"cells"`
	// Series is the run's sampled time series (registry gauges/counters
	// plus heap and goroutine counts) from obs.Sampler, so the phase
	// timeline (DDSIM → conversion → DMAV) is reconstructible after the
	// fact.
	Series []obs.Series `json:"series,omitempty"`
}

// NewRecord returns a record stamped with the current commit, time and
// host.
func NewRecord(exp, scale string, threads, reps int) *Record {
	return &Record{
		Schema:  Schema,
		GitSHA:  GitSHA(),
		Date:    time.Now().UTC().Truncate(time.Second),
		Host:    CurrentHost(),
		Exp:     exp,
		Scale:   scale,
		Threads: threads,
		Reps:    reps,
	}
}

// GitSHA returns the current commit hash, or "unknown" outside a git
// checkout.
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// Add appends one cell.
func (r *Record) Add(c Cell) { r.Cells = append(r.Cells, c) }

// Write serializes the record as indented JSON.
func (r *Record) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a record back. It rejects files without a schema marker (not
// perf records) and records with a newer schema than this binary knows.
func Load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema == 0 {
		return nil, fmt.Errorf("perf: %s is not a perf record (no schema field)", path)
	}
	if r.Schema > Schema {
		return nil, fmt.Errorf("perf: %s has schema %d, newer than supported %d", path, r.Schema, Schema)
	}
	return &r, nil
}

var recordNameRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// recordNum extracts n from a BENCH_<n>.json file name.
func recordNum(name string) (int, bool) {
	m := recordNameRe.FindStringSubmatch(name)
	if m == nil {
		return 0, false
	}
	n, err := strconv.Atoi(m[1])
	return n, err == nil
}

// NextRecordPath returns the first unused BENCH_<n>.json path in dir,
// counting from 1.
func NextRecordPath(dir string) string {
	max := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if n, ok := recordNum(e.Name()); ok && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1))
}

// NewestRecordPath returns the BENCH_<n>.json in dir with the highest n,
// skipping the exclude path (compare by cleaned path; pass "" to skip
// nothing). Empty result means no record exists.
func NewestRecordPath(dir, exclude string) string {
	exclude = filepath.Clean(exclude)
	best, bestPath := 0, ""
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		n, ok := recordNum(e.Name())
		if !ok || n <= best {
			continue
		}
		p := filepath.Join(dir, e.Name())
		if filepath.Clean(p) == exclude {
			continue
		}
		best, bestPath = n, p
	}
	return bestPath
}
