package perf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// cellNs builds a minimal cell with the given repetition stats.
func cellNs(circuit string, meanNs, stddevNs float64, n int) Cell {
	return Cell{
		Exp: "table1", Circuit: circuit, Engine: "FlatDD",
		Wall: Stat{MeanNs: meanNs, StddevNs: stddevNs, MinNs: meanNs, MaxNs: meanNs, N: n},
	}
}

func recordWith(cells ...Cell) *Record {
	return &Record{Schema: Schema, Cells: cells}
}

func diffOne(t *testing.T, oldCell, newCell Cell, opts Options) CellDiff {
	t.Helper()
	rep := Diff(recordWith(oldCell), recordWith(newCell), opts)
	if len(rep.Diffs) != 1 {
		t.Fatalf("expected 1 diff, got %d: %+v", len(rep.Diffs), rep.Diffs)
	}
	return rep.Diffs[0]
}

func TestDiffSelfIsClean(t *testing.T) {
	r := recordWith(cellNs("a", 1e6, 1e5, 3), cellNs("b", 2e6, 0, 1))
	rep := Diff(r, r, Options{})
	if rep.Regressions() != 0 || rep.Improvements() != 0 {
		t.Fatalf("self diff not clean: %+v", rep.Diffs)
	}
	for _, d := range rep.Diffs {
		if d.Verdict != VerdictOK || d.Delta != 0 {
			t.Fatalf("self diff cell: %+v", d)
		}
	}
}

func TestDiffThresholdSingleRep(t *testing.T) {
	// Single repetition: stddev carries no information, so the threshold
	// alone decides.
	d := diffOne(t, cellNs("a", 1e6, 0, 1), cellNs("a", 1.15e6, 0, 1), Options{})
	if d.Verdict != VerdictRegression {
		t.Fatalf("15%% slowdown at 10%% threshold: %+v", d)
	}
	d = diffOne(t, cellNs("a", 1e6, 0, 1), cellNs("a", 1.05e6, 0, 1), Options{})
	if d.Verdict != VerdictOK {
		t.Fatalf("5%% slowdown at 10%% threshold: %+v", d)
	}
	// Exact threshold boundary is not a regression (strictly beyond).
	d = diffOne(t, cellNs("a", 1e6, 0, 1), cellNs("a", 1.1e6, 0, 1), Options{})
	if d.Verdict != VerdictOK {
		t.Fatalf("exact-threshold delta: %+v", d)
	}
	// Custom threshold.
	d = diffOne(t, cellNs("a", 1e6, 0, 1), cellNs("a", 1.15e6, 0, 1), Options{Threshold: 0.5})
	if d.Verdict != VerdictOK {
		t.Fatalf("15%% slowdown at 50%% threshold: %+v", d)
	}
}

func TestDiffNoiseGuard(t *testing.T) {
	// 15% slowdown, but both sides are noisy (σ/µ = 0.2 each → noise
	// floor 0.8): not a regression.
	d := diffOne(t, cellNs("a", 1e6, 2e5, 5), cellNs("a", 1.15e6, 2.3e5, 5), Options{})
	if d.Verdict != VerdictOK {
		t.Fatalf("noisy 15%% slowdown flagged: %+v", d)
	}
	if d.Noise <= 0.10 {
		t.Fatalf("noise floor not computed: %+v", d)
	}
	// Same slowdown with tight stddevs: regression.
	d = diffOne(t, cellNs("a", 1e6, 1e4, 5), cellNs("a", 1.15e6, 1e4, 5), Options{})
	if d.Verdict != VerdictRegression {
		t.Fatalf("tight 15%% slowdown not flagged: %+v", d)
	}
}

func TestDiffMinWallFloor(t *testing.T) {
	// Both sides under the floor: a huge delta is reported, never
	// flagged.
	d := diffOne(t, cellNs("a", 1e5, 0, 1), cellNs("a", 3e5, 0, 1), Options{MinWallNs: 1e6})
	if d.Verdict != VerdictOK {
		t.Fatalf("sub-floor cell flagged: %+v", d)
	}
	if math.Abs(d.Delta-2.0) > 1e-9 {
		t.Fatalf("sub-floor delta not reported: %+v", d)
	}
	// A cell that grew *past* the floor still counts: crossing the floor
	// is exactly the regression shape the floor must not hide.
	d = diffOne(t, cellNs("a", 9e5, 0, 1), cellNs("a", 2e6, 0, 1), Options{MinWallNs: 1e6})
	if d.Verdict != VerdictRegression {
		t.Fatalf("floor-crossing regression hidden: %+v", d)
	}
}

func TestDiffImprovement(t *testing.T) {
	d := diffOne(t, cellNs("a", 2e6, 0, 1), cellNs("a", 1e6, 0, 1), Options{})
	if d.Verdict != VerdictImprovement {
		t.Fatalf("2x speedup: %+v", d)
	}
	if math.Abs(d.Delta+0.5) > 1e-9 {
		t.Fatalf("delta = %v, want -0.5", d.Delta)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	// Zero baseline mean: no relative delta exists; never a regression.
	d := diffOne(t, cellNs("a", 0, 0, 0), cellNs("a", 1e6, 0, 1), Options{})
	if d.Verdict != VerdictIncomparable {
		t.Fatalf("zero baseline: %+v", d)
	}
	d = diffOne(t, cellNs("a", 0, 0, 0), cellNs("a", 0, 0, 0), Options{})
	if d.Verdict != VerdictOK {
		t.Fatalf("both zero: %+v", d)
	}
	rep := Diff(recordWith(cellNs("a", 0, 0, 0)), recordWith(cellNs("a", 1e6, 0, 1)), Options{})
	if rep.Regressions() != 0 {
		t.Fatal("zero baseline counted as regression")
	}
}

func TestDiffRenamedAndMissing(t *testing.T) {
	old := recordWith(cellNs("oldname", 1e6, 0, 1), cellNs("stable", 1e6, 0, 1))
	cur := recordWith(cellNs("newname", 1e6, 0, 1), cellNs("stable", 1e6, 0, 1))
	rep := Diff(old, cur, Options{})
	byKey := map[string]CellDiff{}
	for _, d := range rep.Diffs {
		byKey[d.Key] = d
	}
	if d := byKey["table1/newname/FlatDD"]; d.Verdict != VerdictAdded || d.Old != nil {
		t.Fatalf("renamed-in: %+v", d)
	}
	if d := byKey["table1/oldname/FlatDD"]; d.Verdict != VerdictRemoved || d.New != nil {
		t.Fatalf("renamed-out: %+v", d)
	}
	if d := byKey["table1/stable/FlatDD"]; d.Verdict != VerdictOK {
		t.Fatalf("stable cell: %+v", d)
	}
	if rep.Regressions() != 0 {
		t.Fatal("rename counted as regression")
	}
	// Thread-swept cells align per thread count.
	o := cellNs("knn", 1e6, 0, 1)
	o.Threads = 2
	n := cellNs("knn", 1e6, 0, 1)
	n.Threads = 4
	rep = Diff(recordWith(o), recordWith(n), Options{})
	if len(rep.Diffs) != 2 {
		t.Fatalf("thread-keyed cells merged: %+v", rep.Diffs)
	}
}

func TestReportRender(t *testing.T) {
	old := recordWith(cellNs("a", 1e6, 0, 1), cellNs("gone", 1e6, 0, 1))
	cur := recordWith(cellNs("a", 2e6, 0, 1), cellNs("fresh", 1e6, 0, 1))
	rep := Diff(old, cur, Options{})
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"table1/a/FlatDD", "+100.0%", "regression",
		"table1/gone/FlatDD", "removed",
		"table1/fresh/FlatDD", "added",
		"1 regressions", "threshold 10%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFmtNs(t *testing.T) {
	for _, tc := range []struct {
		ns   float64
		want string
	}{
		{5e11, "500 s"},
		{1.5e9, "1.50 s"},
		{2.5e6, "2.50 ms"},
		{7.5e3, "7.5 µs"},
		{320, "320 ns"},
	} {
		if got := fmtNs(tc.ns); got != tc.want {
			t.Errorf("fmtNs(%v) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestDiffMemGate(t *testing.T) {
	withMem := func(c Cell, peak uint64) Cell {
		c.AllocPeakBytes = peak
		return c
	}
	// 40% memory growth at the default 25% gate: regression, even though
	// wall time is identical.
	d := diffOne(t,
		withMem(cellNs("a", 1e6, 0, 1), 1_000_000),
		withMem(cellNs("a", 1e6, 0, 1), 1_400_000), Options{})
	if d.Verdict != VerdictRegression || !d.HasMem {
		t.Fatalf("40%% mem growth not gated: %+v", d)
	}
	if math.Abs(d.MemDelta-0.4) > 1e-9 {
		t.Errorf("mem delta = %v, want 0.4", d.MemDelta)
	}
	// Growth inside the gate: OK.
	d = diffOne(t,
		withMem(cellNs("a", 1e6, 0, 1), 1_000_000),
		withMem(cellNs("a", 1e6, 0, 1), 1_100_000), Options{})
	if d.Verdict != VerdictOK {
		t.Fatalf("10%% mem growth flagged: %+v", d)
	}
	// The memory gate ignores the minWallNs floor: tiny cells can still
	// regress on footprint.
	d = diffOne(t,
		withMem(cellNs("a", 100, 0, 1), 1_000_000),
		withMem(cellNs("a", 100, 0, 1), 2_000_000), Options{MinWallNs: 1e6})
	if d.Verdict != VerdictRegression {
		t.Fatalf("mem regression suppressed by wall floor: %+v", d)
	}
	// Old records without the field (zero) cannot be compared: no gate.
	d = diffOne(t,
		cellNs("a", 1e6, 0, 1),
		withMem(cellNs("a", 1e6, 0, 1), 5_000_000), Options{})
	if d.HasMem || d.Verdict != VerdictOK {
		t.Fatalf("mem gate fired without baseline data: %+v", d)
	}
	// Custom gate.
	d = diffOne(t,
		withMem(cellNs("a", 1e6, 0, 1), 1_000_000),
		withMem(cellNs("a", 1e6, 0, 1), 1_200_000), Options{MemThreshold: 0.1})
	if d.Verdict != VerdictRegression {
		t.Fatalf("20%% growth at 10%% gate: %+v", d)
	}
}
