package perf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNewStatPercentiles(t *testing.T) {
	// 1..100: p50 = 50.5, p95 = 95.05, p99 = 99.01 (rank q·(n−1)).
	ns := make([]float64, 100)
	for i := range ns {
		ns[i] = float64(100 - i) // unsorted on purpose
	}
	s := NewStat(ns)
	for _, tc := range []struct {
		got, want float64
		name      string
	}{
		{s.P50Ns, 50.5, "p50"},
		{s.P95Ns, 95.05, "p95"},
		{s.P99Ns, 99.01, "p99"},
	} {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("%s = %g, want %g", tc.name, tc.got, tc.want)
		}
	}
	// Degenerate sizes.
	if s := NewStat([]float64{7}); s.P50Ns != 7 || s.P99Ns != 7 {
		t.Errorf("single sample percentiles: %+v", s)
	}
	if s := NewStat(nil); s.P99Ns != 0 {
		t.Errorf("empty percentiles: %+v", s)
	}
	// NewStat must not reorder the caller's samples.
	in := []float64{3, 1, 2}
	NewStat(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("NewStat mutated its input: %v", in)
	}
}

// tailCell builds a cell whose mean and p99 can diverge — the bimodal
// shape the tail gate exists for.
func tailCell(meanNs, p99Ns float64) Cell {
	return Cell{
		Exp: "table1", Circuit: "a", Engine: "FlatDD",
		Wall: Stat{MeanNs: meanNs, MinNs: meanNs, MaxNs: p99Ns, N: 5,
			P50Ns: meanNs, P95Ns: p99Ns, P99Ns: p99Ns},
	}
}

func TestDiffTailRegression(t *testing.T) {
	// Mean unchanged, p99 up 50%: a tail regression the mean gate misses.
	d := diffOne(t, tailCell(1e6, 1.2e6), tailCell(1e6, 1.8e6), Options{})
	if !d.HasTail || d.Verdict != VerdictRegression {
		t.Fatalf("tail-only regression not flagged: %+v", d)
	}
	if math.Abs(d.TailDelta-0.5) > 1e-9 {
		t.Errorf("TailDelta = %g, want 0.5", d.TailDelta)
	}
	// Tail within guard stays ok.
	d = diffOne(t, tailCell(1e6, 1.2e6), tailCell(1e6, 1.25e6), Options{})
	if d.Verdict != VerdictOK {
		t.Fatalf("in-guard tail flagged: %+v", d)
	}
	// A mean improvement with a regressed tail must not be celebrated.
	d = diffOne(t, tailCell(1e6, 1.2e6), tailCell(0.8e6, 1.8e6), Options{})
	if d.Verdict != VerdictRegression {
		t.Fatalf("mean-improved, tail-regressed cell: %+v", d)
	}
}

func TestDiffTailBackwardCompatible(t *testing.T) {
	// Old records carry no percentiles (decoded as zero): the tail gate
	// must stay out of the way, in both directions.
	old := cellNs("a", 1e6, 0, 1) // no percentile fields
	d := diffOne(t, old, tailCell(1e6, 5e6), Options{})
	if d.HasTail || d.Verdict != VerdictOK {
		t.Fatalf("tail gate fired without a baseline: %+v", d)
	}
	d = diffOne(t, old, cellNs("a", 0.5e6, 0, 1), Options{})
	if d.Verdict != VerdictImprovement {
		t.Fatalf("improvement without tail info suppressed: %+v", d)
	}
}

func TestRenderTailColumn(t *testing.T) {
	rep := Diff(recordWith(tailCell(1e6, 1.2e6)), recordWith(tailCell(1e6, 1.8e6)), Options{})
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "p99") {
		t.Errorf("render missing p99 header:\n%s", out)
	}
	if !strings.Contains(out, "+50.0%") {
		t.Errorf("render missing tail delta:\n%s", out)
	}
}
