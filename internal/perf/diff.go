package perf

import (
	"fmt"
	"io"
	"math"
)

// Verdicts for one aligned cell pair.
const (
	VerdictOK           = "ok"
	VerdictRegression   = "regression"
	VerdictImprovement  = "improvement"
	VerdictAdded        = "added"   // cell only in the new record
	VerdictRemoved      = "removed" // cell only in the old record
	VerdictIncomparable = "n/a"     // zero baseline: no relative delta exists
)

// Options parameterizes Diff.
type Options struct {
	// Threshold is the relative wall-time change below which a delta is
	// noise by definition, regardless of stddev (default 0.10 = 10%).
	Threshold float64
	// MinWallNs is a measurement floor: cells whose wall means are both
	// below it are never flagged (their delta is still reported). Cells
	// that small time mostly the scheduler, not the engine — without a
	// floor, a tiny-scale gate run flags a third of its cells between
	// two runs of identical code. Zero means no floor.
	MinWallNs float64
	// MemThreshold is the relative growth of the ledger memory high-water
	// (Cell.AllocPeakBytes) that flags a cell as a regression on its own,
	// independent of wall time (default 0.25 = 25%). The high-water is a
	// deterministic function of the engine's data structures — no
	// stddev-style noise guard applies — but allocator rounding and DD
	// pool growth granularity justify a wider threshold than wall time.
	MemThreshold float64
}

// DefaultThreshold is the regression threshold when Options leaves it
// unset; DefaultMemThreshold the memory high-water one.
const (
	DefaultThreshold    = 0.10
	DefaultMemThreshold = 0.25
)

// CellDiff is one aligned cell pair. Delta is (new-old)/old on the mean
// wall time (positive = slower). Noise is the run-to-run noise floor
// derived from the repetition stddevs: 2·(σ_old/µ_old + σ_new/µ_new), a
// crude benchstat-style two-sigma guard. A delta only counts as a
// regression (or improvement) when it clears both the threshold and the
// noise floor.
type CellDiff struct {
	Key     string
	Old     *Cell
	New     *Cell
	Delta   float64
	Noise   float64
	Verdict string
	// TailDelta is (new-old)/old on the p99 wall time; HasTail reports
	// whether both records carry percentiles (records predating the
	// percentile fields decode them as zero). A tail regression flags the
	// cell even when the mean moved less than the guard — a latency SLO
	// gate, not just a throughput gate.
	TailDelta float64
	HasTail   bool
	// MemDelta is (new-old)/old on the ledger memory high-water
	// (AllocPeakBytes); HasMem reports whether both records carry it. A
	// memory regression flags the cell even at identical wall time — the
	// high-water gate catches "faster but only because it doubled the
	// working set".
	MemDelta float64
	HasMem   bool
}

// Report is the outcome of comparing two records.
type Report struct {
	Threshold    float64
	MemThreshold float64
	Diffs        []CellDiff
}

// Diff aligns the cells of two records by key and classifies every pair.
// New-record order is preserved; cells that vanished come last.
func Diff(old, cur *Record, opts Options) Report {
	th := opts.Threshold
	if th <= 0 {
		th = DefaultThreshold
	}
	if opts.MemThreshold <= 0 {
		opts.MemThreshold = DefaultMemThreshold
	}
	rep := Report{Threshold: th, MemThreshold: opts.MemThreshold}

	oldIdx := make(map[string]*Cell, len(old.Cells))
	for i := range old.Cells {
		oldIdx[old.Cells[i].Key()] = &old.Cells[i]
	}
	matched := make(map[string]bool, len(old.Cells))
	for i := range cur.Cells {
		nc := &cur.Cells[i]
		k := nc.Key()
		oc, ok := oldIdx[k]
		if !ok {
			rep.Diffs = append(rep.Diffs, CellDiff{Key: k, New: nc, Verdict: VerdictAdded})
			continue
		}
		matched[k] = true
		rep.Diffs = append(rep.Diffs, compareCells(k, oc, nc, th, opts.MinWallNs, opts.MemThreshold))
	}
	for i := range old.Cells {
		oc := &old.Cells[i]
		if k := oc.Key(); !matched[k] {
			rep.Diffs = append(rep.Diffs, CellDiff{Key: k, Old: oc, Verdict: VerdictRemoved})
		}
	}
	return rep
}

func compareCells(key string, oc, nc *Cell, threshold, minWallNs, memThreshold float64) CellDiff {
	d := CellDiff{Key: key, Old: oc, New: nc, Verdict: VerdictOK}
	if ob, nb := oc.AllocPeakBytes, nc.AllocPeakBytes; ob > 0 && nb > 0 {
		d.HasMem = true
		d.MemDelta = (float64(nb) - float64(ob)) / float64(ob)
	}
	om, nm := oc.Wall.MeanNs, nc.Wall.MeanNs
	if om <= 0 {
		// Zero (or missing) baseline: a relative delta does not exist.
		// Never a regression; flagged so a human looks at it.
		if nm > 0 {
			d.Verdict = VerdictIncomparable
		}
		return d
	}
	d.Delta = (nm - om) / om
	d.Noise = 2 * (relStddev(oc.Wall) + relStddev(nc.Wall))
	if op, np := oc.Wall.P99Ns, nc.Wall.P99Ns; op > 0 && np > 0 {
		d.HasTail = true
		d.TailDelta = (np - op) / op
	}
	if d.HasMem && d.MemDelta > memThreshold {
		// Memory high-water regression: flags regardless of wall time
		// (and of the measurement floor — a tiny-wall cell can still
		// blow up its working set).
		d.Verdict = VerdictRegression
		return d
	}
	if om < minWallNs && nm < minWallNs {
		return d // below the measurement floor: report, never flag
	}
	guard := math.Max(threshold, d.Noise)
	switch {
	case d.Delta > guard || (d.HasTail && d.TailDelta > guard):
		d.Verdict = VerdictRegression
	case d.Delta < -guard && (!d.HasTail || d.TailDelta <= guard):
		d.Verdict = VerdictImprovement
	}
	return d
}

// relStddev is σ/µ, zero for single-repetition stats (no spread
// information, so only the threshold guards them).
func relStddev(s Stat) float64 {
	if s.MeanNs <= 0 || s.N < 2 {
		return 0
	}
	return s.StddevNs / s.MeanNs
}

// Regressions counts cells whose verdict is a regression.
func (r Report) Regressions() int { return r.count(VerdictRegression) }

// Improvements counts cells whose verdict is an improvement.
func (r Report) Improvements() int { return r.count(VerdictImprovement) }

func (r Report) count(v string) int {
	n := 0
	for _, d := range r.Diffs {
		if d.Verdict == v {
			n++
		}
	}
	return n
}

// Render renders the report as an aligned text table plus a summary
// line. It always writes every row: records are small and an "ok" row
// carries the measured delta, which is the point of the exercise.
func (r Report) Render(w io.Writer) {
	rows := make([][8]string, 0, len(r.Diffs))
	for _, d := range r.Diffs {
		row := [8]string{d.Key, "-", "-", "-", "-", "-", "-", d.Verdict}
		if d.Old != nil {
			row[1] = fmtNs(d.Old.Wall.MeanNs)
		}
		if d.New != nil {
			row[2] = fmtNs(d.New.Wall.MeanNs)
		}
		if d.Old != nil && d.New != nil && d.Old.Wall.MeanNs > 0 {
			row[3] = fmt.Sprintf("%+.1f%%", 100*d.Delta)
			if d.HasTail {
				row[4] = fmt.Sprintf("%+.1f%%", 100*d.TailDelta)
			}
			row[6] = fmt.Sprintf("±%.1f%%", 100*math.Max(r.Threshold, d.Noise))
		}
		if d.HasMem {
			row[5] = fmt.Sprintf("%+.1f%%", 100*d.MemDelta)
		}
		rows = append(rows, row)
	}
	headers := [8]string{"cell", "old", "new", "delta", "p99", "mem", "guard", "verdict"}
	widths := [8]int{}
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells [8]string) {
		fmt.Fprintf(w, "%-*s  %*s  %*s  %*s  %*s  %*s  %*s  %s\n",
			widths[0], cells[0], widths[1], cells[1], widths[2], cells[2],
			widths[3], cells[3], widths[4], cells[4], widths[5], cells[5],
			widths[6], cells[6], cells[7])
	}
	printRow(headers)
	for _, row := range rows {
		printRow(row)
	}
	fmt.Fprintf(w, "\n%d cells: %d regressions, %d improvements, %d added, %d removed, %d incomparable (threshold %.0f%%)\n",
		len(r.Diffs), r.Regressions(), r.Improvements(),
		r.count(VerdictAdded), r.count(VerdictRemoved), r.count(VerdictIncomparable),
		100*r.Threshold)
}

// fmtNs renders a nanosecond quantity with adaptive units, matching the
// benchmark tables.
func fmtNs(ns float64) string {
	s := ns / 1e9
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.1f µs", s*1e6)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}
