package faults

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndPointAreNoOps(t *testing.T) {
	var r *Registry
	p := r.Point("anything")
	if p != nil {
		t.Fatal("nil registry handed out a non-nil point")
	}
	if f := p.Fire(); f != nil {
		t.Fatal("nil point fired")
	}
	p.Panic() // must not panic
	if err := p.Err(); err != nil {
		t.Fatalf("nil point Err = %v", err)
	}
	if z, ok := p.Corrupt(3 + 4i); ok || z != 3+4i {
		t.Fatalf("nil point corrupted: %v %v", z, ok)
	}
	p.Sleep()
	if p.Hits() != 0 || p.Fires() != 0 || p.Name() != "" {
		t.Fatal("nil point has state")
	}
	if r.Names() != nil {
		t.Fatal("nil registry has names")
	}
}

func TestUnarmedPointCountsButNeverFires(t *testing.T) {
	r := New(1)
	p := r.Point("x")
	for i := 0; i < 100; i++ {
		if f := p.Fire(); f != nil {
			t.Fatal("unarmed point fired")
		}
	}
	if p.Hits() != 100 || p.Fires() != 0 {
		t.Fatalf("hits=%d fires=%d", p.Hits(), p.Fires())
	}
}

func TestNthHitTrigger(t *testing.T) {
	r := New(1)
	p := r.Arm("x", Trigger{Nth: 3, Transient: true})
	for i := int64(1); i <= 10; i++ {
		f := p.Fire()
		if (f != nil) != (i == 3) {
			t.Fatalf("hit %d: fired=%v", i, f != nil)
		}
		if f != nil {
			if f.Point != "x" || !f.Transient {
				t.Fatalf("injected = %+v", f)
			}
		}
	}
	if p.Fires() != 1 {
		t.Fatalf("fires = %d, want 1", p.Fires())
	}
}

func TestProbabilityTriggerIsSeedDeterministic(t *testing.T) {
	run := func() []int64 {
		r := New(42)
		p := r.Arm("x", Trigger{Prob: 0.25})
		var fired []int64
		for i := int64(1); i <= 200; i++ {
			if p.Fire() != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("prob 0.25 never fired over 200 hits")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic fire count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic fire sequence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimesCapsFires(t *testing.T) {
	r := New(1)
	p := r.Arm("x", Trigger{Prob: 1, Times: 2})
	n := 0
	for i := 0; i < 10; i++ {
		if p.Fire() != nil {
			n++
		}
	}
	if n != 2 || p.Fires() != 2 {
		t.Fatalf("fired %d times (point says %d), want 2", n, p.Fires())
	}
}

func TestDisarmStopsFiring(t *testing.T) {
	r := New(1)
	p := r.Arm("x", Trigger{Prob: 1})
	if p.Fire() == nil {
		t.Fatal("armed point did not fire")
	}
	r.Disarm("x")
	if p.Fire() != nil {
		t.Fatal("disarmed point fired")
	}
	if p.Hits() != 2 {
		t.Fatalf("hits = %d, want 2 (counting continues)", p.Hits())
	}
}

func TestPanicAndErrHelpers(t *testing.T) {
	r := New(1)
	p := r.Arm("boom", Trigger{Nth: 1})
	func() {
		defer func() {
			rec := recover()
			inj, ok := rec.(*Injected)
			if !ok || inj.Point != "boom" {
				t.Fatalf("recovered %v (%T)", rec, rec)
			}
		}()
		p.Panic()
		t.Fatal("Panic did not panic on a firing point")
	}()

	q := r.Arm("alloc", Trigger{Nth: 1})
	err := q.Err()
	var inj *Injected
	if !errors.As(err, &inj) || inj.Point != "alloc" {
		t.Fatalf("Err = %v", err)
	}
	if q.Err() != nil {
		t.Fatal("Nth=1 fired twice")
	}
}

func TestCorruptFactorAndNaN(t *testing.T) {
	r := New(1)
	p := r.Arm("c", Trigger{Nth: 1, Factor: 2})
	z, ok := p.Corrupt(1 + 1i)
	if !ok || z != 2+2i {
		t.Fatalf("Corrupt = %v %v, want (2+2i) true", z, ok)
	}
	q := r.Arm("c2", Trigger{Nth: 1}) // zero Factor: NaN
	z, ok = q.Corrupt(1)
	if !ok || !math.IsNaN(real(z)) || !math.IsNaN(imag(z)) {
		t.Fatalf("Corrupt = %v %v, want NaN true", z, ok)
	}
}

func TestSleepDelays(t *testing.T) {
	r := New(1)
	p := r.Arm("slow", Trigger{Nth: 1, Delay: 20 * time.Millisecond})
	t0 := time.Now()
	p.Sleep()
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want ~20ms", d)
	}
	t0 = time.Now()
	p.Sleep() // no longer firing
	if d := time.Since(t0); d > 10*time.Millisecond {
		t.Fatalf("non-firing Sleep took %v", d)
	}
}

func TestConcurrentHitsAreCountedExactly(t *testing.T) {
	r := New(7)
	p := r.Arm("x", Trigger{Nth: 500})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fires := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if p.Fire() != nil {
					mu.Lock()
					fires++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if p.Hits() != 2000 {
		t.Fatalf("hits = %d, want 2000", p.Hits())
	}
	if fires != 1 || p.Fires() != 1 {
		t.Fatalf("fires = %d (point says %d), want exactly 1", fires, p.Fires())
	}
}

func TestNamesSorted(t *testing.T) {
	r := New(1)
	r.Point("b")
	r.Point("a")
	r.Arm("c", Trigger{})
	got := r.Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Names = %v", got)
	}
}
