// Package faults is a deterministic, seed-driven fault-injection
// registry for exercising the engine's containment and degradation
// paths. Components expose named injection points (the catalog constants
// below); a test arms a point with a Trigger and the component's hook
// fires a panic, an error, a value corruption, or an artificial delay at
// that site.
//
// The design mirrors internal/obs: every handle is nil-safe, a nil
// *Registry hands out nil *Points, and every hook site costs exactly one
// pointer check when injection is off — production code never pays for
// the machinery and never needs build tags.
//
// Determinism: Nth-hit triggers fire on an exact hit count, and
// probability triggers draw from one seeded generator, so a single-
// threaded sequence of hits replays identically for a given seed. (Under
// concurrency the hit *order* is scheduling-dependent, but the fire
// count distribution still is seed-stable.)
package faults

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Injection-point catalog. Components register hooks under these names;
// DESIGN.md §9 documents what each one forces.
const (
	// SchedWorkerPanic panics inside a scheduler pool task, killing the
	// task mid-flight on whichever worker picked it up.
	SchedWorkerPanic = "sched.worker.panic"
	// SchedTaskSlow sleeps for the trigger's Delay inside a pool task
	// (artificial stragglers for deadline/backpressure tests).
	SchedTaskSlow = "sched.task.slow"
	// CoreConvertAlloc simulates an allocation failure of the flat array
	// at DD→array conversion time; core degrades to the DD phase.
	CoreConvertAlloc = "core.convert.alloc"
	// DMAVCacheCorrupt corrupts one cached sub-vector entry of the
	// cached DMAV path (Algorithm 2) after a chunk computes it.
	DMAVCacheCorrupt = "dmav.cache.corrupt"
	// DMAVComputeCorrupt corrupts one output amplitude of the uncached
	// DMAV path (Algorithm 1) after a row chunk computes it.
	DMAVComputeCorrupt = "dmav.compute.corrupt"

	// Cluster network-level injection points (internal/cluster). The
	// coordinator checks both the bare point and the per-replica variant
	// "<point>.<replica-name>", so a test can take down one replica or
	// degrade the whole fleet with the same catalog name.

	// ClusterReplicaDown makes coordinator→replica calls (RPCs and health
	// probes alike) fail as if the replica process were unreachable:
	// K consecutive probe failures walk the replica through suspect→dead
	// and trigger failover without killing anything for real.
	ClusterReplicaDown = "cluster.replica.down"
	// ClusterRPCTimeout fails one coordinator→replica RPC with a
	// deadline-style error before it reaches the wire (exercises the
	// retry/backoff and circuit-breaker paths; probes are unaffected).
	ClusterRPCTimeout = "cluster.rpc.timeout"
	// ClusterRPCSlow delays a coordinator→replica RPC by the trigger's
	// Delay (stragglers for tail-latency and breaker half-open tests).
	ClusterRPCSlow = "cluster.rpc.slow"
)

// Injected is the value a firing point produces: the panic value at
// panic sites, the error at error sites. It carries the classification
// the containment layer surfaces (core wraps it into an EngineFault).
type Injected struct {
	// Point is the injection-point name that fired.
	Point string
	// Transient marks the fault retry-safe: the job service re-queues
	// jobs that fail with a transient engine fault.
	Transient bool
	// Delay is the sleep applied by slowness sites.
	Delay time.Duration
	// Factor scales the value at corruption sites; the zero value means
	// "replace with NaN" (the harshest corruption, caught by any sweep).
	Factor complex128
}

// Error makes an Injected usable directly as an error at error sites.
func (e *Injected) Error() string { return "faults: injected fault at " + e.Point }

// Trigger says when an armed point fires.
type Trigger struct {
	// Nth fires on exactly the Nth hit of the point (1-based). Zero
	// disables the hit-count trigger.
	Nth int64
	// Prob fires each hit with this probability, drawn from the
	// registry's seeded generator. Zero disables.
	Prob float64
	// Times caps the total number of fires (0 = unlimited).
	Times int64
	// Transient, Delay and Factor are carried into the Injected value.
	Transient bool
	Delay     time.Duration
	Factor    complex128
}

// Registry owns the injection points of one system under test.
type Registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*Point
}

// New returns a registry whose probability triggers draw from a
// generator seeded with seed.
func New(seed int64) *Registry {
	return &Registry{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[string]*Point),
	}
}

// Point returns the handle for a named injection point, creating it
// unarmed if needed. On a nil registry it returns nil — the nil *Point
// is a valid never-firing hook, which is what production code holds.
func (r *Registry) Point(name string) *Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.points[name]
	if !ok {
		p = &Point{name: name, reg: r}
		r.points[name] = p
	}
	return p
}

// Arm installs a trigger on a named point (replacing any previous one)
// and returns the point. Arming a point does not reset its hit counter,
// so Nth counts hits since the registry was created.
func (r *Registry) Arm(name string, t Trigger) *Point {
	p := r.Point(name)
	p.mu.Lock()
	p.trig = t
	p.armed = true
	p.mu.Unlock()
	return p
}

// Disarm removes the trigger from a named point (hit counting continues).
func (r *Registry) Disarm(name string) {
	p := r.Point(name)
	p.mu.Lock()
	p.armed = false
	p.mu.Unlock()
}

// Names returns the sorted names of every point seen so far.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.points))
	for n := range r.points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// draw returns one uniform float from the seeded generator.
func (r *Registry) draw() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Point is one named injection site. All methods are safe on a nil
// receiver (no-ops that never fire), safe for concurrent use, and count
// every hit whether or not a trigger is armed.
type Point struct {
	name string
	reg  *Registry

	mu    sync.Mutex
	trig  Trigger
	armed bool
	hits  int64
	fires int64
}

// Name returns the point's catalog name ("" on nil).
func (p *Point) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Hits returns how many times the hook site was reached.
func (p *Point) Hits() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// Fires returns how many times the point actually fired.
func (p *Point) Fires() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fires
}

// Fire records one hit and returns the injected fault if the trigger
// fires, nil otherwise. This is the primitive the typed helpers below
// build on; hook sites that need custom behaviour can use it directly.
func (p *Point) Fire() *Injected {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.hits++
	hit := p.hits
	t := p.trig
	fire := false
	if p.armed && (t.Times == 0 || p.fires < t.Times) {
		if t.Nth > 0 && hit == t.Nth {
			fire = true
		}
		prob := t.Prob
		p.mu.Unlock()
		// The registry draw takes its own lock; keep the point unlocked
		// across it so concurrent hitters of different points never
		// contend in lock order.
		if !fire && prob > 0 && p.reg.draw() < prob {
			fire = true
		}
		p.mu.Lock()
	}
	if fire {
		p.fires++
	}
	p.mu.Unlock()
	if !fire {
		return nil
	}
	return &Injected{Point: p.name, Transient: t.Transient, Delay: t.Delay, Factor: t.Factor}
}

// Panic panics with the *Injected value when the point fires. This is
// the hook for "kill the worker mid-task" sites.
func (p *Point) Panic() {
	if f := p.Fire(); f != nil {
		panic(f)
	}
}

// Err returns the *Injected as an error when the point fires, nil
// otherwise. This is the hook for simulated-failure sites (e.g. an
// allocation that "fails").
func (p *Point) Err() error {
	if f := p.Fire(); f != nil {
		return f
	}
	return nil
}

// Sleep blocks for the armed Delay when the point fires (artificial
// slowness sites).
func (p *Point) Sleep() {
	if f := p.Fire(); f != nil && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}

// Corrupt returns a corrupted version of z and true when the point
// fires: z scaled by the armed Factor, or NaN+NaNi when Factor is zero.
// Otherwise it returns z unchanged and false.
func (p *Point) Corrupt(z complex128) (complex128, bool) {
	f := p.Fire()
	if f == nil {
		return z, false
	}
	if f.Factor == 0 {
		return complex(math.NaN(), math.NaN()), true
	}
	return z * f.Factor, true
}
