package workloads

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestWStateAmplitudes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		s := simulate(WState(n))
		want := 1 / math.Sqrt(float64(n))
		for i, a := range s.Amplitudes() {
			isOneHot := i != 0 && i&(i-1) == 0
			if isOneHot {
				if math.Abs(cmplx.Abs(a)-want) > 1e-9 {
					t.Fatalf("n=%d: |amp(%d)| = %v, want %v", n, i, cmplx.Abs(a), want)
				}
			} else if cmplx.Abs(a) > 1e-9 {
				t.Fatalf("n=%d: non-one-hot amplitude at %d: %v", n, i, a)
			}
		}
	}
}

func TestQAOAShapeAndNorm(t *testing.T) {
	c := QAOA(8, 3, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hadamard wall + per-round edges (ring >= n) + mixers.
	if c.GateCount() < 8+3*(8+8) {
		t.Fatalf("QAOA suspiciously small: %d gates", c.GateCount())
	}
	s := simulate(c)
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm %v", s.Norm())
	}
	// Deterministic per seed.
	if QAOA(8, 3, 1).GateCount() != c.GateCount() {
		t.Fatal("QAOA not deterministic")
	}
}

func TestQuantumVolumeShape(t *testing.T) {
	c := QuantumVolume(6, 6, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := simulate(c)
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm %v", s.Norm())
	}
	// QV circuits scramble: no amplitude should dominate.
	for i, a := range s.Amplitudes() {
		if p := real(a)*real(a) + imag(a)*imag(a); p > 0.7 {
			t.Fatalf("state not scrambled: P(%d)=%v", i, p)
		}
	}
}

func TestExtraWorkloadsInRegistry(t *testing.T) {
	for _, name := range []string{"qaoa", "wstate", "qv", "randct"} {
		c, err := Build(name, 6, 3)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if c.Qubits != 6 {
			t.Fatalf("Build(%s) qubits = %d", name, c.Qubits)
		}
	}
	if len(Names()) != 14 {
		t.Fatalf("Names() = %v", Names())
	}
}
