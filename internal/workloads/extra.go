package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"flatdd/internal/circuit"
)

// RandomCliffordT builds a seeded random circuit over n qubits from the
// Clifford+T gate set (H, S, S†, T, T†, X, Z, CX, CZ). The distribution
// leans on H and CX so the state neither stays sparse (which would leave
// conversion and DMAV column paths untested) nor becomes trivially
// diagonal. It is the workhorse of the cross-engine differential suite
// (internal/difftest) and the job service's smoke workload (registry name
// "randct").
func RandomCliffordT(n, gates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("rand-ct-n%d-g%d-s%d", n, gates, seed), n)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		switch rng.Intn(10) {
		case 0, 1:
			c.Append(circuit.H(q))
		case 2:
			c.Append(circuit.S(q))
		case 3:
			c.Append(circuit.Sdg(q))
		case 4:
			c.Append(circuit.T(q))
		case 5:
			c.Append(circuit.Tdg(q))
		case 6:
			c.Append(circuit.X(q))
		case 7:
			c.Append(circuit.Z(q))
		default:
			if n < 2 {
				c.Append(circuit.H(q))
				continue
			}
			t := rng.Intn(n - 1)
			if t >= q {
				t++
			}
			if rng.Intn(2) == 0 {
				c.Append(circuit.CX(q, t))
			} else {
				c.Append(circuit.CZ(q, t))
			}
		}
	}
	return c
}

// RandCTGatesFor is the gate count the "randct" registry entry uses: deep
// enough that the EWMA controller converts mid-circuit at serving sizes,
// shallow enough that a smoke job finishes in seconds.
func RandCTGatesFor(n int) int { return 20 * n }

// QAOA returns a Quantum Approximate Optimization Algorithm circuit for
// MaxCut on a random d-regular-ish graph over n vertices with p rounds:
// per round, RZZ(gamma) on every edge and RX(2*beta) on every qubit, after
// an initial Hadamard wall. QAOA circuits sit between VQE and supremacy in
// regularity: the diagonal cost layers keep some DD structure, the mixer
// destroys it gradually.
func QAOA(n, rounds int, seed int64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qaoa_n%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	// Random graph: a ring plus n/2 random chords, deduplicated.
	type edge struct{ a, b int }
	seen := make(map[edge]bool)
	var edges []edge
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		e := edge{a, b}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	for v := 0; v < n; v++ {
		addEdge(v, (v+1)%n)
	}
	for k := 0; k < n/2; k++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}

	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	for r := 0; r < rounds; r++ {
		gamma := rng.Float64() * math.Pi
		beta := rng.Float64() * math.Pi / 2
		for _, e := range edges {
			c.Append(circuit.RZZ(gamma, e.a, e.b))
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.RX(2*beta, q))
		}
	}
	return c
}

// WState returns the n-qubit W-state preparation circuit
// (1/sqrt(n))(|100..> + |010..> + ... + |0..01>) built from cascaded
// controlled rotations: a regular, DD-friendly state like GHZ.
func WState(n int) *circuit.Circuit {
	if n < 1 {
		panic("workloads: W state needs n >= 1")
	}
	c := circuit.New(fmt.Sprintf("wstate_n%d", n), n)
	c.Append(circuit.X(0))
	for k := 1; k < n; k++ {
		// Rotate amplitude 1/sqrt(n-k+1) of the current excitation from
		// qubit k-1 onto qubit k, controlled on qubit k-1.
		theta := 2 * math.Acos(math.Sqrt(1/float64(n-k+1)))
		c.Append(circuit.CRY(theta, k-1, k))
		c.Append(circuit.CX(k, k-1))
	}
	return c
}

// QuantumVolume returns a quantum-volume-style circuit: depth layers, each
// a random permutation of the qubits followed by Haar-ish random two-qubit
// blocks (KAK-decomposed into single-qubit u3 rotations around a CX-CX
// core) on adjacent pairs. These circuits scramble as fast as supremacy
// circuits and are a standard irregular benchmark.
func QuantumVolume(n, depth int, seed int64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qv_n%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	ru3 := func(q int) circuit.Gate {
		return circuit.U3(rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, q)
	}
	for d := 0; d < depth; d++ {
		perm := rng.Perm(n)
		for k := 0; k+1 < n; k += 2 {
			a, b := perm[k], perm[k+1]
			c.Append(ru3(a), ru3(b))
			c.Append(circuit.CX(a, b))
			c.Append(ru3(a), ru3(b))
			c.Append(circuit.CX(b, a))
			c.Append(ru3(a), ru3(b))
		}
	}
	return c
}
