// Package workloads generates the quantum-circuit families the FlatDD paper
// evaluates on (Section 4, Table 1): DNN, Adder, GHZ state, VQE, KNN, Swap
// test, and Google quantum-supremacy random circuits, plus QFT, Grover and
// Bernstein-Vazirani circuits used by the examples.
//
// The paper draws these from QASMBench [69], MQT Bench [88] and the Google
// supremacy data [7]; this package reimplements the published constructions
// so that the same families are available at any register size without
// external circuit files (a QASM parser for real files lives in
// internal/qasm). All generators are deterministic for a given seed.
package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"flatdd/internal/circuit"
)

// GHZ returns the n-qubit GHZ-state preparation: H on qubit 0 followed by a
// CX ladder (MQT Bench "ghz").
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("ghz_n%d", n), n)
	if n == 0 {
		return c
	}
	c.Append(circuit.H(0))
	for q := 1; q < n; q++ {
		c.Append(circuit.CX(q-1, q))
	}
	return c
}

// Adder returns a Cuccaro ripple-carry adder computing b <- a + b on an
// n-qubit register laid out as [cin, a0, b0, a1, b1, ..., cout]. n must be
// even and >= 4; the adder width is (n-2)/2 bits. The inputs are
// initialized with X gates from the seed so the circuit is self-contained
// (the QASMBench "adder" family does the same). Its state stays regular
// throughout — the DD-friendly end of the spectrum in Figure 1.
func Adder(n int, seed int64) *circuit.Circuit {
	if n < 4 || n%2 != 0 {
		panic(fmt.Sprintf("workloads: adder needs an even register of >= 4 qubits, got %d", n))
	}
	k := (n - 2) / 2
	c := circuit.New(fmt.Sprintf("adder_n%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	cin := 0
	a := func(i int) int { return 1 + 2*i }
	b := func(i int) int { return 2 + 2*i }
	cout := n - 1

	// Random input values.
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 1 {
			c.Append(circuit.X(a(i)))
		}
		if rng.Intn(2) == 1 {
			c.Append(circuit.X(b(i)))
		}
	}

	maj := func(x, y, z int) {
		c.Append(circuit.CX(z, y), circuit.CX(z, x), circuit.CCX(x, y, z))
	}
	uma := func(x, y, z int) {
		c.Append(circuit.CCX(x, y, z), circuit.CX(z, x), circuit.CX(x, y))
	}

	maj(cin, b(0), a(0))
	for i := 1; i < k; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.Append(circuit.CX(a(k-1), cout))
	for i := k - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c
}

// DNN returns a layered quantum deep-neural-network circuit in the style of
// the QASMBench "dnn" family (quantum neurons built from parameterized
// rotations and entangling layers). Each layer applies U3 rotations to
// every qubit, a CX ring, and RY rotations — random angles make the state
// amplitudes irregular quickly, the DD-hostile end of Figure 1.
func DNN(n, layers int, seed int64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("dnn_n%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.Append(circuit.U3(rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, q))
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.CX(q, (q+1)%n))
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.RY(rng.Float64()*math.Pi, q))
		}
	}
	return c
}

// DNNDepthFor returns the layer count that makes DNN(n) roughly match the
// paper's gate-count-per-qubit ratio (dnn_n16 has 2032 gates, i.e. ~127
// gates per qubit; one DNN layer here is 3n gates).
func DNNDepthFor(n int) int {
	const gatesPerQubit = 127
	layers := gatesPerQubit / 3
	if layers < 1 {
		layers = 1
	}
	return layers
}

// VQE returns a hardware-efficient variational-quantum-eigensolver ansatz:
// per layer, RY+RZ on every qubit and a linear CX entangler chain
// (QASMBench "vqe" style; vqe_n16 with 95 gates corresponds to two layers).
func VQE(n, layers int, seed int64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("vqe_n%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < n; q++ {
		c.Append(circuit.RY(rng.Float64()*math.Pi, q))
	}
	for l := 0; l < layers; l++ {
		for q := 0; q+1 < n; q++ {
			c.Append(circuit.CX(q, q+1))
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.RY(rng.Float64()*math.Pi, q), circuit.RZ(rng.Float64()*2*math.Pi, q))
		}
	}
	return c
}

// SwapTest returns the swap-test circuit estimating |<psi|phi>|^2 between
// two (n-1)/2-qubit random product states: ancilla Hadamard, a ladder of
// Fredkin gates, and a closing Hadamard (QASMBench "swap_test"). n must be
// odd and >= 3. The controlled swaps entangle the ancilla with everything,
// producing a large irregular DD mid-circuit.
func SwapTest(n int, seed int64) *circuit.Circuit {
	if n < 3 || n%2 == 0 {
		panic(fmt.Sprintf("workloads: swap test needs an odd register of >= 3 qubits, got %d", n))
	}
	k := (n - 1) / 2
	c := circuit.New(fmt.Sprintf("swaptest_n%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	anc := 0
	// Prepare |psi> on qubits 1..k and |phi> on k+1..2k.
	for q := 1; q <= 2*k; q++ {
		c.Append(circuit.RY(rng.Float64()*math.Pi, q))
	}
	c.Append(circuit.H(anc))
	for i := 0; i < k; i++ {
		c.Append(circuit.CSwap(anc, 1+i, 1+k+i)...)
	}
	c.Append(circuit.H(anc))
	return c
}

// KNN returns a quantum k-nearest-neighbour kernel circuit (QASMBench
// "knn"): the same swap-test core with amplitude-encoded feature vectors
// (an extra layer of RY+RZ encodes richer features than SwapTest).
func KNN(n int, seed int64) *circuit.Circuit {
	if n < 3 || n%2 == 0 {
		panic(fmt.Sprintf("workloads: knn needs an odd register of >= 3 qubits, got %d", n))
	}
	k := (n - 1) / 2
	c := circuit.New(fmt.Sprintf("knn_n%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	anc := 0
	for q := 1; q <= 2*k; q++ {
		c.Append(circuit.RY(rng.Float64()*math.Pi, q))
		c.Append(circuit.RZ(rng.Float64()*2*math.Pi, q))
	}
	c.Append(circuit.H(anc))
	for i := 0; i < k; i++ {
		c.Append(circuit.CSwap(anc, 1+i, 1+k+i)...)
	}
	c.Append(circuit.H(anc))
	return c
}

// Supremacy returns a Google-quantum-supremacy-style random circuit [7] on
// a rows x cols qubit grid (n = rows*cols): each cycle applies a random
// single-qubit gate from {sqrt(X), sqrt(Y), sqrt(W)} to every qubit (never
// repeating the previous cycle's gate on the same qubit) followed by a
// layer of fSim(pi/2, pi/6) entanglers on one of four alternating grid
// patterns. These circuits scramble amplitudes maximally — the hardest
// family in Table 1.
func Supremacy(rows, cols, cycles int, seed int64) *circuit.Circuit {
	n := rows * cols
	c := circuit.New(fmt.Sprintf("supremacy_n%d", n), n)
	rng := rand.New(rand.NewSource(seed))
	qubit := func(r, col int) int { return r*cols + col }
	last := make([]int, n)
	for i := range last {
		last[i] = -1
	}
	for cycle := 0; cycle < cycles; cycle++ {
		// Single-qubit layer.
		for q := 0; q < n; q++ {
			g := rng.Intn(3)
			for g == last[q] {
				g = rng.Intn(3)
			}
			last[q] = g
			switch g {
			case 0:
				c.Append(circuit.SX(q))
			case 1:
				c.Append(circuit.SY(q))
			default:
				c.Append(circuit.SW(q))
			}
		}
		// Two-qubit layer: alternate between 4 coupler patterns (right
		// pairs even/odd columns, down pairs even/odd rows).
		switch cycle % 4 {
		case 0, 2:
			off := (cycle / 2) % 2
			for r := 0; r < rows; r++ {
				for col := off; col+1 < cols; col += 2 {
					c.Append(circuit.FSim(math.Pi/2, math.Pi/6, qubit(r, col), qubit(r, col+1)))
				}
			}
		case 1, 3:
			off := ((cycle - 1) / 2) % 2
			for r := off; r+1 < rows; r += 2 {
				for col := 0; col < cols; col++ {
					c.Append(circuit.FSim(math.Pi/2, math.Pi/6, qubit(r, col), qubit(r+1, col)))
				}
			}
		}
	}
	return c
}

// SupremacyGrid picks a near-square grid for n qubits and returns the
// supremacy circuit with the given cycle count.
func SupremacyGrid(n, cycles int, seed int64) *circuit.Circuit {
	rows := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return Supremacy(rows, n/rows, cycles, seed)
}

// QFT returns the quantum Fourier transform on n qubits (with the final
// qubit-reversal swaps).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qft_n%d", n), n)
	for i := n - 1; i >= 0; i-- {
		c.Append(circuit.H(i))
		for j := i - 1; j >= 0; j-- {
			c.Append(circuit.CP(math.Pi/math.Pow(2, float64(i-j)), j, i))
		}
	}
	for i := 0; i < n/2; i++ {
		c.Append(circuit.SWAP(i, n-1-i))
	}
	return c
}

// BernsteinVazirani returns the BV circuit recovering the given secret
// bitstring: the final measurement distribution is a point mass on secret.
// The register has n data qubits plus one ancilla (qubit n).
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("bv_n%d", n+1), n+1)
	c.Append(circuit.X(n), circuit.H(n))
	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	for q := 0; q < n; q++ {
		if secret>>uint(q)&1 == 1 {
			c.Append(circuit.CX(q, n))
		}
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	return c
}

// Grover returns a Grover-search circuit over n qubits marking the given
// basis state, with the optimal iteration count (or the supplied one if
// iters > 0).
func Grover(n int, marked uint64, iters int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("grover_n%d", n), n)
	if iters <= 0 {
		iters = int(math.Round(math.Pi / 4 * math.Sqrt(math.Pow(2, float64(n)))))
		if iters < 1 {
			iters = 1
		}
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	allQubits := make([]int, n-1)
	for i := range allQubits {
		allQubits[i] = i
	}
	oracle := func() {
		// Phase-flip the marked state: X-conjugated multi-controlled Z.
		for q := 0; q < n; q++ {
			if marked>>uint(q)&1 == 0 {
				c.Append(circuit.X(q))
			}
		}
		if n == 1 {
			c.Append(circuit.Z(0))
		} else {
			c.Append(circuit.Gate{Name: "mcz", Targets: []int{n - 1},
				Controls: controlsFor(n - 1), U: [][]complex128{{1, 0}, {0, -1}}})
		}
		for q := 0; q < n; q++ {
			if marked>>uint(q)&1 == 0 {
				c.Append(circuit.X(q))
			}
		}
	}
	diffuse := func() {
		for q := 0; q < n; q++ {
			c.Append(circuit.H(q), circuit.X(q))
		}
		if n == 1 {
			c.Append(circuit.Z(0))
		} else {
			c.Append(circuit.Gate{Name: "mcz", Targets: []int{n - 1},
				Controls: controlsFor(n - 1), U: [][]complex128{{1, 0}, {0, -1}}})
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.X(q), circuit.H(q))
		}
	}
	for it := 0; it < iters; it++ {
		oracle()
		diffuse()
	}
	return c
}

func controlsFor(k int) []circuit.Control {
	cs := make([]circuit.Control, k)
	for i := range cs {
		cs[i] = circuit.Control{Qubit: i}
	}
	return cs
}
