package workloads

import (
	"fmt"
	"sort"

	"flatdd/internal/circuit"
)

// SupremacyCyclesFor returns the cycle count that matches the paper's gate
// density for the supremacy family (supremacy_n20 has 4500 gates; one cycle
// here contributes roughly 1.4n gates).
func SupremacyCyclesFor(n int) int {
	const gatesPerQubit = 225
	cycles := gatesPerQubit * 10 / 14 // one cycle is ~1.4n gates
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}

// VQELayers is the layer count matching the paper's vqe_n16 (95 gates).
const VQELayers = 2

// Build constructs a named benchmark circuit at the given register size.
// Recognized names: ghz, adder, dnn, vqe, knn, swaptest, supremacy, qft,
// grover, bv, qaoa, wstate, qv, randct.
func Build(name string, n int, seed int64) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("workloads: qubit count %d out of range", n)
	}
	switch name {
	case "ghz":
		return GHZ(n), nil
	case "adder":
		if n < 4 || n%2 != 0 {
			return nil, fmt.Errorf("workloads: adder needs an even n >= 4, got %d", n)
		}
		return Adder(n, seed), nil
	case "dnn":
		return DNN(n, DNNDepthFor(n), seed), nil
	case "vqe":
		return VQE(n, VQELayers, seed), nil
	case "knn":
		if n < 3 || n%2 == 0 {
			return nil, fmt.Errorf("workloads: knn needs an odd n >= 3, got %d", n)
		}
		return KNN(n, seed), nil
	case "swaptest":
		if n < 3 || n%2 == 0 {
			return nil, fmt.Errorf("workloads: swaptest needs an odd n >= 3, got %d", n)
		}
		return SwapTest(n, seed), nil
	case "supremacy":
		return SupremacyGrid(n, SupremacyCyclesFor(n), seed), nil
	case "qft":
		return QFT(n), nil
	case "grover":
		iters := 0
		if n > 8 {
			iters = 12 // keep example-scale circuits bounded
		}
		return Grover(n, uint64(seed)%(uint64(1)<<uint(n)), iters), nil
	case "bv":
		if n < 2 {
			return nil, fmt.Errorf("workloads: bv needs n >= 2, got %d", n)
		}
		return BernsteinVazirani(n-1, uint64(seed)%(uint64(1)<<uint(n-1))), nil
	case "qaoa":
		return QAOA(n, 3, seed), nil
	case "randct":
		return RandomCliffordT(n, RandCTGatesFor(n), seed), nil
	case "wstate":
		return WState(n), nil
	case "qv":
		return QuantumVolume(n, n, seed), nil
	default:
		return nil, fmt.Errorf("workloads: unknown circuit %q (known: %v)", name, Names())
	}
}

// Names lists the recognized workload names.
func Names() []string {
	names := []string{"ghz", "adder", "dnn", "vqe", "knn", "swaptest", "supremacy", "qft", "grover", "bv", "qaoa", "wstate", "qv", "randct"}
	sort.Strings(names)
	return names
}
