package workloads

import (
	"math"
	"math/cmplx"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/statevec"
)

const eps = 1e-9

func simulate(c *circuit.Circuit) *statevec.State {
	s := statevec.New(c.Qubits, 2)
	s.ApplyCircuit(c)
	return s
}

func TestGHZAmplitudes(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		s := simulate(GHZ(n))
		want := complex(1/math.Sqrt2, 0)
		if n == 1 {
			if cmplx.Abs(s.Amplitudes()[0]-want) > eps || cmplx.Abs(s.Amplitudes()[1]-want) > eps {
				t.Fatalf("n=1 GHZ wrong")
			}
			continue
		}
		amps := s.Amplitudes()
		if cmplx.Abs(amps[0]-want) > eps || cmplx.Abs(amps[len(amps)-1]-want) > eps {
			t.Fatalf("n=%d GHZ endpoints wrong", n)
		}
		for i := 1; i < len(amps)-1; i++ {
			if cmplx.Abs(amps[i]) > eps {
				t.Fatalf("n=%d GHZ has amplitude at %d", n, i)
			}
		}
	}
}

// adderOracle extracts a, b from the X-initialization of the circuit and
// checks the final state is the basis state with b <- a+b.
func TestAdderComputesSum(t *testing.T) {
	for _, n := range []int{4, 8, 12} {
		for seed := int64(1); seed <= 5; seed++ {
			c := Adder(n, seed)
			k := (n - 2) / 2
			// Recover inputs from the leading X gates.
			var a, b uint64
			for i := range c.Gates {
				g := &c.Gates[i]
				if g.Name != "x" {
					break
				}
				q := g.Targets[0]
				if q >= 1 && (q-1)%2 == 0 {
					a |= 1 << uint((q-1)/2)
				} else {
					b |= 1 << uint((q-2)/2)
				}
			}
			s := simulate(c)
			sum := a + b
			// Expected basis state: cin=0, a unchanged, b=sum low bits,
			// cout = carry.
			var want uint64
			for i := 0; i < k; i++ {
				if a>>uint(i)&1 == 1 {
					want |= 1 << uint(1+2*i)
				}
				if sum>>uint(i)&1 == 1 {
					want |= 1 << uint(2+2*i)
				}
			}
			if sum>>uint(k)&1 == 1 {
				want |= 1 << uint(n-1)
			}
			if p := s.Probability(want); math.Abs(p-1) > 1e-8 {
				t.Fatalf("n=%d seed=%d: a=%d b=%d sum=%d, P(want)=%v", n, seed, a, b, sum, p)
			}
		}
	}
}

func TestDNNShape(t *testing.T) {
	c := DNN(8, 5, 1)
	if c.GateCount() != 5*3*8 {
		t.Fatalf("DNN gate count %d, want %d", c.GateCount(), 5*3*8)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic for a seed.
	c2 := DNN(8, 5, 1)
	if c2.GateCount() != c.GateCount() || c2.Gates[3].Params[0] != c.Gates[3].Params[0] {
		t.Fatal("DNN not deterministic")
	}
	c3 := DNN(8, 5, 2)
	if c3.Gates[0].Params[0] == c.Gates[0].Params[0] {
		t.Fatal("DNN ignores seed")
	}
}

func TestDNNDepthForMatchesPaperDensity(t *testing.T) {
	n := 16
	c := DNN(n, DNNDepthFor(n), 1)
	// dnn_n16 has 2032 gates in the paper; ours should land nearby.
	if c.GateCount() < 1500 || c.GateCount() > 2500 {
		t.Fatalf("DNN(16) gate count %d far from paper's 2032", c.GateCount())
	}
}

func TestVQEShape(t *testing.T) {
	c := VQE(16, VQELayers, 1)
	// vqe_n16 has 95 gates in the paper.
	if c.GateCount() < 60 || c.GateCount() > 130 {
		t.Fatalf("VQE(16) gate count %d far from paper's 95", c.GateCount())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapTestAncillaProbabilityMatchesOverlap(t *testing.T) {
	// P(ancilla=0) = (1+|<psi|phi>|^2)/2 must lie in [1/2, 1].
	c := SwapTest(9, 3)
	s := simulate(c)
	p0 := 0.0
	for i, a := range s.Amplitudes() {
		if i&1 == 0 {
			p0 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	if p0 < 0.5-eps || p0 > 1+eps {
		t.Fatalf("swap test P(anc=0) = %v outside [0.5, 1]", p0)
	}
}

func TestKNNValidAndIrregular(t *testing.T) {
	c := KNN(11, 7)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.GateCount() < 11 {
		t.Fatal("KNN suspiciously small")
	}
}

func TestSupremacyStructure(t *testing.T) {
	c := Supremacy(3, 4, 8, 1)
	if c.Qubits != 12 {
		t.Fatalf("qubits = %d", c.Qubits)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every cycle has exactly n single-qubit gates.
	singles := 0
	fsims := 0
	for i := range c.Gates {
		switch c.Gates[i].Name {
		case "sx", "sy", "sw":
			singles++
		case "fsim":
			fsims++
		}
	}
	if singles != 12*8 {
		t.Fatalf("single-qubit gates %d, want %d", singles, 12*8)
	}
	if fsims == 0 {
		t.Fatal("no entangling gates")
	}
	// No qubit gets the same single-qubit gate twice in a row.
	lastGate := make(map[int]string)
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Name {
		case "sx", "sy", "sw":
			if lastGate[g.Targets[0]] == g.Name {
				t.Fatalf("qubit %d repeats %s", g.Targets[0], g.Name)
			}
			lastGate[g.Targets[0]] = g.Name
		}
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT|0> = uniform superposition.
	n := 5
	s := simulate(QFT(n))
	want := 1 / math.Sqrt(math.Pow(2, float64(n)))
	for i, a := range s.Amplitudes() {
		if cmplx.Abs(a-complex(want, 0)) > eps {
			t.Fatalf("QFT|0> amplitude %d = %v, want %v", i, a, want)
		}
	}
}

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	for _, secret := range []uint64{0, 1, 5, 10, 15} {
		c := BernsteinVazirani(4, secret)
		s := simulate(c)
		// Data qubits must equal secret with certainty (ancilla in |->).
		var p float64
		for i, a := range s.Amplitudes() {
			if uint64(i)&15 == secret {
				p += real(a)*real(a) + imag(a)*imag(a)
			}
		}
		if math.Abs(p-1) > 1e-8 {
			t.Fatalf("secret %d: P = %v", secret, p)
		}
	}
}

func TestGroverAmplifiesMarkedState(t *testing.T) {
	n := 5
	marked := uint64(19)
	c := Grover(n, marked, 0)
	s := simulate(c)
	p := s.Probability(marked)
	if p < 0.8 {
		t.Fatalf("Grover P(marked) = %v, want > 0.8", p)
	}
}

func TestBuildRegistry(t *testing.T) {
	cases := map[string]int{
		"ghz": 8, "adder": 8, "dnn": 6, "vqe": 6, "knn": 7,
		"swaptest": 7, "supremacy": 6, "qft": 6, "grover": 5, "bv": 6,
	}
	for name, n := range cases {
		c, err := Build(name, n, 1)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if c.Qubits != n {
			t.Fatalf("Build(%s) qubits = %d, want %d", name, c.Qubits, n)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Build(%s) invalid: %v", name, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"nope", 5},
		{"adder", 5}, // odd
		{"knn", 6},   // even
		{"ghz", 0},   // out of range
		{"adder", 2}, // too small
		{"swaptest", 2},
	}
	for _, tc := range cases {
		if _, err := Build(tc.name, tc.n, 1); err == nil {
			t.Errorf("Build(%s, %d) accepted", tc.name, tc.n)
		}
	}
}

func TestNames(t *testing.T) {
	if len(Names()) != 14 {
		t.Fatalf("Names() = %v", Names())
	}
}
