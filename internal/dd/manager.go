package dd

import (
	"fmt"
	"math/cmplx"

	"flatdd/internal/cnum"
)

// Manager owns the unique tables, compute tables and complex-number table of
// one DD universe. Edges from different managers must never be mixed.
//
// A Manager is safe for concurrent reads of existing DDs (traversals); DD
// construction (Make*, arithmetic, gate builders) must be externally
// serialized. This matches the simulator's phase structure: DDs are built by
// the sequential DD engine and then traversed read-only by the parallel
// DMAV and conversion kernels.
type Manager struct {
	C *cnum.Table

	nQubits int

	vUnique map[vKey]*VNode
	mUnique map[mKey]*MNode

	vTerminal *VNode
	mTerminal *MNode

	addCT  ctable[addKey, VEdge]
	maddCT ctable[maddKey, MEdge]
	mvCT   ctable[mvKey, VEdge]
	mmCT   ctable[mmKey, MEdge]

	// gcThreshold triggers automatic collection inside CollectIfNeeded.
	gcThreshold int

	peakNodes int

	met metrics
}

type vKey struct {
	level  int8
	w0, w1 cnum.Key
	n0, n1 *VNode
}

type mKey struct {
	level          int8
	w0, w1, w2, w3 cnum.Key
	n0, n1, n2, n3 *MNode
}

type addKey struct {
	a, b  *VNode
	ratio cnum.Key
}

type maddKey struct {
	a, b  *MNode
	ratio cnum.Key
}

type mvKey struct {
	m *MNode
	v *VNode
}

type mmKey struct {
	a, b *MNode
}

// New returns a Manager for circuits of up to nQubits qubits with the
// default weight tolerance.
func New(nQubits int) *Manager {
	return NewWithTolerance(nQubits, cnum.DefaultTolerance)
}

// NewWithTolerance returns a Manager whose complex table snaps weights at
// the given tolerance.
func NewWithTolerance(nQubits int, tol float64) *Manager {
	if nQubits < 0 || nQubits > 62 {
		panic(fmt.Sprintf("dd: unsupported qubit count %d", nQubits))
	}
	m := &Manager{
		C:           cnum.NewTable(tol),
		nQubits:     nQubits,
		vUnique:     make(map[vKey]*VNode, 1<<10),
		mUnique:     make(map[mKey]*MNode, 1<<10),
		gcThreshold: 1 << 22,
	}
	m.vTerminal = &VNode{Level: TerminalLevel}
	m.mTerminal = &MNode{Level: TerminalLevel}
	m.addCT.init()
	m.maddCT.init()
	m.mvCT.init()
	m.mmCT.init()
	return m
}

// Qubits returns the number of qubits this manager was created for.
func (m *Manager) Qubits() int { return m.nQubits }

// VTerminal returns the shared vector terminal node.
func (m *Manager) VTerminal() *VNode { return m.vTerminal }

// MTerminal returns the shared matrix terminal node.
func (m *Manager) MTerminal() *MNode { return m.mTerminal }

// VZeroEdge returns the canonical zero vector edge.
func (m *Manager) VZeroEdge() VEdge { return VEdge{0, m.vTerminal} }

// VOneEdge returns the weight-1 terminal vector edge (scalar 1).
func (m *Manager) VOneEdge() VEdge { return VEdge{1, m.vTerminal} }

// MZeroEdge returns the canonical zero matrix edge.
func (m *Manager) MZeroEdge() MEdge { return MEdge{0, m.mTerminal} }

// MOneEdge returns the weight-1 terminal matrix edge (scalar 1).
func (m *Manager) MOneEdge() MEdge { return MEdge{1, m.mTerminal} }

// NodeBytes is the modeled per-node footprint used for DD-engine memory
// estimates (vector nodes ~64 B, matrix nodes ~112 B; blended). Every
// layer that converts node counts to bytes — core's peak-memory stats,
// the harness's reported footprint, the resource ledger — multiplies by
// this one constant so the estimates agree.
const NodeBytes = 96

// NodeCount returns the number of live unique nodes (vector + matrix),
// excluding terminals.
func (m *Manager) NodeCount() int { return len(m.vUnique) + len(m.mUnique) }

// PeakNodeCount returns the largest NodeCount observed at node creation.
func (m *Manager) PeakNodeCount() int { return m.peakNodes }

// MakeVNode builds (or reuses) the canonical vector node at the given level
// with the given children and returns its normalized incoming edge. The
// returned edge weight carries the norm and phase factored out of the
// children: the child weights of the stored node have 2-norm 1 and the
// first nonzero child weight is real positive.
func (m *Manager) MakeVNode(level int, e0, e1 VEdge) VEdge {
	if level < 0 || level >= 64 {
		panic(fmt.Sprintf("dd: bad vector node level %d", level))
	}
	e0 = m.normalizeVChild(e0)
	e1 = m.normalizeVChild(e1)
	if e0.IsZero() && e1.IsZero() {
		return m.VZeroEdge()
	}
	// Factor out the 2-norm and the phase of the first nonzero child.
	a0 := cmplx.Abs(e0.W)
	a1 := cmplx.Abs(e1.W)
	norm := pythag(a0, a1)
	var phase complex128
	if !e0.IsZero() {
		phase = e0.W / complex(a0, 0)
	} else {
		phase = e1.W / complex(a1, 0)
	}
	top := m.C.Lookup(complex(norm, 0) * phase)
	if top == 0 {
		// Numerically dead after snapping: the whole sub-vector is zero.
		return m.VZeroEdge()
	}
	e0.W = m.C.Lookup(e0.W / top)
	e1.W = m.C.Lookup(e1.W / top)
	if e0.W == 0 {
		e0 = m.VZeroEdge()
	}
	if e1.W == 0 {
		e1 = m.VZeroEdge()
	}
	k := vKey{int8(level), cnum.KeyOf(e0.W), cnum.KeyOf(e1.W), e0.N, e1.N}
	n, ok := m.vUnique[k]
	if !ok {
		n = &VNode{E: [2]VEdge{e0, e1}, Level: int8(level)}
		m.vUnique[k] = n
		if c := m.NodeCount(); c > m.peakNodes {
			m.peakNodes = c
			m.met.peakNodes.Set(int64(c))
		}
		m.met.vMisses.Inc()
	} else {
		m.met.vHits.Inc()
	}
	return VEdge{top, n}
}

// normalizeVChild snaps an edge weight and canonicalizes dead edges.
func (m *Manager) normalizeVChild(e VEdge) VEdge {
	if e.N == nil {
		panic("dd: nil child node")
	}
	e.W = m.C.Lookup(e.W)
	if e.W == 0 {
		return m.VZeroEdge()
	}
	return e
}

// MakeMNode builds (or reuses) the canonical matrix node at the given level
// with children in row-major order and returns its normalized incoming
// edge. Normalization divides by the first child weight of maximal
// magnitude, which therefore becomes exactly 1 (classic QMDD form; it
// reproduces the Hadamard decomposition of Figure 2a).
func (m *Manager) MakeMNode(level int, e [4]MEdge) MEdge {
	if level < 0 || level >= 64 {
		panic(fmt.Sprintf("dd: bad matrix node level %d", level))
	}
	maxMag := 0.0
	maxIdx := -1
	for i := range e {
		if e[i].N == nil {
			panic("dd: nil child node")
		}
		e[i].W = m.C.Lookup(e[i].W)
		if e[i].W == 0 {
			e[i] = m.MZeroEdge()
			continue
		}
		if a := cmplx.Abs(e[i].W); a > maxMag {
			maxMag = a
			maxIdx = i
		}
	}
	if maxIdx < 0 {
		return m.MZeroEdge()
	}
	top := e[maxIdx].W
	for i := range e {
		if !e[i].IsZero() {
			e[i].W = m.C.Lookup(e[i].W / top)
			if e[i].W == 0 {
				e[i] = m.MZeroEdge()
			}
		}
	}
	k := mKey{
		int8(level),
		cnum.KeyOf(e[0].W), cnum.KeyOf(e[1].W), cnum.KeyOf(e[2].W), cnum.KeyOf(e[3].W),
		e[0].N, e[1].N, e[2].N, e[3].N,
	}
	n, ok := m.mUnique[k]
	if !ok {
		n = &MNode{E: e, Level: int8(level)}
		m.mUnique[k] = n
		if c := m.NodeCount(); c > m.peakNodes {
			m.peakNodes = c
			m.met.peakNodes.Set(int64(c))
		}
		m.met.mMisses.Inc()
	} else {
		m.met.mHits.Inc()
	}
	return MEdge{top, n}
}

// pythag returns sqrt(a^2+b^2) without undue overflow.
func pythag(a, b float64) float64 {
	return cmplx.Abs(complex(a, b))
}
