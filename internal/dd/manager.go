package dd

import (
	"fmt"
	"math/cmplx"
	"sync"
	"sync/atomic"

	"flatdd/internal/cnum"
)

// Manager owns the unique tables, compute tables and complex-number table of
// one DD universe. Edges from different managers must never be mixed.
//
// A Manager is safe for concurrent use: DD construction (Make*, arithmetic,
// gate builders) may run from any number of goroutines. The unique tables
// are sharded-lock hash-consing tables — lookup-or-insert happens under one
// shard lock, so canonicity (one pointer per structurally distinct node)
// holds within a run regardless of interleaving. The compute tables are
// lossy under concurrency: a racing reader may miss a concurrently installed
// entry and recompute, but every cached value is a pure function of its key,
// so results are never wrong. Weight snapping (cnum.Table) is a pure
// function of the value, which makes concurrent construction bit-
// deterministic end to end (see DESIGN.md §12).
//
// Garbage collection is the one operation that requires quiescence: callers
// running parallel batches must bracket them with BeginConcurrent /
// EndConcurrent, and Collect defers itself (returning 0) while any such
// batch is in flight. Sequential callers (equiv, noise, observable, and the
// serial DD engine) need no bracketing — with no batch open, Collect runs
// immediately, exactly as before.
type Manager struct {
	C *cnum.Table

	nQubits int

	vUnique uniqueTable[vKey, *VNode]
	mUnique uniqueTable[mKey, *MNode]

	vTerminal *VNode
	mTerminal *MNode

	addCT  ctable[addKey, VEdge]
	maddCT ctable[maddKey, MEdge]
	mvCT   ctable[mvKey, VEdge]
	mmCT   ctable[mmKey, MEdge]

	// gcThreshold triggers automatic collection inside CollectIfNeeded.
	gcThreshold int

	nodeCount atomic.Int64
	peakNodes atomic.Int64

	// gcMu serializes Collect against the opening of concurrent batches:
	// Collect holds it for the whole collection, so no new batch can start
	// mid-sweep (stop-the-world), and BeginConcurrent briefly takes it so a
	// batch never opens between Collect's quiescence check and its sweep.
	gcMu      sync.Mutex
	workers   atomic.Int64
	gcPending atomic.Bool

	met metrics
}

type vKey struct {
	level  int8
	w0, w1 cnum.Key
	n0, n1 *VNode
}

type mKey struct {
	level          int8
	w0, w1, w2, w3 cnum.Key
	n0, n1, n2, n3 *MNode
}

type addKey struct {
	a, b  *VNode
	ratio cnum.Key
}

type maddKey struct {
	a, b  *MNode
	ratio cnum.Key
}

type mvKey struct {
	m *MNode
	v *VNode
}

type mmKey struct {
	a, b *MNode
}

// New returns a Manager for circuits of up to nQubits qubits with the
// default weight tolerance.
func New(nQubits int) *Manager {
	return NewWithTolerance(nQubits, cnum.DefaultTolerance)
}

// NewWithTolerance returns a Manager whose complex table snaps weights at
// the given tolerance.
func NewWithTolerance(nQubits int, tol float64) *Manager {
	if nQubits < 0 || nQubits > 62 {
		panic(fmt.Sprintf("dd: unsupported qubit count %d", nQubits))
	}
	m := &Manager{
		C:           cnum.NewTable(tol),
		nQubits:     nQubits,
		gcThreshold: 1 << 22,
	}
	m.vTerminal = &VNode{Level: TerminalLevel}
	m.mTerminal = &MNode{Level: TerminalLevel}
	m.vUnique.init()
	m.mUnique.init()
	m.addCT.init()
	m.maddCT.init()
	m.mvCT.init()
	m.mmCT.init()
	return m
}

// Qubits returns the number of qubits this manager was created for.
func (m *Manager) Qubits() int { return m.nQubits }

// VTerminal returns the shared vector terminal node.
func (m *Manager) VTerminal() *VNode { return m.vTerminal }

// MTerminal returns the shared matrix terminal node.
func (m *Manager) MTerminal() *MNode { return m.mTerminal }

// VZeroEdge returns the canonical zero vector edge.
func (m *Manager) VZeroEdge() VEdge { return VEdge{0, m.vTerminal} }

// VOneEdge returns the weight-1 terminal vector edge (scalar 1).
func (m *Manager) VOneEdge() VEdge { return VEdge{1, m.vTerminal} }

// MZeroEdge returns the canonical zero matrix edge.
func (m *Manager) MZeroEdge() MEdge { return MEdge{0, m.mTerminal} }

// MOneEdge returns the weight-1 terminal matrix edge (scalar 1).
func (m *Manager) MOneEdge() MEdge { return MEdge{1, m.mTerminal} }

// NodeBytes is the modeled per-node footprint used for DD-engine memory
// estimates (vector nodes ~64 B, matrix nodes ~112 B; blended). Every
// layer that converts node counts to bytes — core's peak-memory stats,
// the harness's reported footprint, the resource ledger — multiplies by
// this one constant so the estimates agree.
const NodeBytes = 96

// NodeCount returns the number of live unique nodes (vector + matrix),
// excluding terminals.
func (m *Manager) NodeCount() int { return int(m.nodeCount.Load()) }

// PeakNodeCount returns the largest NodeCount observed at node creation.
func (m *Manager) PeakNodeCount() int { return int(m.peakNodes.Load()) }

// noteInsert accounts for a freshly interned node: it bumps the live count
// and raises the peak high-water mark (CAS max, accurate under concurrent
// inserters).
func (m *Manager) noteInsert() {
	c := m.nodeCount.Add(1)
	for {
		p := m.peakNodes.Load()
		if c <= p || m.peakNodes.CompareAndSwap(p, c) {
			break
		}
	}
	m.met.peakNodes.SetMax(c)
}

// MakeVNode builds (or reuses) the canonical vector node at the given level
// with the given children and returns its normalized incoming edge.
// Normalization divides by the child weight of maximal snapped magnitude
// (ties to the lower index), which therefore becomes exactly 1 — the same
// division-based convention matrix nodes use. Division by a raw child
// weight is the property that makes hash-consing robust on the snapping
// grid: rebuilding a node from its own stored (grid) weights divides grid
// values by a grid value, which reproduces the stored bits exactly. A
// sum-of-squares (2-norm) divisor does not — the 2-norm of grid-snapped
// weights is only 1 ± half a grid step, and dividing by it on a rebuild
// shifts stored weights across bucket boundaries, breaking structure
// sharing. The top weight stays raw (unsnapped) for the same reason:
// quantizing it would inject half-bucket noise that the next level up
// amplifies past the grid spacing. Only the stored child weights are
// snapped — they are bucket centers, so re-deriving them through another
// path perturbs them by far less than half a bucket and they snap back to
// the same bits. Subtree vectors are consequently not unit-norm; norms are
// computed by an upward pass (Norm, approx, measurement).
func (m *Manager) MakeVNode(level int, e0, e1 VEdge) VEdge {
	if level < 0 || level >= 64 {
		panic(fmt.Sprintf("dd: bad vector node level %d", level))
	}
	e0 = m.normalizeVChild(e0)
	e1 = m.normalizeVChild(e1)
	if e0.IsZero() && e1.IsZero() {
		return m.VZeroEdge()
	}
	// Pick the divisor child by snapped magnitude so ties between
	// equal-magnitude children resolve to the lower index regardless of
	// ulp-level noise in the raw weights.
	maxIdx := 0
	if e0.IsZero() {
		maxIdx = 1
	} else if !e1.IsZero() {
		if m.C.LookupFloat(cmplx.Abs(e1.W)) > m.C.LookupFloat(cmplx.Abs(e0.W)) {
			maxIdx = 1
		}
	}
	top := e0.W
	if maxIdx == 1 {
		top = e1.W
	}
	if maxIdx == 0 {
		e0.W = 1
		if !e1.IsZero() {
			e1.W = m.C.Lookup(e1.W / top)
			if e1.W == 0 {
				e1 = m.VZeroEdge()
			}
		}
	} else {
		e1.W = 1
		if !e0.IsZero() {
			e0.W = m.C.Lookup(e0.W / top)
			if e0.W == 0 {
				e0 = m.VZeroEdge()
			}
		}
	}
	k := vKey{int8(level), cnum.KeyOf(e0.W), cnum.KeyOf(e1.W), e0.N, e1.N}
	n, inserted := m.vUnique.lookupOrInsert(k, func() *VNode {
		return &VNode{E: [2]VEdge{e0, e1}, Level: int8(level)}
	})
	if inserted {
		m.noteInsert()
		m.met.vMisses.Inc()
	} else {
		m.met.vHits.Inc()
	}
	return VEdge{top, n}
}

// normalizeVChild canonicalizes numerically dead edges to the zero edge.
// Live weights are kept raw (see MakeVNode on why tops are not snapped).
func (m *Manager) normalizeVChild(e VEdge) VEdge {
	if e.N == nil {
		panic("dd: nil child node")
	}
	if m.C.Lookup(e.W) == 0 {
		return m.VZeroEdge()
	}
	return e
}

// MakeMNode builds (or reuses) the canonical matrix node at the given level
// with children in row-major order and returns its normalized incoming
// edge. Normalization divides by the first child weight of maximal
// magnitude, which therefore becomes exactly 1 (classic QMDD form; it
// reproduces the Hadamard decomposition of Figure 2a).
func (m *Manager) MakeMNode(level int, e [4]MEdge) MEdge {
	if level < 0 || level >= 64 {
		panic(fmt.Sprintf("dd: bad matrix node level %d", level))
	}
	maxMag := 0.0
	maxIdx := -1
	for i := range e {
		if e[i].N == nil {
			panic("dd: nil child node")
		}
		if m.C.Lookup(e[i].W) == 0 {
			e[i] = m.MZeroEdge()
			continue
		}
		// Compare snapped magnitudes so ties between equal-magnitude
		// children (±1/sqrt2 in a Hadamard) resolve to the first index
		// regardless of ulp-level noise in the raw weights.
		if a := m.C.LookupFloat(cmplx.Abs(e[i].W)); a > maxMag {
			maxMag = a
			maxIdx = i
		}
	}
	if maxIdx < 0 {
		return m.MZeroEdge()
	}
	top := e[maxIdx].W
	for i := range e {
		if !e[i].IsZero() {
			e[i].W = m.C.Lookup(e[i].W / top)
			if e[i].W == 0 {
				e[i] = m.MZeroEdge()
			}
		}
	}
	k := mKey{
		int8(level),
		cnum.KeyOf(e[0].W), cnum.KeyOf(e[1].W), cnum.KeyOf(e[2].W), cnum.KeyOf(e[3].W),
		e[0].N, e[1].N, e[2].N, e[3].N,
	}
	n, inserted := m.mUnique.lookupOrInsert(k, func() *MNode {
		return &MNode{E: e, Level: int8(level)}
	})
	if inserted {
		m.noteInsert()
		m.met.mMisses.Inc()
	} else {
		m.met.mHits.Inc()
	}
	return MEdge{top, n}
}

// pythag returns sqrt(a^2+b^2) without undue overflow.
func pythag(a, b float64) float64 {
	return cmplx.Abs(complex(a, b))
}
