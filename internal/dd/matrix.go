package dd

import "fmt"

// Matrix2 is a dense 2x2 complex matrix (single-qubit gate).
type Matrix2 [2][2]complex128

// Identity returns the matrix DD of the 2^n x 2^n identity.
func (m *Manager) Identity(n int) MEdge {
	blocks := make([]Matrix2, n)
	for i := range blocks {
		blocks[i] = Matrix2{{1, 0}, {0, 1}}
	}
	return m.KronChain(blocks)
}

// KronChain builds the matrix DD of blocks[n-1] ⊗ ... ⊗ blocks[1] ⊗
// blocks[0], i.e. blocks[k] acts on qubit k. A Kronecker product of 2x2
// blocks has exactly one node per level: entry M[r][c] is the product over
// levels l of blocks[l][r_l][c_l].
func (m *Manager) KronChain(blocks []Matrix2) MEdge {
	e := m.MOneEdge()
	for level, b := range blocks {
		ch := [4]MEdge{
			m.scaleM(e, b[0][0]),
			m.scaleM(e, b[0][1]),
			m.scaleM(e, b[1][0]),
			m.scaleM(e, b[1][1]),
		}
		e = m.MakeMNode(level, ch)
		if e.IsZero() {
			return e
		}
	}
	return e
}

// SingleGate returns the matrix DD of the single-qubit gate u applied to
// qubit target of an n-qubit register (identity elsewhere).
func (m *Manager) SingleGate(n int, u Matrix2, target int) MEdge {
	if target < 0 || target >= n {
		panic(fmt.Sprintf("dd: gate target %d out of range for %d qubits", target, n))
	}
	blocks := make([]Matrix2, n)
	for i := range blocks {
		if i == target {
			blocks[i] = u
		} else {
			blocks[i] = Matrix2{{1, 0}, {0, 1}}
		}
	}
	return m.KronChain(blocks)
}

// Control describes a control qubit of a controlled gate. Positive controls
// trigger on |1>, negative controls on |0>.
type Control struct {
	Qubit    int
	Negative bool
}

// ControlledGate returns the matrix DD of gate u on qubit target controlled
// by the given control qubits. It uses the projector identity
//
//	C(U) = I  +  P ⊗ (U - I)
//
// where P projects every control onto its triggering value: the chain
// carrying (U-I) at the target and |1><1| (or |0><0|) at each control,
// identity elsewhere, is added to the full identity.
func (m *Manager) ControlledGate(n int, u Matrix2, target int, controls []Control) MEdge {
	if len(controls) == 0 {
		return m.SingleGate(n, u, target)
	}
	if target < 0 || target >= n {
		panic(fmt.Sprintf("dd: gate target %d out of range for %d qubits", target, n))
	}
	blocks := make([]Matrix2, n)
	for i := range blocks {
		blocks[i] = Matrix2{{1, 0}, {0, 1}}
	}
	blocks[target] = Matrix2{
		{u[0][0] - 1, u[0][1]},
		{u[1][0], u[1][1] - 1},
	}
	for _, c := range controls {
		if c.Qubit < 0 || c.Qubit >= n {
			panic(fmt.Sprintf("dd: control qubit %d out of range for %d qubits", c.Qubit, n))
		}
		if c.Qubit == target {
			panic("dd: control coincides with target")
		}
		if c.Negative {
			blocks[c.Qubit] = Matrix2{{1, 0}, {0, 0}}
		} else {
			blocks[c.Qubit] = Matrix2{{0, 0}, {0, 1}}
		}
	}
	return m.MAdd(m.Identity(n), m.KronChain(blocks))
}

// MultiQubitGate returns the matrix DD of an arbitrary k-qubit gate u
// (dimension 2^k x 2^k, row/column bit k-1 = qubits[k-1] most significant)
// applied to the given, not necessarily adjacent, qubits of an n-qubit
// register. It decomposes u into a sum of elementary Kronecker chains
// u[r][c] · ⊗_l E_{r_l c_l}: at most 4^k chain additions, each O(n) nodes.
// Intended for small k (two-qubit entanglers such as iSWAP and fSim).
func (m *Manager) MultiQubitGate(n int, u [][]complex128, qubits []int) MEdge {
	k := len(qubits)
	dim := 1 << uint(k)
	if len(u) != dim {
		panic(fmt.Sprintf("dd: gate dimension %d does not match %d qubits", len(u), k))
	}
	seen := make(map[int]bool, k)
	for _, q := range qubits {
		if q < 0 || q >= n {
			panic(fmt.Sprintf("dd: gate qubit %d out of range for %d qubits", q, n))
		}
		if seen[q] {
			panic(fmt.Sprintf("dd: duplicate gate qubit %d", q))
		}
		seen[q] = true
	}
	sum := m.MZeroEdge()
	blocks := make([]Matrix2, n)
	for r := 0; r < dim; r++ {
		if len(u[r]) != dim {
			panic("dd: gate matrix is not square")
		}
		for c := 0; c < dim; c++ {
			w := u[r][c]
			if w == 0 {
				continue
			}
			for i := range blocks {
				blocks[i] = Matrix2{{1, 0}, {0, 1}}
			}
			for l, q := range qubits {
				rb := r >> uint(l) & 1
				cb := c >> uint(l) & 1
				var blk Matrix2
				blk[rb][cb] = 1
				blocks[q] = blk
			}
			sum = m.MAdd(sum, m.scaleM(m.KronChain(blocks), w))
		}
	}
	return sum
}

// ToDense expands the matrix DD to a dense 2^n x 2^n array. For tests and
// tiny operators only.
func (m *Manager) ToDense(e MEdge, n int) [][]complex128 {
	dim := 1 << uint(n)
	out := make([][]complex128, dim)
	for i := range out {
		out[i] = make([]complex128, dim)
	}
	var fill func(e MEdge, level int, r, c int, w complex128)
	fill = func(e MEdge, level int, r, c int, w complex128) {
		if e.IsZero() {
			return
		}
		w *= e.W
		if level < 0 {
			out[r][c] = w
			return
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				fill(e.N.Child(i, j), level-1, r|i<<uint(level), c|j<<uint(level), w)
			}
		}
	}
	fill(MEdge{1, e.N}, n-1, 0, 0, e.W)
	return out
}

// MatrixEntry returns entry (row, col) of the matrix DD on n qubits.
func (m *Manager) MatrixEntry(e MEdge, n int, row, col uint64) complex128 {
	w := e.W
	for level := n - 1; level >= 0; level-- {
		if w == 0 {
			return 0
		}
		i := int(row >> uint(level) & 1)
		j := int(col >> uint(level) & 1)
		c := e.N.Child(i, j)
		e = c
		w *= c.W
	}
	return w
}
