package dd

// MACCount returns the number of multiply-accumulate operations a DMAV with
// the matrix rooted at e would execute (Section 3.2.3, Figure 8): the
// terminal contributes one MAC, and every node contributes the sum of the
// counts of its nonzero outgoing edges. Identical nodes are counted once in
// the memo table but contribute each time they are reached through a
// different edge — the count equals the number of nonzero root-to-terminal
// paths, i.e. the number of nonzero matrix entries touched by Run.
func MACCount(e MEdge) int64 {
	if e.IsZero() {
		return 0
	}
	memo := make(map[*MNode]int64)
	return macRec(e.N, memo)
}

// MACCountNode is MACCount for a bare node reached with nonzero weight,
// sharing the caller's memo table. It is used by the DMAV cost model, which
// needs per-subtree counts for the border-level tasks.
func MACCountNode(n *MNode, memo map[*MNode]int64) int64 {
	return macRec(n, memo)
}

func macRec(n *MNode, memo map[*MNode]int64) int64 {
	if n.Level == TerminalLevel {
		return 1
	}
	if v, ok := memo[n]; ok {
		return v
	}
	var sum int64
	for _, c := range n.E {
		if !c.IsZero() {
			sum += macRec(c.N, memo)
		}
	}
	memo[n] = sum
	return sum
}

// NNZ returns the number of nonzero entries of the vector DD rooted at e —
// each is one root-to-terminal path with nonzero weight product.
func NNZ(e VEdge) int64 {
	if e.IsZero() {
		return 0
	}
	memo := make(map[*VNode]int64)
	var rec func(n *VNode) int64
	rec = func(n *VNode) int64 {
		if n.Level == TerminalLevel {
			return 1
		}
		if v, ok := memo[n]; ok {
			return v
		}
		var sum int64
		for _, c := range n.E {
			if !c.IsZero() {
				sum += rec(c.N)
			}
		}
		memo[n] = sum
		return sum
	}
	return rec(e.N)
}
