package dd

import (
	"fmt"
	"math"
	"math/cmplx"
)

// BasisState returns the vector DD of the computational basis state
// |idx> on n qubits. Bit k of idx is the value of qubit k.
func (m *Manager) BasisState(n int, idx uint64) VEdge {
	if n < 0 || n > 62 {
		panic(fmt.Sprintf("dd: bad qubit count %d", n))
	}
	if n < 64 && idx >= uint64(1)<<uint(n) {
		panic(fmt.Sprintf("dd: basis index %d out of range for %d qubits", idx, n))
	}
	e := m.VOneEdge()
	for level := 0; level < n; level++ {
		if idx>>uint(level)&1 == 0 {
			e = m.MakeVNode(level, e, m.VZeroEdge())
		} else {
			e = m.MakeVNode(level, m.VZeroEdge(), e)
		}
	}
	return e
}

// ZeroState returns |0...0> on n qubits.
func (m *Manager) ZeroState(n int) VEdge { return m.BasisState(n, 0) }

// VectorFromAmplitudes builds the vector DD of an amplitude array whose
// length must be a power of two. The construction recursively splits the
// array in halves, so shared structure is detected by the unique table.
func (m *Manager) VectorFromAmplitudes(amps []complex128) VEdge {
	n := 0
	for 1<<n < len(amps) {
		n++
	}
	if len(amps) == 0 || 1<<n != len(amps) {
		panic(fmt.Sprintf("dd: amplitude array length %d is not a power of two", len(amps)))
	}
	return m.vectorFromSlice(amps, n-1)
}

func (m *Manager) vectorFromSlice(amps []complex128, level int) VEdge {
	if level < 0 {
		// Keep the raw amplitude; quantizing inputs before normalization
		// injects bucket-scale noise into the stored weights above.
		if m.C.Lookup(amps[0]) == 0 {
			return m.VZeroEdge()
		}
		return VEdge{amps[0], m.vTerminal}
	}
	half := len(amps) / 2
	e0 := m.vectorFromSlice(amps[:half], level-1)
	e1 := m.vectorFromSlice(amps[half:], level-1)
	return m.MakeVNode(level, e0, e1)
}

// Amplitude returns entry idx of the vector DD rooted at e, which must
// describe n qubits. The amplitude is the product of edge weights along the
// path selected by the bits of idx, as in Figure 2b of the paper.
func (m *Manager) Amplitude(e VEdge, n int, idx uint64) complex128 {
	w := e.W
	for level := n - 1; level >= 0; level-- {
		if w == 0 {
			return 0
		}
		if e.N.Level != int8(level) {
			panic(fmt.Sprintf("dd: vector node at level %d, expected %d", e.N.Level, level))
		}
		e = e.N.E[idx>>uint(level)&1]
		w *= e.W
	}
	return w
}

// ToArray converts the vector DD to a flat amplitude array of length 2^n
// using the sequential depth-first algorithm (the DDSIM-style conversion
// baseline of Section 4.4; the parallel algorithm lives in
// internal/convert).
func (m *Manager) ToArray(e VEdge, n int) []complex128 {
	out := make([]complex128, uint64(1)<<uint(n))
	m.FillArray(e, n, out)
	return out
}

// FillArray writes the amplitudes of e into out, which must have length
// 2^n. Entries under zero edges are left untouched, so out should be
// zeroed by the caller.
func (m *Manager) FillArray(e VEdge, n int, out []complex128) {
	if uint64(len(out)) != uint64(1)<<uint(n) {
		panic(fmt.Sprintf("dd: output length %d, want %d", len(out), uint64(1)<<uint(n)))
	}
	if e.IsZero() {
		return
	}
	fillRec(e.N, e.W, out)
}

func fillRec(n *VNode, w complex128, out []complex128) {
	if n.Level == TerminalLevel {
		out[0] = w
		return
	}
	half := len(out) / 2
	if e := n.E[0]; !e.IsZero() {
		fillRec(e.N, w*e.W, out[:half])
	}
	if e := n.E[1]; !e.IsZero() {
		fillRec(e.N, w*e.W, out[half:])
	}
}

// VSize returns the number of unique nodes reachable from e, excluding the
// terminal — the DD size s_i the EWMA controller monitors.
func (m *Manager) VSize(e VEdge) int {
	seen := make(map[*VNode]struct{})
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n.Level == TerminalLevel {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		for _, c := range n.E {
			if !c.IsZero() {
				walk(c.N)
			}
		}
	}
	if !e.IsZero() {
		walk(e.N)
	}
	return len(seen)
}

// MSize returns the number of unique matrix nodes reachable from e,
// excluding the terminal.
func (m *Manager) MSize(e MEdge) int {
	seen := make(map[*MNode]struct{})
	var walk func(n *MNode)
	walk = func(n *MNode) {
		if n.Level == TerminalLevel {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		for _, c := range n.E {
			if !c.IsZero() {
				walk(c.N)
			}
		}
	}
	if !e.IsZero() {
		walk(e.N)
	}
	return len(seen)
}

// Norm returns the 2-norm of the vector DD, computed by a memoized upward
// pass over the unique nodes (O(nodes)). With division-based node
// normalization sub-trees are not unit vectors, so the norm is
// |W| * sqrt(S(root)) where S is the squared sub-tree norm.
func (m *Manager) Norm(e VEdge) float64 {
	if e.IsZero() {
		return 0
	}
	memo := make(map[*VNode]float64)
	return cmplx.Abs(e.W) * math.Sqrt(m.subtreeNorm2(e.N, memo))
}

// SubtreeNorm2 returns S(n), the squared 2-norm of the sub-vector rooted at
// node n with an implicit incoming weight of 1:
//
//	S(terminal) = 1,  S(n) = sum_i |w_i|^2 * S(child_i).
//
// memo caches S per node across calls that share the map; pass nil for a
// one-shot query.
func (m *Manager) SubtreeNorm2(n *VNode, memo map[*VNode]float64) float64 {
	if memo == nil {
		memo = make(map[*VNode]float64)
	}
	return m.subtreeNorm2(n, memo)
}

func (m *Manager) subtreeNorm2(n *VNode, memo map[*VNode]float64) float64 {
	if n.Level == TerminalLevel {
		return 1
	}
	if s, ok := memo[n]; ok {
		return s
	}
	var s float64
	for _, c := range n.E {
		if !c.IsZero() {
			w := cmplx.Abs(c.W)
			s += w * w * m.subtreeNorm2(c.N, memo)
		}
	}
	memo[n] = s
	return s
}

// InnerProduct computes <a|b> for two vector DDs of the same dimension.
func (m *Manager) InnerProduct(a, b VEdge, n int) complex128 {
	return m.ipRec(a, b, n-1)
}

func (m *Manager) ipRec(a, b VEdge, level int) complex128 {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	if level < 0 {
		return cmplx.Conj(a.W) * b.W
	}
	var sum complex128
	for i := 0; i < 2; i++ {
		ea := a.N.E[i]
		eb := b.N.E[i]
		if ea.IsZero() || eb.IsZero() {
			continue
		}
		sum += cmplx.Conj(a.W) * b.W * m.ipRec(VEdge{ea.W, ea.N}, VEdge{eb.W, eb.N}, level-1)
	}
	return sum
}
