package dd

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"flatdd/internal/obs"
)

// ctBits sets the compute-table capacity to 2^ctBits entries. Compute
// tables are direct-mapped with overwrite-on-collision, the classic DD
// package design: memory stays bounded while the hit rate on the repetitive
// sub-computations of structured circuits stays high.
const ctBits = 17

// ctStripes is the number of stripe locks over the entry array. Entries are
// multi-word, so reads and writes copy the whole entry under the stripe
// lock; beyond that the table is deliberately lossy under concurrency — two
// writers to the same slot overwrite each other, and a reader may miss an
// entry a concurrent writer is installing. A missed hit is a recompute,
// never a wrong answer: every cached value is a pure function of its key,
// so whichever entry survives is correct for its key.
const ctStripes = 64

type ctEntry[K comparable, V any] struct {
	key   K
	value V
	valid bool
}

// ctable is a direct-mapped memoization cache for DD operations, safe for
// concurrent use with lossy racy-read/racy-write semantics (see ctStripes).
type ctable[K comparable, V any] struct {
	seed    maphash.Seed
	entries []ctEntry[K, V]
	stripes [ctStripes]sync.Mutex

	lookups atomic.Uint64
	hits    atomic.Uint64

	// Optional registry handles (nil when metrics are off; the handle
	// methods no-op after one pointer check).
	obsLookups *obs.Counter
	obsHits    *obs.Counter
}

// setMetrics attaches (or, with nil counters, detaches) registry handles.
func (c *ctable[K, V]) setMetrics(lookups, hits *obs.Counter) {
	c.obsLookups = lookups
	c.obsHits = hits
}

func (c *ctable[K, V]) init() {
	c.seed = maphash.MakeSeed()
	c.entries = make([]ctEntry[K, V], 1<<ctBits)
}

func (c *ctable[K, V]) slotIndex(k K) uint64 {
	return maphash.Comparable(c.seed, k) & (1<<ctBits - 1)
}

func (c *ctable[K, V]) get(k K) (V, bool) {
	c.lookups.Add(1)
	c.obsLookups.Inc()
	s := c.slotIndex(k)
	st := &c.stripes[s&(ctStripes-1)]
	st.Lock()
	e := c.entries[s]
	st.Unlock()
	if e.valid && e.key == k {
		c.hits.Add(1)
		c.obsHits.Inc()
		return e.value, true
	}
	var zero V
	return zero, false
}

func (c *ctable[K, V]) put(k K, v V) {
	s := c.slotIndex(k)
	st := &c.stripes[s&(ctStripes-1)]
	st.Lock()
	c.entries[s] = ctEntry[K, V]{key: k, value: v, valid: true}
	st.Unlock()
}

// clear empties the table. It takes every stripe lock so it is safe even if
// a straggling reader is still in flight, though the GC barrier normally
// guarantees quiescence before clear runs.
func (c *ctable[K, V]) clear() {
	for i := range c.stripes {
		c.stripes[i].Lock()
	}
	clear(c.entries)
	c.lookups.Store(0)
	c.hits.Store(0)
	for i := range c.stripes {
		c.stripes[i].Unlock()
	}
}

func (c *ctable[K, V]) stats() (lookups, hits uint64) {
	return c.lookups.Load(), c.hits.Load()
}

// ComputeTableStats reports aggregate lookup/hit counters across the
// manager's four compute tables, for diagnostics and tests.
func (m *Manager) ComputeTableStats() (lookups, hits uint64) {
	for _, s := range [][2]uint64{
		sliceStats(m.addCT.stats()),
		sliceStats(m.maddCT.stats()),
		sliceStats(m.mvCT.stats()),
		sliceStats(m.mmCT.stats()),
	} {
		lookups += s[0]
		hits += s[1]
	}
	return
}

func sliceStats(l, h uint64) [2]uint64 { return [2]uint64{l, h} }
