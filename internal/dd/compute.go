package dd

import (
	"hash/maphash"

	"flatdd/internal/obs"
)

// ctBits sets the compute-table capacity to 2^ctBits entries. Compute
// tables are direct-mapped with overwrite-on-collision, the classic DD
// package design: memory stays bounded while the hit rate on the repetitive
// sub-computations of structured circuits stays high.
const ctBits = 17

type ctEntry[K comparable, V any] struct {
	key   K
	value V
	valid bool
}

// ctable is a direct-mapped memoization cache for DD operations.
type ctable[K comparable, V any] struct {
	seed    maphash.Seed
	entries []ctEntry[K, V]

	lookups uint64
	hits    uint64

	// Optional registry handles (nil when metrics are off; the handle
	// methods no-op after one pointer check).
	obsLookups *obs.Counter
	obsHits    *obs.Counter
}

// setMetrics attaches (or, with nil counters, detaches) registry handles.
func (c *ctable[K, V]) setMetrics(lookups, hits *obs.Counter) {
	c.obsLookups = lookups
	c.obsHits = hits
}

func (c *ctable[K, V]) init() {
	c.seed = maphash.MakeSeed()
	c.entries = make([]ctEntry[K, V], 1<<ctBits)
}

func (c *ctable[K, V]) slot(k K) *ctEntry[K, V] {
	h := maphash.Comparable(c.seed, k)
	return &c.entries[h&(1<<ctBits-1)]
}

func (c *ctable[K, V]) get(k K) (V, bool) {
	c.lookups++
	c.obsLookups.Inc()
	e := c.slot(k)
	if e.valid && e.key == k {
		c.hits++
		c.obsHits.Inc()
		return e.value, true
	}
	var zero V
	return zero, false
}

func (c *ctable[K, V]) put(k K, v V) {
	e := c.slot(k)
	*e = ctEntry[K, V]{key: k, value: v, valid: true}
}

func (c *ctable[K, V]) clear() {
	clear(c.entries)
	c.lookups = 0
	c.hits = 0
}

func (c *ctable[K, V]) stats() (lookups, hits uint64) { return c.lookups, c.hits }

// ComputeTableStats reports aggregate lookup/hit counters across the
// manager's four compute tables, for diagnostics and tests.
func (m *Manager) ComputeTableStats() (lookups, hits uint64) {
	for _, s := range [][2]uint64{
		sliceStats(m.addCT.stats()),
		sliceStats(m.maddCT.stats()),
		sliceStats(m.mvCT.stats()),
		sliceStats(m.mmCT.stats()),
	} {
		lookups += s[0]
		hits += s[1]
	}
	return
}

func sliceStats(l, h uint64) [2]uint64 { return [2]uint64{l, h} }
