package dd

// Task-parallel DD matrix-vector multiplication. MulMV recursions on
// distinct (matrix node, vector node) pairs are independent: each computes
// a pure function of its pair and communicates only through the manager's
// concurrent tables. MulMVParallel exploits that by splitting the top few
// levels of the recursion into a frontier of sub-multiplications, running
// them as one batch on a caller-provided task runner (typically
// sched.Pool.Run), and then finishing with an ordinary serial MulMV that
// hits the warmed compute table for every frontier pair.
//
// The result is bit-identical to MulMV(M, v) for any worker count and any
// interleaving: the frontier tasks only populate the compute tables with
// values that are pure functions of their keys, so the final serial pass
// computes exactly what it would have computed alone — just faster,
// because the heavy sub-DDs are already cached.

// TaskRunner executes a batch of independent tasks and returns when all
// have finished. sched.Pool.Run satisfies this signature.
type TaskRunner func(tasks []func())

// MulMVParallel computes MulMV(M, v), decomposing the top splitLevels
// levels of the recursion into independent sub-multiplications executed
// through run. The batch is bracketed with BeginConcurrent/EndConcurrent,
// so a garbage collection triggered elsewhere defers until the workers
// have drained. A nil runner, a non-positive splitLevels, or a frontier
// of fewer than two pairs falls back to the serial MulMV.
func (m *Manager) MulMVParallel(M MEdge, v VEdge, run TaskRunner, splitLevels int) VEdge {
	if run == nil || splitLevels <= 0 || M.IsZero() || v.IsZero() ||
		M.IsTerminal() || v.IsTerminal() {
		return m.MulMV(M, v)
	}
	// Collect the deduplicated frontier: the (MNode, VNode) pairs the
	// serial recursion would reach splitLevels below the root. Weights are
	// irrelevant here — the compute table is keyed on node pairs only.
	seen := make(map[mvKey]struct{})
	var pairs []mvKey
	var walk func(mn *MNode, vn *VNode, depth int)
	walk = func(mn *MNode, vn *VNode, depth int) {
		if mn.Level == TerminalLevel || vn.Level == TerminalLevel {
			return
		}
		k := mvKey{mn, vn}
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		if depth <= 0 {
			pairs = append(pairs, k)
			return
		}
		for i := 0; i < 2; i++ {
			for c := 0; c < 2; c++ {
				me := mn.Child(i, c)
				ve := vn.E[c]
				if me.IsZero() || ve.IsZero() {
					continue
				}
				walk(me.N, ve.N, depth-1)
			}
		}
	}
	walk(M.N, v.N, splitLevels)
	if len(pairs) > 1 {
		tasks := make([]func(), len(pairs))
		for i, k := range pairs {
			k := k
			tasks[i] = func() { m.MulMV(MEdge{W: 1, N: k.m}, VEdge{W: 1, N: k.v}) }
		}
		m.BeginConcurrent()
		func() {
			defer m.EndConcurrent()
			run(tasks)
		}()
	}
	return m.MulMV(M, v)
}
