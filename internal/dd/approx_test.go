package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// skewedAmps returns a normalized vector dominated by a few large
// amplitudes plus a tail of tiny ones — the regime state approximation is
// designed for.
func skewedAmps(rng *rand.Rand, n int, heavy int) []complex128 {
	amps := make([]complex128, 1<<uint(n))
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
	}
	for k := 0; k < heavy; k++ {
		amps[rng.Intn(len(amps))] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var norm float64
	for _, a := range amps {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	return amps
}

func TestApproximateZeroBudgetIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(8)
	e := m.VectorFromAmplitudes(skewedAmps(rng, 8, 4))
	got, fid := m.Approximate(e, 8, 0)
	if got != e || fid != 1 {
		t.Fatalf("zero budget changed the state (fid=%v)", fid)
	}
}

func TestApproximateFidelityMatchesInnerProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(4)
		m := New(n)
		e := m.VectorFromAmplitudes(skewedAmps(rng, n, 3))
		budget := 0.01 + 0.1*rng.Float64()
		approx, fid := m.Approximate(e, n, budget)
		// The reported fidelity must equal |<e|approx>|^2.
		ip := m.InnerProduct(e, approx, n)
		if math.Abs(real(ip*cmplx.Conj(ip))-fid) > 1e-9 {
			t.Fatalf("trial %d: reported fidelity %v, actual %v", trial, fid, real(ip*cmplx.Conj(ip)))
		}
		if fid < 1-budget-1e-9 {
			t.Fatalf("trial %d: fidelity %v below guarantee %v", trial, fid, 1-budget)
		}
		if norm := m.Norm(approx); math.Abs(norm-1) > 1e-9 {
			t.Fatalf("trial %d: approximated state norm %v", trial, norm)
		}
	}
}

func TestApproximateShrinksSkewedStates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 10
	m := New(n)
	e := m.VectorFromAmplitudes(skewedAmps(rng, n, 2))
	before := m.VSize(e)
	approx, fid := m.Approximate(e, n, 0.05)
	after := m.VSize(approx)
	if after >= before {
		t.Fatalf("approximation did not shrink the DD: %d -> %d", before, after)
	}
	if fid < 0.95 {
		t.Fatalf("fidelity %v below budgeted 0.95", fid)
	}
	// The tail was tiny: most of it should have been pruned.
	if after > before/2 {
		t.Logf("note: only modest shrink %d -> %d", before, after)
	}
}

func TestApproximatePreservesDominantAmplitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	m := New(n)
	amps := skewedAmps(rng, n, 2)
	e := m.VectorFromAmplitudes(amps)
	approx, _ := m.Approximate(e, n, 0.02)
	out := m.ToArray(approx, n)
	for i, a := range amps {
		if cmplx.Abs(a) > 0.3 { // the heavy components must survive
			if cmplx.Abs(out[i]-a) > 0.05 {
				t.Fatalf("dominant amplitude %d drifted: %v -> %v", i, a, out[i])
			}
		}
	}
}

func TestApproximateBadBudgetPanics(t *testing.T) {
	m := New(3)
	e := m.ZeroState(3)
	for _, b := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("budget %v did not panic", b)
				}
			}()
			m.Approximate(e, 3, b)
		}()
	}
}

func TestApproximateZeroStateNoop(t *testing.T) {
	m := New(4)
	got, fid := m.Approximate(m.VZeroEdge(), 4, 0.5)
	if !got.IsZero() || fid != 1 {
		t.Fatal("zero edge mishandled")
	}
}

func TestApproximateGHZUntouchable(t *testing.T) {
	// GHZ has two equal-mass branches (0.5 each): any budget below 0.5
	// must leave it bit-exact.
	m := New(8)
	e := m.BasisState(8, 0)
	h := m.SingleGate(8, Matrix2{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}, 0)
	e = m.MulMV(h, e)
	for q := 1; q < 8; q++ {
		cx := m.ControlledGate(8, Matrix2{{0, 1}, {1, 0}}, q, []Control{{Qubit: q - 1}})
		e = m.MulMV(cx, e)
	}
	approx, fid := m.Approximate(e, 8, 0.3)
	if approx.N != e.N || fid != 1 {
		t.Fatalf("GHZ pruned despite budget < branch mass (fid=%v)", fid)
	}
}
