package dd_test

import (
	"fmt"
	"math"

	"flatdd/internal/dd"
)

// ExampleManager_MulMV applies a Hadamard to |0> entirely in DD form.
func ExampleManager_MulMV() {
	m := dd.New(1)
	h := m.SingleGate(1, dd.Matrix2{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}, 0)
	state := m.MulMV(h, m.ZeroState(1))
	fmt.Printf("amp(0) = %.4f\n", real(m.Amplitude(state, 1, 0)))
	fmt.Printf("amp(1) = %.4f\n", real(m.Amplitude(state, 1, 1)))
	// Output:
	// amp(0) = 0.7071
	// amp(1) = 0.7071
}

// ExampleMACCount reproduces the Figure 8 count: a Hadamard on the top
// qubit of three touches 16 nonzero matrix entries.
func ExampleMACCount() {
	m := dd.New(3)
	h := m.SingleGate(3, dd.Matrix2{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}, 2)
	fmt.Println(dd.MACCount(h))
	// Output:
	// 16
}

// ExampleManager_VSize contrasts a regular and an irregular state.
func ExampleManager_VSize() {
	m := dd.New(4)
	uniform := make([]complex128, 16)
	for i := range uniform {
		uniform[i] = 0.25
	}
	fmt.Println("uniform:", m.VSize(m.VectorFromAmplitudes(uniform)))
	spiky := make([]complex128, 16)
	for i := range spiky {
		spiky[i] = complex(float64(i%7)/10+0.1, float64(i%3)/10)
	}
	// Normalize roughly; VSize ignores scale.
	fmt.Println("irregular is larger:", m.VSize(m.VectorFromAmplitudes(spiky)) > 4)
	// Output:
	// uniform: 4
	// irregular is larger: true
}
