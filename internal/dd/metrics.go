package dd

import "flatdd/internal/obs"

// metrics holds the manager's observability handles. The zero value (all
// nil) is the disabled state: every handle method no-ops after one pointer
// check, so unmetered managers pay nothing beyond that check on the node
// construction and compute-table paths.
type metrics struct {
	vHits, vMisses *obs.Counter
	mHits, mMisses *obs.Counter
	peakNodes      *obs.Gauge
	gcRuns         *obs.Counter
	gcPauseNs      *obs.Counter
	gcReclaimed    *obs.Counter
	gcDeferred     *obs.Counter
}

// SetMetrics attaches the manager (and its complex-number table and compute
// tables) to a registry. Metric names are documented in DESIGN.md
// ("Observability"). Passing a nil registry detaches everything.
func (m *Manager) SetMetrics(r *obs.Registry) {
	m.met = metrics{
		vHits:       r.Counter("dd.unique.v.hits"),
		vMisses:     r.Counter("dd.unique.v.misses"),
		mHits:       r.Counter("dd.unique.m.hits"),
		mMisses:     r.Counter("dd.unique.m.misses"),
		peakNodes:   r.Gauge("dd.nodes.peak"),
		gcRuns:      r.Counter("dd.gc.runs"),
		gcPauseNs:   r.Counter("dd.gc.pause_ns"),
		gcReclaimed: r.Counter("dd.gc.reclaimed"),
		gcDeferred:  r.Counter("dd.gc.deferred"),
	}
	m.addCT.setMetrics(r.Counter("dd.ct.add.lookups"), r.Counter("dd.ct.add.hits"))
	m.maddCT.setMetrics(r.Counter("dd.ct.madd.lookups"), r.Counter("dd.ct.madd.hits"))
	m.mvCT.setMetrics(r.Counter("dd.ct.mv.lookups"), r.Counter("dd.ct.mv.hits"))
	m.mmCT.setMetrics(r.Counter("dd.ct.mm.lookups"), r.Counter("dd.ct.mm.hits"))
	m.C.SetMetrics(r)
}
