package dd

import (
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
)

// bruteTopK is the oracle: expand the full array and sort.
func bruteTopK(m *Manager, e VEdge, n, k int) []AmpEntry {
	amps := m.ToArray(e, n)
	entries := make([]AmpEntry, 0, len(amps))
	for i, a := range amps {
		if a != 0 {
			entries = append(entries, AmpEntry{uint64(i), a})
		}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return cmplx.Abs(entries[i].Amplitude) > cmplx.Abs(entries[j].Amplitude)
	})
	if k > len(entries) {
		k = len(entries)
	}
	return entries[:k]
}

func TestTopAmplitudesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		m := New(n)
		e := m.VectorFromAmplitudes(randAmps(rng, n))
		for _, k := range []int{1, 3, 8} {
			got := m.TopAmplitudes(e, n, k)
			want := bruteTopK(m, e, n, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d entries, want %d", trial, k, len(got), len(want))
			}
			for i := range got {
				// Ties can permute equal magnitudes; compare magnitudes and
				// verify the amplitude matches the index.
				gm := cmplx.Abs(got[i].Amplitude)
				wm := cmplx.Abs(want[i].Amplitude)
				if gm-wm > 1e-12 || wm-gm > 1e-12 {
					t.Fatalf("trial %d k=%d rank %d: |%v| vs |%v|", trial, k, i, gm, wm)
				}
				if a := m.Amplitude(e, n, got[i].Index); !approx(a, got[i].Amplitude) {
					t.Fatalf("trial %d: entry %d reports wrong amplitude", trial, i)
				}
			}
		}
	}
}

func TestTopAmplitudesSparseState(t *testing.T) {
	m := New(12)
	amps := make([]complex128, 1<<12)
	amps[100] = 0.8
	amps[2000] = complex(0, 0.5)
	amps[7] = 0.2
	amps[4095] = 0.27
	e := m.VectorFromAmplitudes(amps)
	top := m.TopAmplitudes(e, 12, 3)
	if len(top) != 3 {
		t.Fatalf("got %d entries", len(top))
	}
	if top[0].Index != 100 || top[1].Index != 2000 || top[2].Index != 4095 {
		t.Fatalf("order wrong: %+v", top)
	}
}

func TestTopAmplitudesGHZ(t *testing.T) {
	m := New(10)
	e := m.BasisState(10, 0)
	h := m.SingleGate(10, matH, 0)
	e = m.MulMV(h, e)
	for q := 1; q < 10; q++ {
		cx := m.ControlledGate(10, matX, q, []Control{{Qubit: q - 1}})
		e = m.MulMV(cx, e)
	}
	top := m.TopAmplitudes(e, 10, 5)
	// Only two nonzero amplitudes exist.
	if len(top) != 2 {
		t.Fatalf("GHZ top-5 returned %d entries", len(top))
	}
	idxs := map[uint64]bool{top[0].Index: true, top[1].Index: true}
	if !idxs[0] || !idxs[1023] {
		t.Fatalf("GHZ support wrong: %+v", top)
	}
}

func TestTopAmplitudesEdgeCases(t *testing.T) {
	m := New(4)
	if got := m.TopAmplitudes(m.VZeroEdge(), 4, 3); got != nil {
		t.Fatal("zero state returned entries")
	}
	e := m.BasisState(4, 9)
	if got := m.TopAmplitudes(e, 4, 0); got != nil {
		t.Fatal("k=0 returned entries")
	}
	// k beyond the state dimension clamps.
	got := m.TopAmplitudes(e, 4, 100)
	if len(got) != 1 {
		t.Fatalf("basis state has 1 nonzero, got %d", len(got))
	}
	if got[0].Index != 9 {
		t.Fatalf("index %d", got[0].Index)
	}
}

func TestMaxAmplitude(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(9))
	amps := randAmps(rng, 6)
	e := m.VectorFromAmplitudes(amps)
	got, err := m.MaxAmplitude(e, 6)
	if err != nil {
		t.Fatal(err)
	}
	bestIdx, bestMag := 0, 0.0
	for i, a := range amps {
		if mag := cmplx.Abs(a); mag > bestMag {
			bestMag, bestIdx = mag, i
		}
	}
	if got.Index != uint64(bestIdx) {
		t.Fatalf("max at %d, want %d", got.Index, bestIdx)
	}
	if _, err := m.MaxAmplitude(m.VZeroEdge(), 6); err == nil {
		t.Fatal("zero state max accepted")
	}
}

func BenchmarkTopAmplitudesSkewed16(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := New(16)
	amps := make([]complex128, 1<<16)
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), 0) * 1e-4
	}
	for j := 0; j < 20; j++ {
		amps[rng.Intn(len(amps))] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	e := m.VectorFromAmplitudes(amps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TopAmplitudes(e, 16, 10)
	}
}
