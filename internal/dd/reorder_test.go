package dd

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestSwapAdjacentLevelsMatchesIndexSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		m := New(n)
		amps := randAmps(rng, n)
		e := m.VectorFromAmplitudes(amps)
		l := rng.Intn(n - 1)
		swapped := m.SwapAdjacentLevels(e, n, l)
		got := m.ToArray(swapped, n)
		for idx := range amps {
			// newAmp[idx] = oldAmp[idx with bits l and l+1 exchanged]
			bl := idx >> uint(l) & 1
			bh := idx >> uint(l+1) & 1
			src := idx&^(1<<uint(l))&^(1<<uint(l+1)) | bh<<uint(l) | bl<<uint(l+1)
			if !approx(got[idx], amps[src]) {
				t.Fatalf("trial %d n=%d l=%d: idx %d = %v, want %v", trial, n, l, idx, got[idx], amps[src])
			}
		}
	}
}

// Swapping twice is semantically the identity. The result is not required
// to be pointer-identical to the input: each swap re-normalizes the
// two-level block, and the grid snapping of the stored weights (chosen so
// results are independent of thread interleaving, see cnum) can move a
// re-derived ratio to the neighboring bucket. The round trip must agree on
// every amplitude within tolerance, and must be bit-deterministic: an
// independent manager doing the same round trip produces bit-identical
// amplitudes.
func TestSwapAdjacentLevelsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	amps := randAmps(rng, 6)

	m := New(6)
	e := m.VectorFromAmplitudes(amps)
	twice := m.SwapAdjacentLevels(m.SwapAdjacentLevels(e, 6, 2), 6, 2)
	got := m.ToArray(twice, 6)
	want := m.ToArray(e, 6)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("amp %d drifted: %v -> %v", i, want[i], got[i])
		}
	}

	m2 := New(6)
	e2 := m2.VectorFromAmplitudes(amps)
	twice2 := m2.SwapAdjacentLevels(m2.SwapAdjacentLevels(e2, 6, 2), 6, 2)
	got2 := m2.ToArray(twice2, 6)
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("amp %d not deterministic across managers: %v vs %v", i, got[i], got2[i])
		}
	}
}

func TestReorderMatchesPermutedIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(5)
		m := New(n)
		amps := randAmps(rng, n)
		e := m.VectorFromAmplitudes(amps)
		perm := rng.Perm(n)
		re := m.Reorder(e, n, perm)
		got := m.ToArray(re, n)
		for idx := range amps {
			src := PermuteIndexBits(uint64(idx), perm)
			if !approx(got[idx], amps[src]) {
				t.Fatalf("trial %d perm %v: idx %d = %v, want amps[%d]=%v",
					trial, perm, idx, got[idx], src, amps[src])
			}
		}
	}
}

func TestReorderIdentityPermIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	m := New(5)
	e := m.VectorFromAmplitudes(randAmps(rng, 5))
	re := m.Reorder(e, 5, []int{0, 1, 2, 3, 4})
	if re.N != e.N || !approx(re.W, e.W) {
		t.Fatal("identity permutation changed the DD")
	}
}

// Reordering by perm and then by its inverse is semantically the identity.
// As with TestSwapAdjacentLevelsInvolution, pointer identity is not
// guaranteed under grid snapping; the round trip must preserve amplitudes
// within tolerance and be bit-deterministic across managers.
func TestReorderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	amps := randAmps(rng, 6)
	perm := rng.Perm(6)
	inv := make([]int, 6)
	for i, p := range perm {
		inv[p] = i
	}

	roundTrip := func(m *Manager) []complex128 {
		e := m.VectorFromAmplitudes(amps)
		back := m.Reorder(m.Reorder(e, 6, perm), 6, inv)
		return m.ToArray(back, 6)
	}

	m := New(6)
	got := roundTrip(m)
	want := m.ToArray(m.VectorFromAmplitudes(amps), 6)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("perm %v then inverse %v: amp %d drifted %v -> %v", perm, inv, i, want[i], got[i])
		}
	}

	got2 := roundTrip(New(6))
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("amp %d not deterministic across managers: %v vs %v", i, got[i], got2[i])
		}
	}
}

func TestReorderCanShrinkDD(t *testing.T) {
	// A state that is a product across interleaved qubit pairs has a small
	// DD only under an order that groups the pairs... build a state
	// entangling qubit i with qubit i+n/2 and check the interleaved order
	// is smaller than or equal after grouping. At minimum, reordering must
	// preserve size-1 product states.
	m := New(6)
	amps := make([]complex128, 64)
	// Product state |+>^6: any order gives 6 nodes.
	for i := range amps {
		amps[i] = 0.125
	}
	e := m.VectorFromAmplitudes(amps)
	re := m.Reorder(e, 6, []int{5, 4, 3, 2, 1, 0})
	if m.VSize(re) != m.VSize(e) {
		t.Fatalf("product state size changed: %d -> %d", m.VSize(e), m.VSize(re))
	}
}

func TestReorderRejectsBadPerm(t *testing.T) {
	m := New(3)
	e := m.ZeroState(3)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v accepted", perm)
				}
			}()
			m.Reorder(e, 3, perm)
		}()
	}
}

func TestSwapAdjacentLevelsBounds(t *testing.T) {
	m := New(3)
	e := m.ZeroState(3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range level accepted")
		}
	}()
	m.SwapAdjacentLevels(e, 3, 2) // l+1 == n is invalid
}
