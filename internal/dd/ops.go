package dd

import "flatdd/internal/cnum"

// scaleV multiplies an edge weight by w, keeping the zero edge canonical.
// The product stays raw: top weights are exact arithmetic end to end, only
// node-stored weights are grid-snapped (see MakeVNode).
func (m *Manager) scaleV(e VEdge, w complex128) VEdge {
	if e.IsZero() || w == 0 {
		return m.VZeroEdge()
	}
	wc := e.W * w
	if wc == 0 {
		return m.VZeroEdge()
	}
	return VEdge{wc, e.N}
}

func (m *Manager) scaleM(e MEdge, w complex128) MEdge {
	if e.IsZero() || w == 0 {
		return m.MZeroEdge()
	}
	wc := e.W * w
	if wc == 0 {
		return m.MZeroEdge()
	}
	return MEdge{wc, e.N}
}

// ScaleV returns e scaled by the scalar w (canonicalized).
func (m *Manager) ScaleV(e VEdge, w complex128) VEdge { return m.scaleV(e, w) }

// ScaleM returns e scaled by the scalar w (canonicalized).
func (m *Manager) ScaleM(e MEdge, w complex128) MEdge { return m.scaleM(e, w) }

// Add returns the sum of two vector DDs. Operands must stem from this
// manager and describe vectors of the same dimension.
func (m *Manager) Add(a, b VEdge) VEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.IsTerminal() || b.IsTerminal() {
		if !a.IsTerminal() || !b.IsTerminal() {
			panic("dd: Add operands of mismatched dimension")
		}
		w := a.W + b.W
		if m.C.Lookup(w) == 0 {
			return m.VZeroEdge()
		}
		return VEdge{w, m.vTerminal}
	}
	if a.N.Level != b.N.Level {
		panic("dd: Add operands of mismatched level")
	}
	// Factor out a.W so the cache key depends only on the node pair and the
	// relative weight b/a: a + b = a.W * (n_a + (b.W/a.W) n_b).
	ratio := m.C.Lookup(b.W / a.W)
	key := addKey{a.N, b.N, cnum.KeyOf(ratio)}
	if r, ok := m.addCT.get(key); ok {
		return m.scaleV(r, a.W)
	}
	var ch [2]VEdge
	for i := 0; i < 2; i++ {
		ea := a.N.E[i]
		eb := b.N.E[i]
		ch[i] = m.Add(ea, m.scaleV(eb, ratio))
	}
	r := m.MakeVNode(int(a.N.Level), ch[0], ch[1])
	m.addCT.put(key, r)
	return m.scaleV(r, a.W)
}

// MAdd returns the sum of two matrix DDs.
func (m *Manager) MAdd(a, b MEdge) MEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.IsTerminal() || b.IsTerminal() {
		if !a.IsTerminal() || !b.IsTerminal() {
			panic("dd: MAdd operands of mismatched dimension")
		}
		w := a.W + b.W
		if m.C.Lookup(w) == 0 {
			return m.MZeroEdge()
		}
		return MEdge{w, m.mTerminal}
	}
	if a.N.Level != b.N.Level {
		panic("dd: MAdd operands of mismatched level")
	}
	ratio := m.C.Lookup(b.W / a.W)
	key := maddKey{a.N, b.N, cnum.KeyOf(ratio)}
	if r, ok := m.maddCT.get(key); ok {
		return m.scaleM(r, a.W)
	}
	var ch [4]MEdge
	for i := range ch {
		ch[i] = m.MAdd(a.N.E[i], m.scaleM(b.N.E[i], ratio))
	}
	r := m.MakeMNode(int(a.N.Level), ch)
	m.maddCT.put(key, r)
	return m.scaleM(r, a.W)
}

// MulMV multiplies a matrix DD by a vector DD (the DD-based M·V used by the
// DDSIM-phase simulation). Identical sub-multiplications are shared through
// the compute table, which is keyed on the node pair only: by bilinearity
// the operand weights factor out of the product.
func (m *Manager) MulMV(M MEdge, v VEdge) VEdge {
	if M.IsZero() || v.IsZero() {
		return m.VZeroEdge()
	}
	w := M.W * v.W
	if w == 0 {
		return m.VZeroEdge()
	}
	if M.IsTerminal() || v.IsTerminal() {
		if !M.IsTerminal() || !v.IsTerminal() {
			panic("dd: MulMV operands of mismatched dimension")
		}
		return VEdge{w, m.vTerminal}
	}
	if M.N.Level != v.N.Level {
		panic("dd: MulMV operands of mismatched level")
	}
	key := mvKey{M.N, v.N}
	if r, ok := m.mvCT.get(key); ok {
		return m.scaleV(r, w)
	}
	level := int(M.N.Level)
	var ch [2]VEdge
	for i := 0; i < 2; i++ {
		sum := m.VZeroEdge()
		for k := 0; k < 2; k++ {
			me := M.N.Child(i, k)
			ve := v.N.E[k]
			if me.IsZero() || ve.IsZero() {
				continue
			}
			sum = m.Add(sum, m.MulMV(me, ve))
		}
		ch[i] = sum
	}
	r := m.MakeVNode(level, ch[0], ch[1])
	m.mvCT.put(key, r)
	return m.scaleV(r, w)
}

// MulMM multiplies two matrix DDs (the DDMM operation used by gate fusion:
// MulMM(A, B) represents the operator A·B, i.e. "apply B first, then A").
func (m *Manager) MulMM(a, b MEdge) MEdge {
	if a.IsZero() || b.IsZero() {
		return m.MZeroEdge()
	}
	w := a.W * b.W
	if w == 0 {
		return m.MZeroEdge()
	}
	if a.IsTerminal() || b.IsTerminal() {
		if !a.IsTerminal() || !b.IsTerminal() {
			panic("dd: MulMM operands of mismatched dimension")
		}
		return MEdge{w, m.mTerminal}
	}
	if a.N.Level != b.N.Level {
		panic("dd: MulMM operands of mismatched level")
	}
	key := mmKey{a.N, b.N}
	if r, ok := m.mmCT.get(key); ok {
		return m.scaleM(r, w)
	}
	level := int(a.N.Level)
	var ch [4]MEdge
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			sum := m.MZeroEdge()
			for k := 0; k < 2; k++ {
				ae := a.N.Child(i, k)
				be := b.N.Child(k, j)
				if ae.IsZero() || be.IsZero() {
					continue
				}
				sum = m.MAdd(sum, m.MulMM(ae, be))
			}
			ch[2*i+j] = sum
		}
	}
	r := m.MakeMNode(level, ch)
	m.mmCT.put(key, r)
	return m.scaleM(r, w)
}
