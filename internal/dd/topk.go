package dd

import (
	"container/heap"
	"fmt"
	"math/cmplx"
)

// Top-k amplitude query. A strength of DD-represented states is answering
// "which basis states dominate?" without expanding all 2^n amplitudes:
// a best-first branch-and-bound over the diagram visits only the paths
// whose magnitude upper bound can still reach the answer set.

// AmpEntry is one basis state and its amplitude.
type AmpEntry struct {
	Index     uint64
	Amplitude complex128
}

// TopAmplitudes returns the k basis states of the n-qubit state e with the
// largest |amplitude|, in descending magnitude order (exact, not
// approximate). It runs in O(paths visited · log) where the visited count
// is k plus the number of near-misses — far below 2^n on skewed states.
func (m *Manager) TopAmplitudes(e VEdge, n, k int) []AmpEntry {
	if k <= 0 || e.IsZero() {
		return nil
	}
	if total := uint64(1) << uint(n); uint64(k) > total {
		k = int(total)
	}
	// maxMag[node] = max over paths below node of the weight-magnitude
	// product (the bound used by the search).
	maxMag := make(map[*VNode]float64)
	var bound func(nd *VNode) float64
	bound = func(nd *VNode) float64 {
		if nd.Level == TerminalLevel {
			return 1
		}
		if v, ok := maxMag[nd]; ok {
			return v
		}
		best := 0.0
		for _, c := range nd.E {
			if c.IsZero() {
				continue
			}
			if b := cmplx.Abs(c.W) * bound(c.N); b > best {
				best = b
			}
		}
		maxMag[nd] = best
		return best
	}

	pq := &pathQueue{}
	heap.Init(pq)
	heap.Push(pq, pathItem{
		node: e.N, w: e.W, idx: 0,
		bound: cmplx.Abs(e.W) * bound(e.N),
	})
	var out []AmpEntry
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(pq).(pathItem)
		if it.node.Level == TerminalLevel {
			out = append(out, AmpEntry{Index: it.idx, Amplitude: it.w})
			continue
		}
		for i := 0; i < 2; i++ {
			c := it.node.E[i]
			if c.IsZero() {
				continue
			}
			w := it.w * c.W
			idx := it.idx | uint64(i)<<uint(it.node.Level)
			heap.Push(pq, pathItem{
				node: c.N, w: w, idx: idx,
				bound: cmplx.Abs(w) * bound(c.N),
			})
		}
	}
	return out
}

// MaxAmplitude returns the single largest-magnitude amplitude and its
// basis index.
func (m *Manager) MaxAmplitude(e VEdge, n int) (AmpEntry, error) {
	top := m.TopAmplitudes(e, n, 1)
	if len(top) == 0 {
		return AmpEntry{}, fmt.Errorf("dd: zero state has no maximum amplitude")
	}
	return top[0], nil
}

type pathItem struct {
	node  *VNode
	w     complex128
	idx   uint64
	bound float64
}

// pathQueue is a max-heap on the magnitude upper bound. Popping in bound
// order makes the first k terminal pops exactly the k largest amplitudes:
// every unexplored path's true magnitude is at most its bound, which is at
// most the bound of the popped item.
type pathQueue []pathItem

func (q pathQueue) Len() int            { return len(q) }
func (q pathQueue) Less(i, j int) bool  { return q[i].bound > q[j].bound }
func (q pathQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pathQueue) Push(x interface{}) { *q = append(*q, x.(pathItem)) }
func (q *pathQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
