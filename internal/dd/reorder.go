package dd

import "fmt"

// Variable reordering. The variable order of a decision diagram strongly
// influences its size; QMDD packages support reordering through adjacent
// level exchanges. SwapAdjacentLevels rebuilds a vector DD with qubits l
// and l+1 exchanged, and Reorder composes adjacent swaps to realize an
// arbitrary qubit permutation. Both return a DD in the manager's canonical
// form; semantically they permute amplitude indices:
//
//	newAmp[idx] = oldAmp[swapBits(idx, l, l+1)]

// SwapAdjacentLevels returns the vector DD whose qubits l and l+1 are
// exchanged relative to e (an n-qubit state).
func (m *Manager) SwapAdjacentLevels(e VEdge, n, l int) VEdge {
	if l < 0 || l+1 >= n {
		panic(fmt.Sprintf("dd: cannot swap levels %d,%d of %d qubits", l, l+1, n))
	}
	if e.IsZero() {
		return e
	}
	memo := make(map[*VNode]VEdge)
	var rec func(nd *VNode) VEdge
	rec = func(nd *VNode) VEdge {
		if v, ok := memo[nd]; ok {
			return v
		}
		var res VEdge
		if int(nd.Level) == l+1 {
			// The four grandchildren of the (l+1, l) block, indexed by
			// (upper bit, lower bit), get their index bits exchanged:
			// (a,b) -> (b,a).
			g := func(hi, lo int) VEdge {
				e1 := nd.E[hi]
				if e1.IsZero() {
					return m.VZeroEdge()
				}
				if int(e1.N.Level) != l {
					panic("dd: level skipped during swap")
				}
				e2 := e1.N.E[lo]
				if e2.IsZero() {
					return m.VZeroEdge()
				}
				return m.scaleV(e2, e1.W)
			}
			// New structure: level l+1 node decides the ORIGINAL qubit l.
			lo0 := m.MakeVNode(l, g(0, 0), g(1, 0))
			lo1 := m.MakeVNode(l, g(0, 1), g(1, 1))
			res = m.MakeVNode(l+1, lo0, lo1)
		} else {
			var ch [2]VEdge
			for i := 0; i < 2; i++ {
				c := nd.E[i]
				if c.IsZero() {
					ch[i] = m.VZeroEdge()
					continue
				}
				ch[i] = m.scaleV(rec(c.N), c.W)
			}
			res = m.MakeVNode(int(nd.Level), ch[0], ch[1])
		}
		memo[nd] = res
		return res
	}
	if int(e.N.Level) < l+1 {
		// The swap level is above the root (impossible for full-height
		// DDs, but be defensive).
		return e
	}
	return m.scaleV(rec(e.N), e.W)
}

// Reorder returns the vector DD with qubits permuted so that new qubit i
// is the old qubit perm[i]. perm must be a permutation of 0..n-1. The
// result satisfies newAmp[idx] = oldAmp[gather(idx)] with
// gather(idx) bit perm[i] = idx bit i.
func (m *Manager) Reorder(e VEdge, n int, perm []int) VEdge {
	if len(perm) != n {
		panic(fmt.Sprintf("dd: permutation length %d for %d qubits", len(perm), n))
	}
	cur := make([]int, n) // cur[i]: which ORIGINAL qubit sits at level i now
	seen := make([]bool, n)
	for i := range cur {
		cur[i] = i
	}
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("dd: invalid permutation %v", perm))
		}
		seen[p] = true
	}
	// Selection sort with adjacent transpositions: bring perm[i] to level
	// i from the bottom up.
	for target := 0; target < n; target++ {
		// Find where the wanted original qubit currently lives.
		pos := -1
		for i := target; i < n; i++ {
			if cur[i] == perm[target] {
				pos = i
				break
			}
		}
		if pos < 0 {
			panic("dd: permutation bookkeeping broken")
		}
		for pos > target {
			e = m.SwapAdjacentLevels(e, n, pos-1)
			cur[pos-1], cur[pos] = cur[pos], cur[pos-1]
			pos--
		}
	}
	return e
}

// PermuteIndexBits computes the amplitude-index gather of Reorder: bit i
// of the result is bit perm[i] of idx... inverse direction: the returned
// index is the ORIGINAL index holding the amplitude that Reorder places at
// position idx.
func PermuteIndexBits(idx uint64, perm []int) uint64 {
	var out uint64
	for i, p := range perm {
		out |= (idx >> uint(i) & 1) << uint(p)
	}
	return out
}
