package dd

import "math/cmplx"

// ConjTranspose returns the conjugate transpose (dagger) of a matrix DD:
// weights are conjugated and the off-diagonal children of every node are
// swapped. The result is built through the unique table, so U†† is
// pointer-identical to U.
func (m *Manager) ConjTranspose(e MEdge) MEdge {
	memo := make(map[*MNode]MEdge)
	return m.daggerRec(e, memo)
}

func (m *Manager) daggerRec(e MEdge, memo map[*MNode]MEdge) MEdge {
	if e.IsZero() {
		return m.MZeroEdge()
	}
	w := cmplx.Conj(e.W)
	if e.IsTerminal() {
		return MEdge{w, m.mTerminal}
	}
	if r, ok := memo[e.N]; ok {
		return m.scaleM(r, w)
	}
	ch := [4]MEdge{
		m.daggerRec(e.N.E[0], memo), // e00† stays
		m.daggerRec(e.N.E[2], memo), // e01' = conj(e10)
		m.daggerRec(e.N.E[1], memo), // e10' = conj(e01)
		m.daggerRec(e.N.E[3], memo),
	}
	r := m.MakeMNode(int(e.N.Level), ch)
	memo[e.N] = r
	return m.scaleM(r, w)
}

// Trace returns the trace of the matrix DD on n qubits: the sum over the
// diagonal entries, computed in O(nodes) by following only diagonal
// children.
func (m *Manager) Trace(e MEdge, n int) complex128 {
	memo := make(map[*MNode]complex128)
	var rec func(nd *MNode, level int) complex128
	rec = func(nd *MNode, level int) complex128 {
		if level < 0 {
			return 1
		}
		if v, ok := memo[nd]; ok {
			return v
		}
		var sum complex128
		if c := nd.E[0]; !c.IsZero() {
			sum += c.W * rec(c.N, level-1)
		}
		if c := nd.E[3]; !c.IsZero() {
			sum += c.W * rec(c.N, level-1)
		}
		memo[nd] = sum
		return sum
	}
	if e.IsZero() {
		return 0
	}
	return e.W * rec(e.N, n-1)
}
