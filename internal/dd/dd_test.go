package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

const eps = 1e-9

var (
	matH = Matrix2{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}
	matX = Matrix2{{0, 1}, {1, 0}}
	matZ = Matrix2{{1, 0}, {0, -1}}
	matS = Matrix2{{1, 0}, {0, 1i}}
	matT = Matrix2{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}
)

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < eps }

// denseMulMV multiplies a dense matrix by a dense vector (test oracle).
func denseMulMV(m [][]complex128, v []complex128) []complex128 {
	out := make([]complex128, len(v))
	for i := range m {
		var s complex128
		for j := range v {
			s += m[i][j] * v[j]
		}
		out[i] = s
	}
	return out
}

func denseMulMM(a, b [][]complex128) [][]complex128 {
	n := len(a)
	out := make([][]complex128, n)
	for i := range out {
		out[i] = make([]complex128, n)
		for j := 0; j < n; j++ {
			var s complex128
			for k := 0; k < n; k++ {
				s += a[i][k] * b[k][j]
			}
			out[i][j] = s
		}
	}
	return out
}

func randAmps(rng *rand.Rand, n int) []complex128 {
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	return amps
}

// sparseRandAmps returns a normalized vector with only a few nonzeros, to
// exercise zero-edge paths.
func sparseRandAmps(rng *rand.Rand, n, nnz int) []complex128 {
	amps := make([]complex128, 1<<uint(n))
	for k := 0; k < nnz; k++ {
		amps[rng.Intn(len(amps))] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var norm float64
	for i := range amps {
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	if norm == 0 {
		amps[0] = 1
		norm = 1
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	return amps
}

func TestBasisStateAmplitudes(t *testing.T) {
	m := New(4)
	for idx := uint64(0); idx < 16; idx++ {
		e := m.BasisState(4, idx)
		for j := uint64(0); j < 16; j++ {
			want := complex128(0)
			if j == idx {
				want = 1
			}
			if got := m.Amplitude(e, 4, j); !approx(got, want) {
				t.Fatalf("basis %d amplitude %d = %v, want %v", idx, j, got, want)
			}
		}
	}
}

func TestBasisStatesShareNodes(t *testing.T) {
	m := New(8)
	a := m.ZeroState(8)
	b := m.BasisState(8, 0)
	if a.N != b.N || a.W != b.W {
		t.Fatal("identical basis states are not pointer-equal (canonicity broken)")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 8; n++ {
		m := New(n)
		amps := randAmps(rng, n)
		e := m.VectorFromAmplitudes(amps)
		got := m.ToArray(e, n)
		for i := range amps {
			if !approx(got[i], amps[i]) {
				t.Fatalf("n=%d round trip mismatch at %d: %v vs %v", n, i, got[i], amps[i])
			}
			if a := m.Amplitude(e, n, uint64(i)); !approx(a, amps[i]) {
				t.Fatalf("n=%d Amplitude(%d) = %v, want %v", n, i, a, amps[i])
			}
		}
	}
}

func TestSparseVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 2; n <= 10; n += 2 {
		m := New(n)
		amps := sparseRandAmps(rng, n, 3)
		e := m.VectorFromAmplitudes(amps)
		got := m.ToArray(e, n)
		for i := range amps {
			if !approx(got[i], amps[i]) {
				t.Fatalf("n=%d sparse round trip mismatch at %d", n, i)
			}
		}
	}
}

func TestVectorCanonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(6)
	amps := randAmps(rng, 6)
	e1 := m.VectorFromAmplitudes(amps)
	e2 := m.VectorFromAmplitudes(amps)
	if e1.N != e2.N {
		t.Fatal("same vector built twice yields different nodes")
	}
	if e1.W != e2.W {
		t.Fatalf("same vector built twice yields different weights: %v vs %v", e1.W, e2.W)
	}
	// A globally scaled vector must share the node, differing only in the
	// root weight (normalization pushes scalars to the top).
	scaled := make([]complex128, len(amps))
	for i := range amps {
		scaled[i] = amps[i] * (0.5 - 0.25i)
	}
	e3 := m.VectorFromAmplitudes(scaled)
	if e3.N != e1.N {
		t.Fatal("scaled vector does not share structure")
	}
	if !approx(e3.W, e1.W*(0.5-0.25i)) {
		t.Fatalf("scaled root weight %v, want %v", e3.W, e1.W*(0.5-0.25i))
	}
}

func TestNormInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(7)
	amps := randAmps(rng, 7)
	e := m.VectorFromAmplitudes(amps)
	if n := m.Norm(e); math.Abs(n-1) > eps {
		t.Fatalf("norm of normalized vector = %v, want 1", n)
	}
}

func TestHadamardDDMatchesFigure2a(t *testing.T) {
	// Figure 2a: 2-qubit operator H on q1 (identity on q0). Root weight
	// 1/sqrt(2); root children weights 1,1,1,-1 all pointing at the
	// identity node.
	m := New(2)
	e := m.SingleGate(2, matH, 1)
	if !approx(e.W, complex(1/math.Sqrt2, 0)) {
		t.Fatalf("root weight %v, want 1/sqrt2", e.W)
	}
	n := e.N
	wants := [4]complex128{1, 1, 1, -1}
	for i, w := range wants {
		if !approx(n.E[i].W, w) {
			t.Fatalf("child %d weight %v, want %v", i, n.E[i].W, w)
		}
	}
	if n.E[0].N != n.E[1].N || n.E[1].N != n.E[2].N || n.E[2].N != n.E[3].N {
		t.Fatal("children do not share the identity node")
	}
	id := n.E[0].N
	if !approx(id.E[0].W, 1) || !id.E[1].IsZero() || !id.E[2].IsZero() || !approx(id.E[3].W, 1) {
		t.Fatal("inner node is not the 2x2 identity")
	}
	// Check M[0][2] = 1/sqrt2 as computed in the paper.
	if got := m.MatrixEntry(e, 2, 0, 2); !approx(got, complex(1/math.Sqrt2, 0)) {
		t.Fatalf("M[0][2] = %v, want 1/sqrt2", got)
	}
}

func TestSingleGateDense(t *testing.T) {
	m := New(3)
	gates := map[string]Matrix2{"H": matH, "X": matX, "Z": matZ, "S": matS, "T": matT}
	for name, g := range gates {
		for target := 0; target < 3; target++ {
			e := m.SingleGate(3, g, target)
			d := m.ToDense(e, 3)
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					// Dense reference: entry is g[rb][cb] when all other bits
					// agree, else 0.
					rb := r >> uint(target) & 1
					cb := c >> uint(target) & 1
					want := complex128(0)
					if r&^(1<<uint(target)) == c&^(1<<uint(target)) {
						want = g[rb][cb]
					}
					if !approx(d[r][c], want) {
						t.Fatalf("%s target %d entry (%d,%d) = %v, want %v", name, target, r, c, d[r][c], want)
					}
				}
			}
		}
	}
}

func TestControlledGateDense(t *testing.T) {
	m := New(3)
	cases := []struct {
		target   int
		controls []Control
	}{
		{0, []Control{{Qubit: 2}}},
		{2, []Control{{Qubit: 0}}},
		{1, []Control{{Qubit: 0}, {Qubit: 2}}},
		{0, []Control{{Qubit: 1, Negative: true}}},
	}
	for ci, tc := range cases {
		e := m.ControlledGate(3, matX, tc.target, tc.controls)
		d := m.ToDense(e, 3)
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				// Oracle: apply the controlled-X semantics directly.
				trig := true
				for _, ctl := range tc.controls {
					bit := c >> uint(ctl.Qubit) & 1
					if ctl.Negative {
						trig = trig && bit == 0
					} else {
						trig = trig && bit == 1
					}
				}
				want := complex128(0)
				if trig {
					if r == c^1<<uint(tc.target) {
						want = 1
					}
				} else if r == c {
					want = 1
				}
				if !approx(d[r][c], want) {
					t.Fatalf("case %d entry (%d,%d) = %v, want %v", ci, r, c, d[r][c], want)
				}
			}
		}
	}
}

func TestIdentityMulIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := New(5)
	v := m.VectorFromAmplitudes(randAmps(rng, 5))
	id := m.Identity(5)
	w := m.MulMV(id, v)
	if w.N != v.N || !approx(w.W, v.W) {
		t.Fatal("identity multiplication changed the vector")
	}
}

func TestMulMVMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= 6; n++ {
		m := New(n)
		amps := randAmps(rng, n)
		v := m.VectorFromAmplitudes(amps)
		for trial := 0; trial < 4; trial++ {
			target := rng.Intn(n)
			g := m.SingleGate(n, matH, target)
			gd := m.ToDense(g, n)
			want := denseMulMV(gd, amps)
			got := m.ToArray(m.MulMV(g, v), n)
			for i := range want {
				if !approx(got[i], want[i]) {
					t.Fatalf("n=%d H(%d) result mismatch at %d: %v vs %v", n, target, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for n := 1; n <= 5; n++ {
		m := New(n)
		a := m.SingleGate(n, matH, rng.Intn(n))
		b := m.ControlledGate(n, matX, 0, nil)
		if n > 1 {
			b = m.ControlledGate(n, matX, 0, []Control{{Qubit: n - 1}})
		}
		ab := m.MulMM(a, b)
		want := denseMulMM(m.ToDense(a, n), m.ToDense(b, n))
		got := m.ToDense(ab, n)
		for r := range want {
			for c := range want[r] {
				if !approx(got[r][c], want[r][c]) {
					t.Fatalf("n=%d MM entry (%d,%d): %v vs %v", n, r, c, got[r][c], want[r][c])
				}
			}
		}
	}
}

func TestAddMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := New(5)
	a := randAmps(rng, 5)
	b := randAmps(rng, 5)
	ea := m.VectorFromAmplitudes(a)
	eb := m.VectorFromAmplitudes(b)
	sum := m.Add(ea, eb)
	got := m.ToArray(sum, 5)
	for i := range a {
		if !approx(got[i], a[i]+b[i]) {
			t.Fatalf("add mismatch at %d: %v vs %v", i, got[i], a[i]+b[i])
		}
	}
}

func TestAddZeroIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := New(4)
	v := m.VectorFromAmplitudes(randAmps(rng, 4))
	z := m.VZeroEdge()
	if got := m.Add(v, z); got != v {
		t.Fatal("v + 0 != v")
	}
	if got := m.Add(z, v); got != v {
		t.Fatal("0 + v != v")
	}
}

func TestMultiQubitGateDense(t *testing.T) {
	// iSWAP on non-adjacent qubits (0, 2) of a 3-qubit register.
	iswap := [][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1i, 0},
		{0, 1i, 0, 0},
		{0, 0, 0, 1},
	}
	m := New(3)
	e := m.MultiQubitGate(3, iswap, []int{0, 2})
	d := m.ToDense(e, 3)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			// Oracle via bit semantics: qubit order (0,2); gate row index
			// bit0 -> qubit 0, bit1 -> qubit 2.
			ri := r&1 | (r >> 2 & 1 << 1)
			ci := c&1 | (c >> 2 & 1 << 1)
			want := complex128(0)
			if r>>1&1 == c>>1&1 { // spectator qubit 1 must agree
				want = iswap[ri][ci]
			}
			if !approx(d[r][c], want) {
				t.Fatalf("iSWAP entry (%d,%d) = %v, want %v", r, c, d[r][c], want)
			}
		}
	}
}

func TestMACCountFigure8(t *testing.T) {
	// H on the top qubit of 3 has 16 nonzero entries (2 per row over 8
	// rows), reproducing T(m1)=16 from Figure 8.
	m := New(3)
	e := m.SingleGate(3, matH, 2)
	if got := MACCount(e); got != 16 {
		t.Fatalf("MACCount = %d, want 16", got)
	}
	// Identity on n qubits: 2^n nonzero entries.
	for n := 1; n <= 6; n++ {
		if got := MACCount(m.Identity(n)); got != 1<<uint(n) {
			t.Fatalf("MACCount(I_%d) = %d, want %d", n, got, 1<<uint(n))
		}
	}
	if got := MACCount(m.MZeroEdge()); got != 0 {
		t.Fatalf("MACCount(0) = %d, want 0", got)
	}
}

func TestMACCountEqualsDenseNNZ(t *testing.T) {
	m := New(3)
	e := m.ControlledGate(3, matH, 1, []Control{{Qubit: 2}})
	d := m.ToDense(e, 3)
	var nnz int64
	for r := range d {
		for c := range d[r] {
			if cmplx.Abs(d[r][c]) > eps {
				nnz++
			}
		}
	}
	if got := MACCount(e); got != nnz {
		t.Fatalf("MACCount = %d, dense nnz = %d", got, nnz)
	}
}

func TestNNZVector(t *testing.T) {
	m := New(4)
	if got := NNZ(m.BasisState(4, 5)); got != 1 {
		t.Fatalf("NNZ basis = %d, want 1", got)
	}
	if got := NNZ(m.VZeroEdge()); got != 0 {
		t.Fatalf("NNZ zero = %d, want 0", got)
	}
	// Uniform superposition: all 16 entries nonzero.
	amps := make([]complex128, 16)
	for i := range amps {
		amps[i] = 0.25
	}
	if got := NNZ(m.VectorFromAmplitudes(amps)); got != 16 {
		t.Fatalf("NNZ uniform = %d, want 16", got)
	}
}

func TestVSizeRegularVsIrregular(t *testing.T) {
	m := New(10)
	// GHZ-like and uniform states have O(n) nodes.
	uniform := make([]complex128, 1024)
	for i := range uniform {
		uniform[i] = complex(1.0/32, 0)
	}
	regular := m.VSize(m.VectorFromAmplitudes(uniform))
	if regular != 10 {
		t.Fatalf("uniform state size = %d, want 10", regular)
	}
	// A random state needs close to 2^n nodes.
	rng := rand.New(rand.NewSource(23))
	irregular := m.VSize(m.VectorFromAmplitudes(randAmps(rng, 10)))
	if irregular < 500 {
		t.Fatalf("random state size = %d, expected near-maximal", irregular)
	}
}

func TestInnerProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := New(5)
	a := randAmps(rng, 5)
	b := randAmps(rng, 5)
	ea := m.VectorFromAmplitudes(a)
	eb := m.VectorFromAmplitudes(b)
	var want complex128
	for i := range a {
		want += cmplx.Conj(a[i]) * b[i]
	}
	if got := m.InnerProduct(ea, eb, 5); !approx(got, want) {
		t.Fatalf("inner product %v, want %v", got, want)
	}
	if got := m.InnerProduct(ea, ea, 5); !approx(got, 1) {
		t.Fatalf("<a|a> = %v, want 1", got)
	}
}

func TestConjTransposeMatchesDense(t *testing.T) {
	m := New(3)
	e := m.ControlledGate(3, matS, 1, []Control{{Qubit: 2}})
	d := m.ToDense(e, 3)
	dt := m.ToDense(m.ConjTranspose(e), 3)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if !approx(dt[r][c], cmplx.Conj(d[c][r])) {
				t.Fatalf("dagger entry (%d,%d): %v vs %v", r, c, dt[r][c], cmplx.Conj(d[c][r]))
			}
		}
	}
}

func TestConjTransposeInvolution(t *testing.T) {
	m := New(4)
	e := m.SingleGate(4, matT, 2)
	dd := m.ConjTranspose(m.ConjTranspose(e))
	if dd.N != e.N || !approx(dd.W, e.W) {
		t.Fatal("dagger twice is not the identity operation")
	}
}

func TestUnitaryDaggerIsInverse(t *testing.T) {
	m := New(3)
	u := m.ControlledGate(3, matH, 0, []Control{{Qubit: 1}})
	prod := m.MulMM(m.ConjTranspose(u), u)
	id := m.Identity(3)
	if prod.N != id.N || !approx(prod.W, id.W) {
		t.Fatal("U†·U is not the identity")
	}
}

func TestTrace(t *testing.T) {
	m := New(4)
	if tr := m.Trace(m.Identity(4), 4); !approx(tr, 16) {
		t.Fatalf("tr(I_16) = %v", tr)
	}
	// tr(Z ⊗ I ⊗ I ⊗ I) = 0.
	if tr := m.Trace(m.SingleGate(4, matZ, 3), 4); !approx(tr, 0) {
		t.Fatalf("tr(Z x I..) = %v", tr)
	}
	// tr(S on one qubit of 2) = (1 + i) * 2.
	if tr := m.Trace(m.SingleGate(2, matS, 0), 2); !approx(tr, complex(2, 2)) {
		t.Fatalf("tr(S x I) = %v", tr)
	}
	if tr := m.Trace(m.MZeroEdge(), 4); tr != 0 {
		t.Fatalf("tr(0) = %v", tr)
	}
}

func TestTraceMatchesDense(t *testing.T) {
	m := New(3)
	e := m.ControlledGate(3, matT, 2, []Control{{Qubit: 0}})
	d := m.ToDense(e, 3)
	var want complex128
	for i := range d {
		want += d[i][i]
	}
	if got := m.Trace(e, 3); !approx(got, want) {
		t.Fatalf("trace %v, dense %v", got, want)
	}
}

func TestGCPreservesRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := New(6)
	keep := m.VectorFromAmplitudes(randAmps(rng, 6))
	for i := 0; i < 10; i++ {
		m.VectorFromAmplitudes(randAmps(rng, 6)) // garbage
	}
	before := m.NodeCount()
	wantArr := m.ToArray(keep, 6)
	removed := m.Collect(Roots{V: []VEdge{keep}})
	if removed == 0 {
		t.Fatal("GC removed nothing despite garbage")
	}
	if m.NodeCount() >= before {
		t.Fatal("node count did not shrink")
	}
	got := m.ToArray(keep, 6)
	for i := range wantArr {
		if !approx(got[i], wantArr[i]) {
			t.Fatalf("GC corrupted kept vector at %d", i)
		}
	}
	// Rebuild the same vector: must re-canonicalize onto the kept nodes.
	again := m.VectorFromAmplitudes(got)
	if again.N != keep.N {
		t.Fatal("rebuild after GC did not hash-cons onto surviving nodes")
	}
}

func TestCollectIfNeededThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m := New(6)
	m.SetGCThreshold(1 << 30)
	m.VectorFromAmplitudes(randAmps(rng, 6))
	if removed := m.CollectIfNeeded(Roots{}); removed != 0 {
		t.Fatal("collection ran below threshold")
	}
	m.SetGCThreshold(1)
	if removed := m.CollectIfNeeded(Roots{}); removed == 0 {
		t.Fatal("collection did not run above threshold")
	}
}

func TestUnitaryPreservesNormProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		m := New(n)
		v := m.VectorFromAmplitudes(randAmps(rng, n))
		// Apply a random sequence of unitaries.
		for g := 0; g < 8; g++ {
			var e MEdge
			switch rng.Intn(4) {
			case 0:
				e = m.SingleGate(n, matH, rng.Intn(n))
			case 1:
				e = m.SingleGate(n, matT, rng.Intn(n))
			case 2:
				e = m.SingleGate(n, matX, rng.Intn(n))
			default:
				tq := rng.Intn(n)
				cq := rng.Intn(n)
				if cq == tq {
					cq = (cq + 1) % n
				}
				if n == 1 {
					e = m.SingleGate(n, matX, 0)
				} else {
					e = m.ControlledGate(n, matX, tq, []Control{{Qubit: cq}})
				}
			}
			v = m.MulMV(e, v)
		}
		if norm := m.Norm(v); math.Abs(norm-1) > 1e-7 {
			t.Fatalf("trial %d: norm drifted to %v", trial, norm)
		}
	}
}

func TestComputeTableEffective(t *testing.T) {
	m := New(8)
	v := m.ZeroState(8)
	for q := 0; q < 8; q++ {
		v = m.MulMV(m.SingleGate(8, matH, q), v)
	}
	// Repeat the same work: compute tables should hit.
	v2 := m.ZeroState(8)
	for q := 0; q < 8; q++ {
		v2 = m.MulMV(m.SingleGate(8, matH, q), v2)
	}
	if v2.N != v.N {
		t.Fatal("repeated computation not canonical")
	}
	_, hits := m.ComputeTableStats()
	if hits == 0 {
		t.Fatal("compute tables never hit")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	m := New(3)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad target", func() { m.SingleGate(3, matX, 5) })
	mustPanic("control==target", func() { m.ControlledGate(3, matX, 1, []Control{{Qubit: 1}}) })
	mustPanic("bad control", func() { m.ControlledGate(3, matX, 1, []Control{{Qubit: 9}}) })
	mustPanic("bad amp length", func() { m.VectorFromAmplitudes(make([]complex128, 3)) })
	mustPanic("dup qubits", func() {
		m.MultiQubitGate(3, [][]complex128{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}, []int{1, 1})
	})
	mustPanic("bad basis index", func() { m.BasisState(2, 7) })
}

func BenchmarkMulMVRegular(b *testing.B) {
	m := New(16)
	v := m.ZeroState(16)
	for q := 0; q < 16; q++ {
		v = m.MulMV(m.SingleGate(16, matH, q), v)
	}
	g := m.SingleGate(16, matH, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulMV(g, v)
	}
}

func BenchmarkVectorFromAmplitudes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	amps := randAmps(rng, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(12)
		m.VectorFromAmplitudes(amps)
	}
}
