// Package dd implements the quantum multiple-valued decision diagram (QMDD)
// kernel used throughout the simulator: hash-consed vector and matrix
// decision diagrams with canonical normalization, memoized arithmetic
// (addition, matrix-vector and matrix-matrix multiplication), gate-matrix
// construction, amplitude extraction, size and MAC-operation accounting, and
// mark-and-sweep garbage collection.
//
// A vector DD represents a 2^n state vector; a matrix DD represents a
// 2^n x 2^n operator. Nodes at level l decide qubit l (level n-1, the most
// significant qubit, sits at the top; the shared terminal node has level
// TerminalLevel). The value of an entry is the product of the edge weights
// along the corresponding root-to-terminal path, exactly as in Figure 2 of
// the FlatDD paper.
package dd

// TerminalLevel is the level of the shared terminal node.
const TerminalLevel = -1

// VNode is a vector decision-diagram node. E[0] is the sub-vector where the
// node's qubit is 0 ("upper half"), E[1] where it is 1 ("lower half").
// Nodes are immutable after construction and unique: two structurally equal
// nodes are pointer equal.
type VNode struct {
	E     [2]VEdge
	Level int8

	// gc bookkeeping, owned by the Manager.
	marked bool
}

// MNode is a matrix decision-diagram node. Children are stored in row-major
// order: E[0]=e00 (upper-left), E[1]=e01 (upper-right), E[2]=e10
// (lower-left), E[3]=e11 (lower-right), matching the paper's M_r.n.e[i][j]
// with index 2i+j.
type MNode struct {
	E     [4]MEdge
	Level int8

	marked bool
}

// VEdge is a weighted edge to a vector node. A weight of 0 with the terminal
// node as target is the canonical zero edge.
type VEdge struct {
	W complex128
	N *VNode
}

// MEdge is a weighted edge to a matrix node.
type MEdge struct {
	W complex128
	N *MNode
}

// IsZero reports whether the edge is the zero edge (or numerically dead).
func (e VEdge) IsZero() bool { return e.W == 0 }

// IsTerminal reports whether the edge points at the terminal node.
func (e VEdge) IsTerminal() bool { return e.N.Level == TerminalLevel }

// IsZero reports whether the edge is the zero edge.
func (e MEdge) IsZero() bool { return e.W == 0 }

// IsTerminal reports whether the edge points at the terminal node.
func (e MEdge) IsTerminal() bool { return e.N.Level == TerminalLevel }

// Child returns the (i,j) child edge of a matrix node, i the row bit and j
// the column bit of the node's qubit.
func (n *MNode) Child(i, j int) MEdge { return n.E[2*i+j] }
