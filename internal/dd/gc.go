package dd

import "time"

// Garbage collection. DD packages conventionally reference-count nodes; we
// instead run a mark-and-sweep over the unique tables from a set of live
// roots. Compute tables hold raw node pointers, so they are cleared on every
// collection — a stale entry whose node was swept could otherwise alias a
// newly allocated node.
//
// Concurrency: collection requires quiescence. Parallel construction
// batches bracket themselves with BeginConcurrent/EndConcurrent; Collect
// holds gcMu for the whole collection (so no new batch can open mid-sweep)
// and defers itself when a batch is still in flight, leaving a pending flag
// that CollectIfNeeded honors at the next quiescent point.

// Roots is the set of live DD roots a caller wants preserved across a
// collection.
type Roots struct {
	V []VEdge
	M []MEdge
}

// BeginConcurrent marks the start of a parallel construction batch. It
// blocks while a collection is running (stop-the-world), so a batch never
// observes a half-swept table. Every BeginConcurrent must be paired with
// exactly one EndConcurrent after the batch has fully joined.
func (m *Manager) BeginConcurrent() {
	m.gcMu.Lock()
	m.workers.Add(1)
	m.gcMu.Unlock()
}

// EndConcurrent marks the end of a parallel construction batch.
func (m *Manager) EndConcurrent() {
	if m.workers.Add(-1) < 0 {
		panic("dd: EndConcurrent without matching BeginConcurrent")
	}
}

// Collect sweeps every node not reachable from roots out of the unique
// tables and clears the compute tables. It returns the number of nodes
// removed. If a parallel batch is in flight the collection is deferred —
// Collect returns 0, records the deferral, and CollectIfNeeded retries once
// the batch has joined.
func (m *Manager) Collect(roots Roots) int {
	m.gcMu.Lock()
	defer m.gcMu.Unlock()
	if m.workers.Load() > 0 {
		m.gcPending.Store(true)
		m.met.gcDeferred.Inc()
		return 0
	}
	m.gcPending.Store(false)
	start := time.Now()
	for _, e := range roots.V {
		if !e.IsZero() {
			markV(e.N)
		}
	}
	for _, e := range roots.M {
		if !e.IsZero() {
			markM(e.N)
		}
	}
	removed := m.vUnique.sweep(func(n *VNode) bool {
		if n.marked {
			n.marked = false
			return true
		}
		return false
	})
	removed += m.mUnique.sweep(func(n *MNode) bool {
		if n.marked {
			n.marked = false
			return true
		}
		return false
	})
	m.nodeCount.Add(int64(-removed))
	m.addCT.clear()
	m.maddCT.clear()
	m.mvCT.clear()
	m.mmCT.clear()
	m.met.gcRuns.Inc()
	m.met.gcReclaimed.Add(int64(removed))
	m.met.gcPauseNs.Add(time.Since(start).Nanoseconds())
	return removed
}

// SetGCThreshold sets the node count above which CollectIfNeeded runs a
// collection. Non-positive values disable automatic collection.
func (m *Manager) SetGCThreshold(n int) { m.gcThreshold = n }

// CollectIfNeeded runs Collect(roots) when the node count exceeds the GC
// threshold, or when a previous collection was deferred by an in-flight
// batch. It returns the number of nodes removed (0 when no collection ran).
func (m *Manager) CollectIfNeeded(roots Roots) int {
	if m.gcPending.Load() {
		return m.Collect(roots)
	}
	if m.gcThreshold <= 0 || m.NodeCount() <= m.gcThreshold {
		return 0
	}
	return m.Collect(roots)
}

func markV(n *VNode) {
	if n.Level == TerminalLevel || n.marked {
		return
	}
	n.marked = true
	for _, c := range n.E {
		if !c.IsZero() {
			markV(c.N)
		}
	}
}

func markM(n *MNode) {
	if n.Level == TerminalLevel || n.marked {
		return
	}
	n.marked = true
	for _, c := range n.E {
		if !c.IsZero() {
			markM(c.N)
		}
	}
}
