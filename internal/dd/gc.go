package dd

import "time"

// Garbage collection. DD packages conventionally reference-count nodes; we
// instead run a mark-and-sweep over the unique tables from a set of live
// roots. Compute tables hold raw node pointers, so they are cleared on every
// collection — a stale entry whose node was swept could otherwise alias a
// newly allocated node.

// Roots is the set of live DD roots a caller wants preserved across a
// collection.
type Roots struct {
	V []VEdge
	M []MEdge
}

// Collect sweeps every node not reachable from roots out of the unique
// tables and clears the compute tables. It returns the number of nodes
// removed.
func (m *Manager) Collect(roots Roots) int {
	start := time.Now()
	for _, e := range roots.V {
		if !e.IsZero() {
			markV(e.N)
		}
	}
	for _, e := range roots.M {
		if !e.IsZero() {
			markM(e.N)
		}
	}
	removed := 0
	for k, n := range m.vUnique {
		if !n.marked {
			delete(m.vUnique, k)
			removed++
		} else {
			n.marked = false
		}
	}
	for k, n := range m.mUnique {
		if !n.marked {
			delete(m.mUnique, k)
			removed++
		} else {
			n.marked = false
		}
	}
	m.addCT.clear()
	m.maddCT.clear()
	m.mvCT.clear()
	m.mmCT.clear()
	m.met.gcRuns.Inc()
	m.met.gcReclaimed.Add(int64(removed))
	m.met.gcPauseNs.Add(time.Since(start).Nanoseconds())
	return removed
}

// SetGCThreshold sets the node count above which CollectIfNeeded runs a
// collection. Non-positive values disable automatic collection.
func (m *Manager) SetGCThreshold(n int) { m.gcThreshold = n }

// CollectIfNeeded runs Collect(roots) when the node count exceeds the GC
// threshold. It returns the number of nodes removed (0 when no collection
// ran).
func (m *Manager) CollectIfNeeded(roots Roots) int {
	if m.gcThreshold <= 0 || m.NodeCount() <= m.gcThreshold {
		return 0
	}
	return m.Collect(roots)
}

func markV(n *VNode) {
	if n.Level == TerminalLevel || n.marked {
		return
	}
	n.marked = true
	for _, c := range n.E {
		if !c.IsZero() {
			markV(c.N)
		}
	}
}

func markM(n *MNode) {
	if n.Level == TerminalLevel || n.marked {
		return
	}
	n.marked = true
	for _, c := range n.E {
		if !c.IsZero() {
			markM(c.N)
		}
	}
}
