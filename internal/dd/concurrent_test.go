package dd

import (
	"math/rand"
	"sync"
	"testing"
)

// The concurrency battery. These tests are what `make dd-race` runs under
// the race detector: they hammer the sharded unique tables, the striped
// compute tables, the GC barrier, and MulMVParallel from many goroutines
// and assert the two properties the parallel DD phase rests on —
// canonicity (racing constructions of equal nodes agree on one pointer)
// and determinism (results are bit-identical to the sequential path).

// TestUniqueTableConcurrentSharedKeys has many goroutines build the same
// state on one manager. Hash consing must hand every one of them the same
// canonical node pointer, no matter how the insertions interleave.
func TestUniqueTableConcurrentSharedKeys(t *testing.T) {
	const workers = 16
	rng := rand.New(rand.NewSource(101))
	amps := randAmps(rng, 6)

	m := New(6)
	roots := make([]VEdge, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			roots[w] = m.VectorFromAmplitudes(amps)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if roots[w].N != roots[0].N || roots[w].W != roots[0].W {
			t.Fatalf("worker %d got a different canonical root: %p/%v vs %p/%v",
				w, roots[w].N, roots[w].W, roots[0].N, roots[0].W)
		}
	}
}

// TestUniqueTableConcurrentDisjointKeys has goroutines build disjoint
// basis states concurrently; every state must come out intact (no lost or
// cross-wired insertions between shards).
func TestUniqueTableConcurrentDisjointKeys(t *testing.T) {
	const n = 6
	m := New(n)
	roots := make([]VEdge, 1<<n)
	var wg sync.WaitGroup
	for idx := range roots {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			roots[idx] = m.BasisState(n, uint64(idx))
		}(idx)
	}
	wg.Wait()
	for idx, e := range roots {
		for j := uint64(0); j < 1<<n; j++ {
			want := complex128(0)
			if j == uint64(idx) {
				want = 1
			}
			if got := m.Amplitude(e, n, j); got != want {
				t.Fatalf("basis %d amplitude %d = %v, want %v", idx, j, got, want)
			}
		}
	}
}

// TestComputeTableConcurrentMulMV runs the same matrix-vector multiply
// from many goroutines on one manager. The compute tables may race
// (lossy reads and writes), but cached values are pure functions of their
// keys, so every goroutine must get the canonical result — pointer-equal
// roots, bit-equal weights — and it must match a fresh sequential manager.
func TestComputeTableConcurrentMulMV(t *testing.T) {
	const workers = 16
	rng := rand.New(rand.NewSource(103))
	amps := randAmps(rng, 6)

	// Sequential reference on an independent manager.
	ref := New(6)
	refGate := ref.SingleGate(6, matH, 3)
	refOut := ref.ToArray(ref.MulMV(refGate, ref.VectorFromAmplitudes(amps)), 6)

	m := New(6)
	gate := m.SingleGate(6, matH, 3)
	v := m.VectorFromAmplitudes(amps)
	outs := make([]VEdge, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w] = m.MulMV(gate, v)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if outs[w].N != outs[0].N || outs[w].W != outs[0].W {
			t.Fatalf("worker %d result differs: %p/%v vs %p/%v",
				w, outs[w].N, outs[w].W, outs[0].N, outs[0].W)
		}
	}
	got := m.ToArray(outs[0], 6)
	for i := range refOut {
		if got[i] != refOut[i] {
			t.Fatalf("amplitude %d: concurrent %v != sequential %v", i, got[i], refOut[i])
		}
	}
}

// TestManagerConcurrentMixedOps drives a mix of construction, arithmetic,
// and multiplication from many goroutines on one manager — pure race-
// detector fodder for the full concurrent surface (unique tables, all
// four compute tables, the cnum table, metrics counters).
func TestManagerConcurrentMixedOps(t *testing.T) {
	const workers = 8
	m := New(5)
	gates := []MEdge{
		m.SingleGate(5, matH, 0),
		m.SingleGate(5, matT, 2),
		m.ControlledGate(5, matX, 4, []Control{{Qubit: 1}}),
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			v := m.VectorFromAmplitudes(randAmps(rng, 5))
			for i := 0; i < 20; i++ {
				v = m.MulMV(gates[i%len(gates)], v)
				u := m.VectorFromAmplitudes(randAmps(rng, 5))
				v = m.Add(v, u)
				_ = m.MulMM(gates[i%len(gates)], gates[(i+1)%len(gates)])
			}
			if m.Norm(v) == 0 {
				t.Error("state collapsed to zero")
			}
		}(w)
	}
	wg.Wait()
}

// goRunner executes a task batch on its own goroutines — a stand-in for
// sched.Pool.Run that keeps this package free of a sched dependency.
func goRunner(tasks []func()) {
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(task func()) {
			defer wg.Done()
			task()
		}(task)
	}
	wg.Wait()
}

// TestMulMVParallelMatchesSerial asserts the tentpole guarantee: the
// frontier-split parallel multiply is bit-identical to the serial one,
// both within a manager (pointer-equal) and across managers (bit-equal
// amplitudes), for several split depths.
func TestMulMVParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for n := 3; n <= 7; n++ {
		amps := randAmps(rng, n)

		ref := New(n)
		refGate := ref.ControlledGate(n, matH, n-1, []Control{{Qubit: 0}})
		refOut := ref.ToArray(ref.MulMV(refGate, ref.VectorFromAmplitudes(amps)), n)

		for split := 1; split <= 3; split++ {
			m := New(n)
			gate := m.ControlledGate(n, matH, n-1, []Control{{Qubit: 0}})
			v := m.VectorFromAmplitudes(amps)
			par := m.MulMVParallel(gate, v, goRunner, split)
			ser := m.MulMV(gate, v)
			if par.N != ser.N || par.W != ser.W {
				t.Fatalf("n=%d split=%d: parallel root %p/%v != serial %p/%v",
					n, split, par.N, par.W, ser.N, ser.W)
			}
			got := m.ToArray(par, n)
			for i := range refOut {
				if got[i] != refOut[i] {
					t.Fatalf("n=%d split=%d amplitude %d: parallel %v != fresh serial %v",
						n, split, i, got[i], refOut[i])
				}
			}
		}
	}
}

// TestGCDeferredDuringConcurrentBatch checks the GC barrier's deferral
// path: a collection requested while a parallel batch is in flight must
// not sweep (it would pull nodes out from under the workers); it returns
// 0, flags the deferral, and CollectIfNeeded picks it up once the batch
// has joined.
func TestGCDeferredDuringConcurrentBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	m := New(6)
	gate := m.SingleGate(6, matH, 2)
	v := m.VectorFromAmplitudes(randAmps(rng, 6))

	collected := -1
	runner := func(tasks []func()) {
		// Workers are in flight (BeginConcurrent has run): Collect must
		// defer, not sweep.
		collected = m.Collect(Roots{V: []VEdge{v}, M: []MEdge{gate}})
		goRunner(tasks)
	}
	out := m.MulMVParallel(gate, v, runner, 2)
	if collected != 0 {
		t.Fatalf("Collect during an in-flight batch swept %d nodes, want deferred (0)", collected)
	}

	// The deferral is pending; the next quiescent CollectIfNeeded must run
	// a real collection regardless of the node-count threshold, and the
	// result must survive it intact.
	before := m.ToArray(out, 6)
	if n := m.CollectIfNeeded(Roots{V: []VEdge{out}}); n <= 0 {
		t.Fatalf("pending deferred collection did not run (removed %d)", n)
	}
	after := m.ToArray(out, 6)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("amplitude %d changed across deferred GC: %v -> %v", i, before[i], after[i])
		}
	}
}

// TestGCConcurrentBatchesWithCollections interleaves parallel multiply
// batches with collections on the caller thread — the mid-circuit shape
// ddsim produces — and verifies no batch ever observes a half-swept table
// and no edge dangles: every post-GC state must still evaluate correctly
// against an independent GC-free manager.
func TestGCConcurrentBatchesWithCollections(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	amps := randAmps(rng, 6)

	ref := New(6)
	refState := ref.VectorFromAmplitudes(amps)

	m := New(6)
	state := m.VectorFromAmplitudes(amps)
	for i := 0; i < 12; i++ {
		gate := m.SingleGate(6, matH, i%6)
		state = m.MulMVParallel(gate, state, goRunner, 2)
		// Collect every iteration: the compute tables are wiped and every
		// node outside the live state is swept, so any stale pointer in a
		// table or edge would surface on the next batch.
		m.Collect(Roots{V: []VEdge{state}})

		refGate := ref.SingleGate(6, matH, i%6)
		refState = ref.MulMV(refGate, refState)
	}
	got := m.ToArray(state, 6)
	want := ref.ToArray(refState, 6)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("amplitude %d: GC-interleaved %v != reference %v", i, got[i], want[i])
		}
	}
}
