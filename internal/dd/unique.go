package dd

import (
	"hash/maphash"
	"sync"
)

// uniqueShards is the number of independently locked buckets each unique
// table is split across. 64 keeps contention negligible for any realistic
// worker count while the per-shard maps stay dense enough to hash well.
const uniqueShards = 64

type uShard[K comparable, N any] struct {
	mu sync.Mutex
	m  map[K]N
}

// uniqueTable is a sharded-lock hash-consing table. Lookup-or-insert happens
// under a single shard lock, so two goroutines racing to create the same
// node always agree on one canonical pointer: the loser of the race observes
// the winner's node and discards its own candidate.
type uniqueTable[K comparable, N any] struct {
	seed   maphash.Seed
	shards [uniqueShards]uShard[K, N]
}

func (t *uniqueTable[K, N]) init() {
	t.seed = maphash.MakeSeed()
	for i := range t.shards {
		t.shards[i].m = make(map[K]N, 64)
	}
}

// lookupOrInsert returns the canonical node for k, calling mk to build one
// only when k is absent. The bool reports whether this call inserted. mk
// runs under the shard lock; it must be cheap and must not touch the table.
func (t *uniqueTable[K, N]) lookupOrInsert(k K, mk func() N) (N, bool) {
	sh := &t.shards[maphash.Comparable(t.seed, k)%uniqueShards]
	sh.mu.Lock()
	n, ok := sh.m[k]
	if !ok {
		n = mk()
		sh.m[k] = n
	}
	sh.mu.Unlock()
	return n, !ok
}

// sweep removes every entry for which keep returns false and reports how
// many were removed. keep may mutate the node (the GC uses it to clear mark
// bits on survivors). Callers must guarantee no concurrent construction is
// in flight (see Manager.Collect's barrier).
func (t *uniqueTable[K, N]) sweep(keep func(N) bool) int {
	removed := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, n := range sh.m {
			if !keep(n) {
				delete(sh.m, k)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}
