package dd

import (
	"fmt"
	"sort"
)

// State approximation following Zulehner, Hillmich, Markov, Wille:
// "Approximation of quantum states using decision diagrams" (ASP-DAC'20),
// reference [97] of the FlatDD paper. Edges whose total downstream
// probability contribution is small are removed from the state DD, which
// shrinks the diagram at a controlled fidelity loss: removing edges of
// total mass b and renormalizing yields a state with fidelity
// |<orig|approx>|^2 = 1 - b.

// edgeRef identifies one outgoing edge of a vector node.
type edgeRef struct {
	n   *VNode
	idx int
}

// Approximate prunes low-contribution edges of the n-qubit state e until
// the removed probability mass would exceed budget (0 <= budget < 1), then
// renormalizes. It returns the approximated state and the fidelity
// |<e|approx>|^2 = 1 - removed mass. A budget of 0 returns e unchanged.
func (m *Manager) Approximate(e VEdge, n int, budget float64) (VEdge, float64) {
	if budget < 0 || budget >= 1 {
		panic(fmt.Sprintf("dd: approximation budget %v outside [0,1)", budget))
	}
	if e.IsZero() || budget == 0 {
		return e, 1
	}

	// Downward pass: the squared weight-product mass flowing into each
	// node. Sub-trees are not unit vectors under division-based node
	// normalization, so an edge's total probability contribution is
	// mass(parent) * |w|^2 * S(child), with S the squared sub-tree norm
	// from a memoized upward pass.
	norms := make(map[*VNode]float64)
	mass := map[*VNode]float64{e.N: abs2(e.W)}
	order := m.topoOrder(e.N)
	type candidate struct {
		ref  edgeRef
		mass float64
	}
	var cands []candidate
	for _, nd := range order {
		nm := mass[nd]
		for i := 0; i < 2; i++ {
			c := nd.E[i]
			if c.IsZero() {
				continue
			}
			em := nm * abs2(c.W)
			if c.N.Level != TerminalLevel {
				mass[c.N] += em
			}
			cands = append(cands, candidate{edgeRef{nd, i}, em * m.subtreeNorm2(c.N, norms)})
		}
	}

	// Greedy: remove the smallest contributions first. Contributions of
	// distinct edges can overlap only through shared parents higher up;
	// since we remove whole edges the removed masses are disjoint path
	// sets as long as we do not remove both edges under the same removed
	// ancestor — double counting only makes the estimate conservative.
	sort.Slice(cands, func(i, j int) bool { return cands[i].mass < cands[j].mass })
	removed := make(map[edgeRef]bool)
	removedMass := 0.0
	for _, c := range cands {
		if removedMass+c.mass > budget {
			break
		}
		removed[c.ref] = true
		removedMass += c.mass
	}
	if len(removed) == 0 {
		return e, 1
	}

	// Rebuild the DD without the removed edges.
	memo := make(map[*VNode]VEdge)
	var rebuild func(nd *VNode) VEdge
	rebuild = func(nd *VNode) VEdge {
		if v, ok := memo[nd]; ok {
			return v
		}
		var ch [2]VEdge
		for i := 0; i < 2; i++ {
			c := nd.E[i]
			switch {
			case c.IsZero(), removed[edgeRef{nd, i}]:
				ch[i] = m.VZeroEdge()
			case c.N.Level == TerminalLevel:
				ch[i] = c
			default:
				ch[i] = m.scaleV(rebuild(c.N), c.W)
			}
		}
		r := m.MakeVNode(int(nd.Level), ch[0], ch[1])
		memo[nd] = r
		return r
	}
	res := m.scaleV(rebuild(e.N), e.W)
	if res.IsZero() {
		// Degenerate: everything pruned (possible only with a budget close
		// to 1); return the original state.
		return e, 1
	}
	// Renormalize to unit norm, keeping the root phase.
	origNorm := m.Norm(e)
	norm := m.Norm(res)
	res = m.scaleV(res, complex(1/norm, 0))
	return res, norm * norm / (origNorm * origNorm)
}

// topoOrder returns the unique nodes reachable from root in descending
// level order (parents before children), so one pass can accumulate
// downward masses.
func (m *Manager) topoOrder(root *VNode) []*VNode {
	seen := make(map[*VNode]bool)
	var out []*VNode
	var walk func(n *VNode)
	walk = func(n *VNode) {
		if n.Level == TerminalLevel || seen[n] {
			return
		}
		seen[n] = true
		out = append(out, n)
		for _, c := range n.E {
			if !c.IsZero() {
				walk(c.N)
			}
		}
	}
	walk(root)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Level > out[j].Level })
	return out
}

func abs2(c complex128) float64 {
	return real(c)*real(c) + imag(c)*imag(c)
}
