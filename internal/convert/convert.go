// Package convert implements the conversion of a state vector from
// decision-diagram to flat-array representation (Section 3.1.2 of the
// FlatDD paper).
//
// Sequential is the DDSIM-style baseline: a depth-first traversal writing
// one amplitude per nonzero path. Parallel adds the paper's two
// optimizations:
//
//   - load balancing (Figure 4a): when one outgoing edge of a node is
//     zero, the whole sub-range collapses onto the nonzero edge, so no
//     worker idles on a zero sub-tree — with region-based chunking this
//     falls out naturally, because chunks are cut from nonzero regions
//     only;
//   - scalar multiplication (Figure 4b): when a node's two children are
//     the same node, the second half of the output region is the first
//     half scaled by the ratio of the edge weights — the first half is
//     converted once and the second filled with a SIMD-style scalar
//     multiply, parallelized across the available threads.
//
// The parallel walk is planned, not spawned: planConv cuts the DD into
// region-sized leaf tasks plus an ordered list of scale operations, the
// tasks run as one batch on an internal/sched work-stealing pool, and
// the scales follow innermost-first (an outer scale reads regions an
// inner scale fills). ParallelIntoPool is the primary entry point; the
// Parallel/ParallelInto/ParallelIntoObs wrappers keep the old
// signatures and run on a transient pool.
package convert

import (
	"fmt"
	"sync"
	"time"

	"flatdd/internal/dd"
	"flatdd/internal/obs"
	"flatdd/internal/sched"
)

// minLeaf is the smallest output region worth a separate task; below
// it, scheduling overhead beats the parallelism.
const minLeaf = 128

// Metrics holds the conversion counters (see DESIGN.md, "Observability").
// A nil *Metrics disables instrumentation at the cost of one pointer check
// per task creation.
type Metrics struct {
	Runs         *obs.Counter    // conversions performed
	WallNs       *obs.Counter    // total wall time across conversions
	WorkerBusyNs *obs.Counter    // summed busy time of conversion tasks
	Tasks        *obs.Counter    // conversion tasks scheduled
	Efficiency   *obs.FloatGauge // busy/(threads*wall) of the last conversion
}

// NewMetrics returns the conversion handles of a registry (nil for a nil
// registry, keeping the disabled path allocation-free).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Runs:         r.Counter("convert.runs"),
		WallNs:       r.Counter("convert.wall_ns"),
		WorkerBusyNs: r.Counter("convert.worker_busy_ns"),
		Tasks:        r.Counter("convert.tasks"),
		Efficiency:   r.FloatGauge("convert.efficiency"),
	}
}

// Sequential converts a state DD to a flat array with the sequential
// depth-first algorithm (the conversion baseline of Figure 13).
func Sequential(m *dd.Manager, e dd.VEdge, n int) []complex128 {
	return m.ToArray(e, n)
}

// Parallel converts a state DD to a freshly allocated flat array using
// `threads` workers.
func Parallel(e dd.VEdge, n, threads int) []complex128 {
	out := make([]complex128, uint64(1)<<uint(n))
	ParallelInto(e, n, threads, out)
	return out
}

// ParallelInto converts a state DD into out, which must have length 2^n
// and be zeroed (freshly allocated or cleared) — entries under zero edges
// are skipped, exactly like the sequential algorithm. A wrong output
// length is a caller error and returned as one.
func ParallelInto(e dd.VEdge, n, threads int, out []complex128) error {
	return ParallelIntoObs(e, n, threads, out, nil)
}

// ParallelIntoObs is ParallelInto with optional instrumentation (see
// ParallelIntoPool). It runs on a transient pool; callers that convert
// as part of a longer simulation should hold a pool and use
// ParallelIntoPool instead.
func ParallelIntoObs(e dd.VEdge, n, threads int, out []complex128, m *Metrics) error {
	if threads < 1 {
		threads = 1
	}
	p := sched.New(threads)
	defer p.Close()
	return ParallelIntoPool(e, n, p, out, m)
}

// ParallelIntoPool converts a state DD into out on an existing
// scheduler pool. out must have length 2^n and be zeroed — a wrong
// length is a caller error and returned as one. When m is non-nil it
// records wall time, task count and busy time, and a parallelism-
// efficiency gauge (busy/(threads·wall); 1.0 means every worker was
// busy for the whole conversion).
func ParallelIntoPool(e dd.VEdge, n int, p *sched.Pool, out []complex128, m *Metrics) error {
	_, err := ParallelIntoPoolCancel(e, n, p, out, m, nil)
	return err
}

// ParallelIntoPoolCancel is ParallelIntoPool with cooperative
// cancellation: when cancel is non-nil it is polled once per leaf task
// and once per scale operation, and a firing probe makes the remaining
// work return immediately (each leaf covers at most ~len(out)/(8·threads)
// amplitudes, so the abort latency is a small fraction of one
// conversion). It reports whether the conversion ran to completion;
// after a false return, out holds a partial, unusable state and must be
// discarded. A nil cancel keeps the leaf tasks probe-free.
func ParallelIntoPoolCancel(e dd.VEdge, n int, p *sched.Pool, out []complex128, m *Metrics, cancel func() bool) (bool, error) {
	return ParallelIntoPoolSpan(e, n, p, out, m, cancel, nil)
}

// ParallelIntoPoolSpan is ParallelIntoPoolCancel under a tracing span:
// when span is non-nil the leaf-task batch runs as a "convert.batch"
// child carrying the scheduler's per-batch attribution, and the span
// itself receives the plan shape (task and scale-op counts). A nil span
// is exactly ParallelIntoPoolCancel.
func ParallelIntoPoolSpan(e dd.VEdge, n int, p *sched.Pool, out []complex128, m *Metrics, cancel func() bool, span *obs.Span) (bool, error) {
	return ParallelIntoPoolTracked(e, n, p, out, m, cancel, span, nil)
}

// ParallelIntoPoolTracked is ParallelIntoPoolSpan plus resource
// attribution: when led is non-nil the scheduler credits each batch's
// worker busy-ns to the ledger's open phase, so the conversion's CPU
// cost lands on the convert phase of the job that ran it. A nil led is
// exactly ParallelIntoPoolSpan.
func ParallelIntoPoolTracked(e dd.VEdge, n int, p *sched.Pool, out []complex128, m *Metrics, cancel func() bool, span *obs.Span, led *obs.ResourceLedger) (bool, error) {
	if uint64(len(out)) != uint64(1)<<uint(n) {
		return false, fmt.Errorf("convert: output length %d, want %d", len(out), uint64(1)<<uint(n))
	}
	if e.IsZero() {
		return true, nil
	}
	threads := p.Threads()
	var start time.Time
	var busyBefore int64
	if m != nil {
		start = time.Now()
		busyBefore = m.WorkerBusyNs.Value()
	}
	minChunk := len(out) / (8 * threads)
	if minChunk < minLeaf {
		minChunk = minLeaf
	}
	var tasks []sched.Task
	var scales []scaleOp
	planConv(e.N, e.W, out, minChunk, &tasks, &scales, m)
	if cancel != nil {
		for i, t := range tasks {
			t := t
			tasks[i] = func() {
				if !cancel() {
					t()
				}
			}
		}
	}
	if span != nil {
		span.SetAttr("tasks", len(tasks))
		span.SetAttr("scales", len(scales))
	}
	p.RunTracked(span, "convert.batch", led, tasks)
	completed := cancel == nil || !cancel()
	// Innermost-first: a scale discovered later lies inside the source
	// region of one discovered earlier (DFS order), never the other way
	// round, so the reverse order guarantees every source is complete
	// before it is read.
	for i := len(scales) - 1; i >= 0 && completed; i-- {
		runScale(p, scales[i], m, led)
		if cancel != nil && cancel() {
			completed = false
		}
	}
	if m != nil {
		wall := time.Since(start).Nanoseconds()
		m.Runs.Inc()
		m.WallNs.Add(wall)
		if wall > 0 {
			busy := m.WorkerBusyNs.Value() - busyBefore
			eff := float64(busy) / (float64(threads) * float64(wall))
			if eff > 1 {
				eff = 1
			}
			m.Efficiency.Set(eff)
		}
	}
	return completed, nil
}

// scaleOp is one deferred Figure 4b shortcut: dst = src * f, recorded
// during planning and executed after the leaf tasks.
type scaleOp struct {
	dst, src []complex128
	f        complex128
}

// planConv cuts the sub-vector of node nd (reached with weight product
// w) into leaf tasks of at most minChunk elements. Zero edges collapse
// the region (load balancing: no task is ever created for a zero
// sub-tree), and the e0.N == e1.N shortcut is recorded as a scaleOp
// instead of descending twice.
func planConv(nd *dd.VNode, w complex128, out []complex128, minChunk int, tasks *[]sched.Task, scales *[]scaleOp, m *Metrics) {
	for {
		if len(out) <= minChunk || nd.Level == dd.TerminalLevel {
			nd, w, out := nd, w, out
			*tasks = append(*tasks, timedTask(m, func() { convSeq(nd, w, out) }))
			return
		}
		half := len(out) / 2
		e0, e1 := nd.E[0], nd.E[1]
		switch {
		case e0.IsZero() && e1.IsZero():
			return
		case e1.IsZero():
			w *= e0.W
			nd = e0.N
			out = out[:half]
		case e0.IsZero():
			w *= e1.W
			nd = e1.N
			out = out[half:]
		case e0.N == e1.N:
			*scales = append(*scales, scaleOp{dst: out[half:], src: out[:half], f: e1.W / e0.W})
			w *= e0.W
			nd = e0.N
			out = out[:half]
		default:
			planConv(e0.N, w*e0.W, out[:half], minChunk, tasks, scales, m)
			w *= e1.W
			nd = e1.N
			out = out[half:]
		}
	}
}

// timedTask wraps a task with busy-time accounting when metrics are on.
func timedTask(m *Metrics, f func()) sched.Task {
	if m == nil {
		return f
	}
	m.Tasks.Inc()
	return func() {
		t0 := time.Now()
		f()
		m.WorkerBusyNs.Add(time.Since(t0).Nanoseconds())
	}
}

// runScale executes one scaleOp, split across the pool when the region
// is large enough to be worth it.
func runScale(p *sched.Pool, s scaleOp, m *Metrics, led *obs.ResourceLedger) {
	n := len(s.dst)
	threads := p.Threads()
	if threads > n {
		threads = n
	}
	if threads <= 1 || n < 1024 {
		t := timedTask(m, func() { scalarMul(s.dst, s.src, s.f) })
		if led != nil {
			t0 := time.Now()
			t()
			led.AddCPU(time.Since(t0).Nanoseconds())
		} else {
			t()
		}
		return
	}
	tasks := make([]sched.Task, 0, threads)
	chunk := n / threads
	for i := 0; i < threads; i++ {
		lo := i * chunk
		hi := lo + chunk
		if i == threads-1 {
			hi = n
		}
		tasks = append(tasks, timedTask(m, func() { scalarMul(s.dst[lo:hi], s.src[lo:hi], s.f) }))
	}
	p.RunTracked(nil, "", led, tasks)
}

// convSeq is the single-threaded conversion of a sub-tree: no goroutines,
// no scheduling, but still applying the scalar-multiplication shortcut.
func convSeq(nd *dd.VNode, w complex128, out []complex128) {
	for {
		if nd.Level == dd.TerminalLevel {
			out[0] = w
			return
		}
		half := len(out) / 2
		e0, e1 := nd.E[0], nd.E[1]
		switch {
		case e0.IsZero() && e1.IsZero():
			return
		case e1.IsZero():
			w *= e0.W
			nd = e0.N
			out = out[:half]
		case e0.IsZero():
			w *= e1.W
			nd = e1.N
			out = out[half:]
		case e0.N == e1.N:
			convSeq(e0.N, w*e0.W, out[:half])
			scalarMul(out[half:], out[:half], e1.W/e0.W)
			return
		default:
			convSeq(e0.N, w*e0.W, out[:half])
			w *= e1.W
			nd = e1.N
			out = out[half:]
		}
	}
}

// ParallelNaiveInto is the ablation variant of ParallelInto: threads are
// divided blindly across both outgoing edges of every node (threads routed
// to a zero edge idle, Figure 4a's problem) and the scalar-multiplication
// shortcut is disabled. It quantifies what the two optimizations buy.
// It intentionally keeps the old spawn-per-split implementation — it is
// the baseline the scheduled version is measured against.
func ParallelNaiveInto(e dd.VEdge, n, threads int, out []complex128) {
	if uint64(len(out)) != uint64(1)<<uint(n) {
		panic(fmt.Sprintf("convert: output length %d, want %d", len(out), uint64(1)<<uint(n)))
	}
	if threads < 1 {
		threads = 1
	}
	if e.IsZero() {
		return
	}
	var wg sync.WaitGroup
	naiveRec(e.N, e.W, out, threads, &wg)
	wg.Wait()
}

func naiveRec(nd *dd.VNode, w complex128, out []complex128, budget int, wg *sync.WaitGroup) {
	if nd.Level == dd.TerminalLevel {
		out[0] = w
		return
	}
	half := len(out) / 2
	e0, e1 := nd.E[0], nd.E[1]
	if budget <= 1 {
		if !e0.IsZero() {
			naiveRec(e0.N, w*e0.W, out[:half], 1, wg)
		}
		if !e1.IsZero() {
			naiveRec(e1.N, w*e1.W, out[half:], 1, wg)
		}
		return
	}
	// Blind split: half the threads to each edge, zero or not.
	b0 := budget / 2
	b1 := budget - b0
	if !e0.IsZero() {
		lo := out[:half]
		e0w := w * e0.W
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sub sync.WaitGroup
			naiveRec(e0.N, e0w, lo, b0, &sub)
			sub.Wait()
		}()
	}
	if !e1.IsZero() {
		naiveRec(e1.N, w*e1.W, out[half:], b1, wg)
	}
}

// scalarMul is the unrolled scaling kernel (the SIMD stand-in).
func scalarMul(dst, src []complex128, f complex128) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = src[i] * f
		dst[i+1] = src[i+1] * f
		dst[i+2] = src[i+2] * f
		dst[i+3] = src[i+3] * f
	}
	for ; i < len(dst); i++ {
		dst[i] = src[i] * f
	}
}
