// Package convert implements the conversion of a state vector from
// decision-diagram to flat-array representation (Section 3.1.2 of the
// FlatDD paper).
//
// Sequential is the DDSIM-style baseline: a depth-first traversal writing
// one amplitude per nonzero path. Parallel adds the paper's two
// optimizations:
//
//   - load balancing (Figure 4a): threads divide across the two outgoing
//     edges of each node, but if one edge is zero all threads follow the
//     nonzero edge, so none idles on a zero sub-tree;
//   - scalar multiplication (Figure 4b): when a node's two children are
//     the same node, the second half of the output region is the first
//     half scaled by the ratio of the edge weights — the first half is
//     converted once and the second filled with a SIMD-style scalar
//     multiply, parallelized across the available threads.
package convert

import (
	"fmt"
	"sync"
	"time"

	"flatdd/internal/dd"
	"flatdd/internal/obs"
)

// Metrics holds the conversion counters (see DESIGN.md, "Observability").
// A nil *Metrics disables instrumentation at the cost of one pointer check
// per goroutine spawn.
type Metrics struct {
	Runs         *obs.Counter    // conversions performed
	WallNs       *obs.Counter    // total wall time across conversions
	WorkerBusyNs *obs.Counter    // summed busy time of spawned workers
	Goroutines   *obs.Counter    // workers spawned
	Efficiency   *obs.FloatGauge // busy/(threads*wall) of the last conversion
}

// NewMetrics returns the conversion handles of a registry (nil for a nil
// registry, keeping the disabled path allocation-free).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Runs:         r.Counter("convert.runs"),
		WallNs:       r.Counter("convert.wall_ns"),
		WorkerBusyNs: r.Counter("convert.worker_busy_ns"),
		Goroutines:   r.Counter("convert.goroutines"),
		Efficiency:   r.FloatGauge("convert.efficiency"),
	}
}

// Sequential converts a state DD to a flat array with the sequential
// depth-first algorithm (the conversion baseline of Figure 13).
func Sequential(m *dd.Manager, e dd.VEdge, n int) []complex128 {
	return m.ToArray(e, n)
}

// Parallel converts a state DD to a freshly allocated flat array using
// `threads` worker goroutines.
func Parallel(e dd.VEdge, n, threads int) []complex128 {
	out := make([]complex128, uint64(1)<<uint(n))
	ParallelInto(e, n, threads, out)
	return out
}

// ParallelInto converts a state DD into out, which must have length 2^n
// and be zeroed (freshly allocated or cleared) — entries under zero edges
// are skipped, exactly like the sequential algorithm.
func ParallelInto(e dd.VEdge, n, threads int, out []complex128) {
	ParallelIntoObs(e, n, threads, out, nil)
}

// ParallelIntoObs is ParallelInto with optional instrumentation: wall time,
// spawned-worker count and busy time, and a parallelism-efficiency gauge
// ((wall + worker busy)/(threads * wall); 1.0 means every thread was busy
// for the whole conversion). A nil m behaves exactly like ParallelInto.
func ParallelIntoObs(e dd.VEdge, n, threads int, out []complex128, m *Metrics) {
	if uint64(len(out)) != uint64(1)<<uint(n) {
		panic(fmt.Sprintf("convert: output length %d, want %d", len(out), uint64(1)<<uint(n)))
	}
	if threads < 1 {
		threads = 1
	}
	if e.IsZero() {
		return
	}
	var start time.Time
	var busyBefore int64
	if m != nil {
		start = time.Now()
		busyBefore = m.WorkerBusyNs.Value()
	}
	var wg sync.WaitGroup
	convRec(e.N, e.W, out, threads, &wg, m)
	wg.Wait()
	if m != nil {
		wall := time.Since(start).Nanoseconds()
		m.Runs.Inc()
		m.WallNs.Add(wall)
		if wall > 0 {
			busy := m.WorkerBusyNs.Value() - busyBefore
			eff := float64(wall+busy) / (float64(threads) * float64(wall))
			if eff > 1 {
				eff = 1
			}
			m.Efficiency.Set(eff)
		}
	}
}

// convRec converts the sub-vector of node nd (reached with weight product
// w) into out, with budget worker goroutines available for this sub-tree.
func convRec(nd *dd.VNode, w complex128, out []complex128, budget int, wg *sync.WaitGroup, m *Metrics) {
	if budget <= 1 {
		convSeq(nd, w, out)
		return
	}
	for {
		if nd.Level == dd.TerminalLevel {
			out[0] = w
			return
		}
		half := len(out) / 2
		e0, e1 := nd.E[0], nd.E[1]
		switch {
		case e0.IsZero() && e1.IsZero():
			return
		case e1.IsZero():
			// Load balancing: all threads proceed along the nonzero edge.
			w *= e0.W
			nd = e0.N
			out = out[:half]
		case e0.IsZero():
			w *= e1.W
			nd = e1.N
			out = out[half:]
		case e0.N == e1.N:
			// Scalar-multiplication optimization: convert the first half
			// (waiting for every worker it spawns — the scaling below reads
			// it), then derive the second by scaling with e1.W/e0.W.
			lo := out[:half]
			hi := out[half:]
			var sub sync.WaitGroup
			convRec(e0.N, w*e0.W, lo, budget, &sub, m)
			sub.Wait()
			parallelScalarMul(hi, lo, e1.W/e0.W, budget, wg, m)
			return
		default:
			if budget <= 1 {
				convSeq(nd, w, out)
				return
			}
			// Divide the threads across the two edges.
			b0 := budget / 2
			b1 := budget - b0
			lo := out[:half]
			e0w := w * e0.W
			wg.Add(1)
			go func() {
				defer wg.Done()
				var t0 time.Time
				if m != nil {
					m.Goroutines.Inc()
					t0 = time.Now()
				}
				var sub sync.WaitGroup
				convRec(e0.N, e0w, lo, b0, &sub, m)
				sub.Wait()
				if m != nil {
					m.WorkerBusyNs.Add(time.Since(t0).Nanoseconds())
				}
			}()
			w *= e1.W
			nd = e1.N
			out = out[half:]
			budget = b1
		}
	}
}

// convSeq is the single-threaded conversion of a sub-tree: no goroutines,
// no WaitGroups, but still applying the scalar-multiplication shortcut.
func convSeq(nd *dd.VNode, w complex128, out []complex128) {
	for {
		if nd.Level == dd.TerminalLevel {
			out[0] = w
			return
		}
		half := len(out) / 2
		e0, e1 := nd.E[0], nd.E[1]
		switch {
		case e0.IsZero() && e1.IsZero():
			return
		case e1.IsZero():
			w *= e0.W
			nd = e0.N
			out = out[:half]
		case e0.IsZero():
			w *= e1.W
			nd = e1.N
			out = out[half:]
		case e0.N == e1.N:
			convSeq(e0.N, w*e0.W, out[:half])
			scalarMul(out[half:], out[:half], e1.W/e0.W)
			return
		default:
			convSeq(e0.N, w*e0.W, out[:half])
			w *= e1.W
			nd = e1.N
			out = out[half:]
		}
	}
}

// ParallelNaiveInto is the ablation variant of ParallelInto: threads are
// divided blindly across both outgoing edges of every node (threads routed
// to a zero edge idle, Figure 4a's problem) and the scalar-multiplication
// shortcut is disabled. It quantifies what the two optimizations buy.
func ParallelNaiveInto(e dd.VEdge, n, threads int, out []complex128) {
	if uint64(len(out)) != uint64(1)<<uint(n) {
		panic(fmt.Sprintf("convert: output length %d, want %d", len(out), uint64(1)<<uint(n)))
	}
	if threads < 1 {
		threads = 1
	}
	if e.IsZero() {
		return
	}
	var wg sync.WaitGroup
	naiveRec(e.N, e.W, out, threads, &wg)
	wg.Wait()
}

func naiveRec(nd *dd.VNode, w complex128, out []complex128, budget int, wg *sync.WaitGroup) {
	if nd.Level == dd.TerminalLevel {
		out[0] = w
		return
	}
	half := len(out) / 2
	e0, e1 := nd.E[0], nd.E[1]
	if budget <= 1 {
		if !e0.IsZero() {
			naiveRec(e0.N, w*e0.W, out[:half], 1, wg)
		}
		if !e1.IsZero() {
			naiveRec(e1.N, w*e1.W, out[half:], 1, wg)
		}
		return
	}
	// Blind split: half the threads to each edge, zero or not.
	b0 := budget / 2
	b1 := budget - b0
	if !e0.IsZero() {
		lo := out[:half]
		e0w := w * e0.W
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sub sync.WaitGroup
			naiveRec(e0.N, e0w, lo, b0, &sub)
			sub.Wait()
		}()
	}
	if !e1.IsZero() {
		naiveRec(e1.N, w*e1.W, out[half:], b1, wg)
	}
}

// parallelScalarMul fills dst = src * f, splitting the work across budget
// goroutines registered on wg.
func parallelScalarMul(dst, src []complex128, f complex128, budget int, wg *sync.WaitGroup, m *Metrics) {
	n := len(dst)
	if budget > n {
		budget = n
	}
	if budget <= 1 || n < 1024 {
		scalarMul(dst, src, f)
		return
	}
	chunk := n / budget
	for i := 0; i < budget; i++ {
		lo := i * chunk
		hi := lo + chunk
		if i == budget-1 {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var t0 time.Time
			if m != nil {
				m.Goroutines.Inc()
				t0 = time.Now()
			}
			scalarMul(dst[lo:hi], src[lo:hi], f)
			if m != nil {
				m.WorkerBusyNs.Add(time.Since(t0).Nanoseconds())
			}
		}(lo, hi)
	}
}

// scalarMul is the unrolled scaling kernel (the SIMD stand-in).
func scalarMul(dst, src []complex128, f complex128) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] = src[i] * f
		dst[i+1] = src[i+1] * f
		dst[i+2] = src[i+2] * f
		dst[i+3] = src[i+3] * f
	}
	for ; i < len(dst); i++ {
		dst[i] = src[i] * f
	}
}
