package convert

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
)

const eps = 1e-9

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < eps }

func randAmps(rng *rand.Rand, n int) []complex128 {
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	return amps
}

func checkAgainst(t *testing.T, name string, m *dd.Manager, e dd.VEdge, n int) {
	t.Helper()
	want := Sequential(m, e, n)
	for _, threads := range []int{1, 2, 3, 4, 8, 16} {
		got := Parallel(e, n, threads)
		for i := range want {
			if !approx(got[i], want[i]) {
				t.Fatalf("%s threads=%d: amplitude %d = %v, want %v", name, threads, i, got[i], want[i])
			}
		}
	}
}

func TestParallelMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 10; n++ {
		m := dd.New(n)
		e := m.VectorFromAmplitudes(randAmps(rng, n))
		checkAgainst(t, "random", m, e, n)
	}
}

func TestParallelMatchesSequentialSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(6)
		m := dd.New(n)
		amps := make([]complex128, 1<<uint(n))
		for k := 0; k < 3; k++ {
			amps[rng.Intn(len(amps))] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		amps[0] = 1 // ensure nonzero
		e := m.VectorFromAmplitudes(amps)
		checkAgainst(t, "sparse", m, e, n)
	}
}

func TestParallelUniformSuperpositionHitsScalarPath(t *testing.T) {
	// |+>^n has identical children at every node: the scalar-multiply
	// optimization applies at every level.
	n := 12
	m := dd.New(n)
	s := ddsim.NewWithManager(m, n)
	for q := 0; q < n; q++ {
		g := circuit.H(q)
		s.ApplyGate(&g)
	}
	checkAgainst(t, "uniform", m, s.State(), n)
}

func TestParallelGHZ(t *testing.T) {
	n := 14
	m := dd.New(n)
	s := ddsim.NewWithManager(m, n)
	g := circuit.H(0)
	s.ApplyGate(&g)
	for q := 1; q < n; q++ {
		cx := circuit.CX(q-1, q)
		s.ApplyGate(&cx)
	}
	checkAgainst(t, "ghz", m, s.State(), n)
}

func TestParallelAlternatingSignState(t *testing.T) {
	// (H Z H)-style states with negative-weight shared children exercise
	// scalar factors different from 1.
	n := 10
	m := dd.New(n)
	amps := make([]complex128, 1<<uint(n))
	f := 1 / math.Sqrt(float64(len(amps)))
	for i := range amps {
		sign := 1.0
		if popcount(uint(i))%2 == 1 {
			sign = -1
		}
		amps[i] = complex(sign*f, 0)
	}
	e := m.VectorFromAmplitudes(amps)
	checkAgainst(t, "alternating", m, e, n)
}

func popcount(x uint) int {
	c := 0
	for x != 0 {
		c += int(x & 1)
		x >>= 1
	}
	return c
}

func TestParallelZeroEdge(t *testing.T) {
	m := dd.New(4)
	out := Parallel(m.VZeroEdge(), 4, 4)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero edge produced nonzero at %d", i)
		}
	}
}

func TestParallelIntoValidatesLength(t *testing.T) {
	m := dd.New(3)
	if err := ParallelInto(m.ZeroState(3), 3, 2, make([]complex128, 4)); err == nil {
		t.Fatal("ParallelInto accepted short output")
	}
	if err := ParallelInto(m.ZeroState(3), 3, 2, make([]complex128, 8)); err != nil {
		t.Fatalf("correct length rejected: %v", err)
	}
}

func TestParallelRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(9)
		m := dd.New(n)
		amps := randAmps(rng, n)
		e := m.VectorFromAmplitudes(amps)
		got := Parallel(e, n, 1+rng.Intn(8))
		for i := range amps {
			if !approx(got[i], amps[i]) {
				t.Fatalf("trial %d n=%d: round trip failed at %d", trial, n, i)
			}
		}
	}
}

func TestThreadsClampedToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := dd.New(5)
	e := m.VectorFromAmplitudes(randAmps(rng, 5))
	got := Parallel(e, 5, -3)
	want := Sequential(m, e, 5)
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Fatalf("threads<1 mismatch at %d", i)
		}
	}
}

func benchState(n int) (dd.VEdge, *dd.Manager) {
	rng := rand.New(rand.NewSource(4))
	m := dd.New(n)
	return m.VectorFromAmplitudes(randAmps(rng, n)), m
}

func BenchmarkSequential16(b *testing.B) {
	e, m := benchState(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(m, e, 16)
	}
}

func BenchmarkParallel16T4(b *testing.B) {
	e, _ := benchState(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(e, 16, 4)
	}
}

func TestParallelNaiveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		m := dd.New(n)
		var e dd.VEdge
		if trial%2 == 0 {
			e = m.VectorFromAmplitudes(randAmps(rng, n))
		} else {
			e = m.BasisState(n, uint64(rng.Intn(1<<uint(n))))
		}
		want := Sequential(m, e, n)
		for _, threads := range []int{1, 3, 8} {
			out := make([]complex128, len(want))
			ParallelNaiveInto(e, n, threads, out)
			for i := range want {
				if !approx(out[i], want[i]) {
					t.Fatalf("trial %d threads %d: naive conversion wrong at %d", trial, threads, i)
				}
			}
		}
	}
}
