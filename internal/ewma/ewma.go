// Package ewma implements the exponentially weighted moving-average
// controller that decides when FlatDD converts from DD-based simulation to
// DMAV (Section 3.1.1 of the paper).
//
// While simulating, gate i is assigned v_i = β·v_{i-1} + (1-β)·s_i
// (Equation 4), where s_i is the node count of the state DD after gate i.
// Conversion is signaled the first time ε·v_i < s_i: the DD size has grown
// drastically faster than its recent history, i.e. the state has turned
// irregular.
//
// Two practical guards are added on top of the paper's rule. With v_0 = 0
// the inequality ε·v_i < s_i holds trivially at i = 1 for any ε < 1/(1-β)
// (e.g. the paper's β = 0.9, ε = 2), so a warm-up of Warmup gates lets the
// average settle first; and a minimum absolute size MinSize keeps the
// controller from firing on states so small that DMAV has nothing to win.
// Both defaults preserve the published behaviour: regular circuits (Adder,
// GHZ) never convert, irregular ones convert right after the DD-size
// blow-up begins.
package ewma

import "flatdd/internal/obs"

// Defaults used by the paper's evaluation (Section 4.2) and this package.
const (
	DefaultBeta    = 0.9
	DefaultEpsilon = 2.0
	// DefaultWarmup is ~1/(1-β): the number of observations after which
	// the average of a constant series reaches 1-β^W ≈ 65% of its value,
	// enough for ε to dominate.
	DefaultWarmup = 10
	// DefaultMinSize is the smallest DD size worth converting at.
	DefaultMinSize = 32
)

// Controller tracks the moving average of the state-DD size.
type Controller struct {
	Beta    float64
	Epsilon float64
	Warmup  int
	MinSize int

	// Gauge, when non-nil, is updated with v_i on every observation so the
	// controller's view is live-observable (metric core.ewma); a nil gauge
	// costs one pointer check per gate.
	Gauge *obs.FloatGauge

	v float64
	i int
}

// New returns a controller with the given β and ε and default guards.
// Non-positive β or ε select the defaults.
func New(beta, epsilon float64) *Controller {
	if beta <= 0 || beta >= 1 {
		beta = DefaultBeta
	}
	if epsilon <= 0 {
		epsilon = DefaultEpsilon
	}
	return &Controller{
		Beta:    beta,
		Epsilon: epsilon,
		Warmup:  DefaultWarmup,
		MinSize: DefaultMinSize,
	}
}

// Observe records the DD size after one more gate and reports whether the
// controller recommends converting to DMAV now.
func (c *Controller) Observe(size int) bool {
	c.i++
	s := float64(size)
	c.v = c.Beta*c.v + (1-c.Beta)*s
	c.Gauge.Set(c.v)
	if c.i <= c.Warmup || size < c.MinSize {
		return false
	}
	return c.Epsilon*c.v < s
}

// Average returns the current EWMA value v_i.
func (c *Controller) Average() float64 { return c.v }

// Observations returns the number of sizes observed.
func (c *Controller) Observations() int { return c.i }

// Reset clears the controller state.
func (c *Controller) Reset() {
	c.v = 0
	c.i = 0
}
