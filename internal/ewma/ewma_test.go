package ewma

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantSeriesNeverConverts(t *testing.T) {
	c := New(0.9, 2.0)
	for i := 0; i < 1000; i++ {
		if c.Observe(500) {
			t.Fatalf("constant series triggered conversion at gate %d", i+1)
		}
	}
}

func TestSlowGrowthNeverConverts(t *testing.T) {
	// 5% growth per gate is below the ~12.5% threshold implied by
	// β=0.9, ε=2 in steady state.
	c := New(0.9, 2.0)
	s := 100.0
	for i := 0; i < 60; i++ {
		if c.Observe(int(s)) {
			t.Fatalf("slow growth triggered conversion at gate %d (size %.0f)", i+1, s)
		}
		s *= 1.05
	}
}

func TestExponentialBlowupConverts(t *testing.T) {
	c := New(0.9, 2.0)
	// Flat history, then the DD starts doubling.
	for i := 0; i < 20; i++ {
		if c.Observe(100) {
			t.Fatal("converted during flat history")
		}
	}
	s := 100
	converted := false
	for i := 0; i < 12; i++ {
		s *= 2
		if c.Observe(s) {
			converted = true
			break
		}
	}
	if !converted {
		t.Fatal("doubling DD size never triggered conversion")
	}
}

func TestWarmupSuppressesEarlyTrigger(t *testing.T) {
	// Without warm-up, v_1 = (1-β)s makes ε·v_1 < s_1 for the default
	// parameters; the controller must not fire on gate 1.
	c := New(0.9, 2.0)
	if c.Observe(1000) {
		t.Fatal("controller fired on the very first observation")
	}
}

func TestMinSizeGuard(t *testing.T) {
	c := New(0.9, 2.0)
	c.Warmup = 0
	for i := 0; i < 50; i++ {
		if c.Observe(2) { // tiny DDs: 2 nodes, below MinSize
			t.Fatal("fired on tiny DD")
		}
	}
	// A jump beyond MinSize must now fire (history average is tiny).
	if !c.Observe(1000) {
		t.Fatal("did not fire on a drastic jump past MinSize")
	}
}

func TestEquation4Exact(t *testing.T) {
	c := New(0.5, 2.0)
	sizes := []int{100, 200, 50}
	var v float64
	for _, s := range sizes {
		c.Observe(s)
		v = 0.5*v + 0.5*float64(s)
	}
	if math.Abs(c.Average()-v) > 1e-12 {
		t.Fatalf("EWMA %v, want %v", c.Average(), v)
	}
	if c.Observations() != 3 {
		t.Fatalf("observations = %d", c.Observations())
	}
}

func TestDefaultsOnBadParams(t *testing.T) {
	c := New(-1, 0)
	if c.Beta != DefaultBeta || c.Epsilon != DefaultEpsilon {
		t.Fatalf("defaults not applied: %+v", c)
	}
	c2 := New(1.5, -2)
	if c2.Beta != DefaultBeta || c2.Epsilon != DefaultEpsilon {
		t.Fatalf("defaults not applied: %+v", c2)
	}
}

func TestReset(t *testing.T) {
	c := New(0.9, 2.0)
	c.Observe(100)
	c.Reset()
	if c.Average() != 0 || c.Observations() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestEWMABoundedByMaxProperty(t *testing.T) {
	// The EWMA of a non-negative series never exceeds its running maximum.
	f := func(raw []uint16) bool {
		c := New(0.9, 2.0)
		maxSeen := 0.0
		for _, r := range raw {
			s := int(r)
			c.Observe(s)
			if float64(s) > maxSeen {
				maxSeen = float64(s)
			}
			if c.Average() > maxSeen+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
