package ddsim

import (
	"fmt"
	"math"
	"math/rand"

	"flatdd/internal/dd"
)

// ProbabilityOfQubit returns P(qubit q = 1) of the current state, computed
// directly on the DD with two memoized passes: the squared sub-tree norms
// S(n) (sub-trees are not unit vectors under division-based node
// normalization) and the q=1 mass of each node above the measured level.
func (s *Simulator) ProbabilityOfQubit(q int) float64 {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("ddsim: qubit %d out of range", q))
	}
	norms := make(map[*dd.VNode]float64)
	memo := make(map[*dd.VNode]float64)
	var mass func(n *dd.VNode, level int) float64
	// mass returns the probability mass of the sub-tree (for an incoming
	// weight of 1) whose paths have qubit q = 1.
	mass = func(n *dd.VNode, level int) float64 {
		if v, ok := memo[n]; ok {
			return v
		}
		var p float64
		for i := 0; i < 2; i++ {
			e := n.E[i]
			if e.IsZero() {
				continue
			}
			w := real(e.W)*real(e.W) + imag(e.W)*imag(e.W)
			if level == q {
				if i == 1 {
					// Everything below contributes its full mass.
					p += w * s.m.SubtreeNorm2(e.N, norms)
				}
			} else {
				p += w * mass(e.N, level-1)
			}
		}
		memo[n] = p
		return p
	}
	e := s.state
	if e.IsZero() {
		return 0
	}
	norm2 := real(e.W)*real(e.W) + imag(e.W)*imag(e.W)
	return norm2 * mass(e.N, s.n-1)
}

// MeasureQubit performs a projective measurement of qubit q on the DD
// state: draw an outcome, project the DD, renormalize.
func (s *Simulator) MeasureQubit(q int, rng *rand.Rand) int {
	p1 := s.ProbabilityOfQubit(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.ForceOutcome(q, outcome)
	return outcome
}

// ForceOutcome projects qubit q onto the given outcome and renormalizes.
// It panics if the outcome has zero probability.
func (s *Simulator) ForceOutcome(q, outcome int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("ddsim: qubit %d out of range", q))
	}
	memo := make(map[*dd.VNode]dd.VEdge)
	var project func(n *dd.VNode, level int) dd.VEdge
	project = func(n *dd.VNode, level int) dd.VEdge {
		if v, ok := memo[n]; ok {
			return v
		}
		var res dd.VEdge
		if level == q {
			kill := 1 - outcome
			e0, e1 := n.E[0], n.E[1]
			if kill == 0 {
				e0 = s.m.VZeroEdge()
			} else {
				e1 = s.m.VZeroEdge()
			}
			res = s.m.MakeVNode(level, e0, e1)
		} else {
			var ch [2]dd.VEdge
			for i := 0; i < 2; i++ {
				e := n.E[i]
				if e.IsZero() {
					ch[i] = s.m.VZeroEdge()
					continue
				}
				sub := project(e.N, level-1)
				ch[i] = s.m.ScaleV(sub, e.W)
			}
			res = s.m.MakeVNode(level, ch[0], ch[1])
		}
		memo[n] = res
		return res
	}
	e := s.state
	if e.IsZero() {
		panic("ddsim: measuring the zero state")
	}
	proj := s.m.ScaleV(project(e.N, s.n-1), e.W)
	norm := s.m.Norm(proj)
	if norm < 1e-12 {
		panic(fmt.Sprintf("ddsim: outcome %d on qubit %d has zero probability", outcome, q))
	}
	// Renormalize: divide the root weight's magnitude out, keeping phase.
	s.state = s.m.ScaleV(proj, complex(1/norm, 0))
	if math.Abs(s.m.Norm(s.state)-1) > 1e-9 {
		panic("ddsim: collapse did not renormalize")
	}
}
