package ddsim

import (
	"math"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/statevec"
)

func TestProbabilityOfQubitMatchesArray(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(6)
		c := randomCircuit(rng, n, 30)
		s := New(n)
		s.Run(c)
		sv := statevec.New(n, 1)
		sv.ApplyCircuit(c)
		for q := 0; q < n; q++ {
			pd := s.ProbabilityOfQubit(q)
			pa := sv.ProbabilityOfQubit(q)
			if math.Abs(pd-pa) > 1e-9 {
				t.Fatalf("trial %d qubit %d: DD %v vs array %v", trial, q, pd, pa)
			}
		}
	}
}

func TestForceOutcomeMatchesArrayCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(4)
		c := randomCircuit(rng, n, 25)
		s := New(n)
		s.Run(c)
		sv := statevec.New(n, 1)
		sv.ApplyCircuit(c)
		q := rng.Intn(n)
		p1 := s.ProbabilityOfQubit(q)
		outcome := 0
		if p1 > 0.5 {
			outcome = 1 // pick the likelier branch so it's never zero-prob
		}
		s.ForceOutcome(q, outcome)
		sv.ForceOutcome(q, outcome)
		got := s.ToArray()
		want := sv.Amplitudes()
		for i := range want {
			// Compare up to global phase (collapse normalizes phase
			// differently in the two engines).
			if math.Abs(absC(got[i])-absC(want[i])) > 1e-9 {
				t.Fatalf("trial %d: collapsed magnitude differs at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
		// And the post-collapse probability must be deterministic.
		if p := s.ProbabilityOfQubit(q); math.Abs(p-float64(outcome)) > 1e-9 {
			t.Fatalf("post-collapse P=%v, want %d", p, outcome)
		}
	}
}

func absC(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func TestMeasureGHZCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ones, zeros := 0, 0
	for trial := 0; trial < 100; trial++ {
		n := 6
		s := New(n)
		g := circuit.H(0)
		s.ApplyGate(&g)
		for q := 1; q < n; q++ {
			cx := circuit.CX(q-1, q)
			s.ApplyGate(&cx)
		}
		first := s.MeasureQubit(0, rng)
		if first == 1 {
			ones++
		} else {
			zeros++
		}
		for q := 1; q < n; q++ {
			if m := s.MeasureQubit(q, rng); m != first {
				t.Fatalf("GHZ correlation broken at qubit %d", q)
			}
		}
	}
	if ones < 25 || zeros < 25 {
		t.Fatalf("biased GHZ outcomes: %d/%d", zeros, ones)
	}
}

func TestForceOutcomeZeroProbabilityPanics(t *testing.T) {
	s := New(2) // |00>: qubit 0 = 1 has zero probability
	defer func() {
		if recover() == nil {
			t.Fatal("zero-probability collapse did not panic")
		}
	}()
	s.ForceOutcome(0, 1)
}
