// Package ddsim implements the sequential, pure decision-diagram quantum
// circuit simulator that stands in for DDSIM [99] in the paper's
// evaluation, and that FlatDD uses as its front phase before converting to
// DMAV.
//
// Both the gate matrix and the state vector live as DDs; applying a gate is
// one DD matrix-vector multiplication memoized through the manager's
// compute tables. On regular circuits (Adder, GHZ) the state DD stays tiny
// and simulation is effectively instant; on irregular circuits (DNN, VQE,
// quantum supremacy) the state DD grows toward 2^n nodes and the per-gate
// cost explodes — the behaviour Figures 1 and 11 of the paper rely on.
package ddsim

import (
	"fmt"

	"flatdd/internal/circuit"
	"flatdd/internal/dd"
)

// BuildGateDD converts a circuit gate into its n-qubit matrix DD. It is
// shared by every DD-side engine (ddsim, dmav, fusion, core).
func BuildGateDD(m *dd.Manager, n int, g *circuit.Gate) dd.MEdge {
	if len(g.Targets) == 1 {
		u := dd.Matrix2{
			{g.U[0][0], g.U[0][1]},
			{g.U[1][0], g.U[1][1]},
		}
		if len(g.Controls) == 0 {
			return m.SingleGate(n, u, g.Targets[0])
		}
		ctrls := make([]dd.Control, len(g.Controls))
		for i, c := range g.Controls {
			ctrls[i] = dd.Control{Qubit: c.Qubit, Negative: c.Negative}
		}
		return m.ControlledGate(n, u, g.Targets[0], ctrls)
	}
	return m.MultiQubitGate(n, g.U, g.Targets)
}

// Simulator is a DD-based state-vector simulator. By default gates are
// applied sequentially; SetParallelism enables task-parallel gate
// application, which decomposes each DD multiplication into independent
// sub-DD recursions on a worker pool (bit-identical results, see
// dd.MulMVParallel).
type Simulator struct {
	m     *dd.Manager
	n     int
	state dd.VEdge

	gatesApplied int
	peakSize     int
	lastSize     int

	parRun     dd.TaskRunner
	parThreads int
	parCutoff  int
}

// DefaultParallelCutoff is the state-DD node count below which parallel
// gate application falls back to the serial path: with fewer amplitudes
// than this in play, the frontier tasks are too small to amortize batch
// dispatch.
const DefaultParallelCutoff = 256

// New returns a simulator for n qubits initialized to |0...0>.
func New(n int) *Simulator {
	m := dd.New(n)
	return &Simulator{m: m, n: n, state: m.ZeroState(n)}
}

// NewWithManager returns a simulator sharing an existing manager; the
// FlatDD engine uses this so the DDSIM phase and the DMAV gate matrices
// live in one DD universe.
func NewWithManager(m *dd.Manager, n int) *Simulator {
	return &Simulator{m: m, n: n, state: m.ZeroState(n)}
}

// Manager returns the simulator's DD manager.
func (s *Simulator) Manager() *dd.Manager { return s.m }

// SetParallelism enables task-parallel gate application: run executes a
// batch of independent tasks (typically sched.Pool.Run) and threads is the
// runner's worker count, which sizes the recursion frontier. A nil runner
// or threads <= 1 restores the sequential path. The cutoff below which
// gates stay sequential is DefaultParallelCutoff; SetParallelCutoff
// overrides it.
func (s *Simulator) SetParallelism(run dd.TaskRunner, threads int) {
	if run == nil || threads <= 1 {
		s.parRun, s.parThreads = nil, 0
		return
	}
	s.parRun, s.parThreads = run, threads
	if s.parCutoff == 0 {
		s.parCutoff = DefaultParallelCutoff
	}
}

// SetParallelCutoff overrides the state-DD node count below which gate
// application stays sequential (0 restores the default).
func (s *Simulator) SetParallelCutoff(cutoff int) {
	if cutoff <= 0 {
		cutoff = DefaultParallelCutoff
	}
	s.parCutoff = cutoff
}

// splitLevelsFor returns how many recursion levels to decompose so the
// frontier has at least ~8 tasks per worker (4^k pairs at depth k, before
// deduplication), capped below the register size.
func splitLevelsFor(threads, n int) int {
	k := 0
	for 1<<(2*k) < 8*threads && k < n-1 {
		k++
	}
	return k
}

// Qubits returns the register size.
func (s *Simulator) Qubits() int { return s.n }

// State returns the current state DD.
func (s *Simulator) State() dd.VEdge { return s.state }

// SetState replaces the current state DD (used by tests).
func (s *Simulator) SetState(e dd.VEdge) { s.state = e }

// GatesApplied returns the number of gates applied so far.
func (s *Simulator) GatesApplied() int { return s.gatesApplied }

// PeakStateSize returns the largest state-DD node count seen.
func (s *Simulator) PeakStateSize() int { return s.peakSize }

// ApplyGate applies one gate to the state and returns the resulting state
// DD size (the s_i the EWMA controller of Section 3.1.1 monitors).
func (s *Simulator) ApplyGate(g *circuit.Gate) int {
	if err := g.Validate(s.n); err != nil {
		panic(err)
	}
	gate := BuildGateDD(s.m, s.n, g)
	if s.parRun != nil && s.lastSize >= s.parCutoff {
		s.state = s.m.MulMVParallel(gate, s.state, s.parRun, splitLevelsFor(s.parThreads, s.n))
	} else {
		s.state = s.m.MulMV(gate, s.state)
	}
	s.gatesApplied++
	s.m.CollectIfNeeded(dd.Roots{V: []dd.VEdge{s.state}})
	size := s.m.VSize(s.state)
	s.lastSize = size
	if size > s.peakSize {
		s.peakSize = size
	}
	return size
}

// Run applies an entire circuit.
func (s *Simulator) Run(c *circuit.Circuit) {
	if c.Qubits != s.n {
		panic(fmt.Sprintf("ddsim: circuit on %d qubits, simulator has %d", c.Qubits, s.n))
	}
	for i := range c.Gates {
		s.ApplyGate(&c.Gates[i])
	}
}

// Amplitude returns one amplitude of the current state.
func (s *Simulator) Amplitude(idx uint64) complex128 {
	return s.m.Amplitude(s.state, s.n, idx)
}

// ToArray expands the current state into a flat amplitude array using the
// sequential DDSIM-style conversion.
func (s *Simulator) ToArray() []complex128 {
	return s.m.ToArray(s.state, s.n)
}

// StateSize returns the node count of the current state DD.
func (s *Simulator) StateSize() int { return s.m.VSize(s.state) }

// Norm returns the 2-norm of the current state.
func (s *Simulator) Norm() float64 { return s.m.Norm(s.state) }
