package ddsim

import (
	"math/rand"
	"runtime"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/dd"
	"flatdd/internal/obs"
	"flatdd/internal/sched"
	"flatdd/internal/workloads"
)

// Simulator-level half of the concurrency battery (`make dd-race` runs
// these under the race detector alongside internal/dd's). The assertion
// throughout is bit-identity: weight snapping happens on a fixed grid and
// cached compute-table values are pure functions of their keys, so the
// parallel DD phase must reproduce the sequential amplitudes exactly —
// not approximately — for every thread count and interleaving.

// runSerial runs c on a fresh sequential simulator and returns the final
// amplitudes.
func runSerial(c *circuit.Circuit) []complex128 {
	s := New(c.Qubits)
	s.Run(c)
	return s.ToArray()
}

// runParallel runs c with task-parallel gate application on a pool of the
// given worker count, forcing the frontier-split path for every gate.
func runParallel(c *circuit.Circuit, threads int) []complex128 {
	pool := sched.New(threads)
	defer pool.Close()
	s := New(c.Qubits)
	s.SetParallelism(pool.Run, pool.Threads())
	s.SetParallelCutoff(1)
	s.Run(c)
	return s.ToArray()
}

// stressCircuit is a deep-entangling supremacy-style circuit: the state
// DD grows large enough that every gate exceeds any sensible parallel
// cutoff and the recursion frontier is wide.
func stressCircuit(n int) *circuit.Circuit {
	return workloads.SupremacyGrid(n, 12, 20240812)
}

// TestParallelDeterminismAcrossThreadCounts is the headline determinism
// test: threads=1 (sequential path) and threads∈{2,4,8} (parallel path)
// must produce bit-identical final amplitudes on a deep-entangling
// circuit. Weight-tolerance snapping is a pure function of the value
// being snapped (see cnum), so no interleaving can shift a result to a
// neighboring grid bucket.
func TestParallelDeterminismAcrossThreadCounts(t *testing.T) {
	c := stressCircuit(7)
	want := runSerial(c)
	for _, threads := range []int{2, 4, 8} {
		got := runParallel(c, threads)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads=%d amplitude %d: %v != serial %v", threads, i, got[i], want[i])
			}
		}
	}
}

// TestParallelStressGOMAXPROCS re-runs the parallel engine under
// different GOMAXPROCS settings — including 1, where every interleaving
// collapses onto one OS thread, and values above the pool size — and
// checks bit-identity against the sequential reference each time.
func TestParallelStressGOMAXPROCS(t *testing.T) {
	c := stressCircuit(6)
	want := runSerial(c)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gp := range []int{1, 3, 7, 16} {
		runtime.GOMAXPROCS(gp)
		got := runParallel(c, 8)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GOMAXPROCS=%d amplitude %d: %v != serial %v", gp, i, got[i], want[i])
			}
		}
	}
}

// TestParallelRandomCircuits sweeps seeded random Clifford+T-style
// circuits of varying width, comparing the parallel engine bit-for-bit
// against the sequential one.
func TestParallelRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		n := 4 + int(seed)
		c := randomCircuit(rng, n, 60)
		want := runSerial(c)
		got := runParallel(c, 4)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed=%d amplitude %d: %v != serial %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestParallelGCUnderConcurrency forces garbage collections mid-circuit
// (tiny GC threshold) while gates run through the parallel path. The GC
// barrier must keep collections off in-flight batches, and post-GC
// rebuilds must leave no dangling edges: the final amplitudes stay
// bit-identical to the GC-free sequential run, and collections must
// actually have happened.
func TestParallelGCUnderConcurrency(t *testing.T) {
	c := stressCircuit(6)
	want := runSerial(c)

	reg := obs.New()
	pool := sched.New(4)
	defer pool.Close()
	s := New(c.Qubits)
	s.Manager().SetMetrics(reg)
	s.Manager().SetGCThreshold(16)
	s.SetParallelism(pool.Run, pool.Threads())
	s.SetParallelCutoff(1)
	s.Run(c)
	got := s.ToArray()

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("amplitude %d: GC-stressed parallel %v != serial %v", i, got[i], want[i])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["dd.gc.runs"] == 0 {
		t.Fatal("GC threshold of 16 nodes triggered no collections — test exercised nothing")
	}
}

// TestParallelCutoffFallsBackToSerial pins the cutoff plumbing: with a
// cutoff above the circuit's peak DD size, the parallel engine must never
// leave the sequential path (and still agree, trivially).
func TestParallelCutoffFallsBackToSerial(t *testing.T) {
	c := stressCircuit(5)
	want := runSerial(c)

	pool := sched.New(4)
	defer pool.Close()
	s := New(c.Qubits)
	s.SetParallelism(pool.Run, pool.Threads())
	s.SetParallelCutoff(1 << 30)
	s.Run(c)
	got := s.ToArray()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("amplitude %d: %v != serial %v", i, got[i], want[i])
		}
	}
}

// TestSplitLevelsForParallel pins the frontier-sizing heuristic: enough
// depth for ~8 tasks per worker, never reaching the terminal level.
func TestSplitLevelsForParallel(t *testing.T) {
	cases := []struct{ threads, n, want int }{
		{1, 10, 2},  // 4^2 = 16 >= 8
		{2, 10, 2},  // 16 >= 16
		{4, 10, 3},  // 64 >= 32
		{8, 10, 3},  // 64 >= 64
		{16, 10, 4}, // 256 >= 128
		{16, 3, 2},  // capped at n-1
		{8, 2, 1},   // capped at n-1
	}
	for _, tc := range cases {
		if got := splitLevelsFor(tc.threads, tc.n); got != tc.want {
			t.Errorf("splitLevelsFor(%d, %d) = %d, want %d", tc.threads, tc.n, got, tc.want)
		}
	}
}

// TestParallelDisableRestoresSerial checks SetParallelism's nil/1 paths.
func TestParallelDisableRestoresSerial(t *testing.T) {
	s := New(3)
	pool := sched.New(2)
	defer pool.Close()
	s.SetParallelism(pool.Run, pool.Threads())
	if s.parRun == nil {
		t.Fatal("SetParallelism(run, 2) did not enable the parallel path")
	}
	s.SetParallelism(nil, 8)
	if s.parRun != nil {
		t.Fatal("SetParallelism(nil, ...) did not disable the parallel path")
	}
	s.SetParallelism(pool.Run, 1)
	if s.parRun != nil {
		t.Fatal("SetParallelism(run, 1) did not disable the parallel path")
	}
	var _ dd.TaskRunner = pool.Run
}
