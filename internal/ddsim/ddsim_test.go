package ddsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/statevec"
)

const eps = 1e-9

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < eps }

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("rand", n)
	for len(c.Gates) < gates {
		switch rng.Intn(6) {
		case 0:
			c.Append(circuit.H(rng.Intn(n)))
		case 1:
			c.Append(circuit.T(rng.Intn(n)))
		case 2:
			c.Append(circuit.RY(rng.NormFloat64(), rng.Intn(n)))
		case 3:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		case 4:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.CP(rng.NormFloat64(), a, b))
			}
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.ISwap(a, b))
			}
		}
	}
	return c
}

func TestBellState(t *testing.T) {
	s := New(2)
	h := circuit.H(0)
	cx := circuit.CX(0, 1)
	s.ApplyGate(&h)
	s.ApplyGate(&cx)
	want := complex(1/math.Sqrt2, 0)
	if !approx(s.Amplitude(0), want) || !approx(s.Amplitude(3), want) {
		t.Fatalf("Bell amplitudes: %v %v", s.Amplitude(0), s.Amplitude(3))
	}
	if !approx(s.Amplitude(1), 0) || !approx(s.Amplitude(2), 0) {
		t.Fatal("Bell state has spurious amplitudes")
	}
}

func TestGHZStaysCompact(t *testing.T) {
	n := 16
	s := New(n)
	h := circuit.H(0)
	s.ApplyGate(&h)
	for q := 1; q < n; q++ {
		cx := circuit.CX(q-1, q)
		s.ApplyGate(&cx)
	}
	// GHZ state: two nonzero amplitudes, O(n) DD nodes.
	if size := s.StateSize(); size > 2*n {
		t.Fatalf("GHZ state DD size %d, expected O(n)", size)
	}
	want := complex(1/math.Sqrt2, 0)
	if !approx(s.Amplitude(0), want) || !approx(s.Amplitude(1<<uint(n)-1), want) {
		t.Fatal("GHZ amplitudes wrong")
	}
}

func TestMatchesArraySimulatorOnRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(6)
		c := randomCircuit(rng, n, 25)
		ds := New(n)
		ds.Run(c)
		sv := statevec.New(n, 2)
		sv.ApplyCircuit(c)
		got := ds.ToArray()
		want := sv.Amplitudes()
		for i := range want {
			if !approx(got[i], want[i]) {
				t.Fatalf("trial %d (n=%d): amplitude %d = %v, want %v", trial, n, i, got[i], want[i])
			}
		}
	}
}

func TestNormPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(8)
	c := randomCircuit(rng, 8, 60)
	s.Run(c)
	if n := s.Norm(); math.Abs(n-1) > 1e-7 {
		t.Fatalf("norm %v, want 1", n)
	}
}

func TestStateSizeGrowsOnIrregularCircuit(t *testing.T) {
	// Random two-qubit entanglers with random rotations drive the DD
	// toward maximal size; a structured circuit stays small. This is the
	// regularity contrast FlatDD exploits.
	rng := rand.New(rand.NewSource(3))
	n := 10
	irregular := New(n)
	irregular.Run(randomCircuit(rng, n, 150))
	regular := New(n)
	ghz := circuit.New("ghz", n)
	ghz.Append(circuit.H(0))
	for q := 1; q < n; q++ {
		ghz.Append(circuit.CX(q-1, q))
	}
	regular.Run(ghz)
	if irregular.StateSize() < 8*regular.StateSize() {
		t.Fatalf("irregular size %d not much larger than regular %d",
			irregular.StateSize(), regular.StateSize())
	}
}

func TestGatesAppliedAndPeak(t *testing.T) {
	s := New(4)
	c := circuit.New("c", 4)
	c.Append(circuit.H(0), circuit.H(1), circuit.CX(0, 2))
	s.Run(c)
	if s.GatesApplied() != 3 {
		t.Fatalf("GatesApplied = %d", s.GatesApplied())
	}
	if s.PeakStateSize() < 1 {
		t.Fatal("peak size not tracked")
	}
}

func TestRunRejectsWrongWidth(t *testing.T) {
	s := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted mismatched circuit")
		}
	}()
	s.Run(circuit.New("wrong", 5))
}

func TestGCDoesNotCorruptState(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := New(6)
	s.Manager().SetGCThreshold(64) // force frequent collections
	c := randomCircuit(rng, 6, 40)
	s.Run(c)
	sv := statevec.New(6, 1)
	sv.ApplyCircuit(c)
	got := s.ToArray()
	for i := range got {
		if !approx(got[i], sv.Amplitudes()[i]) {
			t.Fatalf("GC corrupted amplitude %d", i)
		}
	}
}

func BenchmarkGHZ20(b *testing.B) {
	c := circuit.New("ghz", 20)
	c.Append(circuit.H(0))
	for q := 1; q < 20; q++ {
		c.Append(circuit.CX(q-1, q))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(20)
		s.Run(c)
	}
}
