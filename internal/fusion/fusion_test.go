package fusion

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"flatdd/internal/circuit"
	"flatdd/internal/dd"
	"flatdd/internal/ddsim"
	"flatdd/internal/dmav"
)

const eps = 1e-9

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < eps }

func randAmps(rng *rand.Rand, n int) []complex128 {
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	return amps
}

func gateDDs(m *dd.Manager, c *circuit.Circuit) []dd.MEdge {
	out := make([]dd.MEdge, len(c.Gates))
	for i := range c.Gates {
		out[i] = ddsim.BuildGateDD(m, c.Qubits, &c.Gates[i])
	}
	return out
}

// applySeq multiplies a vector through a gate-DD sequence with DMAV.
func applySeq(m *dd.Manager, n int, gates []dd.MEdge, v []complex128) []complex128 {
	e := dmav.New(m, n, 2, dmav.Auto)
	cur := append([]complex128(nil), v...)
	next := make([]complex128, len(v))
	for _, g := range gates {
		e.Apply(g, cur, next)
		cur, next = next, cur
	}
	return cur
}

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New("rand", n)
	for len(c.Gates) < gates {
		switch rng.Intn(5) {
		case 0:
			c.Append(circuit.H(rng.Intn(n)))
		case 1:
			c.Append(circuit.RZ(rng.NormFloat64(), rng.Intn(n)))
		case 2:
			c.Append(circuit.RY(rng.NormFloat64(), rng.Intn(n)))
		case 3:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.CX(a, b))
			}
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Append(circuit.CZ(a, b))
			}
		}
	}
	return c
}

func costFn(m *dd.Manager, n int) CostFunc {
	e := dmav.New(m, n, 2, dmav.Auto)
	return func(g dd.MEdge) float64 { return e.EvaluateCost(g).Cost() }
}

func TestFusePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(4)
		m := dd.New(n)
		c := randomCircuit(rng, n, 30)
		gates := gateDDs(m, c)
		res := Fuse(m, gates, costFn(m, n))
		v := randAmps(rng, n)
		want := applySeq(m, n, gates, v)
		got := applySeq(m, n, res.Gates, v)
		for i := range want {
			if !approx(got[i], want[i]) {
				t.Fatalf("trial %d: fused sequence diverges at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
		if len(res.Gates) > len(gates) {
			t.Fatalf("fusion grew the sequence: %d -> %d", len(gates), len(res.Gates))
		}
	}
}

func TestFuseMergesDiagonalGates(t *testing.T) {
	// A run of RZ/CZ diagonal gates fuses into few matrices: the product
	// of diagonals is diagonal with the same MAC count as one gate.
	n := 6
	m := dd.New(n)
	c := circuit.New("diag", n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		if i%3 == 2 {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				b = (a + 1) % n
			}
			c.Append(circuit.CZ(a, b))
		} else {
			c.Append(circuit.RZ(rng.NormFloat64(), rng.Intn(n)))
		}
	}
	gates := gateDDs(m, c)
	res := Fuse(m, gates, costFn(m, n))
	if len(res.Gates) != 1 {
		t.Fatalf("20 diagonal gates fused into %d matrices, want 1", len(res.Gates))
	}
	if res.CostAfter >= res.CostBefore {
		t.Fatalf("fusion did not reduce cost: %v -> %v", res.CostBefore, res.CostAfter)
	}
	if res.Fusions != 19 {
		t.Fatalf("fusions = %d, want 19", res.Fusions)
	}
}

func TestFuseAvoidsHarmfulFusion(t *testing.T) {
	// Hadamards on all qubits: fusing them all yields a dense 2^n x 2^n
	// matrix with 4^n MACs; sequential costs n·2^(n+1)... wait, each
	// H(q) has 2^(n+1) MACs. Algorithm 3 must stop fusing well before the
	// full dense product.
	n := 8
	m := dd.New(n)
	c := circuit.New("hwall", n)
	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	gates := gateDDs(m, c)
	res := Fuse(m, gates, costFn(m, n))
	if res.CostAfter > res.CostBefore {
		t.Fatalf("fusion increased cost: %v -> %v", res.CostBefore, res.CostAfter)
	}
	// The full fusion of all n Hadamards costs 4^n/t; the algorithm must
	// keep the output cost far below that.
	full := math.Pow(4, float64(n)) / 2
	if res.CostAfter >= full {
		t.Fatalf("fusion produced a dense product: cost %v >= %v", res.CostAfter, full)
	}
}

func TestFuseEmptyAndSingle(t *testing.T) {
	m := dd.New(3)
	res := Fuse(m, nil, costFn(m, 3))
	if len(res.Gates) != 0 {
		t.Fatal("empty input produced gates")
	}
	g := circuit.H(1)
	one := []dd.MEdge{ddsim.BuildGateDD(m, 3, &g)}
	res = Fuse(m, one, costFn(m, 3))
	if len(res.Gates) != 1 || res.Gates[0] != one[0] {
		t.Fatal("single gate not passed through")
	}
	if res.Fusions != 0 {
		t.Fatal("single gate counted a fusion")
	}
}

func TestKOperationsPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 5
	m := dd.New(n)
	c := randomCircuit(rng, n, 23) // not a multiple of k: tail block
	gates := gateDDs(m, c)
	for _, k := range []int{1, 2, 4, 7} {
		res := KOperations(m, gates, k, costFn(m, n))
		wantLen := (len(gates) + k - 1) / k
		if len(res.Gates) != wantLen {
			t.Fatalf("k=%d: %d fused gates, want %d", k, len(res.Gates), wantLen)
		}
		v := randAmps(rng, n)
		want := applySeq(m, n, gates, v)
		got := applySeq(m, n, res.Gates, v)
		for i := range want {
			if !approx(got[i], want[i]) {
				t.Fatalf("k=%d diverges at %d", k, i)
			}
		}
	}
}

func TestKOperationsBadK(t *testing.T) {
	m := dd.New(3)
	g := circuit.H(0)
	gates := []dd.MEdge{ddsim.BuildGateDD(m, 3, &g)}
	res := KOperations(m, gates, 0, costFn(m, 3))
	if len(res.Gates) != 1 {
		t.Fatal("k=0 not clamped")
	}
}

func TestFuseBeatsKOperationsOnMixedCircuit(t *testing.T) {
	// The DMAV-aware criterion should never end up with higher modeled
	// cost than blind k-operations fusion on the same circuit (it can
	// decline exactly the merges that hurt).
	rng := rand.New(rand.NewSource(40))
	n := 7
	m := dd.New(n)
	c := randomCircuit(rng, n, 60)
	gates := gateDDs(m, c)
	cf := costFn(m, n)
	aware := Fuse(m, gates, cf)
	kops := KOperations(m, gates, 4, cf)
	if aware.CostAfter > kops.CostAfter*1.05 {
		t.Fatalf("DMAV-aware fusion cost %v worse than k-operations %v", aware.CostAfter, kops.CostAfter)
	}
}
