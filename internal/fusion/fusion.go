// Package fusion implements gate fusion for the DMAV phase of FlatDD.
//
// Two algorithms are provided:
//
//   - Fuse: the paper's DMAV-aware greedy fusion (Algorithm 3, Section
//     3.3). It fuses a gate into the running product only when the fused
//     matrix has a lower modeled DMAV cost than executing the two DMAVs
//     sequentially — Figure 9 shows when fusion wins, Figure 10 when it
//     loses;
//   - KOperations: the k-operations baseline [100], which unconditionally
//     fuses every block of k consecutive gates through DD matrix-matrix
//     multiplication.
//
// Both operate on gate matrices in DD form; the DDMM itself is
// Manager.MulMM. The cost function is injected (the DMAV engine's
// Section 3.2.3 model) to keep this package free of a dmav dependency.
package fusion

import (
	"flatdd/internal/dd"
)

// CostFunc models the DMAV computational cost of a gate matrix
// (min(C1, C2) of Section 3.2.3).
type CostFunc func(dd.MEdge) float64

// Result describes the outcome of a fusion pass.
type Result struct {
	Gates []dd.MEdge // the fused gate sequence, application order preserved
	// CostBefore and CostAfter are the summed modeled DMAV costs of the
	// input and output sequences (DDMM construction cost is negligible by
	// Section 3.3 and not included, as in the paper).
	CostBefore float64
	CostAfter  float64
	// Fusions is the number of DDMM merges performed.
	Fusions int
}

// Fuse runs Algorithm 3 on the gate matrices of G (in application order:
// G[0] is applied to the state first). The returned sequence is also in
// application order.
func Fuse(m *dd.Manager, G []dd.MEdge, cost CostFunc) Result {
	var res Result
	if len(G) == 0 {
		return res
	}
	n := m.Qubits()
	mp := m.Identity(n) // M_p
	cp := 0.0           // C_p
	first := true
	for _, mi := range G {
		ci := cost(mi)
		res.CostBefore += ci
		mip := m.MulMM(mi, mp) // M_i · M_p applies M_p first
		cip := cost(mip)
		if !first && ci+cp < cip {
			// Sequential DMAV is cheaper: emit M_p, restart from M_i.
			res.Gates = append(res.Gates, mp)
			res.CostAfter += cp
			cp = ci
			mp = mi
		} else {
			// Fusion is cheaper (or M_p is still the initial identity).
			if !first {
				res.Fusions++
			}
			mp = mip
			cp = cip
			first = false
		}
	}
	// Algorithm 3 leaves the last running product in M_p; emit it.
	res.Gates = append(res.Gates, mp)
	res.CostAfter += cp
	return res
}

// KOperations fuses every block of k consecutive gates into one matrix via
// DDMM, the baseline of [100] evaluated in Table 2. k < 1 is treated as 1
// (no fusion).
func KOperations(m *dd.Manager, G []dd.MEdge, k int, cost CostFunc) Result {
	var res Result
	if k < 1 {
		k = 1
	}
	for _, g := range G {
		res.CostBefore += cost(g)
	}
	for start := 0; start < len(G); start += k {
		end := start + k
		if end > len(G) {
			end = len(G)
		}
		fused := G[start]
		for i := start + 1; i < end; i++ {
			fused = m.MulMM(G[i], fused)
			res.Fusions++
		}
		res.Gates = append(res.Gates, fused)
		res.CostAfter += cost(fused)
	}
	return res
}
