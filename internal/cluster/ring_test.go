package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	names := []string{"a", "b", "c"}
	r1 := newRing(names, 64)
	r2 := newRing(names, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("circuit-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %q: owners differ across identical rings", key)
		}
	}
}

func TestRingPreferenceDistinct(t *testing.T) {
	r := newRing([]string{"a", "b", "c"}, 64)
	pref := r.Preference("some-circuit-hash", 0)
	if len(pref) != 3 {
		t.Fatalf("want all 3 replicas in preference list, got %v", pref)
	}
	seen := map[string]bool{}
	for _, name := range pref {
		if seen[name] {
			t.Fatalf("duplicate replica %q in preference list %v", name, pref)
		}
		seen[name] = true
	}
}

func TestRingBalance(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r := newRing(names, 64)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, name := range names {
		frac := float64(counts[name]) / keys
		// Perfect balance is 0.25; 64 vnodes keeps every replica well
		// within a 2x band of the mean.
		if frac < 0.125 || frac > 0.5 {
			t.Errorf("replica %s owns %.1f%% of keys (counts %v)", name, 100*frac, counts)
		}
	}
}

// TestRingStability is the cache-locality property: removing one replica
// (as failover does by skipping it) must move only that replica's keys —
// every key owned by a survivor keeps its owner.
func TestRingStability(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	full := newRing(names, 64)
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := full.Owner(key)
		// Simulate replica "b" dying: walk the preference list skipping b,
		// exactly as routeSubmit does.
		var failoverOwner string
		for _, cand := range full.Preference(key, 0) {
			if cand != "b" {
				failoverOwner = cand
				break
			}
		}
		if owner != "b" && failoverOwner != owner {
			t.Fatalf("key %q moved from %s to %s although %s survived", key, owner, failoverOwner, owner)
		}
		if owner == "b" && failoverOwner == "b" {
			t.Fatalf("key %q still routed to dead replica b", key)
		}
	}
}

func TestRingSingleReplica(t *testing.T) {
	r := newRing([]string{"solo"}, 64)
	if got := r.Owner("anything"); got != "solo" {
		t.Fatalf("single-replica ring routed to %q", got)
	}
	if pref := r.Preference("anything", 5); len(pref) != 1 {
		t.Fatalf("single-replica preference list: %v", pref)
	}
}

func TestRingEmpty(t *testing.T) {
	r := newRing(nil, 64)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring returned owner %q", got)
	}
}
