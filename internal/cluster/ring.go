package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over replica names. Each replica owns
// vnodes points on a 64-bit circle; a key's owner is the replica of the
// first point at or after the key's hash (wrapping). Preference returns
// the distinct replicas in ring-walk order, so when the first choice is
// dead its hash range falls to the next replica on the ring — and only
// that range moves, which is what preserves the per-replica result-cache
// locality PR 9 built (the same canonical circuit hash keeps landing on
// the same replica across unrelated membership changes).
//
// The ring is immutable after build: membership transitions do not
// rebuild it. Liveness filtering happens at lookup time (the coordinator
// walks the preference list and takes the first routable replica), so a
// replica flapping between suspect and alive never reshuffles ranges it
// still owns.
type ring struct {
	points []ringPoint // sorted by hash
	names  []string    // distinct replica names, build order
}

type ringPoint struct {
	hash    uint64
	replica string
}

// defaultVNodes balances range evenness against lookup cost: with 64
// virtual nodes per replica the largest range is within a few percent of
// the mean for small fleets.
const defaultVNodes = 64

func newRing(names []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = defaultVNodes
	}
	r := &ring{
		points: make([]ringPoint, 0, len(names)*vnodes),
		names:  append([]string(nil), names...),
	}
	for _, name := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:    hashKey(name + "#" + strconv.Itoa(i)),
				replica: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic order for (vanishingly unlikely) hash collisions.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// hashKey maps an arbitrary key (a canonical circuit hash, a vnode
// label) onto the ring circle. Raw FNV-64a clusters badly on the short,
// near-identical vnode labels ("a#0", "a#1", ...), leaving some
// replicas with several-times-average arcs, so the FNV value is run
// through a splitmix64-style finalizer to spread the points uniformly.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //nolint:errcheck // fnv never fails
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Preference returns up to max distinct replicas for a key, in ring-walk
// order starting at the key's owner. max <= 0 returns all replicas.
func (r *ring) Preference(key string, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.names) {
		max = len(r.names)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// Owner returns the key's first-choice replica.
func (r *ring) Owner(key string) string {
	pref := r.Preference(key, 1)
	if len(pref) == 0 {
		return ""
	}
	return pref[0]
}
