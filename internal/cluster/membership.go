package cluster

import (
	"context"
	"time"

	"flatdd/internal/serve/client"
)

// Replica health states. The state machine is driven by the periodic
// /healthz probes: every successful probe resets a replica to alive;
// consecutive failures walk it alive → suspect (after SuspectAfter) →
// dead (after DeadAfter). Only the suspect→dead edge triggers failover —
// a suspect replica keeps its hash ranges and its jobs, so a transient
// stall (GC pause, one dropped probe) never reshuffles the cluster.
const (
	ReplicaAlive   = "alive"
	ReplicaSuspect = "suspect"
	ReplicaDead    = "dead"
)

// Transition is one membership state change, kept per replica for the
// /healthz view (bounded ring of the most recent maxTransitions).
type Transition struct {
	From string    `json:"from"`
	To   string    `json:"to"`
	At   time.Time `json:"at"`
	// Err is the probe error that drove a downward transition ("" on
	// recovery).
	Err string `json:"err,omitempty"`
}

const maxTransitions = 16

// replica is the coordinator's record of one serve process. Probe/state
// fields are guarded by the coordinator's mu; the client and breaker are
// internally synchronized.
type replica struct {
	name   string
	url    string
	client *client.Client
	br     *breaker

	state       string
	fails       int // consecutive probe failures
	probes      int64
	probeFails  int64
	lastProbe   time.Time
	lastErr     string
	transitions []Transition
}

// transitionLocked records a state change. Caller holds Coordinator.mu.
func (r *replica) transitionLocked(to, errMsg string) Transition {
	tr := Transition{From: r.state, To: to, At: time.Now(), Err: errMsg}
	r.state = to
	r.transitions = append(r.transitions, tr)
	if len(r.transitions) > maxTransitions {
		r.transitions = r.transitions[len(r.transitions)-maxTransitions:]
	}
	return tr
}

// probeLoop drives the membership state machine until Shutdown.
func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll probes every replica concurrently (one slow replica must not
// delay the others' liveness verdicts) and applies the state machine.
func (c *Coordinator) probeAll() {
	type verdict struct {
		r   *replica
		err error
	}
	results := make(chan verdict, len(c.order))
	for _, name := range c.order {
		r := c.replicas[name]
		go func() {
			results <- verdict{r, c.probe(r)}
		}()
	}
	for range c.order {
		v := <-results
		c.applyProbe(v.r, v.err)
	}
}

// probe performs one bounded /healthz round trip. The replica-down fault
// point intercepts it first, so chaos tests can drive membership without
// killing processes.
func (c *Coordinator) probe(r *replica) error {
	if err := c.downErr(r); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	_, err := r.client.Health(ctx)
	return err
}

// applyProbe advances the state machine with one probe result and fires
// failover on the suspect→dead edge.
func (c *Coordinator) applyProbe(r *replica, err error) {
	var dead *replica
	c.mu.Lock()
	r.probes++
	r.lastProbe = time.Now()
	c.met.probes.Inc()
	if err == nil {
		r.fails = 0
		r.lastErr = ""
		if r.state != ReplicaAlive {
			tr := r.transitionLocked(ReplicaAlive, "")
			c.log.Info("replica recovered", "replica", r.name, "from", tr.From)
			c.met.revived.Inc()
		}
	} else {
		r.fails++
		r.lastErr = err.Error()
		c.met.probeFails.Inc()
		r.probeFails++
		switch {
		case r.fails >= c.cfg.DeadAfter && r.state != ReplicaDead:
			r.transitionLocked(ReplicaDead, err.Error())
			c.log.Warn("replica dead", "replica", r.name, "failures", r.fails, "error", err)
			dead = r
		case r.fails >= c.cfg.SuspectAfter && r.state == ReplicaAlive:
			r.transitionLocked(ReplicaSuspect, err.Error())
			c.log.Warn("replica suspect", "replica", r.name, "failures", r.fails, "error", err)
		}
	}
	c.updateMembershipGaugesLocked()
	c.mu.Unlock()
	if dead != nil {
		c.failover(dead.name)
	}
}

// updateMembershipGaugesLocked refreshes the cluster.replicas.* gauges
// and each replica's per-replica state gauge (0 alive, 1 suspect,
// 2 dead). Caller holds mu.
func (c *Coordinator) updateMembershipGaugesLocked() {
	var alive, suspect, dead int64
	for _, name := range c.order {
		r := c.replicas[name]
		v := int64(0)
		switch r.state {
		case ReplicaAlive:
			alive++
		case ReplicaSuspect:
			suspect++
			v = 1
		case ReplicaDead:
			dead++
			v = 2
		}
		c.reg.Gauge("cluster.replica." + r.name + ".state").Set(v)
	}
	c.met.alive.Set(alive)
	c.met.suspect.Set(suspect)
	c.met.dead.Set(dead)
}

// routableLocked reports whether the coordinator may send work to a
// replica right now. Caller holds mu.
func (r *replica) routableLocked() bool { return r.state != ReplicaDead }
