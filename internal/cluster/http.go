package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"flatdd/internal/obs"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// maxBodyBytes bounds coordinator submit bodies, mirroring the serve
// layer's default.
const maxBodyBytes = 1 << 20

// Handler returns the coordinator's HTTP mux. It mirrors the replica
// v1 surface — same routes, same JobView/JobList/TenantView bodies,
// same error envelope — so the typed client drives a coordinator and a
// single replica identically. Job ids are coordinator-scoped ("cj-...")
// and stable across failover; every view carries the executing replica
// in its Replica field.
//
//	POST   /v1/jobs             — route by canonical circuit hash, forward
//	GET    /v1/jobs             — cached views, newest first (?state=, ?tenant=, ?limit=)
//	GET    /v1/jobs/{id}        — live proxy, cached view when the replica is unreachable
//	GET    /v1/jobs/{id}/result — relay (cached byte-for-byte after first fetch)
//	DELETE /v1/jobs/{id}        — cancel proxy
//	GET    /v1/tenants          — fleet-merged per-tenant accounting
//	GET    /healthz             — membership: per-replica state, breaker, transitions
//	/debug/*                    — cluster.* metrics, expvar, pprof (internal/obs)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", c.handleCancel)
	mux.HandleFunc("GET /v1/tenants", c.handleTenants)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.Handle("/debug/", obs.Mux(c.reg))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": {\n    \"code\": %q,\n    \"message\": %q\n  }\n}\n",
			serve.CodeInternal, "encode response: "+err.Error())
		return
	}
	w.WriteHeader(status)
	w.Write(append(b, '\n')) //nolint:errcheck // best-effort HTTP write
}

// writeAPIError relays an *APIError through the shared envelope writer,
// so a replica rejection crossing the coordinator keeps its status,
// code, reason and retry hint.
func writeAPIError(w http.ResponseWriter, e *client.APIError) {
	retrySec := 0
	if e.RetryAfter > 0 {
		retrySec = int((e.RetryAfter + time.Second - 1) / time.Second)
	}
	serve.WriteError(w, e.Status, e.Message, e.Reason, retrySec)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(serve.TenantHeader)
	if tenant == "" {
		tenant = serve.DefaultTenant
	}
	var req serve.SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "bad request body: "+err.Error(), "invalid", 0)
		return
	}
	v, replayed, tp, err := c.Submit(&req, tenant, r.Header.Get("Idempotency-Key"),
		r.Header.Get("traceparent"))
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			writeAPIError(w, apiErr)
			return
		}
		serve.WriteError(w, http.StatusInternalServerError, err.Error(), "internal", 0)
		return
	}
	if tp != "" {
		w.Header().Set("traceparent", tp)
	}
	status := http.StatusAccepted
	if replayed {
		w.Header().Set("Idempotency-Replayed", "true")
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			serve.WriteError(w, http.StatusBadRequest, "bad limit "+s, "invalid_limit", 0)
			return
		}
		limit = n
	}
	views := c.Jobs(r.URL.Query().Get("state"), r.URL.Query().Get("tenant"), limit)
	writeJSON(w, http.StatusOK, serve.JobList{Jobs: views})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	v, ok := c.Job(r.PathValue("id"))
	if !ok {
		serve.WriteError(w, http.StatusNotFound, "no such job", "unknown_id", 0)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	body, apiErr := c.Result(r.PathValue("id"))
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // best-effort HTTP write
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, apiErr := c.Cancel(r.PathValue("id"))
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": c.Tenants()})
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	replicas := c.Membership()
	alive := 0
	for _, r := range replicas {
		if r.State != ReplicaDead {
			alive++
		}
	}
	status := "ok"
	code := http.StatusOK
	if alive == 0 {
		// No routable replicas: the coordinator is up but cannot serve.
		status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	c.mu.Lock()
	jobs := len(c.jobs)
	c.mu.Unlock()
	writeJSON(w, code, map[string]any{
		"status":   status,
		"role":     "coordinator",
		"replicas": replicas,
		"alive":    alive,
		"jobs":     jobs,
	})
}
