// Package cluster is the fault-tolerant front of a flatdd-serve replica
// fleet (DESIGN.md §14). A Coordinator routes each submission to a
// replica by consistent-hashing the canonical circuit hash — the same
// key the serve layer's result cache and coalescer use — so repeat
// submissions of a circuit keep landing on the replica that already
// holds its cached result. Membership is health-checked (periodic
// /healthz probes drive an alive → suspect → dead state machine), every
// coordinator→replica call goes through capped exponential backoff with
// jitter and a per-replica circuit breaker, and when a replica dies its
// hash range falls to the ring successors and its unacknowledged jobs
// are re-submitted there under their idempotency keys — at-least-once
// execution with replay-safe dedup, so an acknowledged job is never
// lost to a single replica failure.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"flatdd/internal/faults"
	"flatdd/internal/obs"
	"flatdd/internal/serve"
	"flatdd/internal/serve/client"
)

// ReplicaSpec names one serve replica and its base URL.
type ReplicaSpec struct {
	Name string
	URL  string
}

// Config parameterizes a Coordinator. The zero value of every field is
// replaced by the documented default.
type Config struct {
	// Replicas is the static fleet (at least one). Membership is dynamic
	// only in liveness: replicas join and leave the routable set as the
	// prober moves them between alive/suspect and dead.
	Replicas []ReplicaSpec

	// VNodes is the number of consistent-hash points per replica
	// (default 64).
	VNodes int

	// ProbeInterval (default 2s) is the health-probe period; ProbeTimeout
	// (default 1s) bounds each probe round trip.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// SuspectAfter (default 1) and DeadAfter (default 3) are the
	// consecutive-probe-failure thresholds of the membership state
	// machine. SuspectAfter must be <= DeadAfter.
	SuspectAfter int
	DeadAfter    int

	// RPCTimeout (default 10s) bounds each coordinator→replica call
	// attempt (probes use ProbeTimeout instead).
	RPCTimeout time.Duration
	// MaxRetries (default 3) is the per-call retry budget for
	// replica-level failures; attempts back off RetryBaseDelay (default
	// 25ms) doubling up to RetryMaxDelay (default 1s), each sleep
	// jittered up to +50%.
	MaxRetries     int
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// BreakerThreshold (default 5) consecutive replica-level failures
	// open a replica's circuit breaker; after BreakerCooldown (default
	// 5s) it goes half-open and admits one probe call.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Metrics, Faults and Logger follow the serve.Config conventions:
	// all optional, nil-safe.
	Metrics *obs.Registry
	Faults  *faults.Registry
	Logger  *slog.Logger

	// HTTPClient is the transport for replica calls (default
	// http.DefaultClient); tests substitute httptest transports.
	HTTPClient *http.Client
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.VNodes <= 0 {
		out.VNodes = defaultVNodes
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 2 * time.Second
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = time.Second
	}
	if out.SuspectAfter <= 0 {
		out.SuspectAfter = 1
	}
	if out.DeadAfter <= 0 {
		out.DeadAfter = 3
	}
	if out.SuspectAfter > out.DeadAfter {
		out.SuspectAfter = out.DeadAfter
	}
	if out.RPCTimeout <= 0 {
		out.RPCTimeout = 10 * time.Second
	}
	if out.MaxRetries < 0 {
		out.MaxRetries = 0
	} else if out.MaxRetries == 0 {
		out.MaxRetries = 3
	}
	if out.RetryBaseDelay <= 0 {
		out.RetryBaseDelay = 25 * time.Millisecond
	}
	if out.RetryMaxDelay <= 0 {
		out.RetryMaxDelay = time.Second
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 5
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 5 * time.Second
	}
	if out.Logger == nil {
		out.Logger = slog.New(slog.DiscardHandler)
	}
	if out.HTTPClient == nil {
		out.HTTPClient = http.DefaultClient
	}
	return out
}

// cjob is the coordinator's record of one accepted submission. All
// fields are guarded by Coordinator.mu.
type cjob struct {
	id          string // coordinator-scoped id ("cj-000001")
	tenant      string
	req         *serve.SubmitRequest
	traceparent string
	idemKey     string // replay key on the replicas; never empty
	hash        string // canonical circuit hash = routing key
	submitted   time.Time

	replica   string // current owning replica
	remoteID  string // job id on that replica
	resubmits int    // failover re-submissions

	view     serve.JobView // last view observed from a replica
	terminal bool          // view reached done/failed/canceled
	result   []byte        // cached result JSON once fetched
}

// metrics is the coordinator's handle set, resolved once at New.
type metrics struct {
	probes, probeFails, revived *obs.Counter
	alive, suspect, dead        *obs.Gauge

	submits, rejects   *obs.Counter
	rpcCalls, rpcFails *obs.Counter
	rpcRetries         *obs.Counter
	breakerOpens       *obs.Counter
	breakerShed        *obs.Counter
	failovers          *obs.Counter
	resubmits          *obs.Counter
	resubmitLost       *obs.Counter
}

// Coordinator fronts the replica fleet. Construct with New, serve
// Handler(), stop with Shutdown.
type Coordinator struct {
	cfg  Config
	reg  *obs.Registry
	flts *faults.Registry
	log  *slog.Logger
	met  metrics

	ring     *ring
	replicas map[string]*replica
	order    []string // replica names, config order

	mu      sync.Mutex
	jobs    map[string]*cjob
	byIdem  map[string]*cjob // client idempotency key → job
	jobSeq  int64
	nonce   string // per-process prefix of generated idempotency keys
	stopped bool

	stop    chan struct{}
	probeWG sync.WaitGroup
}

// New builds a Coordinator and starts its probe loop.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: no replicas configured")
	}
	c := &Coordinator{
		cfg:      cfg,
		reg:      cfg.Metrics,
		flts:     cfg.Faults,
		log:      cfg.Logger,
		replicas: make(map[string]*replica, len(cfg.Replicas)),
		jobs:     make(map[string]*cjob),
		byIdem:   make(map[string]*cjob),
		nonce:    fmt.Sprintf("%08x", rand.Uint32()),
		stop:     make(chan struct{}),
	}
	for _, spec := range cfg.Replicas {
		if spec.Name == "" || spec.URL == "" {
			return nil, fmt.Errorf("cluster: replica needs name and url (got %q=%q)", spec.Name, spec.URL)
		}
		if _, dup := c.replicas[spec.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", spec.Name)
		}
		c.replicas[spec.Name] = &replica{
			name:   spec.Name,
			url:    spec.URL,
			client: client.New(spec.URL, client.WithHTTPClient(cfg.HTTPClient)),
			br:     newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			state:  ReplicaAlive,
		}
		c.order = append(c.order, spec.Name)
	}
	c.ring = newRing(c.order, cfg.VNodes)
	c.met = metrics{
		probes:       c.reg.Counter("cluster.probe.total"),
		probeFails:   c.reg.Counter("cluster.probe.failures"),
		revived:      c.reg.Counter("cluster.replica.revived"),
		alive:        c.reg.Gauge("cluster.replicas.alive"),
		suspect:      c.reg.Gauge("cluster.replicas.suspect"),
		dead:         c.reg.Gauge("cluster.replicas.dead"),
		submits:      c.reg.Counter("cluster.submit.total"),
		rejects:      c.reg.Counter("cluster.submit.rejected"),
		rpcCalls:     c.reg.Counter("cluster.rpc.calls"),
		rpcFails:     c.reg.Counter("cluster.rpc.failures"),
		rpcRetries:   c.reg.Counter("cluster.rpc.retries"),
		breakerOpens: c.reg.Counter("cluster.breaker.opens"),
		breakerShed:  c.reg.Counter("cluster.breaker.shed"),
		failovers:    c.reg.Counter("cluster.failover.total"),
		resubmits:    c.reg.Counter("cluster.failover.resubmitted"),
		resubmitLost: c.reg.Counter("cluster.failover.lost"),
	}
	c.mu.Lock()
	c.updateMembershipGaugesLocked()
	c.mu.Unlock()
	c.probeWG.Add(1)
	go c.probeLoop()
	return c, nil
}

// Shutdown stops the probe loop. Replica servers are not owned by the
// coordinator and keep running.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stop)
	c.probeWG.Wait()
}

// Registry returns the coordinator's metrics registry (nil if none).
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// errBreakerOpen marks a call shed by an open circuit breaker.
var errBreakerOpen = errors.New("cluster: circuit breaker open")

// faultErr consults an injection point under both its bare catalog name
// and its per-replica "<point>.<name>" variant, so chaos tests can
// target one replica or the whole fleet.
func (c *Coordinator) faultErr(point string, r *replica) error {
	if err := c.flts.Point(point).Err(); err != nil {
		return err
	}
	return c.flts.Point(point + "." + r.name).Err()
}

// downErr is the cluster.replica.down hook: while armed the replica is
// unreachable to probes and calls alike, without killing the process.
func (c *Coordinator) downErr(r *replica) error {
	if err := c.faultErr(faults.ClusterReplicaDown, r); err != nil {
		return fmt.Errorf("replica %s down: %w", r.name, err)
	}
	return nil
}

// call runs one coordinator→replica operation with the full resilience
// stack: fault hooks, circuit breaker, bounded per-attempt timeout, and
// capped exponential backoff with jitter across replica-level failures.
// An *APIError return means the replica answered (an HTTP rejection is
// not a replica failure): it counts as breaker success and is returned
// to the caller unretried.
func (c *Coordinator) call(r *replica, op string, fn func(ctx context.Context) error) error {
	if !r.br.Allow(time.Now()) {
		c.met.breakerShed.Inc()
		return fmt.Errorf("%w: replica %s", errBreakerOpen, r.name)
	}
	lat := c.reg.Histogram("cluster.replica."+r.name+".rpc.ns", obs.DurationBuckets())
	var err error
	for attempt := 0; ; attempt++ {
		c.met.rpcCalls.Inc()
		start := time.Now()
		err = c.attempt(r, fn)
		lat.Observe(time.Since(start).Nanoseconds())
		var apiErr *client.APIError
		if err == nil || errors.As(err, &apiErr) {
			r.br.Success()
			return err
		}
		c.met.rpcFails.Inc()
		if r.br.Failure(time.Now()) {
			c.met.breakerOpens.Inc()
			c.log.Warn("circuit breaker opened", "replica", r.name, "op", op, "error", err)
			return err
		}
		if attempt >= c.cfg.MaxRetries {
			return err
		}
		c.met.rpcRetries.Inc()
		delay := c.cfg.RetryBaseDelay << attempt
		if delay > c.cfg.RetryMaxDelay || delay <= 0 {
			delay = c.cfg.RetryMaxDelay
		}
		delay += time.Duration(rand.Int63n(int64(delay)/2 + 1))
		select {
		case <-c.stop:
			return err
		case <-time.After(delay):
		}
		// The retry is a fresh wire attempt against the same replica; the
		// breaker must admit it (it already absorbed the failure above).
		if !r.br.Allow(time.Now()) {
			c.met.breakerShed.Inc()
			return fmt.Errorf("%w: replica %s", errBreakerOpen, r.name)
		}
	}
}

// attempt runs fn once under the RPC timeout, after the fault hooks.
func (c *Coordinator) attempt(r *replica, fn func(ctx context.Context) error) error {
	if err := c.downErr(r); err != nil {
		return err
	}
	if err := c.faultErr(faults.ClusterRPCTimeout, r); err != nil {
		return fmt.Errorf("rpc timeout (injected): %w", err)
	}
	if f := c.flts.Point(faults.ClusterRPCSlow).Fire(); f != nil && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
	defer cancel()
	return fn(ctx)
}

// Submit routes and forwards one submission. The returned view carries
// the coordinator-scoped job id; replayed mirrors the idempotency-replay
// flag (true when idemKey matched an earlier coordinator submission).
// A non-nil *client.APIError return relays a replica's own rejection.
func (c *Coordinator) Submit(req *serve.SubmitRequest, tenant, idemKey, traceparent string) (serve.JobView, bool, string, error) {
	circ, err := serve.BuildCircuit(req)
	if err != nil {
		c.met.rejects.Inc()
		return serve.JobView{}, false, "", &client.APIError{
			Status: http.StatusBadRequest, Code: serve.CodeInvalidRequest,
			Message: err.Error(), Reason: "bad_circuit",
		}
	}
	hash := circ.Hash()

	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		c.met.rejects.Inc()
		return serve.JobView{}, false, "", &client.APIError{
			Status: http.StatusServiceUnavailable, Code: serve.CodeUnavailable,
			Message: "coordinator shutting down", Reason: "draining", RetryAfter: time.Second,
		}
	}
	if idemKey != "" {
		if j := c.byIdem[idemKey]; j != nil {
			v := c.clientViewLocked(j)
			c.mu.Unlock()
			return v, true, j.traceparent, nil
		}
	}
	c.jobSeq++
	j := &cjob{
		id:          fmt.Sprintf("cj-%06d", c.jobSeq),
		tenant:      tenant,
		req:         req,
		traceparent: traceparent,
		idemKey:     idemKey,
		hash:        hash,
		submitted:   time.Now(),
	}
	if j.idemKey == "" {
		// Failover re-submission needs a replay key even when the caller
		// sent none; a coordinator-generated one is never exposed.
		j.idemKey = "cluster/" + c.nonce + "/" + j.id
	}
	c.mu.Unlock()

	view, tp, err := c.routeSubmit(j, nil)
	if err != nil {
		c.met.rejects.Inc()
		return serve.JobView{}, false, "", err
	}
	c.met.submits.Inc()

	c.mu.Lock()
	c.jobs[j.id] = j
	if idemKey != "" {
		c.byIdem[idemKey] = j
	}
	if tp != "" {
		j.traceparent = tp
	}
	out := c.clientViewLocked(j)
	c.mu.Unlock()
	c.log.Info("job routed", "job", j.id, "replica", view.Replica, "remote", view.ID,
		"tenant", tenant, "hash", hash[:min(12, len(hash))])
	return out, false, tp, nil
}

// routeSubmit walks the job's ring preference list and submits to the
// first replica that accepts it, skipping dead replicas, open breakers
// and unreachable/draining replicas. exclude names replicas to skip
// outright (the failed replica during failover). On success the job's
// replica/remoteID/view are updated under mu.
func (c *Coordinator) routeSubmit(j *cjob, exclude map[string]bool) (serve.JobView, string, error) {
	var lastErr error
	for _, name := range c.ring.Preference(j.hash, 0) {
		if exclude[name] {
			continue
		}
		r := c.replicas[name]
		c.mu.Lock()
		routable := r.routableLocked()
		tenant, idemKey, tp := j.tenant, j.idemKey, j.traceparent
		c.mu.Unlock()
		if !routable {
			continue
		}
		var resp *client.SubmitResponse
		err := c.call(r, "submit", func(ctx context.Context) error {
			var err error
			opts := []client.SubmitOption{
				client.WithIdempotencyKey(idemKey),
				client.WithSubmitTenant(tenant),
			}
			if tp != "" {
				opts = append(opts, client.WithTraceParent(tp))
			}
			resp, err = r.client.Submit(ctx, j.req, opts...)
			return err
		})
		if err == nil {
			c.mu.Lock()
			j.replica = r.name
			j.remoteID = resp.Job.ID
			j.view = resp.Job
			j.view.Replica = r.name
			j.terminal = isTerminal(resp.Job.State)
			v := j.view
			c.mu.Unlock()
			return v, resp.TraceParent, nil
		}
		lastErr = err
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			// The replica answered. 503 means it is draining or overloaded —
			// the next ring candidate may accept; everything else (quota,
			// validation) is an authoritative verdict to relay as-is.
			if apiErr.Code != serve.CodeUnavailable {
				return serve.JobView{}, "", err
			}
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no routable replicas")
	}
	return serve.JobView{}, "", &client.APIError{
		Status: http.StatusServiceUnavailable, Code: serve.CodeUnavailable,
		Message: fmt.Sprintf("no replica accepted the job: %v", lastErr),
		Reason:  "cluster_unavailable", RetryAfter: time.Second,
	}
}

// failover re-routes the hash range of a dead replica by re-submitting
// every non-terminal job it owned to the ring successors, under the
// jobs' idempotency keys (a replica that already has the job replays it
// instead of double-running).
func (c *Coordinator) failover(deadName string) {
	c.met.failovers.Inc()
	c.mu.Lock()
	var victims []*cjob
	for _, j := range c.jobs {
		if j.replica == deadName && !j.terminal {
			victims = append(victims, j)
		}
	}
	c.mu.Unlock()
	c.log.Warn("failover", "replica", deadName, "jobs", len(victims))
	exclude := map[string]bool{deadName: true}
	for _, j := range victims {
		c.mu.Lock()
		// Re-check under the lock: a status poll may have seen a terminal
		// state, or a concurrent failover may have moved the job already.
		skip := j.terminal || j.replica != deadName
		c.mu.Unlock()
		if skip {
			continue
		}
		c.mu.Lock()
		j.resubmits++
		c.mu.Unlock()
		if _, _, err := c.routeSubmit(j, exclude); err != nil {
			// No survivor accepted: the job fails terminally rather than
			// dangling on a dead replica forever.
			c.mu.Lock()
			j.terminal = true
			j.view.State = serve.StateFailed
			j.view.Error = fmt.Sprintf("replica %s died and no survivor accepted the job: %v", deadName, err)
			j.view.Reason = "cluster_unavailable"
			c.mu.Unlock()
			c.met.resubmitLost.Inc()
			c.log.Error("failover resubmit failed", "job", j.id, "error", err)
			continue
		}
		c.met.resubmits.Inc()
		c.log.Info("job resubmitted", "job", j.id, "from", deadName, "to", j.replica)
	}
}

// Job returns a job's current view: a live proxy to its replica when
// reachable, the cached last-known view otherwise (a dead replica makes
// a job stale, never missing). Terminal views are always served from
// cache — observed completion never regresses.
func (c *Coordinator) Job(id string) (serve.JobView, bool) {
	c.mu.Lock()
	j := c.jobs[id]
	if j == nil {
		c.mu.Unlock()
		return serve.JobView{}, false
	}
	if j.terminal {
		v := c.clientViewLocked(j)
		c.mu.Unlock()
		return v, true
	}
	r := c.replicas[j.replica]
	remoteID := j.remoteID
	c.mu.Unlock()

	var rv *serve.JobView
	err := c.call(r, "status", func(ctx context.Context) error {
		var err error
		rv, err = r.client.Job(ctx, remoteID)
		return err
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil && j.remoteID == remoteID {
		j.view = *rv
		j.view.Replica = r.name
		if isTerminal(rv.State) {
			j.terminal = true
		}
	}
	// On error (replica unreachable, or the replica lost the job across a
	// restart) the cached view stands; the prober/failover path is the
	// one that moves the job, so a poll burst never double-resubmits.
	return c.clientViewLocked(j), true
}

// Result fetches a done job's result, serving the coordinator's cached
// copy when the owning replica has since become unreachable.
func (c *Coordinator) Result(id string) ([]byte, *client.APIError) {
	c.mu.Lock()
	j := c.jobs[id]
	if j == nil {
		c.mu.Unlock()
		return nil, &client.APIError{Status: http.StatusNotFound, Code: serve.CodeNotFound,
			Message: "no such job", Reason: "unknown_id"}
	}
	if j.result != nil {
		res := j.result
		c.mu.Unlock()
		return res, nil
	}
	r := c.replicas[j.replica]
	remoteID := j.remoteID
	c.mu.Unlock()

	var body []byte
	err := c.call(r, "result", func(ctx context.Context) error {
		var err error
		body, err = r.client.ResultRaw(ctx, remoteID)
		return err
	})
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			if apiErr.Status == http.StatusNotFound {
				// The replica restarted and lost the job before its result
				// ever crossed the coordinator. The job was acknowledged, so
				// it must not be lost: re-execute it under its idempotency
				// key and ask the caller to come back.
				return nil, c.reexecute(j, remoteID)
			}
			return nil, apiErr
		}
		return nil, &client.APIError{Status: http.StatusServiceUnavailable, Code: serve.CodeUnavailable,
			Message: fmt.Sprintf("replica %s unreachable: %v", r.name, err),
			Reason:  "replica_unreachable", RetryAfter: time.Second}
	}
	c.mu.Lock()
	if j.remoteID == remoteID {
		j.result = body
	}
	c.mu.Unlock()
	return body, nil
}

// reexecute re-routes a job whose replica lost it (a restart wiped the
// remote state while the result was still owed). The fresh submission
// replays under the job's idempotency key; the caller gets a retryable
// 503 and picks the result up after the re-run.
func (c *Coordinator) reexecute(j *cjob, staleRemoteID string) *client.APIError {
	c.mu.Lock()
	if j.remoteID != staleRemoteID || j.result != nil {
		// A concurrent caller already moved or satisfied the job.
		c.mu.Unlock()
		return &client.APIError{Status: http.StatusServiceUnavailable, Code: serve.CodeUnavailable,
			Message: "job is re-executing; retry", Reason: "reexecuting", RetryAfter: time.Second}
	}
	j.terminal = false
	j.resubmits++
	c.mu.Unlock()
	if _, _, err := c.routeSubmit(j, nil); err != nil {
		c.met.resubmitLost.Inc()
		return &client.APIError{Status: http.StatusServiceUnavailable, Code: serve.CodeUnavailable,
			Message: fmt.Sprintf("replica lost the job and re-submission failed: %v", err),
			Reason:  "cluster_unavailable", RetryAfter: time.Second}
	}
	c.met.resubmits.Inc()
	c.log.Warn("job re-executed after replica state loss", "job", j.id, "to", j.replica)
	return &client.APIError{Status: http.StatusServiceUnavailable, Code: serve.CodeUnavailable,
		Message: "replica lost the job; re-executing", Reason: "reexecuting", RetryAfter: time.Second}
}

// Cancel forwards a cancellation to the job's replica.
func (c *Coordinator) Cancel(id string) (serve.JobView, *client.APIError) {
	c.mu.Lock()
	j := c.jobs[id]
	if j == nil {
		c.mu.Unlock()
		return serve.JobView{}, &client.APIError{Status: http.StatusNotFound, Code: serve.CodeNotFound,
			Message: "no such job", Reason: "unknown_id"}
	}
	if j.terminal {
		v := c.clientViewLocked(j)
		c.mu.Unlock()
		return v, nil
	}
	r := c.replicas[j.replica]
	remoteID := j.remoteID
	c.mu.Unlock()

	var rv *serve.JobView
	err := c.call(r, "cancel", func(ctx context.Context) error {
		var err error
		rv, err = r.client.Cancel(ctx, remoteID)
		return err
	})
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			return serve.JobView{}, apiErr
		}
		return serve.JobView{}, &client.APIError{Status: http.StatusServiceUnavailable, Code: serve.CodeUnavailable,
			Message: fmt.Sprintf("replica %s unreachable: %v", r.name, err),
			Reason:  "replica_unreachable", RetryAfter: time.Second}
	}
	c.mu.Lock()
	if j.remoteID == remoteID {
		j.view = *rv
		j.view.Replica = r.name
		if isTerminal(rv.State) {
			j.terminal = true
		}
	}
	v := c.clientViewLocked(j)
	c.mu.Unlock()
	return v, nil
}

// Jobs renders the coordinator's cached views, newest first, filtered
// by state and tenant ("" = all), limited to limit entries (<=0 = all).
func (c *Coordinator) Jobs(state, tenant string, limit int) []serve.JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]*cjob, 0, len(c.jobs))
	for _, j := range c.jobs {
		if state != "" && j.view.State != state {
			continue
		}
		if tenant != "" && j.tenant != tenant {
			continue
		}
		ids = append(ids, j)
	}
	// Newest first by coordinator id (ids are zero-padded and monotonic).
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k].id > ids[k-1].id; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]serve.JobView, len(ids))
	for i, j := range ids {
		out[i] = c.clientViewLocked(j)
	}
	return out
}

// clientViewLocked renders the coordinator-facing view of a job: the
// cached replica view re-keyed to the coordinator id. Caller holds mu.
func (c *Coordinator) clientViewLocked(j *cjob) serve.JobView {
	v := j.view
	v.ID = j.id
	v.Tenant = j.tenant
	if v.State == "" {
		v.State = serve.StateQueued
	}
	if v.SubmittedAt.IsZero() {
		v.SubmittedAt = j.submitted
	}
	if j.resubmits > 0 && v.Attempts < j.resubmits+1 {
		v.Attempts = j.resubmits + 1
	}
	return v
}

func isTerminal(state string) bool {
	switch state {
	case serve.StateDone, serve.StateFailed, serve.StateCanceled:
		return true
	}
	return false
}

// ReplicaView is one replica's row in the coordinator's /healthz.
type ReplicaView struct {
	Name         string       `json:"name"`
	URL          string       `json:"url"`
	State        string       `json:"state"`
	Breaker      string       `json:"breaker"`
	BreakerOpens int64        `json:"breaker_opens,omitempty"`
	Probes       int64        `json:"probes"`
	ProbeFails   int64        `json:"probe_failures,omitempty"`
	LastError    string       `json:"last_error,omitempty"`
	Transitions  []Transition `json:"transitions,omitempty"`
}

// Membership renders the fleet's health for /healthz.
func (c *Coordinator) Membership() []ReplicaView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ReplicaView, 0, len(c.order))
	for _, name := range c.order {
		r := c.replicas[name]
		bs, opens := r.br.State()
		out = append(out, ReplicaView{
			Name:         r.name,
			URL:          r.url,
			State:        r.state,
			Breaker:      bs.String(),
			BreakerOpens: opens,
			Probes:       r.probes,
			ProbeFails:   r.probeFails,
			LastError:    r.lastErr,
			Transitions:  append([]Transition(nil), r.transitions...),
		})
	}
	return out
}

// Tenants merges the per-tenant accounting of every reachable replica
// (rows summed by tenant name; gauges like Queued/Running add, quotas
// and weight take the first replica's value — the fleet is homogeneous).
func (c *Coordinator) Tenants() []serve.TenantView {
	merged := map[string]*serve.TenantView{}
	var order []string
	for _, name := range c.order {
		r := c.replicas[name]
		c.mu.Lock()
		routable := r.routableLocked()
		c.mu.Unlock()
		if !routable {
			continue
		}
		var rows []serve.TenantView
		err := c.call(r, "tenants", func(ctx context.Context) error {
			var err error
			rows, err = r.client.Tenants(ctx)
			return err
		})
		if err != nil {
			continue
		}
		for _, row := range rows {
			m := merged[row.Name]
			if m == nil {
				cp := row
				merged[row.Name] = &cp
				order = append(order, row.Name)
				continue
			}
			m.Queued += row.Queued
			m.Running += row.Running
			m.Submitted += row.Submitted
			m.Completed += row.Completed
			m.Failed += row.Failed
			m.Canceled += row.Canceled
			m.Rejected += row.Rejected
			m.CacheHits += row.CacheHits
			m.Coalesced += row.Coalesced
			m.Misses += row.Misses
		}
	}
	out := make([]serve.TenantView, 0, len(order))
	for _, name := range order {
		out = append(out, *merged[name])
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Name < out[k-1].Name; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}
