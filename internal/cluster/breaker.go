package cluster

import (
	"sync"
	"time"
)

// breaker is a per-replica circuit breaker over coordinator→replica
// calls. Replica-level failures (network errors, timeouts — not HTTP
// rejections, which prove the replica is answering) count toward a
// consecutive-failure threshold; at the threshold the breaker opens and
// calls fail fast without touching the wire, shedding load from a
// replica that is down or drowning. After a cooldown the breaker goes
// half-open and admits exactly one probe call: success closes it,
// failure re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open delay

	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // last transition to open
	probing  bool      // a half-open probe is in flight
	opens    int64     // cumulative open transitions
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may proceed now. In the half-open state
// only one probe is admitted at a time; a caller granted the probe MUST
// resolve it with Success or Failure.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed call: any state collapses back to closed.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a replica-level call failure. It returns true when
// this failure opened the breaker (for the caller's metrics/logging).
func (b *breaker) Failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = now
		b.opens++
		return true
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
			return true
		}
	}
	return false
}

// State returns the current state and the cumulative open count.
func (b *breaker) State() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
